// Tests for the contract layer (util/contracts.h): death tests prove the
// checks fire on malformed bucket orders in debug builds, and the
// compile-out tests prove a release build never evaluates a contract
// argument (the bench gate depends on that zero cost).
#include "util/contracts.h"

#include <vector>

#include "core/prepared.h"
#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"
#include "gtest/gtest.h"

namespace rankties {
namespace {

BucketOrder MakeOrder(std::size_t n,
                      std::vector<std::vector<ElementId>> buckets) {
  StatusOr<BucketOrder> order = BucketOrder::FromBuckets(n, std::move(buckets));
  EXPECT_TRUE(order.ok()) << order.status();
  return *order;
}

TEST(ValidateTest, AcceptsFactoryBuiltOrders) {
  EXPECT_TRUE(BucketOrder().Validate().ok());
  EXPECT_TRUE(BucketOrder::SingleBucket(5).Validate().ok());
  EXPECT_TRUE(MakeOrder(4, {{1, 2}, {0}, {3}}).Validate().ok());
  EXPECT_TRUE(MakeOrder(4, {{1, 2}, {0}, {3}}).Reverse().Validate().ok());
}

TEST(ValidateTest, FactoriesRejectMalformedInputs) {
  EXPECT_FALSE(BucketOrder::FromBuckets(3, {{0}, {}, {1, 2}}).ok());
  EXPECT_FALSE(BucketOrder::FromBuckets(3, {{0, 1}, {1, 2}}).ok());
  EXPECT_FALSE(BucketOrder::FromBuckets(3, {{0}, {1}}).ok());
  EXPECT_FALSE(BucketOrder::FromBuckets(2, {{0, 5}}).ok());
}

#if RANKTIES_DCHECK_ENABLED

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, DcheckFiresOnFalseCondition) {
  EXPECT_DEATH(RANKTIES_DCHECK(1 + 1 == 3), "contract violation");
}

TEST(ContractsDeathTest, DcheckOkFiresOnEmptyBucket) {
  EXPECT_DEATH(
      RANKTIES_DCHECK_OK(BucketOrder::FromBuckets(3, {{0}, {}, {1, 2}})),
      "empty bucket");
}

TEST(ContractsDeathTest, DcheckOkFiresOnDuplicateElement) {
  EXPECT_DEATH(
      RANKTIES_DCHECK_OK(BucketOrder::FromBuckets(3, {{0, 1}, {1, 2}})),
      "element appears in two buckets");
}

TEST(ContractsDeathTest, DcheckOkFiresOnUncoveredDomain) {
  EXPECT_DEATH(RANKTIES_DCHECK_OK(BucketOrder::FromBuckets(3, {{0}, {1}})),
               "element missing from all buckets");
}

TEST(ContractsDeathTest, DcheckOkFiresOnPlainErrorStatus) {
  EXPECT_DEATH(RANKTIES_DCHECK_OK(Status::InvalidArgument("boom")), "boom");
}

TEST(ContractsDeathTest, PreparedKernelRejectsDomainMismatch) {
  const PreparedRanking sigma(BucketOrder::SingleBucket(3));
  const PreparedRanking tau(BucketOrder::SingleBucket(4));
  PairScratch scratch;
  EXPECT_DEATH(static_cast<void>(ComputePairCounts(sigma, tau, scratch)),
               "contract violation");
}

TEST(ContractsDeathTest, BoundsFiresOutsideRange) {
  const std::size_t index = 7;
  const std::size_t size = 3;
  EXPECT_DEATH(RANKTIES_BOUNDS(index, size), "outside \\[0, 3\\)");
}

TEST(ContractsDeathTest, BoundsFiresOnNegativeIndex) {
  const int index = -1;
  EXPECT_DEATH(RANKTIES_BOUNDS(index, 3), "outside \\[0, 3\\)");
}

TEST(ContractsTest, PassingContractsAreSilent) {
  RANKTIES_DCHECK(2 + 2 == 4);
  RANKTIES_DCHECK_OK(Status::Ok());
  RANKTIES_BOUNDS(2, 3);
}

#else  // !RANKTIES_DCHECK_ENABLED

// Release builds: the whole contract argument sits in a dead branch. A
// side-effecting argument must never execute — this is the compile-out
// guarantee the bench gate relies on.
TEST(ContractsCompileOutTest, DcheckDoesNotEvaluateItsArgument) {
  int calls = 0;
  auto fails_and_counts = [&calls]() {
    ++calls;
    return false;
  };
  RANKTIES_DCHECK(fails_and_counts());
  EXPECT_EQ(calls, 0);
}

TEST(ContractsCompileOutTest, DcheckOkDoesNotEvaluateItsArgument) {
  int calls = 0;
  auto error_and_counts = [&calls]() {
    ++calls;
    return Status::InvalidArgument("never printed");
  };
  RANKTIES_DCHECK_OK(error_and_counts());
  EXPECT_EQ(calls, 0);
}

TEST(ContractsCompileOutTest, BoundsDoesNotEvaluateItsArguments) {
  int calls = 0;
  auto out_of_range_and_counts = [&calls]() {
    ++calls;
    return 99;
  };
  RANKTIES_BOUNDS(out_of_range_and_counts(), 3);
  EXPECT_EQ(calls, 0);
}

TEST(ContractsCompileOutTest, MalformedInputsStillReturnStatus) {
  // With contracts off the factory-level runtime validation still rejects
  // malformed inputs; only the redundant debug re-checks disappear.
  EXPECT_FALSE(BucketOrder::FromBuckets(3, {{0}, {}, {1, 2}}).ok());
}

#endif  // RANKTIES_DCHECK_ENABLED

}  // namespace
}  // namespace rankties
