// LRU / refcount contract tests for the store::Pager block cache. A
// single-shard pager makes the global eviction order deterministic, so the
// tests can pin down exactly which block leaves the cache and when.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "gen/random_orders.h"
#include "gtest/gtest.h"
#include "store/corpus_reader.h"
#include "store/corpus_writer.h"
#include "store/format.h"
#include "store/pager.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::string TestPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// Writes a corpus with 64-byte blocks so even a small corpus spans many
// blocks, and returns a reader whose single-shard cache holds exactly
// `capacity_blocks` of them.
store::CorpusReader OpenSmallBlockCorpus(const std::string& name,
                                         std::size_t capacity_blocks) {
  const std::string path = TestPath(name);
  Rng rng(42);
  store::CorpusWriter::Options write_options;
  write_options.block_size = store::kMinBlockSize;
  write_options.lists_per_chunk = 4;
  StatusOr<store::CorpusWriter> writer =
      store::CorpusWriter::Create(path, 23, write_options);
  EXPECT_TRUE(writer.ok()) << writer.status();
  for (int i = 0; i < 12; ++i) {
    EXPECT_TRUE(writer->Append(RandomBucketOrder(23, rng)).ok());
  }
  EXPECT_TRUE(writer->Finish().ok());

  store::Pager::Options cache;
  cache.shards = 1;
  cache.capacity_bytes = capacity_blocks * store::kMinBlockSize;
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, cache);
  EXPECT_TRUE(reader.ok()) << reader.status();
  return std::move(*reader);
}

TEST(PagerTest, HitMissCountsAndResidency) {
  store::CorpusReader reader = OpenSmallBlockCorpus("pager_hits.corpus", 4);
  store::Pager& pager = reader.pager();
  ASSERT_GE(pager.num_blocks(), 6u);
  EXPECT_EQ(pager.capacity_blocks(), 4u);

  {
    StatusOr<store::Pager::PinnedBlock> pin = pager.Pin(0);
    ASSERT_TRUE(pin.ok());
    EXPECT_EQ(pin->block(), 0u);
    EXPECT_EQ(pin->payload_bytes(),
              store::BlockPayloadBytes(store::kMinBlockSize));
    EXPECT_NE(pin->payload(), nullptr);
  }
  EXPECT_EQ(pager.misses(), 1);
  EXPECT_EQ(pager.hits(), 0);
  EXPECT_TRUE(pager.IsResident(0));  // Unpinned but still cached.

  // Re-pinning the same block is a hit and reads no further bytes.
  const std::int64_t bytes_after_first = pager.bytes_read();
  {
    StatusOr<store::Pager::PinnedBlock> pin = pager.Pin(0);
    ASSERT_TRUE(pin.ok());
  }
  EXPECT_EQ(pager.hits(), 1);
  EXPECT_EQ(pager.misses(), 1);
  EXPECT_EQ(pager.bytes_read(), bytes_after_first);

  EXPECT_FALSE(pager.Pin(pager.num_blocks()).ok());  // Out of range.
}

TEST(PagerTest, EvictsInLruOrder) {
  store::CorpusReader reader = OpenSmallBlockCorpus("pager_lru.corpus", 4);
  store::Pager& pager = reader.pager();
  ASSERT_GE(pager.num_blocks(), 6u);

  // Fill the cache with blocks 0..3, releasing each pin immediately:
  // LRU order is now 0 (coldest) .. 3 (warmest).
  for (std::uint64_t b = 0; b < 4; ++b) {
    ASSERT_TRUE(pager.Pin(b).ok());
  }
  // Touch 0 so 1 becomes the coldest.
  ASSERT_TRUE(pager.Pin(0).ok());

  // Block 4 evicts 1; block 5 evicts 2.
  ASSERT_TRUE(pager.Pin(4).ok());
  EXPECT_FALSE(pager.IsResident(1));
  EXPECT_TRUE(pager.IsResident(0));
  ASSERT_TRUE(pager.Pin(5).ok());
  EXPECT_FALSE(pager.IsResident(2));
  EXPECT_TRUE(pager.IsResident(0));
  EXPECT_TRUE(pager.IsResident(3));
  EXPECT_EQ(pager.evictions(), 2);
  EXPECT_EQ(pager.resident_blocks(), 4);
}

TEST(PagerTest, PinnedBlocksSurviveOvercommitThenShrink) {
  store::CorpusReader reader =
      OpenSmallBlockCorpus("pager_overcommit.corpus", 2);
  store::Pager& pager = reader.pager();
  ASSERT_GE(pager.num_blocks(), 5u);
  EXPECT_EQ(pager.capacity_blocks(), 2u);

  // Pin more blocks than the cache can hold: all five must stay resident
  // and readable (pinned frames are never evicted), overcommitting the
  // budget...
  std::vector<store::Pager::PinnedBlock> pins;
  for (std::uint64_t b = 0; b < 5; ++b) {
    StatusOr<store::Pager::PinnedBlock> pin = pager.Pin(b);
    ASSERT_TRUE(pin.ok()) << pin.status();
    pins.push_back(std::move(*pin));
  }
  for (std::uint64_t b = 0; b < 5; ++b) {
    EXPECT_TRUE(pager.IsResident(b));
  }
  EXPECT_EQ(pager.resident_blocks(), 5);
  EXPECT_EQ(pager.evictions(), 0);
  EXPECT_EQ(pager.peak_resident_blocks(), 5);

  // ...and releasing the pins shrinks the cache back under capacity in
  // LRU (= release) order: the last two released survive.
  for (store::Pager::PinnedBlock& pin : pins) pin.Release();
  EXPECT_EQ(pager.resident_blocks(), 2);
  EXPECT_EQ(pager.evictions(), 3);
  EXPECT_FALSE(pager.IsResident(0));
  EXPECT_FALSE(pager.IsResident(1));
  EXPECT_FALSE(pager.IsResident(2));
  EXPECT_TRUE(pager.IsResident(3));
  EXPECT_TRUE(pager.IsResident(4));
}

TEST(PagerTest, MovedPinReleasesOnce) {
  store::CorpusReader reader = OpenSmallBlockCorpus("pager_move.corpus", 4);
  store::Pager& pager = reader.pager();
  {
    StatusOr<store::Pager::PinnedBlock> pin = pager.Pin(0);
    ASSERT_TRUE(pin.ok());
    store::Pager::PinnedBlock moved = std::move(*pin);
    EXPECT_EQ(moved.block(), 0u);
    moved.Release();
    moved.Release();  // Idempotent on an empty pin.
  }
  // A fresh pin still works and counts one hit.
  EXPECT_TRUE(pager.Pin(0).ok());
  EXPECT_EQ(pager.hits(), 1);
}

#if RANKTIES_DCHECK_ENABLED

using PagerDeathTest = ::testing::Test;

TEST(PagerDeathTest, UnpinWithoutPinFires) {
  store::CorpusReader reader =
      OpenSmallBlockCorpus("pager_death_unpinned.corpus", 4);
  store::Pager& pager = reader.pager();
  ASSERT_TRUE(pager.Pin(0).ok());  // Resident, but no outstanding pin.
  EXPECT_DEATH(pager.UnpinBlock(0), "no outstanding pins");
}

TEST(PagerDeathTest, UnpinNonResidentFires) {
  store::CorpusReader reader =
      OpenSmallBlockCorpus("pager_death_nonresident.corpus", 4);
  store::Pager& pager = reader.pager();
  EXPECT_DEATH(pager.UnpinBlock(0), "not resident");
}

#endif  // RANKTIES_DCHECK_ENABLED

}  // namespace
}  // namespace rankties
