#include "rank/refinement.h"

#include <gtest/gtest.h>

#include <set>

#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Must(StatusOr<BucketOrder> order) {
  EXPECT_TRUE(order.ok()) << order.status();
  return std::move(order).value();
}

TEST(RefinementTest, IsRefinementOfBasics) {
  const BucketOrder coarse =
      Must(BucketOrder::FromBuckets(4, {{0, 1}, {2, 3}}));
  const BucketOrder fine =
      Must(BucketOrder::FromBuckets(4, {{0}, {1}, {2, 3}}));
  const BucketOrder other = Must(BucketOrder::FromBuckets(4, {{0, 2}, {1, 3}}));
  EXPECT_TRUE(IsRefinementOf(fine, coarse));
  EXPECT_FALSE(IsRefinementOf(coarse, fine));
  EXPECT_FALSE(IsRefinementOf(other, coarse));
  // Everything refines the single bucket; everything refines itself.
  EXPECT_TRUE(IsRefinementOf(fine, BucketOrder::SingleBucket(4)));
  EXPECT_TRUE(IsRefinementOf(fine, fine));
  EXPECT_TRUE(IsRefinementOf(coarse, coarse));
}

TEST(RefinementTest, IsRefinementRejectsOrderFlip) {
  // Same partition granularity but flipped bucket order.
  const BucketOrder a = Must(BucketOrder::FromBuckets(4, {{0, 1}, {2, 3}}));
  const BucketOrder flipped =
      Must(BucketOrder::FromBuckets(4, {{2, 3}, {0, 1}}));
  EXPECT_FALSE(IsRefinementOf(flipped, a));
}

TEST(RefinementTest, TauRefineBreaksTiesByTau) {
  // sigma ties {0,1,2}; tau orders 2 < 0 ~ 1; tau*sigma = [2 | 0 1 | 3].
  const BucketOrder sigma = Must(BucketOrder::FromBuckets(4, {{0, 1, 2}, {3}}));
  const BucketOrder tau = Must(BucketOrder::FromBuckets(4, {{2}, {0, 1, 3}}));
  const BucketOrder refined = TauRefine(tau, sigma);
  EXPECT_EQ(refined.ToString(), "[2 | 0 1 | 3]");
  EXPECT_TRUE(IsRefinementOf(refined, sigma));
}

TEST(RefinementTest, TauRefineDefinitionProperties) {
  // Paper §2: if sigma(i)=sigma(j) and tau(i)<tau(j) then refined(i) <
  // refined(j); if tied in both, still tied; sigma's strict orders kept.
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(9, rng);
    const BucketOrder tau = RandomBucketOrder(9, rng);
    const BucketOrder refined = TauRefine(tau, sigma);
    EXPECT_TRUE(IsRefinementOf(refined, sigma));
    for (ElementId i = 0; i < 9; ++i) {
      for (ElementId j = 0; j < 9; ++j) {
        if (i == j) continue;
        if (sigma.Tied(i, j) && tau.Ahead(i, j)) {
          EXPECT_TRUE(refined.Ahead(i, j));
        }
        if (sigma.Tied(i, j) && tau.Tied(i, j)) {
          EXPECT_TRUE(refined.Tied(i, j));
        }
        if (sigma.Ahead(i, j)) {
          EXPECT_TRUE(refined.Ahead(i, j));
        }
      }
    }
  }
}

TEST(RefinementTest, TauRefineIsAssociative) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder rho = RandomBucketOrder(8, rng);
    const BucketOrder tau = RandomBucketOrder(8, rng);
    const BucketOrder sigma = RandomBucketOrder(8, rng);
    // rho*(tau*sigma) == (rho*tau)*sigma (paper §2: * is associative).
    EXPECT_EQ(TauRefine(rho, TauRefine(tau, sigma)),
              TauRefine(TauRefine(rho, tau), sigma));
  }
}

TEST(RefinementTest, TauRefineWithFullTauIsFull) {
  Rng rng(23);
  const BucketOrder sigma = RandomBucketOrder(8, rng);
  const Permutation tau = Permutation::Random(8, rng);
  const Permutation refined = TauRefineFull(tau, sigma);
  // Same result through the generic path.
  const BucketOrder generic =
      TauRefine(BucketOrder::FromPermutation(tau), sigma);
  EXPECT_TRUE(generic.IsFull());
  EXPECT_EQ(BucketOrder::FromPermutation(refined), generic);
}

TEST(RefinementTest, EnumerationCountsMatchFactorialProduct) {
  const BucketOrder order =
      Must(BucketOrder::FromBuckets(6, {{0, 1, 2}, {3}, {4, 5}}));
  EXPECT_EQ(CountFullRefinements(order), 3 * 2 * 1 * 1 * 2);
  std::set<std::string> seen;
  std::int64_t count = 0;
  ForEachFullRefinement(order, [&](const Permutation& p) {
    seen.insert(p.ToString());
    ++count;
    // Each enumerated permutation is a genuine refinement.
    EXPECT_TRUE(IsRefinementOf(BucketOrder::FromPermutation(p), order));
    return true;
  });
  EXPECT_EQ(count, 12);
  EXPECT_EQ(seen.size(), 12u);  // all distinct
}

TEST(RefinementTest, EnumerationEarlyStop) {
  const BucketOrder order = BucketOrder::SingleBucket(4);
  int visits = 0;
  ForEachFullRefinement(order, [&](const Permutation&) {
    ++visits;
    return visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(RefinementTest, CountSaturatesInsteadOfOverflowing) {
  const BucketOrder order = BucketOrder::SingleBucket(64);
  EXPECT_EQ(CountFullRefinements(order),
            std::numeric_limits<std::int64_t>::max());
}

TEST(RefinementTest, RandomFullRefinementIsRefinement) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder order = RandomBucketOrder(10, rng);
    const Permutation p = RandomFullRefinement(order, rng);
    EXPECT_TRUE(IsRefinementOf(BucketOrder::FromPermutation(p), order));
  }
}

}  // namespace
}  // namespace rankties
