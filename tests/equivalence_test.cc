// Property tests for Section 5 (Theorem 7): the four metrics are pairwise
// within a factor of two, via the three inequalities (4), (5), (6).

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/metric_registry.h"
#include "core/profile_metrics.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

struct Workload {
  const char* name;
  std::function<BucketOrder(std::size_t, Rng&)> sample;
};

std::vector<Workload> Workloads() {
  return {
      {"uniform-type", [](std::size_t n, Rng& rng) {
         return RandomBucketOrder(n, rng);
       }},
      {"few-valued", [](std::size_t n, Rng& rng) {
         return RandomFewValued(n, 4.0, rng);
       }},
      {"top-k", [](std::size_t n, Rng& rng) {
         return RandomTopK(n, n / 3 + 1, rng);
       }},
      {"mallows-quantized", [](std::size_t n, Rng& rng) {
         const Permutation center(n);
         return QuantizedMallows(center, 0.7, std::max<std::size_t>(2, n / 4),
                                 rng);
       }},
  };
}

class EquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

// Eq. (4): KHaus <= FHaus <= 2 KHaus.
TEST_P(EquivalenceTest, HausdorffDiaconisGraham) {
  const std::size_t n = GetParam();
  Rng rng(40 + n);
  for (const Workload& w : Workloads()) {
    for (int trial = 0; trial < 20; ++trial) {
      const BucketOrder x = w.sample(n, rng);
      const BucketOrder y = w.sample(n, rng);
      const std::int64_t twice_k = 2 * KHausdorff(x, y);
      const std::int64_t twice_f = TwiceFHausdorff(x, y);
      EXPECT_LE(twice_k, twice_f) << w.name;
      EXPECT_LE(twice_f, 2 * twice_k) << w.name;
    }
  }
}

// Eq. (5): Kprof <= Fprof <= 2 Kprof (the hard one, via reflection/nesting).
TEST_P(EquivalenceTest, ProfileDiaconisGraham) {
  const std::size_t n = GetParam();
  Rng rng(50 + n);
  for (const Workload& w : Workloads()) {
    for (int trial = 0; trial < 20; ++trial) {
      const BucketOrder x = w.sample(n, rng);
      const BucketOrder y = w.sample(n, rng);
      const std::int64_t twice_kprof = TwiceKprof(x, y);
      const std::int64_t twice_fprof = TwiceFprof(x, y);
      EXPECT_LE(twice_kprof, twice_fprof) << w.name;
      EXPECT_LE(twice_fprof, 2 * twice_kprof) << w.name;
    }
  }
}

// Eq. (6): Kprof <= KHaus <= 2 Kprof.
TEST_P(EquivalenceTest, ProfileVsHausdorffKendall) {
  const std::size_t n = GetParam();
  Rng rng(60 + n);
  for (const Workload& w : Workloads()) {
    for (int trial = 0; trial < 20; ++trial) {
      const BucketOrder x = w.sample(n, rng);
      const BucketOrder y = w.sample(n, rng);
      const std::int64_t twice_kprof = TwiceKprof(x, y);
      const std::int64_t twice_khaus = 2 * KHausdorff(x, y);
      EXPECT_LE(twice_kprof, twice_khaus) << w.name;
      EXPECT_LE(twice_khaus, 2 * twice_kprof) << w.name;
    }
  }
}

// Chained: every pair of the four metrics is within the constant implied by
// composing (4), (5), (6) — in particular within [1/4, 4]; Theorem 7 only
// claims *some* constants, these bounds are the composition.
TEST_P(EquivalenceTest, AllPairsWithinComposedConstants) {
  const std::size_t n = GetParam();
  Rng rng(70 + n);
  for (int trial = 0; trial < 25; ++trial) {
    const BucketOrder x = RandomBucketOrder(n, rng);
    const BucketOrder y = RandomBucketOrder(n, rng);
    std::vector<double> values;
    for (MetricKind kind : AllMetricKinds()) {
      values.push_back(ComputeMetric(kind, x, y));
    }
    for (double a : values) {
      for (double b : values) {
        if (b == 0) {
          EXPECT_EQ(a, 0);  // all metrics vanish together (regularity)
        } else {
          EXPECT_LE(a / b, 4.0 + 1e-9);
          EXPECT_GE(a / b, 0.25 - 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EquivalenceTest,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 40));

TEST(EquivalenceTightnessTest, KprofEqualsFprofLowerEdge) {
  // Adjacent singleton swap: Kprof = 1, Fprof = 2 -> Fprof = 2 Kprof (tight
  // upper edge).
  auto x = BucketOrder::FromBuckets(2, {{0}, {1}});
  auto y = BucketOrder::FromBuckets(2, {{1}, {0}});
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_EQ(TwiceKprof(*x, *y), 2);
  EXPECT_EQ(TwiceFprof(*x, *y), 4);
}

TEST(EquivalenceTightnessTest, KHausEqualsTwoKprofEdge) {
  // One tied pair in sigma only: Kprof = 1/2, KHaus = 1 -> KHaus = 2 Kprof.
  auto x = BucketOrder::FromBuckets(2, {{0, 1}});
  auto y = BucketOrder::FromBuckets(2, {{0}, {1}});
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_EQ(TwiceKprof(*x, *y), 1);
  EXPECT_EQ(KHausdorff(*x, *y), 1);
}

TEST(EquivalenceTightnessTest, SymmetricTiesKeepKHausEqualKprof) {
  // S == T balanced: KHaus = U + max(S,T) vs Kprof = U + (S+T)/2 coincide.
  auto x = BucketOrder::FromBuckets(4, {{0, 1}, {2}, {3}});
  auto y = BucketOrder::FromBuckets(4, {{0}, {1}, {2, 3}});
  ASSERT_TRUE(x.ok() && y.ok());
  EXPECT_EQ(2 * KHausdorff(*x, *y), TwiceKprof(*x, *y));
}

}  // namespace
}  // namespace rankties
