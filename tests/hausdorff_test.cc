#include "core/hausdorff.h"

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "core/kendall.h"
#include "core/pair_counts.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Must(StatusOr<BucketOrder> order) {
  EXPECT_TRUE(order.ok()) << order.status();
  return std::move(order).value();
}

TEST(HausdorffTest, FullRankingsDegenerateToBaseMetrics) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const Permutation a = Permutation::Random(9, rng);
    const Permutation b = Permutation::Random(9, rng);
    const BucketOrder oa = BucketOrder::FromPermutation(a);
    const BucketOrder ob = BucketOrder::FromPermutation(b);
    EXPECT_EQ(KHausdorff(oa, ob), KendallTau(a, b));
    EXPECT_EQ(TwiceFHausdorff(oa, ob), 2 * Footrule(a, b));
  }
}

TEST(HausdorffTest, HandExampleSingleBucketVsFull) {
  // sigma ties everything; tau = identity full ranking on 3 elements.
  // Worst refinement of sigma is the reversal of tau: KHaus = 3, FHaus = 4.
  const BucketOrder sigma = BucketOrder::SingleBucket(3);
  const BucketOrder tau = BucketOrder::FromPermutation(Permutation(3));
  EXPECT_EQ(KHausdorff(sigma, tau), 3);          // all pairs in S
  EXPECT_EQ(KHausdorffBrute(sigma, tau), 3);
  EXPECT_EQ(FHausdorffBrute(sigma, tau), 4);     // reversal footrule
  EXPECT_EQ(TwiceFHausdorff(sigma, tau), 8);
}

TEST(HausdorffTest, Proposition6MatchesTheorem5) {
  Rng rng(2);
  for (std::size_t n : {2u, 4u, 7u, 12u, 30u}) {
    for (int trial = 0; trial < 30; ++trial) {
      const BucketOrder sigma = RandomBucketOrder(n, rng);
      const BucketOrder tau = RandomBucketOrder(n, rng);
      EXPECT_EQ(KHausdorff(sigma, tau), KHausdorffTheorem5(sigma, tau))
          << "n=" << n;
    }
  }
}

// The central correctness check of Section 4: the Theorem 5 construction
// equals the exponential max-min definition.
class HausdorffBruteParityTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(HausdorffBruteParityTest, Theorem5MatchesBruteForce) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  for (int trial = 0; trial < 25; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const BucketOrder tau = RandomBucketOrder(n, rng);
    if (CountFullRefinements(sigma) * CountFullRefinements(tau) > 50000) {
      continue;  // keep brute force cheap
    }
    EXPECT_EQ(KHausdorff(sigma, tau), KHausdorffBrute(sigma, tau))
        << sigma.ToString() << " vs " << tau.ToString();
    EXPECT_EQ(TwiceFHausdorff(sigma, tau), 2 * FHausdorffBrute(sigma, tau))
        << sigma.ToString() << " vs " << tau.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HausdorffBruteParityTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7));

TEST(HausdorffTest, TopKListsAgainstBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const BucketOrder a = RandomTopK(6, 2, rng);
    const BucketOrder b = RandomTopK(6, 3, rng);
    EXPECT_EQ(KHausdorff(a, b), KHausdorffBrute(a, b));
    EXPECT_EQ(TwiceFHausdorff(a, b), 2 * FHausdorffBrute(a, b));
  }
}

TEST(HausdorffTest, MetricAxioms) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const BucketOrder x = RandomBucketOrder(8, rng);
    const BucketOrder y = RandomBucketOrder(8, rng);
    const BucketOrder z = RandomBucketOrder(8, rng);
    EXPECT_EQ(KHausdorff(x, x), 0);
    EXPECT_EQ(TwiceFHausdorff(x, x), 0);
    EXPECT_EQ(KHausdorff(x, y), KHausdorff(y, x));
    EXPECT_EQ(TwiceFHausdorff(x, y), TwiceFHausdorff(y, x));
    if (!(x == y)) {
      EXPECT_GT(KHausdorff(x, y), 0);
      EXPECT_GT(TwiceFHausdorff(x, y), 0);
    }
    EXPECT_LE(KHausdorff(x, z), KHausdorff(x, y) + KHausdorff(y, z));
    EXPECT_LE(TwiceFHausdorff(x, z),
              TwiceFHausdorff(x, y) + TwiceFHausdorff(y, z));
  }
}

TEST(HausdorffTest, Proposition6CountsDirectly) {
  // KHaus = |U| + max(|S|, |T|) on the hand example of pair_counts_test.
  const BucketOrder sigma = Must(BucketOrder::FromBuckets(4, {{0, 1}, {2, 3}}));
  const BucketOrder tau = Must(BucketOrder::FromBuckets(4, {{0}, {1, 2}, {3}}));
  // S = 2, T = 1, U = 0 -> KHaus = 2.
  EXPECT_EQ(KHausdorff(sigma, tau), 2);
}

TEST(HausdorffTest, HausdorffAtLeastAnyMinOverRefinements) {
  // By definition dHaus >= min over refinements for each fixed side; sanity
  // against random refinements.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(7, rng);
    const BucketOrder tau = RandomBucketOrder(7, rng);
    const std::int64_t khaus = KHausdorff(sigma, tau);
    // For every refinement pair, the min over tau refinements of K is <=
    // KHaus; we spot check: the *closest* pair cannot exceed KHaus.
    const Permutation s = RandomFullRefinement(sigma, rng);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    ForEachFullRefinement(tau, [&](const Permutation& t) {
      best = std::min(best,
                      KendallTau(s, t));
      return true;
    });
    EXPECT_LE(best, khaus);
  }
}

}  // namespace
}  // namespace rankties
