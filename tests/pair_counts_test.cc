#include "core/pair_counts.h"

#include <gtest/gtest.h>

#include <limits>

#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Must(StatusOr<BucketOrder> order) {
  EXPECT_TRUE(order.ok()) << order.status();
  return std::move(order).value();
}

TEST(PairCountsTest, HandComputedExample) {
  // sigma = [0 1 | 2 3], tau = [0 | 1 2 | 3].
  const BucketOrder sigma = Must(BucketOrder::FromBuckets(4, {{0, 1}, {2, 3}}));
  const BucketOrder tau = Must(BucketOrder::FromBuckets(4, {{0}, {1, 2}, {3}}));
  const PairCounts c = ComputePairCounts(sigma, tau);
  // Pairs: {0,1}: tied sigma, strict tau -> S. {0,2}: strict both, same
  // order -> C. {0,3}: C. {1,2}: strict sigma? sigma: 1 in bucket0, 2 in
  // bucket1 -> strict; tau ties -> T. {1,3}: strict both -> C. {2,3}: tied
  // sigma, strict tau -> S.
  EXPECT_EQ(c.concordant, 3);
  EXPECT_EQ(c.discordant, 0);
  EXPECT_EQ(c.tied_sigma_only, 2);
  EXPECT_EQ(c.tied_tau_only, 1);
  EXPECT_EQ(c.tied_both, 0);
  EXPECT_EQ(c.Total(), 6);
}

TEST(PairCountsTest, DiscordantPairs) {
  // sigma = [0 | 1], tau = [1 | 0]: one discordant pair.
  const BucketOrder sigma = Must(BucketOrder::FromBuckets(2, {{0}, {1}}));
  const BucketOrder tau = Must(BucketOrder::FromBuckets(2, {{1}, {0}}));
  const PairCounts c = ComputePairCounts(sigma, tau);
  EXPECT_EQ(c.discordant, 1);
  EXPECT_EQ(c.Total(), 1);
}

TEST(PairCountsTest, IdenticalOrdersAreAllConcordantOrTiedBoth) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(12, rng);
    const PairCounts c = ComputePairCounts(sigma, sigma);
    EXPECT_EQ(c.discordant, 0);
    EXPECT_EQ(c.tied_sigma_only, 0);
    EXPECT_EQ(c.tied_tau_only, 0);
    EXPECT_EQ(c.concordant + c.tied_both, 12 * 11 / 2);
  }
}

TEST(PairCountsTest, SymmetrySwapsTieClasses) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(10, rng);
    const BucketOrder tau = RandomBucketOrder(10, rng);
    const PairCounts ab = ComputePairCounts(sigma, tau);
    const PairCounts ba = ComputePairCounts(tau, sigma);
    EXPECT_EQ(ab.concordant, ba.concordant);
    EXPECT_EQ(ab.discordant, ba.discordant);
    EXPECT_EQ(ab.tied_sigma_only, ba.tied_tau_only);
    EXPECT_EQ(ab.tied_tau_only, ba.tied_sigma_only);
    EXPECT_EQ(ab.tied_both, ba.tied_both);
  }
}

TEST(PairCountsTest, SingleBucketVsFull) {
  Rng rng(4);
  const BucketOrder tied = BucketOrder::SingleBucket(7);
  const BucketOrder full =
      BucketOrder::FromPermutation(Permutation::Random(7, rng));
  const PairCounts c = ComputePairCounts(tied, full);
  EXPECT_EQ(c.tied_sigma_only, 21);
  EXPECT_EQ(c.concordant, 0);
  EXPECT_EQ(c.discordant, 0);
  EXPECT_EQ(c.tied_both, 0);
}

// Property sweep: fast engine == naive engine over many random shapes.
class PairCountsParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PairCountsParityTest, FastMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  for (int trial = 0; trial < 25; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const BucketOrder tau = RandomBucketOrder(n, rng);
    EXPECT_EQ(ComputePairCounts(sigma, tau),
              ComputePairCountsNaive(sigma, tau))
        << "n=" << n << " trial=" << trial;
  }
  // Also against structured shapes: top-k vs few-valued.
  for (int trial = 0; trial < 10; ++trial) {
    const BucketOrder sigma = RandomTopK(n, n / 2, rng);
    const BucketOrder tau = RandomFewValued(n, 3.0, rng);
    EXPECT_EQ(ComputePairCounts(sigma, tau),
              ComputePairCountsNaive(sigma, tau));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PairCountsParityTest,
                         ::testing::Values(2, 3, 4, 5, 8, 13, 21, 34, 64));

TEST(PairCountsTest, TinyDomains) {
  const BucketOrder one = BucketOrder::SingleBucket(1);
  EXPECT_EQ(ComputePairCounts(one, one).Total(), 0);
}

TEST(PairCountsTest, TotalAtInt64BoundaryPasses) {
  PairCounts c;
  c.concordant = std::numeric_limits<std::int64_t>::max() - 10;
  c.discordant = 4;
  c.tied_sigma_only = 3;
  c.tied_tau_only = 2;
  c.tied_both = 1;
  EXPECT_EQ(c.Total(), std::numeric_limits<std::int64_t>::max());
}

TEST(PairCountsDeathTest, TotalAbortsInsteadOfWrapping) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  PairCounts c;
  c.concordant = std::numeric_limits<std::int64_t>::max();
  c.discordant = 1;  // one pair past 2^63 - 1: the sum must not wrap
  EXPECT_DEATH(c.Total(), "integer overflow");
}

}  // namespace
}  // namespace rankties
