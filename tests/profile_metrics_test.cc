#include "core/profile_metrics.h"

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "core/kendall.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Must(StatusOr<BucketOrder> order) {
  EXPECT_TRUE(order.ok()) << order.status();
  return std::move(order).value();
}

TEST(ProfileMetricsTest, PaperProposition13Example) {
  // Domain {a, b} = {0, 1}: tau1 = [0 | 1], tau2 = [0 1], tau3 = [1 | 0].
  const BucketOrder tau1 = Must(BucketOrder::FromBuckets(2, {{0}, {1}}));
  const BucketOrder tau2 = BucketOrder::SingleBucket(2);
  const BucketOrder tau3 = Must(BucketOrder::FromBuckets(2, {{1}, {0}}));

  // p = 0: K(0)(tau1,tau2) = 0 though tau1 != tau2 -> not a distance
  // measure, and the (near) triangle inequality fails badly (paper A.2).
  EXPECT_DOUBLE_EQ(KendallP(tau1, tau2, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(KendallP(tau2, tau3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(KendallP(tau1, tau3, 0.0), 1.0);

  // 0 < p < 1/2: triangle fails (1 > p + p).
  for (double p : {0.1, 0.25, 0.4, 0.49}) {
    EXPECT_GT(KendallP(tau1, tau3, p),
              KendallP(tau1, tau2, p) + KendallP(tau2, tau3, p));
  }
  // p >= 1/2: triangle holds on this triple.
  for (double p : {0.5, 0.75, 1.0}) {
    EXPECT_LE(KendallP(tau1, tau3, p),
              KendallP(tau1, tau2, p) + KendallP(tau2, tau3, p));
  }
}

// Proposition 13: K^(p) satisfies the triangle inequality pairwise-pointwise
// for p in [1/2, 1]. Random triples across p values.
class KendallPTriangleTest : public ::testing::TestWithParam<double> {};

TEST_P(KendallPTriangleTest, TriangleHoldsForMetricRange) {
  const double p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p * 1000) + 7);
  for (int trial = 0; trial < 60; ++trial) {
    const BucketOrder x = RandomBucketOrder(9, rng);
    const BucketOrder y = RandomBucketOrder(9, rng);
    const BucketOrder z = RandomBucketOrder(9, rng);
    EXPECT_LE(KendallP(x, z, p),
              KendallP(x, y, p) + KendallP(y, z, p) + 1e-9)
        << "p=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(MetricRange, KendallPTriangleTest,
                         ::testing::Values(0.5, 0.6, 0.75, 0.9, 1.0));

// Near-metric range: K^(p) <= K^(p') <= (p'/p) K^(p) for 0 < p < p' <= 1
// (paper A.2) — the equivalence that makes K^(p) a near metric.
TEST(ProfileMetricsTest, PenaltyFamilyEquivalence) {
  Rng rng(11);
  const double ps[] = {0.1, 0.3, 0.5, 0.8, 1.0};
  for (int trial = 0; trial < 30; ++trial) {
    const BucketOrder x = RandomBucketOrder(10, rng);
    const BucketOrder y = RandomBucketOrder(10, rng);
    for (double p : ps) {
      for (double q : ps) {
        if (p >= q) continue;
        const double dp = KendallP(x, y, p);
        const double dq = KendallP(x, y, q);
        EXPECT_LE(dp, dq + 1e-9);
        EXPECT_LE(dq, (q / p) * dp + 1e-9);
      }
    }
  }
}

TEST(ProfileMetricsTest, KprofIsHalfPenalty) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder x = RandomBucketOrder(8, rng);
    const BucketOrder y = RandomBucketOrder(8, rng);
    EXPECT_DOUBLE_EQ(Kprof(x, y), KendallP(x, y, 0.5));
    EXPECT_DOUBLE_EQ(Kprof(x, y),
                     static_cast<double>(TwiceKprof(x, y)) / 2.0);
  }
}

TEST(ProfileMetricsTest, KprofEqualsL1OfKProfiles) {
  // The defining property of §3.1: Kprof is the L1 distance between the
  // K-profile vectors (entries +-1/4).
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const BucketOrder x = RandomBucketOrder(9, rng);
    const BucketOrder y = RandomBucketOrder(9, rng);
    EXPECT_EQ(TwiceKprof(x, y),
              TwiceKprofFromProfiles(KProfileQuarters(x), KProfileQuarters(y)));
  }
}

TEST(ProfileMetricsTest, FProfileIsPositionVector) {
  const BucketOrder x = Must(BucketOrder::FromBuckets(3, {{0, 2}, {1}}));
  EXPECT_EQ(FProfileTwice(x), (std::vector<std::int64_t>{3, 6, 3}));
}

TEST(ProfileMetricsTest, KprofOnFullRankingsIsKendall) {
  Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    const Permutation a = Permutation::Random(10, rng);
    const Permutation b = Permutation::Random(10, rng);
    EXPECT_EQ(TwiceKprof(BucketOrder::FromPermutation(a),
                         BucketOrder::FromPermutation(b)),
              2 * KendallTau(a, b));
  }
}

TEST(ProfileMetricsTest, MetricAxioms) {
  Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const BucketOrder x = RandomBucketOrder(8, rng);
    const BucketOrder y = RandomBucketOrder(8, rng);
    EXPECT_EQ(TwiceKprof(x, x), 0);
    EXPECT_EQ(TwiceKprof(x, y), TwiceKprof(y, x));
    if (!(x == y)) {
      EXPECT_GT(TwiceKprof(x, y), 0);  // regularity
    }
    EXPECT_EQ(TwiceFprof(x, x), 0);
    EXPECT_EQ(TwiceFprof(x, y), TwiceFprof(y, x));
    if (!(x == y)) {
      EXPECT_GT(TwiceFprof(x, y), 0);
    }
  }
}

TEST(ProfileMetricsTest, KavgEqualsKprofForTopKLists) {
  // Paper A.3: on top-k lists over the active domain, Kprof == Kavg of
  // [10]. (For general partial rankings they differ on tied-in-both pairs.)
  Rng rng(29);
  for (int trial = 0; trial < 8; ++trial) {
    // Build two top-2 lists over a domain of 4 so that no pair is tied in
    // both bottom buckets... use full active-domain shape: every element is
    // in the top of at least one list.
    const Permutation pa = Permutation::Random(4, rng);
    const Permutation pb = pa.Reverse();  // tops cover everything
    const BucketOrder a = BucketOrder::TopKOf(pa, 2);
    const BucketOrder b = BucketOrder::TopKOf(pb, 2);
    EXPECT_DOUBLE_EQ(KavgBrute(a, b), Kprof(a, b)) << trial;
  }
}

TEST(ProfileMetricsTest, KavgExceedsKprofWhenTiedBothExists) {
  // Two identical single-bucket orders: Kprof = 0 but Kavg > 0 — the very
  // reason Kavg is not a distance measure on general partial rankings (A.3).
  const BucketOrder tied = BucketOrder::SingleBucket(3);
  EXPECT_DOUBLE_EQ(Kprof(tied, tied), 0.0);
  EXPECT_GT(KavgBrute(tied, tied), 0.0);
}

}  // namespace
}  // namespace rankties
