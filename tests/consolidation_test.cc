#include "core/consolidation.h"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "core/cost.h"
#include "core/footrule.h"
#include "core/optimal_bucketing.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::vector<std::int64_t> RandomQuad(std::size_t n, Rng& rng) {
  std::vector<std::int64_t> scores(n);
  for (auto& s : scores) {
    s = 2 * rng.UniformInt(1, 2 * static_cast<std::int64_t>(n));
  }
  return scores;
}

// Lemma 27: the order-preserving assignment is L1-optimal among ALL
// type-alpha partial rankings, including ones scrambling the elements.
// Verified against exhaustive enumeration of element assignments.
TEST(ConsolidationTest, Lemma27OrderPreservingIsOptimal) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5;
    const std::vector<std::int64_t> scores = RandomQuad(n, rng);
    const std::vector<std::size_t> alpha = RandomType(n, rng);
    auto ours = ConsolidateToType(scores, alpha);
    ASSERT_TRUE(ours.ok());
    EXPECT_EQ(ours->order.Type(), alpha);

    // Enumerate every assignment of elements to the alpha slots (all
    // permutations of the domain, bucketed by alpha in order).
    std::vector<ElementId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    do {
      std::vector<BucketIndex> bucket_of(n);
      std::size_t at = 0;
      for (std::size_t b = 0; b < alpha.size(); ++b) {
        for (std::size_t i = 0; i < alpha[b]; ++i, ++at) {
          bucket_of[static_cast<std::size_t>(perm[at])] =
              static_cast<BucketIndex>(b);
        }
      }
      auto order = BucketOrder::FromBucketIndex(bucket_of);
      ASSERT_TRUE(order.ok());
      std::int64_t cost = 0;
      for (ElementId e = 0; e < static_cast<ElementId>(n); ++e) {
        cost += std::abs(scores[static_cast<std::size_t>(e)] -
                         2 * order->TwicePosition(e));
      }
      best = std::min(best, cost);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(ours->cost_quad, best) << "trial " << trial;
  }
}

TEST(ConsolidationTest, Validation) {
  EXPECT_FALSE(ConsolidateToType({}, {}).ok());
  EXPECT_FALSE(ConsolidateToType({4, 8}, {1}).ok());
  EXPECT_FALSE(ConsolidateToType({4, 8}, {0, 2}).ok());
  EXPECT_FALSE(ProjectConsistent({4, 8}, BucketOrder::SingleBucket(3),
                                 {2})
                   .ok());
}

TEST(ConsolidationTest, ConsistencyWithScores) {
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 8;
    const std::vector<std::int64_t> scores = RandomQuad(n, rng);
    const std::vector<std::size_t> alpha = RandomType(n, rng);
    auto result = ConsolidateToType(scores, alpha);
    ASSERT_TRUE(result.ok());
    for (ElementId i = 0; i < static_cast<ElementId>(n); ++i) {
      for (ElementId j = 0; j < static_cast<ElementId>(n); ++j) {
        if (scores[static_cast<std::size_t>(i)] <
            scores[static_cast<std::size_t>(j)]) {
          EXPECT_FALSE(result->order.Ahead(j, i));
        }
      }
    }
  }
}

TEST(ConsolidationTest, FullTypeMatchesOptimalBucketingCostAtFullType) {
  // Consolidating to the all-singletons type equals the best full ranking
  // consistent with the scores.
  Rng rng(3);
  const std::vector<std::int64_t> scores = RandomQuad(7, rng);
  auto full = ConsolidateToType(scores, std::vector<std::size_t>(7, 1));
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->order.IsFull());
  // f-dagger (unconstrained) can only be cheaper.
  auto fdagger = OptimalBucketing(scores);
  ASSERT_TRUE(fdagger.ok());
  EXPECT_LE(fdagger->cost_quad, full->cost_quad);
}

TEST(ConsolidationTest, ProjectConsistentHonorsBoth) {
  // Lemma 34: the projection is consistent with sigma (no strict order of
  // sigma flipped) and has the requested type.
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 9;
    const std::vector<std::int64_t> scores = RandomQuad(n, rng);
    // sigma: a consolidation of the same scores (hence consistent with f).
    auto sigma = ConsolidateToType(scores, RandomType(n, rng));
    ASSERT_TRUE(sigma.ok());
    const std::vector<std::size_t> beta = RandomType(n, rng);
    auto projected = ProjectConsistent(scores, sigma->order, beta);
    ASSERT_TRUE(projected.ok());
    EXPECT_EQ(projected->Type(), beta);
    for (ElementId i = 0; i < static_cast<ElementId>(n); ++i) {
      for (ElementId j = 0; j < static_cast<ElementId>(n); ++j) {
        if (sigma->order.Ahead(i, j)) {
          EXPECT_FALSE(projected->Ahead(j, i))
              << "projection flipped a sigma order";
        }
      }
    }
  }
}

// Theorem 35 end-to-end: the strong top-k's certificate is within factor 2
// (partial-ranking inputs: 3) of every partial ranking, and the top-k list
// is consistent with it.
TEST(ConsolidationTest, StrongMedianTopK) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 7;
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) inputs.push_back(RandomBucketOrder(n, rng));
    auto strong = StrongMedianTopK(inputs, 3, MedianPolicy::kLower);
    ASSERT_TRUE(strong.ok());
    EXPECT_TRUE(strong->top_k.IsTopK(3));
    // Certificate near-optimality (Theorem 10, factor 2 over partial
    // rankings):
    const std::int64_t cert_cost = TwiceTotalFprof(strong->certificate, inputs);
    for (int g = 0; g < 50; ++g) {
      const BucketOrder tau = RandomBucketOrder(n, rng);
      EXPECT_LE(cert_cost, 2 * TwiceTotalFprof(tau, inputs));
    }
    // The top-k is consistent with the certificate.
    for (ElementId i = 0; i < static_cast<ElementId>(n); ++i) {
      for (ElementId j = 0; j < static_cast<ElementId>(n); ++j) {
        if (strong->certificate.Ahead(i, j)) {
          EXPECT_FALSE(strong->top_k.Ahead(j, i));
        }
      }
    }
  }
}

TEST(ConsolidationTest, StrongTopKValidation) {
  std::vector<BucketOrder> inputs = {BucketOrder::SingleBucket(4)};
  EXPECT_FALSE(StrongMedianTopK(inputs, 9).ok());
  auto full = StrongMedianTopK(inputs, 4);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full->top_k.IsFull());
}

}  // namespace
}  // namespace rankties
