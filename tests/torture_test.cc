// Differential "torture" sweep: every fast path in the library against its
// independent reference implementation, across many seeds and workload
// shapes in one place. Complements the focused unit tests with breadth.

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/kendall.h"
#include "core/optimal_bucketing.h"
#include "core/pair_counts.h"
#include "core/profile_metrics.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder SampleOrder(std::size_t n, int shape, Rng& rng) {
  switch (shape % 5) {
    case 0:
      return RandomBucketOrder(n, rng);
    case 1:
      return RandomFewValued(n, 3.0, rng);
    case 2:
      return RandomTopK(n, n / 3 + 1, rng);
    case 3:
      return BucketOrder::FromPermutation(Permutation::Random(n, rng));
    default:
      return QuantizedMallows(Permutation(n), 0.6,
                              std::max<std::size_t>(1, n / 3), rng);
  }
}

class TortureTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TortureTest, AllFastPathsMatchReferences) {
  Rng rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    const std::size_t n =
        static_cast<std::size_t>(rng.UniformInt(2, 24));
    const BucketOrder sigma = SampleOrder(n, round, rng);
    const BucketOrder tau = SampleOrder(n, round + 1, rng);

    // Pair classification.
    const PairCounts fast = ComputePairCounts(sigma, tau);
    ASSERT_EQ(fast, ComputePairCountsNaive(sigma, tau))
        << sigma.ToString() << " / " << tau.ToString();

    // Kendall-family identities.
    ASSERT_EQ(KHausdorff(sigma, tau), KHausdorffTheorem5(sigma, tau));
    ASSERT_EQ(TwiceKprof(sigma, tau),
              TwiceKprofFromProfiles(KProfileQuarters(sigma),
                                     KProfileQuarters(tau)));
    ASSERT_DOUBLE_EQ(Kavg(sigma, tau),
                     Kprof(sigma, tau) +
                         static_cast<double>(fast.tied_both) / 2.0);

    // Theorem 7 inequalities on every sampled pair.
    const std::int64_t twice_kprof = TwiceKprof(sigma, tau);
    const std::int64_t twice_fprof = TwiceFprof(sigma, tau);
    const std::int64_t twice_khaus = 2 * KHausdorff(sigma, tau);
    const std::int64_t twice_fhaus = TwiceFHausdorff(sigma, tau);
    ASSERT_LE(twice_kprof, twice_fprof);
    ASSERT_LE(twice_fprof, 2 * twice_kprof);
    ASSERT_LE(twice_khaus, twice_fhaus);
    ASSERT_LE(twice_fhaus, 2 * twice_khaus);
    ASSERT_LE(twice_kprof, twice_khaus);
    ASSERT_LE(twice_khaus, 2 * twice_kprof);

    // Full-ranking Kendall.
    const Permutation a = Permutation::Random(n, rng);
    const Permutation b = Permutation::Random(n, rng);
    ASSERT_EQ(KendallTau(a, b), KendallTauNaive(a, b));

    // tau-refinement properties.
    const BucketOrder refined = TauRefine(tau, sigma);
    ASSERT_TRUE(IsRefinementOf(refined, sigma));

    // RestrictTo preserves relative order on a random subset.
    std::vector<ElementId> subset;
    for (std::size_t e = 0; e < n; ++e) {
      if (rng.Bernoulli(0.6)) subset.push_back(static_cast<ElementId>(e));
    }
    if (subset.size() >= 2) {
      auto restricted = sigma.RestrictTo(subset);
      ASSERT_TRUE(restricted.ok());
      for (std::size_t i = 0; i < subset.size(); ++i) {
        for (std::size_t j = 0; j < subset.size(); ++j) {
          ASSERT_EQ(restricted->Ahead(static_cast<ElementId>(i),
                                      static_cast<ElementId>(j)),
                    sigma.Ahead(subset[i], subset[j]));
        }
      }
    }
  }

  // DP variants on fresh random scores (smaller n; brute force involved).
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 9));
    std::vector<std::int64_t> scores(n);
    for (auto& s : scores) {
      s = 2 * rng.UniformInt(1, 3 * static_cast<std::int64_t>(n));
    }
    auto brute = OptimalBucketingBrute(scores);
    ASSERT_TRUE(brute.ok());
    for (auto algo :
         {BucketingAlgorithm::kLinearSpace, BucketingAlgorithm::kQuadraticSpace,
          BucketingAlgorithm::kPrefixSum}) {
      auto result = OptimalBucketing(scores, algo);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->cost_quad, brute->cost_quad);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace rankties
