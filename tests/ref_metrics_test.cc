// Unit tests for the oracle layer itself (src/ref): hand-computed examples
// plus structural properties of the self-contained refinement enumeration.
// The heavy cross-checking of core against ref lives in tests/fuzz/.

#include "ref/ref_metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/kendall.h"
#include "core/profile_metrics.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Order(std::size_t n,
                  std::vector<std::vector<ElementId>> buckets) {
  auto result = BucketOrder::FromBuckets(n, std::move(buckets));
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(RefMetricsTest, HandComputedPaperExample) {
  // sigma = [0 1 | 2], tau = [2 | 0 1]: pair {0,1} tied in both; pairs
  // {0,2} and {1,2} are discordant.
  const BucketOrder sigma = Order(3, {{0, 1}, {2}});
  const BucketOrder tau = Order(3, {{2}, {0, 1}});
  EXPECT_EQ(ref::TwiceKprof(sigma, tau), 4);  // 2 discordant pairs
  EXPECT_EQ(ref::KendallP(sigma, tau, 0.0), 2.0);
  EXPECT_EQ(ref::KendallP(sigma, tau, 1.0), 2.0);  // no one-sided ties
  // Positions: sigma = (1.5, 1.5, 3), tau = (2.5, 2.5, 1) -> L1 = 4.
  EXPECT_EQ(ref::TwiceFprof(sigma, tau), 8);
  EXPECT_EQ(ref::KHausdorff(sigma, tau), 2);
  EXPECT_EQ(ref::TwiceFHausdorff(sigma, tau), 8);
}

TEST(RefMetricsTest, OneSidedTiePenalty) {
  const BucketOrder tied = BucketOrder::SingleBucket(2);
  const BucketOrder split = Order(2, {{0}, {1}});
  EXPECT_EQ(ref::TwiceKprof(tied, split), 1);  // one pair, tied in one side
  EXPECT_EQ(ref::KendallP(tied, split, 0.25), 0.25);
  EXPECT_EQ(ref::KHausdorff(tied, split), 1);
}

TEST(RefMetricsTest, EnumerationVisitsEveryRefinementOnce) {
  const BucketOrder sigma = Order(5, {{0, 1, 2}, {3, 4}});
  std::set<std::vector<ElementId>> seen;
  std::int64_t visits = 0;
  ref::ForEachRefinementOrder(sigma, [&](const std::vector<ElementId>& ord) {
    ++visits;
    seen.insert(ord);
    const auto full =
        BucketOrder::FromPermutation(*Permutation::FromOrder(ord));
    EXPECT_TRUE(IsRefinementOf(full, sigma));
  });
  EXPECT_EQ(visits, 3 * 2 * 1 * 2 * 1);  // 3! * 2!
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), visits);
  EXPECT_EQ(visits, CountFullRefinements(sigma));
}

TEST(RefMetricsTest, RefinementPairCountSaturates) {
  const BucketOrder big = BucketOrder::SingleBucket(64);
  EXPECT_EQ(ref::RefinementPairCount(big, big),
            std::numeric_limits<std::int64_t>::max());
  const BucketOrder tiny = Order(2, {{0, 1}});
  EXPECT_EQ(ref::RefinementPairCount(tiny, tiny), 4);
}

TEST(RefMetricsTest, AgreesWithCoreOnRandomSmallOrders) {
  Rng rng(4242);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 6));
    std::vector<double> scores(n);
    for (double& s : scores) s = static_cast<double>(rng.UniformInt(0, 3));
    const BucketOrder sigma = BucketOrder::FromScores(scores);
    for (double& s : scores) s = static_cast<double>(rng.UniformInt(0, 3));
    const BucketOrder tau = BucketOrder::FromScores(scores);
    EXPECT_EQ(ref::TwiceKprof(sigma, tau), TwiceKprof(sigma, tau));
    EXPECT_EQ(ref::TwiceFprof(sigma, tau), TwiceFprof(sigma, tau));
    EXPECT_EQ(ref::KHausdorff(sigma, tau), KHausdorff(sigma, tau));
    EXPECT_EQ(ref::TwiceFHausdorff(sigma, tau), TwiceFHausdorff(sigma, tau));
  }
}

TEST(RefMetricsTest, FullRankingDistancesMatchClassical) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const Permutation a = Permutation::Random(12, rng);
    const Permutation b = Permutation::Random(12, rng);
    EXPECT_EQ(ref::KendallTau(a, b), KendallTau(a, b));
    EXPECT_EQ(ref::Footrule(a, b), Footrule(a, b));
  }
}

TEST(RefMetricsTest, DefinitionalPositionsMatchBucketOrder) {
  const BucketOrder sigma = Order(6, {{2, 5}, {0}, {1, 3, 4}});
  const std::vector<std::int64_t> twice_pos = ref::TwicePositions(sigma);
  for (std::size_t e = 0; e < sigma.n(); ++e) {
    EXPECT_EQ(twice_pos[e], sigma.TwicePosition(static_cast<ElementId>(e)))
        << "element " << e;
  }
}

}  // namespace
}  // namespace rankties
