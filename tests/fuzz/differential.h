#ifndef RANKTIES_TESTS_FUZZ_DIFFERENTIAL_H_
#define RANKTIES_TESTS_FUZZ_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_corpus.h"
#include "rank/bucket_order.h"

/// The differential / metamorphic driver: runs one fuzz case through every
/// optimized metric path and cross-checks the results against the src/ref
/// oracle and the paper's invariants. Every recorded failure message is
/// self-contained — it embeds the case seed and the exact replay command.
namespace rankties::fuzz {

struct DriverOptions {
  /// Enumeration oracles (ref::KHausdorff / ref::TwiceFHausdorff) only run
  /// when |R(sigma)| * |R(tau)| stays within this budget.
  std::int64_t enumeration_budget = 400'000;
  /// Lane count of the "wide" batch-engine pass (the 1-lane pass always
  /// runs too).
  std::size_t wide_threads = 4;
};

struct CheckStats {
  std::int64_t comparisons = 0;        ///< individual value-vs-value checks
  std::int64_t enumeration_cases = 0;  ///< cases the exponential oracle ran on
  std::int64_t mutation_steps = 0;     ///< edit steps checked (mutation traces)
  std::vector<std::string> failures;   ///< each embeds seed + replay command
};

/// Differential pass: optimized Kprof/Fprof/K^(p)/KHaus/FHaus (plus the
/// Theorem 5 construction) against the src/ref oracle; the zero-allocation
/// prepared kernels (FHaus joint-run decomposition included) against the
/// legacy BucketOrder paths; and the structured O(n log n) slot-assignment
/// solver against the general Hungarian matcher on the typed footrule
/// instance induced by (sigma, type(rho)).
void CheckDifferential(const FuzzCase& c, const DriverOptions& options,
                       CheckStats* stats);

/// Metamorphic pass: paper invariants on (sigma, tau, rho) — identity,
/// symmetry, triangle inequality, the Theorem 7 factor-2 bands, Prop 6 ==
/// Theorem 5, refinement sandwich bounds, relabeling invariance, K^(p)
/// monotonicity in p, and the Prop 13 (relaxed) triangle inequalities.
void CheckMetamorphic(const FuzzCase& c, CheckStats* stats);

/// Batch-engine pass: DistanceMatrix / DistancesToAll /
/// TotalDistanceParallel at 1 and options.wide_threads lanes must be
/// bit-identical to the serial ComputeMetric loop. All lists must share one
/// universe size; `seed` only labels failure messages.
void CheckBatchEngine(const std::vector<BucketOrder>& lists,
                      std::uint64_t seed, const DriverOptions& options,
                      CheckStats* stats);

}  // namespace rankties::fuzz

#endif  // RANKTIES_TESTS_FUZZ_DIFFERENTIAL_H_
