#include "fuzz/fuzz_corpus.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>

#include "gen/random_orders.h"
#include "gen/zipf.h"
#include "util/rng.h"

namespace rankties::fuzz {

namespace {

// splitmix64: decorrelates consecutive seeds without hurting replay — the
// raw seed is kept in FuzzCase, only the stream derivation is hashed.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Slices `ids` (already shuffled) into consecutive buckets of the given
// sizes. Sizes must sum to ids.size().
std::vector<std::vector<ElementId>> Slice(const std::vector<ElementId>& ids,
                                          const std::vector<std::size_t>&
                                              sizes) {
  std::vector<std::vector<ElementId>> buckets;
  std::size_t at = 0;
  for (std::size_t s : sizes) {
    buckets.emplace_back(ids.begin() + static_cast<std::ptrdiff_t>(at),
                         ids.begin() + static_cast<std::ptrdiff_t>(at + s));
    at += s;
  }
  assert(at == ids.size());
  return buckets;
}

// Zipf-skewed bucket sizes: a popular head bucket and a long singleton
// tail, the "few distinct values" extreme turned up to eleven.
std::vector<std::size_t> ZipfSizes(std::size_t n, Rng& rng) {
  const ZipfSampler sampler(8, 1.3);
  std::vector<std::size_t> sizes;
  std::size_t total = 0;
  while (total < n) {
    std::size_t s = sampler.Sample(rng) + 1;
    // Square the head occasionally to force one giant bucket.
    if (s > 1 && rng.Bernoulli(0.3)) s *= s;
    s = std::min(s, n - total);
    sizes.push_back(s);
    total += s;
  }
  return sizes;
}

BucketOrder BuildZipf(std::size_t n, Rng& rng) {
  std::vector<ElementId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  rng.Shuffle(ids);
  auto order = BucketOrder::FromBuckets(n, Slice(ids, ZipfSizes(n, rng)));
  assert(order.ok());
  return std::move(order).value();
}

BucketOrder BuildGiant(std::size_t n, Rng& rng) {
  if (n == 0) return BucketOrder();
  if (n == 1 || rng.Bernoulli(0.5)) return BucketOrder::SingleBucket(n);
  // One giant bucket plus a single leading or trailing singleton.
  std::vector<ElementId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  rng.Shuffle(ids);
  const ElementId lone = ids.back();
  ids.pop_back();
  std::vector<std::vector<ElementId>> buckets;
  if (rng.Bernoulli(0.5)) {
    buckets = {{lone}, ids};
  } else {
    buckets = {ids, {lone}};
  }
  auto order = BucketOrder::FromBuckets(n, std::move(buckets));
  assert(order.ok());
  return std::move(order).value();
}

// Shared-prefix pair: both sides start with the same bucket sequence over
// the same head elements; the tails are bucketed independently.
void BuildSharedPrefix(std::size_t n, Rng& rng, BucketOrder* sigma,
                       BucketOrder* tau) {
  std::vector<ElementId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  rng.Shuffle(ids);
  const std::size_t head = static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(n / 2)));
  const std::vector<ElementId> head_ids(ids.begin(),
                                        ids.begin() +
                                            static_cast<std::ptrdiff_t>(head));
  std::vector<ElementId> tail_ids(ids.begin() +
                                      static_cast<std::ptrdiff_t>(head),
                                  ids.end());
  std::vector<std::vector<ElementId>> shared =
      head == 0 ? std::vector<std::vector<ElementId>>{}
                : Slice(head_ids, RandomType(head, rng));
  auto build_side = [&](Rng& side_rng) {
    std::vector<std::vector<ElementId>> buckets = shared;
    std::vector<ElementId> tail = tail_ids;
    side_rng.Shuffle(tail);
    if (!tail.empty()) {
      for (auto& bucket : Slice(tail, RandomType(tail.size(), side_rng))) {
        buckets.push_back(std::move(bucket));
      }
    }
    auto order = BucketOrder::FromBuckets(n, std::move(buckets));
    assert(order.ok());
    return std::move(order).value();
  };
  *sigma = build_side(rng);
  *tau = build_side(rng);
}

}  // namespace

const char* FamilyName(Family family) {
  switch (family) {
    case Family::kAllSingleton:
      return "all-singleton";
    case Family::kOneGiantBucket:
      return "one-giant-bucket";
    case Family::kZipfBuckets:
      return "zipf-buckets";
    case Family::kTopKNil:
      return "top-k-nil";
    case Family::kSharedPrefix:
      return "shared-prefix";
    case Family::kUniformType:
      return "uniform-type";
  }
  return "unknown";
}

std::string FuzzCase::Describe() const {
  std::ostringstream out;
  out << "seed=" << seed << " family=" << FamilyName(family) << " n=" << n();
  if (n() <= 16) {
    out << " sigma=" << sigma.ToString() << " tau=" << tau.ToString()
        << " rho=" << rho.ToString();
  } else {
    out << " sigma.buckets=" << sigma.num_buckets()
        << " tau.buckets=" << tau.num_buckets()
        << " rho.buckets=" << rho.num_buckets();
  }
  return out.str();
}

FuzzCase MakeCase(std::uint64_t seed, std::size_t min_n, std::size_t max_n) {
  assert(min_n >= 2 && min_n <= max_n);  // degenerate universes (n < 2)
                                         // are covered by dedicated tests
  Rng rng(Mix(seed));
  FuzzCase c;
  c.seed = seed;
  c.family = static_cast<Family>(rng.UniformInt(0, kNumFamilies - 1));
  const std::size_t n = static_cast<std::size_t>(
      rng.UniformInt(static_cast<std::int64_t>(min_n),
                     static_cast<std::int64_t>(max_n)));
  switch (c.family) {
    case Family::kAllSingleton:
      c.sigma = BucketOrder::FromPermutation(Permutation::Random(n, rng));
      c.tau = BucketOrder::FromPermutation(Permutation::Random(n, rng));
      break;
    case Family::kOneGiantBucket:
      c.sigma = BuildGiant(n, rng);
      // Keep the partner fine-grained so enumeration oracles stay feasible;
      // occasionally make both sides giant (distance 0 edge).
      c.tau = rng.Bernoulli(0.2)
                  ? BuildGiant(n, rng)
                  : BucketOrder::FromPermutation(Permutation::Random(n, rng));
      break;
    case Family::kZipfBuckets:
      c.sigma = BuildZipf(n, rng);
      c.tau = BuildZipf(n, rng);
      break;
    case Family::kTopKNil:
      c.sigma = RandomTopK(
          n, static_cast<std::size_t>(
                 rng.UniformInt(0, static_cast<std::int64_t>(n))),
          rng);
      c.tau = RandomTopK(
          n, static_cast<std::size_t>(
                 rng.UniformInt(0, static_cast<std::int64_t>(n))),
          rng);
      break;
    case Family::kSharedPrefix:
      BuildSharedPrefix(n, rng, &c.sigma, &c.tau);
      break;
    case Family::kUniformType:
      c.sigma = RandomBucketOrder(n, rng);
      c.tau = RandomBucketOrder(n, rng);
      break;
  }
  c.rho = RandomBucketOrder(n, rng);
  return c;
}

BucketOrder Relabel(const BucketOrder& order, const Permutation& names) {
  assert(order.n() == names.n());
  std::vector<BucketIndex> bucket_of(order.n());
  for (std::size_t e = 0; e < order.n(); ++e) {
    const ElementId id = static_cast<ElementId>(e);
    bucket_of[static_cast<std::size_t>(names.Rank(id))] = order.BucketOf(id);
  }
  auto relabeled = BucketOrder::FromBucketIndex(bucket_of);
  assert(relabeled.ok());
  return std::move(relabeled).value();
}

}  // namespace rankties::fuzz
