#include "fuzz/mutation_trace.h"

#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/median_rank.h"
#include "core/metric_registry.h"
#include "core/online_median.h"
#include "core/prepared.h"
#include "core/profile_metrics.h"
#include "gen/random_orders.h"
#include "rank/bucket_order.h"
#include "ref/ref_metrics.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace rankties::fuzz {

namespace {

constexpr MetricKind kAllKinds[] = {MetricKind::kKprof, MetricKind::kFprof,
                                    MetricKind::kKHaus, MetricKind::kFHaus};

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kKprof: return "Kprof";
    case MetricKind::kFprof: return "Fprof";
    case MetricKind::kKHaus: return "KHaus";
    case MetricKind::kFHaus: return "FHaus";
  }
  return "?";
}

void TraceFail(std::uint64_t seed, std::int64_t step, const char* property,
               const std::string& detail, CheckStats* stats) {
  std::ostringstream out;
  out << "[mutation-trace/" << property << "] " << detail
      << " | trace seed=" << seed << " step=" << step;
  stats->failures.push_back(out.str());
}

void ExpectTrue(std::uint64_t seed, std::int64_t step, const char* property,
                bool condition, const std::string& detail,
                CheckStats* stats) {
  ++stats->comparisons;
  if (!condition) TraceFail(seed, step, property, detail, stats);
}

// --- Ground-truth edits -----------------------------------------------
//
// The ground truth is maintained as a plain bucket list-of-lists through
// code deliberately independent of the delta paths under test: every edit
// rebuilds a BucketOrder via the ordinary FromBuckets factory, and the
// comparison freeze is a from-scratch PreparedRanking construction.

std::vector<std::vector<ElementId>> BucketsOf(const BucketOrder& order) {
  return order.buckets();
}

BucketOrder FromBucketsChecked(std::size_t n,
                               std::vector<std::vector<ElementId>> buckets) {
  buckets.erase(std::remove_if(buckets.begin(), buckets.end(),
                               [](const std::vector<ElementId>& bucket) {
                                 return bucket.empty();
                               }),
                buckets.end());
  StatusOr<BucketOrder> order = BucketOrder::FromBuckets(n, buckets);
  RANKTIES_DCHECK_OK(order);
  return *std::move(order);
}

void EraseFromBucket(std::vector<ElementId>& bucket, ElementId e) {
  bucket.erase(std::find(bucket.begin(), bucket.end(), e));
}

std::size_t BucketIndexOf(const std::vector<std::vector<ElementId>>& buckets,
                          ElementId e) {
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (std::find(buckets[b].begin(), buckets[b].end(), e) !=
        buckets[b].end()) {
      return b;
    }
  }
  return buckets.size();
}

BucketOrder TruthMoveToBucket(const BucketOrder& order, ElementId e,
                              std::size_t target) {
  std::vector<std::vector<ElementId>> buckets = BucketsOf(order);
  EraseFromBucket(buckets[BucketIndexOf(buckets, e)], e);
  buckets[target].push_back(e);
  std::sort(buckets[target].begin(), buckets[target].end());
  return FromBucketsChecked(order.n(), std::move(buckets));
}

BucketOrder TruthMoveToNewBucket(const BucketOrder& order, ElementId e,
                                 std::size_t before) {
  const std::vector<std::vector<ElementId>> old = BucketsOf(order);
  std::vector<std::vector<ElementId>> buckets;
  for (std::size_t b = 0; b <= old.size(); ++b) {
    if (b == before) buckets.push_back({e});
    if (b == old.size()) break;
    std::vector<ElementId> kept = old[b];
    if (std::find(kept.begin(), kept.end(), e) != kept.end()) {
      EraseFromBucket(kept, e);
    }
    buckets.push_back(std::move(kept));
  }
  return FromBucketsChecked(order.n(), std::move(buckets));
}

BucketOrder TruthInsertItem(const BucketOrder& order, std::size_t bucket) {
  std::vector<std::vector<ElementId>> buckets = BucketsOf(order);
  if (buckets.empty()) {
    buckets.push_back({0});
  } else {
    buckets[bucket].push_back(static_cast<ElementId>(order.n()));
  }
  return FromBucketsChecked(order.n() + 1, std::move(buckets));
}

BucketOrder TruthEraseItem(const BucketOrder& order, ElementId e) {
  std::vector<std::vector<ElementId>> buckets = BucketsOf(order);
  EraseFromBucket(buckets[BucketIndexOf(buckets, e)], e);
  for (std::vector<ElementId>& bucket : buckets) {
    for (ElementId& x : bucket) {
      if (x > e) --x;
    }
  }
  return FromBucketsChecked(order.n() - 1, std::move(buckets));
}

// --- Per-step assertions ----------------------------------------------

// The delta-maintained prepared form must equal a from-scratch freeze of
// the ground truth, array for array.
void CheckPreparedEquals(std::uint64_t seed, std::int64_t step,
                         const PreparedRanking& live, const BucketOrder& truth,
                         CheckStats* stats) {
  const PreparedRanking fresh(truth);
  ExpectTrue(seed, step, "prepared-arrays",
             live.bucket_of() == fresh.bucket_of() &&
                 live.by_bucket() == fresh.by_bucket() &&
                 live.bucket_offset() == fresh.bucket_offset() &&
                 live.twice_position() == fresh.twice_position() &&
                 live.tied_pairs() == fresh.tied_pairs(),
             "delta-edited freeze diverges from fresh freeze", stats);
  ExpectTrue(seed, step, "prepared-thaw", live.ToBucketOrder() == truth,
             "ToBucketOrder round trip diverges from ground truth", stats);
}

// Row `list` of the maintained matrix against the src/ref oracle (and the
// independently-constructed Theorem 5 path for FHaus).
void CheckRowAgainstOracle(std::uint64_t seed, std::int64_t step,
                           const IncrementalDistanceMatrix& engine,
                           const std::vector<BucketOrder>& truth,
                           std::size_t list, const DriverOptions& options,
                           CheckStats* stats) {
  for (std::size_t j = 0; j < truth.size(); ++j) {
    if (j == list) continue;
    const double got = engine.Matrix()[list][j];
    double want = 0.0;
    bool checked = true;
    switch (engine.kind()) {
      case MetricKind::kKprof:
        want = static_cast<double>(ref::TwiceKprof(truth[list], truth[j])) /
               2.0;
        break;
      case MetricKind::kFprof:
        want = static_cast<double>(ref::TwiceFprof(truth[list], truth[j])) /
               2.0;
        break;
      case MetricKind::kKHaus:
        if (ref::RefinementPairCount(truth[list], truth[j]) <=
            options.enumeration_budget) {
          ++stats->enumeration_cases;
          want = static_cast<double>(ref::KHausdorff(truth[list], truth[j]));
        } else {
          // Beyond the enumeration budget the independent oracle is the
          // Theorem 5 refinement construction.
          want = static_cast<double>(
              KHausdorffTheorem5(truth[list], truth[j]));
        }
        break;
      case MetricKind::kFHaus:
        if (ref::RefinementPairCount(truth[list], truth[j]) <=
            options.enumeration_budget) {
          ++stats->enumeration_cases;
          want = static_cast<double>(
                     ref::TwiceFHausdorff(truth[list], truth[j])) /
                 2.0;
        } else {
          // FHausdorff(BucketOrder) is the explicit Theorem 5
          // construction, kept in-tree as the oracle for the prepared
          // kernel this engine runs.
          want = FHausdorff(truth[list], truth[j]);
        }
        break;
      default:
        checked = false;
        break;
    }
    if (!checked) continue;
    ExpectTrue(seed, step, "row-vs-oracle", got == want,
               std::string(KindName(engine.kind())) + " row value diverges",
               stats);
  }
}

// The whole maintained matrix against a full prepared-kernel recompute.
void CheckMatrixEquals(std::uint64_t seed, std::int64_t step,
                       const IncrementalDistanceMatrix& engine,
                       const std::vector<BucketOrder>& truth,
                       CheckStats* stats) {
  const std::vector<std::vector<double>> full =
      DistanceMatrix(engine.kind(), truth);
  bool equal = true;
  for (std::size_t i = 0; i < truth.size() && equal; ++i) {
    for (std::size_t j = 0; j < truth.size(); ++j) {
      // Bit-exact: the engine's contract is == with a full recompute.
      if (engine.Matrix()[i][j] != full[i][j]) {
        equal = false;
        break;
      }
    }
  }
  ExpectTrue(seed, step, "matrix-vs-full", equal,
             std::string(KindName(engine.kind())) +
                 " matrix diverges from DistanceMatrix recompute",
             stats);
}

void CheckMedianEquals(std::uint64_t seed, std::int64_t step,
                       const OnlineMedianAggregator& aggregator,
                       const std::vector<BucketOrder>& truth, std::size_t k,
                       CheckStats* stats) {
  StatusOr<std::vector<std::int64_t>> online = aggregator.ScoresQuad();
  StatusOr<std::vector<std::int64_t>> batch =
      MedianRankScoresQuad(truth, MedianPolicy::kLower);
  std::string detail = "online median scores diverge from batch";
  if (online.ok() && batch.ok() && *online != *batch) {
    std::ostringstream dump;
    dump << detail << ": online [";
    for (std::int64_t v : *online) dump << " " << v;
    dump << " ] batch [";
    for (std::int64_t v : *batch) dump << " " << v;
    dump << " ] m=" << truth.size();
    detail = dump.str();
  }
  ExpectTrue(seed, step, "median-scores",
             online.ok() && batch.ok() && *online == *batch, detail, stats);
  StatusOr<BucketOrder> online_topk = aggregator.CurrentTopK(k);
  StatusOr<BucketOrder> batch_topk =
      MedianAggregateTopK(truth, k, MedianPolicy::kLower);
  ExpectTrue(seed, step, "median-topk",
             online_topk.ok() && batch_topk.ok() && *online_topk == *batch_topk,
             "online top-k diverges from batch", stats);
}

}  // namespace

void CheckMutationTrace(std::uint64_t seed, std::size_t steps,
                        const DriverOptions& options, CheckStats* stats) {
  Rng rng(seed);
  // Two size bands, like the main sweep: small universes keep the
  // exponential enumeration oracle in play, larger ones stress the
  // affected-range arithmetic.
  const std::size_t n = static_cast<std::size_t>(
      seed % 3 == 2 ? rng.UniformInt(8, 24) : rng.UniformInt(2, 6));
  const std::size_t m = static_cast<std::size_t>(rng.UniformInt(2, 6));

  std::vector<BucketOrder> truth;
  truth.reserve(m);
  for (std::size_t v = 0; v < m; ++v) {
    truth.push_back(RandomBucketOrder(n, rng));
  }

  std::vector<IncrementalDistanceMatrix> engines;
  engines.reserve(4);
  for (MetricKind kind : kAllKinds) {
    StatusOr<IncrementalDistanceMatrix> engine =
        IncrementalDistanceMatrix::Create(kind, truth);
    RANKTIES_DCHECK_OK(engine);
    engines.push_back(std::move(*engine));
  }
  OnlineMedianAggregator aggregator(n);
  for (const BucketOrder& voter : truth) {
    const Status added = aggregator.AddVoter(voter);
    ExpectTrue(seed, -1, "add-voter-status", added.ok(), added.message(),
               stats);
  }

  for (std::size_t s = 0; s < steps; ++s) {
    const std::int64_t step = static_cast<std::int64_t>(s);
    const std::size_t list = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(m) - 1));
    const ElementId e = static_cast<ElementId>(
        rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    const std::size_t t = truth[list].num_buckets();
    const std::int64_t op = rng.UniformInt(0, 9);
    if (op < 6) {
      // MoveToBucket — target drawn over all current buckets, so no-ops
      // (target == source) occur and are checked too.
      const std::size_t target = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(t) - 1));
      truth[list] = TruthMoveToBucket(truth[list], e, target);
      for (IncrementalDistanceMatrix& engine : engines) {
        const Status moved = engine.MoveToBucket(list, e, target);
        ExpectTrue(seed, step, "move-status", moved.ok(), moved.message(),
                   stats);
      }
    } else if (op < 9) {
      // MoveToNewBucket — `before` may equal num_buckets() (append).
      const std::size_t before = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(t)));
      truth[list] = TruthMoveToNewBucket(truth[list], e, before);
      for (IncrementalDistanceMatrix& engine : engines) {
        const Status moved = engine.MoveToNewBucket(list, e, before);
        ExpectTrue(seed, step, "move-status", moved.ok(), moved.message(),
                   stats);
      }
    } else {
      // ReplaceList — the escape hatch for wholesale edits.
      truth[list] = RandomBucketOrder(n, rng);
      for (IncrementalDistanceMatrix& engine : engines) {
        const Status replaced = engine.ReplaceList(list, truth[list]);
        ExpectTrue(seed, step, "replace-status", replaced.ok(),
                   replaced.message(), stats);
      }
    }
    const Status updated = aggregator.UpdateVoter(list, truth[list]);
    ExpectTrue(seed, step, "update-voter-status", updated.ok(),
               updated.message(), stats);

    for (const IncrementalDistanceMatrix& engine : engines) {
      CheckPreparedEquals(seed, step, engine.List(list), truth[list], stats);
      CheckMatrixEquals(seed, step, engine, truth, stats);
      CheckRowAgainstOracle(seed, step, engine, truth, list, options, stats);
    }
    CheckMedianEquals(seed, step, aggregator, truth, (n + 1) / 2, stats);
    ++stats->mutation_steps;
  }

  // Wind down: withdraw voters one at a time (swap-with-last on both
  // sides) and re-check against the batch median at every corpus size.
  std::size_t remaining = m;
  while (remaining > 1) {
    const std::size_t victim = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(remaining) - 1));
    const Status removed = aggregator.RemoveVoter(victim);
    ExpectTrue(seed, -1, "remove-voter-status", removed.ok(),
               removed.message(), stats);
    truth[victim] = std::move(truth[remaining - 1]);
    truth.pop_back();
    --remaining;
    CheckMedianEquals(seed, -1, aggregator, truth, (n + 1) / 2, stats);
  }
}

void CheckPreparedEditTrace(std::uint64_t seed, std::size_t steps,
                            CheckStats* stats) {
  Rng rng(seed);
  BucketOrder truth =
      RandomBucketOrder(static_cast<std::size_t>(rng.UniformInt(2, 12)), rng);
  PreparedRanking live(truth);
  for (std::size_t s = 0; s < steps; ++s) {
    const std::int64_t step = static_cast<std::int64_t>(s);
    const std::size_t n = truth.n();
    const std::size_t t = truth.num_buckets();
    std::int64_t op = n == 0 ? 2 : rng.UniformInt(0, 9);
    if (n <= 1 && op >= 8) op = 2;  // keep erase for domains that have 2+
    Status applied = Status::Ok();
    if (op < 4) {
      const ElementId e = static_cast<ElementId>(
          rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
      const std::size_t target = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(t) - 1));
      truth = TruthMoveToBucket(truth, e, target);
      applied = live.MoveToBucket(e, target);
    } else if (op < 7) {
      const ElementId e = static_cast<ElementId>(
          rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
      const std::size_t before = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(t)));
      truth = TruthMoveToNewBucket(truth, e, before);
      applied = live.MoveToNewBucket(e, before);
    } else if (op < 8) {
      const std::size_t bucket =
          t == 0 ? 0
                 : static_cast<std::size_t>(
                       rng.UniformInt(0, static_cast<std::int64_t>(t) - 1));
      truth = TruthInsertItem(truth, bucket);
      applied = live.InsertItem(bucket);
    } else {
      const ElementId e = static_cast<ElementId>(
          rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
      truth = TruthEraseItem(truth, e);
      applied = live.EraseItem(e);
    }
    ExpectTrue(seed, step, "edit-status", applied.ok(), applied.message(),
               stats);
    CheckPreparedEquals(seed, step, live, truth, stats);
    ++stats->mutation_steps;
  }
}

}  // namespace rankties::fuzz
