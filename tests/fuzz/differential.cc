#include "fuzz/differential.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>

#include "core/batch_engine.h"
#include "core/footrule.h"
#include "core/footrule_matching.h"
#include "core/hausdorff.h"
#include "core/kendall.h"
#include "core/metric_registry.h"
#include "core/pair_counts.h"
#include "core/prepared.h"
#include "core/profile_metrics.h"
#include "rank/refinement.h"
#include "ref/ref_metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rankties::fuzz {

namespace {

constexpr double kPenaltyGrid[] = {0.0, 0.1, 0.25, 1.0 / 3.0, 0.5,
                                   0.7, 0.75, 0.9, 1.0};

std::string Render(double v) {
  std::ostringstream out;
  out << std::setprecision(17) << v;
  return out.str();
}

std::string Render(std::int64_t v) { return std::to_string(v); }

void Fail(const FuzzCase& c, const char* property, const std::string& detail,
          CheckStats* stats) {
  std::ostringstream out;
  out << "[" << property << "] " << detail << " | " << c.Describe()
      << " | replay: fuzz_test --seed=" << c.seed;
  stats->failures.push_back(out.str());
}

template <typename T>
void ExpectEq(const FuzzCase& c, const char* property, T got, T want,
              CheckStats* stats) {
  ++stats->comparisons;
  if (got != want) {
    Fail(c, property, "got " + Render(got) + " want " + Render(want), stats);
  }
}

template <typename T>
void ExpectLe(const FuzzCase& c, const char* property, T lhs, T rhs,
              CheckStats* stats) {
  ++stats->comparisons;
  if (lhs > rhs) {
    Fail(c, property, Render(lhs) + " exceeds " + Render(rhs), stats);
  }
}

}  // namespace

void CheckDifferential(const FuzzCase& c, const DriverOptions& options,
                       CheckStats* stats) {
  const BucketOrder& sigma = c.sigma;
  const BucketOrder& tau = c.tau;

  // Profile metrics vs the O(n^2) definitional oracle — exact integers.
  ExpectEq(c, "Kprof-vs-oracle", TwiceKprof(sigma, tau),
           ref::TwiceKprof(sigma, tau), stats);
  ExpectEq(c, "Fprof-vs-oracle", TwiceFprof(sigma, tau),
           ref::TwiceFprof(sigma, tau), stats);
  for (double p : kPenaltyGrid) {
    ExpectEq(c, "KendallP-vs-oracle", KendallP(sigma, tau, p),
             ref::KendallP(sigma, tau, p), stats);
  }

  // The two optimized Hausdorff-Kendall paths agree at any size.
  ExpectEq(c, "Prop6-vs-Thm5", KHausdorff(sigma, tau),
           KHausdorffTheorem5(sigma, tau), stats);

  // The exponential enumeration oracle, where the budget allows.
  if (ref::RefinementPairCount(sigma, tau) <= options.enumeration_budget) {
    ++stats->enumeration_cases;
    ExpectEq(c, "KHaus-vs-enumeration", KHausdorff(sigma, tau),
             ref::KHausdorff(sigma, tau), stats);
    ExpectEq(c, "FHaus-vs-enumeration", TwiceFHausdorff(sigma, tau),
             ref::TwiceFHausdorff(sigma, tau), stats);
  }

  // The registry dispatch agrees with the oracle dispatch bit-for-bit on
  // the polynomial kinds (Hausdorff kinds are covered above).
  for (MetricKind kind : {MetricKind::kKprof, MetricKind::kFprof}) {
    ExpectEq(c, MetricName(kind), ComputeMetric(kind, sigma, tau),
             ref::ComputeMetric(kind, sigma, tau), stats);
  }

  // The zero-allocation prepared kernels agree with the legacy BucketOrder
  // paths bit-for-bit on every family. The scratch is deliberately shared
  // across all fuzz cases (static, one fuzz thread) so reuse across wildly
  // varying n and bucket counts is itself under test.
  {
    static PairScratch scratch;
    const PreparedRanking ps(sigma);
    const PreparedRanking pt(tau);
    ++stats->comparisons;
    if (!(ComputePairCounts(ps, pt, scratch) ==
          ComputePairCounts(sigma, tau))) {
      Fail(c, "prepared-pair-counts",
           "prepared and legacy pair classification disagree", stats);
    }
    ExpectEq(c, "prepared-Kprof", TwiceKprof(ps, pt, scratch),
             TwiceKprof(sigma, tau), stats);
    ExpectEq(c, "prepared-KHaus", KHausdorff(ps, pt, scratch),
             KHausdorff(sigma, tau), stats);
    ExpectEq(c, "prepared-Fprof", TwiceFprof(ps, pt),
             TwiceFprof(sigma, tau), stats);
    ExpectEq(c, "prepared-FHaus", TwiceFHausdorff(ps, pt, scratch),
             TwiceFHausdorff(sigma, tau), stats);
    for (double p : kPenaltyGrid) {
      ExpectEq(c, "prepared-KendallP", KendallP(ps, pt, p, scratch),
               KendallP(sigma, tau, p), stats);
    }
  }

  // The structured O(n log n) slot-assignment solver against the general
  // Hungarian matcher, on the typed footrule instance induced by
  // (sigma, type(rho)): slot c of a type-alpha order is a bucket run at a
  // fixed twice-position, element e sits at sigma's twice-position, and the
  // cost is |element_pos - slot_pos|. The Hungarian cross-check is O(n^3),
  // so gate by n to keep the fuzz loop fast.
  if (sigma.n() >= 1 && sigma.n() <= 24) {
    const std::size_t n = sigma.n();
    std::vector<std::int64_t> element_pos(n);
    for (std::size_t e = 0; e < n; ++e) {
      element_pos[e] = sigma.TwicePosition(static_cast<ElementId>(e));
    }
    std::vector<std::int64_t> slot_pos;
    slot_pos.reserve(n);
    std::int64_t before = 0;
    for (std::size_t size : c.rho.Type()) {
      const std::int64_t twice_pos =
          2 * before + static_cast<std::int64_t>(size) + 1;
      for (std::size_t s = 0; s < size; ++s) slot_pos.push_back(twice_pos);
      before += static_cast<std::int64_t>(size);
    }
    const StatusOr<AssignmentResult> structured =
        StructuredSlotAssignment(element_pos, slot_pos);
    ++stats->comparisons;
    if (!structured.ok()) {
      Fail(c, "structured-matcher-status", structured.status().message(),
           stats);
    } else {
      std::vector<std::vector<std::int64_t>> cost(
          n, std::vector<std::int64_t>(n, 0));
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t col = 0; col < n; ++col) {
          cost[r][col] = std::abs(element_pos[r] - slot_pos[col]);
        }
      }
      const StatusOr<AssignmentResult> general = MinCostAssignment(cost);
      ++stats->comparisons;
      if (!general.ok()) {
        Fail(c, "structured-matcher-hungarian", general.status().message(),
             stats);
      } else {
        ExpectEq(c, "structured-vs-hungarian-cost",
                 structured.value().total_cost, general.value().total_cost,
                 stats);
        // The structured assignment must itself be a valid permutation
        // whose induced cost matches its reported total.
        std::vector<bool> used(n, false);
        std::int64_t recomputed = 0;
        bool valid = structured.value().column_of_row.size() == n;
        for (std::size_t r = 0; valid && r < n; ++r) {
          const std::size_t col = structured.value().column_of_row[r];
          if (col >= n || used[col]) {
            valid = false;
            break;
          }
          used[col] = true;
          recomputed += cost[r][col];
        }
        ++stats->comparisons;
        if (!valid) {
          Fail(c, "structured-matcher-permutation",
               "column_of_row is not a permutation", stats);
        } else {
          ExpectEq(c, "structured-matcher-cost-consistency", recomputed,
                   structured.value().total_cost, stats);
        }
      }
    }
  }
}

void CheckMetamorphic(const FuzzCase& c, CheckStats* stats) {
  const BucketOrder& sigma = c.sigma;
  const BucketOrder& tau = c.tau;
  const BucketOrder& rho = c.rho;
  Rng rng(c.seed ^ 0xd1ffe4f00dULL);

  // Identity and symmetry.
  for (MetricKind kind : AllMetricKinds()) {
    ExpectEq(c, "identity", ComputeMetric(kind, sigma, sigma), 0.0, stats);
    ExpectEq(c, "symmetry", ComputeMetric(kind, sigma, tau),
             ComputeMetric(kind, tau, sigma), stats);
  }

  // Triangle inequality for all four metrics, on exact (doubled) integers.
  ExpectLe(c, "triangle-Kprof", TwiceKprof(sigma, rho),
           TwiceKprof(sigma, tau) + TwiceKprof(tau, rho), stats);
  ExpectLe(c, "triangle-Fprof", TwiceFprof(sigma, rho),
           TwiceFprof(sigma, tau) + TwiceFprof(tau, rho), stats);
  ExpectLe(c, "triangle-KHaus", KHausdorff(sigma, rho),
           KHausdorff(sigma, tau) + KHausdorff(tau, rho), stats);
  ExpectLe(c, "triangle-FHaus", TwiceFHausdorff(sigma, rho),
           TwiceFHausdorff(sigma, tau) + TwiceFHausdorff(tau, rho), stats);

  // Theorem 7 factor-2 bands: eqs. (4), (5), (6), doubled.
  const std::int64_t tk = TwiceKprof(sigma, tau);
  const std::int64_t tf = TwiceFprof(sigma, tau);
  const std::int64_t kh = KHausdorff(sigma, tau);
  const std::int64_t tfh = TwiceFHausdorff(sigma, tau);
  ExpectLe(c, "Thm7-KHaus<=FHaus", 2 * kh, tfh, stats);
  ExpectLe(c, "Thm7-FHaus<=2KHaus", tfh, 4 * kh, stats);
  ExpectLe(c, "Thm7-Kprof<=Fprof", tk, tf, stats);
  ExpectLe(c, "Thm7-Fprof<=2Kprof", tf, 2 * tk, stats);
  ExpectLe(c, "Thm7-Kprof<=KHaus", tk, 2 * kh, stats);
  ExpectLe(c, "Thm7-KHaus<=2Kprof", 2 * kh, 2 * tk, stats);

  // K^(p) is non-decreasing in p; K^(1/2) is exactly Kprof.
  double prev = KendallP(sigma, tau, kPenaltyGrid[0]);
  for (double p : kPenaltyGrid) {
    const double value = KendallP(sigma, tau, p);
    ExpectLe(c, "KendallP-monotone", prev, value, stats);
    prev = value;
  }
  ExpectEq(c, "KendallP-half-is-Kprof", 2.0 * KendallP(sigma, tau, 0.5),
           static_cast<double>(tk), stats);

  // Prop 13 (a): exact triangle inequality for p in [1/2, 1].
  for (double p : {0.5, 0.75, 1.0}) {
    ExpectLe(c, "Prop13-metric-triangle", KendallP(sigma, rho, p),
             KendallP(sigma, tau, p) + KendallP(tau, rho, p), stats);
  }
  // Prop 13 (b): for p in (0, 1/2) the triangle inequality only holds up
  // to the relaxation constant 1/(2p) (near metric).
  for (int i = 0; i < 3; ++i) {
    const double p = rng.UniformReal(0.01, 0.49);
    const double direct = KendallP(sigma, rho, p);
    const double detour =
        KendallP(sigma, tau, p) + KendallP(tau, rho, p);
    const double bound = detour / (2.0 * p);
    ExpectLe(c, "Prop13-near-metric-bound", direct,
             bound + 1e-9 * (1.0 + bound), stats);
  }

  // Refinement consistency: the * operator refines its second argument,
  // and any pair of full refinements is sandwiched between the discordant
  // count and the all-ties-break-badly count. All four metrics live in the
  // same band.
  {
    ++stats->comparisons;
    if (!IsRefinementOf(TauRefine(tau, sigma), sigma)) {
      Fail(c, "tau-refine-refines", "TauRefine(tau, sigma) !< sigma", stats);
    }
    const PairCounts counts = ComputePairCountsNaive(sigma, tau);
    const std::int64_t lo = counts.discordant;
    const std::int64_t hi = counts.discordant + counts.tied_sigma_only +
                            counts.tied_tau_only + counts.tied_both;
    const Permutation s = RandomFullRefinement(sigma, rng);
    const Permutation t = RandomFullRefinement(tau, rng);
    const std::int64_t k_st = ref::KendallTau(s, t);
    ExpectLe(c, "refinement-sandwich-lo", lo, k_st, stats);
    ExpectLe(c, "refinement-sandwich-hi", k_st, hi, stats);
    ExpectLe(c, "refinement-sandwich-Kprof-lo", 2 * lo, tk, stats);
    ExpectLe(c, "refinement-sandwich-Kprof-hi", tk, 2 * hi, stats);
    ExpectLe(c, "refinement-sandwich-KHaus-lo", lo, kh, stats);
    ExpectLe(c, "refinement-sandwich-KHaus-hi", kh, hi, stats);
  }

  // On full rankings every tie-aware metric collapses to its classical
  // ancestor.
  if (sigma.IsFull() && tau.IsFull()) {
    const Permutation s = sigma.CanonicalRefinement();
    const Permutation t = tau.CanonicalRefinement();
    const std::int64_t k = KendallTau(s, t);
    const std::int64_t f = Footrule(s, t);
    ExpectEq(c, "full-Kprof-is-K", tk, 2 * k, stats);
    ExpectEq(c, "full-KHaus-is-K", kh, k, stats);
    ExpectEq(c, "full-Fprof-is-F", tf, 2 * f, stats);
    ExpectEq(c, "full-FHaus-is-F", tfh, 2 * f, stats);
  }

  // Relabeling invariance: renaming elements changes nothing.
  {
    const Permutation names = Permutation::Random(sigma.n(), rng);
    const BucketOrder sigma2 = Relabel(sigma, names);
    const BucketOrder tau2 = Relabel(tau, names);
    for (MetricKind kind : AllMetricKinds()) {
      ExpectEq(c, "relabeling-invariance", ComputeMetric(kind, sigma, tau),
               ComputeMetric(kind, sigma2, tau2), stats);
    }
  }
}

void CheckBatchEngine(const std::vector<BucketOrder>& lists,
                      std::uint64_t seed, const DriverOptions& options,
                      CheckStats* stats) {
  if (lists.empty()) return;
  FuzzCase label;  // carrier for the failure-message context only
  label.seed = seed;
  label.sigma = label.tau = label.rho = lists.front();

  const std::size_t m = lists.size();
  for (MetricKind kind : AllMetricKinds()) {
    // Serial ground truth, accumulated in index order.
    std::vector<std::vector<double>> expected(m, std::vector<double>(m));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        expected[i][j] = ComputeMetric(kind, lists[i], lists[j]);
      }
    }
    double expected_total = 0.0;
    for (std::size_t j = 0; j < m; ++j) expected_total += expected[0][j];

    for (std::size_t threads : {std::size_t{1}, options.wide_threads}) {
      ThreadPool::SetGlobalThreads(threads);
      const std::string tag = std::string(MetricName(kind)) + "@threads=" +
                              std::to_string(threads);
      const std::vector<std::vector<double>> matrix =
          DistanceMatrix(kind, lists);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          ++stats->comparisons;
          if (matrix[i][j] != expected[i][j]) {
            Fail(label, "batch-matrix",
                 tag + " [" + std::to_string(i) + "][" + std::to_string(j) +
                     "] got " + Render(matrix[i][j]) + " want " +
                     Render(expected[i][j]),
                 stats);
          }
        }
      }
      // The legacy per-pair engine stays the prepared engine's oracle.
      const std::vector<std::vector<double>> unprepared =
          DistanceMatrixUnprepared(kind, lists);
      ++stats->comparisons;
      if (unprepared != expected) {
        Fail(label, "batch-matrix-unprepared",
             tag + " legacy engine diverged from the serial reference",
             stats);
      }
      ++stats->comparisons;
      if (matrix != unprepared) {
        Fail(label, "batch-matrix-prepared-vs-unprepared",
             tag + " prepared and legacy engines disagree", stats);
      }
      const std::vector<double> row =
          DistancesToAll(kind, lists.front(), lists);
      for (std::size_t j = 0; j < m; ++j) {
        ++stats->comparisons;
        if (row[j] != expected[0][j]) {
          Fail(label, "batch-row",
               tag + " [" + std::to_string(j) + "] got " + Render(row[j]) +
                   " want " + Render(expected[0][j]),
               stats);
        }
      }
      const double total = TotalDistanceParallel(kind, lists.front(), lists);
      ++stats->comparisons;
      if (total != expected_total) {
        Fail(label, "batch-total",
             tag + " got " + Render(total) + " want " +
                 Render(expected_total),
             stats);
      }
    }
    ThreadPool::SetGlobalThreads(0);  // restore the default lane count
  }
}

}  // namespace rankties::fuzz
