// Differential + metamorphic fuzz harness for the four tie-aware metrics.
//
// Every case derives from a single 64-bit seed. Reproduce any CI failure
// locally with
//
//     fuzz_test --seed=<s>
//
// (the seed is printed in every failure message). Sweep shape is
// configurable: --seed-base=<s> / --cases=<n> / --failure-file=<path>, or
// the environment equivalents RANKTIES_FUZZ_SEED_BASE /
// RANKTIES_FUZZ_CASES / RANKTIES_FUZZ_FAILURE_FILE. On top of those,
// --max-cases=<n> (env RANKTIES_FUZZ_MAX_CASES) *caps* the effective case
// count without replacing it — CI shards export RANKTIES_FUZZ_CASES for
// the full window while a local smoke run tacks on --max-cases=50, and
// whichever is smaller wins. The mutation-trace sweep scales with the same
// case count (one trace per ~40 cases), so the cap shrinks it too.
//
// --obs (or RANKTIES_OBS=1) turns metric collection, trace recording and
// the flight recorder on for the whole sweep, so the fuzz workload also
// exercises the src/obs instrumentation in the engines under test (a CI
// shard runs this way). On failure the flight recorder's newest events are
// dumped to stderr as a post-mortem. --perfetto=<path> (env
// RANKTIES_FUZZ_PERFETTO) additionally writes the sweep's span recorder as
// Chrome trace-event JSON — CI publishes it as a workflow artifact.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/hausdorff.h"
#include "core/kendall.h"
#include "core/profile_metrics.h"
#include "fuzz/differential.h"
#include "fuzz/fuzz_corpus.h"
#include "fuzz/mutation_trace.h"
#include "gen/random_orders.h"
#include "obs/obs.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties::fuzz {
namespace {

struct FuzzFlags {
  std::uint64_t seed_base = 0xF00D;
  std::int64_t cases = 1500;
  std::optional<std::int64_t> max_cases;  ///< cap on `cases`, never a raise
  std::optional<std::uint64_t> single_seed;
  std::string failure_file;
  std::string perfetto_file;
  bool obs = false;

  std::int64_t EffectiveCases() const {
    return max_cases ? std::min(cases, *max_cases) : cases;
  }
};

FuzzFlags& Flags() {
  static FuzzFlags flags;
  return flags;
}

// The sweep mixes two size bands, chosen by the seed itself (never by loop
// position) so that --seed=<s> rebuilds the identical case: two of three
// seeds stay small enough for the exponential enumeration oracle, the
// third exercises the polynomial paths on larger universes.
FuzzCase MakeBandedCase(std::uint64_t seed) {
  return seed % 3 == 2 ? MakeCase(seed, 8, 48) : MakeCase(seed, 2, 7);
}

void ReportFailures(const CheckStats& stats,
                    const std::vector<std::uint64_t>& failing_seeds) {
  for (const std::string& failure : stats.failures) {
    ADD_FAILURE() << failure;
  }
  if (!Flags().failure_file.empty() && !failing_seeds.empty()) {
    std::ofstream out(Flags().failure_file, std::ios::app);
    for (std::uint64_t seed : failing_seeds) out << seed << "\n";
  }
}

TEST(FuzzHarnessTest, DifferentialAndMetamorphicSweep) {
  const DriverOptions options;
  CheckStats stats;
  std::vector<std::uint64_t> failing_seeds;
  std::vector<std::uint64_t> seeds;
  if (Flags().single_seed) {
    seeds.push_back(*Flags().single_seed);
  } else {
    for (std::int64_t i = 0; i < Flags().EffectiveCases(); ++i) {
      seeds.push_back(Flags().seed_base + static_cast<std::uint64_t>(i));
    }
  }
  for (std::uint64_t seed : seeds) {
    const FuzzCase c = MakeBandedCase(seed);
    if (Flags().single_seed) {
      std::fprintf(stderr, "replaying %s\n", c.Describe().c_str());
    }
    const std::size_t before = stats.failures.size();
    CheckDifferential(c, options, &stats);
    CheckMetamorphic(c, &stats);
    if (stats.failures.size() != before) failing_seeds.push_back(seed);
  }
  ReportFailures(stats, failing_seeds);
  std::fprintf(stderr,
               "fuzz sweep: %lld cases, %lld comparisons, %lld with "
               "enumeration oracle\n",
               static_cast<long long>(seeds.size()),
               static_cast<long long>(stats.comparisons),
               static_cast<long long>(stats.enumeration_cases));
  if (!Flags().single_seed && Flags().EffectiveCases() >= 1000) {
    // The acceptance floor: the harness must actually exercise the
    // oracle at scale, not silently skip it.
    EXPECT_GE(stats.comparisons, 10'000);
    EXPECT_GE(stats.enumeration_cases, Flags().EffectiveCases() / 20);
  }
}

// The mutation-trace family: seeded random edit scripts through every
// delta path — PreparedRanking in-place edits, IncrementalDistanceMatrix
// count/row maintenance for all four metrics, OnlineMedianAggregator
// voter updates and withdrawals — each step cross-checked bit-exactly
// against a full recompute (fresh freeze, DistanceMatrix, src/ref oracle,
// batch median). Trace count scales with the case window so the default
// CI window lands well past the 1,000-step acceptance floor.
TEST(FuzzHarnessTest, MutationTraceSweep) {
  DriverOptions options;
  // Traces re-consult the enumeration oracle after every step of a small
  // universe, not once per case, so they get a tighter budget than the
  // one-shot differential sweep.
  options.enumeration_budget = 20'000;
  CheckStats stats;
  std::vector<std::uint64_t> failing_seeds;
  const std::int64_t cases = Flags().EffectiveCases();
  const std::int64_t corpus_traces = std::max<std::int64_t>(3, cases / 60);
  const std::int64_t edit_traces = std::max<std::int64_t>(4, cases / 40);
  for (std::int64_t i = 0; i < corpus_traces; ++i) {
    const std::uint64_t seed =
        Flags().seed_base + 0x3A5E000 + static_cast<std::uint64_t>(i);
    const std::size_t before = stats.failures.size();
    CheckMutationTrace(seed, /*steps=*/24, options, &stats);
    if (stats.failures.size() != before) failing_seeds.push_back(seed);
  }
  for (std::int64_t i = 0; i < edit_traces; ++i) {
    const std::uint64_t seed =
        Flags().seed_base + 0x7E517000 + static_cast<std::uint64_t>(i);
    const std::size_t before = stats.failures.size();
    CheckPreparedEditTrace(seed, /*steps=*/40, &stats);
    if (stats.failures.size() != before) failing_seeds.push_back(seed);
  }
  ReportFailures(stats, failing_seeds);
  std::fprintf(stderr,
               "mutation traces: %lld corpus + %lld edit, %lld steps, "
               "%lld comparisons\n",
               static_cast<long long>(corpus_traces),
               static_cast<long long>(edit_traces),
               static_cast<long long>(stats.mutation_steps),
               static_cast<long long>(stats.comparisons));
  if (!Flags().single_seed && cases >= 1000) {
    // Acceptance floor (ISSUE 7): >= 1000 seeded edit steps, each
    // asserting bit-exact agreement of every delta path.
    EXPECT_GE(stats.mutation_steps, 1000);
  }
}

TEST(FuzzHarnessTest, BatchEnginePathsBitAgree) {
  const DriverOptions options;
  CheckStats stats;
  std::vector<std::uint64_t> failing_seeds;
  for (std::size_t n : {5u, 16u, 33u}) {
    const std::uint64_t group_seed = Flags().seed_base + 7919 * n;
    std::vector<BucketOrder> lists;
    for (std::uint64_t offset = 0; offset < 4; ++offset) {
      const FuzzCase c = MakeCase(group_seed + offset, n, n);
      lists.push_back(c.sigma);
      lists.push_back(c.tau);
      lists.push_back(c.rho);
    }
    const std::size_t before = stats.failures.size();
    CheckBatchEngine(lists, group_seed, options, &stats);
    if (stats.failures.size() != before) failing_seeds.push_back(group_seed);
  }
  ReportFailures(stats, failing_seeds);
  EXPECT_GT(stats.comparisons, 0);
}

// Satellite: Theorem 5 / Proposition 6 agreement on 1,000 seeded random
// partial-ranking pairs — the combinatorial formula, the library's
// Theorem 5 path, and a from-scratch construction of *both* refinement
// pairs through the public rank API all coincide, and the constructed
// rankings really are refinements.
TEST(Theorem5AgreementTest, FormulaMatchesConstructionsOn1000Pairs) {
  Rng rng(20040612);  // PODS 2004
  for (int trial = 0; trial < 1000; ++trial) {
    const std::size_t n =
        static_cast<std::size_t>(rng.UniformInt(2, trial % 10 == 0 ? 64 : 24));
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const BucketOrder tau = RandomBucketOrder(n, rng);
    const std::int64_t formula = KHausdorff(sigma, tau);
    ASSERT_EQ(formula, KHausdorffTheorem5(sigma, tau))
        << "trial " << trial << " n=" << n;

    const Permutation anchor(n);  // rho: an arbitrary full ranking
    const Permutation sigma1 =
        TauRefineFull(anchor, TauRefine(tau.Reverse(), sigma));
    const Permutation tau1 = TauRefineFull(anchor, TauRefine(sigma, tau));
    const Permutation sigma2 = TauRefineFull(anchor, TauRefine(tau, sigma));
    const Permutation tau2 =
        TauRefineFull(anchor, TauRefine(sigma.Reverse(), tau));
    for (const Permutation* s : {&sigma1, &sigma2}) {
      ASSERT_TRUE(IsRefinementOf(BucketOrder::FromPermutation(*s), sigma))
          << "trial " << trial;
    }
    for (const Permutation* t : {&tau1, &tau2}) {
      ASSERT_TRUE(IsRefinementOf(BucketOrder::FromPermutation(*t), tau))
          << "trial " << trial;
    }
    ASSERT_EQ(formula, std::max(KendallTau(sigma1, tau1),
                                KendallTau(sigma2, tau2)))
        << "trial " << trial << " n=" << n;
  }
}

// Satellite: Proposition 13. K^(p) keeps the exact triangle inequality for
// p in [1/2, 1]; below 1/2 it is only a near metric — the inequality can
// fail, but never by more than the factor 1/(2p).
TEST(Prop13Test, TriangleHoldsForMetricRange) {
  Rng rng(0x13131313);
  for (int trial = 0; trial < 400; ++trial) {
    const FuzzCase c = MakeCase(0x1313000 + static_cast<std::uint64_t>(trial),
                                2, 32);
    for (double p : {0.5, 0.6, 0.75, 0.875, 1.0}) {
      EXPECT_LE(KendallP(c.sigma, c.rho, p),
                KendallP(c.sigma, c.tau, p) + KendallP(c.tau, c.rho, p))
          << c.Describe() << " p=" << p;
    }
    for (int s = 0; s < 4; ++s) {
      const double p = rng.UniformReal(0.01, 0.49);
      const double detour =
          KendallP(c.sigma, c.tau, p) + KendallP(c.tau, c.rho, p);
      const double bound = detour / (2.0 * p);
      EXPECT_LE(KendallP(c.sigma, c.rho, p), bound + 1e-9 * (1.0 + bound))
          << c.Describe() << " p=" << p;
    }
  }
}

TEST(Prop13Test, TriangleViolationWitnessBelowHalf) {
  // The canonical witness: [0|1] -> [0 1] -> [1|0]. The direct distance is
  // 1 (one discordant pair); each hop costs only p. For p < 1/2 the
  // triangle inequality fails, and the ratio attains the relaxation
  // constant 1/(2p) exactly.
  const BucketOrder split = *BucketOrder::FromBuckets(2, {{0}, {1}});
  const BucketOrder tied = BucketOrder::SingleBucket(2);
  const BucketOrder flipped = *BucketOrder::FromBuckets(2, {{1}, {0}});
  for (double p : {0.1, 0.25, 0.4, 0.49}) {
    const double direct = KendallP(split, flipped, p);
    const double detour =
        KendallP(split, tied, p) + KendallP(tied, flipped, p);
    EXPECT_GT(direct, detour) << "p=" << p;          // plain triangle fails
    EXPECT_DOUBLE_EQ(direct / detour, 1.0 / (2.0 * p));  // ... exactly 1/(2p)
  }
  for (double p : {0.5, 0.75, 1.0}) {
    EXPECT_LE(KendallP(split, flipped, p),
              KendallP(split, tied, p) + KendallP(tied, flipped, p));
  }
}

// Seeds pinned from development sweeps (a 100,000-case run of the
// differential driver found no core-vs-oracle divergence). One replayed
// representative per adversarial family — fully tied giant buckets,
// nil-bucket top-k pairs, zipf heads, shared prefixes — plus the seed-space
// extremes; they must stay green forever.
TEST(FuzzRegressionTest, PinnedSeeds) {
  const DriverOptions options;
  CheckStats stats;
  std::vector<std::uint64_t> failing_seeds;
  const std::uint64_t pinned[] = {
      0xF00D,      // first seed of the default CI window (all-singleton n=5)
      3,           // all-singleton n=7 against a coarse rho
      9,           // one-giant-bucket: sigma fully tied at n=4
      13,          // top-k-nil: tau = [0 | 1 2], k=1 with nil bottom bucket
      22,          // zipf-buckets whose head swallowed the whole universe
      14,          // zipf-buckets at n=44, beyond the enumeration budget
      0xDEADBEEF,  // shared-prefix pair at n=37
      0x7FFFFFFFFFFFFFFF,  // seed arithmetic near the top of the range
  };
  for (std::uint64_t seed : pinned) {
    const FuzzCase c = MakeBandedCase(seed);
    const std::size_t before = stats.failures.size();
    CheckDifferential(c, options, &stats);
    CheckMetamorphic(c, &stats);
    if (stats.failures.size() != before) failing_seeds.push_back(seed);
  }
  ReportFailures(stats, failing_seeds);
}

}  // namespace
}  // namespace rankties::fuzz

namespace {

std::uint64_t ParseU64(const char* text) {
  return static_cast<std::uint64_t>(std::strtoull(text, nullptr, 0));
}

// Runs in main() before gtest spawns anything; single-threaded, so the
// mt-unsafe getenv reads below are safe. NOLINTBEGIN(concurrency-mt-unsafe)
void ParseFuzzFlags(int argc, char** argv) {
  rankties::fuzz::FuzzFlags& flags = rankties::fuzz::Flags();
  if (const char* env = std::getenv("RANKTIES_FUZZ_SEED_BASE")) {
    flags.seed_base = ParseU64(env);
  }
  if (const char* env = std::getenv("RANKTIES_FUZZ_CASES")) {
    flags.cases = static_cast<std::int64_t>(ParseU64(env));
  }
  if (const char* env = std::getenv("RANKTIES_FUZZ_MAX_CASES")) {
    flags.max_cases = static_cast<std::int64_t>(ParseU64(env));
  }
  if (const char* env = std::getenv("RANKTIES_FUZZ_FAILURE_FILE")) {
    flags.failure_file = env;
  }
  if (const char* env = std::getenv("RANKTIES_OBS")) {
    flags.obs = env[0] != '\0' && env[0] != '0';
  }
  if (const char* env = std::getenv("RANKTIES_FUZZ_PERFETTO")) {
    flags.perfetto_file = env;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.single_seed = ParseU64(arg + 7);
    } else if (std::strncmp(arg, "--seed-base=", 12) == 0) {
      flags.seed_base = ParseU64(arg + 12);
    } else if (std::strncmp(arg, "--cases=", 8) == 0) {
      flags.cases = static_cast<std::int64_t>(ParseU64(arg + 8));
    } else if (std::strncmp(arg, "--max-cases=", 12) == 0) {
      flags.max_cases = static_cast<std::int64_t>(ParseU64(arg + 12));
    } else if (std::strncmp(arg, "--failure-file=", 15) == 0) {
      flags.failure_file = arg + 15;
    } else if (std::strncmp(arg, "--perfetto=", 11) == 0) {
      flags.perfetto_file = arg + 11;
    } else if (std::strcmp(arg, "--obs") == 0) {
      flags.obs = true;
    }
  }
}
// NOLINTEND(concurrency-mt-unsafe)

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ParseFuzzFlags(argc, argv);
  const bool obs_on =
      rankties::fuzz::Flags().obs ||
      !rankties::fuzz::Flags().perfetto_file.empty();
  if (obs_on) {
    rankties::obs::SetEnabled(true);
    rankties::obs::TraceRecorder::Global().Start();
    rankties::obs::FlightRecorder::Global().SetEnabled(true);
    std::fprintf(stderr,
                 "fuzz: obs collection + tracing + flight recorder "
                 "enabled\n");
  }
  const int rc = RUN_ALL_TESTS();
  if (obs_on) {
    rankties::obs::TraceRecorder::Global().Stop();
    rankties::obs::FlightRecorder::Global().SetEnabled(false);
    std::fprintf(stderr, "fuzz: %lld spans recorded, counters:\n%s\n",
                 static_cast<long long>(
                     rankties::obs::TraceRecorder::Global().size()),
                 rankties::obs::MetricsJsonObject().c_str());
    if (rc != 0) {
      // Post-mortem: the newest structured events leading into the
      // failing window (RANKTIES_DCHECK aborts dump the same way through
      // the contracts failure hook).
      rankties::obs::FlightRecorder::Global().DumpToStderr(128);
    }
    const std::string& perfetto = rankties::fuzz::Flags().perfetto_file;
    if (!perfetto.empty()) {
      if (rankties::obs::WritePerfettoJson(perfetto)) {
        std::fprintf(stderr, "fuzz: perfetto trace written to %s\n",
                     perfetto.c_str());
      } else {
        std::fprintf(stderr, "fuzz: FAILED to write perfetto trace to %s\n",
                     perfetto.c_str());
        return rc == 0 ? 1 : rc;
      }
    }
  }
  return rc;
}
