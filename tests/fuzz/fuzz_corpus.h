#ifndef RANKTIES_TESTS_FUZZ_FUZZ_CORPUS_H_
#define RANKTIES_TESTS_FUZZ_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>

#include "rank/bucket_order.h"
#include "rank/permutation.h"

/// Deterministic structured fuzzer for partial-ranking pairs.
///
/// Every case is derived from a single 64-bit seed: the same seed always
/// rebuilds the same (family, sigma, tau, rho) triple on every platform, so
/// a failure anywhere reproduces from the printed seed alone
/// (`fuzz_test --seed=<s>`). Families are chosen adversarially: the
/// all-singleton / one-giant-bucket extremes, Zipf-skewed bucket sizes,
/// top-k lists with a nil bucket, and shared-prefix pairs that keep the
/// heads of sigma and tau identical while the tails diverge.
namespace rankties::fuzz {

enum class Family {
  kAllSingleton,    ///< both sides full rankings (no ties at all)
  kOneGiantBucket,  ///< one side a single all-tied bucket
  kZipfBuckets,     ///< bucket sizes drawn from a Zipf head-heavy law
  kTopKNil,         ///< top-k lists: k singletons + one bottom nil bucket
  kSharedPrefix,    ///< identical bucket prefix, independent random tails
  kUniformType,     ///< uniformly random composition + assignment
};

inline constexpr int kNumFamilies = 6;

const char* FamilyName(Family family);

/// One fuzz case: a pair (sigma, tau) for differential checks plus a third
/// ranking rho over the same universe for triangle/metamorphic checks.
struct FuzzCase {
  std::uint64_t seed = 0;
  Family family = Family::kUniformType;
  BucketOrder sigma;
  BucketOrder tau;
  BucketOrder rho;

  std::size_t n() const { return sigma.n(); }

  /// "seed=0x2a family=zipf-buckets n=6 sigma=[0 1 | 2] ...", with the
  /// bucket structure spelled out only for small universes.
  std::string Describe() const;
};

/// Deterministically expands `seed` into a case with n in [min_n, max_n].
/// The seed is hashed internally (splitmix64), so consecutive seeds give
/// decorrelated cases while staying individually replayable.
FuzzCase MakeCase(std::uint64_t seed, std::size_t min_n, std::size_t max_n);

/// Renames every element e to names.Rank(e), preserving bucket structure.
/// All four metrics must be invariant under this relabeling.
BucketOrder Relabel(const BucketOrder& order, const Permutation& names);

}  // namespace rankties::fuzz

#endif  // RANKTIES_TESTS_FUZZ_FUZZ_CORPUS_H_
