#ifndef RANKTIES_TESTS_FUZZ_MUTATION_TRACE_H_
#define RANKTIES_TESTS_FUZZ_MUTATION_TRACE_H_

#include <cstdint>

#include "fuzz/differential.h"

/// The mutation-trace fuzz family (ROADMAP item 4): seeded random edit
/// scripts applied through every delta path — PreparedRanking in-place
/// edits, IncrementalDistanceMatrix row/count maintenance, and
/// OnlineMedianAggregator voter updates — asserting bit-exact agreement
/// with a full from-scratch recompute (prepared kernels, batch engine, and
/// the src/ref oracle) after *every* step. A trace that diverges reports
/// the trace seed; replay with `fuzz_test --seed=<s>` is not applicable
/// here (traces are a separate sweep), so messages carry the trace seed
/// and step index instead.
namespace rankties::fuzz {

/// One corpus trace: m rankings over one universe, a per-kind
/// IncrementalDistanceMatrix for all four metrics, and an
/// OnlineMedianAggregator, driven through `steps` seeded moves
/// (MoveToBucket / MoveToNewBucket / occasional ReplaceList). After every
/// step: the delta-maintained prepared arrays equal a fresh freeze of the
/// ground truth, every matrix equals DistanceMatrix over the ground truth
/// bit-for-bit, the mutated row matches the src/ref oracle (enumeration
/// oracles within options.enumeration_budget), and the online median
/// scores/top-k equal the batch MedianRankScoresQuad / MedianAggregateTopK.
/// The trace ends by withdrawing voters one at a time (RemoveVoter) with
/// the same batch cross-check at each size.
void CheckMutationTrace(std::uint64_t seed, std::size_t steps,
                        const DriverOptions& options, CheckStats* stats);

/// One single-ranking trace over all four PreparedRanking delta ops —
/// InsertItem / EraseItem included, which change the universe size — each
/// step asserting array-for-array equality with PreparedRanking(ground
/// truth) and a ToBucketOrder round trip.
void CheckPreparedEditTrace(std::uint64_t seed, std::size_t steps,
                            CheckStats* stats);

}  // namespace rankties::fuzz

#endif  // RANKTIES_TESTS_FUZZ_MUTATION_TRACE_H_
