#include "rank/bucket_order.h"

#include <gtest/gtest.h>

#include "gen/random_orders.h"
#include "rank/io.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(BucketOrderTest, FromBucketsBasic) {
  auto order = BucketOrder::FromBuckets(5, {{1, 0}, {2}, {3, 4}});
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->n(), 5u);
  EXPECT_EQ(order->num_buckets(), 3u);
  EXPECT_EQ(order->BucketOf(0), 0);
  EXPECT_EQ(order->BucketOf(1), 0);
  EXPECT_EQ(order->BucketOf(2), 1);
  EXPECT_EQ(order->BucketOf(3), 2);
  EXPECT_EQ(order->BucketOf(4), 2);
  // Buckets store elements ascending regardless of input order.
  EXPECT_EQ(order->bucket(0), (std::vector<ElementId>{0, 1}));
}

TEST(BucketOrderTest, PositionsMatchPaperDefinition) {
  // pos(B_i) = sum_{j<i} |B_j| + (|B_i|+1)/2 (paper §2).
  auto order = BucketOrder::FromBuckets(6, {{0, 1}, {2}, {3, 4, 5}});
  ASSERT_TRUE(order.ok());
  // Bucket 0: pos = (2+1)/2 = 1.5.
  EXPECT_EQ(order->TwicePosition(0), 3);
  EXPECT_DOUBLE_EQ(order->Position(1), 1.5);
  // Bucket 1: pos = 2 + 1 = 3.
  EXPECT_EQ(order->TwicePosition(2), 6);
  // Bucket 2: pos = 3 + 2 = 5.
  EXPECT_EQ(order->TwicePosition(5), 10);
}

TEST(BucketOrderTest, FullRankingPositionsAreOneBased) {
  Permutation identity(4);
  const BucketOrder order = BucketOrder::FromPermutation(identity);
  EXPECT_TRUE(order.IsFull());
  for (ElementId e = 0; e < 4; ++e) {
    EXPECT_EQ(order.TwicePosition(e), 2 * (e + 1));
  }
}

TEST(BucketOrderTest, FromBucketsRejectsBadInput) {
  EXPECT_FALSE(BucketOrder::FromBuckets(3, {{0, 1}}).ok());          // missing
  EXPECT_FALSE(BucketOrder::FromBuckets(3, {{0, 1, 1}, {2}}).ok());  // dup
  EXPECT_FALSE(BucketOrder::FromBuckets(3, {{0, 1, 2}, {}}).ok());   // empty
  EXPECT_FALSE(BucketOrder::FromBuckets(2, {{0, 5}}).ok());          // range
}

TEST(BucketOrderTest, FromBucketIndexRoundTrip) {
  auto order = BucketOrder::FromBucketIndex({2, 0, 1, 0});
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->ToString(), "[1 3 | 2 | 0]");
  EXPECT_FALSE(BucketOrder::FromBucketIndex({0, 2}).ok());  // gap
}

TEST(BucketOrderTest, SingleBucketTiesEverything) {
  const BucketOrder order = BucketOrder::SingleBucket(4);
  EXPECT_EQ(order.num_buckets(), 1u);
  for (ElementId e = 0; e < 4; ++e) {
    // pos = (4+1)/2 = 2.5.
    EXPECT_EQ(order.TwicePosition(e), 5);
  }
  EXPECT_TRUE(order.Tied(0, 3));
}

TEST(BucketOrderTest, TopKShape) {
  Permutation identity(6);
  const BucketOrder order = BucketOrder::TopKOf(identity, 2);
  EXPECT_TRUE(order.IsTopK(2));
  EXPECT_FALSE(order.IsTopK(3));
  EXPECT_EQ(order.Type(), (std::vector<std::size_t>{1, 1, 4}));
  // Bottom bucket position: pos = 2 + (4+1)/2 = 4.5.
  EXPECT_EQ(order.TwicePosition(5), 9);
  // k = n degenerates to the full ranking.
  EXPECT_TRUE(BucketOrder::TopKOf(identity, 6).IsFull());
  EXPECT_TRUE(BucketOrder::TopKOf(identity, 6).IsTopK(6));
}

TEST(BucketOrderTest, FromScoresGroupsEqualValues) {
  const BucketOrder order = BucketOrder::FromScores({3.5, 1.0, 3.5, 0.5});
  EXPECT_EQ(order.ToString(), "[3 | 1 | 0 2]");
}

TEST(BucketOrderTest, ReverseMatchesPaperFormula) {
  // sigma^R(d) = |D| + 1 - sigma(d) (paper §2).
  auto order = BucketOrder::FromBuckets(5, {{0}, {1, 2}, {3, 4}});
  ASSERT_TRUE(order.ok());
  const BucketOrder rev = order->Reverse();
  const std::int64_t twice_n_plus_1 = 2 * (5 + 1);
  for (ElementId e = 0; e < 5; ++e) {
    EXPECT_EQ(rev.TwicePosition(e), twice_n_plus_1 - order->TwicePosition(e))
        << "element " << e;
  }
  // Reversing twice is the identity.
  EXPECT_EQ(rev.Reverse(), *order);
}

TEST(BucketOrderTest, TypeAndAheadAndTied) {
  auto order = BucketOrder::FromBuckets(4, {{3}, {0, 2}, {1}});
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->Type(), (std::vector<std::size_t>{1, 2, 1}));
  EXPECT_TRUE(order->Ahead(3, 0));
  EXPECT_TRUE(order->Tied(0, 2));
  EXPECT_FALSE(order->Ahead(0, 2));
  EXPECT_FALSE(order->Ahead(1, 3));
}

TEST(BucketOrderTest, CanonicalRefinementIsRefinement) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder order = RandomBucketOrder(10, rng);
    const Permutation refined = order.CanonicalRefinement();
    // Every strict order in `order` is preserved.
    for (ElementId a = 0; a < 10; ++a) {
      for (ElementId b = 0; b < 10; ++b) {
        if (order.Ahead(a, b)) {
          EXPECT_LT(refined.Rank(a), refined.Rank(b));
        }
      }
    }
  }
}

TEST(BucketOrderTest, ParseRoundTrip) {
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder order = RandomBucketOrder(12, rng);
    auto parsed = ParseBucketOrder(order.ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, order);
  }
}

TEST(BucketOrderTest, ParseRejectsMalformed) {
  EXPECT_FALSE(ParseBucketOrder("0 1 | 2").ok());    // no brackets
  EXPECT_FALSE(ParseBucketOrder("[0 1 | ]").ok());   // trailing empty bucket
  EXPECT_FALSE(ParseBucketOrder("[0 | | 1]").ok());  // empty middle bucket
  EXPECT_FALSE(ParseBucketOrder("[0 2]").ok());      // non-contiguous ids
  EXPECT_FALSE(ParseBucketOrder("[0 1] x").ok());    // trailing junk
  EXPECT_FALSE(ParseBucketOrder("[0 1").ok());       // unterminated
}

TEST(BucketOrderTest, FormatAndParseMany) {
  Rng rng(99);
  std::vector<BucketOrder> orders;
  for (int i = 0; i < 5; ++i) orders.push_back(RandomBucketOrder(8, rng));
  auto parsed = ParseBucketOrders(FormatBucketOrders(orders));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), orders.size());
  for (std::size_t i = 0; i < orders.size(); ++i) {
    EXPECT_EQ((*parsed)[i], orders[i]);
  }
}

}  // namespace
}  // namespace rankties
