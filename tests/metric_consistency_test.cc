// Property test for ComputeMetric consistency: the batch engine's
// DistanceMatrix must equal the pairwise ComputeMetric for every MetricKind
// on randomized workloads — correlated (quantized Mallows) and skew-tied
// (Zipf bucket sizes) partial rankings from src/gen.

#include <gtest/gtest.h>

#include "core/batch_engine.h"
#include "core/metric_registry.h"
#include "gen/mallows.h"
#include "gen/zipf.h"
#include "rank/bucket_order.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rankties {
namespace {

// A partial ranking whose bucket labels follow a Zipf law: a few huge
// popular buckets and a long tail — the tie structure of database
// attributes with a skewed value distribution.
BucketOrder ZipfTied(std::size_t n, std::size_t levels, double s, Rng& rng) {
  const ZipfSampler sampler(levels, s);
  std::vector<std::int64_t> keys(n);
  for (std::size_t e = 0; e < n; ++e) {
    keys[e] = static_cast<std::int64_t>(sampler.Sample(rng));
  }
  return BucketOrder::FromIntKeys(keys);
}

std::vector<BucketOrder> RandomWorkload(std::size_t m, std::size_t n,
                                        Rng& rng) {
  const Permutation center = Permutation::Random(n, rng);
  std::vector<BucketOrder> lists;
  for (std::size_t i = 0; i < m; ++i) {
    switch (i % 3) {
      case 0:
        lists.push_back(QuantizedMallows(center, 0.5, 5, rng));
        break;
      case 1:
        lists.push_back(QuantizedMallows(center, 0.9, 3, rng));
        break;
      default:
        lists.push_back(ZipfTied(n, 6, 1.2, rng));
        break;
    }
  }
  return lists;
}

class MetricConsistencyTest : public testing::Test {
 protected:
  ~MetricConsistencyTest() override { ThreadPool::SetGlobalThreads(0); }
};

TEST_F(MetricConsistencyTest, DistanceMatrixEqualsPairwiseComputeMetric) {
  Rng rng(20240806);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.UniformInt(4, 10));
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(8, 48));
    const std::vector<BucketOrder> lists = RandomWorkload(m, n, rng);
    for (MetricKind kind : AllMetricKinds()) {
      const auto matrix = DistanceMatrix(kind, lists);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          EXPECT_EQ(matrix[i][j], ComputeMetric(kind, lists[i], lists[j]))
              << MetricName(kind) << " trial " << trial << " entry (" << i
              << ", " << j << ") with m=" << m << " n=" << n;
        }
      }
    }
  }
}

TEST_F(MetricConsistencyTest, HoldsAtEveryThreadCount) {
  Rng rng(777);
  const std::vector<BucketOrder> lists = RandomWorkload(9, 30, rng);
  for (const std::size_t threads : {1u, 2u, 7u}) {
    ThreadPool::SetGlobalThreads(threads);
    for (MetricKind kind : AllMetricKinds()) {
      const auto matrix = DistanceMatrix(kind, lists);
      for (std::size_t i = 0; i < lists.size(); ++i) {
        for (std::size_t j = 0; j < lists.size(); ++j) {
          EXPECT_EQ(matrix[i][j], ComputeMetric(kind, lists[i], lists[j]))
              << MetricName(kind) << " at " << threads << " threads";
        }
      }
    }
  }
}

}  // namespace
}  // namespace rankties
