// rankties-lint-fixture: expect RT009
// Raw std::mutex in library code: synchronization must go through
// rankties::Mutex (util/mutex.h) so the clang thread-safety annotations
// and the debug lock-order DAG cover it.
#include <mutex>

namespace rankties {

class UnauditedCache {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
    ++generation_;
  }

 private:
  std::mutex mu_;
  long generation_ = 0;
};

}  // namespace rankties
