// rankties-lint-fixture: expect RT007
//
// Metric names at obs call sites must be string literals in
// lowercase.dotted form; a CamelCase single-segment name must be flagged.

void RecordsBadMetricName() {
  RANKTIES_OBS_COUNT("BadMetricName", 1);
}
