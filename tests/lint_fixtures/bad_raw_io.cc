// rankties-lint-fixture: expect RT008
// Raw file I/O outside src/store/ dodges the store's byte discipline:
// no Status-carrying error path, no EINTR retry, no store.io.* counters,
// and bytes that never pass a CRC check.
#include <cstdio>

namespace rankties {

long FileBytes(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return -1;
  char buffer[256];
  long total = 0;
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    total += static_cast<long>(got);
  }
  std::fclose(f);
  return total;
}

}  // namespace rankties
