// rankties-lint-fixture: expect RT004
// Header without an include guard: double inclusion breaks the build in
// ways that surface far from the culprit.

namespace rankties {

inline int GuardlessHelper() { return 42; }

}  // namespace rankties
