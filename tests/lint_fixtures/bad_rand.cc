// rankties-lint-fixture: expect RT003
// std::rand is unseeded global state; all randomness must flow through
// util/rng.h so every run replays from an explicit seed.
#include <cstdlib>

namespace rankties {

int UnseededCoinFlip() {
  return std::rand() % 2;
}

}  // namespace rankties
