// rankties-lint-fixture: expect RT004
// Include guard present but off-convention: guard names must mirror the
// header path (RANKTIES_<PATH>_H_) so collisions cannot hide headers.
#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

namespace rankties {

inline int WrongGuardHelper() { return 42; }

}  // namespace rankties

#endif  // SOME_OTHER_GUARD_H
