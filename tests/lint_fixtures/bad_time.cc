// rankties-lint-fixture: expect RT003
// time(nullptr) seeds are irreproducible; benchmarks and generators must
// take explicit seeds (util/rng.h) and clocks from util/stopwatch.h.
#include <ctime>

namespace rankties {

long WallClockSeed() {
  return static_cast<long>(time(nullptr));
}

}  // namespace rankties
