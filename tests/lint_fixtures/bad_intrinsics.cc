// rankties-lint-fixture: expect RT006
// Raw vector intrinsics outside src/util/simd.h bypass the runtime
// dispatch contract: no scalar twin, no RANKTIES_NO_AVX2 override, no
// guarantee the CI scalar matrix leg covers the code path.
#include <immintrin.h>

#include <cstdint>

namespace rankties {

std::int64_t SumLanes(const std::int64_t* values) {
  const __m256i v =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values));
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

}  // namespace rankties
