// rankties-lint-fixture: expect RT005
// Reaching into BucketOrder's representation outside src/rank/ bypasses
// the partition/position invariants that Validate() certifies.
#include <vector>

namespace rankties {

struct FakeOrder {
  std::vector<int> buckets_;
};

void ClobberBuckets(FakeOrder& order) {
  order.buckets_.clear();
}

}  // namespace rankties
