// rankties-lint-fixture: expect RT002
// Raw assert() in library code: contracts must use RANKTIES_DCHECK so
// release compile-out and diagnostics stay centrally controlled.
#include <cassert>
#include <cstddef>

namespace rankties {

void RequireNonEmpty(std::size_t n) {
  assert(n > 0);
}

}  // namespace rankties
