// rankties-lint-fixture: expect RT001
// Raw pair-count arithmetic: n * (n - 1) / 2 wraps silently past 2^32.
#include <cstdint>

namespace rankties {

std::int64_t UncheckedPairCount(std::int64_t n) {
  return n * (n - 1) / 2;
}

}  // namespace rankties
