#include "rank/active_domain.h"

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "core/profile_metrics.h"

namespace rankties {
namespace {

TEST(ActiveDomainTest, DisjointLists) {
  auto aligned = AlignTopKLists({100, 200}, {300, 400});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->items.size(), 4u);
  EXPECT_EQ(aligned->sigma.n(), 4u);
  // First list: items 100, 200 as singletons; 300, 400 in its bottom.
  EXPECT_TRUE(aligned->sigma.IsTopK(2));
  EXPECT_TRUE(aligned->tau.IsTopK(2));
  // Dense id of 100 is 0 (first appearance), of 300 is 2.
  EXPECT_EQ(aligned->items[0], 100);
  EXPECT_EQ(aligned->sigma.BucketOf(0), 0);
  EXPECT_EQ(aligned->tau.BucketOf(2), 0);
}

TEST(ActiveDomainTest, OverlappingLists) {
  // Shared item 7 at different ranks.
  auto aligned = AlignTopKLists({7, 8, 9}, {9, 7});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->items.size(), 3u);  // {7, 8, 9}
  // tau: 9 first, 7 second, 8 in bottom bucket (singleton bottom).
  const ElementId id7 = 0, id8 = 1, id9 = 2;
  EXPECT_TRUE(aligned->tau.Ahead(id9, id7));
  EXPECT_TRUE(aligned->tau.Ahead(id7, id8));
  EXPECT_TRUE(aligned->sigma.Ahead(id7, id8));
  EXPECT_TRUE(aligned->sigma.Ahead(id8, id9));
}

TEST(ActiveDomainTest, IdenticalListsHaveZeroDistance) {
  auto aligned = AlignTopKLists({5, 6, 7}, {5, 6, 7});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->items.size(), 3u);
  EXPECT_EQ(TwiceKprof(aligned->sigma, aligned->tau), 0);
  EXPECT_EQ(TwiceFprof(aligned->sigma, aligned->tau), 0);
  EXPECT_TRUE(aligned->sigma.IsFull());  // no bottom bucket needed
}

TEST(ActiveDomainTest, Validation) {
  EXPECT_FALSE(AlignTopKLists({}, {}).ok());
  EXPECT_FALSE(AlignTopKLists({1, 1}, {2}).ok());  // duplicate
  EXPECT_TRUE(AlignTopKLists({1}, {}).ok());       // one empty is fine
}

TEST(ActiveDomainTest, ReversedListsMaximizeDiscordance) {
  auto aligned = AlignTopKLists({1, 2, 3, 4}, {4, 3, 2, 1});
  ASSERT_TRUE(aligned.ok());
  // Both lists are full over the active domain; distance = max Kendall.
  EXPECT_EQ(TwiceKprof(aligned->sigma, aligned->tau), 2 * 6);
}

TEST(ActiveDomainTest, MetricsOnAlignedListsSatisfyTheorem7) {
  auto aligned = AlignTopKLists({10, 20, 30}, {30, 40, 50});
  ASSERT_TRUE(aligned.ok());
  const std::int64_t twice_kprof = TwiceKprof(aligned->sigma, aligned->tau);
  const std::int64_t twice_fprof = TwiceFprof(aligned->sigma, aligned->tau);
  EXPECT_LE(twice_kprof, twice_fprof);
  EXPECT_LE(twice_fprof, 2 * twice_kprof);
}

TEST(ActiveDomainTest, ManyListsShareOneDomain) {
  auto aligned = AlignManyTopKLists({{10, 20}, {20, 30}, {40}});
  ASSERT_TRUE(aligned.ok());
  EXPECT_EQ(aligned->items.size(), 4u);  // {10, 20, 30, 40}
  ASSERT_EQ(aligned->orders.size(), 3u);
  for (const BucketOrder& order : aligned->orders) {
    EXPECT_EQ(order.n(), 4u);
  }
  // List 0: 10 then 20, bottom {30, 40}.
  EXPECT_TRUE(aligned->orders[0].IsTopK(2));
  EXPECT_TRUE(aligned->orders[0].Ahead(0, 1));
  EXPECT_TRUE(aligned->orders[0].Tied(2, 3));
  // List 2 returned only item 40 (dense id 3).
  EXPECT_TRUE(aligned->orders[2].IsTopK(1));
  EXPECT_EQ(aligned->orders[2].BucketOf(3), 0);
}

TEST(ActiveDomainTest, ManyListsValidation) {
  EXPECT_FALSE(AlignManyTopKLists({}).ok());
  EXPECT_FALSE(AlignManyTopKLists({{}, {}}).ok());
  EXPECT_FALSE(AlignManyTopKLists({{1, 1}}).ok());
  EXPECT_TRUE(AlignManyTopKLists({{1}, {}}).ok());  // one empty list is fine
}

TEST(ActiveDomainTest, PairwiseAndManyAgree) {
  auto pair = AlignTopKLists({7, 8}, {9, 8});
  auto many = AlignManyTopKLists({{7, 8}, {9, 8}});
  ASSERT_TRUE(pair.ok() && many.ok());
  EXPECT_EQ(pair->items, many->items);
  EXPECT_EQ(pair->sigma, many->orders[0]);
  EXPECT_EQ(pair->tau, many->orders[1]);
}

}  // namespace
}  // namespace rankties
