#include "core/median_rank.h"

#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/footrule.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(MedianQuadTest, OddAndEvenPolicies) {
  EXPECT_EQ(MedianQuad({5, 1, 3}, MedianPolicy::kLower), 6);  // 2 * 3
  EXPECT_EQ(MedianQuad({4, 2}, MedianPolicy::kLower), 4);     // 2 * 2
  EXPECT_EQ(MedianQuad({4, 2}, MedianPolicy::kUpper), 8);     // 2 * 4
  EXPECT_EQ(MedianQuad({4, 2}, MedianPolicy::kAverage), 6);   // 2 + 4
}

TEST(MedianRankTest, ScoresValidateInputs) {
  EXPECT_FALSE(MedianRankScoresQuad({}, MedianPolicy::kLower).ok());
  std::vector<BucketOrder> mixed = {BucketOrder::SingleBucket(3),
                                    BucketOrder::SingleBucket(4)};
  EXPECT_FALSE(MedianRankScoresQuad(mixed, MedianPolicy::kLower).ok());
}

TEST(MedianRankTest, MajorityAgreementWins) {
  // Two of three voters put element 2 first.
  auto v1 = BucketOrder::FromBuckets(3, {{2}, {0}, {1}});
  auto v2 = BucketOrder::FromBuckets(3, {{2}, {1}, {0}});
  auto v3 = BucketOrder::FromBuckets(3, {{0}, {1}, {2}});
  ASSERT_TRUE(v1.ok() && v2.ok() && v3.ok());
  auto full = MedianAggregateFull({*v1, *v2, *v3}, MedianPolicy::kLower);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->At(0), 2);
}

// Lemma 8: the median function minimizes sum_i L1(f, f_i) over all g.
TEST(MedianRankTest, Lemma8MedianMinimizesTotalL1) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 6;
    const std::size_t m = static_cast<std::size_t>(rng.UniformInt(1, 7));
    std::vector<BucketOrder> inputs;
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(n, rng));
    }
    for (MedianPolicy policy :
         {MedianPolicy::kLower, MedianPolicy::kUpper, MedianPolicy::kAverage}) {
      auto median = MedianRankScoresQuad(inputs, policy);
      ASSERT_TRUE(median.ok());
      const std::int64_t median_cost = TotalL1ToInputsQuad(*median, inputs);
      // Random competitors never beat the median.
      for (int g = 0; g < 30; ++g) {
        std::vector<std::int64_t> competitor(n);
        for (std::size_t e = 0; e < n; ++e) {
          competitor[e] = 4 * rng.UniformInt(1, static_cast<std::int64_t>(n));
        }
        EXPECT_GE(TotalL1ToInputsQuad(competitor, inputs), median_cost);
      }
      // Nor does any input's own position vector.
      for (const BucketOrder& input : inputs) {
        std::vector<std::int64_t> quad(n);
        for (std::size_t e = 0; e < n; ++e) {
          quad[e] = 2 * input.TwicePosition(static_cast<ElementId>(e));
        }
        EXPECT_GE(TotalL1ToInputsQuad(quad, inputs), median_cost);
      }
    }
  }
}

// Theorem 9: the median top-k list is within factor 3 of the best top-k
// list under the sum-of-Fprof objective. Verified against exhaustive
// enumeration of all top-k lists on small domains.
TEST(MedianRankTest, Theorem9FactorThreeVsExhaustiveTopK) {
  Rng rng(2);
  const std::size_t n = 5;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.UniformInt(1, 5));
    const std::size_t k = static_cast<std::size_t>(rng.UniformInt(1, 4));
    std::vector<BucketOrder> inputs;
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(n, rng));
    }
    auto ours = MedianAggregateTopK(inputs, k, MedianPolicy::kLower);
    ASSERT_TRUE(ours.ok());
    const std::int64_t our_cost = TwiceTotalFprof(*ours, inputs);

    // Exhaustive optimum over all top-k lists: every permutation prefix.
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    ForEachFullRefinement(BucketOrder::SingleBucket(n),
                          [&](const Permutation& p) {
                            best = std::min(
                                best,
                                TwiceTotalFprof(BucketOrder::TopKOf(p, k),
                                                inputs));
                            return true;
                          });
    EXPECT_LE(our_cost, 3 * best)
        << "m=" << m << " k=" << k << " trial=" << trial;
  }
}

// Theorem 11: with full-ranking inputs, any refinement of the median's
// induced order is within factor 2 of every partial ranking (verified
// against exhaustive full rankings and random partial rankings).
TEST(MedianRankTest, Theorem11FactorTwoForFullInputs) {
  Rng rng(3);
  const std::size_t n = 5;
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.UniformInt(1, 6));
    std::vector<BucketOrder> inputs;
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(
          BucketOrder::FromPermutation(Permutation::Random(n, rng)));
    }
    auto ours = MedianAggregateFull(inputs, MedianPolicy::kLower);
    ASSERT_TRUE(ours.ok());
    const std::int64_t our_cost =
        TwiceTotalFprof(BucketOrder::FromPermutation(*ours), inputs);

    std::int64_t best_full = std::numeric_limits<std::int64_t>::max();
    ForEachFullRefinement(BucketOrder::SingleBucket(n),
                          [&](const Permutation& p) {
                            best_full = std::min(
                                best_full,
                                TwiceTotalFprof(BucketOrder::FromPermutation(p),
                                                inputs));
                            return true;
                          });
    EXPECT_LE(our_cost, 2 * best_full) << trial;

    // Against arbitrary partial rankings too (Theorem 11's tau is any
    // partial ranking).
    for (int g = 0; g < 40; ++g) {
      const BucketOrder tau = RandomBucketOrder(n, rng);
      EXPECT_LE(our_cost, 2 * TwiceTotalFprof(tau, inputs));
    }
  }
}

TEST(MedianRankTest, MedianAggregateFullIsRefinementOfInduced) {
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) inputs.push_back(RandomBucketOrder(8, rng));
    auto induced = MedianInducedOrder(inputs, MedianPolicy::kAverage);
    auto full = MedianAggregateFull(inputs, MedianPolicy::kAverage);
    ASSERT_TRUE(induced.ok() && full.ok());
    EXPECT_TRUE(
        IsRefinementOf(BucketOrder::FromPermutation(*full), *induced));
  }
}

TEST(MedianRankTest, TopKValidation) {
  std::vector<BucketOrder> inputs = {BucketOrder::SingleBucket(4)};
  EXPECT_FALSE(MedianAggregateTopK(inputs, 9, MedianPolicy::kLower).ok());
  auto ok = MedianAggregateTopK(inputs, 2, MedianPolicy::kLower);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->IsTopK(2));
}

TEST(MedianRankTest, SingleVoterIsReproducedExactly) {
  // With one input, the median induced order is the input itself.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const BucketOrder input = RandomBucketOrder(7, rng);
    auto induced = MedianInducedOrder({input}, MedianPolicy::kLower);
    ASSERT_TRUE(induced.ok());
    EXPECT_EQ(*induced, input);
  }
}

}  // namespace
}  // namespace rankties
