// Tests for the background time-series sampler (src/obs/sampler.h):
// deterministic SampleNow/Series/Deltas behavior, the bounded sample ring,
// and the Start/Stop lifecycle of the background thread.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace rankties {
namespace {

#ifndef RANKTIES_OBS_DISABLED

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetAll();
    obs::Sampler::Global().Clear();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::Sampler::Global().Stop();
    obs::Sampler::Global().Clear();
    obs::SetEnabled(false);
  }
};

const obs::CounterSnapshot* FindCounter(
    const std::vector<obs::CounterSnapshot>& counters,
    const std::string& name) {
  for (const obs::CounterSnapshot& counter : counters) {
    if (counter.name == name) return &counter;
  }
  return nullptr;
}

const obs::CounterDelta* FindDelta(
    const std::vector<obs::CounterDelta>& deltas, const std::string& name) {
  for (const obs::CounterDelta& delta : deltas) {
    if (delta.name == name) return &delta;
  }
  return nullptr;
}

TEST_F(SamplerTest, SampleNowCapturesRegistryState) {
  obs::GetCounter("test.sampler.captured")->Add(41);
  obs::Sampler::Global().SampleNow();
  const std::vector<obs::RegistrySample> series =
      obs::Sampler::Global().Series();
  ASSERT_EQ(series.size(), 1u);
  EXPECT_GT(series[0].ts_ns, 0);
  const obs::CounterSnapshot* counter =
      FindCounter(series[0].counters, "test.sampler.captured");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 41);
}

TEST_F(SamplerTest, DeltasReportPerIntervalIncrements) {
  obs::Counter* counter = obs::GetCounter("test.sampler.delta");
  counter->Add(10);
  obs::Sampler::Global().SampleNow();
  counter->Add(25);
  obs::Sampler::Global().SampleNow();
  counter->Add(5);
  obs::Sampler::Global().SampleNow();

  const std::vector<obs::IntervalDeltas> intervals =
      obs::Sampler::Global().Deltas();
  ASSERT_EQ(intervals.size(), 2u);
  const obs::CounterDelta* first =
      FindDelta(intervals[0].counters, "test.sampler.delta");
  const obs::CounterDelta* second =
      FindDelta(intervals[1].counters, "test.sampler.delta");
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first->delta, 25);
  EXPECT_EQ(second->delta, 5);
  EXPECT_GE(first->rate_per_sec, 0.0);
  EXPECT_LE(intervals[0].start_ns, intervals[0].end_ns);
  EXPECT_EQ(intervals[0].end_ns, intervals[1].start_ns);
}

TEST_F(SamplerTest, CounterAppearingMidSeriesDeltasAgainstZero) {
  obs::Sampler::Global().SampleNow();
  obs::GetCounter("test.sampler.late_arrival")->Add(7);
  obs::Sampler::Global().SampleNow();
  const std::vector<obs::IntervalDeltas> intervals =
      obs::Sampler::Global().Deltas();
  ASSERT_EQ(intervals.size(), 1u);
  const obs::CounterDelta* delta =
      FindDelta(intervals[0].counters, "test.sampler.late_arrival");
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->delta, 7);
}

TEST_F(SamplerTest, RingEvictsOldestBeyondCapacity) {
  // A huge period keeps the background thread quiet while SampleNow
  // overflows the ring deterministically; Stop() appends one final sample.
  obs::Sampler::Global().Start(std::chrono::milliseconds(60'000), 3);
  obs::Counter* counter = obs::GetCounter("test.sampler.capacity");
  for (int i = 0; i < 8; ++i) {
    counter->Add(1);
    obs::Sampler::Global().SampleNow();
  }
  std::vector<obs::RegistrySample> series = obs::Sampler::Global().Series();
  ASSERT_EQ(series.size(), 3u);
  // Survivors are the newest three samples (counter values 6, 7, 8).
  const obs::CounterSnapshot* oldest =
      FindCounter(series.front().counters, "test.sampler.capacity");
  ASSERT_NE(oldest, nullptr);
  EXPECT_EQ(oldest->value, 6);
  obs::Sampler::Global().Stop();
  series = obs::Sampler::Global().Series();
  EXPECT_EQ(series.size(), 3u);  // final sample evicted the oldest
}

TEST_F(SamplerTest, StartStopLifecycle) {
  EXPECT_FALSE(obs::Sampler::Global().running());
  obs::Sampler::Global().Start(std::chrono::milliseconds(1));
  EXPECT_TRUE(obs::Sampler::Global().running());
  obs::Sampler::Global().Start(std::chrono::milliseconds(1));  // no-op
  obs::Sampler::Global().Stop();
  EXPECT_FALSE(obs::Sampler::Global().running());
  obs::Sampler::Global().Stop();  // no-op
  // Stop always takes a final sample, so a Start/Stop window is never empty.
  EXPECT_GE(obs::Sampler::Global().Series().size(), 1u);
}

#else  // RANKTIES_OBS_DISABLED

TEST(SamplerDisabledTest, ApiIsInertButValid) {
  obs::Sampler& sampler = obs::Sampler::Global();
  sampler.Start(std::chrono::milliseconds(1));
  EXPECT_FALSE(sampler.running());
  sampler.SampleNow();
  EXPECT_TRUE(sampler.Series().empty());
  EXPECT_TRUE(sampler.Deltas().empty());
  sampler.Stop();
  sampler.Clear();
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace
}  // namespace rankties
