#include "rank/permutation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace rankties {
namespace {

TEST(PermutationTest, IdentityRanks) {
  Permutation p(4);
  for (ElementId e = 0; e < 4; ++e) {
    EXPECT_EQ(p.Rank(e), e);
    EXPECT_EQ(p.At(e), e);
  }
}

TEST(PermutationTest, FromRanksAndOrderAgree) {
  auto from_ranks = Permutation::FromRanks({2, 0, 1});
  ASSERT_TRUE(from_ranks.ok());
  // Element 0 at rank 2, element 1 at rank 0, element 2 at rank 1.
  EXPECT_EQ(from_ranks->At(0), 1);
  EXPECT_EQ(from_ranks->At(1), 2);
  EXPECT_EQ(from_ranks->At(2), 0);

  auto from_order = Permutation::FromOrder({1, 2, 0});
  ASSERT_TRUE(from_order.ok());
  EXPECT_EQ(*from_order, *from_ranks);
}

TEST(PermutationTest, RejectsNonBijection) {
  EXPECT_FALSE(Permutation::FromRanks({0, 0, 1}).ok());
  EXPECT_FALSE(Permutation::FromRanks({0, 3, 1}).ok());
  EXPECT_FALSE(Permutation::FromOrder({0, -1, 1}).ok());
}

TEST(PermutationTest, ReverseFlipsRanks) {
  auto p = Permutation::FromOrder({2, 0, 1, 3});
  ASSERT_TRUE(p.ok());
  const Permutation r = p->Reverse();
  for (ElementId e = 0; e < 4; ++e) {
    EXPECT_EQ(r.Rank(e), 3 - p->Rank(e));
  }
  EXPECT_EQ(r.Reverse(), *p);
}

TEST(PermutationTest, InverseComposesToIdentity) {
  Rng rng(3);
  const Permutation p = Permutation::Random(8, rng);
  const Permutation inv = p.Inverse();
  for (ElementId e = 0; e < 8; ++e) {
    EXPECT_EQ(inv.Rank(p.Rank(e)), e);
  }
}

TEST(PermutationTest, RandomIsValidAndVaries) {
  Rng rng(11);
  const Permutation a = Permutation::Random(50, rng);
  const Permutation b = Permutation::Random(50, rng);
  std::vector<bool> seen(50, false);
  for (ElementId r = 0; r < 50; ++r) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(a.At(r))]);
    seen[static_cast<std::size_t>(a.At(r))] = true;
  }
  EXPECT_FALSE(a == b);  // astronomically unlikely to collide
}

TEST(PermutationTest, RandomIsDeterministicPerSeed) {
  Rng rng1(42), rng2(42);
  EXPECT_EQ(Permutation::Random(20, rng1), Permutation::Random(20, rng2));
}

TEST(PermutationTest, AheadAndToString) {
  auto p = Permutation::FromOrder({2, 0, 1});
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Ahead(2, 0));
  EXPECT_FALSE(p->Ahead(1, 0));
  EXPECT_EQ(p->ToString(), "(2 0 1)");
}

TEST(PermutationTest, EmptyDomain) {
  Permutation p(0);
  EXPECT_EQ(p.n(), 0u);
  EXPECT_EQ(p.ToString(), "()");
}

}  // namespace
}  // namespace rankties
