#include "core/prepared.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/pair_counts.h"
#include "core/profile_metrics.h"
#include "gen/random_orders.h"
#include "rank/bucket_order.h"
#include "util/rng.h"

// Allocation-counting hook for the zero-allocation contract of the prepared
// kernels: the test binary replaces global operator new/delete with
// pass-throughs that bump a thread-local counter while a test has armed it.
// Thread-local keeps the hook race-free without putting atomics on every
// allocation in the binary.
namespace {
thread_local bool g_count_allocations = false;
thread_local std::int64_t g_allocation_count = 0;
}  // namespace

// noinline keeps GCC from pairing the malloc/free inside with new/delete
// expressions at call sites (-Wmismatched-new-delete false positives).
__attribute__((noinline)) void* operator new(std::size_t size) {
  if (g_count_allocations) ++g_allocation_count;
  void* ptr = std::malloc(size);
  if (ptr == nullptr) throw std::bad_alloc();
  return ptr;
}

__attribute__((noinline)) void* operator new[](std::size_t size) {
  return operator new(size);
}

__attribute__((noinline)) void operator delete(void* ptr) noexcept {
  std::free(ptr);
}
__attribute__((noinline)) void operator delete[](void* ptr) noexcept {
  std::free(ptr);
}
__attribute__((noinline)) void operator delete(void* ptr,
                                               std::size_t) noexcept {
  std::free(ptr);
}
__attribute__((noinline)) void operator delete[](void* ptr,
                                                 std::size_t) noexcept {
  std::free(ptr);
}

namespace rankties {
namespace {

// A mixed bag of ranking shapes: varies n, bucket count (hits both the flat
// and the sort-fallback joint-histogram modes), and tie structure.
std::vector<BucketOrder> MixedOrders(Rng& rng) {
  std::vector<BucketOrder> orders;
  orders.push_back(BucketOrder());                 // n = 0
  orders.push_back(BucketOrder::SingleBucket(1));  // n = 1
  orders.push_back(BucketOrder::SingleBucket(40));
  for (const std::size_t n : {2, 3, 17, 40, 129}) {
    orders.push_back(BucketOrder::FromPermutation(
        Permutation::Random(n, rng)));  // all singletons -> sort fallback
    orders.push_back(RandomBucketOrder(n, rng));
    orders.push_back(RandomFewValued(n, 4.0, rng));  // few buckets -> flat
    orders.push_back(RandomTopK(n, n / 2, rng));
  }
  return orders;
}

void ExpectPreparedMatchesLegacy(const BucketOrder& sigma,
                                 const BucketOrder& tau,
                                 PairScratch& scratch) {
  const PreparedRanking ps(sigma);
  const PreparedRanking pt(tau);
  const PairCounts expected = ComputePairCounts(sigma, tau);
  EXPECT_EQ(ComputePairCounts(ps, pt, scratch), expected);
  EXPECT_EQ(TwiceKprof(ps, pt, scratch), TwiceKprof(sigma, tau));
  EXPECT_EQ(Kprof(ps, pt, scratch), Kprof(sigma, tau));
  EXPECT_EQ(KHausdorff(ps, pt, scratch), KHausdorff(sigma, tau));
  EXPECT_EQ(TwiceFprof(ps, pt), TwiceFprof(sigma, tau));
  EXPECT_EQ(Fprof(ps, pt), Fprof(sigma, tau));
  EXPECT_EQ(TwiceFHausdorff(ps, pt, scratch), TwiceFHausdorff(sigma, tau));
  EXPECT_EQ(FHausdorff(ps, pt, scratch), FHausdorff(sigma, tau));
  for (const double p : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_EQ(KendallP(ps, pt, p, scratch), KendallP(sigma, tau, p));
  }
}

TEST(PreparedRankingTest, FreezesBucketStructure) {
  const BucketOrder order =
      BucketOrder::FromBuckets(6, {{2, 5}, {0}, {1, 3, 4}}).value();
  const PreparedRanking prepared(order);
  ASSERT_EQ(prepared.n(), 6u);
  ASSERT_EQ(prepared.num_buckets(), 3u);
  EXPECT_EQ(prepared.tied_pairs(), 1 + 0 + 3);
  EXPECT_EQ(prepared.bucket_offset(),
            (std::vector<std::size_t>{0, 2, 3, 6}));
  EXPECT_EQ(prepared.by_bucket(),
            (std::vector<ElementId>{2, 5, 0, 1, 3, 4}));
  for (std::size_t e = 0; e < 6; ++e) {
    const ElementId id = static_cast<ElementId>(e);
    EXPECT_EQ(prepared.bucket_of()[e], order.BucketOf(id));
    EXPECT_EQ(prepared.twice_position()[e], order.TwicePosition(id));
  }
}

TEST(PreparedRankingTest, DefaultAndDegenerateDomains) {
  const PreparedRanking empty;
  EXPECT_EQ(empty.n(), 0u);
  EXPECT_EQ(empty.num_buckets(), 0u);
  EXPECT_EQ(empty.tied_pairs(), 0);

  PairScratch scratch;
  const PreparedRanking frozen_empty((BucketOrder()));
  EXPECT_EQ(frozen_empty.num_buckets(), 0u);
  EXPECT_EQ(ComputePairCounts(frozen_empty, frozen_empty, scratch),
            PairCounts());
  const PreparedRanking one(BucketOrder::SingleBucket(1));
  EXPECT_EQ(TwiceKprof(one, one, scratch), 0);
  EXPECT_EQ(KHausdorff(one, one, scratch), 0);
  EXPECT_EQ(TwiceFprof(one, one), 0);
  EXPECT_EQ(TwiceFHausdorff(one, one, scratch), 0);
}

TEST(PreparedKernelsTest, MatchLegacyOnRandomizedPairs) {
  Rng rng(20260806);
  PairScratch scratch;
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 60));
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const BucketOrder tau = round % 2 == 0 ? RandomBucketOrder(n, rng)
                                           : RandomFewValued(n, 3.0, rng);
    ExpectPreparedMatchesLegacy(sigma, tau, scratch);
  }
}

// One scratch driven through wildly varying n / bucket counts / histogram
// modes: reuse must never leak state between calls (the Fenwick prefix and
// flat-histogram entries are per-call).
TEST(PreparedKernelsTest, ScratchReuseAcrossVaryingInputs) {
  Rng rng(42);
  const std::vector<BucketOrder> orders = MixedOrders(rng);
  PairScratch scratch;
  for (const BucketOrder& sigma : orders) {
    for (const BucketOrder& tau : orders) {
      if (sigma.n() != tau.n()) continue;
      ExpectPreparedMatchesLegacy(sigma, tau, scratch);
    }
  }
}

// Repeats a call after the scratch served larger inputs in between: stale
// high-water state must not change the answer.
TEST(PreparedKernelsTest, ShrinkingInputsAfterLargeOnes) {
  Rng rng(7);
  PairScratch scratch;
  const BucketOrder small_sigma = RandomBucketOrder(9, rng);
  const BucketOrder small_tau = RandomBucketOrder(9, rng);
  const PreparedRanking ps(small_sigma);
  const PreparedRanking pt(small_tau);
  const PairCounts before = ComputePairCounts(ps, pt, scratch);

  const BucketOrder big_sigma =
      BucketOrder::FromPermutation(Permutation::Random(300, rng));
  const BucketOrder big_tau = RandomBucketOrder(300, rng);
  ExpectPreparedMatchesLegacy(big_sigma, big_tau, scratch);

  EXPECT_EQ(ComputePairCounts(ps, pt, scratch), before);
  EXPECT_EQ(before, ComputePairCounts(small_sigma, small_tau));
}

TEST(PreparedKernelsTest, ReserveIsOptionalAndHarmless) {
  Rng rng(3);
  const BucketOrder sigma = RandomFewValued(50, 5.0, rng);
  const BucketOrder tau = RandomBucketOrder(50, rng);
  PairScratch cold;
  PairScratch reserved;
  reserved.Reserve(50, 50);
  const PreparedRanking ps(sigma);
  const PreparedRanking pt(tau);
  EXPECT_EQ(ComputePairCounts(ps, pt, cold),
            ComputePairCounts(ps, pt, reserved));
}

// The core acceptance criterion of the prepared layer: once the scratch has
// seen the workload's shape, the per-pair kernels never touch the heap.
TEST(PreparedKernelsTest, WarmKernelsPerformZeroHeapAllocations) {
  Rng rng(11);
  std::vector<BucketOrder> orders;
  for (int i = 0; i < 6; ++i) {
    orders.push_back(RandomFewValued(200, 4.0, rng));         // flat joint
    orders.push_back(
        BucketOrder::FromPermutation(Permutation::Random(200, rng)));
    // ^ all-singleton: t_sigma * t_tau = n^2 -> sort-fallback joint
  }
  std::vector<PreparedRanking> prepared;
  prepared.reserve(orders.size());
  for (const BucketOrder& order : orders) prepared.emplace_back(order);

  PairScratch scratch;
  // Warm-up pass: grows the scratch to its high-water mark and runs the
  // obs counters' one-time handle registration.
  std::int64_t checksum = 0;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    for (std::size_t j = i + 1; j < prepared.size(); ++j) {
      checksum += TwiceKprof(prepared[i], prepared[j], scratch);
      checksum += KHausdorff(prepared[i], prepared[j], scratch);
      checksum += TwiceFprof(prepared[i], prepared[j]);
      checksum += TwiceFHausdorff(prepared[i], prepared[j], scratch);
    }
  }

  std::int64_t counted = 0;
  g_allocation_count = 0;
  g_count_allocations = true;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    for (std::size_t j = i + 1; j < prepared.size(); ++j) {
      counted += TwiceKprof(prepared[i], prepared[j], scratch);
      counted += KHausdorff(prepared[i], prepared[j], scratch);
      counted += TwiceFprof(prepared[i], prepared[j]);
      counted += TwiceFHausdorff(prepared[i], prepared[j], scratch);
    }
  }
  g_count_allocations = false;
  EXPECT_EQ(g_allocation_count, 0)
      << "warm prepared kernels must not allocate";
  EXPECT_EQ(counted, checksum);
}

// Contrast case documenting why the legacy path needed replacing: the same
// warm-loop measurement over the BucketOrder kernels allocates per pair.
TEST(PreparedKernelsTest, LegacyKernelsDoAllocatePerPair) {
  Rng rng(11);
  const BucketOrder sigma = RandomFewValued(200, 4.0, rng);
  const BucketOrder tau = RandomBucketOrder(200, rng);
  (void)TwiceKprof(sigma, tau);  // warm-up for symmetry
  g_allocation_count = 0;
  g_count_allocations = true;
  const std::int64_t value = TwiceKprof(sigma, tau);
  g_count_allocations = false;
  EXPECT_GT(g_allocation_count, 0);
  EXPECT_EQ(value, TwiceKprof(sigma, tau));
}

}  // namespace
}  // namespace rankties
