#include "core/near_metric.h"

#include <gtest/gtest.h>

#include "core/profile_metrics.h"
#include "gen/random_orders.h"

namespace rankties {
namespace {

OrderSampler Sampler(std::size_t n) {
  return [n](Rng& rng) { return RandomBucketOrder(n, rng); };
}

MetricFn KendallPFn(double p) {
  return [p](const BucketOrder& a, const BucketOrder& b) {
    return KendallP(a, b, p);
  };
}

TEST(NearMetricTest, MetricsShowNoTriangleViolations) {
  Rng rng(1);
  for (MetricKind kind : AllMetricKinds()) {
    const TriangleProbe probe = ProbeTriangleInequality(
        MetricFunction(kind), Sampler(8), 300, rng);
    EXPECT_EQ(probe.violations, 0) << MetricName(kind);
    EXPECT_LE(probe.worst_ratio, 1.0 + 1e-12) << MetricName(kind);
  }
}

TEST(NearMetricTest, SmallPenaltyViolatesTriangle) {
  // p = 0.2 < 1/2: a near metric but not a metric — violations exist and
  // the worst ratio stays bounded (relaxed polygonal inequality).
  Rng rng(2);
  const TriangleProbe probe =
      ProbeTriangleInequality(KendallPFn(0.2), Sampler(6), 4000, rng);
  EXPECT_GT(probe.violations, 0);
  // K^(p) <= (1/(2p)) K^(1/2)-triangle bound => ratio <= 1/(2*0.2) = 2.5.
  EXPECT_LE(probe.worst_ratio, 2.5 + 1e-9);
}

TEST(NearMetricTest, ZeroPenaltyBreaksRegularity) {
  Rng rng(3);
  const std::int64_t violations =
      ProbeDistanceMeasureAxioms(KendallPFn(0.0), Sampler(5), 400, rng);
  EXPECT_GT(violations, 0);  // distinct orders at distance 0
}

TEST(NearMetricTest, MetricsPassDistanceMeasureAxioms) {
  Rng rng(4);
  for (MetricKind kind : AllMetricKinds()) {
    EXPECT_EQ(
        ProbeDistanceMeasureAxioms(MetricFunction(kind), Sampler(7), 200, rng),
        0)
        << MetricName(kind);
  }
}

TEST(NearMetricTest, EquivalenceBandsRespectTheorem7) {
  Rng rng(5);
  struct Case {
    MetricKind a, b;
    double lo, hi;
  };
  // The proved bands: K <= F <= 2K in all flavors; Kprof <= KHaus <= 2Kprof.
  const Case cases[] = {
      {MetricKind::kKHaus, MetricKind::kFHaus, 0.5, 1.0},
      {MetricKind::kKprof, MetricKind::kFprof, 0.5, 1.0},
      {MetricKind::kKprof, MetricKind::kKHaus, 0.5, 1.0},
  };
  for (const Case& c : cases) {
    const EquivalenceBand band = EstimateEquivalenceBand(
        MetricFunction(c.a), MetricFunction(c.b), Sampler(10), 400, rng);
    EXPECT_GT(band.samples, 0);
    EXPECT_EQ(band.zero_mismatches, 0);
    EXPECT_GE(band.min_ratio, c.lo - 1e-12)
        << MetricName(c.a) << "/" << MetricName(c.b);
    EXPECT_LE(band.max_ratio, c.hi + 1e-12)
        << MetricName(c.a) << "/" << MetricName(c.b);
  }
}

TEST(NearMetricTest, PenaltyFamilyBandMatchesTheory) {
  // K^(p) / K^(q) in [p/q, 1] for p < q (paper A.2 proof of Prop. 13).
  Rng rng(6);
  const EquivalenceBand band = EstimateEquivalenceBand(
      KendallPFn(0.25), KendallPFn(0.75), Sampler(9), 400, rng);
  EXPECT_GE(band.min_ratio, 0.25 / 0.75 - 1e-12);
  EXPECT_LE(band.max_ratio, 1.0 + 1e-12);
}

}  // namespace
}  // namespace rankties
