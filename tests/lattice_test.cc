#include "rank/lattice.h"

#include <gtest/gtest.h>

#include <set>

#include "core/pair_counts.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Must(StatusOr<BucketOrder> order) {
  EXPECT_TRUE(order.ok()) << order.status();
  return std::move(order).value();
}

TEST(MeetTest, CompatibleOrdersMerge) {
  // sigma: [0 1 | 2 3], tau: [0 1 2 | 3] — compatible; meet = [0 1 | 2 | 3].
  const BucketOrder sigma = Must(BucketOrder::FromBuckets(4, {{0, 1}, {2, 3}}));
  const BucketOrder tau = Must(BucketOrder::FromBuckets(4, {{0, 1, 2}, {3}}));
  auto meet = CoarsestCommonRefinement(sigma, tau);
  ASSERT_TRUE(meet.ok());
  EXPECT_EQ(meet->ToString(), "[0 1 | 2 | 3]");
}

TEST(MeetTest, DiscordantOrdersHaveNoMeet) {
  const BucketOrder sigma = Must(BucketOrder::FromBuckets(2, {{0}, {1}}));
  const BucketOrder tau = Must(BucketOrder::FromBuckets(2, {{1}, {0}}));
  auto meet = CoarsestCommonRefinement(sigma, tau);
  EXPECT_FALSE(meet.ok());
  EXPECT_EQ(meet.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MeetTest, PropertiesOnRandomCompatiblePairs) {
  // Generate compatible pairs by coarsening a common refinement.
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 10;
    const Permutation base = Permutation::Random(n, rng);
    const BucketOrder fine = BucketOrder::FromPermutation(base);
    // Two random coarsenings of the same permutation are compatible.
    auto coarsen = [&](Rng& r) {
      const std::vector<std::size_t> type = RandomType(n, r);
      std::vector<BucketIndex> bucket_of(n);
      std::size_t at = 0;
      for (std::size_t b = 0; b < type.size(); ++b) {
        for (std::size_t i = 0; i < type[b]; ++i, ++at) {
          bucket_of[static_cast<std::size_t>(
              base.At(static_cast<ElementId>(at)))] =
              static_cast<BucketIndex>(b);
        }
      }
      return BucketOrder::FromBucketIndex(bucket_of).value();
    };
    const BucketOrder sigma = coarsen(rng);
    const BucketOrder tau = coarsen(rng);
    auto meet = CoarsestCommonRefinement(sigma, tau);
    ASSERT_TRUE(meet.ok());
    EXPECT_TRUE(IsRefinementOf(*meet, sigma));
    EXPECT_TRUE(IsRefinementOf(*meet, tau));
    // Coarsest: ties exactly the tied-in-both pairs.
    const PairCounts counts = ComputePairCounts(sigma, tau);
    std::int64_t meet_ties = 0;
    for (std::size_t b = 0; b < meet->num_buckets(); ++b) {
      const std::int64_t size =
          static_cast<std::int64_t>(meet->bucket(b).size());
      meet_ties += size * (size - 1) / 2;
    }
    EXPECT_EQ(meet_ties, counts.tied_both);
  }
}

TEST(JoinTest, HandExample) {
  // sigma: [0 | 1 | 2 3], tau: [1 | 0 | 2 | 3]: they disagree inside
  // {0,1} but both cut after prefix {0,1}; join = [0 1 | 2 3]? tau cuts
  // after {1}, {0,1}, {0,1,2}; sigma cuts after {0}, {0,1}, {0,1,2,3}.
  // Common prefix-set cuts: {0,1} and the full set... sigma has no cut at
  // 3, so join = [0 1 | 2 3].
  const BucketOrder sigma =
      Must(BucketOrder::FromBuckets(4, {{0}, {1}, {2, 3}}));
  const BucketOrder tau =
      Must(BucketOrder::FromBuckets(4, {{1}, {0}, {2}, {3}}));
  const BucketOrder join = FinestCommonCoarsening(sigma, tau);
  EXPECT_EQ(join.ToString(), "[0 1 | 2 3]");
}

TEST(JoinTest, IdenticalOrdersJoinToThemselves) {
  Rng rng(2);
  for (int trial = 0; trial < 15; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(9, rng);
    EXPECT_EQ(FinestCommonCoarsening(sigma, sigma), sigma);
  }
}

TEST(JoinTest, ReversedOrdersJoinToSingleBucket) {
  const BucketOrder id = BucketOrder::FromPermutation(Permutation(6));
  EXPECT_EQ(FinestCommonCoarsening(id, id.Reverse()),
            BucketOrder::SingleBucket(6));
}

TEST(JoinTest, BothRefineTheJoinAndItIsFinest) {
  Rng rng(3);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 9;
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const BucketOrder tau = RandomBucketOrder(n, rng);
    const BucketOrder join = FinestCommonCoarsening(sigma, tau);
    EXPECT_TRUE(IsRefinementOf(sigma, join));
    EXPECT_TRUE(IsRefinementOf(tau, join));
    // Finest: any common coarsening has boundaries only where the join
    // does. Check the join has a boundary at every prefix where BOTH
    // inputs cut over identical prefix sets (brute re-derivation).
    std::vector<bool> join_cut(n + 1, false);
    {
      std::size_t cumulative = 0;
      for (std::size_t b = 0; b < join.num_buckets(); ++b) {
        cumulative += join.bucket(b).size();
        join_cut[cumulative] = true;
      }
    }
    for (std::size_t s = 1; s <= n; ++s) {
      // Prefix sets of size s at bucket boundaries (brute force walks).
      std::set<ElementId> ps, pt;
      std::size_t cs = 0;
      bool sigma_cut = false;
      for (std::size_t b = 0; b < sigma.num_buckets(); ++b) {
        for (ElementId e : sigma.bucket(b)) {
          if (cs < s) ps.insert(e);
          ++cs;
        }
        if (cs == s) sigma_cut = true;
      }
      std::size_t ct = 0;
      bool tau_cut = false;
      for (std::size_t b = 0; b < tau.num_buckets(); ++b) {
        for (ElementId e : tau.bucket(b)) {
          if (ct < s) pt.insert(e);
          ++ct;
        }
        if (ct == s) tau_cut = true;
      }
      const bool valid = sigma_cut && tau_cut && ps == pt;
      EXPECT_EQ(join_cut[s], valid) << "prefix " << s;
    }
  }
}

}  // namespace
}  // namespace rankties
