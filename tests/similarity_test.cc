#include "db/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace rankties {
namespace {

TEST(SimilarityTest, BuildValidation) {
  EXPECT_FALSE(SimilarityIndex::Build({}).ok());
  EXPECT_FALSE(SimilarityIndex::Build({{}}).ok());
  EXPECT_FALSE(SimilarityIndex::Build({{1, 2}, {3}}).ok());
  auto ok = SimilarityIndex::Build({{1, 2}, {3, 4}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);
  EXPECT_EQ(ok->dimensions(), 2u);
}

TEST(SimilarityTest, ExactMatchIsItsOwnNearestNeighbor) {
  auto index = SimilarityIndex::Build({{0, 0}, {5, 5}, {9, 1}, {2, 8}});
  ASSERT_TRUE(index.ok());
  for (std::size_t i = 0; i < 4; ++i) {
    const std::vector<double> queries[] = {
        {0, 0}, {5, 5}, {9, 1}, {2, 8}};
    auto result = index->Nearest(queries[i], 1);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->neighbors.size(), 1u);
    EXPECT_EQ(result->neighbors[0], static_cast<std::int32_t>(i));
  }
}

TEST(SimilarityTest, RecoversEuclideanNeighborsOnSeparatedClusters) {
  // Two well-separated Gaussian blobs: rank aggregation must put same-blob
  // points ahead of other-blob points.
  Rng rng(1);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back({rng.Normal(0, 1), rng.Normal(0, 1), rng.Normal(0, 1)});
  }
  for (int i = 0; i < 30; ++i) {
    points.push_back(
        {rng.Normal(20, 1), rng.Normal(20, 1), rng.Normal(20, 1)});
  }
  auto index = SimilarityIndex::Build(points);
  ASSERT_TRUE(index.ok());
  auto near_blob0 = index->Nearest({0.5, -0.5, 0.0}, 10);
  ASSERT_TRUE(near_blob0.ok());
  for (std::int32_t neighbor : near_blob0->neighbors) {
    EXPECT_LT(neighbor, 30) << "neighbor from the wrong blob";
  }
}

TEST(SimilarityTest, ScaleFreeAcrossFeatures) {
  // Feature 1 in units 1000x feature 0: rank aggregation is unaffected
  // (the whole point vs raw-distance combination).
  Rng rng(2);
  std::vector<std::vector<double>> base;
  for (int i = 0; i < 40; ++i) {
    base.push_back({rng.UniformReal(0, 1), rng.UniformReal(0, 1)});
  }
  std::vector<std::vector<double>> scaled = base;
  for (auto& point : scaled) point[1] *= 1000.0;
  auto index_base = SimilarityIndex::Build(base);
  auto index_scaled = SimilarityIndex::Build(scaled);
  ASSERT_TRUE(index_base.ok() && index_scaled.ok());
  auto a = index_base->Nearest({0.5, 0.5}, 5);
  auto b = index_scaled->Nearest({0.5, 500.0}, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->neighbors, b->neighbors);
}

TEST(SimilarityTest, ClassificationOnBlobs) {
  Rng rng(3);
  std::vector<std::vector<double>> points;
  std::vector<std::string> labels;
  for (int i = 0; i < 25; ++i) {
    points.push_back({rng.Normal(0, 1), rng.Normal(0, 1)});
    labels.push_back("red");
  }
  for (int i = 0; i < 25; ++i) {
    points.push_back({rng.Normal(10, 1), rng.Normal(10, 1)});
    labels.push_back("blue");
  }
  auto index = SimilarityIndex::Build(points);
  ASSERT_TRUE(index.ok());
  auto red = index->Classify({0.2, -0.3}, labels, 7);
  auto blue = index->Classify({9.8, 10.5}, labels, 7);
  ASSERT_TRUE(red.ok() && blue.ok());
  EXPECT_EQ(*red, "red");
  EXPECT_EQ(*blue, "blue");
}

TEST(SimilarityTest, AccessesAreSublinear) {
  Rng rng(4);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back({rng.UniformReal(0, 100), rng.UniformReal(0, 100),
                      rng.UniformReal(0, 100), rng.UniformReal(0, 100),
                      rng.UniformReal(0, 100)});
  }
  auto index = SimilarityIndex::Build(points);
  ASSERT_TRUE(index.ok());
  auto result = index->Nearest({50, 50, 50, 50, 50}, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->sorted_accesses,
            static_cast<std::int64_t>(5 * 2000 / 2));
}

TEST(SimilarityTest, Validation) {
  auto index = SimilarityIndex::Build({{1, 2}, {3, 4}, {5, 6}});
  ASSERT_TRUE(index.ok());
  EXPECT_FALSE(index->Nearest({1}, 1).ok());          // dim mismatch
  EXPECT_FALSE(index->Nearest({1, 2}, 9).ok());       // k too big
  EXPECT_FALSE(index->Classify({1, 2}, {"a"}, 1).ok());  // label count
  EXPECT_FALSE(index->Classify({1, 2}, {"a", "b", "c"}, 0).ok());
}

}  // namespace
}  // namespace rankties
