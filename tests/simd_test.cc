#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace rankties::simd {
namespace {

// Restores the process dispatch level after each test so the override never
// leaks into other suites in the same binary.
class SimdTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLevelForTesting(DetectLevel()); }
};

TEST_F(SimdTest, DetectionIsConsistent) {
  // The detected level can only be AVX2 on hardware that supports it and
  // when the override is absent; scalar is always a legal answer.
  const Level detected = DetectLevel();
  if (detected == Level::kAvx2) {
    EXPECT_TRUE(CpuHasAvx2());
    EXPECT_FALSE(ScalarForcedByEnv());
  }
  // The CI dispatch matrix runs this binary once with RANKTIES_NO_AVX2 set
  // and once without; the forced-scalar leg proves the env override
  // end-to-end.
  if (ScalarForcedByEnv()) {
    EXPECT_EQ(DetectLevel(), Level::kScalar);
  }
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
}

TEST_F(SimdTest, SetLevelForTestingClampsToHardware) {
  SetLevelForTesting(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  SetLevelForTesting(Level::kAvx2);
  if (CpuHasAvx2()) {
    EXPECT_EQ(ActiveLevel(), Level::kAvx2);
  } else {
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
  }
}

// Bit-identity of the dispatched kernels against the scalar twins, across
// lengths that cover the empty case, sub-vector-width tails, exact vector
// multiples, and long mixed runs.
TEST_F(SimdTest, AbsDiffSumMatchesScalarAtEveryLevel) {
  Rng rng(20260807);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{7}, std::size_t{8}, std::size_t{64}, std::size_t{1001}}) {
    std::vector<std::int64_t> a(n);
    std::vector<std::int64_t> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Doubled positions in real use are bounded by 2n, but the kernel
      // contract is plain int64 L1; exercise a wider (still non-overflowing)
      // range including negatives.
      a[i] = rng.UniformInt(-1'000'000, 1'000'000);
      b[i] = rng.UniformInt(-1'000'000, 1'000'000);
    }
    const std::int64_t want = AbsDiffSumI64Scalar(a.data(), b.data(), n);
    for (const Level level : {Level::kScalar, Level::kAvx2}) {
      SetLevelForTesting(level);
      EXPECT_EQ(AbsDiffSumI64(a.data(), b.data(), n), want)
          << "n=" << n << " level=" << LevelName(ActiveLevel());
    }
  }
}

TEST_F(SimdTest, JointKeysMatchScalarAtEveryLevel) {
  Rng rng(99);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{8},
        std::size_t{9}, std::size_t{16}, std::size_t{400}}) {
    for (const std::int32_t t_tau : {1, 2, 7, 1024}) {
      std::vector<std::int32_t> sigma_of(n);
      std::vector<std::int32_t> tau_of(n);
      for (std::size_t i = 0; i < n; ++i) {
        sigma_of[i] = static_cast<std::int32_t>(rng.UniformInt(0, 1023));
        tau_of[i] = static_cast<std::int32_t>(rng.UniformInt(0, t_tau - 1));
      }
      std::vector<std::int32_t> want(n);
      JointKeys32Scalar(sigma_of.data(), tau_of.data(), n, t_tau,
                        want.data());
      for (const Level level : {Level::kScalar, Level::kAvx2}) {
        SetLevelForTesting(level);
        std::vector<std::int32_t> got(n, -1);
        JointKeys32(sigma_of.data(), tau_of.data(), n, t_tau, got.data());
        EXPECT_EQ(got, want)
            << "n=" << n << " t_tau=" << t_tau
            << " level=" << LevelName(ActiveLevel());
      }
    }
  }
}

TEST_F(SimdTest, JointKeys64MatchScalarAtEveryLevel) {
  Rng rng(100);
  // t_tau values past the int32 histogram cap exercise the genuinely
  // 64-bit products the sorted fallback needs (bucket counts are int32,
  // but sigma_of * t_tau is not).
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{8}, std::size_t{400}}) {
    for (const std::int64_t t_tau :
         {std::int64_t{1}, std::int64_t{7}, std::int64_t{1} << 20,
          std::int64_t{1} << 30}) {
      std::vector<std::int32_t> sigma_of(n);
      std::vector<std::int32_t> tau_of(n);
      for (std::size_t i = 0; i < n; ++i) {
        sigma_of[i] =
            static_cast<std::int32_t>(rng.UniformInt(0, (1 << 30) - 1));
        tau_of[i] = static_cast<std::int32_t>(
            rng.UniformInt(0, static_cast<int>(
                                  std::min<std::int64_t>(t_tau, 1 << 30)) -
                                  1));
      }
      std::vector<std::int64_t> want(n);
      JointKeys64Scalar(sigma_of.data(), tau_of.data(), n, t_tau,
                        want.data());
      for (const Level level : {Level::kScalar, Level::kAvx2}) {
        SetLevelForTesting(level);
        std::vector<std::int64_t> got(n, -1);
        JointKeys64(sigma_of.data(), tau_of.data(), n, t_tau, got.data());
        EXPECT_EQ(got, want)
            << "n=" << n << " t_tau=" << t_tau
            << " level=" << LevelName(ActiveLevel());
      }
    }
  }
}

}  // namespace
}  // namespace rankties::simd
