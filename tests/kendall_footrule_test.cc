#include <gtest/gtest.h>

#include "core/footrule.h"
#include "core/kendall.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

Permutation MustPerm(StatusOr<Permutation> perm) {
  EXPECT_TRUE(perm.ok()) << perm.status();
  return std::move(perm).value();
}

TEST(KendallTest, HandExample) {
  // (0 1 2 3) vs (1 0 3 2): pairs {0,1} and {2,3} flip -> K = 2.
  const Permutation a(4);
  const Permutation b = MustPerm(Permutation::FromOrder({1, 0, 3, 2}));
  EXPECT_EQ(KendallTau(a, b), 2);
  EXPECT_EQ(KendallTauNaive(a, b), 2);
}

TEST(KendallTest, ReversalIsMaximal) {
  for (std::size_t n : {1u, 2u, 5u, 10u, 33u}) {
    const Permutation id(n);
    EXPECT_EQ(KendallTau(id, id.Reverse()), MaxKendall(n));
  }
}

TEST(KendallTest, MetricAxiomsOnPermutations) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const Permutation a = Permutation::Random(12, rng);
    const Permutation b = Permutation::Random(12, rng);
    const Permutation c = Permutation::Random(12, rng);
    EXPECT_EQ(KendallTau(a, a), 0);
    EXPECT_EQ(KendallTau(a, b), KendallTau(b, a));
    EXPECT_LE(KendallTau(a, c), KendallTau(a, b) + KendallTau(b, c));
  }
}

class KendallParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KendallParityTest, FastMatchesNaive) {
  const std::size_t n = GetParam();
  Rng rng(n);
  for (int trial = 0; trial < 30; ++trial) {
    const Permutation a = Permutation::Random(n, rng);
    const Permutation b = Permutation::Random(n, rng);
    EXPECT_EQ(KendallTau(a, b), KendallTauNaive(a, b));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KendallParityTest,
                         ::testing::Values(1, 2, 3, 7, 16, 50, 127));

TEST(FootruleTest, HandExample) {
  const Permutation a(4);
  const Permutation b = MustPerm(Permutation::FromOrder({1, 0, 3, 2}));
  // Each element moves one slot: F = 4.
  EXPECT_EQ(Footrule(a, b), 4);
}

TEST(FootruleTest, ReversalIsMaximal) {
  for (std::size_t n : {1u, 2u, 5u, 10u, 31u}) {
    const Permutation id(n);
    EXPECT_EQ(Footrule(id, id.Reverse()), MaxFootrule(n));
  }
}

TEST(FootruleTest, DiaconisGrahamInequality) {
  // K <= F <= 2K for full rankings (paper eq. 1).
  Rng rng(6);
  for (std::size_t n : {2u, 5u, 9u, 20u, 60u}) {
    for (int trial = 0; trial < 40; ++trial) {
      const Permutation a = Permutation::Random(n, rng);
      const Permutation b = Permutation::Random(n, rng);
      const std::int64_t k = KendallTau(a, b);
      const std::int64_t f = Footrule(a, b);
      EXPECT_LE(k, f);
      EXPECT_LE(f, 2 * k);
    }
  }
}

TEST(FootruleTest, DiaconisGrahamTightness) {
  // Left side tight: adjacent transposition has K=1, F=2... actually K=1,
  // F=2 is the *right* side tight (F = 2K). Left side tight (F = K):
  // a cyclic shift by one, e.g. (1 2 0): K = 2, F = ... ranks 0:1,1:... use
  // explicit orders.
  const Permutation id(3);
  const Permutation swap01 = MustPerm(Permutation::FromOrder({1, 0, 2}));
  EXPECT_EQ(KendallTau(id, swap01), 1);
  EXPECT_EQ(Footrule(id, swap01), 2);  // F = 2K: right inequality tight

  const Permutation cycle = MustPerm(Permutation::FromOrder({2, 0, 1}));
  // id ranks: 0->0,1->1,2->2. cycle ranks: 2->0, 0->1, 1->2.
  // K: pairs (0,2),(1,2) flipped -> 2. F: |0-1|+|1-2|+|2-0| = 4.
  EXPECT_EQ(KendallTau(id, cycle), 2);
  EXPECT_EQ(Footrule(id, cycle), 4);
}

TEST(FootruleTest, FprofOnFullRankingsEqualsFootrule) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const Permutation a = Permutation::Random(9, rng);
    const Permutation b = Permutation::Random(9, rng);
    EXPECT_EQ(TwiceFprof(BucketOrder::FromPermutation(a),
                         BucketOrder::FromPermutation(b)),
              2 * Footrule(a, b));
  }
}

TEST(FootruleTest, FprofHandExample) {
  // sigma = [0 1 | 2], tau = [2 | 0 1]. Positions sigma: 1.5,1.5,3;
  // tau: 2.5,2.5,1. Fprof = 1 + 1 + 2 = 4.
  auto sigma = BucketOrder::FromBuckets(3, {{0, 1}, {2}});
  auto tau = BucketOrder::FromBuckets(3, {{2}, {0, 1}});
  ASSERT_TRUE(sigma.ok() && tau.ok());
  EXPECT_EQ(TwiceFprof(*sigma, *tau), 8);
  EXPECT_DOUBLE_EQ(Fprof(*sigma, *tau), 4.0);
}

TEST(FootruleTest, FootruleLocationRequiresTopK) {
  Rng rng(8);
  const BucketOrder topk = RandomTopK(10, 3, rng);
  const BucketOrder not_topk = RandomBucketOrder(10, rng);
  auto bad = TwiceFootruleLocation(topk, not_topk, 3, 14);
  if (!not_topk.IsTopK(3)) {
    EXPECT_FALSE(bad.ok());
  }
  auto bad_ell = TwiceFootruleLocation(topk, topk, 3, 6);
  EXPECT_FALSE(bad_ell.ok());
}

TEST(FootruleTest, FootruleLocationSelfIsZero) {
  Rng rng(9);
  const BucketOrder topk = RandomTopK(8, 3, rng);
  auto d = TwiceFootruleLocation(topk, topk, 3, 12);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 0);
}

TEST(KendallTest, MaxKendallHugeDomainsStayExact) {
  // The old n*(n-1)/2 wrapped for n past 2^32; the checked form is exact up
  // to the largest domain whose pair count fits an int64 (n = 2^32).
  EXPECT_EQ(MaxKendall(3000000000ULL), 4499999998500000000LL);
  EXPECT_EQ(MaxKendall(1ULL << 32),
            (std::int64_t{1} << 31) * ((std::int64_t{1} << 32) - 1));
}

TEST(KendallDeathTest, MaxKendallAbortsPastInt64) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  // One element past the boundary: n(n-1)/2 exceeds 2^63 - 1.
  EXPECT_DEATH(MaxKendall((1ULL << 32) + 1), "integer overflow");
}

}  // namespace
}  // namespace rankties
