#include "core/online_median.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/median_rank.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(OnlineMedianTest, MatchesBatchAfterEveryVoter) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 12;
    OnlineMedianAggregator online(n);
    std::vector<BucketOrder> so_far;
    for (int v = 0; v < 9; ++v) {
      const BucketOrder voter = RandomBucketOrder(n, rng);
      ASSERT_TRUE(online.AddVoter(voter).ok());
      so_far.push_back(voter);
      auto incremental = online.ScoresQuad();
      auto batch = MedianRankScoresQuad(so_far, MedianPolicy::kLower);
      ASSERT_TRUE(incremental.ok() && batch.ok());
      ASSERT_EQ(*incremental, *batch) << "after voter " << v;
      auto full_online = online.CurrentFull();
      auto full_batch = MedianAggregateFull(so_far, MedianPolicy::kLower);
      ASSERT_TRUE(full_online.ok() && full_batch.ok());
      EXPECT_EQ(*full_online, *full_batch);
    }
  }
}

TEST(OnlineMedianTest, HeavyTieWorkload) {
  // Lots of duplicate positions exercise the equal-key median tracking.
  Rng rng(2);
  const std::size_t n = 20;
  OnlineMedianAggregator online(n);
  std::vector<BucketOrder> so_far;
  for (int v = 0; v < 12; ++v) {
    const BucketOrder voter = RandomFewValued(n, 8.0, rng);
    ASSERT_TRUE(online.AddVoter(voter).ok());
    so_far.push_back(voter);
    auto incremental = online.ScoresQuad();
    auto batch = MedianRankScoresQuad(so_far, MedianPolicy::kLower);
    ASSERT_TRUE(incremental.ok() && batch.ok());
    ASSERT_EQ(*incremental, *batch) << "after voter " << v;
  }
}

TEST(OnlineMedianTest, TopKConsistent) {
  Rng rng(3);
  OnlineMedianAggregator online(10);
  std::vector<BucketOrder> so_far;
  for (int v = 0; v < 5; ++v) {
    const BucketOrder voter = RandomBucketOrder(10, rng);
    ASSERT_TRUE(online.AddVoter(voter).ok());
    so_far.push_back(voter);
  }
  auto online_topk = online.CurrentTopK(3);
  auto batch_topk = MedianAggregateTopK(so_far, 3, MedianPolicy::kLower);
  ASSERT_TRUE(online_topk.ok() && batch_topk.ok());
  EXPECT_EQ(*online_topk, *batch_topk);
}

// Metamorphic: the aggregate is a per-element median, so it cannot depend
// on the order voters arrive in. 200 seeded corpora, each added to the
// aggregator in a random permutation of voter order, must reproduce the
// batch scores and top-k of the unpermuted corpus exactly.
TEST(OnlineMedianTest, VoterOrderPermutationInvariance) {
  Rng rng(0x5EED0207);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 16));
    const std::size_t m = static_cast<std::size_t>(rng.UniformInt(1, 7));
    std::vector<BucketOrder> voters;
    voters.reserve(m);
    for (std::size_t v = 0; v < m; ++v) {
      voters.push_back(trial % 3 == 0 ? RandomFewValued(n, 4.0, rng)
                                      : RandomBucketOrder(n, rng));
    }
    auto batch = MedianRankScoresQuad(voters, MedianPolicy::kLower);
    ASSERT_TRUE(batch.ok());
    const std::size_t k = static_cast<std::size_t>(
        rng.UniformInt(1, static_cast<std::int64_t>(n)));
    auto batch_topk = MedianAggregateTopK(voters, k, MedianPolicy::kLower);
    ASSERT_TRUE(batch_topk.ok());

    std::vector<std::size_t> arrival(m);
    std::iota(arrival.begin(), arrival.end(), 0u);
    rng.Shuffle(arrival);
    OnlineMedianAggregator online(n);
    for (std::size_t index : arrival) {
      ASSERT_TRUE(online.AddVoter(voters[index]).ok());
    }
    auto scores = online.ScoresQuad();
    ASSERT_TRUE(scores.ok());
    EXPECT_EQ(*scores, *batch) << "trial " << trial << " n=" << n
                               << " m=" << m;
    auto online_topk = online.CurrentTopK(k);
    ASSERT_TRUE(online_topk.ok());
    EXPECT_EQ(*online_topk, *batch_topk)
        << "trial " << trial << " k=" << k;
  }
}

TEST(OnlineMedianTest, UpdateVoterMatchesBatchRecompute) {
  Rng rng(4);
  const std::size_t n = 14;
  OnlineMedianAggregator online(n);
  std::vector<BucketOrder> voters;
  for (int v = 0; v < 6; ++v) {
    voters.push_back(RandomBucketOrder(n, rng));
    ASSERT_TRUE(online.AddVoter(voters.back()).ok());
  }
  for (int round = 0; round < 40; ++round) {
    const std::size_t index = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(voters.size()) - 1));
    voters[index] = RandomBucketOrder(n, rng);
    ASSERT_TRUE(online.UpdateVoter(index, voters[index]).ok());
    auto scores = online.ScoresQuad();
    auto batch = MedianRankScoresQuad(voters, MedianPolicy::kLower);
    ASSERT_TRUE(scores.ok() && batch.ok());
    ASSERT_EQ(*scores, *batch) << "round " << round;
  }
  EXPECT_FALSE(online.UpdateVoter(voters.size(), voters[0]).ok());
  EXPECT_FALSE(online.UpdateVoter(0, BucketOrder::SingleBucket(n + 1)).ok());
}

TEST(OnlineMedianTest, RemoveVoterMatchesBatchRecompute) {
  Rng rng(5);
  const std::size_t n = 11;
  OnlineMedianAggregator online(n);
  std::vector<BucketOrder> voters;
  for (int v = 0; v < 7; ++v) {
    voters.push_back(RandomFewValued(n, 3.0, rng));
    ASSERT_TRUE(online.AddVoter(voters.back()).ok());
  }
  while (voters.size() > 1) {
    const std::size_t index = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(voters.size()) - 1));
    ASSERT_TRUE(online.RemoveVoter(index).ok());
    // Mirror the aggregator's swap-with-last bookkeeping.
    voters[index] = std::move(voters.back());
    voters.pop_back();
    EXPECT_EQ(online.num_voters(), voters.size());
    auto scores = online.ScoresQuad();
    auto batch = MedianRankScoresQuad(voters, MedianPolicy::kLower);
    ASSERT_TRUE(scores.ok() && batch.ok());
    ASSERT_EQ(*scores, *batch) << voters.size() << " voters left";
  }
  ASSERT_TRUE(online.RemoveVoter(0).ok());
  EXPECT_EQ(online.num_voters(), 0u);
  EXPECT_FALSE(online.ScoresQuad().ok());  // back to the empty state
  EXPECT_FALSE(online.RemoveVoter(0).ok());
  // The aggregator is reusable after draining to empty.
  ASSERT_TRUE(online.AddVoter(BucketOrder::SingleBucket(n)).ok());
  EXPECT_TRUE(online.ScoresQuad().ok());
}

TEST(OnlineMedianTest, Validation) {
  OnlineMedianAggregator online(5);
  EXPECT_FALSE(online.ScoresQuad().ok());  // no voters yet
  EXPECT_FALSE(online.CurrentFull().ok());
  EXPECT_FALSE(online.AddVoter(BucketOrder::SingleBucket(7)).ok());
  ASSERT_TRUE(online.AddVoter(BucketOrder::SingleBucket(5)).ok());
  EXPECT_EQ(online.num_voters(), 1u);
  EXPECT_FALSE(online.CurrentTopK(9).ok());
  EXPECT_TRUE(online.CurrentTopK(2).ok());
}

}  // namespace
}  // namespace rankties
