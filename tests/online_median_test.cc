#include "core/online_median.h"

#include <gtest/gtest.h>

#include "core/median_rank.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(OnlineMedianTest, MatchesBatchAfterEveryVoter) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 12;
    OnlineMedianAggregator online(n);
    std::vector<BucketOrder> so_far;
    for (int v = 0; v < 9; ++v) {
      const BucketOrder voter = RandomBucketOrder(n, rng);
      ASSERT_TRUE(online.AddVoter(voter).ok());
      so_far.push_back(voter);
      auto incremental = online.ScoresQuad();
      auto batch = MedianRankScoresQuad(so_far, MedianPolicy::kLower);
      ASSERT_TRUE(incremental.ok() && batch.ok());
      ASSERT_EQ(*incremental, *batch) << "after voter " << v;
      auto full_online = online.CurrentFull();
      auto full_batch = MedianAggregateFull(so_far, MedianPolicy::kLower);
      ASSERT_TRUE(full_online.ok() && full_batch.ok());
      EXPECT_EQ(*full_online, *full_batch);
    }
  }
}

TEST(OnlineMedianTest, HeavyTieWorkload) {
  // Lots of duplicate positions exercise the equal-key median tracking.
  Rng rng(2);
  const std::size_t n = 20;
  OnlineMedianAggregator online(n);
  std::vector<BucketOrder> so_far;
  for (int v = 0; v < 12; ++v) {
    const BucketOrder voter = RandomFewValued(n, 8.0, rng);
    ASSERT_TRUE(online.AddVoter(voter).ok());
    so_far.push_back(voter);
    auto incremental = online.ScoresQuad();
    auto batch = MedianRankScoresQuad(so_far, MedianPolicy::kLower);
    ASSERT_TRUE(incremental.ok() && batch.ok());
    ASSERT_EQ(*incremental, *batch) << "after voter " << v;
  }
}

TEST(OnlineMedianTest, TopKConsistent) {
  Rng rng(3);
  OnlineMedianAggregator online(10);
  std::vector<BucketOrder> so_far;
  for (int v = 0; v < 5; ++v) {
    const BucketOrder voter = RandomBucketOrder(10, rng);
    ASSERT_TRUE(online.AddVoter(voter).ok());
    so_far.push_back(voter);
  }
  auto online_topk = online.CurrentTopK(3);
  auto batch_topk = MedianAggregateTopK(so_far, 3, MedianPolicy::kLower);
  ASSERT_TRUE(online_topk.ok() && batch_topk.ok());
  EXPECT_EQ(*online_topk, *batch_topk);
}

TEST(OnlineMedianTest, Validation) {
  OnlineMedianAggregator online(5);
  EXPECT_FALSE(online.ScoresQuad().ok());  // no voters yet
  EXPECT_FALSE(online.CurrentFull().ok());
  EXPECT_FALSE(online.AddVoter(BucketOrder::SingleBucket(7)).ok());
  ASSERT_TRUE(online.AddVoter(BucketOrder::SingleBucket(5)).ok());
  EXPECT_EQ(online.num_voters(), 1u);
  EXPECT_FALSE(online.CurrentTopK(9).ok());
  EXPECT_TRUE(online.CurrentTopK(2).ok());
}

}  // namespace
}  // namespace rankties
