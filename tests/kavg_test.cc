#include <gtest/gtest.h>

#include "core/profile_metrics.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(KavgTest, ClosedFormMatchesBruteForce) {
  Rng rng(1);
  for (std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
    for (int trial = 0; trial < 20; ++trial) {
      const BucketOrder sigma = RandomBucketOrder(n, rng);
      const BucketOrder tau = RandomBucketOrder(n, rng);
      EXPECT_DOUBLE_EQ(Kavg(sigma, tau), KavgBrute(sigma, tau))
          << sigma.ToString() << " vs " << tau.ToString();
    }
  }
}

TEST(KavgTest, SampledEstimatorConverges) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    const BucketOrder sigma = RandomFewValued(30, 6.0, rng);
    const BucketOrder tau = RandomFewValued(30, 6.0, rng);
    const double exact = Kavg(sigma, tau);
    const double estimate = KavgSampled(sigma, tau, 3000, rng);
    // Pair count is 435; Monte Carlo error should be well under 2%.
    EXPECT_NEAR(estimate, exact, 0.02 * exact + 1.0);
  }
}

TEST(KavgTest, NotADistanceMeasureOnGeneralPartialRankings) {
  // A.3's observation, now directly testable: Kavg(sigma, sigma) > 0 when
  // sigma has a bucket of size >= 2.
  const BucketOrder tied = BucketOrder::SingleBucket(4);
  EXPECT_GT(Kavg(tied, tied), 0.0);
  EXPECT_DOUBLE_EQ(Kavg(tied, tied), 6.0 / 2.0);  // C(4,2) tied-both pairs
  // But on full rankings it degenerates to Kendall (a genuine metric).
  Rng rng(3);
  const Permutation a = Permutation::Random(8, rng);
  const BucketOrder fa = BucketOrder::FromPermutation(a);
  EXPECT_DOUBLE_EQ(Kavg(fa, fa), 0.0);
}

TEST(KavgTest, RelatesToKprofByTiedBothHalf) {
  // Kavg = Kprof + tied_both / 2, by the two closed forms.
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(10, rng);
    const BucketOrder tau = RandomBucketOrder(10, rng);
    const PairCounts c = ComputePairCounts(sigma, tau);
    EXPECT_DOUBLE_EQ(Kavg(sigma, tau),
                     Kprof(sigma, tau) +
                         static_cast<double>(c.tied_both) / 2.0);
  }
}

}  // namespace
}  // namespace rankties
