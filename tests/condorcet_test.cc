#include "core/condorcet.h"

#include <gtest/gtest.h>

#include "core/kemeny.h"
#include "core/local_kemenization.h"
#include "core/median_rank.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Must(StatusOr<BucketOrder> order) {
  EXPECT_TRUE(order.ok()) << order.status();
  return std::move(order).value();
}

TEST(CondorcetTest, MarginsAreAntisymmetric) {
  Rng rng(1);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(RandomBucketOrder(8, rng));
  const auto margins = MajorityMargins(inputs);
  for (std::size_t a = 0; a < 8; ++a) {
    EXPECT_EQ(margins[a][a], 0);
    for (std::size_t b = 0; b < 8; ++b) {
      EXPECT_EQ(margins[a][b], -margins[b][a]);
      EXPECT_LE(std::abs(margins[a][b]), 5);
    }
  }
}

TEST(CondorcetTest, UnanimousWinner) {
  // Element 2 first for everyone.
  std::vector<BucketOrder> inputs = {
      Must(BucketOrder::FromBuckets(4, {{2}, {0, 1}, {3}})),
      Must(BucketOrder::FromBuckets(4, {{2}, {3}, {0}, {1}})),
      Must(BucketOrder::FromBuckets(4, {{2}, {0, 1, 3}})),
  };
  auto winner = CondorcetWinner(inputs);
  ASSERT_TRUE(winner.has_value());
  EXPECT_EQ(*winner, 2);
}

TEST(CondorcetTest, ParadoxHasNoWinnerAndACycle) {
  // The classic rock-paper-scissors electorate: 0<1<2, 1<2<0, 2<0<1.
  std::vector<BucketOrder> inputs = {
      Must(BucketOrder::FromBuckets(3, {{0}, {1}, {2}})),
      Must(BucketOrder::FromBuckets(3, {{1}, {2}, {0}})),
      Must(BucketOrder::FromBuckets(3, {{2}, {0}, {1}})),
  };
  EXPECT_FALSE(CondorcetWinner(inputs).has_value());
  EXPECT_FALSE(MajorityTournamentAcyclic(inputs));
}

TEST(CondorcetTest, TiesProduceNoStrictEdge) {
  // Everyone ties everything: no winner, trivially acyclic.
  std::vector<BucketOrder> inputs(3, BucketOrder::SingleBucket(4));
  EXPECT_FALSE(CondorcetWinner(inputs).has_value());
  EXPECT_TRUE(MajorityTournamentAcyclic(inputs));
}

TEST(CondorcetTest, AcyclicMajorityMeansKemenyHasNoViolations) {
  // When the strict-majority tournament is acyclic, the exact Kemeny
  // ranking extends it (zero violations).
  Rng rng(2);
  int checked = 0;
  for (int trial = 0; trial < 40 && checked < 8; ++trial) {
    const Permutation center = Permutation::Random(6, rng);
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) {
      inputs.push_back(QuantizedMallows(center, 0.4, 3, rng));
    }
    if (!MajorityTournamentAcyclic(inputs)) continue;
    ++checked;
    auto kemeny = ExactKemeny(inputs, 0.5);
    ASSERT_TRUE(kemeny.ok());
    EXPECT_EQ(MajorityViolations(kemeny->ranking, inputs), 0);
  }
  EXPECT_GT(checked, 0);
}

TEST(CondorcetTest, LocalKemenizationNeverIncreasesAdjacentViolations) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 7; ++i) inputs.push_back(RandomBucketOrder(7, rng));
    const Permutation start = Permutation::Random(7, rng);
    const Permutation polished = LocalKemenization(start, inputs, 0.5);
    EXPECT_LE(MajorityViolations(polished, inputs),
              MajorityViolations(start, inputs) + 2);
    // (Non-adjacent swaps can move counts slightly; the strong guarantee
    // is on the objective, tested elsewhere. Adjacent pairs obey majority:)
    const auto margins = MajorityMargins(inputs);
    for (std::size_t r = 0; r + 1 < 7; ++r) {
      const std::size_t a =
          static_cast<std::size_t>(polished.At(static_cast<ElementId>(r)));
      const std::size_t b = static_cast<std::size_t>(
          polished.At(static_cast<ElementId>(r + 1)));
      EXPECT_GE(margins[a][b], 0)
          << "adjacent pair violates strict majority after polishing";
    }
  }
}

TEST(CondorcetTest, MedianRanksCondorcetWinnerHighOnConcentratedProfiles) {
  // On strongly concentrated Mallows profiles the Condorcet winner exists
  // and the median aggregate puts it first.
  Rng rng(4);
  int found = 0;
  for (int trial = 0; trial < 20 && found < 5; ++trial) {
    const Permutation center = Permutation::Random(9, rng);
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 9; ++i) {
      inputs.push_back(
          BucketOrder::FromPermutation(MallowsSample(center, 0.2, rng)));
    }
    auto winner = CondorcetWinner(inputs);
    if (!winner.has_value()) continue;
    ++found;
    auto median = MedianAggregateFull(inputs, MedianPolicy::kLower);
    ASSERT_TRUE(median.ok());
    EXPECT_EQ(median->At(0), *winner);
  }
  EXPECT_GT(found, 0);
}

}  // namespace
}  // namespace rankties
