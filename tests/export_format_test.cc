// Tests for the export formats (src/obs/export.h): JSON and OpenMetrics
// escaping round-trips for hostile metric names (quotes, backslashes,
// control bytes, UTF-8), cumulative-histogram validity, the Perfetto and
// flight documents, and valid-but-empty output in every mode.

#include <gtest/gtest.h>

#include <string>

#include "obs/obs.h"

namespace rankties {
namespace {

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

// Balanced braces/brackets outside strings — the realistic failure mode of
// a hand-rolled emitter (same check as obs_test.cc).
bool BalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

#ifndef RANKTIES_OBS_DISABLED

class ExportFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetAll();
    obs::SloRegistry::Global().ResetAll();
    obs::TraceRecorder::Global().Clear();
    obs::FlightRecorder::Global().Clear();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::FlightRecorder::Global().SetEnabled(false);
    obs::FlightRecorder::Global().Clear();
    obs::SloRegistry::Global().ResetAll();
    obs::TraceRecorder::Global().Stop();
  }
};

TEST_F(ExportFormatTest, JsonEscapesHostileMetricNames) {
  // Registry names are arbitrary strings; the JSON emitters must escape
  // them rather than trust the lowercase.dotted convention.
  obs::GetCounter("test.export.quote\"backslash\\tab\tnewline\n")->Add(3);
  obs::GetCounter(std::string("test.export.ctrl\x01") + "byte")->Add(4);
  obs::GetCounter("test.export.utf8.\xc3\xa9\xe2\x82\xac")->Add(5);
  const std::string metrics = obs::MetricsJsonObject();
  EXPECT_TRUE(BalancedJson(metrics)) << metrics;
  EXPECT_TRUE(
      Contains(metrics, "test.export.quote\\\"backslash\\\\tab\\tnewline\\n"));
  EXPECT_TRUE(Contains(metrics, "test.export.ctrl\\u0001byte"));
  // Multi-byte UTF-8 passes through verbatim.
  EXPECT_TRUE(Contains(metrics, "test.export.utf8.\xc3\xa9\xe2\x82\xac"));

  const std::string trace = obs::TraceJsonDocument();
  EXPECT_TRUE(BalancedJson(trace)) << trace;
  EXPECT_TRUE(
      Contains(trace, "test.export.quote\\\"backslash\\\\tab\\tnewline\\n"));
}

TEST_F(ExportFormatTest, OpenMetricsEscapesLabelValues) {
  obs::GetCounter("test.export.om\"quote\\slash\nline")->Add(7);
  obs::GetCounter("test.export.om.utf8.\xc3\xa9")->Add(8);
  const std::string text = obs::OpenMetricsText();
  // OpenMetrics label escaping: \\ for backslash, \" for quote, \n for
  // newline — and nothing else.
  EXPECT_TRUE(Contains(
      text,
      "rankties_counter_total{name=\"test.export.om\\\"quote\\\\slash\\n"
      "line\"} 7"));
  EXPECT_TRUE(Contains(
      text, "rankties_counter_total{name=\"test.export.om.utf8.\xc3\xa9\"} 8"));
  // No raw newline may survive inside a label value: every exposition line
  // must start with a family name or a comment.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    if (!line.empty()) {
      EXPECT_TRUE(line[0] == '#' || Contains(line, "rankties_")) << line;
    }
    start = end + 1;
  }
  EXPECT_TRUE(text.size() >= 6 && text.compare(text.size() - 6, 6,
                                               "# EOF\n") == 0);
}

TEST_F(ExportFormatTest, OpenMetricsHistogramIsCumulative) {
  obs::Histogram* histogram = obs::GetHistogram("test.export.histogram");
  histogram->Record(1);   // bucket edge 1
  histogram->Record(5);   // bucket edge 7
  histogram->Record(6);   // bucket edge 7
  histogram->Record(100);  // bucket edge 127
  const std::string text = obs::OpenMetricsText();
  const std::string id = "{name=\"test.export.histogram\"";
  EXPECT_TRUE(
      Contains(text, "rankties_histogram_bucket" + id + ",le=\"1\"} 1"));
  EXPECT_TRUE(
      Contains(text, "rankties_histogram_bucket" + id + ",le=\"7\"} 3"));
  EXPECT_TRUE(
      Contains(text, "rankties_histogram_bucket" + id + ",le=\"127\"} 4"));
  EXPECT_TRUE(
      Contains(text, "rankties_histogram_bucket" + id + ",le=\"+Inf\"} 4"));
  EXPECT_TRUE(Contains(text, "rankties_histogram_sum" + id + "} 112"));
  EXPECT_TRUE(Contains(text, "rankties_histogram_count" + id + "} 4"));
}

TEST_F(ExportFormatTest, OpenMetricsCarriesQueryUnitsAndSloChecks) {
  obs::Counter* counter = obs::GetCounter("test.export.unit_cost");
  {
    obs::QueryUnitScope unit("test.export.unit");
    counter->Add(21);
  }
  obs::SloThreshold threshold;
  threshold.unit = "test.export.unit";
  threshold.counter = "test.export.unit_cost";
  threshold.max_cost_per_query = 5;  // violated: 21 attributed
  obs::SloRegistry::Global().Declare(threshold);
  const std::string text = obs::OpenMetricsText();
  EXPECT_TRUE(Contains(
      text, "rankties_query_unit_queries_total{unit=\"test.export.unit\"} 1"));
  EXPECT_TRUE(Contains(
      text,
      "rankties_query_unit_cost_total{unit=\"test.export.unit\","
      "counter=\"test.export.unit_cost\"} 21"));
  EXPECT_TRUE(Contains(
      text,
      "rankties_slo_ok{unit=\"test.export.unit\","
      "check=\"max_cost:test.export.unit_cost\"} 0"));
  EXPECT_TRUE(Contains(
      text,
      "rankties_slo_limit{unit=\"test.export.unit\","
      "check=\"max_cost:test.export.unit_cost\"} 5"));
}

TEST_F(ExportFormatTest, PerfettoDocumentCarriesSpansAsCompleteEvents) {
  obs::TraceRecorder::Global().Start();
  {
    obs::TraceSpan span("test.export.perfetto \"span\"");
    span.SetItems(9);
  }
  obs::TraceRecorder::Global().Stop();
  const std::string doc = obs::PerfettoJsonDocument();
  EXPECT_TRUE(BalancedJson(doc)) << doc;
  EXPECT_TRUE(Contains(doc, "\"displayTimeUnit\": \"ns\""));
  EXPECT_TRUE(Contains(doc, "\"ph\": \"M\""));
  EXPECT_TRUE(Contains(doc, "\"process_name\""));
  EXPECT_TRUE(Contains(doc, "\"ph\": \"X\""));
  EXPECT_TRUE(Contains(doc, "test.export.perfetto \\\"span\\\""));
  EXPECT_TRUE(Contains(doc, "\"items\": 9"));
}

TEST_F(ExportFormatTest, FlightDocumentRoundTripsEvents) {
  obs::FlightRecorder::Global().SetEnabled(true);
  RANKTIES_FLIGHT(obs::FlightEventId::kTaRun, 4, 17, 6);
  const std::string doc = obs::FlightJsonDocument();
  EXPECT_TRUE(BalancedJson(doc)) << doc;
  EXPECT_TRUE(Contains(doc, "\"schema\": \"rankties-flight-v1\""));
  EXPECT_TRUE(Contains(doc, "\"event\": \"access.ta.run\""));
  EXPECT_TRUE(Contains(doc, "\"args\": [4, 17, 6]"));
  EXPECT_TRUE(Contains(doc, "\"dropped\": 0"));
}

TEST_F(ExportFormatTest, EmptyDocumentsStayValid) {
  const std::string om = obs::OpenMetricsText();
  EXPECT_TRUE(Contains(om, "# TYPE rankties_counter counter"));
  EXPECT_TRUE(om.size() >= 6 &&
              om.compare(om.size() - 6, 6, "# EOF\n") == 0);
  EXPECT_TRUE(BalancedJson(obs::PerfettoJsonDocument()));
  EXPECT_TRUE(BalancedJson(obs::FlightJsonDocument()));
  EXPECT_TRUE(BalancedJson(obs::MetricsJsonObject()));
}

#else  // RANKTIES_OBS_DISABLED

TEST(ExportFormatDisabledTest, DocumentsStayValidWhenCompiledOut) {
  const std::string om = obs::OpenMetricsText();
  EXPECT_TRUE(om.size() >= 6 &&
              om.compare(om.size() - 6, 6, "# EOF\n") == 0);
  EXPECT_TRUE(BalancedJson(obs::PerfettoJsonDocument()));
  EXPECT_TRUE(BalancedJson(obs::FlightJsonDocument()));
  EXPECT_TRUE(BalancedJson(obs::MetricsJsonObject()));
  EXPECT_TRUE(Contains(obs::FlightJsonDocument(), "rankties-flight-v1"));
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace
}  // namespace rankties
