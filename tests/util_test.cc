#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "util/combinatorics.h"
#include "util/fenwick.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"

namespace rankties {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, UndefinedCode) {
  Status s = Status::Undefined("gamma");
  EXPECT_EQ(s.code(), StatusCode::kUndefined);
  EXPECT_EQ(std::string(StatusCodeName(s.code())), "UNDEFINED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(FenwickTest, PrefixSums) {
  Fenwick<std::int64_t> tree(8);
  tree.Add(0, 3);
  tree.Add(3, 5);
  tree.Add(7, 2);
  EXPECT_EQ(tree.PrefixSum(0), 3);
  EXPECT_EQ(tree.PrefixSum(2), 3);
  EXPECT_EQ(tree.PrefixSum(3), 8);
  EXPECT_EQ(tree.PrefixSum(7), 10);
  EXPECT_EQ(tree.Total(), 10);
  EXPECT_EQ(tree.RangeSum(1, 3), 5);
  EXPECT_EQ(tree.RangeSum(4, 6), 0);
  EXPECT_EQ(tree.RangeSum(5, 4), 0);
}

TEST(FenwickTest, MatchesNaiveOnRandomOps) {
  Rng rng(1);
  Fenwick<std::int64_t> tree(50);
  std::vector<std::int64_t> naive(50, 0);
  for (int op = 0; op < 500; ++op) {
    const std::size_t i =
        static_cast<std::size_t>(rng.UniformInt(0, 49));
    const std::int64_t delta = rng.UniformInt(-5, 5);
    tree.Add(i, delta);
    naive[i] += delta;
    const std::size_t q = static_cast<std::size_t>(rng.UniformInt(0, 49));
    std::int64_t expected = 0;
    for (std::size_t j = 0; j <= q; ++j) expected += naive[j];
    ASSERT_EQ(tree.PrefixSum(q), expected);
  }
}

TEST(FenwickTest, ClearResets) {
  Fenwick<std::int64_t> tree(4);
  tree.Add(2, 9);
  tree.Clear();
  EXPECT_EQ(tree.Total(), 0);
}

TEST(StatsTest, SummaryOfKnownSample) {
  const Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
}

TEST(StatsTest, EmptySampleIsZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(StatsTest, PercentileNearestRank) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 0.0), 1);
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 1.0), 5);
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 0.5), 3);
}

TEST(StatsTest, OnlineStats) {
  OnlineStats s;
  s.Add(2);
  s.Add(6);
  s.Add(4);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4);
  EXPECT_DOUBLE_EQ(s.min(), 2);
  EXPECT_DOUBLE_EQ(s.max(), 6);
}

TEST(CombinatoricsTest, CompositionsEnumerateExactlyOnce) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 7u}) {
    std::set<std::vector<std::size_t>> seen;
    std::uint64_t count = 0;
    ForEachComposition(n, [&](const std::vector<std::size_t>& parts) {
      std::size_t total = 0;
      for (std::size_t p : parts) {
        EXPECT_GT(p, 0u);
        total += p;
      }
      EXPECT_EQ(total, n);
      EXPECT_TRUE(seen.insert(parts).second) << "duplicate composition";
      ++count;
      return true;
    });
    EXPECT_EQ(count, NumCompositions(n));
    EXPECT_EQ(count, 1ULL << (n - 1));
  }
}

TEST(CombinatoricsTest, EarlyStopAndEdgeCases) {
  int visits = 0;
  ForEachComposition(6, [&](const std::vector<std::size_t>&) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
  ForEachComposition(0, [&](const std::vector<std::size_t>&) {
    ADD_FAILURE() << "n=0 should visit nothing";
    return true;
  });
  // Bits 0 and 2 set: boundaries after positions 1 and 3 -> parts 1,2,1.
  EXPECT_EQ(CompositionFromMask(4, 0b101),
            (std::vector<std::size_t>{1, 2, 1}));
}

TEST(CombinatoricsTest, FactorialAndBinomial) {
  EXPECT_EQ(Factorial(0), 1);
  EXPECT_EQ(Factorial(5), 120);
  EXPECT_EQ(Factorial(20), 2432902008176640000LL);
  EXPECT_EQ(Factorial(21), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(Binomial(5, 2), 10);
  EXPECT_EQ(Binomial(10, 0), 1);
  EXPECT_EQ(Binomial(4, 7), 0);
}

TEST(CombinatoricsTest, FubiniNumbers) {
  // OEIS A000670: 1, 1, 3, 13, 75, 541, 4683, 47293.
  const std::int64_t expected[] = {1, 1, 3, 13, 75, 541, 4683, 47293};
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(FubiniNumber(n), expected[n]) << n;
  }
  EXPECT_EQ(FubiniNumber(40), std::numeric_limits<std::int64_t>::max());
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace rankties
