#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <set>
#include <stdexcept>

#include "util/checked_math.h"
#include "util/combinatorics.h"
#include "util/fenwick.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace rankties {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, UndefinedCode) {
  Status s = Status::Undefined("gamma");
  EXPECT_EQ(s.code(), StatusCode::kUndefined);
  EXPECT_EQ(std::string(StatusCodeName(s.code())), "UNDEFINED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(FenwickTest, PrefixSums) {
  Fenwick<std::int64_t> tree(8);
  tree.Add(0, 3);
  tree.Add(3, 5);
  tree.Add(7, 2);
  EXPECT_EQ(tree.PrefixSum(0), 3);
  EXPECT_EQ(tree.PrefixSum(2), 3);
  EXPECT_EQ(tree.PrefixSum(3), 8);
  EXPECT_EQ(tree.PrefixSum(7), 10);
  EXPECT_EQ(tree.Total(), 10);
  EXPECT_EQ(tree.RangeSum(1, 3), 5);
  EXPECT_EQ(tree.RangeSum(4, 6), 0);
  EXPECT_EQ(tree.RangeSum(5, 4), 0);
}

TEST(FenwickTest, MatchesNaiveOnRandomOps) {
  Rng rng(1);
  Fenwick<std::int64_t> tree(50);
  std::vector<std::int64_t> naive(50, 0);
  for (int op = 0; op < 500; ++op) {
    const std::size_t i =
        static_cast<std::size_t>(rng.UniformInt(0, 49));
    const std::int64_t delta = rng.UniformInt(-5, 5);
    tree.Add(i, delta);
    naive[i] += delta;
    const std::size_t q = static_cast<std::size_t>(rng.UniformInt(0, 49));
    std::int64_t expected = 0;
    for (std::size_t j = 0; j <= q; ++j) expected += naive[j];
    ASSERT_EQ(tree.PrefixSum(q), expected);
  }
}

TEST(FenwickTest, ClearResets) {
  Fenwick<std::int64_t> tree(4);
  tree.Add(2, 9);
  tree.Clear();
  EXPECT_EQ(tree.Total(), 0);
}

TEST(StatsTest, SummaryOfKnownSample) {
  const Summary s = Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
}

TEST(StatsTest, EmptySampleIsZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0);
}

TEST(StatsTest, PercentileNearestRank) {
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 0.0), 1);
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 1.0), 5);
  EXPECT_DOUBLE_EQ(Percentile({5, 1, 3, 2, 4}, 0.5), 3);
}

TEST(StatsTest, OnlineStats) {
  OnlineStats s;
  s.Add(2);
  s.Add(6);
  s.Add(4);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4);
  EXPECT_DOUBLE_EQ(s.min(), 2);
  EXPECT_DOUBLE_EQ(s.max(), 6);
}

TEST(CombinatoricsTest, CompositionsEnumerateExactlyOnce) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 7u}) {
    std::set<std::vector<std::size_t>> seen;
    std::uint64_t count = 0;
    ForEachComposition(n, [&](const std::vector<std::size_t>& parts) {
      std::size_t total = 0;
      for (std::size_t p : parts) {
        EXPECT_GT(p, 0u);
        total += p;
      }
      EXPECT_EQ(total, n);
      EXPECT_TRUE(seen.insert(parts).second) << "duplicate composition";
      ++count;
      return true;
    });
    EXPECT_EQ(count, NumCompositions(n));
    EXPECT_EQ(count, 1ULL << (n - 1));
  }
}

TEST(CombinatoricsTest, EarlyStopAndEdgeCases) {
  int visits = 0;
  ForEachComposition(6, [&](const std::vector<std::size_t>&) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
  ForEachComposition(0, [&](const std::vector<std::size_t>&) {
    ADD_FAILURE() << "n=0 should visit nothing";
    return true;
  });
  // Bits 0 and 2 set: boundaries after positions 1 and 3 -> parts 1,2,1.
  EXPECT_EQ(CompositionFromMask(4, 0b101),
            (std::vector<std::size_t>{1, 2, 1}));
}

TEST(CombinatoricsTest, FactorialAndBinomial) {
  EXPECT_EQ(Factorial(0), 1);
  EXPECT_EQ(Factorial(5), 120);
  EXPECT_EQ(Factorial(20), 2432902008176640000LL);
  EXPECT_EQ(Factorial(21), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(Binomial(5, 2), 10);
  EXPECT_EQ(Binomial(10, 0), 1);
  EXPECT_EQ(Binomial(4, 7), 0);
}

TEST(CombinatoricsTest, FubiniNumbers) {
  // OEIS A000670: 1, 1, 3, 13, 75, 541, 4683, 47293.
  const std::int64_t expected[] = {1, 1, 3, 13, 75, 541, 4683, 47293};
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(FubiniNumber(n), expected[n]) << n;
  }
  EXPECT_EQ(FubiniNumber(40), std::numeric_limits<std::int64_t>::max());
}

TEST(RngTest, DeterministicStreams) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(0, visits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndSingleChunkRangesRunInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range no larger than the grain is one chunk: executed on the caller.
  pool.ParallelFor(0, 3, 8, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleLanePoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::int64_t sum = 0;  // serial inline execution: plain int is safe
  pool.ParallelFor(0, 100, 3, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum += static_cast<std::int64_t>(i);
  });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&](std::size_t, std::size_t) {
    // Nested loops degrade to serial on the worker — must not deadlock.
    pool.ParallelFor(0, 10, 1, [&](std::size_t lo, std::size_t hi) {
      inner_total.fetch_add(static_cast<int>(hi - lo),
                            std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 80);
}

TEST(ThreadPoolTest, ExceptionIsRethrownOnCaller) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(0, 64, 1,
                                [](std::size_t lo, std::size_t) {
                                  if (lo == 13) {
                                    throw std::runtime_error("chunk 13");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParseThreadsSpec) {
  EXPECT_EQ(ThreadPool::ParseThreadsSpec(nullptr), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec(""), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec("8"), 8u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec("1"), 1u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec("0"), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec("-2"), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec("4x"), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec("banana"), 0u);
  EXPECT_EQ(ThreadPool::ParseThreadsSpec("99999"), 1024u);
}

TEST(ThreadPoolTest, GlobalPoolResizes) {
  ThreadPool::SetGlobalThreads(3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 3u);
  ThreadPool::SetGlobalThreads(0);  // back to the default
  EXPECT_GE(ThreadPool::GlobalThreads(), 1u);
}

TEST(CheckedMathTest, InRangeValuesPassThrough) {
  EXPECT_EQ(CheckedAdd(2, 3), 5);
  EXPECT_EQ(CheckedAdd(std::numeric_limits<std::int64_t>::max(), 0),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(CheckedAdd(std::numeric_limits<std::int64_t>::min(), 0),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(CheckedMul(1LL << 31, 1LL << 31), 1LL << 62);
  EXPECT_EQ(CheckedMul(-(1LL << 31), 1LL << 31), -(1LL << 62));
  EXPECT_EQ(CheckedInt64(42u), 42);
}

TEST(CheckedMathDeathTest, AddAndMulAbortOnOverflow) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(CheckedAdd(std::numeric_limits<std::int64_t>::max(), 1),
               "integer overflow");
  EXPECT_DEATH(CheckedMul(1LL << 32, 1LL << 31), "integer overflow");
  EXPECT_DEATH(
      CheckedInt64(std::numeric_limits<std::size_t>::max()),
      "integer overflow");
}

}  // namespace
}  // namespace rankties
