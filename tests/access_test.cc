#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "access/access_model.h"
#include "access/bidirectional.h"
#include "access/lower_bound.h"
#include "access/medrank_engine.h"
#include "core/median_rank.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "rank/conversions.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(BucketOrderSourceTest, YieldsElementsInRankOrder) {
  auto order = BucketOrder::FromBuckets(5, {{3}, {0, 4}, {1, 2}});
  ASSERT_TRUE(order.ok());
  BucketOrderSource source(*order);
  std::vector<ElementId> seen;
  std::vector<std::int64_t> positions;
  while (auto access = source.Next()) {
    seen.push_back(access->element);
    positions.push_back(access->twice_position);
  }
  EXPECT_EQ(seen, (std::vector<ElementId>{3, 0, 4, 1, 2}));
  EXPECT_EQ(positions, (std::vector<std::int64_t>{2, 5, 5, 9, 9}));
  EXPECT_EQ(source.accesses(), 5);
  EXPECT_FALSE(source.Next().has_value());
  source.Reset();
  EXPECT_EQ(source.accesses(), 0);
  EXPECT_EQ(source.Next()->element, 3);
}

TEST(MedrankTest, Top1IsAMajorityElement) {
  // Element 7 is ranked first by 2 of 3 voters.
  Rng rng(1);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 3; ++i) {
    Permutation p = Permutation::Random(10, rng);
    inputs.push_back(BucketOrder::FromPermutation(p));
  }
  auto result = MedrankTopK(inputs, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->winners.size(), 1u);
  EXPECT_GT(result->total_accesses, 0);
}

TEST(MedrankTest, WinnersHaveSmallMedians) {
  // MEDRANK winners are exactly elements with small median rank: the first
  // winner's (lower) median position is minimal across the domain.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    const std::size_t m = 3 + 2 * static_cast<std::size_t>(trial % 3);
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(12, rng));
    }
    auto result = MedrankTopK(inputs, 1);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(result->winners.size(), 1u);
    // No element's certification depth can beat the winner's: verify the
    // winner minimizes the (majority)-th smallest *access depth*.
    const std::size_t majority = m / 2 + 1;
    auto cert_depth = [&](ElementId e) {
      std::vector<std::int64_t> depths;
      for (const BucketOrder& input : inputs) {
        depths.push_back(AccessDepth(input, e));
      }
      std::sort(depths.begin(), depths.end());
      return depths[majority - 1];
    };
    const std::int64_t winner_depth = cert_depth(result->winners[0]);
    for (ElementId e = 0; e < 12; ++e) {
      EXPECT_GE(cert_depth(e), winner_depth) << "element " << e;
    }
  }
}

TEST(MedrankTest, TopKReturnsKDistinctWinners) {
  Rng rng(3);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(RandomBucketOrder(20, rng));
  auto result = MedrankTopK(inputs, 6);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->winners.size(), 6u);
  std::set<ElementId> unique(result->winners.begin(), result->winners.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(MedrankTest, ReadsFarLessThanEverythingOnCorrelatedInputs) {
  // With strongly correlated voters the winner surfaces immediately;
  // accesses should be a tiny fraction of m*n.
  Rng rng(4);
  const std::size_t n = 500;
  const Permutation center(n);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(
        BucketOrder::FromPermutation(MallowsSample(center, 0.3, rng)));
  }
  auto result = MedrankTopK(inputs, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->total_accesses,
            static_cast<std::int64_t>(n));  // sublinear in m*n = 2500
}

TEST(MedrankTest, ValidatesInputs) {
  EXPECT_FALSE(MedrankTopK(std::vector<BucketOrder>{}, 1).ok());
  std::vector<BucketOrder> mixed = {BucketOrder::SingleBucket(3),
                                    BucketOrder::SingleBucket(5)};
  EXPECT_FALSE(MedrankTopK(mixed, 1).ok());
  std::vector<BucketOrder> ok_inputs = {BucketOrder::SingleBucket(3)};
  EXPECT_FALSE(MedrankTopK(ok_inputs, 7).ok());
  auto empty_k = MedrankTopK(ok_inputs, 0);
  ASSERT_TRUE(empty_k.ok());
  EXPECT_TRUE(empty_k->winners.empty());
  EXPECT_EQ(empty_k->total_accesses, 0);
}

TEST(MedrankTest, AgreesWithOfflineMedianOnFullInputs) {
  // For full-ranking inputs with odd m and a unique best median, the first
  // MEDRANK winner matches the offline median aggregation's top element.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) {
      inputs.push_back(
          BucketOrder::FromPermutation(Permutation::Random(15, rng)));
    }
    auto offline = MedianRankScoresQuad(inputs, MedianPolicy::kLower);
    auto online = MedrankTopK(inputs, 1);
    ASSERT_TRUE(offline.ok() && online.ok());
    const std::int64_t winner_median =
        (*offline)[static_cast<std::size_t>(online->winners[0])];
    const std::int64_t best_median =
        *std::min_element(offline->begin(), offline->end());
    EXPECT_EQ(winner_median, best_median);
  }
}

TEST(LowerBoundTest, AccessDepthMatchesSourceOrder) {
  auto order = BucketOrder::FromBuckets(5, {{3}, {0, 4}, {1, 2}});
  ASSERT_TRUE(order.ok());
  BucketOrderSource source(*order);
  std::int64_t depth = 0;
  while (auto access = source.Next()) {
    ++depth;
    EXPECT_EQ(AccessDepth(*order, access->element), depth);
  }
}

TEST(LowerBoundTest, BoundNeverExceedsActualAccesses) {
  Rng rng(6);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<BucketOrder> inputs;
    const std::size_t m = 3 + static_cast<std::size_t>(trial % 4);
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(30, rng));
    }
    auto result = MedrankTopK(inputs, 3);
    ASSERT_TRUE(result.ok());
    const std::int64_t bound = CertificateLowerBound(inputs, result->winners);
    EXPECT_LE(bound, result->total_accesses);
    EXPECT_GT(bound, 0);
  }
}

TEST(BidirectionalCursorTest, YieldsNondecreasingDistance) {
  const std::vector<double> values = {5.0, 1.0, 9.0, 4.0, 4.0, 7.0};
  BidirectionalCursor cursor(values, 4.5);
  double last = -1;
  std::size_t count = 0;
  while (auto access = cursor.Next()) {
    const double d = std::abs(values[static_cast<std::size_t>(
                         access->element)] -
                     4.5);
    EXPECT_GE(d, last);
    last = d;
    ++count;
  }
  EXPECT_EQ(count, values.size());
}

TEST(BidirectionalCursorTest, TiesShareDoubledPositions) {
  // Query 4.0: elements with value 4 (ids 3,4) tie at distance 0.
  const std::vector<double> values = {5.0, 1.0, 9.0, 4.0, 4.0, 3.0};
  BidirectionalCursor cursor(values, 4.0);
  auto a = cursor.Next();
  auto b = cursor.Next();
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->twice_position, b->twice_position);
  EXPECT_EQ(a->twice_position, 3);  // bucket of size 2 at front: pos 1.5
}

TEST(BidirectionalCursorTest, MatchesRankByDistanceBucketOrder) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> values(20);
    for (double& v : values) {
      v = static_cast<double>(rng.UniformInt(0, 9));  // heavy ties
    }
    const double query = static_cast<double>(rng.UniformInt(0, 9)) + 0.25;
    auto expected = RankByDistance(values, query, 0);
    ASSERT_TRUE(expected.ok());
    BidirectionalCursor cursor(values, query);
    while (auto access = cursor.Next()) {
      EXPECT_EQ(access->twice_position,
                expected->TwicePosition(access->element));
    }
  }
}

TEST(BidirectionalCursorTest, WorksAsMedrankSource) {
  // Three numeric attributes, three queries: medrank over bidirectional
  // cursors finds a sensible consensus element.
  const std::vector<double> price = {10, 20, 30, 40, 50};
  const std::vector<double> dist = {5, 4, 3, 2, 1};
  const std::vector<double> rating = {3, 4, 5, 4, 3};
  std::vector<std::unique_ptr<SortedAccessSource>> sources;
  sources.push_back(std::make_unique<BidirectionalCursor>(price, 30));
  sources.push_back(std::make_unique<BidirectionalCursor>(dist, 3));
  sources.push_back(std::make_unique<BidirectionalCursor>(rating, 5));
  auto result = MedrankTopK(sources, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->winners.size(), 1u);
  EXPECT_EQ(result->winners[0], 2);  // element 2 is best on all three
}

}  // namespace
}  // namespace rankties
