#include "core/weighted.h"

#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/median_rank.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(WeightedMedianTest, UnitWeightsMatchUnweighted) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) inputs.push_back(RandomBucketOrder(9, rng));
    const std::vector<std::int64_t> ones(inputs.size(), 1);
    auto weighted = WeightedMedianScoresQuad(inputs, ones);
    auto plain = MedianRankScoresQuad(inputs, MedianPolicy::kLower);
    ASSERT_TRUE(weighted.ok() && plain.ok());
    EXPECT_EQ(*weighted, *plain);
  }
}

TEST(WeightedMedianTest, WeightsEquivalentToReplication) {
  // Weight w on a voter == listing that voter w times.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 3; ++i) inputs.push_back(RandomBucketOrder(8, rng));
    const std::vector<std::int64_t> weights = {3, 1, 2};
    std::vector<BucketOrder> replicated;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      for (std::int64_t w = 0; w < weights[i]; ++w) {
        replicated.push_back(inputs[i]);
      }
    }
    auto weighted = WeightedMedianScoresQuad(inputs, weights);
    auto plain = MedianRankScoresQuad(replicated, MedianPolicy::kLower);
    ASSERT_TRUE(weighted.ok() && plain.ok());
    EXPECT_EQ(*weighted, *plain);
  }
}

TEST(WeightedMedianTest, DominantVoterDictates) {
  Rng rng(3);
  const BucketOrder boss = RandomBucketOrder(10, rng);
  std::vector<BucketOrder> inputs = {boss, RandomBucketOrder(10, rng),
                                     RandomBucketOrder(10, rng)};
  auto full = WeightedMedianAggregateFull(inputs, {100, 1, 1});
  ASSERT_TRUE(full.ok());
  // The weighted median equals the boss's positions exactly.
  auto scores = WeightedMedianScoresQuad(inputs, {100, 1, 1});
  ASSERT_TRUE(scores.ok());
  for (ElementId e = 0; e < 10; ++e) {
    EXPECT_EQ((*scores)[static_cast<std::size_t>(e)],
              2 * boss.TwicePosition(e));
  }
}

TEST(WeightedMedianTest, WeightedLemma8) {
  // The weighted median minimizes the weighted L1 objective over random
  // competitors.
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    std::vector<std::int64_t> weights;
    for (int i = 0; i < 5; ++i) {
      inputs.push_back(RandomBucketOrder(7, rng));
      weights.push_back(rng.UniformInt(1, 9));
    }
    auto scores = WeightedMedianScoresQuad(inputs, weights);
    ASSERT_TRUE(scores.ok());
    auto objective = [&](const std::vector<std::int64_t>& quad) {
      std::int64_t total = 0;
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        for (std::size_t e = 0; e < quad.size(); ++e) {
          total += weights[i] *
                   std::abs(quad[e] - 2 * inputs[i].TwicePosition(
                                              static_cast<ElementId>(e)));
        }
      }
      return total;
    };
    const std::int64_t ours = objective(*scores);
    for (int g = 0; g < 40; ++g) {
      std::vector<std::int64_t> competitor(7);
      for (auto& c : competitor) c = 4 * rng.UniformInt(1, 7);
      EXPECT_GE(objective(competitor), ours);
    }
  }
}

TEST(WeightedMedianTest, TopKAndObjective) {
  Rng rng(5);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 4; ++i) inputs.push_back(RandomBucketOrder(8, rng));
  const std::vector<std::int64_t> weights = {2, 1, 1, 3};
  auto topk = WeightedMedianAggregateTopK(inputs, weights, 3);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk->IsTopK(3));
  auto cost = WeightedTwiceTotalFprof(*topk, inputs, weights);
  ASSERT_TRUE(cost.ok());
  EXPECT_GT(*cost, 0);
}

TEST(WeightedMedianTest, Validation) {
  std::vector<BucketOrder> inputs = {BucketOrder::SingleBucket(4)};
  EXPECT_FALSE(WeightedMedianScoresQuad(inputs, {}).ok());
  EXPECT_FALSE(WeightedMedianScoresQuad(inputs, {0}).ok());
  EXPECT_FALSE(WeightedMedianScoresQuad(inputs, {-2}).ok());
  EXPECT_FALSE(WeightedMedianScoresQuad({}, {}).ok());
  EXPECT_FALSE(WeightedMedianAggregateTopK(inputs, {1}, 9).ok());
}

}  // namespace
}  // namespace rankties
