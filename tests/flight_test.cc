// Tests for the flight recorder (src/obs/flight.h): bounded
// overwrite-oldest rings, multi-thread drains, runtime-disabled no-op
// behavior, and the contracts-layer post-mortem hook. The file compiles in
// both build modes; live-recording tests are gated on RANKTIES_OBS_DISABLED.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "util/contracts.h"

namespace rankties {
namespace {

#ifndef RANKTIES_OBS_DISABLED

class FlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::FlightRecorder::Global().Clear();
    obs::FlightRecorder::Global().SetEnabled(true);
  }
  void TearDown() override {
    obs::FlightRecorder::Global().SetEnabled(false);
    obs::FlightRecorder::Global().Clear();
  }
};

TEST_F(FlightTest, RecordsAndDrainsInTimestampOrder) {
  RANKTIES_FLIGHT(obs::FlightEventId::kTaRun, 1, 10, 3);
  RANKTIES_FLIGHT(obs::FlightEventId::kNraRun, 2, 20, 0);
  RANKTIES_FLIGHT(obs::FlightEventId::kMedrankRun, 3, 30, 4);
  const std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::Global().Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].event,
            static_cast<std::uint32_t>(obs::FlightEventId::kTaRun));
  EXPECT_EQ(events[1].event,
            static_cast<std::uint32_t>(obs::FlightEventId::kNraRun));
  EXPECT_EQ(events[2].event,
            static_cast<std::uint32_t>(obs::FlightEventId::kMedrankRun));
  EXPECT_EQ(events[0].args[0], 1);
  EXPECT_EQ(events[0].args[1], 10);
  EXPECT_EQ(events[0].args[2], 3);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
  EXPECT_LE(events[1].ts_ns, events[2].ts_ns);
  EXPECT_EQ(obs::FlightRecorder::Global().overwritten(), 0);
  EXPECT_EQ(obs::FlightRecorder::Global().dropped(), 0);
}

TEST_F(FlightTest, RingOverwritesOldestAndStaysBounded) {
  constexpr std::int64_t kExtra = 100;
  const std::int64_t total =
      static_cast<std::int64_t>(obs::FlightRecorder::kEventsPerThread) +
      kExtra;
  for (std::int64_t i = 0; i < total; ++i) {
    RANKTIES_FLIGHT(obs::FlightEventId::kParallelFor, i, 0, 0);
  }
  const std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::Global().Drain();
  ASSERT_EQ(events.size(), obs::FlightRecorder::kEventsPerThread);
  // The oldest kExtra events were overwritten: the survivors are exactly
  // the suffix [kExtra, total).
  EXPECT_EQ(events.front().args[0], kExtra);
  EXPECT_EQ(events.back().args[0], total - 1);
  EXPECT_EQ(obs::FlightRecorder::Global().overwritten(), kExtra);
}

TEST_F(FlightTest, DrainMergesEventsFromMultipleThreads) {
  constexpr int kThreads = 3;
  constexpr std::int64_t kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (std::int64_t i = 0; i < kPerThread; ++i) {
        RANKTIES_FLIGHT(obs::FlightEventId::kBatchBestOf, t, i, 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<obs::FlightEvent> events =
      obs::FlightRecorder::Global().Drain();
  ASSERT_EQ(events.size(), kThreads * kPerThread);
  // Per-spawned-thread: full count, distinct ring index, sorted output.
  std::vector<std::int64_t> per_tag(kThreads, 0);
  for (std::size_t i = 0; i < events.size(); ++i) {
    ASSERT_GE(events[i].args[0], 0);
    ASSERT_LT(events[i].args[0], kThreads);
    ++per_tag[static_cast<std::size_t>(events[i].args[0])];
    if (i > 0) {
      EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);
    }
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_tag[t], kPerThread);
}

TEST_F(FlightTest, DisabledRecorderDropsEventsSilently) {
  obs::FlightRecorder::Global().SetEnabled(false);
  RANKTIES_FLIGHT(obs::FlightEventId::kTaRun, 7, 7, 7);
  EXPECT_TRUE(obs::FlightRecorder::Global().Drain().empty());
  EXPECT_EQ(obs::FlightRecorder::Global().dropped(), 0);
}

TEST_F(FlightTest, EventNamesFollowMetricConvention) {
  for (std::uint32_t id = 1;
       id < static_cast<std::uint32_t>(obs::FlightEventId::kCount); ++id) {
    const char* name =
        obs::FlightEventName(static_cast<obs::FlightEventId>(id));
    EXPECT_STRNE(name, "unknown") << "id " << id;
  }
  // Torn events (garbage ids) must resolve to a printable fallback.
  EXPECT_STREQ(obs::FlightEventName(static_cast<obs::FlightEventId>(9999)),
               "unknown");
}

#if RANKTIES_DCHECK_ENABLED && defined(GTEST_HAS_DEATH_TEST)

using FlightDeathTest = FlightTest;

TEST_F(FlightDeathTest, ContractFailureDumpsPostMortem) {
  // Enabling the recorder installed the contracts failure hook; a violated
  // DCHECK must print the recorded events before aborting.
  RANKTIES_FLIGHT(obs::FlightEventId::kMedrankRun, 5, 123, 2);
  EXPECT_DEATH(RANKTIES_DCHECK(1 == 2),
               "flight recorder post-mortem.*access\\.medrank\\.run");
}

#endif  // RANKTIES_DCHECK_ENABLED && GTEST_HAS_DEATH_TEST

#else  // RANKTIES_OBS_DISABLED

TEST(FlightDisabledTest, ApiIsInertButValid) {
  obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
  recorder.SetEnabled(true);  // must be a no-op
  EXPECT_FALSE(recorder.enabled());
  RANKTIES_FLIGHT(obs::FlightEventId::kTaRun, 1, 2, 3);
  EXPECT_TRUE(recorder.Drain().empty());
  EXPECT_EQ(recorder.dropped(), 0);
  EXPECT_EQ(recorder.overwritten(), 0);
  recorder.DumpToStderr();
  recorder.Clear();
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace
}  // namespace rankties
