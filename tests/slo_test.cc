// Tests for per-query cost attribution and SLO checking (src/obs/slo.h).
// The headline acceptance test interleaves two MEDRANK streaming queries on
// one thread and asserts that each query unit reports its own Section-6
// sorted-access cost exactly, with the two attributions summing bit-exactly
// to the aggregate registry counter.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "access/medrank_stream.h"
#include "gen/random_orders.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace rankties {
namespace {

#ifndef RANKTIES_OBS_DISABLED

class SloTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetAll();
    obs::SloRegistry::Global().ResetAll();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::SloRegistry::Global().ResetAll();
  }
};

TEST_F(SloTest, InterleavedMedrankQueriesAttributeCostsSeparately) {
  Rng rng(11);
  std::vector<BucketOrder> inputs_a;
  for (int i = 0; i < 5; ++i) inputs_a.push_back(RandomBucketOrder(18, rng));
  std::vector<BucketOrder> inputs_b;
  for (int i = 0; i < 3; ++i) inputs_b.push_back(RandomBucketOrder(24, rng));
  MedrankStream stream_a(MakeSources(inputs_a));
  MedrankStream stream_b(MakeSources(inputs_b));

  // Interleave the two queries winner-by-winner on this thread, wrapping
  // every NextWinner call in its own unit's scope.
  bool a_done = false;
  bool b_done = false;
  while (!a_done || !b_done) {
    if (!a_done) {
      obs::QueryUnitScope unit("test.slo.medrank_a");
      a_done = !stream_a.NextWinner().has_value();
    }
    if (!b_done) {
      obs::QueryUnitScope unit("test.slo.medrank_b");
      b_done = !stream_b.NextWinner().has_value();
    }
  }

  const char* const kCost = "access.medrank_stream.sorted_accesses";
  const obs::QueryUnitSnapshot a =
      obs::SloRegistry::Global().UnitSnapshot("test.slo.medrank_a");
  const obs::QueryUnitSnapshot b =
      obs::SloRegistry::Global().UnitSnapshot("test.slo.medrank_b");
  // Each unit's attributed cost is exactly its stream's own access count...
  EXPECT_GT(stream_a.total_accesses(), 0);
  EXPECT_GT(stream_b.total_accesses(), 0);
  EXPECT_EQ(a.CostTotal(kCost), stream_a.total_accesses());
  EXPECT_EQ(b.CostTotal(kCost), stream_b.total_accesses());
  // ...and the two sum bit-exactly to the aggregate registry counter.
  EXPECT_EQ(a.CostTotal(kCost) + b.CostTotal(kCost),
            obs::GetCounter(kCost)->Value());
  // One query per NextWinner call, including the exhausting call.
  EXPECT_EQ(a.queries,
            static_cast<std::int64_t>(stream_a.winners().size()) + 1);
  EXPECT_EQ(b.queries,
            static_cast<std::int64_t>(stream_b.winners().size()) + 1);
  EXPECT_GE(a.latency_sum_ns, 0);
  EXPECT_LE(a.CostMaxPerQuery(kCost), a.CostTotal(kCost));
}

TEST_F(SloTest, AttributedIsReadableWhileScopeIsLive) {
  obs::Counter* counter = obs::GetCounter("test.slo.live");
  obs::QueryUnitScope unit("test.slo.live_unit");
  counter->Add(13);
  EXPECT_EQ(unit.Attributed(counter), 13);
  counter->Add(4);
  EXPECT_EQ(unit.Attributed(counter), 17);
  const std::vector<obs::CounterSnapshot> attributed =
      unit.AttributedSnapshots();
  ASSERT_EQ(attributed.size(), 1u);
  EXPECT_EQ(attributed[0].name, "test.slo.live");
  EXPECT_EQ(attributed[0].value, 17);
}

TEST_F(SloTest, NestedScopesAttributeToInnermostOnly) {
  obs::Counter* counter = obs::GetCounter("test.slo.nested");
  {
    obs::QueryUnitScope outer("test.slo.outer");
    counter->Add(5);
    {
      obs::QueryUnitScope inner("test.slo.inner");
      counter->Add(70);
      EXPECT_EQ(inner.Attributed(counter), 70);
      EXPECT_EQ(outer.Attributed(counter), 5);
    }
    counter->Add(2);  // outer resumes after inner closes
    EXPECT_EQ(outer.Attributed(counter), 7);
  }
  const obs::QueryUnitSnapshot outer =
      obs::SloRegistry::Global().UnitSnapshot("test.slo.outer");
  const obs::QueryUnitSnapshot inner =
      obs::SloRegistry::Global().UnitSnapshot("test.slo.inner");
  EXPECT_EQ(outer.CostTotal("test.slo.nested"), 7);
  EXPECT_EQ(inner.CostTotal("test.slo.nested"), 70);
}

TEST_F(SloTest, RepeatedQueriesAccumulateAndTrackMax) {
  obs::Counter* counter = obs::GetCounter("test.slo.repeat");
  for (const std::int64_t cost : {3, 11, 6}) {
    obs::QueryUnitScope unit("test.slo.repeat_unit");
    counter->Add(cost);
  }
  const obs::QueryUnitSnapshot unit =
      obs::SloRegistry::Global().UnitSnapshot("test.slo.repeat_unit");
  EXPECT_EQ(unit.queries, 3);
  EXPECT_EQ(unit.CostTotal("test.slo.repeat"), 20);
  EXPECT_EQ(unit.CostMaxPerQuery("test.slo.repeat"), 11);
  EXPECT_GE(unit.MeanLatencyNs(), 0.0);
}

TEST_F(SloTest, LatencyP99PicksCeilingBucketEdge) {
  obs::QueryUnitSnapshot snapshot;
  snapshot.queries = 100;
  snapshot.latency_buckets[3] = 99;   // values in (3, 7]
  snapshot.latency_buckets[10] = 1;   // one outlier in (511, 1023]
  // ceil(99% of 100) = 99 queries are covered by bucket 3 already.
  EXPECT_EQ(snapshot.LatencyP99UpperNs(), 7);
  snapshot.latency_buckets[3] = 98;
  snapshot.latency_buckets[10] = 2;
  EXPECT_EQ(snapshot.LatencyP99UpperNs(), 1023);
  obs::QueryUnitSnapshot empty;
  EXPECT_EQ(empty.LatencyP99UpperNs(), 0);
}

TEST_F(SloTest, EvaluateChecksDeclaredThresholds) {
  obs::Counter* counter = obs::GetCounter("test.slo.checked");
  {
    obs::QueryUnitScope unit("test.slo.checked_unit");
    counter->Add(40);
  }
  obs::SloThreshold generous;
  generous.unit = "test.slo.checked_unit";
  generous.max_p99_latency_ns = 1'000'000'000'000;  // effectively unbounded
  generous.counter = "test.slo.checked";
  generous.max_cost_per_query = 1000;
  obs::SloRegistry::Global().Declare(generous);

  obs::SloThreshold tight;
  tight.unit = "test.slo.checked_unit";
  tight.counter = "test.slo.checked";
  tight.max_cost_per_query = 10;  // observed 40 per query -> violated
  obs::SloRegistry::Global().Declare(tight);

  obs::SloThreshold unseen;
  unseen.unit = "test.slo.never_ran";
  unseen.max_p99_latency_ns = 1;
  obs::SloRegistry::Global().Declare(unseen);

  const std::vector<obs::SloCheckResult> results =
      obs::SloRegistry::Global().Evaluate();
  ASSERT_EQ(results.size(), 4u);  // latency + cost, cost, latency
  int ok_count = 0;
  int violated = 0;
  for (const obs::SloCheckResult& result : results) {
    if (result.ok) {
      ++ok_count;
    } else {
      ++violated;
      EXPECT_EQ(result.unit, "test.slo.checked_unit");
      EXPECT_EQ(result.check, "max_cost:test.slo.checked");
      EXPECT_EQ(result.observed, 40.0);
      EXPECT_EQ(result.limit, 10.0);
    }
  }
  EXPECT_EQ(violated, 1);
  EXPECT_EQ(ok_count, 3);  // includes the vacuous pass for the unseen unit
}

TEST_F(SloTest, ResetAllDropsUnitsAndThresholds) {
  {
    obs::QueryUnitScope unit("test.slo.reset_unit");
  }
  obs::SloThreshold threshold;
  threshold.unit = "test.slo.reset_unit";
  threshold.max_p99_latency_ns = 1;
  obs::SloRegistry::Global().Declare(threshold);
  obs::SloRegistry::Global().ResetAll();
  EXPECT_TRUE(obs::SloRegistry::Global().UnitSnapshots().empty());
  EXPECT_TRUE(obs::SloRegistry::Global().Thresholds().empty());
  EXPECT_TRUE(obs::SloRegistry::Global().Evaluate().empty());
}

#else  // RANKTIES_OBS_DISABLED

TEST(SloDisabledTest, ApiIsInertButValid) {
  obs::Counter* counter = obs::GetCounter("test.slo.disabled");
  {
    obs::QueryUnitScope unit("test.slo.disabled_unit");
    counter->Add(5);
    EXPECT_EQ(unit.Attributed(counter), 0);
    EXPECT_TRUE(unit.AttributedSnapshots().empty());
    EXPECT_EQ(unit.unit(), "test.slo.disabled_unit");
  }
  obs::SloThreshold threshold;
  threshold.unit = "test.slo.disabled_unit";
  threshold.max_p99_latency_ns = 1;
  obs::SloRegistry::Global().Declare(threshold);
  EXPECT_TRUE(obs::SloRegistry::Global().Thresholds().empty());
  EXPECT_TRUE(obs::SloRegistry::Global().UnitSnapshots().empty());
  EXPECT_TRUE(obs::SloRegistry::Global().Evaluate().empty());
  const obs::QueryUnitSnapshot snapshot =
      obs::SloRegistry::Global().UnitSnapshot("test.slo.disabled_unit");
  EXPECT_EQ(snapshot.queries, 0);
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace
}  // namespace rankties
