// Systematic metric-axioms sweep: every metric x every workload shape x
// several domain sizes, via testing::Combine. One logical test, hundreds
// of instantiations — the broad safety net under the focused suites.

#include <gtest/gtest.h>

#include "core/metric_registry.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

enum class Shape { kUniform, kFewValued, kTopK, kQuantizedMallows, kFull };

const char* ShapeName(Shape shape) {
  switch (shape) {
    case Shape::kUniform:
      return "Uniform";
    case Shape::kFewValued:
      return "FewValued";
    case Shape::kTopK:
      return "TopK";
    case Shape::kQuantizedMallows:
      return "QuantizedMallows";
    case Shape::kFull:
      return "Full";
  }
  return "?";
}

BucketOrder Sample(Shape shape, std::size_t n, Rng& rng) {
  switch (shape) {
    case Shape::kUniform:
      return RandomBucketOrder(n, rng);
    case Shape::kFewValued:
      return RandomFewValued(n, 3.0, rng);
    case Shape::kTopK:
      return RandomTopK(n, n / 3 + 1, rng);
    case Shape::kQuantizedMallows:
      return QuantizedMallows(Permutation(n), 0.6,
                              std::max<std::size_t>(1, n / 4), rng);
    case Shape::kFull:
      return BucketOrder::FromPermutation(Permutation::Random(n, rng));
  }
  return BucketOrder::SingleBucket(n);
}

using AxiomParam = std::tuple<MetricKind, Shape, std::size_t>;

class MetricAxiomsTest : public ::testing::TestWithParam<AxiomParam> {};

TEST_P(MetricAxiomsTest, MetricAxiomsHold) {
  const auto [kind, shape, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(kind) * 1000003 +
          static_cast<std::uint64_t>(shape) * 1009 + n);
  const MetricFn dist = MetricFunction(kind);
  for (int trial = 0; trial < 12; ++trial) {
    const BucketOrder x = Sample(shape, n, rng);
    const BucketOrder y = Sample(shape, n, rng);
    const BucketOrder z = Sample(shape, n, rng);
    const double dxy = dist(x, y);
    // Nonnegativity + identity.
    ASSERT_GE(dxy, 0.0);
    ASSERT_EQ(dist(x, x), 0.0);
    // Regularity.
    if (!(x == y)) {
      ASSERT_GT(dxy, 0.0);
    }
    // Symmetry (exact: all four metrics are integer/half-integer valued).
    ASSERT_EQ(dxy, dist(y, x));
    // Triangle inequality.
    ASSERT_LE(dist(x, z), dxy + dist(y, z) + 1e-9);
  }
}

std::string AxiomParamName(
    const ::testing::TestParamInfo<AxiomParam>& info) {
  const auto [kind, shape, n] = info.param;
  return std::string(MetricName(kind)) + "_" + ShapeName(shape) + "_n" +
         std::to_string(n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricAxiomsTest,
    ::testing::Combine(::testing::Values(MetricKind::kKprof,
                                         MetricKind::kFprof,
                                         MetricKind::kKHaus,
                                         MetricKind::kFHaus),
                       ::testing::Values(Shape::kUniform, Shape::kFewValued,
                                         Shape::kTopK,
                                         Shape::kQuantizedMallows,
                                         Shape::kFull),
                       ::testing::Values<std::size_t>(2, 5, 9, 17, 33)),
    AxiomParamName);

}  // namespace
}  // namespace rankties
