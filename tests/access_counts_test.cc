// Regression test pinning the access-cost accounting of the TA / NRA /
// MEDRANK engines to hand-computed traces on two fixed instances, and (in
// instrumented builds) checking that the obs counters expose exactly the
// same numbers. These are the paper's Section 6 cost measures; a silent
// change in access order or stopping rule shows up here as a count drift
// even when the returned top-k stays correct.

#include <gtest/gtest.h>

#include <vector>

#include "access/medrank_engine.h"
#include "access/nra_median.h"
#include "access/ta_median.h"
#include "obs/obs.h"
#include "rank/bucket_order.h"

namespace rankties {
namespace {

// Instance 1: three identical full rankings [0 | 1 | 2].
//
// Hand trace (n = 3, m = 3, k = 1, round-robin sorted access):
//  * TA round 1 touches element 0 in all three lists (3 sorted accesses,
//    2 random accesses to score it); the frontier median threshold (quad 4)
//    ties the heap top, so round 2 runs (3 more sorted accesses, 2 random
//    for element 1) and certifies: 6 sorted, 4 random.
//  * NRA certifies after one full round: 3 accesses, one per list.
//  * MEDRANK stops mid-round once element 0 reaches the majority (2 of 3):
//    lists 0 and 1 are read once, list 2 never — 2 accesses, depth 1.
std::vector<BucketOrder> IdenticalChains() {
  auto order = BucketOrder::FromBuckets(3, {{0}, {1}, {2}});
  return {*order, *order, *order};
}

// Instance 2: ties and disagreement (n = 4, m = 3, k = 1).
//   L1 = [{0,1} | {2} | {3}]   (0 and 1 tied at doubled position 3)
//   L2 = [{1} | {0} | {2} | {3}]
//   L3 = [{0} | {1} | {2} | {3}]
// Median doubled positions: e0 -> 3, e1 -> 3, e2 -> 6, e3 -> 8; the top-1
// tie breaks to the smaller id, element 0.
//
// Hand trace:
//  * TA round 1 scores e0 (from L1) and e1 (from L2) — 3 sorted + 4 random
//    accesses; threshold quad 4 < heap-top 6, so round 2 runs (3 sorted,
//    everything already scored) and raises the threshold to 8: 6 sorted,
//    4 random.
//  * NRA round 1 leaves e1's lower bound below e0's upper bound; round 2
//    pins both and certifies: 6 accesses, 2 per list.
//  * MEDRANK depth 1: L1 yields e0, L2 yields e1, L3 yields e0 — majority
//    for e0 on the third access: 3 accesses, depth 1.
std::vector<BucketOrder> TiedDisagreeing() {
  auto l1 = BucketOrder::FromBuckets(4, {{0, 1}, {2}, {3}});
  auto l2 = BucketOrder::FromBuckets(4, {{1}, {0}, {2}, {3}});
  auto l3 = BucketOrder::FromBuckets(4, {{0}, {1}, {2}, {3}});
  return {*l1, *l2, *l3};
}

#ifndef RANKTIES_OBS_DISABLED
// Snapshot of the obs counters the engines maintain, for delta checks.
struct CounterState {
  std::int64_t ta_sorted;
  std::int64_t ta_random;
  std::int64_t nra_sorted;
  std::int64_t medrank_sorted;
  std::int64_t source_accesses;

  static CounterState Read() {
    return {obs::GetCounter("access.ta.sorted_accesses")->Value(),
            obs::GetCounter("access.ta.random_accesses")->Value(),
            obs::GetCounter("access.nra.sorted_accesses")->Value(),
            obs::GetCounter("access.medrank.sorted_accesses")->Value(),
            obs::GetCounter("access.sorted_accesses")->Value()};
  }
};
#endif  // RANKTIES_OBS_DISABLED

TEST(AccessCountsTest, TaOnIdenticalChains) {
  const auto result = TaMedianTopK(IdenticalChains(), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top, std::vector<ElementId>{0});
  EXPECT_EQ(result->scores_quad, std::vector<std::int64_t>{4});
  EXPECT_EQ(result->sorted_accesses, 6);
  EXPECT_EQ(result->random_accesses, 4);
}

TEST(AccessCountsTest, NraOnIdenticalChains) {
  const auto result = NraMedianTopK(IdenticalChains(), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top, std::vector<ElementId>{0});
  EXPECT_EQ(result->total_accesses, 3);
  EXPECT_EQ(result->accesses_per_list, (std::vector<std::int64_t>{1, 1, 1}));
}

TEST(AccessCountsTest, MedrankOnIdenticalChains) {
  const auto result = MedrankTopK(IdenticalChains(), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->winners, std::vector<ElementId>{0});
  EXPECT_EQ(result->total_accesses, 2);
  EXPECT_EQ(result->accesses_per_list, (std::vector<std::int64_t>{1, 1, 0}));
  EXPECT_EQ(result->depth, 1);
}

TEST(AccessCountsTest, TaOnTiedDisagreeing) {
  const auto result = TaMedianTopK(TiedDisagreeing(), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top, std::vector<ElementId>{0});
  EXPECT_EQ(result->scores_quad, std::vector<std::int64_t>{6});
  EXPECT_EQ(result->sorted_accesses, 6);
  EXPECT_EQ(result->random_accesses, 4);
}

TEST(AccessCountsTest, NraOnTiedDisagreeing) {
  const auto result = NraMedianTopK(TiedDisagreeing(), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top, std::vector<ElementId>{0});
  EXPECT_EQ(result->total_accesses, 6);
  EXPECT_EQ(result->accesses_per_list, (std::vector<std::int64_t>{2, 2, 2}));
}

TEST(AccessCountsTest, MedrankOnTiedDisagreeing) {
  const auto result = MedrankTopK(TiedDisagreeing(), 1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->winners, std::vector<ElementId>{0});
  EXPECT_EQ(result->total_accesses, 3);
  EXPECT_EQ(result->accesses_per_list, (std::vector<std::int64_t>{1, 1, 1}));
  EXPECT_EQ(result->depth, 1);
}

#ifndef RANKTIES_OBS_DISABLED
// The obs counters must report the exact same accounting the result
// structs do — one run of each engine, checked as registry deltas.
TEST(AccessCountsTest, ObsCountersMatchResultFields) {
  obs::SetEnabled(true);
  const std::vector<BucketOrder> inputs = TiedDisagreeing();

  const CounterState before_ta = CounterState::Read();
  const auto ta = TaMedianTopK(inputs, 1);
  ASSERT_TRUE(ta.ok());
  const CounterState after_ta = CounterState::Read();
  EXPECT_EQ(after_ta.ta_sorted - before_ta.ta_sorted, ta->sorted_accesses);
  EXPECT_EQ(after_ta.ta_random - before_ta.ta_random, ta->random_accesses);
  // Every TA sorted access goes through a BucketOrderSource.
  EXPECT_EQ(after_ta.source_accesses - before_ta.source_accesses,
            ta->sorted_accesses);

  const CounterState before_nra = CounterState::Read();
  const auto nra = NraMedianTopK(inputs, 1);
  ASSERT_TRUE(nra.ok());
  const CounterState after_nra = CounterState::Read();
  EXPECT_EQ(after_nra.nra_sorted - before_nra.nra_sorted,
            nra->total_accesses);
  EXPECT_EQ(after_nra.source_accesses - before_nra.source_accesses,
            nra->total_accesses);

  const CounterState before_mr = CounterState::Read();
  const auto medrank = MedrankTopK(inputs, 1);
  ASSERT_TRUE(medrank.ok());
  const CounterState after_mr = CounterState::Read();
  EXPECT_EQ(after_mr.medrank_sorted - before_mr.medrank_sorted,
            medrank->total_accesses);
  EXPECT_EQ(after_mr.source_accesses - before_mr.source_accesses,
            medrank->total_accesses);

  // The depth histogram saw this run's depth.
  const obs::HistogramSnapshot depth =
      obs::GetHistogram("access.medrank.depth")->Snapshot();
  EXPECT_GE(depth.count, 1);
  obs::SetEnabled(false);
}
#endif  // RANKTIES_OBS_DISABLED

}  // namespace
}  // namespace rankties
