#include "db/query_parser.h"

#include <gtest/gtest.h>

namespace rankties {
namespace {

Schema RestaurantSchema() {
  return Schema({
      {"cuisine", ColumnType::kCategorical},
      {"distance", ColumnType::kNumeric},
      {"price", ColumnType::kNumeric},
      {"stars", ColumnType::kNumeric},
  });
}

TEST(QueryParserTest, ParsesFullQuery) {
  auto prefs = ParsePreferences(
      RestaurantSchema(),
      "cuisine:thai>italian distance:asc~10 price:asc stars:desc");
  ASSERT_TRUE(prefs.ok()) << prefs.status();
  ASSERT_EQ(prefs->size(), 4u);

  EXPECT_EQ((*prefs)[0].column, "cuisine");
  EXPECT_EQ((*prefs)[0].mode, AttributePreference::Mode::kCategoryOrder);
  EXPECT_EQ((*prefs)[0].category_order,
            (std::vector<std::string>{"thai", "italian"}));

  EXPECT_EQ((*prefs)[1].mode, AttributePreference::Mode::kAscending);
  EXPECT_DOUBLE_EQ((*prefs)[1].granularity, 10.0);

  EXPECT_EQ((*prefs)[2].mode, AttributePreference::Mode::kAscending);
  EXPECT_DOUBLE_EQ((*prefs)[2].granularity, 0.0);

  EXPECT_EQ((*prefs)[3].mode, AttributePreference::Mode::kDescending);
}

TEST(QueryParserTest, ParsesNear) {
  auto prefs = ParsePreferences(RestaurantSchema(), "price:near=25.5~5");
  ASSERT_TRUE(prefs.ok());
  EXPECT_EQ((*prefs)[0].mode, AttributePreference::Mode::kNear);
  EXPECT_DOUBLE_EQ((*prefs)[0].target, 25.5);
  EXPECT_DOUBLE_EQ((*prefs)[0].granularity, 5.0);
}

TEST(QueryParserTest, SingleCategoryLevel) {
  // A bare level on a categorical column is a one-level preference order.
  auto prefs = ParsePreferences(RestaurantSchema(), "cuisine:thai");
  ASSERT_TRUE(prefs.ok());
  EXPECT_EQ((*prefs)[0].mode, AttributePreference::Mode::kCategoryOrder);
  EXPECT_EQ((*prefs)[0].category_order, (std::vector<std::string>{"thai"}));
}

TEST(QueryParserTest, RejectsMalformedTerms) {
  const Schema schema = RestaurantSchema();
  EXPECT_FALSE(ParsePreferences(schema, "").ok());
  EXPECT_FALSE(ParsePreferences(schema, "price").ok());          // no colon
  EXPECT_FALSE(ParsePreferences(schema, ":asc").ok());           // no column
  EXPECT_FALSE(ParsePreferences(schema, "bogus:asc").ok());      // unknown
  EXPECT_FALSE(ParsePreferences(schema, "price:sideways").ok()); // bad spec
  EXPECT_FALSE(ParsePreferences(schema, "price:asc~0").ok());    // gran <= 0
  EXPECT_FALSE(ParsePreferences(schema, "price:asc~x").ok());    // bad number
  EXPECT_FALSE(ParsePreferences(schema, "price:near=").ok());    // no target
  EXPECT_FALSE(ParsePreferences(schema, "price:a>b").ok());      // cat on num
  EXPECT_FALSE(ParsePreferences(schema, "cuisine:a>>b").ok());   // empty lvl
  EXPECT_FALSE(ParsePreferences(schema, "cuisine:near=3").ok()); // num on cat
}

TEST(QueryParserTest, RoundTripsThroughFormat) {
  const std::string query =
      "cuisine:thai>italian distance:asc~10 price:near=25~5 stars:desc";
  auto prefs = ParsePreferences(RestaurantSchema(), query);
  ASSERT_TRUE(prefs.ok());
  const std::string formatted = FormatPreferences(*prefs);
  auto reparsed = ParsePreferences(RestaurantSchema(), formatted);
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), prefs->size());
  for (std::size_t i = 0; i < prefs->size(); ++i) {
    EXPECT_EQ((*reparsed)[i].column, (*prefs)[i].column);
    EXPECT_EQ((*reparsed)[i].mode, (*prefs)[i].mode);
    EXPECT_DOUBLE_EQ((*reparsed)[i].target, (*prefs)[i].target);
    EXPECT_DOUBLE_EQ((*reparsed)[i].granularity, (*prefs)[i].granularity);
    EXPECT_EQ((*reparsed)[i].category_order, (*prefs)[i].category_order);
  }
}

}  // namespace
}  // namespace rankties
