// Appendix A.3: compatibility of this library's metrics, restricted to
// top-k lists, with the distance measures of Fagin–Kumar–Sivakumar [10].

#include <gtest/gtest.h>

#include "core/footrule.h"
#include "core/profile_metrics.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

// Builds two random top-k lists over the same domain such that the domain
// is exactly the "active domain" (every element in the top of at least one
// list) — the compatibility regime of A.3. Uses n = 2k and disjoint tops.
std::pair<BucketOrder, BucketOrder> ActiveDomainTopK(std::size_t k, Rng& rng) {
  const std::size_t n = 2 * k;
  const Permutation p = Permutation::Random(n, rng);
  // First list tops: p's first k; second list tops: p's last k (reversed
  // order), so tops partition the domain.
  std::vector<ElementId> second_order;
  for (std::size_t r = n; r > k; --r) {
    second_order.push_back(p.At(static_cast<ElementId>(r - 1)));
  }
  for (std::size_t r = 0; r < k; ++r) {
    second_order.push_back(p.At(static_cast<ElementId>(r)));
  }
  auto second = Permutation::FromOrder(second_order);
  EXPECT_TRUE(second.ok());
  return {BucketOrder::TopKOf(p, k), BucketOrder::TopKOf(*second, k)};
}

TEST(TopKCompatTest, FprofEqualsFootruleLocationAtCanonicalEll) {
  // A.3: Fprof(sigma, tau) = F^(l)(sigma, tau) for l = (|D| + k + 1) / 2.
  Rng rng(1);
  for (std::size_t k : {1u, 2u, 3u, 5u}) {
    for (int trial = 0; trial < 15; ++trial) {
      const std::size_t n = 2 * k + static_cast<std::size_t>(
                                        rng.UniformInt(0, 4));
      const BucketOrder sigma = RandomTopK(n, k, rng);
      const BucketOrder tau = RandomTopK(n, k, rng);
      const std::int64_t twice_ell =
          static_cast<std::int64_t>(n + k + 1);  // 2 * (n+k+1)/2
      auto floc = TwiceFootruleLocation(sigma, tau, k, twice_ell);
      ASSERT_TRUE(floc.ok());
      EXPECT_EQ(TwiceFprof(sigma, tau), *floc)
          << "k=" << k << " n=" << n << " trial=" << trial;
    }
  }
}

TEST(TopKCompatTest, KprofEqualsKavgOnActiveDomain) {
  Rng rng(2);
  for (std::size_t k : {1u, 2u, 3u}) {
    for (int trial = 0; trial < 6; ++trial) {
      const auto [sigma, tau] = ActiveDomainTopK(k, rng);
      EXPECT_DOUBLE_EQ(Kprof(sigma, tau), KavgBrute(sigma, tau))
          << "k=" << k;
    }
  }
}

TEST(TopKCompatTest, DisjointTopsHitMaximalPenalties) {
  // Fully disjoint top-k lists: every top element of one list is in the
  // other's bottom bucket. k*k cross pairs are strictly ordered in both...
  // verify the metrics behave monotonically: distance grows with k.
  Rng rng(3);
  double last = -1;
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const auto [sigma, tau] = ActiveDomainTopK(k, rng);
    const double d = Kprof(sigma, tau);
    EXPECT_GT(d, last);
    last = d;
  }
}

TEST(TopKCompatTest, KendallPCasesOnTopKLists) {
  // On top-k lists the p-parameterized family stays ordered in p.
  Rng rng(4);
  const BucketOrder sigma = RandomTopK(10, 4, rng);
  const BucketOrder tau = RandomTopK(10, 4, rng);
  double last = -1;
  for (double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double d = KendallP(sigma, tau, p);
    EXPECT_GE(d, last);
    last = d;
  }
}

}  // namespace
}  // namespace rankties
