#include "access/medrank_stream.h"

#include <gtest/gtest.h>

#include <set>

#include "access/medrank_engine.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(MedrankStreamTest, EmitsSameWinnersAsBatchEngine) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<BucketOrder> inputs;
    const std::size_t m = 3 + static_cast<std::size_t>(trial % 4);
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(20, rng));
    }
    auto batch = MedrankTopK(inputs, 5);
    ASSERT_TRUE(batch.ok());
    MedrankStream stream(MakeSources(inputs));
    for (ElementId expected : batch->winners) {
      auto winner = stream.NextWinner();
      ASSERT_TRUE(winner.has_value());
      EXPECT_EQ(*winner, expected);
    }
  }
}

TEST(MedrankStreamTest, AccessesGrowMonotonically) {
  Rng rng(2);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(RandomBucketOrder(50, rng));
  MedrankStream stream(MakeSources(inputs));
  std::int64_t last = 0;
  for (int w = 0; w < 10; ++w) {
    auto winner = stream.NextWinner();
    ASSERT_TRUE(winner.has_value());
    EXPECT_GE(stream.total_accesses(), last);
    last = stream.total_accesses();
  }
  EXPECT_EQ(stream.winners().size(), 10u);
}

TEST(MedrankStreamTest, DrainsTheWholeDomain) {
  Rng rng(3);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 3; ++i) inputs.push_back(RandomBucketOrder(12, rng));
  MedrankStream stream(MakeSources(inputs));
  std::set<ElementId> seen;
  while (auto winner = stream.NextWinner()) {
    EXPECT_TRUE(seen.insert(*winner).second) << "duplicate winner";
  }
  // Every element eventually reaches a majority of sightings.
  EXPECT_EQ(seen.size(), 12u);
  // Exhausted stream stays exhausted.
  EXPECT_FALSE(stream.NextWinner().has_value());
  // Total accesses equal m * n once everything is drained.
  EXPECT_EQ(stream.total_accesses(), 3 * 12);
}

TEST(MedrankStreamTest, LazyConsumptionSavesAccesses) {
  Rng rng(4);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(
        BucketOrder::FromPermutation(Permutation::Random(2000, rng)));
  }
  MedrankStream stream(MakeSources(inputs));
  auto first = stream.NextWinner();
  ASSERT_TRUE(first.has_value());
  // One winner should cost far less than reading everything.
  EXPECT_LT(stream.total_accesses(), 5 * 2000 / 4);
}

TEST(MedrankStreamTest, EmptySourcesYieldNothing) {
  MedrankStream stream({});
  EXPECT_FALSE(stream.NextWinner().has_value());
  EXPECT_EQ(stream.total_accesses(), 0);
}

TEST(MedrankStreamTest, MismatchedDomainsYieldNothing) {
  std::vector<BucketOrder> inputs = {BucketOrder::SingleBucket(3),
                                     BucketOrder::SingleBucket(5)};
  MedrankStream stream(MakeSources(inputs));
  EXPECT_FALSE(stream.NextWinner().has_value());
}

}  // namespace
}  // namespace rankties
