#include "core/normalization.h"

#include <gtest/gtest.h>

#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(NormalizationTest, MaximaAreAttainedByReversal) {
  for (std::size_t n : {2u, 3u, 5u, 8u, 13u}) {
    const BucketOrder id = BucketOrder::FromPermutation(Permutation(n));
    const BucketOrder rev = id.Reverse();
    for (MetricKind kind : AllMetricKinds()) {
      EXPECT_DOUBLE_EQ(ComputeMetric(kind, id, rev), MaxMetricValue(kind, n))
          << MetricName(kind) << " n=" << n;
      EXPECT_DOUBLE_EQ(NormalizedMetric(kind, id, rev), 1.0);
      EXPECT_DOUBLE_EQ(MetricSimilarity(kind, id, rev), -1.0);
    }
  }
}

TEST(NormalizationTest, RandomPairsStayInUnitInterval) {
  Rng rng(1);
  for (std::size_t n : {2u, 6u, 15u, 40u}) {
    for (int trial = 0; trial < 25; ++trial) {
      const BucketOrder a = RandomBucketOrder(n, rng);
      const BucketOrder b = RandomBucketOrder(n, rng);
      for (MetricKind kind : AllMetricKinds()) {
        const double d = NormalizedMetric(kind, a, b);
        EXPECT_GE(d, 0.0) << MetricName(kind);
        EXPECT_LE(d, 1.0) << MetricName(kind);
        const double s = MetricSimilarity(kind, a, b);
        EXPECT_GE(s, -1.0);
        EXPECT_LE(s, 1.0);
      }
    }
  }
}

TEST(NormalizationTest, IdentityHasSimilarityOne) {
  Rng rng(2);
  const BucketOrder a = RandomBucketOrder(10, rng);
  for (MetricKind kind : AllMetricKinds()) {
    EXPECT_DOUBLE_EQ(NormalizedMetric(kind, a, a), 0.0);
    EXPECT_DOUBLE_EQ(MetricSimilarity(kind, a, a), 1.0);
  }
}

TEST(NormalizationTest, TinyDomains) {
  const BucketOrder one = BucketOrder::SingleBucket(1);
  for (MetricKind kind : AllMetricKinds()) {
    EXPECT_DOUBLE_EQ(NormalizedMetric(kind, one, one), 0.0);
  }
}

}  // namespace
}  // namespace rankties
