#include <gtest/gtest.h>

#include <numeric>

#include "core/kendall.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "gen/score_dist.h"
#include "gen/zipf.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(RandomTypeTest, SumsToN) {
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 40));
    const std::vector<std::size_t> type = RandomType(n, rng);
    std::size_t total = 0;
    for (std::size_t t : type) {
      EXPECT_GT(t, 0u);
      total += t;
    }
    EXPECT_EQ(total, n);
  }
}

TEST(RandomBucketOrderTest, ValidAndVaried) {
  Rng rng(2);
  const BucketOrder a = RandomBucketOrder(30, rng);
  const BucketOrder b = RandomBucketOrder(30, rng);
  EXPECT_EQ(a.n(), 30u);
  EXPECT_FALSE(a == b);
}

TEST(RandomBucketOrderWithBucketsTest, ExactBucketCount) {
  Rng rng(3);
  for (std::size_t t : {1u, 2u, 5u, 10u}) {
    const BucketOrder order = RandomBucketOrderWithBuckets(10, t, rng);
    EXPECT_EQ(order.num_buckets(), t);
  }
}

TEST(RandomTopKTest, Shape) {
  Rng rng(4);
  const BucketOrder order = RandomTopK(12, 4, rng);
  EXPECT_TRUE(order.IsTopK(4));
}

TEST(RandomFewValuedTest, ProducesHeavyTies) {
  Rng rng(5);
  double total_buckets = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const BucketOrder order = RandomFewValued(100, 10.0, rng);
    total_buckets += static_cast<double>(order.num_buckets());
  }
  // Mean bucket size ~10 => ~10 buckets on average; allow slack.
  EXPECT_LT(total_buckets / 20, 25.0);
  EXPECT_GT(total_buckets / 20, 4.0);
}

TEST(MallowsTest, PhiControlsConcentration) {
  Rng rng(6);
  const Permutation center(20);
  auto mean_distance = [&](double phi) {
    double total = 0;
    for (int i = 0; i < 40; ++i) {
      total += static_cast<double>(
          KendallTau(MallowsSample(center, phi, rng), center));
    }
    return total / 40;
  };
  const double tight = mean_distance(0.2);
  const double loose = mean_distance(0.9);
  EXPECT_LT(tight, loose);
  // Uniform case phi=1: expected distance = n(n-1)/4 = 95.
  const double uniform = mean_distance(1.0);
  EXPECT_NEAR(uniform, 95.0, 20.0);
}

TEST(MallowsTest, PhiNearZeroReproducesCenter) {
  Rng rng(7);
  const Permutation center = Permutation::Random(15, rng);
  std::int64_t total = 0;
  for (int i = 0; i < 10; ++i) {
    total += KendallTau(MallowsSample(center, 0.01, rng), center);
  }
  // Expected displacement per sample is ~ n * phi = 0.15; a handful of
  // inversions across ten samples is already very unlikely.
  EXPECT_LE(total, 5);
}

TEST(QuantizedMallowsTest, BucketCountAndCorrelation) {
  Rng rng(8);
  const Permutation center(30);
  const BucketOrder order = QuantizedMallows(center, 0.3, 5, rng);
  EXPECT_EQ(order.num_buckets(), 5u);
  EXPECT_EQ(order.n(), 30u);
  // Strong correlation with the center: the center's best element should
  // land in an early bucket.
  EXPECT_LE(order.BucketOf(center.At(0)), 1);
}

TEST(PlackettLuceTest, WeightsDriveExpectedPositions) {
  Rng rng(42);
  // Element 0 has weight 50, the rest weight 1: it should land first in
  // the overwhelming majority of samples.
  std::vector<double> weights(10, 1.0);
  weights[0] = 50.0;
  int firsts = 0;
  for (int s = 0; s < 200; ++s) {
    if (PlackettLuceSample(weights, rng).At(0) == 0) ++firsts;
  }
  EXPECT_GT(firsts, 140);
}

TEST(PlackettLuceTest, UniformWeightsGiveUniformFirstElement) {
  Rng rng(43);
  std::vector<double> weights(5, 1.0);
  std::vector<int> firsts(5, 0);
  for (int s = 0; s < 2000; ++s) {
    ++firsts[static_cast<std::size_t>(PlackettLuceSample(weights, rng).At(0))];
  }
  for (int count : firsts) {
    EXPECT_GT(count, 300);  // expected 400 each
    EXPECT_LT(count, 500);
  }
}

TEST(PlackettLuceTest, ProducesValidPermutations) {
  Rng rng(44);
  const std::vector<double> weights = {3.0, 1.0, 0.5, 8.0};
  for (int s = 0; s < 20; ++s) {
    const Permutation p = PlackettLuceSample(weights, rng);
    EXPECT_EQ(p.n(), 4u);
  }
}

TEST(ZipfTest, HeadIsHeavy) {
  Rng rng(9);
  const ZipfSampler zipf(10, 1.2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 5000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], 800);
  int total = std::accumulate(counts.begin(), counts.end(), 0);
  EXPECT_EQ(total, 5000);
}

TEST(ZipfTest, SingleValue) {
  Rng rng(10);
  const ZipfSampler zipf(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(ParetoTest, SeededDeterminism) {
  const ParetoSampler pareto(1.0, 1.5);
  Rng a(77);
  Rng b(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pareto.Sample(a), pareto.Sample(b));
  }
}

TEST(ParetoTest, SupportAndHeavyTail) {
  Rng rng(78);
  const ParetoSampler pareto(2.0, 1.5);
  int above_double = 0;
  for (int i = 0; i < 4000; ++i) {
    const double x = pareto.Sample(rng);
    EXPECT_GE(x, 2.0);  // Support is [scale, inf).
    if (x > 4.0) ++above_double;
  }
  // P(X > 2*scale) = 2^-shape ~ 0.354 for shape 1.5; the tail is fat.
  EXPECT_GT(above_double, 1000);
  EXPECT_LT(above_double, 1900);
}

TEST(SkewedNormalTest, SeededDeterminism) {
  const SkewedNormalSampler skew(0.0, 1.0, 4.0);
  Rng a(79);
  Rng b(79);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(skew.Sample(a), skew.Sample(b));
  }
}

TEST(SkewedNormalTest, ShapeSkewsTheMass) {
  // With shape 4 most mass sits above the location; with shape -4, below.
  Rng rng(80);
  const SkewedNormalSampler right(0.0, 1.0, 4.0);
  const SkewedNormalSampler left(0.0, 1.0, -4.0);
  int right_above = 0;
  int left_above = 0;
  for (int i = 0; i < 4000; ++i) {
    if (right.Sample(rng) > 0.0) ++right_above;
    if (left.Sample(rng) > 0.0) ++left_above;
  }
  EXPECT_GT(right_above, 3400);  // P(Z > 0) ~ 0.922 at shape 4.
  EXPECT_LT(left_above, 600);
}

TEST(SkewedNormalTest, ZeroShapeIsSymmetric) {
  Rng rng(81);
  const SkewedNormalSampler normal(0.0, 1.0, 0.0);
  int above = 0;
  for (int i = 0; i < 4000; ++i) {
    if (normal.Sample(rng) > 0.0) ++above;
  }
  EXPECT_GT(above, 1800);
  EXPECT_LT(above, 2200);
}

TEST(SkewedScoreOrderTest, ValidDeterministicAndTied) {
  SkewedOrderConfig config;
  config.quantization = 16;
  Rng a(82);
  Rng b(82);
  StatusOr<BucketOrder> first = SkewedScoreOrder(200, config, a);
  StatusOr<BucketOrder> second = SkewedScoreOrder(200, config, b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // Same seed, same order.
  EXPECT_TRUE(first->Validate().ok());
  // Quantization caps the bucket count, so a 200-element order has ties.
  EXPECT_LE(first->num_buckets(), 16u);
  EXPECT_GE(first->num_buckets(), 2u);
}

TEST(SkewedScoreOrderTest, NormalSkewedDistributionWorks) {
  SkewedOrderConfig config;
  config.distribution = ScoreDistribution::kNormalSkewed;
  config.quantization = 24;
  Rng rng(83);
  StatusOr<BucketOrder> order = SkewedScoreOrder(150, config, rng);
  ASSERT_TRUE(order.ok());
  EXPECT_TRUE(order->Validate().ok());
  EXPECT_LE(order->num_buckets(), 24u);
}

TEST(SkewedScoreOrderTest, RejectsBadConfigs) {
  Rng rng(84);
  EXPECT_FALSE(SkewedScoreOrder(0, SkewedOrderConfig{}, rng).ok());
  SkewedOrderConfig zero_quant;
  zero_quant.quantization = 0;
  EXPECT_FALSE(SkewedScoreOrder(10, zero_quant, rng).ok());
  SkewedOrderConfig bad_pareto;
  bad_pareto.pareto_shape = -1.0;
  EXPECT_FALSE(SkewedScoreOrder(10, bad_pareto, rng).ok());
  SkewedOrderConfig bad_skew;
  bad_skew.distribution = ScoreDistribution::kNormalSkewed;
  bad_skew.skew_scale = 0.0;
  EXPECT_FALSE(SkewedScoreOrder(10, bad_skew, rng).ok());
}

TEST(SkewedScoreCorpusTest, DeterministicCorpusOfValidOrders) {
  SkewedOrderConfig config;
  Rng a(85);
  Rng b(85);
  StatusOr<std::vector<BucketOrder>> first =
      SkewedScoreCorpus(6, 50, config, a);
  StatusOr<std::vector<BucketOrder>> second =
      SkewedScoreCorpus(6, 50, config, b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), 6u);
  for (std::size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i], (*second)[i]);
    EXPECT_TRUE((*first)[i].Validate().ok());
  }
  EXPECT_FALSE(SkewedScoreCorpus(0, 50, config, a).ok());
}

}  // namespace
}  // namespace rankties
