#include "access/ta_median.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "access/nra_median.h"
#include "core/median_rank.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

// TA returns the exact (score, id)-lexicographic top-k with exact scores.
void ExpectExactOrderedTopK(const std::vector<BucketOrder>& inputs,
                            const TaMedianResult& result, std::size_t k) {
  auto offline = MedianRankScoresQuad(inputs, MedianPolicy::kLower);
  ASSERT_TRUE(offline.ok());
  std::vector<std::pair<std::int64_t, ElementId>> all;
  for (std::size_t e = 0; e < offline->size(); ++e) {
    all.emplace_back((*offline)[e], static_cast<ElementId>(e));
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(result.top.size(), k);
  ASSERT_EQ(result.scores_quad.size(), k);
  for (std::size_t r = 0; r < k; ++r) {
    EXPECT_EQ(result.top[r], all[r].second) << "rank " << r;
    EXPECT_EQ(result.scores_quad[r], all[r].first) << "rank " << r;
  }
}

TEST(TaMedianTest, ExactOrderedTopKOnRandomInputs) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 3 + static_cast<std::size_t>(trial % 4);
    std::vector<BucketOrder> inputs;
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(20, rng));
    }
    for (std::size_t k : {1u, 4u, 20u}) {
      auto result = TaMedianTopK(inputs, k);
      ASSERT_TRUE(result.ok()) << result.status();
      ExpectExactOrderedTopK(inputs, *result, k);
    }
  }
}

TEST(TaMedianTest, ExactOnFewValuedInputs) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) {
      inputs.push_back(RandomFewValued(30, 6.0, rng));
    }
    auto result = TaMedianTopK(inputs, 5);
    ASSERT_TRUE(result.ok());
    ExpectExactOrderedTopK(inputs, *result, 5);
  }
}

TEST(TaMedianTest, StopsEarlyOnCorrelatedInputs) {
  Rng rng(3);
  const std::size_t n = 3000;
  const Permutation center(n);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(
        BucketOrder::FromPermutation(MallowsSample(center, 0.3, rng)));
  }
  auto result = TaMedianTopK(inputs, 3);
  ASSERT_TRUE(result.ok());
  ExpectExactOrderedTopK(inputs, *result, 3);
  EXPECT_LT(result->sorted_accesses, static_cast<std::int64_t>(n));
  // TA buys earlier stopping with random accesses.
  EXPECT_GT(result->random_accesses, 0);
}

TEST(TaMedianTest, NeverMoreSortedAccessesThanNra) {
  // TA's threshold certifies at least as early as NRA's bounds on the
  // same access sequence (TA knows exact scores for everything seen).
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) {
      inputs.push_back(RandomFewValued(100, 5.0, rng));
    }
    auto ta = TaMedianTopK(inputs, 5);
    auto nra = NraMedianTopK(inputs, 5);
    ASSERT_TRUE(ta.ok() && nra.ok());
    // NRA amortizes its certification checks, so give it the slack of a
    // few rounds (5 lists per round).
    EXPECT_LE(ta->sorted_accesses, nra->total_accesses + 64 * 5);
  }
}

TEST(TaMedianTest, Validation) {
  EXPECT_FALSE(TaMedianTopK({}, 1).ok());
  std::vector<BucketOrder> mixed = {BucketOrder::SingleBucket(3),
                                    BucketOrder::SingleBucket(4)};
  EXPECT_FALSE(TaMedianTopK(mixed, 1).ok());
  std::vector<BucketOrder> small = {BucketOrder::SingleBucket(3)};
  EXPECT_FALSE(TaMedianTopK(small, 5).ok());
  auto empty = TaMedianTopK(small, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->top.empty());
}

}  // namespace
}  // namespace rankties
