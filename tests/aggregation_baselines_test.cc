#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/best_input.h"
#include "core/kendall.h"
#include "core/borda.h"
#include "core/cost.h"
#include "core/footrule.h"
#include "core/footrule_matching.h"
#include "core/kemeny.h"
#include "core/local_kemenization.h"
#include "core/markov_chain.h"
#include "core/median_rank.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::vector<BucketOrder> RandomInputs(std::size_t n, std::size_t m, Rng& rng) {
  std::vector<BucketOrder> inputs;
  for (std::size_t i = 0; i < m; ++i) {
    inputs.push_back(RandomBucketOrder(n, rng));
  }
  return inputs;
}

TEST(HungarianTest, KnownMatrix) {
  // Classic 3x3: optimal assignment cost 5 (0->1, 1->0, 2->2).
  auto result = MinCostAssignment({{4, 1, 3}, {2, 0, 5}, {3, 2, 2}});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_cost, 5);
  EXPECT_EQ(result->column_of_row[0], 1u);
  EXPECT_EQ(result->column_of_row[1], 0u);
  EXPECT_EQ(result->column_of_row[2], 2u);
}

TEST(HungarianTest, MatchesBruteForceOnRandomMatrices) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 6));
    std::vector<std::vector<std::int64_t>> cost(n,
                                                std::vector<std::int64_t>(n));
    for (auto& row : cost) {
      for (auto& c : row) c = rng.UniformInt(0, 50);
    }
    auto result = MinCostAssignment(cost);
    ASSERT_TRUE(result.ok());
    // Brute force over all permutations.
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    do {
      std::int64_t total = 0;
      for (std::size_t r = 0; r < n; ++r) total += cost[r][perm[r]];
      best = std::min(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(result->total_cost, best) << "n=" << n;
  }
}

TEST(HungarianTest, RejectsBadMatrices) {
  EXPECT_FALSE(MinCostAssignment({}).ok());
  EXPECT_FALSE(MinCostAssignment({{1, 2}, {3}}).ok());
}

TEST(FootruleOptimalTest, IsTrulyOptimalOnSmallDomains) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inputs = RandomInputs(5, 3, rng);
    auto optimal = FootruleOptimalFull(inputs);
    ASSERT_TRUE(optimal.ok());
    const std::int64_t claimed = optimal->twice_total_cost;
    EXPECT_EQ(claimed, TwiceTotalFprof(
                           BucketOrder::FromPermutation(optimal->ranking),
                           inputs));
    // No full ranking does better.
    ForEachFullRefinement(BucketOrder::SingleBucket(5),
                          [&](const Permutation& p) {
                            EXPECT_GE(TwiceTotalFprof(
                                          BucketOrder::FromPermutation(p),
                                          inputs),
                                      claimed);
                            return true;
                          });
  }
}

TEST(FootruleOptimalTest, MedianIsWithinFactorTwoOfIt) {
  // Theorem 11 yardstick: for full-ranking inputs the median aggregate is
  // within 2x the Hungarian-exact footrule optimum.
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) {
      inputs.push_back(
          BucketOrder::FromPermutation(Permutation::Random(8, rng)));
    }
    auto median = MedianAggregateFull(inputs, MedianPolicy::kLower);
    auto optimal = FootruleOptimalFull(inputs);
    ASSERT_TRUE(median.ok() && optimal.ok());
    EXPECT_LE(
        TwiceTotalFprof(BucketOrder::FromPermutation(*median), inputs),
        2 * optimal->twice_total_cost);
  }
}

TEST(KemenyTest, MatchesBruteForceMinimum) {
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const auto inputs = RandomInputs(5, 3, rng);
    auto kemeny = ExactKemeny(inputs, 0.5);
    ASSERT_TRUE(kemeny.ok());
    double best = std::numeric_limits<double>::infinity();
    ForEachFullRefinement(BucketOrder::SingleBucket(5),
                          [&](const Permutation& p) {
                            best = std::min(
                                best, TotalKendallP(
                                          BucketOrder::FromPermutation(p),
                                          inputs, 0.5));
                            return true;
                          });
    EXPECT_DOUBLE_EQ(kemeny->total_cost, best);
    EXPECT_DOUBLE_EQ(
        TotalKendallP(BucketOrder::FromPermutation(kemeny->ranking), inputs,
                      0.5),
        best);
  }
}

TEST(KemenyTest, OptimumIsInvariantInPForFullOutputs) {
  // For a full-ranking output every input-tied pair costs p whichever way
  // it is ordered, so the p-term is constant and the argmin cannot depend
  // on p. (The objective VALUE does shift by p * #tied pairs * ... .)
  Rng rng(9);
  for (int trial = 0; trial < 6; ++trial) {
    const auto inputs = RandomInputs(6, 5, rng);
    const Permutation base = ExactKemeny(inputs, 0.5)->ranking;
    for (double p : {0.0, 1.0}) {
      auto result = ExactKemeny(inputs, p);
      ASSERT_TRUE(result.ok());
      // Argmin may be non-unique; compare objective values at p = 0.5.
      EXPECT_DOUBLE_EQ(
          TotalKendallP(BucketOrder::FromPermutation(result->ranking),
                        inputs, 0.5),
          TotalKendallP(BucketOrder::FromPermutation(base), inputs, 0.5));
    }
  }
}

TEST(KemenyTest, Validation) {
  EXPECT_FALSE(ExactKemeny({}, 0.5).ok());
  std::vector<BucketOrder> big(2, BucketOrder::SingleBucket(25));
  EXPECT_FALSE(ExactKemeny(big, 0.5).ok());
  std::vector<BucketOrder> ok_inputs(2, BucketOrder::SingleBucket(4));
  EXPECT_FALSE(ExactKemeny(ok_inputs, 0.3).ok());
  EXPECT_TRUE(ExactKemeny(ok_inputs, 1.0).ok());
}

TEST(BordaTest, AgreesWithMeanRankOnSimpleCase) {
  // Voter 1: 0 < 1 < 2; Voter 2: 0 < 2 < 1. Mean ranks: 0 best, then tie.
  auto v1 = BucketOrder::FromBuckets(3, {{0}, {1}, {2}});
  auto v2 = BucketOrder::FromBuckets(3, {{0}, {2}, {1}});
  ASSERT_TRUE(v1.ok() && v2.ok());
  auto induced = BordaInducedOrder({*v1, *v2});
  ASSERT_TRUE(induced.ok());
  EXPECT_EQ(induced->ToString(), "[0 | 1 2]");
  auto full = BordaAggregateFull({*v1, *v2});
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->At(0), 0);
}

TEST(BestInputTest, PicksTheMedoid) {
  Rng rng(5);
  const auto inputs = RandomInputs(8, 5, rng);
  auto best = BestInputAggregate(inputs, MetricKind::kFprof);
  ASSERT_TRUE(best.ok());
  for (const BucketOrder& candidate : inputs) {
    EXPECT_GE(TotalDistance(MetricKind::kFprof, candidate, inputs),
              best->total_cost - 1e-9);
  }
}

TEST(Mc4Test, UnanimousInputsReproduceTheOrder) {
  const Permutation truth(6);
  std::vector<BucketOrder> inputs(4, BucketOrder::FromPermutation(truth));
  auto result = Mc4Aggregate(inputs);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, truth);
}

TEST(Mc4Test, RecoversMallowsCenterApproximately) {
  Rng rng(6);
  const Permutation center(9);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 15; ++i) {
    inputs.push_back(
        BucketOrder::FromPermutation(MallowsSample(center, 0.3, rng)));
  }
  auto result = Mc4Aggregate(inputs);
  ASSERT_TRUE(result.ok());
  // Strong concentration: the recovered order is close to the center.
  EXPECT_LE(KendallTau(*result, center), 6);
}

TEST(LocalKemenizationTest, NeverHurtsAndFixesAdjacentFlaws) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inputs = RandomInputs(7, 4, rng);
    const Permutation start = Permutation::Random(7, rng);
    const Permutation polished = LocalKemenization(start, inputs, 0.5);
    EXPECT_LE(TotalKendallP(BucketOrder::FromPermutation(polished), inputs,
                            0.5),
              TotalKendallP(BucketOrder::FromPermutation(start), inputs,
                            0.5) +
                  1e-9);
    // No adjacent swap of the polished ranking improves the objective.
    const std::vector<std::vector<std::int64_t>> w =
        PairwisePreferenceCostsTwice(inputs, 0.5);
    for (std::size_t r = 0; r + 1 < 7; ++r) {
      const std::size_t a = static_cast<std::size_t>(polished.At(
          static_cast<ElementId>(r)));
      const std::size_t b = static_cast<std::size_t>(polished.At(
          static_cast<ElementId>(r + 1)));
      EXPECT_LE(w[a][b], w[b][a]);
    }
  }
}

TEST(CostTest, ApproxRatioEdgeCases) {
  EXPECT_DOUBLE_EQ(ApproxRatio(0, 0), 1.0);
  EXPECT_TRUE(std::isinf(ApproxRatio(3, 0)));
  EXPECT_DOUBLE_EQ(ApproxRatio(3, 2), 1.5);
}

}  // namespace
}  // namespace rankties
