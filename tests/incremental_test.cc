// Unit tests for the incremental engine (ROADMAP item 4): PreparedRanking
// delta operations, IncrementalDistanceMatrix row/count maintenance, and
// the delta-aware OnlineMedianAggregator — hand-built cases with known
// answers plus seeded randomized agreement with the batch engines. The
// adversarial differential coverage lives in the mutation-trace fuzz
// family (tests/fuzz/mutation_trace.cc); these tests pin the contracts:
// exact Status failures, no-op detection, renumbering, and the
// pairs-reevaluated accounting.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/batch_engine.h"
#include "core/metric_registry.h"
#include "core/prepared.h"
#include "gen/random_orders.h"
#include "rank/bucket_order.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Make(std::size_t n,
                 const std::vector<std::vector<ElementId>>& buckets) {
  StatusOr<BucketOrder> order = BucketOrder::FromBuckets(n, buckets);
  EXPECT_TRUE(order.ok());
  return *order;
}

void ExpectFrozenEqual(const PreparedRanking& got, const BucketOrder& want) {
  const PreparedRanking fresh(want);
  EXPECT_EQ(got.bucket_of(), fresh.bucket_of());
  EXPECT_EQ(got.by_bucket(), fresh.by_bucket());
  EXPECT_EQ(got.bucket_offset(), fresh.bucket_offset());
  EXPECT_EQ(got.twice_position(), fresh.twice_position());
  EXPECT_EQ(got.tied_pairs(), fresh.tied_pairs());
  EXPECT_EQ(got.ToBucketOrder(), want);
}

TEST(PreparedDeltaTest, MoveToBucketMatchesFreshFreeze) {
  // [0 1 | 2 | 3 4] with a forward move, a backward move, and a no-op.
  PreparedRanking live(Make(5, {{0, 1}, {2}, {3, 4}}));
  ASSERT_TRUE(live.MoveToBucket(0, 2).ok());
  ExpectFrozenEqual(live, Make(5, {{1}, {2}, {0, 3, 4}}));
  ASSERT_TRUE(live.MoveToBucket(4, 0).ok());
  ExpectFrozenEqual(live, Make(5, {{1, 4}, {2}, {0, 3}}));
  ASSERT_TRUE(live.MoveToBucket(2, 1).ok());  // already there: no-op
  ExpectFrozenEqual(live, Make(5, {{1, 4}, {2}, {0, 3}}));
}

TEST(PreparedDeltaTest, MoveToBucketCollapsesEmptiedSource) {
  // Moving the singleton middle bucket's element away removes the bucket
  // and shifts every later bucket down one index.
  PreparedRanking live(Make(4, {{0}, {1}, {2, 3}}));
  ASSERT_TRUE(live.MoveToBucket(1, 2).ok());
  ExpectFrozenEqual(live, Make(4, {{0}, {1, 2, 3}}));
  EXPECT_EQ(live.num_buckets(), 2u);
}

TEST(PreparedDeltaTest, MoveToNewBucketAllPositions) {
  // Split an element out to every insertion point, including both ends
  // (`before` indexes the *pre-edit* buckets; == num_buckets() appends).
  const std::vector<std::vector<std::vector<ElementId>>> want_by_before = {
      {{3}, {0, 1}, {2}},  // before = 0
      {{0, 1}, {3}, {2}},  // before = 1
      {{0, 1}, {2}, {3}},  // before = 2 (append)
  };
  for (std::size_t before = 0; before < want_by_before.size(); ++before) {
    PreparedRanking live(Make(4, {{0, 1}, {2, 3}}));
    ASSERT_TRUE(live.MoveToNewBucket(3, before).ok()) << "before=" << before;
    ExpectFrozenEqual(live, Make(4, want_by_before[before]));
  }
  // Past num_buckets() is out of range.
  PreparedRanking live(Make(4, {{0, 1}, {2, 3}}));
  EXPECT_FALSE(live.MoveToNewBucket(3, 3).ok());
}

TEST(PreparedDeltaTest, MoveToNewBucketRelocatesSingleton) {
  // The net-bucket-count-unchanged case: e is already a singleton and the
  // new singleton lands elsewhere (this is the path where a naive suffix
  // collapse would corrupt untouched bucket assignments).
  PreparedRanking live(Make(4, {{0}, {1, 2}, {3}}));
  ASSERT_TRUE(live.MoveToNewBucket(0, 3).ok());  // append after the last
  ExpectFrozenEqual(live, Make(4, {{1, 2}, {3}, {0}}));
  ASSERT_TRUE(live.MoveToNewBucket(3, 0).ok());
  ExpectFrozenEqual(live, Make(4, {{3}, {1, 2}, {0}}));
  // No-ops: a singleton re-inserted at its own spot, either way round.
  ASSERT_TRUE(live.MoveToNewBucket(3, 0).ok());
  ASSERT_TRUE(live.MoveToNewBucket(3, 1).ok());
  ExpectFrozenEqual(live, Make(4, {{3}, {1, 2}, {0}}));
}

TEST(PreparedDeltaTest, InsertItemGrowsDomain) {
  PreparedRanking live(Make(3, {{0, 2}, {1}}));
  ASSERT_TRUE(live.InsertItem(0).ok());  // fresh id 3 joins bucket 0
  ExpectFrozenEqual(live, Make(4, {{0, 2, 3}, {1}}));
  ASSERT_TRUE(live.InsertItem(1).ok());
  ExpectFrozenEqual(live, Make(5, {{0, 2, 3}, {1, 4}}));

  PreparedRanking empty;
  ASSERT_TRUE(empty.InsertItem(0).ok());  // empty domain: element 0 appears
  ExpectFrozenEqual(empty, Make(1, {{0}}));
}

TEST(PreparedDeltaTest, EraseItemRenumbersAndCollapses) {
  PreparedRanking live(Make(5, {{0, 3}, {1}, {2, 4}}));
  ASSERT_TRUE(live.EraseItem(1).ok());  // empties the middle bucket
  // Ids above 1 shift down: {0 2} | {1 3}.
  ExpectFrozenEqual(live, Make(4, {{0, 2}, {1, 3}}));
  ASSERT_TRUE(live.EraseItem(0).ok());
  ExpectFrozenEqual(live, Make(3, {{1}, {0, 2}}));
  ASSERT_TRUE(live.EraseItem(2).ok());
  ASSERT_TRUE(live.EraseItem(0).ok());
  ASSERT_TRUE(live.EraseItem(0).ok());
  EXPECT_EQ(live.n(), 0u);
  EXPECT_EQ(live.num_buckets(), 0u);
  ExpectFrozenEqual(live, BucketOrder());
}

TEST(PreparedDeltaTest, FailedEditsLeaveRankingUntouched) {
  const BucketOrder original = Make(3, {{0}, {1, 2}});
  PreparedRanking live(original);
  EXPECT_FALSE(live.MoveToBucket(5, 0).ok());     // element out of range
  EXPECT_FALSE(live.MoveToBucket(0, 2).ok());     // bucket out of range
  EXPECT_FALSE(live.MoveToNewBucket(-1, 0).ok());
  EXPECT_FALSE(live.MoveToNewBucket(0, 3).ok());  // may be num_buckets() max
  EXPECT_FALSE(live.InsertItem(2).ok());
  EXPECT_FALSE(live.EraseItem(3).ok());
  ExpectFrozenEqual(live, original);
}

class IncrementalMatrixTest : public ::testing::TestWithParam<MetricKind> {};

TEST_P(IncrementalMatrixTest, TracksDistanceMatrixUnderMoves) {
  const MetricKind kind = GetParam();
  Rng rng(0xD347A + static_cast<std::uint64_t>(kind));
  const std::size_t n = 12;
  std::vector<BucketOrder> lists;
  for (int i = 0; i < 5; ++i) lists.push_back(RandomBucketOrder(n, rng));
  StatusOr<IncrementalDistanceMatrix> engine =
      IncrementalDistanceMatrix::Create(kind, lists);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ(engine->Matrix(), DistanceMatrix(kind, lists));
  EXPECT_EQ(engine->pairs_reevaluated(), 0);

  std::int64_t effective_edits = 0;
  for (int step = 0; step < 60; ++step) {
    const std::size_t list = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(lists.size()) - 1));
    const ElementId e = static_cast<ElementId>(
        rng.UniformInt(0, static_cast<std::int64_t>(n) - 1));
    const std::size_t buckets = engine->List(list).num_buckets();
    const std::vector<BucketIndex> before_edit = engine->List(list).bucket_of();
    if (rng.Bernoulli(0.5)) {
      const std::size_t target = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(buckets) - 1));
      ASSERT_TRUE(engine->MoveToBucket(list, e, target).ok());
    } else {
      const std::size_t before = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(buckets)));
      ASSERT_TRUE(engine->MoveToNewBucket(list, e, before).ok());
    }
    if (engine->List(list).bucket_of() != before_edit) ++effective_edits;
    lists[list] = engine->List(list).ToBucketOrder();
    ASSERT_EQ(engine->Matrix(), DistanceMatrix(kind, lists)) << "step "
                                                             << step;
  }
  // Each effective edit re-derives exactly row/column `list` — m-1 pairs;
  // no-op edits (move into the current bucket) cost nothing on any path.
  EXPECT_GT(effective_edits, 0);
  EXPECT_EQ(engine->pairs_reevaluated(),
            effective_edits * (static_cast<std::int64_t>(lists.size()) - 1));
}

TEST_P(IncrementalMatrixTest, ReplaceListRefreshesOneRow) {
  const MetricKind kind = GetParam();
  Rng rng(0x9E9E + static_cast<std::uint64_t>(kind));
  std::vector<BucketOrder> lists;
  for (int i = 0; i < 4; ++i) lists.push_back(RandomBucketOrder(9, rng));
  StatusOr<IncrementalDistanceMatrix> engine =
      IncrementalDistanceMatrix::Create(kind, lists);
  ASSERT_TRUE(engine.ok());
  for (int round = 0; round < 10; ++round) {
    const std::size_t list = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(lists.size()) - 1));
    lists[list] = RandomBucketOrder(9, rng);
    ASSERT_TRUE(engine->ReplaceList(list, lists[list]).ok());
    ASSERT_EQ(engine->Matrix(), DistanceMatrix(kind, lists));
  }
  EXPECT_FALSE(engine->ReplaceList(99, lists[0]).ok());
  EXPECT_FALSE(engine->ReplaceList(0, RandomBucketOrder(4, rng)).ok());
}

TEST_P(IncrementalMatrixTest, RejectsInvalidEdits) {
  const MetricKind kind = GetParam();
  std::vector<BucketOrder> lists = {Make(3, {{0}, {1, 2}}),
                                    Make(3, {{0, 1, 2}})};
  StatusOr<IncrementalDistanceMatrix> engine =
      IncrementalDistanceMatrix::Create(kind, lists);
  ASSERT_TRUE(engine.ok());
  const std::vector<std::vector<double>> before = engine->Matrix();
  EXPECT_FALSE(engine->MoveToBucket(7, 0, 0).ok());    // bad list
  EXPECT_FALSE(engine->MoveToBucket(0, 9, 0).ok());    // bad element
  EXPECT_FALSE(engine->MoveToBucket(0, 0, 5).ok());    // bad bucket
  EXPECT_FALSE(engine->MoveToNewBucket(0, 0, 9).ok());
  EXPECT_EQ(engine->Matrix(), before);  // failures change nothing
  EXPECT_EQ(engine->pairs_reevaluated(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, IncrementalMatrixTest,
                         ::testing::Values(MetricKind::kKprof,
                                           MetricKind::kFprof,
                                           MetricKind::kKHaus,
                                           MetricKind::kFHaus),
                         [](const ::testing::TestParamInfo<MetricKind>& info) {
                           return std::string(MetricName(info.param));
                         });

TEST(IncrementalMatrixTest, CreateValidation) {
  EXPECT_FALSE(
      IncrementalDistanceMatrix::Create(MetricKind::kKprof, {}).ok());
  EXPECT_FALSE(IncrementalDistanceMatrix::Create(
                   MetricKind::kKprof,
                   {BucketOrder::SingleBucket(3), BucketOrder::SingleBucket(4)})
                   .ok());
  // A one-list corpus is legal: the matrix is the 1x1 zero matrix.
  StatusOr<IncrementalDistanceMatrix> one = IncrementalDistanceMatrix::Create(
      MetricKind::kKHaus, {BucketOrder::SingleBucket(3)});
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one->Matrix(), std::vector<std::vector<double>>{{0.0}});
}

}  // namespace
}  // namespace rankties
