// End-to-end flows across modules: synthetic catalog -> tied rankings ->
// metrics -> aggregation -> database-friendly retrieval.

#include <gtest/gtest.h>

#include "rankties.h"

namespace rankties {
namespace {

TEST(IntegrationTest, RestaurantScenarioEndToEnd) {
  Rng rng(42);
  const Table table = MakeRestaurantTable(300, rng);

  PreferenceQuery query(table);
  query
      .Add({.column = "cuisine",
            .mode = AttributePreference::Mode::kCategoryOrder,
            .category_order = {"thai", "italian", "japanese"}})
      .Add({.column = "distance_miles",
            .mode = AttributePreference::Mode::kAscending,
            .granularity = 10.0})
      .Add({.column = "price_tier",
            .mode = AttributePreference::Mode::kAscending})
      .Add({.column = "stars",
            .mode = AttributePreference::Mode::kDescending});

  auto rankings = query.DeriveRankings();
  ASSERT_TRUE(rankings.ok());

  // The paper's premise: these attribute sorts are heavily tied.
  for (const BucketOrder& ranking : *rankings) {
    EXPECT_LT(ranking.num_buckets(), ranking.n() / 2);
  }

  // The offline top-1 minimizes the lower-median position; the online
  // MEDRANK winner minimizes the median *access depth* (under ties the
  // cursors expose a deterministic refinement, so depths, not bucket
  // positions, drive certification).
  auto offline = query.TopK(5);
  auto online = query.TopKMedrank(5);
  ASSERT_TRUE(offline.ok() && online.ok());
  EXPECT_EQ(online->top_rows.size(), 5u);
  auto scores = MedianRankScoresQuad(*rankings, MedianPolicy::kLower);
  ASSERT_TRUE(scores.ok());
  const std::int64_t best =
      *std::min_element(scores->begin(), scores->end());
  EXPECT_EQ((*scores)[static_cast<std::size_t>(offline->top_rows[0])], best);
  const std::size_t majority = rankings->size() / 2 + 1;
  auto cert_depth = [&](ElementId e) {
    std::vector<std::int64_t> depths;
    for (const BucketOrder& ranking : *rankings) {
      depths.push_back(AccessDepth(ranking, e));
    }
    std::sort(depths.begin(), depths.end());
    return depths[majority - 1];
  };
  const std::int64_t winner_depth = cert_depth(online->top_rows[0]);
  for (std::size_t e = 0; e < table.num_rows(); ++e) {
    EXPECT_GE(cert_depth(static_cast<ElementId>(e)), winner_depth);
  }

  // The online path must not read more than m * n accesses.
  EXPECT_LE(online->sorted_accesses,
            static_cast<std::int64_t>(rankings->size() * table.num_rows()));
}

TEST(IntegrationTest, MetricsAgreeOnScenarioRankings) {
  Rng rng(7);
  const Table table = MakeFlightTable(120, rng);
  PreferenceQuery query(table);
  query
      .Add({.column = "price_usd",
            .mode = AttributePreference::Mode::kAscending,
            .granularity = 50.0})
      .Add({.column = "connections",
            .mode = AttributePreference::Mode::kAscending})
      .Add({.column = "departure_hour",
            .mode = AttributePreference::Mode::kNear,
            .target = 9.0,
            .granularity = 2.0});
  auto rankings = query.DeriveRankings();
  ASSERT_TRUE(rankings.ok());

  // Theorem 7 inequalities hold on real scenario pairs.
  for (std::size_t i = 0; i < rankings->size(); ++i) {
    for (std::size_t j = i + 1; j < rankings->size(); ++j) {
      const BucketOrder& x = (*rankings)[i];
      const BucketOrder& y = (*rankings)[j];
      const std::int64_t twice_kprof = TwiceKprof(x, y);
      const std::int64_t twice_fprof = TwiceFprof(x, y);
      const std::int64_t twice_khaus = 2 * KHausdorff(x, y);
      const std::int64_t twice_fhaus = TwiceFHausdorff(x, y);
      EXPECT_LE(twice_kprof, twice_fprof);
      EXPECT_LE(twice_fprof, 2 * twice_kprof);
      EXPECT_LE(twice_khaus, twice_fhaus);
      EXPECT_LE(twice_fhaus, 2 * twice_khaus);
      EXPECT_LE(twice_kprof, twice_khaus);
      EXPECT_LE(twice_khaus, 2 * twice_kprof);
    }
  }
}

TEST(IntegrationTest, AggregationQualityChainOnMallowsVoters) {
  // Median and f-dagger respect their proved factors against the exact
  // footrule optimum on correlated voters.
  Rng rng(11);
  const std::size_t n = 10;
  const Permutation truth = Permutation::Random(n, rng);
  std::vector<BucketOrder> voters;
  for (int i = 0; i < 7; ++i) {
    voters.push_back(QuantizedMallows(truth, 0.5, 4, rng));
  }

  auto median_full = MedianAggregateFull(voters, MedianPolicy::kLower);
  ASSERT_TRUE(median_full.ok());
  auto optimal = FootruleOptimalFull(voters);
  ASSERT_TRUE(optimal.ok());
  const std::int64_t median_cost =
      TwiceTotalFprof(BucketOrder::FromPermutation(*median_full), voters);
  // Theorem 9 (top-n case): within 3x of the optimal *full ranking*.
  EXPECT_LE(median_cost, 3 * optimal->twice_total_cost);

  // f-dagger (partial-ranking output) is within 2x of any partial ranking;
  // in particular within 2x of the optimal full ranking's cost.
  auto scores = MedianRankScoresQuad(voters, MedianPolicy::kLower);
  ASSERT_TRUE(scores.ok());
  auto fdagger = OptimalBucketing(*scores);
  ASSERT_TRUE(fdagger.ok());
  EXPECT_LE(TwiceTotalFprof(fdagger->order, voters),
            2 * optimal->twice_total_cost);

  // And the aggregate is close to the planted truth.
  EXPECT_LE(KendallTau(*median_full, truth), MaxKendall(n) / 3);
}

TEST(IntegrationTest, SerializationSurvivesPipeline) {
  Rng rng(13);
  std::vector<BucketOrder> rankings;
  for (int i = 0; i < 4; ++i) rankings.push_back(RandomFewValued(15, 4, rng));
  auto parsed = ParseBucketOrders(FormatBucketOrders(rankings));
  ASSERT_TRUE(parsed.ok());
  auto before = MedianAggregateFull(rankings, MedianPolicy::kAverage);
  auto after = MedianAggregateFull(*parsed, MedianPolicy::kAverage);
  ASSERT_TRUE(before.ok() && after.ok());
  EXPECT_EQ(*before, *after);
}

}  // namespace
}  // namespace rankties
