#include "core/kemeny_bnb.h"

#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/kemeny.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::vector<BucketOrder> RandomInputs(std::size_t n, std::size_t m, Rng& rng) {
  std::vector<BucketOrder> inputs;
  for (std::size_t i = 0; i < m; ++i) {
    inputs.push_back(RandomBucketOrder(n, rng));
  }
  return inputs;
}

TEST(KemenyBnbTest, MatchesHeldKarpOnSmallInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 4 + static_cast<std::size_t>(trial % 6);
    const auto inputs = RandomInputs(n, 5, rng);
    auto exact = ExactKemeny(inputs, 0.5);
    auto bnb = KemenyBranchAndBound(inputs, 0.5);
    ASSERT_TRUE(exact.ok() && bnb.ok());
    EXPECT_TRUE(bnb->proven_optimal);
    EXPECT_EQ(bnb->twice_cost, exact->twice_cost) << "n=" << n;
    // Reported cost matches the reported ranking.
    EXPECT_DOUBLE_EQ(
        TotalKendallP(BucketOrder::FromPermutation(bnb->ranking), inputs,
                      0.5),
        static_cast<double>(bnb->twice_cost) / 2.0);
  }
}

TEST(KemenyBnbTest, ClosesMediumInstancesBeyondHeldKarp) {
  // n = 24 is far outside the 2^n DP's range; correlated voters make the
  // pairwise-min bound tight enough to close the instance.
  Rng rng(2);
  const std::size_t n = 24;
  const Permutation truth = Permutation::Random(n, rng);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 7; ++i) {
    inputs.push_back(QuantizedMallows(truth, 0.4, 6, rng));
  }
  auto bnb = KemenyBranchAndBound(inputs, 0.5);
  ASSERT_TRUE(bnb.ok());
  EXPECT_TRUE(bnb->proven_optimal);
  EXPECT_GT(bnb->nodes, 0);
}

TEST(KemenyBnbTest, BudgetExhaustionStillReturnsIncumbent) {
  Rng rng(3);
  const auto inputs = RandomInputs(16, 5, rng);
  auto bnb = KemenyBranchAndBound(inputs, 0.5, /*node_budget=*/10);
  ASSERT_TRUE(bnb.ok());
  EXPECT_FALSE(bnb->proven_optimal);
  // The incumbent is a valid full ranking with a consistent cost.
  EXPECT_DOUBLE_EQ(
      TotalKendallP(BucketOrder::FromPermutation(bnb->ranking), inputs, 0.5),
      static_cast<double>(bnb->twice_cost) / 2.0);
}

TEST(KemenyBnbTest, Validation) {
  EXPECT_FALSE(KemenyBranchAndBound({}, 0.5).ok());
  std::vector<BucketOrder> inputs = {BucketOrder::SingleBucket(4)};
  EXPECT_FALSE(KemenyBranchAndBound(inputs, 0.3).ok());
}

TEST(PivotAggregateTest, UnanimousRecovery) {
  Rng rng(4);
  const Permutation truth = Permutation::Random(9, rng);
  std::vector<BucketOrder> inputs(5, BucketOrder::FromPermutation(truth));
  const Permutation result = PivotAggregate(inputs, 0.5, rng);
  EXPECT_EQ(result, truth);
}

TEST(PivotAggregateTest, NearOptimalOnAverage) {
  Rng rng(5);
  double total_ratio = 0;
  int count = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto inputs = RandomInputs(8, 7, rng);
    auto exact = ExactKemeny(inputs, 0.5);
    ASSERT_TRUE(exact.ok());
    const Permutation pivot = PivotAggregate(inputs, 0.5, rng);
    const double ratio = ApproxRatio(
        TotalKendallP(BucketOrder::FromPermutation(pivot), inputs, 0.5),
        exact->total_cost);
    EXPECT_LE(ratio, 2.0) << "pivot unexpectedly poor";
    total_ratio += ratio;
    ++count;
  }
  EXPECT_LE(total_ratio / count, 1.3);  // typically near-optimal
}

}  // namespace
}  // namespace rankties
