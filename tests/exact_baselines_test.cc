// Tests for the exact aggregation yardsticks: typed footrule-optimal
// assignment, the all-types optimum, and the 3^n partial-Kemeny DP.

#include <gtest/gtest.h>

#include <limits>

#include "core/consolidation.h"
#include "core/cost.h"
#include "core/footrule_matching.h"
#include "core/kemeny.h"
#include "core/median_rank.h"
#include "core/optimal_bucketing.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::vector<BucketOrder> RandomInputs(std::size_t n, std::size_t m, Rng& rng) {
  std::vector<BucketOrder> inputs;
  for (std::size_t i = 0; i < m; ++i) {
    inputs.push_back(RandomBucketOrder(n, rng));
  }
  return inputs;
}

TEST(FootruleOptimalTypedTest, MatchesExhaustiveAssignments) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5;
    const auto inputs = RandomInputs(n, 3, rng);
    const std::vector<std::size_t> alpha = RandomType(n, rng);
    auto ours = FootruleOptimalOfType(inputs, alpha);
    ASSERT_TRUE(ours.ok());
    EXPECT_EQ(ours->order.Type(), alpha);
    EXPECT_EQ(ours->twice_total_cost, TwiceTotalFprof(ours->order, inputs));

    // Exhaustive: every assignment of elements to the alpha slots.
    std::vector<ElementId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    do {
      std::vector<BucketIndex> bucket_of(n);
      std::size_t at = 0;
      for (std::size_t b = 0; b < alpha.size(); ++b) {
        for (std::size_t i = 0; i < alpha[b]; ++i, ++at) {
          bucket_of[static_cast<std::size_t>(perm[at])] =
              static_cast<BucketIndex>(b);
        }
      }
      auto candidate = BucketOrder::FromBucketIndex(bucket_of);
      ASSERT_TRUE(candidate.ok());
      best = std::min(best, TwiceTotalFprof(*candidate, inputs));
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(ours->twice_total_cost, best);
  }
}

TEST(FootruleOptimalTypedTest, TopKSpecialCase) {
  Rng rng(2);
  const auto inputs = RandomInputs(7, 4, rng);
  auto topk = FootruleOptimalTopK(inputs, 3);
  ASSERT_TRUE(topk.ok());
  EXPECT_TRUE(topk->order.IsTopK(3));
  // Full type degenerates to FootruleOptimalFull.
  auto full_typed = FootruleOptimalTopK(inputs, 7);
  auto full = FootruleOptimalFull(inputs);
  ASSERT_TRUE(full_typed.ok() && full.ok());
  EXPECT_EQ(full_typed->twice_total_cost, full->twice_total_cost);
}

TEST(FootruleOptimalTypedTest, Theorem9MeasuredAgainstTrueOptimum) {
  // The median top-k at n=20 (beyond exhaustive reach) against the
  // assignment-exact optimal top-k: factor <= 3.
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    const auto inputs = RandomInputs(20, 5, rng);
    for (std::size_t k : {1u, 5u, 10u}) {
      auto ours = MedianAggregateTopK(inputs, k, MedianPolicy::kLower);
      auto optimal = FootruleOptimalTopK(inputs, k);
      ASSERT_TRUE(ours.ok() && optimal.ok());
      EXPECT_LE(TwiceTotalFprof(*ours, inputs), 3 * optimal->twice_total_cost)
          << "k=" << k;
    }
  }
}

TEST(FootruleOptimalTypedTest, Corollary30MeasuredAgainstTrueOptimum) {
  // ConsolidateToType(median, alpha) <= 3x the typed optimum for any type.
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 10;
    const auto inputs = RandomInputs(n, 5, rng);
    const std::vector<std::size_t> alpha = RandomType(n, rng);
    auto scores = MedianRankScoresQuad(inputs, MedianPolicy::kLower);
    ASSERT_TRUE(scores.ok());
    auto ours = ConsolidateToType(*scores, alpha);
    auto optimal = FootruleOptimalOfType(inputs, alpha);
    ASSERT_TRUE(ours.ok() && optimal.ok());
    EXPECT_LE(TwiceTotalFprof(ours->order, inputs),
              3 * optimal->twice_total_cost);
  }
}

TEST(FprofOptimalPartialTest, BeatsEveryTypedOptimumAndRandomOrder) {
  Rng rng(5);
  const std::size_t n = 7;
  const auto inputs = RandomInputs(n, 4, rng);
  auto best = FprofOptimalPartial(inputs);
  ASSERT_TRUE(best.ok());
  for (int g = 0; g < 50; ++g) {
    const BucketOrder tau = RandomBucketOrder(n, rng);
    EXPECT_LE(best->twice_total_cost, TwiceTotalFprof(tau, inputs));
  }
  auto full = FootruleOptimalFull(inputs);
  ASSERT_TRUE(full.ok());
  EXPECT_LE(best->twice_total_cost, full->twice_total_cost);
  EXPECT_FALSE(FprofOptimalPartial(RandomInputs(20, 2, rng)).ok());  // guard
}

TEST(FprofOptimalPartialTest, Theorem10AgainstTrueOptimum) {
  // f-dagger of the median within 2x of the true partial-ranking optimum.
  Rng rng(6);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 8;
    const auto inputs = RandomInputs(n, 5, rng);
    auto scores = MedianRankScoresQuad(inputs, MedianPolicy::kLower);
    auto fdagger = OptimalBucketing(*scores);
    auto optimal = FprofOptimalPartial(inputs);
    ASSERT_TRUE(fdagger.ok() && optimal.ok());
    EXPECT_LE(TwiceTotalFprof(fdagger->order, inputs),
              2 * optimal->twice_total_cost);
  }
}

TEST(ExactKemenyPartialTest, MatchesBruteForceOverOrderedPartitions) {
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 5;
    const auto inputs = RandomInputs(n, 3, rng);
    auto ours = ExactKemenyPartial(inputs, 0.5);
    ASSERT_TRUE(ours.ok());
    EXPECT_DOUBLE_EQ(ours->total_cost,
                     TotalKendallP(ours->order, inputs, 0.5));

    // Brute force over all ordered set partitions: enumerate permutations
    // and all composition cuts (each ordered partition arises from at
    // least one (perm, cuts) pair).
    double best = std::numeric_limits<double>::infinity();
    std::vector<ElementId> perm(n);
    std::iota(perm.begin(), perm.end(), 0);
    do {
      for (std::uint64_t mask = 0; mask < (1ULL << (n - 1)); ++mask) {
        std::vector<BucketIndex> bucket_of(n);
        BucketIndex b = 0;
        for (std::size_t r = 0; r < n; ++r) {
          bucket_of[static_cast<std::size_t>(perm[r])] = b;
          if (r + 1 < n && (mask & (1ULL << r))) ++b;
        }
        auto candidate = BucketOrder::FromBucketIndex(bucket_of);
        ASSERT_TRUE(candidate.ok());
        best = std::min(best, TotalKendallP(*candidate, inputs, 0.5));
      }
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_DOUBLE_EQ(ours->total_cost, best) << "trial " << trial;
  }
}

TEST(ExactKemenyPartialTest, NeverWorseThanFullKemeny) {
  // Partial rankings include full ones, so the partial optimum is <= the
  // full optimum; with tie-heavy inputs it is typically strictly better.
  Rng rng(8);
  std::int64_t strictly_better = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto inputs = RandomInputs(7, 5, rng);
    auto partial = ExactKemenyPartial(inputs, 0.5);
    auto full = ExactKemeny(inputs, 0.5);
    ASSERT_TRUE(partial.ok() && full.ok());
    EXPECT_LE(partial->twice_cost, full->twice_cost);
    if (partial->twice_cost < full->twice_cost) ++strictly_better;
  }
  EXPECT_GT(strictly_better, 0);
}

TEST(ExactKemenyPartialTest, UnanimousInputIsRecoveredExactly) {
  Rng rng(9);
  const BucketOrder truth = RandomBucketOrder(8, rng);
  std::vector<BucketOrder> inputs(5, truth);
  auto result = ExactKemenyPartial(inputs, 0.5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->order, truth);
  EXPECT_EQ(result->twice_cost, 0);
}

TEST(ExactKemenyPartialTest, Validation) {
  EXPECT_FALSE(ExactKemenyPartial({}, 0.5).ok());
  std::vector<BucketOrder> big(2, BucketOrder::SingleBucket(14));
  EXPECT_FALSE(ExactKemenyPartial(big, 0.5).ok());
  std::vector<BucketOrder> ok_inputs(2, BucketOrder::SingleBucket(4));
  EXPECT_FALSE(ExactKemenyPartial(ok_inputs, 0.3).ok());
}

}  // namespace
}  // namespace rankties
