#include <gtest/gtest.h>

#include "db/query.h"
#include "db/schema.h"
#include "db/table.h"
#include "db/value.h"
#include "gen/datasets.h"
#include "util/rng.h"

namespace rankties {
namespace {

Table SampleRestaurants() {
  Table table(Schema({
      {"cuisine", ColumnType::kCategorical},
      {"distance_miles", ColumnType::kNumeric},
      {"price_tier", ColumnType::kNumeric},
      {"stars", ColumnType::kNumeric},
  }));
  // id: cuisine, distance, price, stars
  // 0: thai, 2.0, 2, 4.5 | 1: thai, 8.0, 1, 4.0 | 2: italian, 1.0, 3, 5.0
  // 3: mexican, 12.0, 1, 3.5 | 4: italian, 25.0, 4, 4.5
  EXPECT_TRUE(table.AddRow({Value(std::string("thai")), Value(2.0), Value(2.0),
                            Value(4.5)})
                  .ok());
  EXPECT_TRUE(table.AddRow({Value(std::string("thai")), Value(8.0), Value(1.0),
                            Value(4.0)})
                  .ok());
  EXPECT_TRUE(table.AddRow({Value(std::string("italian")), Value(1.0),
                            Value(3.0), Value(5.0)})
                  .ok());
  EXPECT_TRUE(table.AddRow({Value(std::string("mexican")), Value(12.0),
                            Value(1.0), Value(3.5)})
                  .ok());
  EXPECT_TRUE(table.AddRow({Value(std::string("italian")), Value(25.0),
                            Value(4.0), Value(4.5)})
                  .ok());
  return table;
}

TEST(ValueTest, KindsAndAccessors) {
  const Value null;
  const Value num(3.5);
  const Value text(std::string("abc"));
  EXPECT_TRUE(null.is_null());
  ASSERT_TRUE(num.AsNumber().ok());
  EXPECT_DOUBLE_EQ(*num.AsNumber(), 3.5);
  EXPECT_FALSE(num.AsText().ok());
  ASSERT_TRUE(text.AsText().ok());
  EXPECT_EQ(*text.AsText(), "abc");
  EXPECT_EQ(num.ToString(), "3.5");
  EXPECT_EQ(Value(4.0).ToString(), "4");
  EXPECT_EQ(null.ToString(), "");
}

TEST(ValueTest, Ordering) {
  EXPECT_LT(Value(), Value(1.0));
  EXPECT_LT(Value(1.0), Value(std::string("a")));
  EXPECT_LT(Value(1.0), Value(2.0));
  EXPECT_LT(Value(std::string("a")), Value(std::string("b")));
  EXPECT_EQ(Value(2.0), Value(2.0));
  EXPECT_FALSE(Value(2.0) == Value(std::string("2")));
}

TEST(SchemaTest, Lookup) {
  const Schema schema({{"a", ColumnType::kNumeric},
                       {"b", ColumnType::kCategorical}});
  auto idx = schema.IndexOf("b");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(schema.IndexOf("zzz").ok());
}

TEST(TableTest, AddRowValidation) {
  Table table(Schema({{"x", ColumnType::kNumeric}}));
  EXPECT_FALSE(table.AddRow({Value(1.0), Value(2.0)}).ok());      // arity
  EXPECT_FALSE(table.AddRow({Value(std::string("no"))}).ok());    // type
  EXPECT_TRUE(table.AddRow({Value()}).ok());                      // null ok
  EXPECT_TRUE(table.AddRow({Value(7.0)}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, RankAscendingTiesEqualValues) {
  const Table table = SampleRestaurants();
  auto order = table.RankAscending("price_tier");
  ASSERT_TRUE(order.ok());
  // price tiers: 2,1,3,1,4 -> [1 3 | 0 | 2 | 4].
  EXPECT_EQ(order->ToString(), "[1 3 | 0 | 2 | 4]");
}

TEST(TableTest, RankAscendingWithGranularityBands) {
  const Table table = SampleRestaurants();
  // 10-mile bands: distances 2,8 -> band 0; 12 -> band 1; 1 -> band 0;
  // 25 -> band 2. The paper's "any distance up to ten miles is the same".
  auto order = table.RankAscending("distance_miles", 10.0);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->ToString(), "[0 1 2 | 3 | 4]");
}

TEST(TableTest, RankDescendingStars) {
  const Table table = SampleRestaurants();
  auto order = table.RankDescending("stars");
  ASSERT_TRUE(order.ok());
  // stars: 4.5,4,5,3.5,4.5 -> [2 | 0 4 | 1 | 3].
  EXPECT_EQ(order->ToString(), "[2 | 0 4 | 1 | 3]");
}

TEST(TableTest, RankNearTarget) {
  const Table table = SampleRestaurants();
  // target price 2: |2-2|=0 -> 0; |1-2|=1 -> 1,3; |3-2|=1 -> 2; |4-2|=2 -> 4.
  auto order = table.RankNear("price_tier", 2.0, 0);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->ToString(), "[0 | 1 2 3 | 4]");
}

TEST(TableTest, RankCategoricalPreference) {
  const Table table = SampleRestaurants();
  auto order = table.RankCategorical("cuisine", {"italian", "thai"});
  ASSERT_TRUE(order.ok());
  // italian: 2,4; thai: 0,1; mexican unlisted -> bottom.
  EXPECT_EQ(order->ToString(), "[2 4 | 0 1 | 3]");
  EXPECT_FALSE(table.RankCategorical("cuisine", {"thai", "thai"}).ok());
  EXPECT_FALSE(table.RankCategorical("stars", {"a"}).ok());
}

TEST(TableTest, CsvRoundTrip) {
  const Table table = SampleRestaurants();
  const std::string csv = table.ToCsv();
  auto parsed = Table::FromCsv(table.schema(), csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->num_rows(), table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    for (std::size_t c = 0; c < table.schema().num_columns(); ++c) {
      EXPECT_EQ(parsed->At(r, c), table.At(r, c)) << r << "," << c;
    }
  }
}

TEST(TableTest, CsvHandlesQuoting) {
  Table table(Schema({{"name", ColumnType::kCategorical}}));
  ASSERT_TRUE(table.AddRow({Value(std::string("a,b \"quoted\""))}).ok());
  auto parsed = Table::FromCsv(table.schema(), table.ToCsv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->At(0, 0), Value(std::string("a,b \"quoted\"")));
}

TEST(TableTest, CsvRejectsMalformed) {
  const Schema schema({{"x", ColumnType::kNumeric}});
  EXPECT_FALSE(Table::FromCsv(schema, "").ok());               // no header
  EXPECT_FALSE(Table::FromCsv(schema, "y\n1\n").ok());         // bad header
  EXPECT_FALSE(Table::FromCsv(schema, "x\nabc\n").ok());       // bad number
  EXPECT_FALSE(Table::FromCsv(schema, "x\n1,2\n").ok());       // arity
  EXPECT_FALSE(Table::FromCsv(schema, "x\n\"1\n").ok());       // quote
  EXPECT_TRUE(Table::FromCsv(schema, "x\n\n1.5\n").ok());      // blank line
}

TEST(QueryTest, DeriveRankingsAndProfiles) {
  const Table table = SampleRestaurants();
  PreferenceQuery query(table);
  query
      .Add({.column = "cuisine",
            .mode = AttributePreference::Mode::kCategoryOrder,
            .category_order = {"italian", "thai"}})
      .Add({.column = "distance_miles",
            .mode = AttributePreference::Mode::kAscending,
            .granularity = 10.0})
      .Add({.column = "stars",
            .mode = AttributePreference::Mode::kDescending});
  auto rankings = query.DeriveRankings();
  ASSERT_TRUE(rankings.ok());
  EXPECT_EQ(rankings->size(), 3u);
  const TieProfile profile = ProfileTies((*rankings)[1]);
  EXPECT_EQ(profile.num_buckets, 3u);
  EXPECT_EQ(profile.largest_bucket, 3u);
}

TEST(QueryTest, TopKReturnsPlausibleWinner) {
  const Table table = SampleRestaurants();
  PreferenceQuery query(table);
  query
      .Add({.column = "cuisine",
            .mode = AttributePreference::Mode::kCategoryOrder,
            .category_order = {"italian", "thai"}})
      .Add({.column = "distance_miles",
            .mode = AttributePreference::Mode::kAscending,
            .granularity = 10.0})
      .Add({.column = "stars",
            .mode = AttributePreference::Mode::kDescending});
  auto result = query.TopK(2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->top_rows.size(), 2u);
  // Restaurant 2 (italian, 1 mile, 5 stars) wins on every criterion.
  EXPECT_EQ(result->top_rows[0], 2);
}

TEST(QueryTest, MedrankPathAgreesOnTheWinner) {
  const Table table = SampleRestaurants();
  PreferenceQuery query(table);
  query
      .Add({.column = "cuisine",
            .mode = AttributePreference::Mode::kCategoryOrder,
            .category_order = {"italian", "thai"}})
      .Add({.column = "distance_miles",
            .mode = AttributePreference::Mode::kAscending,
            .granularity = 10.0})
      .Add({.column = "stars",
            .mode = AttributePreference::Mode::kDescending});
  auto offline = query.TopK(1);
  auto online = query.TopKMedrank(1);
  ASSERT_TRUE(offline.ok() && online.ok());
  ASSERT_EQ(online->top_rows.size(), 1u);
  EXPECT_EQ(online->top_rows[0], offline->top_rows[0]);
  EXPECT_GT(online->sorted_accesses, 0);
  EXPECT_LE(online->sorted_accesses, 15);  // at most m * n
}

TEST(QueryTest, ExplainReportsPerCriterionPositions) {
  const Table table = SampleRestaurants();
  PreferenceQuery query(table);
  query
      .Add({.column = "price_tier",
            .mode = AttributePreference::Mode::kAscending})
      .Add({.column = "stars",
            .mode = AttributePreference::Mode::kDescending})
      .Add({.column = "distance_miles",
            .mode = AttributePreference::Mode::kAscending,
            .granularity = 10.0});
  auto explanation = query.Explain(2);
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->row, 2);
  ASSERT_EQ(explanation->positions.size(), 3u);
  // price_tier: 2,1,3,1,4 -> row 2 (tier 3) sits at position 4.
  EXPECT_DOUBLE_EQ(explanation->positions[0], 4.0);
  // stars: row 2 has 5.0 -> first.
  EXPECT_DOUBLE_EQ(explanation->positions[1], 1.0);
  // distance band 0 shared with rows 0,1 -> pos 2.
  EXPECT_DOUBLE_EQ(explanation->positions[2], 2.0);
  // Lower median of {4, 1, 2} = 2.
  EXPECT_DOUBLE_EQ(explanation->median_position, 2.0);
  EXPECT_FALSE(query.Explain(99).ok());
  EXPECT_FALSE(query.Explain(-1).ok());
}

TEST(QueryTest, FiltersThenRank) {
  const Table table = SampleRestaurants();
  auto cheap = table.WhereNumericRange("price_tier", 1, 2);
  ASSERT_TRUE(cheap.ok());
  EXPECT_EQ(cheap->table.num_rows(), 3u);  // rows 0, 1, 3
  EXPECT_EQ(cheap->original_rows, (std::vector<ElementId>{0, 1, 3}));
  auto thai = table.WhereCategoryIn("cuisine", {"thai"});
  ASSERT_TRUE(thai.ok());
  EXPECT_EQ(thai->original_rows, (std::vector<ElementId>{0, 1}));
  EXPECT_FALSE(table.WhereNumericRange("cuisine", 0, 1).ok());
  EXPECT_FALSE(table.WhereCategoryIn("stars", {"5"}).ok());
}

TEST(TableTest, SelectProjectsColumns) {
  const Table table = SampleRestaurants();
  auto projected = table.Select({"stars", "cuisine"});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected->schema().num_columns(), 2u);
  EXPECT_EQ(projected->schema().column(0).name, "stars");
  EXPECT_EQ(projected->num_rows(), table.num_rows());
  EXPECT_EQ(projected->At(2, 0), Value(5.0));
  EXPECT_EQ(projected->At(2, 1), Value(std::string("italian")));
  EXPECT_FALSE(table.Select({"stars", "stars"}).ok());
  EXPECT_FALSE(table.Select({"nope"}).ok());
  EXPECT_FALSE(table.Select({}).ok());
}

TEST(QueryTest, ErrorsPropagate) {
  const Table table = SampleRestaurants();
  PreferenceQuery query(table);
  query.Add({.column = "nope"});
  EXPECT_FALSE(query.TopK(1).ok());
  PreferenceQuery empty(table);
  EXPECT_FALSE(empty.TopK(1).ok());
}

TEST(DatasetsTest, GeneratedTablesAreWellFormed) {
  Rng rng(1);
  const Table restaurants = MakeRestaurantTable(200, rng);
  EXPECT_EQ(restaurants.num_rows(), 200u);
  auto cuisines = restaurants.CategoricalLevels("cuisine");
  ASSERT_TRUE(cuisines.ok());
  EXPECT_GE(cuisines->size(), 3u);
  EXPECT_LE(cuisines->size(), 8u);

  const Table flights = MakeFlightTable(150, rng);
  auto connections = flights.RankAscending("connections");
  ASSERT_TRUE(connections.ok());
  // Few-valued: at most 4 buckets (0..3 connections).
  EXPECT_LE(connections->num_buckets(), 4u);

  const Table bib = MakeBibliographyTable(100, rng);
  auto years = bib.RankDescending("year");
  ASSERT_TRUE(years.ok());
  EXPECT_LE(years->num_buckets(), 25u);

  const Table awards = MakeAwardsTable(150, rng);
  auto durations = awards.RankAscending("duration_months");
  ASSERT_TRUE(durations.ok());
  EXPECT_LE(durations->num_buckets(), 5u);  // five-valued attribute
  auto directorates = awards.CategoricalLevels("directorate");
  ASSERT_TRUE(directorates.ok());
  EXPECT_LE(directorates->size(), 7u);
}

}  // namespace
}  // namespace rankties
