// Tests for the src/obs observability subsystem: counter/histogram
// exactness under concurrent writers, span nesting, JSON export round-trip,
// and the runtime-disabled / compiled-out behavior. The whole file compiles
// in both build modes; tests that need live collection are gated on
// RANKTIES_OBS_DISABLED and replaced by no-op-behavior checks there.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"

namespace rankties {
namespace {

// Minimal structural JSON sanity check: balanced braces/brackets outside
// strings. The exporter is hand-rolled, so malformed nesting is the
// realistic failure mode.
bool BalancedJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

bool Contains(const std::string& text, const std::string& needle) {
  return text.find(needle) != std::string::npos;
}

#ifndef RANKTIES_OBS_DISABLED

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetAll();
    obs::TraceRecorder::Global().Clear();
    obs::SetEnabled(true);
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::TraceRecorder::Global().Stop();
  }
};

TEST_F(ObsTest, CounterExactUnderConcurrentWriters) {
  obs::Counter* counter = obs::GetCounter("test.concurrent_counter");
  constexpr int kThreads = 4;
  constexpr std::int64_t kIncrements = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (std::int64_t i = 0; i < kIncrements; ++i) counter->Add(1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kIncrements);
}

TEST_F(ObsTest, HistogramExactUnderConcurrentWriters) {
  obs::Histogram* histogram = obs::GetHistogram("test.concurrent_histogram");
  constexpr int kThreads = 4;
  constexpr std::int64_t kRecords = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram] {
      for (std::int64_t i = 0; i < kRecords; ++i) histogram->Record(i % 7);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const obs::HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, kThreads * kRecords);
  std::int64_t per_thread = 0;
  for (std::int64_t i = 0; i < kRecords; ++i) per_thread += i % 7;
  EXPECT_EQ(snapshot.sum, kThreads * per_thread);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  EXPECT_EQ(obs::Histogram::BucketIndex(-5), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(obs::Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(obs::Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(obs::Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(obs::Histogram::BucketUpperEdge(1), 1);
  EXPECT_EQ(obs::Histogram::BucketUpperEdge(2), 3);
  EXPECT_EQ(obs::Histogram::BucketUpperEdge(3), 7);
  // Every representable value lands in the bucket whose edge bounds it.
  for (const std::int64_t v : {1LL, 2LL, 5LL, 100LL, 1LL << 40}) {
    const std::size_t b = obs::Histogram::BucketIndex(v);
    EXPECT_LE(v, obs::Histogram::BucketUpperEdge(b)) << v;
  }
}

TEST_F(ObsTest, RegistryReturnsStableHandles) {
  obs::Counter* first = obs::GetCounter("test.stable_handle");
  obs::Counter* second = obs::GetCounter("test.stable_handle");
  EXPECT_EQ(first, second);
  obs::Histogram* h1 = obs::GetHistogram("test.stable_histogram");
  obs::Histogram* h2 = obs::GetHistogram("test.stable_histogram");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(first->name(), "test.stable_handle");
}

TEST_F(ObsTest, RuntimeDisabledDropsWrites) {
  obs::Counter* counter = obs::GetCounter("test.runtime_disabled");
  obs::SetEnabled(false);
  counter->Add(17);
  EXPECT_EQ(counter->Value(), 0);
  obs::SetEnabled(true);
  counter->Add(17);
  EXPECT_EQ(counter->Value(), 17);
}

TEST_F(ObsTest, MacrosCacheHandlesAndAccumulate) {
  for (int i = 0; i < 3; ++i) {
    RANKTIES_OBS_COUNT("test.macro_counter", 5);
    RANKTIES_OBS_RECORD("test.macro_histogram", 2);
  }
  EXPECT_EQ(obs::GetCounter("test.macro_counter")->Value(), 15);
  EXPECT_EQ(obs::GetHistogram("test.macro_histogram")->Snapshot().count, 3);
}

TEST_F(ObsTest, ScopedHistogramTimerRecordsOneSample) {
  obs::Histogram* histogram = obs::GetHistogram("test.scoped_timer");
  { obs::ScopedHistogramTimer timer(histogram); }
  const obs::HistogramSnapshot snapshot = histogram->Snapshot();
  EXPECT_EQ(snapshot.count, 1);
  EXPECT_GE(snapshot.sum, 0);
}

TEST_F(ObsTest, SpanNestingRecordsParentLinks) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Start();
  {
    obs::TraceSpan outer("test.outer");
    {
      obs::TraceSpan inner("test.inner");
      inner.SetItems(42);
    }
    {
      obs::TraceSpan sibling("test.sibling");
    }
  }
  recorder.Stop();
  const std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Spans land in completion order: inner, sibling, outer.
  const obs::SpanRecord& inner = spans[0];
  const obs::SpanRecord& sibling = spans[1];
  const obs::SpanRecord& outer = spans[2];
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_STREQ(sibling.name, "test.sibling");
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(sibling.parent, outer.id);
  EXPECT_EQ(inner.items, 42);
  EXPECT_EQ(outer.items, -1);
  EXPECT_GE(outer.duration_ns, inner.duration_ns);
  EXPECT_EQ(inner.thread, outer.thread);
}

TEST_F(ObsTest, SpansOutsideRecordingAreDropped) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Clear();
  {
    obs::TraceSpan span("test.not_recording");
  }
  EXPECT_EQ(recorder.size(), 0u);
}

TEST_F(ObsTest, JsonExportRoundTrip) {
  obs::GetCounter("test.export_counter")->Add(123);
  obs::GetHistogram("test.export_histogram")->Record(5);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Start();
  {
    obs::TraceSpan span("test.export_span");
    span.SetItems(7);
  }
  recorder.Stop();

  const std::string doc = obs::TraceJsonDocument();
  EXPECT_TRUE(BalancedJson(doc)) << doc;
  EXPECT_TRUE(Contains(doc, "\"schema\": \"rankties-trace-v1\""));
  EXPECT_TRUE(Contains(doc, "\"clock\": \"steady_ns\""));
  EXPECT_TRUE(Contains(doc, "\"dropped_spans\": 0"));
  EXPECT_TRUE(Contains(doc, "\"name\": \"test.export_span\""));
  EXPECT_TRUE(Contains(doc, "\"items\": 7"));
  EXPECT_TRUE(Contains(doc, "\"test.export_counter\": 123"));
  EXPECT_TRUE(Contains(doc, "\"test.export_histogram\""));

  const std::string metrics = obs::MetricsJsonObject();
  EXPECT_TRUE(BalancedJson(metrics)) << metrics;
  EXPECT_TRUE(Contains(metrics, "\"counters\""));
  EXPECT_TRUE(Contains(metrics, "\"histograms\""));
  EXPECT_TRUE(Contains(metrics, "\"test.export_counter\": 123"));
}

TEST_F(ObsTest, ResetAllZeroesEveryMetric) {
  obs::GetCounter("test.reset_counter")->Add(9);
  obs::GetHistogram("test.reset_histogram")->Record(9);
  obs::Registry::Global().ResetAll();
  EXPECT_EQ(obs::GetCounter("test.reset_counter")->Value(), 0);
  EXPECT_EQ(obs::GetHistogram("test.reset_histogram")->Snapshot().count, 0);
}

#else  // RANKTIES_OBS_DISABLED

TEST(ObsDisabledTest, ApiIsInertButValid) {
  obs::SetEnabled(true);  // must be a no-op
  EXPECT_FALSE(obs::Enabled());
  obs::Counter* counter = obs::GetCounter("test.disabled_counter");
  counter->Add(17);
  EXPECT_EQ(counter->Value(), 0);
  obs::Histogram* histogram = obs::GetHistogram("test.disabled_histogram");
  histogram->Record(5);
  EXPECT_EQ(histogram->Snapshot().count, 0);
  RANKTIES_OBS_COUNT("test.disabled_macro", 1);
  RANKTIES_OBS_RECORD("test.disabled_macro_h", 1);
  EXPECT_TRUE(obs::Registry::Global().CounterSnapshots().empty());
}

TEST(ObsDisabledTest, TracingIsInertButValid) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  recorder.Start();
  {
    obs::TraceSpan span("test.disabled_span");
    span.SetItems(1);
  }
  recorder.Stop();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_FALSE(recorder.recording());
}

TEST(ObsDisabledTest, ExportsStayValidJson) {
  const std::string doc = obs::TraceJsonDocument();
  EXPECT_TRUE(BalancedJson(doc)) << doc;
  EXPECT_TRUE(Contains(doc, "\"schema\": \"rankties-trace-v1\""));
  const std::string metrics = obs::MetricsJsonObject();
  EXPECT_TRUE(BalancedJson(metrics)) << metrics;
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace
}  // namespace rankties
