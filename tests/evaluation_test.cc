#include "gen/evaluation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace rankties {
namespace {

TEST(TopKOverlapTest, IdenticalAndDisjoint) {
  const Permutation id(10);
  EXPECT_DOUBLE_EQ(TopKOverlap(id, id, 5), 1.0);
  // Reverse: top-5 of reverse = elements 5..9 — disjoint from 0..4.
  EXPECT_DOUBLE_EQ(TopKOverlap(id, id.Reverse(), 5), 0.0);
  // Full-domain k always overlaps completely.
  EXPECT_DOUBLE_EQ(TopKOverlap(id, id.Reverse(), 10), 1.0);
}

TEST(TopKOverlapTest, PartialOverlap) {
  const Permutation a = Permutation::FromOrder({0, 1, 2, 3}).value();
  const Permutation b = Permutation::FromOrder({1, 0, 3, 2}).value();
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 2), 1.0);   // {0,1} both
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 1), 0.0);   // 0 vs 1
  EXPECT_DOUBLE_EQ(TopKOverlap(a, b, 3), 2.0 / 3.0);
}

TEST(TopKOverlapTest, ClampsAndEdges) {
  const Permutation id(4);
  EXPECT_DOUBLE_EQ(TopKOverlap(id, id, 99), 1.0);  // clamped to n
  EXPECT_DOUBLE_EQ(TopKOverlap(id, id, 0), 0.0);
  const Permutation empty(0);
  EXPECT_DOUBLE_EQ(TopKOverlap(empty, empty, 3), 0.0);
}

TEST(PrefixJaccardTest, BucketOrders) {
  const BucketOrder a =
      BucketOrder::FromBuckets(5, {{0, 1}, {2}, {3, 4}}).value();
  const BucketOrder b =
      BucketOrder::FromBuckets(5, {{1, 2}, {0}, {3, 4}}).value();
  // Prefix 2 canonical: a -> {0,1}; b -> {1,2}: intersection 1, union 3.
  EXPECT_DOUBLE_EQ(PrefixJaccard(a, b, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(PrefixJaccard(a, a, 3), 1.0);
  EXPECT_DOUBLE_EQ(PrefixJaccard(a, b, 0), 0.0);
}

TEST(WinnerReciprocalRankTest, Values) {
  const Permutation truth(6);
  const Permutation shifted =
      Permutation::FromOrder({3, 0, 1, 2, 4, 5}).value();
  // truth winner = 0; in `shifted` it sits at rank 2 (1-based).
  EXPECT_DOUBLE_EQ(WinnerReciprocalRank(shifted, truth), 0.5);
  EXPECT_DOUBLE_EQ(WinnerReciprocalRank(truth, truth), 1.0);
}

}  // namespace
}  // namespace rankties
