#include "access/nra_median.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/median_rank.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

// The returned set must be a genuine top-k of the offline lower-median
// scores: its worst member is no worse than the best non-member.
void ExpectExactTopKSet(const std::vector<BucketOrder>& inputs,
                        const NraMedianResult& result, std::size_t k) {
  auto offline = MedianRankScoresQuad(inputs, MedianPolicy::kLower);
  ASSERT_TRUE(offline.ok());
  ASSERT_EQ(result.top.size(), k);
  std::set<ElementId> chosen(result.top.begin(), result.top.end());
  ASSERT_EQ(chosen.size(), k) << "duplicate winners";
  std::int64_t worst_in = std::numeric_limits<std::int64_t>::min();
  std::int64_t best_out = std::numeric_limits<std::int64_t>::max();
  for (std::size_t e = 0; e < offline->size(); ++e) {
    if (chosen.count(static_cast<ElementId>(e))) {
      worst_in = std::max(worst_in, (*offline)[e]);
    } else {
      best_out = std::min(best_out, (*offline)[e]);
    }
  }
  EXPECT_LE(worst_in, best_out);
}

TEST(NraMedianTest, ExactTopKOnRandomPartialRankings) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 3 + static_cast<std::size_t>(trial % 4);
    std::vector<BucketOrder> inputs;
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(25, rng));
    }
    for (std::size_t k : {1u, 3u, 10u, 25u}) {
      auto result = NraMedianTopK(inputs, k);
      ASSERT_TRUE(result.ok()) << result.status();
      ExpectExactTopKSet(inputs, *result, k);
    }
  }
}

TEST(NraMedianTest, ExactTopKOnFewValuedInputs) {
  // Heavy ties: the regime where majority-MEDRANK's depth order deviates
  // most from the median order — NRA must still be exact.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 5; ++i) {
      inputs.push_back(RandomFewValued(40, 8.0, rng));
    }
    auto result = NraMedianTopK(inputs, 5);
    ASSERT_TRUE(result.ok());
    ExpectExactTopKSet(inputs, *result, 5);
  }
}

TEST(NraMedianTest, SublinearAccessOnCorrelatedInputs) {
  Rng rng(3);
  const std::size_t n = 2000;
  const Permutation center(n);
  std::vector<BucketOrder> inputs;
  for (int i = 0; i < 5; ++i) {
    inputs.push_back(
        BucketOrder::FromPermutation(MallowsSample(center, 0.3, rng)));
  }
  auto result = NraMedianTopK(inputs, 3);
  ASSERT_TRUE(result.ok());
  ExpectExactTopKSet(inputs, *result, 3);
  EXPECT_LT(result->total_accesses, static_cast<std::int64_t>(5 * n / 2));
}

TEST(NraMedianTest, EvenVoterCountUsesLowerMedian) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<BucketOrder> inputs;
    for (int i = 0; i < 4; ++i) inputs.push_back(RandomBucketOrder(15, rng));
    auto result = NraMedianTopK(inputs, 4);
    ASSERT_TRUE(result.ok());
    ExpectExactTopKSet(inputs, *result, 4);
  }
}

TEST(NraMedianTest, FullDomainReturnsEverything) {
  Rng rng(5);
  std::vector<BucketOrder> inputs = {RandomBucketOrder(8, rng),
                                     RandomBucketOrder(8, rng),
                                     RandomBucketOrder(8, rng)};
  auto result = NraMedianTopK(inputs, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->top.size(), 8u);
}

TEST(NraMedianTest, Validation) {
  EXPECT_FALSE(NraMedianTopK(std::vector<BucketOrder>{}, 1).ok());
  std::vector<BucketOrder> mixed = {BucketOrder::SingleBucket(3),
                                    BucketOrder::SingleBucket(4)};
  EXPECT_FALSE(NraMedianTopK(mixed, 1).ok());
  std::vector<BucketOrder> small = {BucketOrder::SingleBucket(3)};
  EXPECT_FALSE(NraMedianTopK(small, 5).ok());
  auto empty = NraMedianTopK(small, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->top.empty());
  EXPECT_EQ(empty->total_accesses, 0);
}

}  // namespace
}  // namespace rankties
