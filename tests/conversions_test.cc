#include "rank/conversions.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/footrule.h"
#include "core/pair_counts.h"
#include "core/hausdorff.h"
#include "core/metric_registry.h"
#include "core/profile_metrics.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(QuantizeScoresTest, BandsAndValidation) {
  auto order = QuantizeScores({0.5, 9.9, 10.1, 25.0}, 10.0);
  ASSERT_TRUE(order.ok());
  // Bands: 0, 0, 1, 2.
  EXPECT_EQ(order->ToString(), "[0 1 | 2 | 3]");
  EXPECT_FALSE(QuantizeScores({1.0}, 0.0).ok());
  EXPECT_FALSE(QuantizeScores({1.0}, -3.0).ok());
}

TEST(QuantizeScoresTest, NonFiniteScoresSortLast) {
  auto order = QuantizeScores(
      {1.0, std::numeric_limits<double>::infinity(), 2.0}, 1.0);
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(order->BucketOf(1), static_cast<BucketIndex>(
                                    order->num_buckets() - 1));
}

TEST(RankByDistanceTest, ExactAndBanded) {
  auto exact = RankByDistance({1.0, 5.0, 9.0}, 5.0, 0.0);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->ToString(), "[1 | 0 2]");
  auto banded = RankByDistance({1.0, 5.0, 9.0}, 5.0, 10.0);
  ASSERT_TRUE(banded.ok());
  EXPECT_EQ(banded->num_buckets(), 1u);
  EXPECT_FALSE(RankByDistance({1.0}, 0.0, -1.0).ok());
}

TEST(FromScoresDescendingTest, LargerIsBetter) {
  const BucketOrder order = FromScoresDescending({1.0, 9.0, 9.0, 4.0});
  EXPECT_EQ(order.ToString(), "[1 2 | 3 | 0]");
}

TEST(MergeBucketsTest, MergesRunsAndValidates) {
  auto fine = BucketOrder::FromBuckets(5, {{0}, {1}, {2}, {3}, {4}});
  ASSERT_TRUE(fine.ok());
  auto merged = MergeBuckets(*fine, {2, 1, 2});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->ToString(), "[0 1 | 2 | 3 4]");
  EXPECT_FALSE(MergeBuckets(*fine, {2, 2}).ok());     // doesn't cover
  EXPECT_FALSE(MergeBuckets(*fine, {0, 5}).ok());     // zero run
  // Merging is a coarsening: the original refines the result.
  EXPECT_TRUE(IsRefinementOf(*fine, *merged));
}

TEST(ConsecutiveBlocksTest, BuildsAndValidates) {
  auto blocks = ConsecutiveBlocks(6, {2, 1, 3});
  ASSERT_TRUE(blocks.ok());
  EXPECT_EQ(blocks->ToString(), "[0 1 | 2 | 3 4 5]");
  EXPECT_FALSE(ConsecutiveBlocks(6, {2, 2}).ok());
  EXPECT_FALSE(ConsecutiveBlocks(6, {0, 6}).ok());
}

TEST(RelabelTest, MetricsAreRelabelInvariant) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 12;
    const BucketOrder x = RandomBucketOrder(n, rng);
    const BucketOrder y = RandomBucketOrder(n, rng);
    const Permutation relabel = Permutation::Random(n, rng);
    const BucketOrder xr = Relabel(x, relabel);
    const BucketOrder yr = Relabel(y, relabel);
    for (MetricKind kind : AllMetricKinds()) {
      ASSERT_EQ(ComputeMetric(kind, x, y), ComputeMetric(kind, xr, yr))
          << MetricName(kind);
    }
  }
}

TEST(RelabelTest, IdentityAndComposition) {
  Rng rng(2);
  const BucketOrder x = RandomBucketOrder(8, rng);
  EXPECT_EQ(Relabel(x, Permutation(8)), x);
  const Permutation p = Permutation::Random(8, rng);
  // Relabel by p then by p's inverse returns the original.
  EXPECT_EQ(Relabel(Relabel(x, p), p.Inverse()), x);
}

TEST(ConcatenateTest, StructureAndAdditivity) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const BucketOrder a1 = RandomBucketOrder(6, rng);
    const BucketOrder a2 = RandomBucketOrder(6, rng);
    const BucketOrder b1 = RandomBucketOrder(5, rng);
    const BucketOrder b2 = RandomBucketOrder(5, rng);
    const BucketOrder c1 = Concatenate(a1, b1);
    const BucketOrder c2 = Concatenate(a2, b2);
    EXPECT_EQ(c1.n(), 11u);
    EXPECT_EQ(c1.num_buckets(), a1.num_buckets() + b1.num_buckets());
    // Cross pairs are concordant (block A before block B in both) and
    // positions shift uniformly, so the PROFILE metrics are exactly
    // additive across concatenation.
    EXPECT_EQ(TwiceKprof(c1, c2), TwiceKprof(a1, a2) + TwiceKprof(b1, b2));
    EXPECT_EQ(TwiceFprof(c1, c2), TwiceFprof(a1, a2) + TwiceFprof(b1, b2));
    // The HAUSDORFF metrics are only subadditive: KHaus = |U| + max(|S|,|T|)
    // and max does not distribute over the blockwise sums. Prop. 6 gives
    // the exact concatenated value from the pair counts.
    EXPECT_LE(KHausdorff(c1, c2),
              KHausdorff(a1, a2) + KHausdorff(b1, b2));
    EXPECT_LE(TwiceFHausdorff(c1, c2),
              TwiceFHausdorff(a1, a2) + TwiceFHausdorff(b1, b2));
    const PairCounts ca = ComputePairCounts(a1, a2);
    const PairCounts cb = ComputePairCounts(b1, b2);
    EXPECT_EQ(KHausdorff(c1, c2),
              ca.discordant + cb.discordant +
                  std::max(ca.tied_sigma_only + cb.tied_sigma_only,
                           ca.tied_tau_only + cb.tied_tau_only));
    // And Hausdorff still dominates its profile twin on the concatenation.
    EXPECT_GE(2 * KHausdorff(c1, c2), TwiceKprof(c1, c2));
  }
}

TEST(ConcatenateTest, EmptySides) {
  const BucketOrder a = BucketOrder::SingleBucket(3);
  const BucketOrder empty;
  EXPECT_EQ(Concatenate(a, empty), a);
  EXPECT_EQ(Concatenate(empty, a), a);
}

}  // namespace
}  // namespace rankties
