#include "core/batch_engine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/best_input.h"
#include "core/cost.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace rankties {
namespace {

std::vector<BucketOrder> MakeLists(std::size_t m, std::size_t n,
                                   std::uint64_t seed) {
  Rng rng(seed);
  const Permutation center = Permutation::Random(n, rng);
  std::vector<BucketOrder> lists;
  for (std::size_t i = 0; i < m; ++i) {
    if (i % 2 == 0) {
      lists.push_back(QuantizedMallows(center, 0.6, 4, rng));
    } else {
      lists.push_back(RandomFewValued(n, 3.0, rng));
    }
  }
  return lists;
}

// Restores the default global pool after each test so thread-count tweaks
// never leak into other test cases.
class BatchEngineTest : public testing::Test {
 protected:
  ~BatchEngineTest() override { ThreadPool::SetGlobalThreads(0); }
};

TEST_F(BatchEngineTest, DistanceMatrixMatchesPairwiseComputeMetric) {
  const std::vector<BucketOrder> lists = MakeLists(9, 24, 1);
  for (MetricKind kind : AllMetricKinds()) {
    const auto matrix = DistanceMatrix(kind, lists);
    ASSERT_EQ(matrix.size(), lists.size());
    for (std::size_t i = 0; i < lists.size(); ++i) {
      ASSERT_EQ(matrix[i].size(), lists.size());
      for (std::size_t j = 0; j < lists.size(); ++j) {
        EXPECT_EQ(matrix[i][j], ComputeMetric(kind, lists[i], lists[j]))
            << MetricName(kind) << " entry (" << i << ", " << j << ")";
      }
    }
  }
}

TEST_F(BatchEngineTest, DistanceMatrixIsSymmetricWithZeroDiagonal) {
  const std::vector<BucketOrder> lists = MakeLists(7, 16, 2);
  for (MetricKind kind : AllMetricKinds()) {
    const auto matrix = DistanceMatrix(kind, lists);
    for (std::size_t i = 0; i < lists.size(); ++i) {
      EXPECT_EQ(matrix[i][i], 0.0);
      for (std::size_t j = 0; j < lists.size(); ++j) {
        EXPECT_EQ(matrix[i][j], matrix[j][i]);
      }
    }
  }
}

TEST_F(BatchEngineTest, DegenerateSizes) {
  EXPECT_TRUE(DistanceMatrix(MetricKind::kKprof, {}).empty());
  const auto one =
      DistanceMatrix(MetricKind::kKprof, {BucketOrder::SingleBucket(5)});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0][0], 0.0);
  EXPECT_TRUE(
      DistancesToAll(MetricKind::kFprof, BucketOrder::SingleBucket(3), {})
          .empty());
}

TEST_F(BatchEngineTest, DeterministicAcrossThreadCounts) {
  const std::vector<BucketOrder> lists = MakeLists(12, 40, 3);
  for (MetricKind kind : AllMetricKinds()) {
    ThreadPool::SetGlobalThreads(1);
    const auto reference = DistanceMatrix(kind, lists);
    const auto ref_totals =
        DistancesToAll(kind, lists.front(), lists);
    for (const std::size_t threads : {2u, 3u, 5u, 8u}) {
      ThreadPool::SetGlobalThreads(threads);
      EXPECT_EQ(DistanceMatrix(kind, lists), reference)
          << MetricName(kind) << " with " << threads << " threads";
      EXPECT_EQ(DistancesToAll(kind, lists.front(), lists), ref_totals);
    }
  }
}

// Sweeps m across tile-edge boundaries (below one tile, exact multiples,
// one past a multiple) so every tiling shape — single tile, ragged edge
// tiles, many full tiles — is exercised against both the legacy per-pair
// path and the serial reference.
TEST_F(BatchEngineTest, TiledMatrixMatchesUnpreparedAcrossTileEdges) {
  for (const std::size_t m : {2u, 3u, 5u, 17u, 33u, 65u}) {
    const std::vector<BucketOrder> lists =
        MakeLists(m, 12, 100 + static_cast<std::uint64_t>(m));
    for (MetricKind kind : AllMetricKinds()) {
      ThreadPool::SetGlobalThreads(1);
      const auto reference = DistanceMatrixUnprepared(kind, lists);
      EXPECT_EQ(DistanceMatrix(kind, lists), reference)
          << MetricName(kind) << " m=" << m << " serial";
      ThreadPool::SetGlobalThreads(7);
      EXPECT_EQ(DistanceMatrix(kind, lists), reference)
          << MetricName(kind) << " m=" << m << " 7 threads";
      EXPECT_EQ(DistanceMatrixUnprepared(kind, lists), reference)
          << MetricName(kind) << " m=" << m << " unprepared, 7 threads";
    }
  }
}

TEST_F(BatchEngineTest, DistancesToAllMatchesTotalDistance) {
  const std::vector<BucketOrder> lists = MakeLists(11, 20, 4);
  const BucketOrder candidate = lists[5];
  for (MetricKind kind : AllMetricKinds()) {
    const std::vector<double> distances =
        DistancesToAll(kind, candidate, lists);
    double total = 0.0;
    for (const double d : distances) total += d;
    EXPECT_EQ(total, TotalDistance(kind, candidate, lists));
    EXPECT_EQ(total, TotalDistanceParallel(kind, candidate, lists));
  }
}

TEST_F(BatchEngineTest, BestOfCandidatesAgreesWithSerialArgmin) {
  const std::vector<BucketOrder> lists = MakeLists(10, 18, 5);
  const std::vector<BucketOrder> candidates = MakeLists(6, 18, 6);
  for (MetricKind kind : AllMetricKinds()) {
    const auto best = BestOfCandidates(kind, candidates, lists);
    ASSERT_TRUE(best.ok()) << best.status();
    ASSERT_EQ(best->totals.size(), candidates.size());
    std::size_t expected_index = 0;
    double expected_cost = 0.0;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      double total = 0.0;
      for (const BucketOrder& list : lists) {
        total += ComputeMetric(kind, candidates[c], list);
      }
      EXPECT_EQ(best->totals[c], total);
      if (c == 0 || total < expected_cost) {
        expected_index = c;
        expected_cost = total;
      }
    }
    EXPECT_EQ(best->index, expected_index);
    EXPECT_EQ(best->total_cost, expected_cost);
  }
}

TEST_F(BatchEngineTest, BestOfCandidatesRejectsEmptySides) {
  const std::vector<BucketOrder> lists = MakeLists(3, 8, 7);
  EXPECT_FALSE(BestOfCandidates(MetricKind::kKprof, {}, lists).ok());
  EXPECT_FALSE(BestOfCandidates(MetricKind::kKprof, lists, {}).ok());
}

TEST_F(BatchEngineTest, BestInputAggregateStillPicksFirstMinimizer) {
  // Two identical inputs tie on total cost; the winner must be index 0
  // (the old serial scan's tie-break), at every thread count.
  Rng rng(8);
  const BucketOrder a = RandomFewValued(12, 3.0, rng);
  const BucketOrder b = RandomFewValued(12, 3.0, rng);
  const std::vector<BucketOrder> inputs = {a, a, b};
  for (const std::size_t threads : {1u, 4u}) {
    ThreadPool::SetGlobalThreads(threads);
    const auto best = BestInputAggregate(inputs, MetricKind::kFprof);
    ASSERT_TRUE(best.ok()) << best.status();
    EXPECT_EQ(best->index, 0u);
  }
}

TEST_F(BatchEngineTest, ParallelForPropagatesExceptions) {
  ThreadPool::SetGlobalThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [](std::size_t lo, std::size_t) {
                    if (lo >= 500) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must stay usable after an exception drained the loop.
  std::vector<int> marks(100, 0);
  ParallelFor(0, marks.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) marks[i] = 1;
  });
  for (const int mark : marks) EXPECT_EQ(mark, 1);
}

}  // namespace
}  // namespace rankties
