#include "db/indexed_catalog.h"

#include <gtest/gtest.h>

#include "db/query_parser.h"
#include "gen/datasets.h"
#include "util/rng.h"

namespace rankties {
namespace {

TEST(IndexedCatalogTest, BuildsIndexesForNumericColumnsOnly) {
  Rng rng(1);
  const Table table = MakeRestaurantTable(100, rng);
  auto catalog = IndexedCatalog::Build(table);
  ASSERT_TRUE(catalog.ok());
  EXPECT_TRUE(catalog->IndexOf("distance_miles").ok());
  EXPECT_TRUE(catalog->IndexOf("stars").ok());
  EXPECT_FALSE(catalog->IndexOf("cuisine").ok());
  EXPECT_FALSE(catalog->IndexOf("bogus").ok());
}

TEST(IndexedCatalogTest, AgreesWithUnindexedMedrankExactly) {
  Rng rng(2);
  const Table table = MakeRestaurantTable(800, rng);
  auto catalog = IndexedCatalog::Build(table);
  ASSERT_TRUE(catalog.ok());
  auto prefs = ParsePreferences(
      table.schema(),
      "cuisine:thai>italian distance_miles:asc~10 price_tier:asc stars:desc");
  ASSERT_TRUE(prefs.ok());

  PreferenceQuery query(table);
  for (const AttributePreference& pref : *prefs) query.Add(pref);
  auto direct = query.TopKMedrank(10);
  auto indexed = catalog->TopKMedrank(*prefs, 10);
  ASSERT_TRUE(direct.ok() && indexed.ok());
  EXPECT_EQ(indexed->top_rows, direct->top_rows);
  EXPECT_EQ(indexed->sorted_accesses, direct->sorted_accesses);
}

TEST(IndexedCatalogTest, NearQueriesThroughTheIndex) {
  Rng rng(3);
  const Table table = MakeFlightTable(500, rng);
  auto catalog = IndexedCatalog::Build(table);
  ASSERT_TRUE(catalog.ok());
  auto prefs = ParsePreferences(
      table.schema(),
      "price_usd:asc~50 connections:asc departure_hour:near=9~2");
  ASSERT_TRUE(prefs.ok());
  PreferenceQuery query(table);
  for (const AttributePreference& pref : *prefs) query.Add(pref);
  auto direct = query.TopKMedrank(5);
  auto indexed = catalog->TopKMedrank(*prefs, 5);
  ASSERT_TRUE(direct.ok() && indexed.ok());
  EXPECT_EQ(indexed->top_rows, direct->top_rows);
}

TEST(IndexedCatalogTest, ManyQueriesOverOneBuild) {
  // The point of the architecture: one Build, many query shapes.
  Rng rng(4);
  const Table table = MakeFlightTable(300, rng);
  auto catalog = IndexedCatalog::Build(table);
  ASSERT_TRUE(catalog.ok());
  const char* queries[] = {
      "price_usd:asc",
      "price_usd:desc duration_hours:asc",
      "departure_hour:near=7 connections:asc",
      "airline:blueway price_usd:asc~100",
  };
  for (const char* text : queries) {
    auto prefs = ParsePreferences(table.schema(), text);
    ASSERT_TRUE(prefs.ok()) << text;
    auto result = catalog->TopKMedrank(*prefs, 3);
    ASSERT_TRUE(result.ok()) << text;
    EXPECT_EQ(result->top_rows.size(), 3u) << text;
  }
}

TEST(IndexedCatalogTest, Validation) {
  Rng rng(5);
  const Table table = MakeRestaurantTable(50, rng);
  auto catalog = IndexedCatalog::Build(table);
  ASSERT_TRUE(catalog.ok());
  EXPECT_FALSE(catalog->TopKMedrank({}, 3).ok());
  AttributePreference bad;
  bad.column = "nope";
  bad.mode = AttributePreference::Mode::kAscending;
  EXPECT_FALSE(catalog->TopKMedrank({bad}, 3).ok());
}

}  // namespace
}  // namespace rankties
