#include "core/correlation.h"

#include <gtest/gtest.h>

#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

BucketOrder Must(StatusOr<BucketOrder> order) {
  EXPECT_TRUE(order.ok()) << order.status();
  return std::move(order).value();
}

TEST(TauBTest, PerfectAgreementAndReversal) {
  Rng rng(1);
  const Permutation p = Permutation::Random(10, rng);
  const BucketOrder o = BucketOrder::FromPermutation(p);
  auto same = KendallTauB(o, o);
  ASSERT_TRUE(same.ok());
  EXPECT_DOUBLE_EQ(*same, 1.0);
  auto rev = KendallTauB(o, o.Reverse());
  ASSERT_TRUE(rev.ok());
  EXPECT_DOUBLE_EQ(*rev, -1.0);
}

TEST(TauBTest, UndefinedOnSingleBucket) {
  const BucketOrder tied = BucketOrder::SingleBucket(5);
  const BucketOrder full = BucketOrder::FromPermutation(Permutation(5));
  auto result = KendallTauB(tied, full);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUndefined);
}

TEST(TauBTest, BoundedInUnitInterval) {
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const BucketOrder a = RandomBucketOrder(10, rng);
    const BucketOrder b = RandomBucketOrder(10, rng);
    auto t = KendallTauB(a, b);
    if (!t.ok()) continue;
    EXPECT_GE(*t, -1.0 - 1e-12);
    EXPECT_LE(*t, 1.0 + 1e-12);
  }
}

TEST(GammaTest, HandValues) {
  // sigma = [0 | 1 | 2], tau = [0 | 2 | 1]: C=2 ({0,1},{0,2}), D=1 ({1,2}).
  const BucketOrder s = Must(BucketOrder::FromBuckets(3, {{0}, {1}, {2}}));
  const BucketOrder t = Must(BucketOrder::FromBuckets(3, {{0}, {2}, {1}}));
  auto gamma = GoodmanKruskalGamma(s, t);
  ASSERT_TRUE(gamma.ok());
  EXPECT_DOUBLE_EQ(*gamma, (2.0 - 1.0) / 3.0);
}

TEST(GammaTest, UndefinedWhenEveryPairTiedSomewhere) {
  // The paper's "serious disadvantage" of Goodman–Kruskal (§1 related
  // work): with sigma tying everything, C + D = 0 and gamma has no value.
  const BucketOrder tied = BucketOrder::SingleBucket(4);
  const BucketOrder full = BucketOrder::FromPermutation(Permutation(4));
  auto gamma = GoodmanKruskalGamma(tied, full);
  EXPECT_FALSE(gamma.ok());
  EXPECT_EQ(gamma.status().code(), StatusCode::kUndefined);

  // Complementary tie patterns also kill it: every pair tied in one input.
  const BucketOrder left = Must(BucketOrder::FromBuckets(4, {{0, 1}, {2, 3}}));
  const BucketOrder right = Must(BucketOrder::FromBuckets(4, {{0, 2}, {1, 3}}));
  // Pairs {0,1},{2,3} tied in left; {0,2},{1,3} tied in right; {0,3},{1,2}
  // untied in both -> gamma IS defined here. Verify definedness logic.
  EXPECT_TRUE(GoodmanKruskalGamma(left, right).ok());
}

TEST(GammaTest, IgnoresTiesEntirely) {
  // Gamma only looks at untied pairs: adding agreeing ties leaves it at 1.
  const BucketOrder a = Must(BucketOrder::FromBuckets(4, {{0}, {1, 2}, {3}}));
  const BucketOrder b = Must(BucketOrder::FromBuckets(4, {{0}, {1}, {2}, {3}}));
  auto gamma = GoodmanKruskalGamma(a, b);
  ASSERT_TRUE(gamma.ok());
  EXPECT_DOUBLE_EQ(*gamma, 1.0);
}

TEST(SignificanceTest, StrongAgreementIsSignificant) {
  const BucketOrder id = BucketOrder::FromPermutation(Permutation(20));
  auto same = KendallSignificance(id, id);
  ASSERT_TRUE(same.ok());
  EXPECT_GT(same->z, 4.0);
  EXPECT_LT(same->p_value, 1e-4);
  auto rev = KendallSignificance(id, id.Reverse());
  ASSERT_TRUE(rev.ok());
  EXPECT_LT(rev->z, -4.0);
  EXPECT_LT(rev->p_value, 1e-4);
}

TEST(SignificanceTest, IndependentRankingsAreUsuallyInsignificant) {
  Rng rng(17);
  int rejected = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const BucketOrder a =
        BucketOrder::FromPermutation(Permutation::Random(15, rng));
    const BucketOrder b =
        BucketOrder::FromPermutation(Permutation::Random(15, rng));
    auto result = KendallSignificance(a, b);
    ASSERT_TRUE(result.ok());
    if (result->p_value < 0.05) ++rejected;
  }
  // ~5% false positives expected; allow generous slack.
  EXPECT_LT(rejected, 15);
}

TEST(SignificanceTest, TiesShrinkTheStatistic) {
  // Coarsening one side can only reduce |C - D|, hence |z| (conservative).
  const BucketOrder id = BucketOrder::FromPermutation(Permutation(12));
  const BucketOrder coarse = BucketOrder::TopKOf(Permutation(12), 3);
  auto fine = KendallSignificance(id, id);
  auto tied = KendallSignificance(id, coarse);
  ASSERT_TRUE(fine.ok() && tied.ok());
  EXPECT_LT(std::abs(tied->z), std::abs(fine->z));
}

TEST(SignificanceTest, TinyDomainsUndefined) {
  const BucketOrder two = BucketOrder::SingleBucket(2);
  EXPECT_FALSE(KendallSignificance(two, two).ok());
}

TEST(SpearmanRhoTest, PerfectAndInverse) {
  const BucketOrder o = BucketOrder::FromPermutation(Permutation(8));
  auto same = SpearmanRho(o, o);
  ASSERT_TRUE(same.ok());
  EXPECT_NEAR(*same, 1.0, 1e-12);
  auto rev = SpearmanRho(o, o.Reverse());
  ASSERT_TRUE(rev.ok());
  EXPECT_NEAR(*rev, -1.0, 1e-12);
}

TEST(SpearmanRhoTest, UndefinedOnConstantRanking) {
  auto rho = SpearmanRho(BucketOrder::SingleBucket(4),
                         BucketOrder::FromPermutation(Permutation(4)));
  EXPECT_FALSE(rho.ok());
  EXPECT_EQ(rho.status().code(), StatusCode::kUndefined);
}

TEST(SpearmanRhoTest, SymmetricAndBounded) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    const BucketOrder a = RandomBucketOrder(9, rng);
    const BucketOrder b = RandomBucketOrder(9, rng);
    auto ab = SpearmanRho(a, b);
    auto ba = SpearmanRho(b, a);
    if (!ab.ok()) {
      EXPECT_FALSE(ba.ok());
      continue;
    }
    EXPECT_DOUBLE_EQ(*ab, *ba);
    EXPECT_GE(*ab, -1.0 - 1e-12);
    EXPECT_LE(*ab, 1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace rankties
