// Bit-identity tests for the out-of-core engines (core/outofcore.h): on
// the same corpus, the streaming median-rank aggregation must equal
// MedianRankScoresQuad / MedianInducedOrder and the blocked distance
// matrix must equal DistanceMatrix, bit for bit, even when tiny budgets
// force many passes and tiny blocks force heavy cache traffic.

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/batch_engine.h"
#include "core/median_rank.h"
#include "core/outofcore.h"
#include "gen/random_orders.h"
#include "gen/score_dist.h"
#include "gtest/gtest.h"
#include "store/corpus_reader.h"
#include "store/corpus_writer.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::string TestPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

std::vector<BucketOrder> MixedCorpus(std::size_t m, std::size_t n,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BucketOrder> corpus;
  corpus.reserve(m);
  SkewedOrderConfig skew;
  for (std::size_t i = 0; i < m; ++i) {
    if (i % 3 == 0) {
      // Skewed quantized scores: heavy ties, the out-of-core bench shape.
      StatusOr<BucketOrder> order = SkewedScoreOrder(n, skew, rng);
      EXPECT_TRUE(order.ok());
      corpus.push_back(std::move(*order));
    } else {
      corpus.push_back(RandomBucketOrder(n, rng));
    }
  }
  return corpus;
}

store::CorpusReader WriteAndOpen(const std::string& name,
                                 const std::vector<BucketOrder>& corpus,
                                 std::uint64_t lists_per_chunk,
                                 std::size_t cache_bytes) {
  const std::string path = TestPath(name);
  store::CorpusWriter::Options options;
  options.block_size = 256;  // Small blocks: real cache churn at test size.
  options.lists_per_chunk = lists_per_chunk;
  StatusOr<store::CorpusWriter> writer =
      store::CorpusWriter::Create(path, corpus.front().n(), options);
  EXPECT_TRUE(writer.ok()) << writer.status();
  for (const BucketOrder& order : corpus) {
    EXPECT_TRUE(writer->Append(order).ok());
  }
  EXPECT_TRUE(writer->Finish().ok());

  store::Pager::Options cache;
  cache.capacity_bytes = cache_bytes;
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, cache);
  EXPECT_TRUE(reader.ok()) << reader.status();
  return std::move(*reader);
}

TEST(StreamingMedianTest, MatchesInRamForAllPolicies) {
  const std::vector<BucketOrder> corpus = MixedCorpus(14, 60, 21);
  store::CorpusReader reader =
      WriteAndOpen("streaming_median.corpus", corpus, 4, 2048);

  for (const MedianPolicy policy :
       {MedianPolicy::kLower, MedianPolicy::kUpper, MedianPolicy::kAverage}) {
    StatusOr<std::vector<std::int64_t>> in_ram =
        MedianRankScoresQuad(corpus, policy);
    ASSERT_TRUE(in_ram.ok());

    // A ~1KB budget forces multiple element passes over the corpus.
    OutOfCoreOptions options;
    options.memory_budget_bytes = 14 * sizeof(std::int64_t) * 16;
    StatusOr<std::vector<std::int64_t>> streamed =
        StreamingMedianRankScoresQuad(reader, policy, options);
    ASSERT_TRUE(streamed.ok()) << streamed.status();
    EXPECT_EQ(*streamed, *in_ram);

    StatusOr<BucketOrder> induced_in_ram = MedianInducedOrder(corpus, policy);
    ASSERT_TRUE(induced_in_ram.ok());
    StatusOr<BucketOrder> induced_streamed =
        StreamingMedianInducedOrder(reader, policy, options);
    ASSERT_TRUE(induced_streamed.ok());
    EXPECT_EQ(*induced_streamed, *induced_in_ram);
  }
}

TEST(StreamingMedianTest, ExtremeBudgetsAgree) {
  const std::vector<BucketOrder> corpus = MixedCorpus(9, 40, 22);
  store::CorpusReader reader =
      WriteAndOpen("streaming_median_budgets.corpus", corpus, 2, 1024);
  StatusOr<std::vector<std::int64_t>> in_ram =
      MedianRankScoresQuad(corpus, MedianPolicy::kAverage);
  ASSERT_TRUE(in_ram.ok());

  // One element per pass (minimum budget) and everything in one pass
  // (huge budget) must both match.
  OutOfCoreOptions one_element;
  one_element.memory_budget_bytes = 1;
  StatusOr<std::vector<std::int64_t>> tiny = StreamingMedianRankScoresQuad(
      reader, MedianPolicy::kAverage, one_element);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(*tiny, *in_ram);

  OutOfCoreOptions huge;
  huge.memory_budget_bytes = std::size_t{1} << 30;
  StatusOr<std::vector<std::int64_t>> single_pass =
      StreamingMedianRankScoresQuad(reader, MedianPolicy::kAverage, huge);
  ASSERT_TRUE(single_pass.ok());
  EXPECT_EQ(*single_pass, *in_ram);
}

TEST(OutOfCoreMatrixTest, MatchesInRamForAllMetricKinds) {
  const std::vector<BucketOrder> corpus = MixedCorpus(13, 48, 23);
  store::CorpusReader reader =
      WriteAndOpen("outofcore_matrix.corpus", corpus, 5, 2048);

  for (const MetricKind kind : {MetricKind::kKprof, MetricKind::kFprof,
                                MetricKind::kKHaus, MetricKind::kFHaus}) {
    const std::vector<std::vector<double>> in_ram =
        DistanceMatrix(kind, corpus);
    StatusOr<std::vector<std::vector<double>>> blocked =
        OutOfCoreDistanceMatrix(kind, reader);
    ASSERT_TRUE(blocked.ok()) << blocked.status();
    ASSERT_EQ(blocked->size(), in_ram.size());
    for (std::size_t i = 0; i < in_ram.size(); ++i) {
      for (std::size_t j = 0; j < in_ram.size(); ++j) {
        // Bit-exact: same prepared kernels, same (i, j) argument order.
        EXPECT_EQ((*blocked)[i][j], in_ram[i][j])
            << MetricName(kind) << " (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(OutOfCoreMatrixTest, SingleListCorpusIsZeroMatrix) {
  Rng rng(24);
  const std::vector<BucketOrder> corpus = {RandomBucketOrder(16, rng)};
  store::CorpusReader reader =
      WriteAndOpen("outofcore_single.corpus", corpus, 4, 1024);
  StatusOr<std::vector<std::vector<double>>> matrix =
      OutOfCoreDistanceMatrix(MetricKind::kKprof, reader);
  ASSERT_TRUE(matrix.ok());
  ASSERT_EQ(matrix->size(), 1u);
  EXPECT_EQ((*matrix)[0][0], 0.0);
}

TEST(OutOfCoreTest, CacheStatsAreLive) {
  const std::vector<BucketOrder> corpus = MixedCorpus(12, 48, 25);
  // Cache budget far below the corpus footprint: streaming must both miss
  // (capacity evictions) and hit (neighboring lists share blocks).
  store::CorpusReader reader =
      WriteAndOpen("outofcore_stats.corpus", corpus, 3, 1024);
  OutOfCoreOptions options;
  options.memory_budget_bytes = 12 * sizeof(std::int64_t) * 8;
  ASSERT_TRUE(
      StreamingMedianRankScoresQuad(reader, MedianPolicy::kLower, options)
          .ok());
  const store::Pager& pager = reader.pager();
  EXPECT_GT(pager.misses(), 0);
  EXPECT_GT(pager.hits(), 0);
  EXPECT_GT(pager.evictions(), 0);
  EXPECT_GT(pager.bytes_read(), 0);
  // The pager never holds more than its capacity in unpinned frames plus
  // the reader's transient pins (one block at a time).
  EXPECT_LE(pager.peak_resident_blocks(),
            static_cast<std::int64_t>(pager.capacity_blocks()) + 1);
}

}  // namespace
}  // namespace rankties
