#include "core/toplist_fusion.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace rankties {
namespace {

TEST(FuseTopListsTest, ConsensusItemWins) {
  // Item 7 appears near the top of every engine; 99 only in one.
  auto fused = FuseTopLists({{7, 1, 2}, {3, 7, 4}, {7, 99}}, 1);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused->items.size(), 1u);
  EXPECT_EQ(fused->items[0], 7);
}

TEST(FuseTopListsTest, FullOutputCoversActiveDomain) {
  auto fused = FuseTopLists({{10, 20}, {30}}, 0);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->items.size(), 3u);
  std::vector<std::int64_t> sorted = fused->items;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::int64_t>{10, 20, 30}));
  // Scores are aligned and nondecreasing down the fused list.
  for (std::size_t r = 1; r < fused->scores_quad.size(); ++r) {
    EXPECT_LE(fused->scores_quad[r - 1], fused->scores_quad[r]);
  }
}

TEST(FuseTopListsTest, UnlistedItemsRankBehindListedOnes) {
  // With 3 engines, an item in 2 tops beats an item in 1 top of equal rank.
  auto fused = FuseTopLists({{1, 2}, {1, 3}, {4, 5}}, 0);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->items[0], 1);  // two first-place votes
}

TEST(FuseTopListsTest, Validation) {
  EXPECT_FALSE(FuseTopLists({}).ok());
  EXPECT_FALSE(FuseTopLists({{}, {}}).ok());
  EXPECT_FALSE(FuseTopLists({{5, 5}}).ok());
  auto single = FuseTopLists({{42}}, 5);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->items, (std::vector<std::int64_t>{42}));
}

TEST(FuseTopListsTest, PolicyAffectsEvenEngineCounts) {
  // Two engines disagreeing: lower vs upper median differ.
  const std::vector<std::vector<std::int64_t>> tops = {{1, 2, 3}, {3, 2, 1}};
  auto lower = FuseTopLists(tops, 0, MedianPolicy::kLower);
  auto upper = FuseTopLists(tops, 0, MedianPolicy::kUpper);
  ASSERT_TRUE(lower.ok() && upper.ok());
  // Item 2 is rank 2 for both engines; items 1 and 3 are {1,3}. Lower
  // median ranks 1,2,3 all at score<=2; upper median pushes 1 and 3 to 3.
  EXPECT_EQ(upper->items[0], 2);
}

}  // namespace
}  // namespace rankties
