// Round-trip and robustness tests for the rankties-corpus-v1 on-disk
// format (store/corpus_writer.h, store/corpus_reader.h). The corruption
// cases are the satellite contract of ISSUE 9: truncated file, flipped CRC
// byte, bad magic/version, and zero-chunk corpus must all come back as
// clean Status errors — no UB — under the ASan/UBSan CI legs.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gen/random_orders.h"
#include "gtest/gtest.h"
#include "rank/bucket_order.h"
#include "store/corpus_reader.h"
#include "store/corpus_writer.h"
#include "store/crc32.h"
#include "store/format.h"
#include "util/rng.h"

namespace rankties {
namespace {

namespace fs = std::filesystem;
using CorpusWriter = store::CorpusWriter;

std::string TestPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

std::vector<BucketOrder> MakeCorpus(std::size_t m, std::size_t n,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<BucketOrder> corpus;
  corpus.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    corpus.push_back(RandomBucketOrder(n, rng));
  }
  return corpus;
}

void WriteCorpus(const std::string& path,
                 const std::vector<BucketOrder>& corpus,
                 const CorpusWriter::Options& options) {
  StatusOr<store::CorpusWriter> writer =
      store::CorpusWriter::Create(path, corpus.front().n(), options);
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (const BucketOrder& order : corpus) {
    ASSERT_TRUE(writer->Append(order).ok());
  }
  ASSERT_TRUE(writer->Finish().ok());
}

std::vector<BucketOrder> ReadAll(store::CorpusReader& reader) {
  std::vector<BucketOrder> all;
  std::vector<BucketOrder> chunk;
  for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
    Status s = reader.ReadChunk(c, &chunk);
    EXPECT_TRUE(s.ok()) << s;
    for (BucketOrder& order : chunk) all.push_back(std::move(order));
  }
  return all;
}

void FlipByte(const std::string& path, std::uint64_t offset) {
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5A);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

TEST(StoreRoundTrip, SingleChunkSingleBlock) {
  const std::string path = TestPath("roundtrip_small.corpus");
  const std::vector<BucketOrder> corpus = MakeCorpus(5, 40, 1);
  CorpusWriter::Options options;
  options.lists_per_chunk = 8;  // All five lists land in one tail chunk.
  WriteCorpus(path, corpus, options);

  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->n(), 40u);
  EXPECT_EQ(reader->num_lists(), 5u);
  EXPECT_EQ(reader->num_chunks(), 1u);
  const std::vector<BucketOrder> decoded = ReadAll(*reader);
  ASSERT_EQ(decoded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(decoded[i], corpus[i]) << "list " << i;
  }
}

TEST(StoreRoundTrip, MultiChunkTinyBlocksCrossBoundaries) {
  // 64-byte blocks (60 payload bytes) force every chunk across many block
  // boundaries, and 3 lists per chunk leaves a short tail chunk.
  const std::string path = TestPath("roundtrip_tiny_blocks.corpus");
  const std::vector<BucketOrder> corpus = MakeCorpus(11, 23, 2);
  CorpusWriter::Options options;
  options.block_size = store::kMinBlockSize;
  options.lists_per_chunk = 3;
  WriteCorpus(path, corpus, options);

  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->num_chunks(), 4u);  // 3+3+3+2
  EXPECT_EQ(reader->chunk(3).list_count, 2u);
  const std::vector<BucketOrder> decoded = ReadAll(*reader);
  ASSERT_EQ(decoded.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(decoded[i], corpus[i]) << "list " << i;
  }
}

TEST(StoreRoundTrip, DegenerateShapes) {
  // Single-bucket (all tied) and full (all singleton) lists round-trip.
  const std::string path = TestPath("roundtrip_degenerate.corpus");
  std::vector<BucketOrder> corpus;
  corpus.push_back(BucketOrder::SingleBucket(12));
  std::vector<std::int64_t> keys(12);
  for (std::size_t e = 0; e < keys.size(); ++e) {
    keys[e] = static_cast<std::int64_t>(keys.size() - e);
  }
  corpus.push_back(BucketOrder::FromIntKeys(keys));
  WriteCorpus(path, corpus, CorpusWriter::Options{});

  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_TRUE(reader.ok()) << reader.status();
  const std::vector<BucketOrder> decoded = ReadAll(*reader);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], corpus[0]);
  EXPECT_EQ(decoded[1], corpus[1]);
}

TEST(StoreWriter, RejectsBadArguments) {
  EXPECT_FALSE(
      store::CorpusWriter::Create(TestPath("bad.corpus"), 0, {}).ok());
  CorpusWriter::Options bad_block;
  bad_block.block_size = 8;
  EXPECT_FALSE(
      store::CorpusWriter::Create(TestPath("bad.corpus"), 5, bad_block)
          .ok());
  CorpusWriter::Options bad_chunk;
  bad_chunk.lists_per_chunk = 0;
  EXPECT_FALSE(
      store::CorpusWriter::Create(TestPath("bad.corpus"), 5, bad_chunk)
          .ok());

  StatusOr<store::CorpusWriter> writer =
      store::CorpusWriter::Create(TestPath("bad.corpus"), 5, {});
  ASSERT_TRUE(writer.ok());
  // Domain mismatch is InvalidArgument.
  Rng rng(3);
  const Status mismatch = writer->Append(RandomBucketOrder(7, rng));
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
  // Append/Finish after Finish fail cleanly.
  ASSERT_TRUE(writer->Append(RandomBucketOrder(5, rng)).ok());
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_EQ(writer->Append(RandomBucketOrder(5, rng)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Finish().code(), StatusCode::kFailedPrecondition);
}

TEST(StoreRobustness, MissingFileIsNotFound) {
  StatusOr<store::CorpusReader> reader = store::CorpusReader::Open(
      TestPath("does_not_exist.corpus"), store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

TEST(StoreRobustness, TruncatedHeaderIsDataLoss) {
  const std::string path = TestPath("truncated_header.corpus");
  WriteCorpus(path, MakeCorpus(4, 16, 4), CorpusWriter::Options{});
  fs::resize_file(path, store::kHeaderBytes / 2);
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(StoreRobustness, TruncatedBodyIsDataLoss) {
  const std::string path = TestPath("truncated_body.corpus");
  WriteCorpus(path, MakeCorpus(4, 16, 5), CorpusWriter::Options{});
  const std::uint64_t full = fs::file_size(path);
  // Chop the directory (and part of the block area) off the end.
  fs::resize_file(path, full - store::kChunkEntryBytes - 8);
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(StoreRobustness, BadMagicIsInvalidArgument) {
  const std::string path = TestPath("bad_magic.corpus");
  WriteCorpus(path, MakeCorpus(4, 16, 6), CorpusWriter::Options{});
  FlipByte(path, 0);
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreRobustness, BadVersionIsRejected) {
  const std::string path = TestPath("bad_version.corpus");
  WriteCorpus(path, MakeCorpus(4, 16, 7), CorpusWriter::Options{});
  // Rewrite the version field and refresh the header CRC so only the
  // version is wrong.
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file.is_open());
  unsigned char header[store::kHeaderBytes];
  file.read(reinterpret_cast<char*>(header), sizeof(header));
  store::StoreU32(header + 8, store::kFormatVersion + 1);
  store::StoreU32(header + store::kHeaderCrcOffset,
                  store::Crc32(header, store::kHeaderCrcOffset));
  file.seekp(0);
  file.write(reinterpret_cast<const char*>(header), sizeof(header));
  file.close();

  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreRobustness, FlippedHeaderByteIsDataLoss) {
  const std::string path = TestPath("bad_header_crc.corpus");
  WriteCorpus(path, MakeCorpus(4, 16, 8), CorpusWriter::Options{});
  FlipByte(path, 16);  // Inside the n field; header CRC now mismatches.
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(StoreRobustness, FlippedBlockByteIsDataLossOnRead) {
  const std::string path = TestPath("bad_block_crc.corpus");
  WriteCorpus(path, MakeCorpus(4, 16, 9), CorpusWriter::Options{});
  // Open succeeds (header and directory are intact)...
  FlipByte(path, store::kHeaderBytes + 10);
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_TRUE(reader.ok()) << reader.status();
  // ...but paging the corrupt block in is DataLoss.
  std::vector<BucketOrder> chunk;
  const Status s = reader->ReadChunk(0, &chunk);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
}

TEST(StoreRobustness, FlippedDirectoryByteIsDataLoss) {
  const std::string path = TestPath("bad_dir_crc.corpus");
  WriteCorpus(path, MakeCorpus(4, 16, 10), CorpusWriter::Options{});
  const std::uint64_t full = fs::file_size(path);
  FlipByte(path, full - 12);  // Inside the last chunk entry.
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss);
}

TEST(StoreRobustness, ZeroChunkCorpusIsInvalidArgument) {
  const std::string path = TestPath("zero_chunks.corpus");
  StatusOr<store::CorpusWriter> writer =
      store::CorpusWriter::Create(path, 8, {});
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->Finish().ok());  // No lists appended.
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(StoreRobustness, UnfinishedWriterFileIsRejected) {
  const std::string path = TestPath("unfinished.corpus");
  {
    StatusOr<store::CorpusWriter> writer =
        store::CorpusWriter::Create(path, 8, {});
    ASSERT_TRUE(writer.ok());
    Rng rng(11);
    ASSERT_TRUE(writer->Append(RandomBucketOrder(8, rng)).ok());
    // No Finish: the header slot is still the zero placeholder.
  }
  StatusOr<store::CorpusReader> reader =
      store::CorpusReader::Open(path, store::Pager::Options{});
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rankties
