// Regression tests for degenerate inputs across every metric entry point:
// the empty ranking (n = 0), the single-element universe (n = 1), and the
// all-tied single bucket. All distances are 0 — there are no pairs to count
// and positions coincide — and nothing may assert, divide by zero, or
// return NaN.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "access/medrank_engine.h"
#include "access/nra_median.h"
#include "access/ta_median.h"
#include "core/batch_engine.h"
#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/median_rank.h"
#include "core/metric_registry.h"
#include "core/online_median.h"
#include "core/profile_metrics.h"
#include "obs/obs.h"
#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "ref/ref_metrics.h"
#include "util/rng.h"

namespace rankties {
namespace {

void ExpectAllMetricsZero(const BucketOrder& sigma, const BucketOrder& tau) {
  EXPECT_EQ(TwiceKprof(sigma, tau), 0);
  EXPECT_EQ(TwiceFprof(sigma, tau), 0);
  EXPECT_EQ(KHausdorff(sigma, tau), 0);
  EXPECT_EQ(KHausdorffTheorem5(sigma, tau), 0);
  EXPECT_EQ(TwiceFHausdorff(sigma, tau), 0);
  for (double p : {0.0, 0.25, 0.5, 1.0}) {
    const double kp = KendallP(sigma, tau, p);
    EXPECT_EQ(kp, 0.0) << "p=" << p;
    EXPECT_FALSE(std::isnan(kp));
  }
  for (MetricKind kind : AllMetricKinds()) {
    EXPECT_EQ(ComputeMetric(kind, sigma, tau), 0.0) << MetricName(kind);
    // The ref Hausdorff oracles enumerate every full refinement; keep them
    // to universes where that is instantaneous.
    if (sigma.n() <= 6) {
      EXPECT_EQ(ref::ComputeMetric(kind, sigma, tau), 0.0) << MetricName(kind);
    }
  }
}

TEST(DegenerateInputsTest, EmptyRanking) {
  const BucketOrder empty;
  ASSERT_EQ(empty.n(), 0u);
  ExpectAllMetricsZero(empty, empty);
  EXPECT_EQ(Kavg(empty, empty), 0.0);
  EXPECT_EQ(KavgBrute(empty, empty), 0.0);
  Rng rng(1);
  EXPECT_EQ(KavgSampled(empty, empty, 16, rng), 0.0);
}

TEST(DegenerateInputsTest, SingleElementUniverse) {
  const BucketOrder single = BucketOrder::SingleBucket(1);
  const BucketOrder as_perm = BucketOrder::FromPermutation(Permutation(1));
  ExpectAllMetricsZero(single, single);
  ExpectAllMetricsZero(single, as_perm);
  EXPECT_EQ(Kavg(single, as_perm), 0.0);
  EXPECT_EQ(KavgBrute(single, as_perm), 0.0);
  Rng rng(2);
  EXPECT_EQ(KavgSampled(single, as_perm, 16, rng), 0.0);
}

TEST(DegenerateInputsTest, AllTiedBucketIsIdentity) {
  for (std::size_t n : {2u, 5u, 17u}) {
    const BucketOrder tied = BucketOrder::SingleBucket(n);
    ExpectAllMetricsZero(tied, tied);
  }
}

// Degenerate inputs through the *instrumented* paths: collection and
// tracing on, so the obs hooks in the access engines and batch engine see
// n = 1, k = 0, and all-tied inputs without asserting or emitting garbage.
TEST(DegenerateInputsTest, InstrumentedEnginesSurviveDegenerateInputs) {
  obs::SetEnabled(true);
  obs::TraceRecorder::Global().Start();

  const std::vector<BucketOrder> singles = {BucketOrder::SingleBucket(1),
                                            BucketOrder::SingleBucket(1)};
  EXPECT_TRUE(TaMedianTopK(singles, 1).ok());
  EXPECT_TRUE(NraMedianTopK(singles, 1).ok());
  EXPECT_TRUE(MedrankTopK(singles, 1).ok());
  // k = 0 returns before the instrumented region; still must be clean.
  EXPECT_TRUE(TaMedianTopK(singles, 0).ok());

  const std::vector<BucketOrder> tied = {BucketOrder::SingleBucket(5),
                                         BucketOrder::SingleBucket(5),
                                         BucketOrder::SingleBucket(5)};
  const auto matrix = DistanceMatrix(MetricKind::kKprof, tied);
  for (const auto& row : matrix) {
    for (const double d : row) EXPECT_EQ(d, 0.0);
  }

  obs::TraceRecorder::Global().Stop();
  const std::string doc = obs::TraceJsonDocument();
  EXPECT_NE(doc.find("rankties-trace-v1"), std::string::npos);
  obs::SetEnabled(false);
}

// OnlineMedianAggregator::CurrentTopK at the edges of k and of the voter
// count: k == 0 is a legal (all-nil) query, k > n must fail cleanly, and a
// single-voter corpus's median is that voter's own position vector.
TEST(DegenerateInputsTest, OnlineMedianTopKEdges) {
  const std::size_t n = 4;
  OnlineMedianAggregator online(n);
  // Before any voter, every query fails — k == 0 included: there is no
  // aggregate to take a prefix of.
  EXPECT_FALSE(online.CurrentTopK(0).ok());

  const BucketOrder voter = *BucketOrder::FromBuckets(n, {{2}, {0, 3}, {1}});
  ASSERT_TRUE(online.AddVoter(voter).ok());

  // k == 0: a top-0 list is one all-nil bucket, not an error.
  auto top0 = online.CurrentTopK(0);
  ASSERT_TRUE(top0.ok());
  EXPECT_EQ(top0->n(), n);
  EXPECT_EQ(top0->num_buckets(), 1u);

  // k > n: out of range, and the aggregator state survives the rejection.
  EXPECT_FALSE(online.CurrentTopK(n + 1).ok());
  EXPECT_EQ(online.num_voters(), 1u);

  // Single voter: the median of one ballot is the ballot. Scores are the
  // quadrupled positions and top-n is the voter's order with remaining
  // ties broken by id (element 0 ahead of 3 inside the tied bucket).
  auto scores = online.ScoresQuad();
  ASSERT_TRUE(scores.ok());
  for (std::size_t e = 0; e < n; ++e) {
    EXPECT_EQ((*scores)[e],
              2 * voter.TwicePosition(static_cast<ElementId>(e)));
  }
  auto single = MedianRankScoresQuad({voter}, MedianPolicy::kLower);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(*scores, *single);
  auto topn = online.CurrentTopK(n);
  auto batch_topn = MedianAggregateTopK({voter}, n, MedianPolicy::kLower);
  ASSERT_TRUE(topn.ok() && batch_topn.ok());
  EXPECT_EQ(*topn, *batch_topn);

  // k == n == 0: the empty aggregator over an empty universe still needs a
  // voter before answering, and then answers the empty list.
  OnlineMedianAggregator empty(0);
  EXPECT_FALSE(empty.CurrentTopK(0).ok());
  ASSERT_TRUE(empty.AddVoter(BucketOrder()).ok());
  auto empty_topk = empty.CurrentTopK(0);
  ASSERT_TRUE(empty_topk.ok());
  EXPECT_EQ(empty_topk->n(), 0u);
}

TEST(DegenerateInputsTest, GuardsDoNotOvertrigger) {
  // n = 2 is the smallest non-degenerate universe; the guards must leave
  // it alone. [0 1] vs [0 | 1]: one pair, tied in exactly one ranking.
  const BucketOrder tied = BucketOrder::SingleBucket(2);
  const BucketOrder split = *BucketOrder::FromBuckets(2, {{0}, {1}});
  EXPECT_EQ(TwiceKprof(tied, split), 1);
  EXPECT_EQ(KHausdorff(tied, split), 1);
  EXPECT_EQ(KendallP(tied, split, 0.25), 0.25);
  EXPECT_EQ(Kavg(tied, split), 0.5);
}

}  // namespace
}  // namespace rankties
