#include "db/column_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "access/medrank_engine.h"
#include "gen/datasets.h"
#include "util/rng.h"

namespace rankties {
namespace {

Table SmallTable() {
  Table table(Schema({{"x", ColumnType::kNumeric}}));
  for (double v : {5.0, 1.0, 9.0, 4.0, 4.0, 7.0}) {
    EXPECT_TRUE(table.AddRow({Value(v)}).ok());
  }
  return table;
}

std::vector<SortedAccess> Drain(SortedAccessSource& source) {
  std::vector<SortedAccess> out;
  while (auto access = source.Next()) out.push_back(*access);
  return out;
}

TEST(ColumnIndexTest, BuildValidation) {
  Table table(Schema({{"c", ColumnType::kCategorical}}));
  EXPECT_FALSE(ColumnIndex::Build(table, "c").ok());
  EXPECT_FALSE(ColumnIndex::Build(table, "nope").ok());
}

TEST(ColumnIndexTest, AscendingMatchesTableRank) {
  const Table table = SmallTable();
  auto index = ColumnIndex::Build(table, "x");
  ASSERT_TRUE(index.ok());
  auto expected = table.RankAscending("x");
  ASSERT_TRUE(expected.ok());
  auto source = index->Ascending();
  for (const SortedAccess& access : Drain(*source)) {
    EXPECT_EQ(access.twice_position, expected->TwicePosition(access.element));
  }
}

TEST(ColumnIndexTest, DescendingMatchesTableRank) {
  const Table table = SmallTable();
  auto index = ColumnIndex::Build(table, "x");
  ASSERT_TRUE(index.ok());
  auto expected = table.RankDescending("x");
  ASSERT_TRUE(expected.ok());
  auto source = index->Descending();
  for (const SortedAccess& access : Drain(*source)) {
    EXPECT_EQ(access.twice_position, expected->TwicePosition(access.element));
  }
}

TEST(ColumnIndexTest, NearestMatchesTableRankNear) {
  Rng rng(1);
  const Table table = MakeFlightTable(300, rng);
  auto index = ColumnIndex::Build(table, "departure_hour");
  ASSERT_TRUE(index.ok());
  for (double target : {0.0, 9.0, 13.5, 23.0}) {
    auto expected = table.RankNear("departure_hour", target, 0);
    ASSERT_TRUE(expected.ok());
    auto source = index->Nearest(target);
    std::size_t count = 0;
    for (const SortedAccess& access : Drain(*source)) {
      EXPECT_EQ(access.twice_position,
                expected->TwicePosition(access.element))
          << "target " << target;
      ++count;
    }
    EXPECT_EQ(count, table.num_rows());
  }
}

TEST(ColumnIndexTest, GranularityBandsMatchQuantizedRanks) {
  Rng rng(2);
  const Table table = MakeRestaurantTable(200, rng);
  auto index = ColumnIndex::Build(table, "distance_miles");
  ASSERT_TRUE(index.ok());
  auto expected = table.RankAscending("distance_miles", 10.0);
  ASSERT_TRUE(expected.ok());
  auto source = index->Ascending(10.0);
  for (const SortedAccess& access : Drain(*source)) {
    EXPECT_EQ(access.twice_position, expected->TwicePosition(access.element));
  }
}

TEST(ColumnIndexTest, RangeLookup) {
  const Table table = SmallTable();
  auto index = ColumnIndex::Build(table, "x");
  ASSERT_TRUE(index.ok());
  std::vector<ElementId> rows = index->RangeLookup(4.0, 7.0);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, (std::vector<ElementId>{0, 3, 4, 5}));  // 5, 4, 4, 7
  EXPECT_TRUE(index->RangeLookup(100, 200).empty());
}

TEST(ColumnIndexTest, IndexedSourcesDriveMedrank) {
  // The [11] architecture: persistent per-attribute indexes, per-query
  // cursors, no re-sorting — winner agrees with the table-sort path.
  Rng rng(3);
  const Table table = MakeFlightTable(500, rng);
  auto price = ColumnIndex::Build(table, "price_usd");
  auto connections = ColumnIndex::Build(table, "connections");
  auto departure = ColumnIndex::Build(table, "departure_hour");
  ASSERT_TRUE(price.ok() && connections.ok() && departure.ok());

  std::vector<std::unique_ptr<SortedAccessSource>> sources;
  sources.push_back(price->Ascending(50.0));
  sources.push_back(connections->Ascending());
  sources.push_back(departure->Nearest(9.0, 2.0));
  auto indexed = MedrankTopK(sources, 3);
  ASSERT_TRUE(indexed.ok());

  std::vector<BucketOrder> rankings = {
      table.RankAscending("price_usd", 50.0).value(),
      table.RankAscending("connections").value(),
      table.RankNear("departure_hour", 9.0, 2.0).value(),
  };
  auto direct = MedrankTopK(rankings, 3);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(indexed->winners, direct->winners);
  EXPECT_EQ(indexed->total_accesses, direct->total_accesses);
}

}  // namespace
}  // namespace rankties
