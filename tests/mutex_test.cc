// Tests for the annotated synchronization layer (util/mutex.h): the
// lock-order DAG unit surface, debug death tests proving a seeded
// inversion aborts with full context (including the flight-recorder
// post-mortem via the contracts failure hook), the release compile-out
// guarantee, CondVar handshakes, and the thread-pool
// shutdown-while-enqueueing regression.
#include "util/mutex.h"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"
#include "gtest/gtest.h"
#ifndef RANKTIES_OBS_DISABLED
#include "obs/flight.h"
#endif

namespace rankties {
namespace {

// ---------------------------------------------------------------------
// Behavior shared by debug and release builds.
// ---------------------------------------------------------------------

TEST(MutexTest, ProtectsSharedCounterAcrossThreads) {
  Mutex mu("test.counter");
  std::int64_t counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, TryLockSucceedsUncontendedAndFailsContended) {
  Mutex mu("test.trylock");
  if (mu.TryLock()) {
    mu.AssertHeld();
    mu.Unlock();
  } else {
    ADD_FAILURE() << "uncontended TryLock failed";
  }
  MutexLock lock(mu);
  std::thread contender([&mu] {
    // Branch on the result (instead of EXPECT_FALSE) so the clang
    // thread-safety analysis can track the try-acquire state.
    if (mu.TryLock()) {
      mu.Unlock();
      ADD_FAILURE() << "TryLock succeeded while the lock was held";
    }
  });
  contender.join();
}

TEST(CondVarTest, WaitForReportsTimeout) {
  Mutex mu("test.cv.timeout");
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_TRUE(cv.WaitFor(lock, std::chrono::milliseconds(1)));
}

TEST(CondVarTest, PredicateLoopHandshake) {
  Mutex mu("test.cv.handshake");
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

// Regression: ~ThreadPool races the helpers' final pending-decrement
// handshake in LoopState. An earlier revision published `pending` without
// the loop mutex, so a pool destroyed right after ParallelFor returned
// could tear down LoopState while a helper still touched it.
TEST(ThreadPoolShutdownTest, DestructionImmediatelyAfterLoops) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    std::atomic<std::int64_t> sum{0};
    pool.ParallelFor(0, 64, 1, [&sum](std::size_t lo, std::size_t hi) {
      sum.fetch_add(static_cast<std::int64_t>(hi - lo),
                    std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64);
  }
}

TEST(ThreadPoolShutdownTest, DestructionAfterThrowingLoop) {
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.ParallelFor(0, 64, 1,
                         [](std::size_t lo, std::size_t) {
                           if (lo == 7) throw std::runtime_error("boom");
                         }),
        std::runtime_error);
  }
}

#if RANKTIES_DCHECK_ENABLED

// ---------------------------------------------------------------------
// Lock-order DAG unit surface (debug builds only).
// ---------------------------------------------------------------------

class LockGraphTest : public ::testing::Test {
 protected:
  // Each test seeds its own ordering; edges recorded by earlier tests (or
  // by library code during process start) must not leak in.
  void SetUp() override { sync_internal::Graph().ResetForTest(); }
  void TearDown() override { sync_internal::Graph().ResetForTest(); }
};

TEST_F(LockGraphTest, ClassIdsInternByNameValue) {
  sync_internal::LockGraph& graph = sync_internal::Graph();
  const std::uint32_t a = graph.ClassIdFor("test.intern.a");
  const std::uint32_t b = graph.ClassIdFor("test.intern.b");
  EXPECT_NE(a, b);
  // Same name through a different pointer interns to the same id.
  const std::string copy("test.intern.a");
  EXPECT_EQ(graph.ClassIdFor(copy.c_str()), a);
  EXPECT_EQ(graph.ClassName(a), "test.intern.a");
}

TEST_F(LockGraphTest, AddEdgeDedupsAndRejectsCycles) {
  sync_internal::LockGraph& graph = sync_internal::Graph();
  const std::uint32_t a = graph.ClassIdFor("test.dag.a");
  const std::uint32_t b = graph.ClassIdFor("test.dag.b");
  const std::uint32_t c = graph.ClassIdFor("test.dag.c");
  EXPECT_EQ(graph.EdgeCount(), 0u);
  EXPECT_TRUE(graph.AddEdge(a, b));
  EXPECT_TRUE(graph.HasEdge(a, b));
  EXPECT_EQ(graph.EdgeCount(), 1u);
  // Re-recording an existing order is fine and adds nothing.
  EXPECT_TRUE(graph.AddEdge(a, b));
  EXPECT_EQ(graph.EdgeCount(), 1u);
  EXPECT_TRUE(graph.AddEdge(b, c));
  // c -> a would close a -> b -> c -> a; rejected and not recorded.
  EXPECT_FALSE(graph.AddEdge(c, a));
  EXPECT_FALSE(graph.HasEdge(c, a));
  // Same-class nesting is banned outright.
  EXPECT_FALSE(graph.AddEdge(a, a));
  EXPECT_EQ(graph.EdgeCount(), 2u);
}

TEST_F(LockGraphTest, PathBetweenReportsTheRecordedChain) {
  sync_internal::LockGraph& graph = sync_internal::Graph();
  const std::uint32_t a = graph.ClassIdFor("test.path.a");
  const std::uint32_t b = graph.ClassIdFor("test.path.b");
  const std::uint32_t c = graph.ClassIdFor("test.path.c");
  ASSERT_TRUE(graph.AddEdge(a, b));
  ASSERT_TRUE(graph.AddEdge(b, c));
  const std::vector<std::uint32_t> chain = graph.PathBetween(a, c);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], a);
  EXPECT_EQ(chain[1], b);
  EXPECT_EQ(chain[2], c);
  EXPECT_TRUE(graph.PathBetween(c, a).empty());
}

TEST_F(LockGraphTest, ResetDropsEdgesButKeepsInternedIds) {
  sync_internal::LockGraph& graph = sync_internal::Graph();
  const std::uint32_t a = graph.ClassIdFor("test.reset.a");
  const std::uint32_t b = graph.ClassIdFor("test.reset.b");
  ASSERT_TRUE(graph.AddEdge(a, b));
  graph.ResetForTest();
  EXPECT_EQ(graph.EdgeCount(), 0u);
  EXPECT_FALSE(graph.HasEdge(a, b));
  EXPECT_EQ(graph.ClassIdFor("test.reset.a"), a);
  // With the old order forgotten, the reverse becomes law instead.
  EXPECT_TRUE(graph.AddEdge(b, a));
}

TEST_F(LockGraphTest, BlockingAcquisitionRecordsClassEdges) {
  Mutex outer("test.order.outer");
  Mutex inner("test.order.inner");
  sync_internal::LockGraph& graph = sync_internal::Graph();
  const std::uint32_t o = graph.ClassIdFor("test.order.outer");
  const std::uint32_t i = graph.ClassIdFor("test.order.inner");
  {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
  }
  EXPECT_TRUE(graph.HasEdge(o, i));
  EXPECT_FALSE(graph.HasEdge(i, o));
  const std::size_t edges = graph.EdgeCount();
  {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
  }
  EXPECT_EQ(graph.EdgeCount(), edges);
}

TEST_F(LockGraphTest, TryLockJoinsHeldStackAndOrdersLaterAcquisitions) {
  Mutex first("test.try.first");
  Mutex second("test.try.second");
  sync_internal::LockGraph& graph = sync_internal::Graph();
  // Branch on the result (instead of ASSERT_TRUE) so the clang
  // thread-safety analysis can track the try-acquire state.
  if (!first.TryLock()) {
    FAIL() << "uncontended TryLock failed";
  }
  first.AssertHeld();
  {
    // Blocking acquisitions order against the TryLock-held class even
    // though TryLock itself recorded no edges (it cannot deadlock).
    MutexLock hold_second(second);
  }
  first.Unlock();
  EXPECT_TRUE(graph.HasEdge(graph.ClassIdFor("test.try.first"),
                            graph.ClassIdFor("test.try.second")));
  EXPECT_EQ(graph.EdgeCount(), 1u);
}

// ---------------------------------------------------------------------
// Debug death tests. Suites end in "DeathTest" so googletest runs them
// before the multi-threaded tests above spawn anything.
// ---------------------------------------------------------------------

// Seeds first -> second, then acquires in the opposite order; the second
// constructor aborts in debug builds. No analysis exemption needed: the
// clang wall does not track acquisition *order*, only held-ness — which
// is exactly why the runtime DAG exists.
void SeedThenInvert(const char* first_name, const char* second_name) {
  Mutex first(first_name);
  Mutex second(second_name);
  {
    MutexLock hold_first(first);
    MutexLock hold_second(second);
  }
  MutexLock hold_second(second);
  MutexLock hold_first(first);
}

// Deliberately re-acquires a held instance — the scenario under test.
// Analysis exemption (policy: docs/STATIC_ANALYSIS.md): the clang
// thread-safety wall would reject this intentional double-acquire at
// compile time, which is the static half of the same guarantee.
void AcquireHeldInstanceAgain() RANKTIES_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu("test.self");
  MutexLock hold(mu);
  mu.Lock();
}

// Deliberately asserts a capability that is not held. Analysis exemption
// (policy: docs/STATIC_ANALYSIS.md): RANKTIES_ASSERT_CAPABILITY teaches
// the analysis the lock *is* held, which would make `mu` look held when
// it goes out of scope.
void AssertHeldWithoutTheLock() RANKTIES_NO_THREAD_SAFETY_ANALYSIS {
  Mutex mu("test.assert");
  mu.AssertHeld();
}

TEST(MutexDeathTest, SeededInversionAborts) {
  EXPECT_DEATH(
      {
        sync_internal::Graph().ResetForTest();
        SeedThenInvert("test.inv.a", "test.inv.b");
      },
      "lock-order inversion: acquiring lock class \"test.inv.a\" "
      "while holding \"test.inv.b\"");
}

TEST(MutexDeathTest, InversionAbortPrintsTheEstablishedOrder) {
  EXPECT_DEATH(
      {
        sync_internal::Graph().ResetForTest();
        SeedThenInvert("test.chain.a", "test.chain.b");
      },
      "previously recorded order:.*\"test.chain.a\".*\"test.chain.b\"");
}

TEST(MutexDeathTest, InversionAbortPrintsTheHeldStack) {
  EXPECT_DEATH(
      {
        sync_internal::Graph().ResetForTest();
        SeedThenInvert("test.held.a", "test.held.b");
      },
      "held by this thread \\(oldest first\\): \"test.held.b\"");
}

TEST(MutexDeathTest, SameClassNestingAborts) {
  EXPECT_DEATH(
      {
        sync_internal::Graph().ResetForTest();
        Mutex one("test.same");
        Mutex two("test.same");
        MutexLock hold_one(one);
        MutexLock hold_two(two);
      },
      "two locks of one class never nest");
}

TEST(MutexDeathTest, ReacquiringHeldInstanceAborts) {
  EXPECT_DEATH(AcquireHeldInstanceAgain(),
               "re-acquiring lock class \"test.self\"");
}

TEST(MutexDeathTest, AssertHeldWithoutTheLockAborts) {
  EXPECT_DEATH(AssertHeldWithoutTheLock(), "contract violation");
}

#ifndef RANKTIES_OBS_DISABLED
TEST(MutexDeathTest, InversionAbortDumpsFlightRecorderPostMortem) {
  EXPECT_DEATH(
      {
        obs::FlightRecorder::Global().SetEnabled(true);
        RANKTIES_FLIGHT(obs::FlightEventId::kParallelFor, 64, 8, 4);
        sync_internal::Graph().ResetForTest();
        SeedThenInvert("test.flight.a", "test.flight.b");
      },
      "flight recorder post-mortem");
}
#endif  // RANKTIES_OBS_DISABLED

#else  // !RANKTIES_DCHECK_ENABLED

// ---------------------------------------------------------------------
// Release builds: the lock-order machinery is fully compiled out (the
// layout half — sizeof(Mutex) == sizeof(std::mutex) — is a static_assert
// in util/mutex.h itself, the one file allowed to name std::mutex).
// ---------------------------------------------------------------------

TEST(MutexCompileOutTest, SeededInversionDoesNotAbort) {
  Mutex first("test.release.a");
  Mutex second("test.release.b");
  {
    MutexLock hold_first(first);
    MutexLock hold_second(second);
  }
  {
    // The reverse order would abort in a debug build; in release the
    // locks are plain std::mutex operations with no tracking at all.
    MutexLock hold_second(second);
    MutexLock hold_first(first);
  }
  SUCCEED();
}

TEST(MutexCompileOutTest, AssertHeldIsANoOp) {
  Mutex mu("test.release.assert");
  mu.AssertHeld();  // would abort (DCHECK) in debug; must be free here
  SUCCEED();
}

#endif  // RANKTIES_DCHECK_ENABLED

}  // namespace
}  // namespace rankties
