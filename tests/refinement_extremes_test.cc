#include "core/refinement_extremes.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/kendall.h"
#include "gen/random_orders.h"
#include "rank/refinement.h"
#include "util/rng.h"

namespace rankties {
namespace {

// Lemma 3: sigma*tau minimizes both F and K over all full refinements of
// tau, verified against exhaustive enumeration.
TEST(RefinementExtremesTest, Lemma3NearestRefinementIsOptimal) {
  Rng rng(1);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 6;
    const Permutation sigma = Permutation::Random(n, rng);
    const BucketOrder tau = RandomBucketOrder(n, rng);
    const Permutation nearest = NearestFullRefinement(sigma, tau);
    EXPECT_TRUE(IsRefinementOf(BucketOrder::FromPermutation(nearest), tau));
    std::int64_t best_f = std::numeric_limits<std::int64_t>::max();
    std::int64_t best_k = std::numeric_limits<std::int64_t>::max();
    ForEachFullRefinement(tau, [&](const Permutation& t) {
      best_f = std::min(best_f, Footrule(sigma, t));
      best_k = std::min(best_k, KendallTauNaive(sigma, t));
      return true;
    });
    EXPECT_EQ(Footrule(sigma, nearest), best_f);
    EXPECT_EQ(KendallTau(sigma, nearest), best_k);
    EXPECT_EQ(MinFootruleToRefinements(sigma, tau), best_f);
    EXPECT_EQ(MinKendallToRefinements(sigma, tau), best_k);
  }
}

// Lemma 4 composed: the witness pair attains the one-sided Hausdorff
// distance, verified against exhaustive max-min.
TEST(RefinementExtremesTest, OneSidedWitnessMatchesBruteForce) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const BucketOrder tau = RandomBucketOrder(n, rng);
    std::int64_t brute_f = 0, brute_k = 0;
    ForEachFullRefinement(sigma, [&](const Permutation& s) {
      std::int64_t best_f = std::numeric_limits<std::int64_t>::max();
      std::int64_t best_k = std::numeric_limits<std::int64_t>::max();
      ForEachFullRefinement(tau, [&](const Permutation& t) {
        best_f = std::min(best_f, Footrule(s, t));
        best_k = std::min(best_k, KendallTauNaive(s, t));
        return true;
      });
      brute_f = std::max(brute_f, best_f);
      brute_k = std::max(brute_k, best_k);
      return true;
    });
    EXPECT_EQ(OneSidedFHausdorff(sigma, tau), brute_f);
    EXPECT_EQ(OneSidedKHausdorff(sigma, tau), brute_k);
  }
}

TEST(RefinementExtremesTest, WitnessesAreGenuineRefinements) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(9, rng);
    const BucketOrder tau = RandomBucketOrder(9, rng);
    const RefinementWitness w = OneSidedHausdorffWitness(sigma, tau);
    EXPECT_TRUE(
        IsRefinementOf(BucketOrder::FromPermutation(w.farthest_sigma), sigma));
    EXPECT_TRUE(
        IsRefinementOf(BucketOrder::FromPermutation(w.nearest_tau), tau));
  }
}

// The Hausdorff metric is the max of the two one-sided distances — ties
// the new API back to Theorem 5.
TEST(RefinementExtremesTest, HausdorffIsMaxOfOneSided) {
  Rng rng(4);
  for (int trial = 0; trial < 25; ++trial) {
    const BucketOrder sigma = RandomBucketOrder(12, rng);
    const BucketOrder tau = RandomBucketOrder(12, rng);
    EXPECT_EQ(TwiceFHausdorff(sigma, tau),
              2 * std::max(OneSidedFHausdorff(sigma, tau),
                           OneSidedFHausdorff(tau, sigma)));
    EXPECT_EQ(KHausdorff(sigma, tau),
              std::max(OneSidedKHausdorff(sigma, tau),
                       OneSidedKHausdorff(tau, sigma)));
  }
}

TEST(RefinementExtremesTest, FullInputsCollapse) {
  // When both orders are full, every quantity degenerates to the base
  // metric between them.
  Rng rng(5);
  const Permutation a = Permutation::Random(8, rng);
  const Permutation b = Permutation::Random(8, rng);
  const BucketOrder oa = BucketOrder::FromPermutation(a);
  const BucketOrder ob = BucketOrder::FromPermutation(b);
  EXPECT_EQ(MinFootruleToRefinements(a, ob), Footrule(a, b));
  EXPECT_EQ(OneSidedFHausdorff(oa, ob), Footrule(a, b));
  EXPECT_EQ(OneSidedKHausdorff(oa, ob), KendallTau(a, b));
}

}  // namespace
}  // namespace rankties
