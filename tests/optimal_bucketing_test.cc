#include "core/optimal_bucketing.h"

#include <gtest/gtest.h>

#include "core/cost.h"
#include "core/footrule.h"
#include "core/median_rank.h"
#include "gen/random_orders.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::vector<std::int64_t> RandomQuadScores(std::size_t n, Rng& rng,
                                           bool even_only) {
  std::vector<std::int64_t> scores(n);
  for (std::size_t e = 0; e < n; ++e) {
    scores[e] = rng.UniformInt(1, static_cast<std::int64_t>(2 * n));
    if (even_only) {
      scores[e] *= 2;
    }
  }
  return scores;
}

TEST(OptimalBucketingTest, SingleElement) {
  auto result = OptimalBucketing({4});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->order.num_buckets(), 1u);
  EXPECT_EQ(result->cost_quad, std::abs(4 - 4 * 1));
}

TEST(OptimalBucketingTest, AlreadyAPartialRankingHasZeroCost) {
  // If the scores are exactly the positions of some bucket order, f-dagger
  // is that bucket order with cost 0.
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    const BucketOrder order = RandomBucketOrder(9, rng);
    std::vector<std::int64_t> quad(9);
    for (ElementId e = 0; e < 9; ++e) {
      quad[static_cast<std::size_t>(e)] = 2 * order.TwicePosition(e);
    }
    for (auto algo :
         {BucketingAlgorithm::kLinearSpace, BucketingAlgorithm::kQuadraticSpace,
          BucketingAlgorithm::kPrefixSum}) {
      auto result = OptimalBucketing(quad, algo);
      ASSERT_TRUE(result.ok()) << result.status();
      EXPECT_EQ(result->cost_quad, 0);
      EXPECT_EQ(result->order, order);
    }
  }
}

TEST(OptimalBucketingTest, LinearSpaceRejectsOddScores) {
  EXPECT_FALSE(
      OptimalBucketing({3, 5, 7}, BucketingAlgorithm::kLinearSpace).ok());
  // kAuto silently falls back.
  EXPECT_TRUE(OptimalBucketing({3, 5, 7}, BucketingAlgorithm::kAuto).ok());
}

class BucketingParityTest : public ::testing::TestWithParam<std::size_t> {};

// All three DP variants agree with each other and with brute force.
TEST_P(BucketingParityTest, VariantsMatchBruteForce) {
  const std::size_t n = GetParam();
  Rng rng(100 + n);
  for (int trial = 0; trial < 15; ++trial) {
    const bool even_only = trial % 2 == 0;
    const std::vector<std::int64_t> scores =
        RandomQuadScores(n, rng, even_only);
    auto brute = OptimalBucketingBrute(scores);
    ASSERT_TRUE(brute.ok());
    for (auto algo : {BucketingAlgorithm::kQuadraticSpace,
                      BucketingAlgorithm::kPrefixSum}) {
      auto result = OptimalBucketing(scores, algo);
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->cost_quad, brute->cost_quad)
          << "n=" << n << " trial=" << trial;
    }
    if (even_only) {
      auto linear =
          OptimalBucketing(scores, BucketingAlgorithm::kLinearSpace);
      ASSERT_TRUE(linear.ok());
      EXPECT_EQ(linear->cost_quad, brute->cost_quad);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BucketingParityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 10, 12));

TEST(OptimalBucketingTest, ReportedCostMatchesReconstructedOrder) {
  // The cost the DP reports equals 4 * L1(f-dagger, f) recomputed from the
  // returned bucket order.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<std::int64_t> scores = RandomQuadScores(10, rng, true);
    auto result = OptimalBucketing(scores, BucketingAlgorithm::kAuto);
    ASSERT_TRUE(result.ok());
    std::int64_t recomputed = 0;
    for (ElementId e = 0; e < 10; ++e) {
      recomputed += std::abs(scores[static_cast<std::size_t>(e)] -
                             2 * result->order.TwicePosition(e));
    }
    EXPECT_EQ(recomputed, result->cost_quad);
  }
}

TEST(OptimalBucketingTest, ResultIsConsistentWithScores) {
  // f-dagger must be consistent with f: f(i) < f(j) never maps to
  // order(i) > order(j) (Lemma 27's consistency).
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<std::int64_t> scores = RandomQuadScores(9, rng, false);
    auto result = OptimalBucketing(scores, BucketingAlgorithm::kAuto);
    ASSERT_TRUE(result.ok());
    for (ElementId i = 0; i < 9; ++i) {
      for (ElementId j = 0; j < 9; ++j) {
        if (scores[static_cast<std::size_t>(i)] <
            scores[static_cast<std::size_t>(j)]) {
          EXPECT_FALSE(result->order.Ahead(j, i))
              << "inconsistent with scores";
        }
      }
    }
  }
}

// Theorem 10 end-to-end: f-dagger of the median scores beats (x2) every
// partial ranking on the total-L1 objective.
TEST(OptimalBucketingTest, Theorem10FactorTwoOverPartialRankings) {
  Rng rng(11);
  const std::size_t n = 6;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = static_cast<std::size_t>(rng.UniformInt(1, 5));
    std::vector<BucketOrder> inputs;
    for (std::size_t i = 0; i < m; ++i) {
      inputs.push_back(RandomBucketOrder(n, rng));
    }
    auto median = MedianRankScoresQuad(inputs, MedianPolicy::kLower);
    ASSERT_TRUE(median.ok());
    auto fdagger = OptimalBucketing(*median, BucketingAlgorithm::kAuto);
    ASSERT_TRUE(fdagger.ok());
    const std::int64_t ours = TwiceTotalFprof(fdagger->order, inputs);
    for (int g = 0; g < 60; ++g) {
      const BucketOrder tau = RandomBucketOrder(n, rng);
      EXPECT_LE(ours, 2 * TwiceTotalFprof(tau, inputs));
    }
  }
}

TEST(OptimalBucketingTest, EmptyInputRejected) {
  EXPECT_FALSE(OptimalBucketing({}).ok());
  EXPECT_FALSE(OptimalBucketingBrute({}).ok());
}

TEST(OptimalBucketingTest, BruteForceGuardsLargeN) {
  std::vector<std::int64_t> scores(25, 4);
  EXPECT_FALSE(OptimalBucketingBrute(scores).ok());
}

TEST(OptimalBucketingTest, BucketingCostQuadValidates) {
  EXPECT_FALSE(BucketingCostQuad({4, 8}, {1}).ok());
  EXPECT_FALSE(BucketingCostQuad({4, 8}, {0, 2}).ok());
  auto cost = BucketingCostQuad({4, 8}, {2});
  ASSERT_TRUE(cost.ok());
  // Both in one bucket at pos 1.5 (quad 6): |4-6| + |8-6| = 4.
  EXPECT_EQ(*cost, 4);
}

TEST(OptimalBucketingTest, ClusteredScoresMergeIntoBuckets) {
  // Scores form two tight clusters; the optimal consolidation is two
  // buckets.
  // Elements 0..2 near position 1.33, elements 3..5 near position 5.
  const std::vector<std::int64_t> scores = {8, 8, 8, 20, 20, 20};
  auto result = OptimalBucketing(scores, BucketingAlgorithm::kAuto);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->order.num_buckets(), 2u);
  EXPECT_EQ(result->order.bucket(0), (std::vector<ElementId>{0, 1, 2}));
}

}  // namespace
}  // namespace rankties
