#include "core/footrule_matching.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "core/footrule.h"
#include "gen/random_orders.h"
#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/rng.h"

namespace rankties {
namespace {

std::vector<std::vector<std::int64_t>> InducedCostMatrix(
    const std::vector<std::int64_t>& element_pos,
    const std::vector<std::int64_t>& slot_pos) {
  const std::size_t n = element_pos.size();
  std::vector<std::vector<std::int64_t>> cost(
      n, std::vector<std::int64_t>(n, 0));
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      cost[r][c] = std::abs(element_pos[r] - slot_pos[c]);
    }
  }
  return cost;
}

// Slot positions of a type-alpha bucket order: bucket b of size s occupying
// positions before+1 .. before+s contributes s slots at doubled position
// 2*before + s + 1.
std::vector<std::int64_t> SlotPositionsOfType(
    const std::vector<std::size_t>& alpha) {
  std::vector<std::int64_t> slot_pos;
  std::int64_t before = 0;
  for (const std::size_t size : alpha) {
    const std::int64_t twice_pos =
        2 * before + static_cast<std::int64_t>(size) + 1;
    for (std::size_t s = 0; s < size; ++s) slot_pos.push_back(twice_pos);
    before += static_cast<std::int64_t>(size);
  }
  return slot_pos;
}

TEST(StructuredSlotAssignmentTest, SingletonBucketsHandComputed) {
  // Elements at doubled positions 4, 2, 8 against full-ranking slots
  // 2, 4, 6: sorted matching is e1->2, e0->4, e2->6, cost 0 + 0 + 2.
  const auto result = StructuredSlotAssignment({4, 2, 8}, {2, 4, 6});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_cost, 2);
  EXPECT_EQ(result->column_of_row, (std::vector<std::size_t>{1, 0, 2}));
}

TEST(StructuredSlotAssignmentTest, PerfectMatchCostsZero) {
  const auto result = StructuredSlotAssignment({6, 2, 4}, {2, 4, 6});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_cost, 0);
  EXPECT_EQ(result->column_of_row, (std::vector<std::size_t>{2, 0, 1}));
}

TEST(StructuredSlotAssignmentTest, OneGiantTieBucket) {
  // A single bucket of 4 puts every slot at doubled position 5; any
  // permutation is optimal with cost sum |pos - 5| = 3 + 1 + 1 + 3.
  const std::vector<std::int64_t> element_pos = {2, 4, 6, 8};
  const std::vector<std::int64_t> slot_pos = SlotPositionsOfType({4});
  EXPECT_EQ(slot_pos, (std::vector<std::int64_t>{5, 5, 5, 5}));
  const auto result = StructuredSlotAssignment(element_pos, slot_pos);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_cost, 8);
}

TEST(StructuredSlotAssignmentTest, AlternatingRunsHandComputed) {
  // Type (2, 1, 2) over n = 5: slots at 3, 3, 6, 9, 9. Elements already in
  // slot order cost |2-3| + |4-3| + |6-6| + |8-9| + |10-9| = 4.
  const std::vector<std::int64_t> slot_pos = SlotPositionsOfType({2, 1, 2});
  EXPECT_EQ(slot_pos, (std::vector<std::int64_t>{3, 3, 6, 9, 9}));
  const auto result =
      StructuredSlotAssignment({2, 4, 6, 8, 10}, slot_pos);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->total_cost, 4);
  EXPECT_EQ(result->column_of_row,
            (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(StructuredSlotAssignmentTest, TiedElementsBreakByIdDeterministically) {
  // Three elements tied at doubled position 4 (one bucket of 3 in the
  // source): ids fill the slots in increasing order.
  const auto result = StructuredSlotAssignment({4, 4, 4}, {2, 4, 6});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->column_of_row, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(result->total_cost, 4);
}

TEST(StructuredSlotAssignmentTest, RejectsUnstructuredInstances) {
  EXPECT_FALSE(StructuredSlotAssignment({}, {}).ok());
  EXPECT_FALSE(StructuredSlotAssignment({1, 2}, {1}).ok());
  // Decreasing slot positions are not a structured instance; callers fall
  // back to the general matcher.
  EXPECT_FALSE(StructuredSlotAssignment({1, 2}, {4, 2}).ok());
}

TEST(StructuredSlotAssignmentTest, MatchesHungarianOnRandomInstances) {
  Rng rng(20260807);
  for (int round = 0; round < 60; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 16));
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const BucketOrder shape = RandomBucketOrder(n, rng);
    std::vector<std::int64_t> element_pos(n);
    for (std::size_t e = 0; e < n; ++e) {
      element_pos[e] = sigma.TwicePosition(static_cast<ElementId>(e));
    }
    const std::vector<std::int64_t> slot_pos =
        SlotPositionsOfType(shape.Type());
    const auto structured = StructuredSlotAssignment(element_pos, slot_pos);
    ASSERT_TRUE(structured.ok()) << structured.status();
    const auto general =
        MinCostAssignment(InducedCostMatrix(element_pos, slot_pos));
    ASSERT_TRUE(general.ok()) << general.status();
    // Equal-cost optima may assign differently; only the cost is unique.
    EXPECT_EQ(structured->total_cost, general->total_cost)
        << "round " << round << " n " << n;
  }
}

// The m == 1 fast path inside FootruleOptimalOfType must be cost-identical
// to the general Hungarian path on the same instance.
TEST(FootruleOptimalStructuredTest, SingleInputTypedMatchesGeneralMatcher) {
  Rng rng(7);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 14));
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const std::vector<std::size_t> alpha = RandomBucketOrder(n, rng).Type();
    const auto typed = FootruleOptimalOfType({sigma}, alpha);
    ASSERT_TRUE(typed.ok()) << typed.status();

    std::vector<std::int64_t> element_pos(n);
    for (std::size_t e = 0; e < n; ++e) {
      element_pos[e] = sigma.TwicePosition(static_cast<ElementId>(e));
    }
    const auto general = MinCostAssignment(
        InducedCostMatrix(element_pos, SlotPositionsOfType(alpha)));
    ASSERT_TRUE(general.ok()) << general.status();
    EXPECT_EQ(typed->twice_total_cost, general->total_cost);

    // The reported cost is the doubled Fprof objective of the returned
    // order against the input.
    EXPECT_EQ(typed->twice_total_cost, TwiceFprof(typed->order, sigma));
  }
}

TEST(FootruleOptimalStructuredTest, SingleInputFullMatchesGeneralMatcher) {
  Rng rng(13);
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 14));
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const auto full = FootruleOptimalFull({sigma});
    ASSERT_TRUE(full.ok()) << full.status();

    std::vector<std::int64_t> element_pos(n);
    std::vector<std::int64_t> slot_pos(n);
    for (std::size_t e = 0; e < n; ++e) {
      element_pos[e] = sigma.TwicePosition(static_cast<ElementId>(e));
      slot_pos[e] = 2 * static_cast<std::int64_t>(e + 1);
    }
    const auto general =
        MinCostAssignment(InducedCostMatrix(element_pos, slot_pos));
    ASSERT_TRUE(general.ok()) << general.status();
    EXPECT_EQ(full->twice_total_cost, general->total_cost);
    EXPECT_EQ(full->twice_total_cost,
              TwiceFprof(BucketOrder::FromPermutation(full->ranking), sigma));
  }
}

// Duplicating the single input forces the multi-input (Hungarian) branch;
// the cost matrix doubles exactly, so the optimum must be exactly twice the
// structured single-input optimum.
TEST(FootruleOptimalStructuredTest, DuplicatedInputTakesGeneralBranch) {
  Rng rng(29);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = static_cast<std::size_t>(rng.UniformInt(2, 12));
    const BucketOrder sigma = RandomBucketOrder(n, rng);
    const std::vector<std::size_t> alpha = RandomBucketOrder(n, rng).Type();
    const auto one = FootruleOptimalOfType({sigma}, alpha);
    const auto two = FootruleOptimalOfType({sigma, sigma}, alpha);
    ASSERT_TRUE(one.ok()) << one.status();
    ASSERT_TRUE(two.ok()) << two.status();
    EXPECT_EQ(two->twice_total_cost, 2 * one->twice_total_cost);

    const auto full_one = FootruleOptimalFull({sigma});
    const auto full_two = FootruleOptimalFull({sigma, sigma});
    ASSERT_TRUE(full_one.ok()) << full_one.status();
    ASSERT_TRUE(full_two.ok()) << full_two.status();
    EXPECT_EQ(full_two->twice_total_cost, 2 * full_one->twice_total_cost);
  }
}

}  // namespace
}  // namespace rankties
