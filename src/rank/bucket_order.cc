#include "rank/bucket_order.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>

#include "util/contracts.h"

namespace rankties {

void BucketOrder::RebuildPositions() {
  twice_pos_by_bucket_.resize(buckets_.size());
  std::int64_t before = 0;  // number of elements in earlier buckets
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::int64_t size = static_cast<std::int64_t>(buckets_[b].size());
    // pos(B) = before + (size+1)/2  =>  2*pos = 2*before + size + 1.
    twice_pos_by_bucket_[b] = 2 * before + size + 1;
    before += size;
  }
}

StatusOr<BucketOrder> BucketOrder::FromBuckets(
    std::size_t n, std::vector<std::vector<ElementId>> buckets) {
  BucketOrder order;
  order.bucket_of_.assign(n, -1);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].empty()) {
      return Status::InvalidArgument("empty bucket");
    }
    for (ElementId e : buckets[b]) {
      if (e < 0 || static_cast<std::size_t>(e) >= n) {
        return Status::InvalidArgument("element out of range [0, n)");
      }
      if (order.bucket_of_[static_cast<std::size_t>(e)] != -1) {
        return Status::InvalidArgument("element appears in two buckets");
      }
      order.bucket_of_[static_cast<std::size_t>(e)] =
          static_cast<BucketIndex>(b);
    }
    std::sort(buckets[b].begin(), buckets[b].end());
  }
  for (std::size_t e = 0; e < n; ++e) {
    if (order.bucket_of_[e] == -1) {
      return Status::InvalidArgument("element missing from all buckets");
    }
  }
  order.buckets_ = std::move(buckets);
  order.RebuildPositions();
  RANKTIES_DCHECK_OK(order.Validate());
  return order;
}

StatusOr<BucketOrder> BucketOrder::FromBucketIndex(
    const std::vector<BucketIndex>& bucket_of) {
  const std::size_t n = bucket_of.size();
  BucketIndex max_bucket = -1;
  for (BucketIndex b : bucket_of) {
    if (b < 0) return Status::InvalidArgument("negative bucket index");
    max_bucket = std::max(max_bucket, b);
  }
  std::vector<std::vector<ElementId>> buckets(
      static_cast<std::size_t>(max_bucket + 1));
  for (std::size_t e = 0; e < n; ++e) {
    buckets[static_cast<std::size_t>(bucket_of[e])].push_back(
        static_cast<ElementId>(e));
  }
  for (const auto& b : buckets) {
    if (b.empty()) {
      return Status::InvalidArgument("bucket indices not contiguous");
    }
  }
  return FromBuckets(n, std::move(buckets));
}

BucketOrder BucketOrder::FromPermutation(const Permutation& perm) {
  BucketOrder order;
  const std::size_t n = perm.n();
  order.buckets_.resize(n);
  order.bucket_of_.resize(n);
  for (std::size_t e = 0; e < n; ++e) {
    const ElementId rank = perm.Rank(static_cast<ElementId>(e));
    order.buckets_[static_cast<std::size_t>(rank)] = {
        static_cast<ElementId>(e)};
    order.bucket_of_[e] = rank;
  }
  order.RebuildPositions();
  RANKTIES_DCHECK_OK(order.Validate());
  return order;
}

BucketOrder BucketOrder::SingleBucket(std::size_t n) {
  BucketOrder order;
  if (n == 0) return order;
  order.buckets_.resize(1);
  order.buckets_[0].resize(n);
  std::iota(order.buckets_[0].begin(), order.buckets_[0].end(), 0);
  order.bucket_of_.assign(n, 0);
  order.RebuildPositions();
  RANKTIES_DCHECK_OK(order.Validate());
  return order;
}

BucketOrder BucketOrder::TopKOf(const Permutation& perm, std::size_t k) {
  const std::size_t n = perm.n();
  RANKTIES_DCHECK(k <= n);
  if (k == n) return FromPermutation(perm);
  BucketOrder order;
  order.buckets_.resize(k + (k < n ? 1 : 0));
  order.bucket_of_.resize(n);
  for (std::size_t r = 0; r < k; ++r) {
    const ElementId e = perm.At(static_cast<ElementId>(r));
    order.buckets_[r] = {e};
    order.bucket_of_[static_cast<std::size_t>(e)] =
        static_cast<BucketIndex>(r);
  }
  for (std::size_t r = k; r < n; ++r) {
    const ElementId e = perm.At(static_cast<ElementId>(r));
    order.buckets_[k].push_back(e);
    order.bucket_of_[static_cast<std::size_t>(e)] =
        static_cast<BucketIndex>(k);
  }
  std::sort(order.buckets_[k].begin(), order.buckets_[k].end());
  order.RebuildPositions();
  RANKTIES_DCHECK_OK(order.Validate());
  return order;
}

BucketOrder BucketOrder::FromScores(const std::vector<double>& scores) {
  const std::size_t n = scores.size();
  std::vector<ElementId> by_score(n);
  std::iota(by_score.begin(), by_score.end(), 0);
  std::sort(by_score.begin(), by_score.end(), [&](ElementId a, ElementId b) {
    return scores[static_cast<std::size_t>(a)] <
           scores[static_cast<std::size_t>(b)];
  });
  BucketOrder order;
  order.bucket_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ElementId e = by_score[i];
    if (i == 0 || scores[static_cast<std::size_t>(e)] !=
                      scores[static_cast<std::size_t>(by_score[i - 1])]) {
      order.buckets_.emplace_back();
    }
    order.buckets_.back().push_back(e);
    order.bucket_of_[static_cast<std::size_t>(e)] =
        static_cast<BucketIndex>(order.buckets_.size() - 1);
  }
  for (auto& b : order.buckets_) std::sort(b.begin(), b.end());
  order.RebuildPositions();
  RANKTIES_DCHECK_OK(order.Validate());
  return order;
}

BucketOrder BucketOrder::FromIntKeys(const std::vector<std::int64_t>& keys) {
  const std::size_t n = keys.size();
  std::vector<ElementId> by_key(n);
  std::iota(by_key.begin(), by_key.end(), 0);
  std::sort(by_key.begin(), by_key.end(), [&](ElementId a, ElementId b) {
    return keys[static_cast<std::size_t>(a)] <
           keys[static_cast<std::size_t>(b)];
  });
  BucketOrder order;
  order.bucket_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ElementId e = by_key[i];
    if (i == 0 || keys[static_cast<std::size_t>(e)] !=
                      keys[static_cast<std::size_t>(by_key[i - 1])]) {
      order.buckets_.emplace_back();
    }
    order.buckets_.back().push_back(e);
    order.bucket_of_[static_cast<std::size_t>(e)] =
        static_cast<BucketIndex>(order.buckets_.size() - 1);
  }
  for (auto& b : order.buckets_) std::sort(b.begin(), b.end());
  order.RebuildPositions();
  RANKTIES_DCHECK_OK(order.Validate());
  return order;
}

Status BucketOrder::Validate() const {
  const std::size_t n = bucket_of_.size();
  if (twice_pos_by_bucket_.size() != buckets_.size()) {
    return Status::Internal("position table size differs from bucket count");
  }
  std::size_t covered = 0;
  std::int64_t before = 0;  // elements in earlier buckets
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const std::vector<ElementId>& bucket = buckets_[b];
    if (bucket.empty()) return Status::Internal("empty bucket");
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      const ElementId e = bucket[i];
      if (e < 0 || static_cast<std::size_t>(e) >= n) {
        return Status::Internal("bucket element out of range [0, n)");
      }
      if (i > 0 && bucket[i - 1] >= e) {
        return Status::Internal("bucket elements not strictly ascending");
      }
      if (bucket_of_[static_cast<std::size_t>(e)] !=
          static_cast<BucketIndex>(b)) {
        return Status::Internal("bucket_of disagrees with the partition");
      }
    }
    const std::int64_t size = static_cast<std::int64_t>(bucket.size());
    if (twice_pos_by_bucket_[b] != 2 * before + size + 1) {
      return Status::Internal("doubled average position is inconsistent");
    }
    before += size;
    covered += bucket.size();
  }
  // bucket_of_ consistency above makes double-coverage impossible, so a
  // total count equal to n certifies the partition.
  if (covered != n) return Status::Internal("buckets do not cover the domain");
  return Status::Ok();
}

std::vector<std::size_t> BucketOrder::Type() const {
  std::vector<std::size_t> type;
  type.reserve(buckets_.size());
  for (const auto& b : buckets_) type.push_back(b.size());
  return type;
}

bool BucketOrder::IsTopK(std::size_t k) const {
  if (k > n()) return false;
  if (k == n()) return IsFull();
  if (num_buckets() != k + 1) return false;
  for (std::size_t b = 0; b < k; ++b) {
    if (buckets_[b].size() != 1) return false;
  }
  return buckets_[k].size() == n() - k;
}

BucketOrder BucketOrder::Reverse() const {
  BucketOrder order;
  order.buckets_.assign(buckets_.rbegin(), buckets_.rend());
  order.bucket_of_.resize(n());
  const BucketIndex t = static_cast<BucketIndex>(num_buckets());
  for (std::size_t e = 0; e < n(); ++e) {
    order.bucket_of_[e] = t - 1 - bucket_of_[e];
  }
  order.RebuildPositions();
  RANKTIES_DCHECK_OK(order.Validate());
  return order;
}

StatusOr<BucketOrder> BucketOrder::RestrictTo(
    const std::vector<ElementId>& subset) const {
  std::vector<BucketIndex> old_bucket(subset.size());
  std::vector<bool> seen(n(), false);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    const ElementId e = subset[i];
    if (e < 0 || static_cast<std::size_t>(e) >= n()) {
      return Status::InvalidArgument("subset element out of range");
    }
    if (seen[static_cast<std::size_t>(e)]) {
      return Status::InvalidArgument("duplicate subset element");
    }
    seen[static_cast<std::size_t>(e)] = true;
    old_bucket[i] = BucketOf(e);
  }
  // Compact the surviving bucket indices, preserving order.
  std::vector<BucketIndex> remap(num_buckets(), -1);
  BucketIndex next = 0;
  for (std::size_t b = 0; b < num_buckets(); ++b) {
    for (std::size_t i = 0; i < subset.size(); ++i) {
      if (old_bucket[i] == static_cast<BucketIndex>(b)) {
        remap[b] = next++;
        break;
      }
    }
  }
  std::vector<BucketIndex> bucket_of(subset.size());
  for (std::size_t i = 0; i < subset.size(); ++i) {
    bucket_of[i] = remap[static_cast<std::size_t>(old_bucket[i])];
  }
  return FromBucketIndex(bucket_of);
}

Permutation BucketOrder::CanonicalRefinement() const {
  std::vector<ElementId> out;
  out.reserve(n());
  for (const auto& b : buckets_) {
    out.insert(out.end(), b.begin(), b.end());
  }
  StatusOr<Permutation> perm = Permutation::FromOrder(out);
  RANKTIES_DCHECK_OK(perm);
  return std::move(perm).value();
}

std::string BucketOrder::ToString() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (b > 0) os << " | ";
    for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
      if (i > 0) os << " ";
      os << buckets_[b][i];
    }
  }
  os << "]";
  return os.str();
}

}  // namespace rankties
