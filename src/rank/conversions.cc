#include "rank/conversions.h"
#include "util/contracts.h"

#include <cmath>
#include <limits>
#include <utility>

namespace rankties {

StatusOr<BucketOrder> QuantizeScores(const std::vector<double>& scores,
                                     double granularity) {
  if (!(granularity > 0)) {
    return Status::InvalidArgument("granularity must be positive");
  }
  std::vector<std::int64_t> keys(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const double band = std::floor(scores[i] / granularity);
    // Non-finite scores (e.g. nulls mapped to +inf) sort last in one band.
    keys[i] = std::isfinite(band) ? static_cast<std::int64_t>(band)
                                  : std::numeric_limits<std::int64_t>::max();
  }
  return BucketOrder::FromIntKeys(keys);
}

StatusOr<BucketOrder> RankByDistance(const std::vector<double>& scores,
                                     double target, double granularity) {
  if (granularity < 0) {
    return Status::InvalidArgument("granularity must be non-negative");
  }
  std::vector<double> dist(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) {
    dist[i] = std::abs(scores[i] - target);
  }
  if (granularity == 0) return BucketOrder::FromScores(dist);
  return QuantizeScores(dist, granularity);
}

BucketOrder FromScoresDescending(const std::vector<double>& scores) {
  std::vector<double> negated(scores.size());
  for (std::size_t i = 0; i < scores.size(); ++i) negated[i] = -scores[i];
  return BucketOrder::FromScores(negated);
}

StatusOr<BucketOrder> MergeBuckets(const BucketOrder& order,
                                   const std::vector<std::size_t>& type) {
  std::size_t total = 0;
  for (std::size_t t : type) {
    if (t == 0) return Status::InvalidArgument("zero-length bucket run");
    total += t;
  }
  if (total != order.num_buckets()) {
    return Status::InvalidArgument("type does not cover all buckets");
  }
  std::vector<std::vector<ElementId>> merged;
  merged.reserve(type.size());
  std::size_t b = 0;
  for (std::size_t run : type) {
    std::vector<ElementId> bucket;
    for (std::size_t i = 0; i < run; ++i, ++b) {
      const auto& src = order.bucket(b);
      bucket.insert(bucket.end(), src.begin(), src.end());
    }
    merged.push_back(std::move(bucket));
  }
  return BucketOrder::FromBuckets(order.n(), std::move(merged));
}

StatusOr<BucketOrder> ConsecutiveBlocks(std::size_t n,
                                        const std::vector<std::size_t>& sizes) {
  std::size_t total = 0;
  for (std::size_t s : sizes) {
    if (s == 0) return Status::InvalidArgument("zero bucket size");
    total += s;
  }
  if (total != n) return Status::InvalidArgument("sizes do not sum to n");
  std::vector<std::vector<ElementId>> buckets;
  buckets.reserve(sizes.size());
  ElementId next = 0;
  for (std::size_t s : sizes) {
    std::vector<ElementId> bucket(s);
    for (std::size_t i = 0; i < s; ++i) bucket[i] = next++;
    buckets.push_back(std::move(bucket));
  }
  return BucketOrder::FromBuckets(n, std::move(buckets));
}

BucketOrder Relabel(const BucketOrder& order, const Permutation& relabel) {
  RANKTIES_DCHECK(order.n() == relabel.n());
  std::vector<BucketIndex> bucket_of(order.n());
  for (std::size_t e = 0; e < order.n(); ++e) {
    bucket_of[static_cast<std::size_t>(
        relabel.At(static_cast<ElementId>(e)))] =
        order.BucketOf(static_cast<ElementId>(e));
  }
  StatusOr<BucketOrder> result = BucketOrder::FromBucketIndex(bucket_of);
  RANKTIES_DCHECK_OK(result);
  return std::move(result).value();
}

BucketOrder Concatenate(const BucketOrder& a, const BucketOrder& b) {
  std::vector<BucketIndex> bucket_of(a.n() + b.n());
  for (std::size_t e = 0; e < a.n(); ++e) {
    bucket_of[e] = a.BucketOf(static_cast<ElementId>(e));
  }
  const BucketIndex offset = static_cast<BucketIndex>(a.num_buckets());
  for (std::size_t e = 0; e < b.n(); ++e) {
    bucket_of[a.n() + e] = offset + b.BucketOf(static_cast<ElementId>(e));
  }
  StatusOr<BucketOrder> result = BucketOrder::FromBucketIndex(bucket_of);
  RANKTIES_DCHECK_OK(result);
  return std::move(result).value();
}

}  // namespace rankties
