#ifndef RANKTIES_RANK_IO_H_
#define RANKTIES_RANK_IO_H_

#include <string>

#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Parses the textual bucket-order format produced by
/// BucketOrder::ToString(): "[0 1 | 2 | 3 4]". Whitespace is flexible;
/// element ids must cover 0..n-1 exactly. Fails on malformed input.
StatusOr<BucketOrder> ParseBucketOrder(const std::string& text);

/// Serializes one bucket order per line; `ParseBucketOrders` reads it back.
std::string FormatBucketOrders(const std::vector<BucketOrder>& orders);

/// Parses one bucket order per non-empty line.
StatusOr<std::vector<BucketOrder>> ParseBucketOrders(const std::string& text);

}  // namespace rankties

#endif  // RANKTIES_RANK_IO_H_
