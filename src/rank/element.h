#ifndef RANKTIES_RANK_ELEMENT_H_
#define RANKTIES_RANK_ELEMENT_H_

#include <cstdint>

namespace rankties {

/// Elements of the ranked domain D are dense integer ids 0..n-1. Higher
/// layers (the db library) map record ids / labels onto this dense space.
using ElementId = std::int32_t;

/// Index of a bucket within a bucket order, 0-based, front bucket first.
using BucketIndex = std::int32_t;

}  // namespace rankties

#endif  // RANKTIES_RANK_ELEMENT_H_
