#include "rank/permutation.h"

#include <numeric>
#include <sstream>

namespace rankties {

Permutation::Permutation(std::size_t n) : ranks_(n), order_(n) {
  std::iota(ranks_.begin(), ranks_.end(), 0);
  std::iota(order_.begin(), order_.end(), 0);
}

namespace {

// Checks that `v` is a bijection of {0..n-1}; fills `inverse`.
Status InvertBijection(const std::vector<ElementId>& v,
                       std::vector<ElementId>* inverse) {
  const std::size_t n = v.size();
  inverse->assign(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    ElementId x = v[i];
    if (x < 0 || static_cast<std::size_t>(x) >= n) {
      return Status::InvalidArgument("entry out of range [0, n)");
    }
    if ((*inverse)[static_cast<std::size_t>(x)] != -1) {
      return Status::InvalidArgument("duplicate entry; not a permutation");
    }
    (*inverse)[static_cast<std::size_t>(x)] = static_cast<ElementId>(i);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Permutation> Permutation::FromRanks(std::vector<ElementId> ranks) {
  std::vector<ElementId> order;
  Status s = InvertBijection(ranks, &order);
  if (!s.ok()) return s;
  return Permutation(std::move(ranks), std::move(order));
}

StatusOr<Permutation> Permutation::FromOrder(
    const std::vector<ElementId>& order) {
  std::vector<ElementId> ranks;
  Status s = InvertBijection(order, &ranks);
  if (!s.ok()) return s;
  return Permutation(std::move(ranks), order);
}

Permutation Permutation::Random(std::size_t n, Rng& rng) {
  Permutation p(n);
  rng.Shuffle(p.order_);
  for (std::size_t r = 0; r < n; ++r) {
    p.ranks_[static_cast<std::size_t>(p.order_[r])] =
        static_cast<ElementId>(r);
  }
  return p;
}

Permutation Permutation::Reverse() const {
  const std::size_t n = ranks_.size();
  Permutation p(n);
  for (std::size_t e = 0; e < n; ++e) {
    p.ranks_[e] = static_cast<ElementId>(n - 1) - ranks_[e];
  }
  for (std::size_t e = 0; e < n; ++e) {
    p.order_[static_cast<std::size_t>(p.ranks_[e])] =
        static_cast<ElementId>(e);
  }
  return p;
}

Permutation Permutation::Inverse() const {
  return Permutation(order_, ranks_);
}

std::string Permutation::ToString() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t r = 0; r < order_.size(); ++r) {
    if (r > 0) os << " ";
    os << order_[r];
  }
  os << ")";
  return os.str();
}

}  // namespace rankties
