#ifndef RANKTIES_RANK_PERMUTATION_H_
#define RANKTIES_RANK_PERMUTATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "rank/element.h"
#include "util/rng.h"
#include "util/status.h"

namespace rankties {

/// A full ranking (linear order) of the domain {0..n-1}.
///
/// Stored as the rank vector: `Rank(e)` is the 0-based position of element
/// `e` (0 = best / first). The paper's 1-based ranking sigma(e) is
/// `Rank(e) + 1`; bucket-order positions use that convention.
class Permutation {
 public:
  /// The identity permutation (element e at rank e). n may be 0.
  explicit Permutation(std::size_t n);

  /// Builds from a rank vector: `ranks[e]` = rank of element e.
  /// Fails unless `ranks` is a bijection onto 0..n-1.
  static StatusOr<Permutation> FromRanks(std::vector<ElementId> ranks);

  /// Builds from an order vector: `order[r]` = element at rank r.
  /// Fails unless `order` is a bijection onto 0..n-1.
  static StatusOr<Permutation> FromOrder(const std::vector<ElementId>& order);

  /// Uniformly random permutation of n elements.
  static Permutation Random(std::size_t n, Rng& rng);

  std::size_t n() const { return ranks_.size(); }

  /// Rank of element `e`, 0-based.
  ElementId Rank(ElementId e) const { return ranks_[static_cast<size_t>(e)]; }

  /// Element at rank `r`, 0-based (inverse lookup, O(1)).
  ElementId At(ElementId r) const { return order_[static_cast<size_t>(r)]; }

  /// The element order, best first.
  const std::vector<ElementId>& order() const { return order_; }
  /// The rank vector indexed by element.
  const std::vector<ElementId>& ranks() const { return ranks_; }

  /// The reversed ranking (worst becomes best).
  Permutation Reverse() const;

  /// The inverse permutation viewed as a map on ranks.
  Permutation Inverse() const;

  /// Returns true if `a` is ranked ahead of `b`.
  bool Ahead(ElementId a, ElementId b) const { return Rank(a) < Rank(b); }

  /// "(2 0 1)": elements listed best-first.
  std::string ToString() const;

  friend bool operator==(const Permutation& a, const Permutation& b) {
    return a.ranks_ == b.ranks_;
  }

 private:
  Permutation(std::vector<ElementId> ranks, std::vector<ElementId> order)
      : ranks_(std::move(ranks)), order_(std::move(order)) {}

  std::vector<ElementId> ranks_;  // element -> rank
  std::vector<ElementId> order_;  // rank -> element
};

}  // namespace rankties

#endif  // RANKTIES_RANK_PERMUTATION_H_
