#include "rank/active_domain.h"

#include <algorithm>
#include <unordered_map>

namespace rankties {

namespace {

// Builds the bucket order for one list over the dense active domain:
// listed items as singleton buckets in order, everything else in a bottom
// bucket.
StatusOr<BucketOrder> ListToOrder(
    const std::vector<std::int64_t>& top,
    const std::unordered_map<std::int64_t, ElementId>& dense,
    std::size_t n) {
  std::vector<std::vector<ElementId>> buckets;
  std::vector<bool> listed(n, false);
  for (std::int64_t item : top) {
    const ElementId e = dense.at(item);
    if (listed[static_cast<std::size_t>(e)]) {
      return Status::InvalidArgument("duplicate item in top list");
    }
    listed[static_cast<std::size_t>(e)] = true;
    buckets.push_back({e});
  }
  std::vector<ElementId> bottom;
  for (std::size_t e = 0; e < n; ++e) {
    if (!listed[e]) bottom.push_back(static_cast<ElementId>(e));
  }
  if (!bottom.empty()) buckets.push_back(std::move(bottom));
  return BucketOrder::FromBuckets(n, std::move(buckets));
}

}  // namespace

StatusOr<AlignedTopK> AlignTopKLists(const std::vector<std::int64_t>& top1,
                                     const std::vector<std::int64_t>& top2) {
  if (top1.empty() && top2.empty()) {
    return Status::InvalidArgument("both top lists are empty");
  }
  // Dense ids in first-appearance order (top1 then top2) for determinism.
  std::unordered_map<std::int64_t, ElementId> dense;
  std::vector<std::int64_t> items;
  for (const auto* list : {&top1, &top2}) {
    for (std::int64_t item : *list) {
      if (dense.emplace(item, static_cast<ElementId>(items.size())).second) {
        items.push_back(item);
      }
    }
  }
  const std::size_t n = items.size();
  StatusOr<BucketOrder> sigma = ListToOrder(top1, dense, n);
  if (!sigma.ok()) return sigma.status();
  StatusOr<BucketOrder> tau = ListToOrder(top2, dense, n);
  if (!tau.ok()) return tau.status();
  return AlignedTopK{std::move(sigma).value(), std::move(tau).value(),
                     std::move(items)};
}

StatusOr<AlignedTopKMany> AlignManyTopKLists(
    const std::vector<std::vector<std::int64_t>>& tops) {
  if (tops.empty()) return Status::InvalidArgument("no top lists");
  std::unordered_map<std::int64_t, ElementId> dense;
  AlignedTopKMany aligned;
  for (const auto& list : tops) {
    for (std::int64_t item : list) {
      if (dense.emplace(item, static_cast<ElementId>(aligned.items.size()))
              .second) {
        aligned.items.push_back(item);
      }
    }
  }
  if (aligned.items.empty()) {
    return Status::InvalidArgument("all top lists are empty");
  }
  const std::size_t n = aligned.items.size();
  aligned.orders.reserve(tops.size());
  for (const auto& list : tops) {
    StatusOr<BucketOrder> order = ListToOrder(list, dense, n);
    if (!order.ok()) return order.status();
    aligned.orders.push_back(std::move(order).value());
  }
  return aligned;
}

}  // namespace rankties
