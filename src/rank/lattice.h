#ifndef RANKTIES_RANK_LATTICE_H_
#define RANKTIES_RANK_LATTICE_H_

#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Lattice-style operations on bucket orders under the refinement relation
/// (paper §2). Bucket orders do not form a lattice — two orders with a
/// discordant pair have no common refinement at all — but both bounds
/// below are well-defined whenever they exist, and useful: the meet is the
/// canonical "merge two compatible orderings" operation, the join is the
/// consensus coarsening ("what do these two rankings agree on?").

/// The coarsest common refinement (meet): the bucket order with the fewest
/// buckets that refines both sigma and tau — ties exactly the pairs tied
/// in *both*. Exists iff sigma and tau have no discordant pair; fails with
/// kFailedPrecondition otherwise. O(n log n).
StatusOr<BucketOrder> CoarsestCommonRefinement(const BucketOrder& sigma,
                                               const BucketOrder& tau);

/// The finest common coarsening (join): the bucket order with the most
/// buckets that both sigma and tau refine. Always exists (the single
/// bucket coarsens everything). Its buckets are the minimal "agreement
/// intervals": a boundary survives exactly where both orders place a
/// boundary around the same prefix set. O(n log n).
BucketOrder FinestCommonCoarsening(const BucketOrder& sigma,
                                   const BucketOrder& tau);

}  // namespace rankties

#endif  // RANKTIES_RANK_LATTICE_H_
