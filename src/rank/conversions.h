#ifndef RANKTIES_RANK_CONVERSIONS_H_
#define RANKTIES_RANK_CONVERSIONS_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Converts raw attribute scores to a bucket order with ties at a given
/// granularity: scores are bucketed by floor(score / granularity), so e.g.
/// granularity = 10 treats any two distances within the same 10-mile band
/// as tied (the paper's §1 "any distance up to ten miles is the same"
/// example). Ascending: smaller band = better.
/// Fails if granularity <= 0.
StatusOr<BucketOrder> QuantizeScores(const std::vector<double>& scores,
                                     double granularity);

/// Converts scores to a bucket order ranking by *distance to a target*
/// (nearest first), with optional granularity bands on the absolute
/// distance. Used for "number of connections close to 0", "price near $X".
/// Fails if granularity < 0 (0 means exact-distance ties only).
StatusOr<BucketOrder> RankByDistance(const std::vector<double>& scores,
                                     double target, double granularity);

/// Descending variant of BucketOrder::FromScores (larger score = better).
BucketOrder FromScoresDescending(const std::vector<double>& scores);

/// Collapses a bucket order to a coarser one by merging every run of
/// buckets whose sizes are given by `type` (front to back). `type` must sum
/// to... exactly cover the buckets of `order`; fails otherwise. The merge
/// respects order: the first type[0] buckets merge into one, and so on.
/// `type` entries count *buckets*, not elements.
StatusOr<BucketOrder> MergeBuckets(const BucketOrder& order,
                                   const std::vector<std::size_t>& type);

/// Builds the bucket order over {0..n-1} whose buckets, front to back, have
/// the sizes in `sizes` and contain consecutive ids: {0..s0-1}, {s0..}, ...
/// Fails unless the sizes are positive and sum to n.
StatusOr<BucketOrder> ConsecutiveBlocks(std::size_t n,
                                        const std::vector<std::size_t>& sizes);

/// Renames every element through `relabel`: element e of `order` becomes
/// relabel.At(e)... precisely, the result ranks relabel(e) wherever
/// `order` ranked e. All metrics are invariant under applying the same
/// relabeling to both sides (metamorphic tests rely on this).
BucketOrder Relabel(const BucketOrder& order, const Permutation& relabel);

/// Concatenates two bucket orders over disjoint id ranges: the result is
/// over {0..na+nb-1}, with all of `a`'s buckets first and `b`'s buckets
/// (ids shifted by a.n()) after. Both Kendall- and footrule-type metrics
/// are additive across such concatenations.
BucketOrder Concatenate(const BucketOrder& a, const BucketOrder& b);

}  // namespace rankties

#endif  // RANKTIES_RANK_CONVERSIONS_H_
