#ifndef RANKTIES_RANK_REFINEMENT_H_
#define RANKTIES_RANK_REFINEMENT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/rng.h"

namespace rankties {

/// Returns true if `sigma` is a refinement of `tau` (paper §2):
/// tau(i) < tau(j) implies sigma(i) < sigma(j) for all i, j.
/// Equivalently, every bucket of sigma lies inside a bucket of tau and the
/// tau-bucket index is non-decreasing along sigma's buckets. O(n).
/// Both orders must share the same domain size.
bool IsRefinementOf(const BucketOrder& sigma, const BucketOrder& tau);

/// The tau-refinement of sigma, written tau * sigma in the paper (§2):
/// the refinement of sigma whose ties are broken according to tau; pairs
/// tied in both stay tied. Implemented as a stable re-bucketing by the
/// lexicographic key (sigma bucket, tau bucket). O(n log n). Associative.
BucketOrder TauRefine(const BucketOrder& tau, const BucketOrder& sigma);

/// tau * sigma where tau is a full ranking; the result is then a full
/// ranking (paper §2), returned as a Permutation.
Permutation TauRefineFull(const Permutation& tau, const BucketOrder& sigma);

/// Enumerates every full refinement of `sigma` (product over buckets of all
/// in-bucket permutations), invoking `visit` for each. Exponential; intended
/// for small domains in tests and the brute-force Hausdorff oracle.
/// Enumeration stops early if `visit` returns false.
void ForEachFullRefinement(
    const BucketOrder& sigma,
    const std::function<bool(const Permutation&)>& visit);

/// Number of full refinements of `sigma` (product of bucket factorials).
/// Saturates at INT64_MAX.
std::int64_t CountFullRefinements(const BucketOrder& sigma);

/// A uniformly random full refinement of `sigma`.
Permutation RandomFullRefinement(const BucketOrder& sigma, Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_RANK_REFINEMENT_H_
