#ifndef RANKTIES_RANK_BUCKET_ORDER_H_
#define RANKTIES_RANK_BUCKET_ORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rank/element.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// A bucket order / partial ranking over the domain {0..n-1} (paper §2).
///
/// A bucket order is a linear order with ties: an ordered partition
/// B1 < B2 < ... < Bt of the domain. The associated partial ranking assigns
/// every element of bucket Bi the position
///     pos(Bi) = sum_{j<i} |Bj| + (|Bi|+1)/2,
/// the average 1-based location within the bucket. Positions are always
/// integer multiples of 1/2, so the library stores the exact doubled value
/// (`TwicePosition`) and performs all metric arithmetic on integers.
///
/// Invariants (enforced by the factory functions):
///  * buckets partition {0..n-1}; every bucket is non-empty;
///  * elements within each bucket are listed in increasing id order
///    (buckets are *sets*; the stored order is for determinism only).
class BucketOrder {
 public:
  /// An empty-domain bucket order (n = 0, no buckets).
  BucketOrder() = default;

  /// Builds from explicit buckets, front bucket first. Fails unless the
  /// buckets form a partition of {0..n-1} with no empty bucket.
  static StatusOr<BucketOrder> FromBuckets(
      std::size_t n, std::vector<std::vector<ElementId>> buckets);

  /// Builds from a bucket-index vector: `bucket_of[e]` = index of e's bucket.
  /// Indices must use 0..t-1 contiguously. Fails otherwise.
  static StatusOr<BucketOrder> FromBucketIndex(
      const std::vector<BucketIndex>& bucket_of);

  /// The full ranking corresponding to a permutation (all buckets singleton).
  static BucketOrder FromPermutation(const Permutation& perm);

  /// All n elements tied in one bucket.
  static BucketOrder SingleBucket(std::size_t n);

  /// Top-k list (paper §2): the first k elements of `perm` as singleton
  /// buckets followed by one bottom bucket with the remaining n-k elements.
  /// Requires 0 <= k <= n; k == n yields the full ranking.
  static BucketOrder TopKOf(const Permutation& perm, std::size_t k);

  /// Groups elements by a score (smaller score = better); elements with
  /// equal scores are tied. Scores may be any doubles.
  static BucketOrder FromScores(const std::vector<double>& scores);

  /// Like FromScores but on exact integer keys (used internally to avoid
  /// floating point).
  static BucketOrder FromIntKeys(const std::vector<std::int64_t>& keys);

  std::size_t n() const { return bucket_of_.size(); }
  std::size_t num_buckets() const { return buckets_.size(); }

  /// Elements of bucket `b` (ascending element id), 0-based bucket index.
  const std::vector<ElementId>& bucket(std::size_t b) const {
    return buckets_[b];
  }
  const std::vector<std::vector<ElementId>>& buckets() const {
    return buckets_;
  }

  /// Index of the bucket containing `e`.
  BucketIndex BucketOf(ElementId e) const {
    return bucket_of_[static_cast<std::size_t>(e)];
  }

  /// Exact doubled position 2*sigma(e) (always integral; paper §2).
  std::int64_t TwicePosition(ElementId e) const {
    return twice_pos_by_bucket_[static_cast<std::size_t>(BucketOf(e))];
  }

  /// sigma(e) = pos of e's bucket, 1-based, as a double.
  double Position(ElementId e) const {
    return static_cast<double>(TwicePosition(e)) / 2.0;
  }

  /// Doubled position of bucket `b`.
  std::int64_t TwicePositionOfBucket(std::size_t b) const {
    return twice_pos_by_bucket_[b];
  }

  /// True if `a` is strictly ahead of `b` (sigma(a) < sigma(b)).
  bool Ahead(ElementId a, ElementId b) const {
    return BucketOf(a) < BucketOf(b);
  }
  /// True if `a` and `b` are tied (same bucket).
  bool Tied(ElementId a, ElementId b) const {
    return BucketOf(a) == BucketOf(b);
  }

  /// The type of the bucket order: the sequence of bucket sizes (paper A.1).
  std::vector<std::size_t> Type() const;

  /// True if every bucket is a singleton (a full ranking).
  bool IsFull() const { return num_buckets() == n(); }

  /// True if this is a top-k list: k singleton buckets then one bottom
  /// bucket (a full ranking is a top-n list).
  bool IsTopK(std::size_t k) const;

  /// The reverse partial ranking sigma^R, sigma^R(d) = |D|+1-sigma(d).
  BucketOrder Reverse() const;

  /// Full structural well-formedness check, O(n): buckets partition
  /// {0..n-1} with no empty bucket, elements ascend within each bucket,
  /// `bucket_of` agrees with the partition, and every stored doubled
  /// position equals the paper's average-position formula
  /// 2*pos(Bi) = 2*sum_{j<i}|Bj| + |Bi| + 1. The factory functions keep
  /// this true by construction; the contract layer re-checks it in debug
  /// builds at the prepared-ranking freeze boundary
  /// (RANKTIES_DCHECK_OK(order.Validate())).
  [[nodiscard]] Status Validate() const;

  /// The induced partial ranking on a subset of the domain: keep only the
  /// elements of `subset` (old ids), renumber them 0..|subset|-1 in the
  /// order given by `subset`, and drop now-empty buckets. Used to push
  /// rankings through db filters. Fails on out-of-range or duplicate ids.
  StatusOr<BucketOrder> RestrictTo(const std::vector<ElementId>& subset) const;

  /// The full ranking obtained by breaking all ties in increasing element-id
  /// order (a canonical full refinement; used for deterministic output).
  Permutation CanonicalRefinement() const;

  /// "[0 1 | 2 | 3 4]": buckets front-to-back, elements ascending.
  std::string ToString() const;

  /// Structural equality: same partition into the same ordered buckets.
  friend bool operator==(const BucketOrder& a, const BucketOrder& b) {
    return a.bucket_of_ == b.bucket_of_ && a.buckets_ == b.buckets_;
  }

 private:
  void RebuildPositions();

  std::vector<std::vector<ElementId>> buckets_;   // bucket -> elements
  std::vector<BucketIndex> bucket_of_;            // element -> bucket
  std::vector<std::int64_t> twice_pos_by_bucket_;  // bucket -> 2*pos
};

}  // namespace rankties

#endif  // RANKTIES_RANK_BUCKET_ORDER_H_
