#include "rank/io.h"

#include <cctype>
#include <sstream>
#include <utility>

namespace rankties {

StatusOr<BucketOrder> ParseBucketOrder(const std::string& text) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '[') {
    return Status::InvalidArgument("expected '['");
  }
  ++i;
  std::vector<std::vector<ElementId>> buckets;
  std::vector<ElementId> current;
  std::size_t count = 0;
  bool closed = false;
  bool pending_bucket = false;  // a '|' was seen, next bucket must be filled
  while (i < text.size()) {
    skip_ws();
    if (i >= text.size()) break;
    const char c = text[i];
    if (c == ']') {
      if (pending_bucket && current.empty()) {
        return Status::InvalidArgument("empty bucket before ']'");
      }
      ++i;
      closed = true;
      break;
    }
    if (c == '|') {
      if (current.empty()) {
        return Status::InvalidArgument("empty bucket before '|'");
      }
      buckets.push_back(std::move(current));
      current.clear();
      pending_bucket = true;
      ++i;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "'");
    }
    ElementId value = 0;
    while (i < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[i]))) {
      value = value * 10 + (text[i] - '0');
      ++i;
    }
    current.push_back(value);
    pending_bucket = false;
    ++count;
  }
  if (!closed) return Status::InvalidArgument("missing ']'");
  skip_ws();
  if (i != text.size()) {
    return Status::InvalidArgument("trailing characters after ']'");
  }
  if (!current.empty()) buckets.push_back(std::move(current));
  if (buckets.empty() && count == 0) {
    return BucketOrder();  // "[]" is the empty-domain order
  }
  return BucketOrder::FromBuckets(count, std::move(buckets));
}

std::string FormatBucketOrders(const std::vector<BucketOrder>& orders) {
  std::ostringstream os;
  for (const BucketOrder& order : orders) os << order.ToString() << "\n";
  return os.str();
}

StatusOr<std::vector<BucketOrder>> ParseBucketOrders(const std::string& text) {
  std::vector<BucketOrder> orders;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    StatusOr<BucketOrder> order = ParseBucketOrder(line);
    if (!order.ok()) return order.status();
    orders.push_back(std::move(order).value());
  }
  return orders;
}

}  // namespace rankties
