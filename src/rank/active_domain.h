#ifndef RANKTIES_RANK_ACTIVE_DOMAIN_H_
#define RANKTIES_RANK_ACTIVE_DOMAIN_H_

#include <vector>

#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Appendix A.3 machinery: in Fagin-Kumar-Sivakumar [10] a top-k list is a
/// bijection of its *own* k-element domain onto {1..k} — two lists from two
/// engines rank different item sets. This paper instead fixes one domain
/// and appends a bottom bucket. The bridge: restrict both lists to their
/// *active domain* (the union of the two top-k item sets) and add bottom
/// buckets there.
///
/// `AlignTopKLists` takes the two raw top lists as sequences of item ids
/// drawn from an arbitrary universe (best first, no duplicates within a
/// list; lengths may differ) and produces two BucketOrders over the dense
/// active domain 0..|active|-1, plus the mapping back to the original ids.
struct AlignedTopK {
  BucketOrder sigma;                ///< first list over the active domain
  BucketOrder tau;                  ///< second list over the active domain
  std::vector<std::int64_t> items;  ///< dense id -> original item id
};

/// Fails on duplicate items within a list or when both lists are empty.
/// Items appearing in only one list land in the other's bottom bucket —
/// exactly the A.3 construction that makes K^(p), FHaus, KHaus metrics on
/// the fixed active domain.
StatusOr<AlignedTopK> AlignTopKLists(const std::vector<std::int64_t>& top1,
                                     const std::vector<std::int64_t>& top2);

/// m-way generalization for aggregation: align any number of top lists
/// (meta-search engines, each returning its own top results over a shared
/// but unbounded universe) onto their joint active domain. Each output
/// bucket order lists that engine's items as singletons followed by a
/// bottom bucket of everything it did not return.
struct AlignedTopKMany {
  std::vector<BucketOrder> orders;  ///< one per input list, same domain
  std::vector<std::int64_t> items;  ///< dense id -> original item id
};
StatusOr<AlignedTopKMany> AlignManyTopKLists(
    const std::vector<std::vector<std::int64_t>>& tops);

}  // namespace rankties

#endif  // RANKTIES_RANK_ACTIVE_DOMAIN_H_
