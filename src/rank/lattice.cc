#include "rank/lattice.h"

#include <algorithm>
#include <numeric>
#include <set>

#include "rank/refinement.h"
#include "util/contracts.h"

namespace rankties {

StatusOr<BucketOrder> CoarsestCommonRefinement(const BucketOrder& sigma,
                                               const BucketOrder& tau) {
  if (sigma.n() != tau.n()) {
    return Status::InvalidArgument("domain size mismatch");
  }
  // TauRefine keeps a pair tied exactly when both inputs tie it, which is
  // the coarsest any common refinement can be; it is a genuine common
  // refinement iff no pair is discordant.
  const BucketOrder candidate = TauRefine(tau, sigma);
  if (!IsRefinementOf(candidate, tau)) {
    return Status::FailedPrecondition(
        "no common refinement: the orders contain a discordant pair");
  }
  RANKTIES_DCHECK(IsRefinementOf(candidate, sigma));
  return candidate;
}

BucketOrder FinestCommonCoarsening(const BucketOrder& sigma,
                                   const BucketOrder& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  if (n == 0) return BucketOrder();

  // fX(e): cumulative element count at the end of e's bucket in X — the
  // smallest prefix length (at a bucket boundary) containing e.
  auto boundary_of = [](const BucketOrder& order) {
    std::vector<std::int64_t> f(order.n());
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < order.num_buckets(); ++b) {
      cumulative += static_cast<std::int64_t>(order.bucket(b).size());
      for (ElementId e : order.bucket(b)) {
        f[static_cast<std::size_t>(e)] = cumulative;
      }
    }
    return f;
  };
  const std::vector<std::int64_t> f_sigma = boundary_of(sigma);
  const std::vector<std::int64_t> f_tau = boundary_of(tau);

  // A prefix length s is a valid cut iff both orders have a bucket
  // boundary at s over the SAME element set: every element with
  // f_sigma <= s also has f_tau <= s and vice versa. Sweep s upward over
  // sigma's boundaries, tracking the max f_tau among the first s elements
  // (by f_sigma) and symmetrically.
  std::vector<ElementId> by_sigma(n);
  std::iota(by_sigma.begin(), by_sigma.end(), 0);
  std::sort(by_sigma.begin(), by_sigma.end(), [&](ElementId a, ElementId b) {
    return f_sigma[static_cast<std::size_t>(a)] <
           f_sigma[static_cast<std::size_t>(b)];
  });
  std::set<std::int64_t> tau_boundaries;
  {
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b < tau.num_buckets(); ++b) {
      cumulative += static_cast<std::int64_t>(tau.bucket(b).size());
      tau_boundaries.insert(cumulative);
    }
  }

  std::vector<std::int64_t> cuts;
  std::int64_t max_tau = 0;
  std::size_t i = 0;
  std::int64_t prefix = 0;
  while (i < n) {
    // Consume one sigma bucket worth of elements (same f_sigma value).
    const std::int64_t boundary =
        f_sigma[static_cast<std::size_t>(by_sigma[i])];
    while (i < n &&
           f_sigma[static_cast<std::size_t>(by_sigma[i])] == boundary) {
      max_tau = std::max(max_tau,
                         f_tau[static_cast<std::size_t>(by_sigma[i])]);
      ++i;
      ++prefix;
    }
    // Valid cut: sigma boundary here (by construction), tau boundary at
    // the same prefix, and the first `prefix` sigma-elements all fall in
    // tau's first `prefix` slots (set equality follows by counting).
    if (tau_boundaries.count(prefix) > 0 && max_tau <= prefix) {
      cuts.push_back(prefix);
    }
  }
  RANKTIES_DCHECK(!cuts.empty() && cuts.back() == static_cast<std::int64_t>(n));

  // Assemble: bucket b = elements with previous_cut < f_sigma <= cut.
  std::vector<BucketIndex> bucket_of(n);
  for (std::size_t e = 0; e < n; ++e) {
    const auto it =
        std::lower_bound(cuts.begin(), cuts.end(), f_sigma[e]);
    bucket_of[e] = static_cast<BucketIndex>(it - cuts.begin());
  }
  StatusOr<BucketOrder> result = BucketOrder::FromBucketIndex(bucket_of);
  RANKTIES_DCHECK_OK(result);
  return std::move(result).value();
}

}  // namespace rankties
