#include "rank/refinement.h"
#include "util/contracts.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace rankties {

bool IsRefinementOf(const BucketOrder& sigma, const BucketOrder& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  // Every sigma-bucket must be contained in a single tau-bucket, and the
  // sequence of containing tau-buckets must be non-decreasing.
  BucketIndex prev_tau_bucket = -1;
  for (std::size_t b = 0; b < sigma.num_buckets(); ++b) {
    const std::vector<ElementId>& bucket = sigma.bucket(b);
    const BucketIndex tb = tau.BucketOf(bucket.front());
    for (ElementId e : bucket) {
      if (tau.BucketOf(e) != tb) return false;
    }
    if (tb < prev_tau_bucket) return false;
    prev_tau_bucket = tb;
  }
  return true;
}

BucketOrder TauRefine(const BucketOrder& tau, const BucketOrder& sigma) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  std::vector<ElementId> elems(n);
  std::iota(elems.begin(), elems.end(), 0);
  std::sort(elems.begin(), elems.end(), [&](ElementId a, ElementId b) {
    const BucketIndex sa = sigma.BucketOf(a), sb = sigma.BucketOf(b);
    if (sa != sb) return sa < sb;
    const BucketIndex ta = tau.BucketOf(a), tb = tau.BucketOf(b);
    if (ta != tb) return ta < tb;
    return a < b;  // deterministic within equal keys
  });
  std::vector<std::vector<ElementId>> buckets;
  for (std::size_t i = 0; i < n; ++i) {
    const bool new_bucket =
        i == 0 || sigma.BucketOf(elems[i]) != sigma.BucketOf(elems[i - 1]) ||
        tau.BucketOf(elems[i]) != tau.BucketOf(elems[i - 1]);
    if (new_bucket) buckets.emplace_back();
    buckets.back().push_back(elems[i]);
  }
  StatusOr<BucketOrder> result =
      BucketOrder::FromBuckets(n, std::move(buckets));
  RANKTIES_DCHECK_OK(result);
  return std::move(result).value();
}

Permutation TauRefineFull(const Permutation& tau, const BucketOrder& sigma) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  std::vector<ElementId> elems(n);
  std::iota(elems.begin(), elems.end(), 0);
  std::sort(elems.begin(), elems.end(), [&](ElementId a, ElementId b) {
    const BucketIndex sa = sigma.BucketOf(a), sb = sigma.BucketOf(b);
    if (sa != sb) return sa < sb;
    return tau.Rank(a) < tau.Rank(b);
  });
  StatusOr<Permutation> perm = Permutation::FromOrder(elems);
  RANKTIES_DCHECK_OK(perm);
  return std::move(perm).value();
}

namespace {

// Recursively permutes buckets [b..t) appending to `prefix`.
bool EnumerateBuckets(const BucketOrder& sigma, std::size_t b,
                      std::vector<ElementId>& prefix,
                      const std::function<bool(const Permutation&)>& visit) {
  if (b == sigma.num_buckets()) {
    StatusOr<Permutation> perm = Permutation::FromOrder(prefix);
    RANKTIES_DCHECK_OK(perm);
    return visit(perm.value());
  }
  std::vector<ElementId> bucket = sigma.bucket(b);  // ascending => first perm
  const std::size_t base = prefix.size();
  prefix.resize(base + bucket.size());
  do {
    std::copy(bucket.begin(), bucket.end(), prefix.begin() + base);
    if (!EnumerateBuckets(sigma, b + 1, prefix, visit)) {
      prefix.resize(base);
      return false;
    }
  } while (std::next_permutation(bucket.begin(), bucket.end()));
  prefix.resize(base);
  return true;
}

}  // namespace

void ForEachFullRefinement(
    const BucketOrder& sigma,
    const std::function<bool(const Permutation&)>& visit) {
  std::vector<ElementId> prefix;
  prefix.reserve(sigma.n());
  EnumerateBuckets(sigma, 0, prefix, visit);
}

std::int64_t CountFullRefinements(const BucketOrder& sigma) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::int64_t count = 1;
  for (std::size_t b = 0; b < sigma.num_buckets(); ++b) {
    for (std::int64_t f = 2;
         f <= static_cast<std::int64_t>(sigma.bucket(b).size()); ++f) {
      if (count > kMax / f) return kMax;
      count *= f;
    }
  }
  return count;
}

Permutation RandomFullRefinement(const BucketOrder& sigma, Rng& rng) {
  std::vector<ElementId> order;
  order.reserve(sigma.n());
  for (std::size_t b = 0; b < sigma.num_buckets(); ++b) {
    std::vector<ElementId> bucket = sigma.bucket(b);
    rng.Shuffle(bucket);
    order.insert(order.end(), bucket.begin(), bucket.end());
  }
  StatusOr<Permutation> perm = Permutation::FromOrder(order);
  RANKTIES_DCHECK_OK(perm);
  return std::move(perm).value();
}

}  // namespace rankties
