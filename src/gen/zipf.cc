#include "gen/zipf.h"
#include "util/contracts.h"

#include <algorithm>
#include <cmath>

namespace rankties {

ZipfSampler::ZipfSampler(std::size_t num_values, double s) {
  RANKTIES_DCHECK(num_values > 0);
  cdf_.resize(num_values);
  double total = 0.0;
  for (std::size_t i = 0; i < num_values; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformReal();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace rankties
