#include "gen/mallows.h"
#include "util/contracts.h"

#include <cmath>
#include <vector>

namespace rankties {

Permutation MallowsSample(const Permutation& center, double phi, Rng& rng) {
  RANKTIES_DCHECK(phi > 0.0 && phi <= 1.0);
  const std::size_t n = center.n();
  std::vector<ElementId> order;
  order.reserve(n);
  // Repeated insertion: the i-th element of the center (best first) is
  // inserted at offset j from the *back* of the current prefix with
  // probability phi^j / (1 + phi + ... + phi^(i-1)); j = 0 keeps it last,
  // matching the center.
  for (std::size_t i = 0; i < n; ++i) {
    const ElementId e = center.At(static_cast<ElementId>(i));
    // Draw j in {0..i} with weight phi^j.
    std::size_t j;
    if (phi == 1.0) {
      j = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(i)));
    } else {
      const double total = (1.0 - std::pow(phi, static_cast<double>(i + 1))) /
                           (1.0 - phi);
      double u = rng.UniformReal() * total;
      double w = 1.0;
      j = 0;
      while (j < i) {
        if (u < w) break;
        u -= w;
        w *= phi;
        ++j;
      }
    }
    order.insert(order.end() - static_cast<std::ptrdiff_t>(j), e);
  }
  StatusOr<Permutation> perm = Permutation::FromOrder(order);
  RANKTIES_DCHECK_OK(perm);
  return std::move(perm).value();
}

BucketOrder QuantizedMallows(const Permutation& center, double phi,
                             std::size_t num_buckets, Rng& rng) {
  const std::size_t n = center.n();
  RANKTIES_DCHECK(num_buckets >= 1 && num_buckets <= n);
  const Permutation sample = MallowsSample(center, phi, rng);
  // Near-equal contiguous rank bands: the first (n mod t) bands get one
  // extra element.
  std::vector<BucketIndex> bucket_of(n);
  const std::size_t base = n / num_buckets;
  const std::size_t extra = n % num_buckets;
  std::size_t r = 0;
  for (std::size_t b = 0; b < num_buckets; ++b) {
    const std::size_t size = base + (b < extra ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i, ++r) {
      bucket_of[static_cast<std::size_t>(
          sample.At(static_cast<ElementId>(r)))] =
          static_cast<BucketIndex>(b);
    }
  }
  StatusOr<BucketOrder> order = BucketOrder::FromBucketIndex(bucket_of);
  RANKTIES_DCHECK_OK(order);
  return std::move(order).value();
}

Permutation PlackettLuceSample(const std::vector<double>& weights, Rng& rng) {
  const std::size_t n = weights.size();
  std::vector<ElementId> remaining(n);
  for (std::size_t e = 0; e < n; ++e) {
    RANKTIES_DCHECK(weights[e] > 0.0);
    remaining[e] = static_cast<ElementId>(e);
  }
  double total = 0.0;
  for (double w : weights) total += w;
  std::vector<ElementId> order;
  order.reserve(n);
  while (!remaining.empty()) {
    double u = rng.UniformReal() * total;
    std::size_t pick = remaining.size() - 1;
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      const double w = weights[static_cast<std::size_t>(remaining[i])];
      if (u < w) {
        pick = i;
        break;
      }
      u -= w;
    }
    const ElementId chosen = remaining[pick];
    order.push_back(chosen);
    total -= weights[static_cast<std::size_t>(chosen)];
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  StatusOr<Permutation> perm = Permutation::FromOrder(order);
  RANKTIES_DCHECK_OK(perm);
  return std::move(perm).value();
}

}  // namespace rankties
