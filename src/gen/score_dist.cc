#include "gen/score_dist.h"

#include <algorithm>
#include <cmath>

#include "util/contracts.h"

namespace rankties {

ParetoSampler::ParetoSampler(double scale, double shape)
    : scale_(scale), shape_(shape) {
  RANKTIES_DCHECK(scale > 0.0);
  RANKTIES_DCHECK(shape > 0.0);
}

double ParetoSampler::Sample(Rng& rng) const {
  // UniformReal() is in [0, 1), so 1 - u is in (0, 1] and the pow is
  // finite; u == 0 hits the distribution's minimum `scale` exactly.
  const double u = rng.UniformReal();
  return scale_ / std::pow(1.0 - u, 1.0 / shape_);
}

SkewedNormalSampler::SkewedNormalSampler(double location, double scale,
                                         double shape)
    : location_(location),
      scale_(scale),
      shape_(shape),
      delta_(shape / std::sqrt(1.0 + shape * shape)) {
  RANKTIES_DCHECK(scale > 0.0);
}

double SkewedNormalSampler::Sample(Rng& rng) const {
  // Azzalini's conditioning representation: with (u0, v) independent
  // standard normals, u1 = delta*u0 + sqrt(1-delta^2)*v has correlation
  // delta with u0, and u1 conditioned on u0 >= 0 (realized by reflection)
  // is skew-normal with shape delta/sqrt(1-delta^2).
  const double u0 = rng.Normal(0.0, 1.0);
  const double v = rng.Normal(0.0, 1.0);
  const double u1 = delta_ * u0 + std::sqrt(1.0 - delta_ * delta_) * v;
  const double z = (u0 >= 0.0) ? u1 : -u1;
  return location_ + scale_ * z;
}

StatusOr<BucketOrder> SkewedScoreOrder(std::size_t n,
                                       const SkewedOrderConfig& config,
                                       Rng& rng) {
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (config.quantization == 0) {
    return Status::InvalidArgument("quantization must be positive");
  }
  std::vector<double> scores(n);
  switch (config.distribution) {
    case ScoreDistribution::kPareto: {
      if (config.pareto_scale <= 0.0 || config.pareto_shape <= 0.0) {
        return Status::InvalidArgument("Pareto scale/shape must be positive");
      }
      const ParetoSampler sampler(config.pareto_scale, config.pareto_shape);
      for (double& score : scores) score = sampler.Sample(rng);
      break;
    }
    case ScoreDistribution::kNormalSkewed: {
      if (config.skew_scale <= 0.0) {
        return Status::InvalidArgument("skew-normal scale must be positive");
      }
      const SkewedNormalSampler sampler(config.skew_location,
                                        config.skew_scale, config.skew_shape);
      for (double& score : scores) score = sampler.Sample(rng);
      break;
    }
  }

  // Quantize into `quantization` equal-width levels between the realized
  // min and max, then rank by descending level: higher scores come first,
  // collisions become ties. Integer keys keep FromIntKeys exact.
  const auto [min_it, max_it] = std::minmax_element(scores.begin(),
                                                    scores.end());
  const double lo = *min_it;
  const double width = *max_it - lo;
  const std::int64_t levels =
      static_cast<std::int64_t>(config.quantization);
  std::vector<std::int64_t> keys(n);
  for (std::size_t e = 0; e < n; ++e) {
    std::int64_t level =
        width > 0.0
            ? static_cast<std::int64_t>((scores[e] - lo) / width *
                                        static_cast<double>(levels))
            : 0;
    level = std::clamp<std::int64_t>(level, 0, levels - 1);
    keys[e] = -level;  // Descending score order.
  }
  return BucketOrder::FromIntKeys(keys);
}

StatusOr<std::vector<BucketOrder>> SkewedScoreCorpus(
    std::size_t m, std::size_t n, const SkewedOrderConfig& config, Rng& rng) {
  if (m == 0) return Status::InvalidArgument("empty corpus");
  std::vector<BucketOrder> corpus;
  corpus.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    StatusOr<BucketOrder> order = SkewedScoreOrder(n, config, rng);
    if (!order.ok()) return order.status();
    corpus.push_back(std::move(*order));
  }
  return corpus;
}

}  // namespace rankties
