#include "gen/random_orders.h"
#include "util/contracts.h"

#include <algorithm>
#include <numeric>

namespace rankties {

std::vector<std::size_t> RandomType(std::size_t n, Rng& rng) {
  RANKTIES_DCHECK(n > 0);
  std::vector<std::size_t> type;
  std::size_t run = 1;
  for (std::size_t gap = 1; gap < n; ++gap) {
    if (rng.Bernoulli(0.5)) {
      type.push_back(run);
      run = 1;
    } else {
      ++run;
    }
  }
  type.push_back(run);
  return type;
}

namespace {

BucketOrder AssembleRandom(std::size_t n, const std::vector<std::size_t>& type,
                           Rng& rng) {
  std::vector<ElementId> elems(n);
  std::iota(elems.begin(), elems.end(), 0);
  rng.Shuffle(elems);
  std::vector<std::vector<ElementId>> buckets;
  buckets.reserve(type.size());
  std::size_t at = 0;
  for (std::size_t size : type) {
    buckets.emplace_back(
        elems.begin() + static_cast<std::ptrdiff_t>(at),
        elems.begin() + static_cast<std::ptrdiff_t>(at + size));
    at += size;
  }
  StatusOr<BucketOrder> order = BucketOrder::FromBuckets(n, std::move(buckets));
  RANKTIES_DCHECK_OK(order);
  return std::move(order).value();
}

}  // namespace

BucketOrder RandomBucketOrder(std::size_t n, Rng& rng) {
  return AssembleRandom(n, RandomType(n, rng), rng);
}

BucketOrder RandomBucketOrderWithBuckets(std::size_t n, std::size_t t,
                                         Rng& rng) {
  RANKTIES_DCHECK(t >= 1 && t <= n);
  // Stars and bars: choose t-1 distinct boundaries among the n-1 gaps.
  std::vector<std::size_t> gaps(n - 1);
  std::iota(gaps.begin(), gaps.end(), 1);
  rng.Shuffle(gaps);
  std::vector<std::size_t> cuts(
      gaps.begin(), gaps.begin() + static_cast<std::ptrdiff_t>(t - 1));
  std::sort(cuts.begin(), cuts.end());
  cuts.push_back(n);
  std::vector<std::size_t> type;
  std::size_t prev = 0;
  for (std::size_t cut : cuts) {
    type.push_back(cut - prev);
    prev = cut;
  }
  return AssembleRandom(n, type, rng);
}

BucketOrder RandomTopK(std::size_t n, std::size_t k, Rng& rng) {
  RANKTIES_DCHECK(k <= n);
  return BucketOrder::TopKOf(Permutation::Random(n, rng), k);
}

BucketOrder RandomFewValued(std::size_t n, double mean_bucket, Rng& rng) {
  RANKTIES_DCHECK(mean_bucket >= 1.0);
  const double p = 1.0 / mean_bucket;  // geometric "stop the bucket" prob.
  std::vector<std::size_t> type;
  std::size_t remaining = n;
  while (remaining > 0) {
    std::size_t size = 1;
    while (size < remaining && !rng.Bernoulli(p)) ++size;
    size = std::min(size, remaining);
    type.push_back(size);
    remaining -= size;
  }
  return AssembleRandom(n, type, rng);
}

}  // namespace rankties
