#ifndef RANKTIES_GEN_DATASETS_H_
#define RANKTIES_GEN_DATASETS_H_

#include <cstddef>

#include "db/table.h"
#include "util/rng.h"

namespace rankties {

/// Synthetic stand-ins for the paper's §1 motivating catalogs (dine.com,
/// travelocity, MathSciNet, ...), which are proprietary. Each generator
/// reproduces the structural property the paper's argument rests on: a mix
/// of *few-valued* attributes (categorical levels, small integer ranges,
/// coarse ratings) whose sorts are heavily tied, plus continuous attributes
/// users quantize (distance bands, price bands).

/// Restaurants: cuisine (8 Zipf-skewed levels), distance_miles (exp, 0-30),
/// price_tier (1-4), stars (1.0-5.0 in half steps).
Table MakeRestaurantTable(std::size_t num_rows, Rng& rng);

/// Flights: airline (6 levels), price_usd (log-normal-ish), connections
/// (0-3, skewed to 0/1), departure_hour (0-23), duration_hours.
Table MakeFlightTable(std::size_t num_rows, Rng& rng);

/// Bibliography records: venue (10 levels), year (1980-2004), citations
/// (Zipf tail), pages.
Table MakeBibliographyTable(std::size_t num_rows, Rng& rng);

/// NSF-award-style records (the paper's www.nsf.gov example): directorate
/// (7 levels), award_amount_usd (log-normal-ish), start_year (1990-2004),
/// duration_months (12/24/36/48/60 — five-valued).
Table MakeAwardsTable(std::size_t num_rows, Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_GEN_DATASETS_H_
