#include "gen/datasets.h"

#include <cmath>
#include <string>
#include <vector>

#include "gen/zipf.h"
#include "util/contracts.h"

namespace rankties {

namespace {

const char* const kCuisines[] = {"italian", "chinese",  "mexican", "indian",
                                 "thai",    "american", "french",  "japanese"};
const char* const kAirlines[] = {"aeris",   "blueway", "cumulus",
                                 "driftjet", "eastral", "flightly"};
const char* const kVenues[] = {"PODS", "SIGMOD", "VLDB",  "ICDE", "STOC",
                               "FOCS", "SODA",   "WWW",   "KDD",  "CIKM"};

}  // namespace

Table MakeRestaurantTable(std::size_t num_rows, Rng& rng) {
  Table table(Schema({
      {"cuisine", ColumnType::kCategorical},
      {"distance_miles", ColumnType::kNumeric},
      {"price_tier", ColumnType::kNumeric},
      {"stars", ColumnType::kNumeric},
  }));
  const ZipfSampler cuisine_dist(std::size(kCuisines), 1.1);
  for (std::size_t r = 0; r < num_rows; ++r) {
    const double distance = std::min(30.0, rng.Exponential(1.0 / 6.0));
    const double price = static_cast<double>(rng.UniformInt(1, 4));
    const double stars =
        static_cast<double>(rng.UniformInt(2, 10)) / 2.0;  // 1.0..5.0 halves
    Status s = table.AddRow({
        Value(std::string(kCuisines[cuisine_dist.Sample(rng)])),
        Value(std::round(distance * 10.0) / 10.0),
        Value(price),
        Value(stars),
    });
    RANKTIES_DCHECK_OK(s);
    (void)s;
  }
  return table;
}

Table MakeFlightTable(std::size_t num_rows, Rng& rng) {
  Table table(Schema({
      {"airline", ColumnType::kCategorical},
      {"price_usd", ColumnType::kNumeric},
      {"connections", ColumnType::kNumeric},
      {"departure_hour", ColumnType::kNumeric},
      {"duration_hours", ColumnType::kNumeric},
  }));
  const ZipfSampler airline_dist(std::size(kAirlines), 0.8);
  for (std::size_t r = 0; r < num_rows; ++r) {
    // Connections skewed toward 0/1 — the paper's "usually has no more than
    // four values" numeric attribute.
    const double u = rng.UniformReal();
    const double connections =
        u < 0.45 ? 0 : (u < 0.8 ? 1 : (u < 0.95 ? 2 : 3));
    const double base_price = 120.0 * std::exp(rng.Normal(0.0, 0.5));
    const double price =
        std::round((base_price + 60.0 * connections) * 100.0) / 100.0;
    const double departure = static_cast<double>(rng.UniformInt(0, 23));
    const double duration =
        std::round((2.0 + 1.5 * connections + rng.Exponential(0.8)) * 10.0) /
        10.0;
    Status s = table.AddRow({
        Value(std::string(kAirlines[airline_dist.Sample(rng)])),
        Value(price),
        Value(connections),
        Value(departure),
        Value(duration),
    });
    RANKTIES_DCHECK_OK(s);
    (void)s;
  }
  return table;
}

Table MakeBibliographyTable(std::size_t num_rows, Rng& rng) {
  Table table(Schema({
      {"venue", ColumnType::kCategorical},
      {"year", ColumnType::kNumeric},
      {"citations", ColumnType::kNumeric},
      {"pages", ColumnType::kNumeric},
  }));
  const ZipfSampler venue_dist(std::size(kVenues), 0.9);
  const ZipfSampler citation_dist(1000, 1.3);
  for (std::size_t r = 0; r < num_rows; ++r) {
    Status s = table.AddRow({
        Value(std::string(kVenues[venue_dist.Sample(rng)])),
        Value(static_cast<double>(rng.UniformInt(1980, 2004))),
        Value(static_cast<double>(citation_dist.Sample(rng))),
        Value(static_cast<double>(rng.UniformInt(6, 30))),
    });
    RANKTIES_DCHECK_OK(s);
    (void)s;
  }
  return table;
}

Table MakeAwardsTable(std::size_t num_rows, Rng& rng) {
  static const char* const kDirectorates[] = {
      "CISE", "MPS", "ENG", "BIO", "GEO", "SBE", "EHR"};
  Table table(Schema({
      {"directorate", ColumnType::kCategorical},
      {"award_amount_usd", ColumnType::kNumeric},
      {"start_year", ColumnType::kNumeric},
      {"duration_months", ColumnType::kNumeric},
  }));
  const ZipfSampler directorate_dist(std::size(kDirectorates), 0.6);
  for (std::size_t r = 0; r < num_rows; ++r) {
    const double amount =
        std::round(120000.0 * std::exp(rng.Normal(0.0, 0.8)));
    const double duration =
        12.0 * static_cast<double>(rng.UniformInt(1, 5));
    Status s = table.AddRow({
        Value(std::string(kDirectorates[directorate_dist.Sample(rng)])),
        Value(amount),
        Value(static_cast<double>(rng.UniformInt(1990, 2004))),
        Value(duration),
    });
    RANKTIES_DCHECK_OK(s);
    (void)s;
  }
  return table;
}

}  // namespace rankties
