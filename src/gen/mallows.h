#ifndef RANKTIES_GEN_MALLOWS_H_
#define RANKTIES_GEN_MALLOWS_H_

#include <cstddef>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/rng.h"

namespace rankties {

/// Samples from the Mallows model M(center, phi) via the repeated-insertion
/// method: P(pi) proportional to phi^KendallTau(pi, center), with dispersion
/// phi in (0, 1]. phi -> 0 concentrates on the center; phi = 1 is uniform.
/// O(n^2) worst case (insertion into a vector).
///
/// Mallows mixtures are the standard way to synthesize *correlated* voter
/// rankings — the regime where aggregation quality differences between
/// median/Borda/optimal actually show (benches E5/E7/E11).
Permutation MallowsSample(const Permutation& center, double phi, Rng& rng);

/// A Mallows sample quantized into `num_buckets` contiguous rank bands of
/// near-equal size: a correlated *partial* ranking, modeling a few-valued
/// attribute whose levels correlate with an underlying true order.
/// Requires 1 <= num_buckets <= n.
BucketOrder QuantizedMallows(const Permutation& center, double phi,
                             std::size_t num_buckets, Rng& rng);

/// Samples from the Plackett–Luce model: positions are filled front to
/// back, choosing among the remaining elements with probability
/// proportional to their (positive) weights. Large-weight elements
/// concentrate near the front. O(n^2); weights need not be normalized.
Permutation PlackettLuceSample(const std::vector<double>& weights, Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_GEN_MALLOWS_H_
