#ifndef RANKTIES_GEN_ZIPF_H_
#define RANKTIES_GEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace rankties {

/// Zipf-distributed sampler over {0..num_values-1}: P(i) proportional to
/// 1/(i+1)^s. Used to draw categorical attribute levels (a handful of
/// cuisines with a popular head) — the few-valued skew the paper's database
/// scenario turns on. Precomputes the CDF; O(log V) per sample.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t num_values, double s);

  std::size_t num_values() const { return cdf_.size(); }

  /// One sample.
  std::size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace rankties

#endif  // RANKTIES_GEN_ZIPF_H_
