#ifndef RANKTIES_GEN_RANDOM_ORDERS_H_
#define RANKTIES_GEN_RANDOM_ORDERS_H_

#include <cstddef>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/rng.h"

namespace rankties {

/// A uniformly random composition of n (ordered positive parts): the random
/// *type* of a bucket order (paper A.1). Each of the n-1 gaps is a boundary
/// independently with probability 1/2, so all 2^(n-1) compositions are
/// equally likely.
std::vector<std::size_t> RandomType(std::size_t n, Rng& rng);

/// A random bucket order: random type + uniformly random assignment of
/// elements to the slots.
BucketOrder RandomBucketOrder(std::size_t n, Rng& rng);

/// A random bucket order with exactly `t` buckets (uniform composition into
/// t parts via stars-and-bars boundary sampling, then random assignment).
/// Requires 1 <= t <= n.
BucketOrder RandomBucketOrderWithBuckets(std::size_t n, std::size_t t,
                                         Rng& rng);

/// A random top-k list (random permutation truncated at k). Requires k <= n.
BucketOrder RandomTopK(std::size_t n, std::size_t k, Rng& rng);

/// A bucket order drawn by grouping a random permutation into buckets whose
/// sizes are geometric with mean ~`mean_bucket`, clipped to the remaining
/// domain. Produces the "few distinct values" shape of database attributes.
BucketOrder RandomFewValued(std::size_t n, double mean_bucket, Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_GEN_RANDOM_ORDERS_H_
