#include "gen/evaluation.h"

#include <algorithm>
#include <set>

namespace rankties {

double TopKOverlap(const Permutation& candidate, const Permutation& truth,
                   std::size_t k) {
  const std::size_t n = candidate.n();
  if (n == 0) return 0.0;
  k = std::min(k, n);
  if (k == 0) return 0.0;
  std::set<ElementId> truth_top;
  for (std::size_t r = 0; r < k; ++r) {
    truth_top.insert(truth.At(static_cast<ElementId>(r)));
  }
  std::size_t hits = 0;
  for (std::size_t r = 0; r < k; ++r) {
    if (truth_top.count(candidate.At(static_cast<ElementId>(r)))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double PrefixJaccard(const BucketOrder& a, const BucketOrder& b,
                     std::size_t prefix) {
  const std::size_t n = a.n();
  if (n == 0) return 0.0;
  prefix = std::min(prefix, n);
  if (prefix == 0) return 0.0;
  const Permutation pa = a.CanonicalRefinement();
  const Permutation pb = b.CanonicalRefinement();
  std::set<ElementId> sa, sb;
  for (std::size_t r = 0; r < prefix; ++r) {
    sa.insert(pa.At(static_cast<ElementId>(r)));
    sb.insert(pb.At(static_cast<ElementId>(r)));
  }
  std::size_t intersection = 0;
  for (ElementId e : sa) intersection += sb.count(e);
  const std::size_t uni = sa.size() + sb.size() - intersection;
  return uni == 0 ? 0.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

double WinnerReciprocalRank(const Permutation& candidate,
                            const Permutation& truth) {
  if (candidate.n() == 0) return 0.0;
  const ElementId winner = truth.At(0);
  return 1.0 / static_cast<double>(candidate.Rank(winner) + 1);
}

}  // namespace rankties
