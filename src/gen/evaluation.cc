#include "gen/evaluation.h"

#include <algorithm>

#include "util/thread_pool.h"

namespace rankties {

double TopKOverlap(const Permutation& candidate, const Permutation& truth,
                   std::size_t k) {
  const std::size_t n = candidate.n();
  if (n == 0) return 0.0;
  k = std::min(k, n);
  if (k == 0) return 0.0;
  // Flat membership array instead of a std::set: the batch evaluators call
  // this once per candidate per trial, so the O(log k) set lookups showed.
  std::vector<char> in_truth_top(n, 0);
  for (std::size_t r = 0; r < k; ++r) {
    in_truth_top[static_cast<std::size_t>(
        truth.At(static_cast<ElementId>(r)))] = 1;
  }
  std::size_t hits = 0;
  for (std::size_t r = 0; r < k; ++r) {
    hits += static_cast<std::size_t>(in_truth_top[static_cast<std::size_t>(
        candidate.At(static_cast<ElementId>(r)))]);
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double PrefixJaccard(const BucketOrder& a, const BucketOrder& b,
                     std::size_t prefix) {
  const std::size_t n = a.n();
  if (n == 0) return 0.0;
  prefix = std::min(prefix, n);
  if (prefix == 0) return 0.0;
  const Permutation pa = a.CanonicalRefinement();
  const Permutation pb = b.CanonicalRefinement();
  std::vector<char> in_a(n, 0);
  for (std::size_t r = 0; r < prefix; ++r) {
    in_a[static_cast<std::size_t>(pa.At(static_cast<ElementId>(r)))] = 1;
  }
  std::size_t intersection = 0;
  for (std::size_t r = 0; r < prefix; ++r) {
    intersection += static_cast<std::size_t>(
        in_a[static_cast<std::size_t>(pb.At(static_cast<ElementId>(r)))]);
  }
  const std::size_t uni = 2 * prefix - intersection;
  return uni == 0 ? 0.0
                  : static_cast<double>(intersection) /
                        static_cast<double>(uni);
}

double WinnerReciprocalRank(const Permutation& candidate,
                            const Permutation& truth) {
  if (candidate.n() == 0) return 0.0;
  const ElementId winner = truth.At(0);
  return 1.0 / static_cast<double>(candidate.Rank(winner) + 1);
}

std::vector<double> TopKOverlapBatch(
    const std::vector<Permutation>& candidates, const Permutation& truth,
    std::size_t k) {
  std::vector<double> overlaps(candidates.size(), 0.0);
  ParallelFor(0, candidates.size(), 1,
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  overlaps[i] = TopKOverlap(candidates[i], truth, k);
                }
              });
  return overlaps;
}

}  // namespace rankties
