#ifndef RANKTIES_GEN_SCORE_DIST_H_
#define RANKTIES_GEN_SCORE_DIST_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "util/rng.h"
#include "util/status.h"

namespace rankties {

/// Heavy-tailed and skewed score distributions for synthetic corpora,
/// alongside ZipfSampler (gen/zipf.h). Modeled on the hyrise
/// TableGenerator's column data distributions: real workloads rank by
/// skewed attributes (prices, populations, degrees), and skew is what
/// drives tie structure once scores are quantized — a heavy tail packs
/// most elements into a few low-score buckets.

/// Pareto (power-law) sampler: inverse-CDF transform
/// x = scale / (1 - U)^(1/shape), support [scale, inf). Smaller `shape`
/// means a heavier tail.
class ParetoSampler {
 public:
  ParetoSampler(double scale, double shape);

  double scale() const { return scale_; }
  double shape() const { return shape_; }

  /// One sample.
  double Sample(Rng& rng) const;

 private:
  double scale_;
  double shape_;
};

/// Skew-normal sampler (Azzalini): location + scale * z where z is a
/// standard skew-normal variate with shape parameter `shape` (shape = 0
/// degenerates to the normal; larger |shape| skews harder toward its
/// sign). Sampled by the conditioning representation: two correlated
/// standard normals, reflecting the second by the sign of the first.
class SkewedNormalSampler {
 public:
  SkewedNormalSampler(double location, double scale, double shape);

  double location() const { return location_; }
  double scale() const { return scale_; }
  double shape() const { return shape_; }

  /// One sample.
  double Sample(Rng& rng) const;

 private:
  double location_;
  double scale_;
  double shape_;
  double delta_;  ///< shape / sqrt(1 + shape^2), precomputed.
};

/// Which score distribution SkewedScoreOrder draws from.
enum class ScoreDistribution {
  kPareto,
  kNormalSkewed,
};

/// Configuration of a skewed synthetic ranking: scores are drawn i.i.d.
/// from the distribution and quantized into `quantization` levels between
/// the drawn min and max; elements whose scores collide share a bucket, so
/// coarser quantization means heavier ties (matching how the paper's
/// database scenario induces ties from attribute values).
struct SkewedOrderConfig {
  ScoreDistribution distribution = ScoreDistribution::kPareto;
  double pareto_scale = 1.0;
  double pareto_shape = 1.5;
  double skew_location = 0.0;
  double skew_scale = 1.0;
  double skew_shape = 4.0;
  /// Number of distinct quantized score levels (>= 1); the bucket count of
  /// the result is at most this.
  std::uint32_t quantization = 64;
};

/// One ranking of `n` elements by quantized skewed scores (higher score =
/// better = earlier bucket). Deterministic in `rng`'s state.
StatusOr<BucketOrder> SkewedScoreOrder(std::size_t n,
                                       const SkewedOrderConfig& config,
                                       Rng& rng);

/// A corpus of `m` independent SkewedScoreOrder draws — the skewed bench
/// corpus for the out-of-core engines.
StatusOr<std::vector<BucketOrder>> SkewedScoreCorpus(
    std::size_t m, std::size_t n, const SkewedOrderConfig& config, Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_GEN_SCORE_DIST_H_
