#ifndef RANKTIES_GEN_EVALUATION_H_
#define RANKTIES_GEN_EVALUATION_H_

#include <cstddef>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"

namespace rankties {

/// Retrieval-style evaluation of an aggregate against a known ground
/// truth — the measurements the recovery experiments (E13) and examples
/// report alongside the metric distances.

/// |top-k of candidate ∩ top-k of truth| / k  (precision@k == recall@k
/// here since both sides have exactly k relevant items).
/// k is clamped to the domain size; 0 on empty domains.
double TopKOverlap(const Permutation& candidate, const Permutation& truth,
                   std::size_t k);

/// Overlap between the top buckets of two partial rankings: the Jaccard
/// similarity |A ∩ B| / |A ∪ B| of the sets of elements at strictly better
/// than median position... concretely, of the elements in the first
/// `prefix` positions of each canonical refinement. Clamped like above.
double PrefixJaccard(const BucketOrder& a, const BucketOrder& b,
                     std::size_t prefix);

/// Mean reciprocal rank of the truth's winner in the candidate:
/// 1 / (1-based rank of truth.At(0) in candidate). 0 on empty domains.
double WinnerReciprocalRank(const Permutation& candidate,
                            const Permutation& truth);

/// TopKOverlap of every candidate against one truth, computed in parallel
/// on the global thread pool (the recovery experiments score whole batches
/// of aggregates per trial). result[i] = TopKOverlap(candidates[i], truth, k);
/// deterministic for every thread count.
std::vector<double> TopKOverlapBatch(
    const std::vector<Permutation>& candidates, const Permutation& truth,
    std::size_t k);

}  // namespace rankties

#endif  // RANKTIES_GEN_EVALUATION_H_
