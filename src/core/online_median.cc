#include "core/online_median.h"

#include <algorithm>
#include <numeric>

namespace rankties {

OnlineMedianAggregator::OnlineMedianAggregator(std::size_t n)
    : positions_(n) {}

Status OnlineMedianAggregator::AddVoter(const BucketOrder& voter) {
  if (voter.n() != n()) {
    return Status::InvalidArgument("voter domain size mismatch");
  }
  const std::size_t m = num_voters_;  // count before this voter
  for (std::size_t e = 0; e < n(); ++e) {
    ElementState& state = positions_[e];
    const std::int64_t value =
        voter.TwicePosition(static_cast<ElementId>(e));
    if (m == 0) {
      state.values.insert(value);
      state.median = state.values.begin();
      continue;
    }
    // Lower-median 1-based index: (m+1)/2 before, (m+2)/2 after.
    // multiset::insert places equal keys after existing ones, so a tie
    // with the median lands at or after its position.
    const bool before_median = value < *state.median;
    state.values.insert(value);
    if (m % 2 == 1) {
      // Index unchanged; an insertion before the median shifts the wanted
      // slot one element to the left.
      if (before_median) --state.median;
    } else {
      // Index advances by one; unless the insertion landed before the
      // median (which fills the gap), step right.
      if (!before_median) ++state.median;
    }
  }
  ++num_voters_;
  return Status::Ok();
}

StatusOr<std::vector<std::int64_t>> OnlineMedianAggregator::ScoresQuad()
    const {
  if (num_voters_ == 0) {
    return Status::FailedPrecondition("no voters added yet");
  }
  std::vector<std::int64_t> scores(n());
  for (std::size_t e = 0; e < n(); ++e) {
    scores[e] = 2 * *positions_[e].median;
  }
  return scores;
}

StatusOr<Permutation> OnlineMedianAggregator::CurrentFull() const {
  StatusOr<std::vector<std::int64_t>> scores = ScoresQuad();
  if (!scores.ok()) return scores.status();
  std::vector<ElementId> order(n());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return (*scores)[static_cast<std::size_t>(a)] <
           (*scores)[static_cast<std::size_t>(b)];
  });
  return Permutation::FromOrder(order);
}

StatusOr<BucketOrder> OnlineMedianAggregator::CurrentTopK(
    std::size_t k) const {
  StatusOr<Permutation> full = CurrentFull();
  if (!full.ok()) return full.status();
  if (k > n()) return Status::InvalidArgument("k exceeds domain size");
  return BucketOrder::TopKOf(*full, k);
}

}  // namespace rankties
