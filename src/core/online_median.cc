#include "core/online_median.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/obs.h"
#include "util/contracts.h"

namespace rankties {

void OnlineMedianAggregator::ElementState::Insert(std::int64_t value) {
  if (low.empty() || value <= *low.rbegin()) {
    low.insert(value);
  } else {
    high.insert(value);
  }
}

void OnlineMedianAggregator::ElementState::Erase(std::int64_t value) {
  auto it = low.find(value);
  if (it != low.end()) {
    low.erase(it);
    return;
  }
  it = high.find(value);
  RANKTIES_DCHECK(it != high.end());
  high.erase(it);
}

void OnlineMedianAggregator::ElementState::Rebalance(std::size_t target) {
  while (low.size() > target) {
    auto it = std::prev(low.end());
    high.insert(*it);
    low.erase(it);
  }
  while (low.size() < target) {
    auto it = high.begin();
    low.insert(*it);
    high.erase(it);
  }
  // Sizes alone don't restore the partition: an erase can empty `low` and
  // let the next insert land a value above `high`'s minimum there. Swap
  // boundary values until every low value <= every high value again (one
  // edit misplaces at most one value, so this loop runs at most once per
  // insert/erase pair).
  while (!low.empty() && !high.empty() && *low.rbegin() > *high.begin()) {
    auto low_it = std::prev(low.end());
    auto high_it = high.begin();
    const std::int64_t low_value = *low_it;
    const std::int64_t high_value = *high_it;
    low.erase(low_it);
    high.erase(high_it);
    low.insert(high_value);
    high.insert(low_value);
  }
}

OnlineMedianAggregator::OnlineMedianAggregator(std::size_t n)
    : positions_(n) {}

Status OnlineMedianAggregator::AddVoter(const BucketOrder& voter) {
  if (voter.n() != n()) {
    return Status::InvalidArgument("voter domain size mismatch");
  }
  const std::size_t m = num_voters_ + 1;  // count including this voter
  const std::size_t target = (m + 1) / 2;  // lower-median 1-based index
  std::vector<std::int64_t> row(n());
  for (std::size_t e = 0; e < n(); ++e) {
    const std::int64_t value =
        voter.TwicePosition(static_cast<ElementId>(e));
    row[e] = value;
    ElementState& state = positions_[e];
    state.Insert(value);
    state.Rebalance(target);
  }
  voter_positions_.push_back(std::move(row));
  num_voters_ = m;
  RANKTIES_OBS_COUNT("online_median.add_voters", 1);
  RANKTIES_OBS_COUNT("online_median.elements_touched",
                     static_cast<std::int64_t>(n()));
  RANKTIES_FLIGHT(obs::FlightEventId::kOnlineMedianAdd,
                  static_cast<std::int64_t>(m - 1),
                  static_cast<std::int64_t>(n()));
  return Status::Ok();
}

Status OnlineMedianAggregator::UpdateVoter(std::size_t index,
                                           const BucketOrder& voter) {
  if (index >= num_voters_) {
    return Status::InvalidArgument("voter index out of range");
  }
  if (voter.n() != n()) {
    return Status::InvalidArgument("voter domain size mismatch");
  }
  const std::size_t target = (num_voters_ + 1) / 2;
  std::vector<std::int64_t>& row = voter_positions_[index];
  std::int64_t touched = 0;
  for (std::size_t e = 0; e < n(); ++e) {
    const std::int64_t value =
        voter.TwicePosition(static_cast<ElementId>(e));
    if (value == row[e]) continue;  // untouched elements cost nothing
    ElementState& state = positions_[e];
    state.Erase(row[e]);
    state.Insert(value);
    state.Rebalance(target);
    row[e] = value;
    ++touched;
  }
  RANKTIES_OBS_COUNT("online_median.update_voters", 1);
  RANKTIES_OBS_COUNT("online_median.elements_touched", touched);
  RANKTIES_FLIGHT(obs::FlightEventId::kOnlineMedianUpdate,
                  static_cast<std::int64_t>(index), touched);
  return Status::Ok();
}

Status OnlineMedianAggregator::RemoveVoter(std::size_t index) {
  if (index >= num_voters_) {
    return Status::InvalidArgument("voter index out of range");
  }
  const std::size_t m = num_voters_ - 1;  // count after the withdrawal
  const std::size_t target = (m + 1) / 2;  // 0 when the last voter leaves
  const std::vector<std::int64_t>& row = voter_positions_[index];
  for (std::size_t e = 0; e < n(); ++e) {
    ElementState& state = positions_[e];
    state.Erase(row[e]);
    state.Rebalance(target);
  }
  // Swap-with-last keeps voter storage dense; the caller remaps only the
  // moved index.
  voter_positions_[index] = std::move(voter_positions_.back());
  voter_positions_.pop_back();
  num_voters_ = m;
  RANKTIES_OBS_COUNT("online_median.remove_voters", 1);
  RANKTIES_OBS_COUNT("online_median.elements_touched",
                     static_cast<std::int64_t>(n()));
  RANKTIES_FLIGHT(obs::FlightEventId::kOnlineMedianRemove,
                  static_cast<std::int64_t>(index),
                  static_cast<std::int64_t>(m));
  return Status::Ok();
}

StatusOr<std::vector<std::int64_t>> OnlineMedianAggregator::ScoresQuad()
    const {
  if (num_voters_ == 0) {
    return Status::FailedPrecondition("no voters added yet");
  }
  std::vector<std::int64_t> scores(n());
  for (std::size_t e = 0; e < n(); ++e) {
    scores[e] = 2 * positions_[e].Median();
  }
  return scores;
}

StatusOr<Permutation> OnlineMedianAggregator::CurrentFull() const {
  StatusOr<std::vector<std::int64_t>> scores = ScoresQuad();
  if (!scores.ok()) return scores.status();
  std::vector<ElementId> order(n());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return (*scores)[static_cast<std::size_t>(a)] <
           (*scores)[static_cast<std::size_t>(b)];
  });
  return Permutation::FromOrder(order);
}

StatusOr<BucketOrder> OnlineMedianAggregator::CurrentTopK(
    std::size_t k) const {
  StatusOr<Permutation> full = CurrentFull();
  if (!full.ok()) return full.status();
  if (k > n()) return Status::InvalidArgument("k exceeds domain size");
  return BucketOrder::TopKOf(*full, k);
}

}  // namespace rankties
