#ifndef RANKTIES_CORE_OUTOFCORE_H_
#define RANKTIES_CORE_OUTOFCORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/median_rank.h"
#include "core/metric_registry.h"
#include "rank/bucket_order.h"
#include "store/corpus_reader.h"
#include "util/status.h"

namespace rankties {

/// Shard-at-a-time engines over an on-disk `rankties-corpus-v1` corpus
/// (store/corpus_reader.h). The corpus never has to fit in RAM: lists are
/// materialized one chunk at a time through the reader's LRU block cache,
/// and the per-pass working set is bounded by `OutOfCoreOptions`.
///
/// Determinism guarantee: both engines are bit-identical to their in-RAM
/// counterparts on the same corpus — StreamingMedianRankScoresQuad to
/// MedianRankScoresQuad (the median of a multiset does not depend on
/// accumulation order) and OutOfCoreDistanceMatrix to DistanceMatrix
/// (every slot runs the same prepared kernel with the same global (i, j)
/// argument order). CI gates on the bit-exact match.

struct OutOfCoreOptions {
  /// Budget for the streaming aggregation's accumulation buffer (the
  /// per-element rank multisets of the active element block). Small
  /// budgets force more passes over the corpus, never a wrong answer.
  /// The chunk being decoded and the block cache are budgeted separately
  /// (writer chunk shape, Pager::Options).
  std::size_t memory_budget_bytes = std::size_t{64} << 20;
};

/// Streaming median-rank aggregation (PAPER.md Section 5) over an on-disk
/// corpus: quadrupled median of every element's doubled positions, policy
/// as in core/median_rank.h. Elements are processed in blocks sized to
/// `memory_budget_bytes`; each block streams the corpus chunk by chunk,
/// accumulating an m-entry rank column per element.
StatusOr<std::vector<std::int64_t>> StreamingMedianRankScoresQuad(
    store::CorpusReader& reader, MedianPolicy policy,
    const OutOfCoreOptions& options = {});

/// The bucket order induced by the streaming median scores (elements tied
/// iff their medians are equal) — the out-of-core MedianInducedOrder.
StatusOr<BucketOrder> StreamingMedianInducedOrder(
    store::CorpusReader& reader, MedianPolicy policy,
    const OutOfCoreOptions& options = {});

/// The m x m distance matrix of DistanceMatrix computed blockwise over
/// chunk pairs: chunk A is prepared once per outer iteration, chunk B is
/// loaded through the cache, and every global pair (i, j), i < j, in the
/// block runs the prepared kernels on per-thread scratch. Only the chunk
/// pair's preparations are live at once; the matrix itself (m^2 doubles)
/// is the caller's output and scales with m, not n.
StatusOr<std::vector<std::vector<double>>> OutOfCoreDistanceMatrix(
    MetricKind kind, store::CorpusReader& reader);

}  // namespace rankties

#endif  // RANKTIES_CORE_OUTOFCORE_H_
