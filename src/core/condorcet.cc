#include "core/condorcet.h"

#include <algorithm>
#include <functional>

namespace rankties {

std::vector<std::vector<std::int32_t>> MajorityMargins(
    const std::vector<BucketOrder>& inputs) {
  const std::size_t n = inputs.empty() ? 0 : inputs.front().n();
  std::vector<std::vector<std::int32_t>> margins(
      n, std::vector<std::int32_t>(n, 0));
  for (const BucketOrder& input : inputs) {
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        if (a == b) continue;
        if (input.Ahead(static_cast<ElementId>(a),
                        static_cast<ElementId>(b))) {
          ++margins[a][b];
          --margins[b][a];
        }
      }
    }
  }
  return margins;
}

std::optional<ElementId> CondorcetWinner(
    const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) return std::nullopt;
  const std::size_t n = inputs.front().n();
  const auto margins = MajorityMargins(inputs);
  for (std::size_t a = 0; a < n; ++a) {
    bool wins_all = true;
    for (std::size_t b = 0; b < n && wins_all; ++b) {
      if (a != b && margins[a][b] <= 0) wins_all = false;
    }
    if (wins_all) return static_cast<ElementId>(a);
  }
  return std::nullopt;
}

std::int64_t MajorityViolations(const Permutation& candidate,
                                const std::vector<BucketOrder>& inputs) {
  const auto margins = MajorityMargins(inputs);
  const std::size_t n = candidate.n();
  std::int64_t violations = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      if (margins[a][b] > 0 && candidate.Ahead(static_cast<ElementId>(b),
                                               static_cast<ElementId>(a))) {
        ++violations;
      }
    }
  }
  return violations;
}

bool MajorityTournamentAcyclic(const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) return true;
  const std::size_t n = inputs.front().n();
  const auto margins = MajorityMargins(inputs);
  // DFS cycle detection on the strict-majority digraph.
  std::vector<int> state(n, 0);  // 0 = new, 1 = on stack, 2 = done
  std::function<bool(std::size_t)> has_cycle = [&](std::size_t a) {
    state[a] = 1;
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || margins[a][b] <= 0) continue;
      if (state[b] == 1) return true;
      if (state[b] == 0 && has_cycle(b)) return true;
    }
    state[a] = 2;
    return false;
  };
  for (std::size_t a = 0; a < n; ++a) {
    if (state[a] == 0 && has_cycle(a)) return false;
  }
  return true;
}

}  // namespace rankties
