#ifndef RANKTIES_CORE_REFINEMENT_EXTREMES_H_
#define RANKTIES_CORE_REFINEMENT_EXTREMES_H_

#include <cstdint>

#include "rank/bucket_order.h"
#include "rank/permutation.h"

namespace rankties {

/// The refinement-extreme constructions behind Theorem 5, exposed as their
/// own API (they are useful beyond the Hausdorff metrics — e.g. "what is
/// the most/least favorable way to break the ties of tau relative to a
/// known full ranking sigma?").

/// Lemma 3: among all full refinements of `tau`, the one closest to the
/// full ranking `sigma` under BOTH footrule and Kendall simultaneously is
/// sigma * tau (break tau's ties in sigma's order). O(n log n).
Permutation NearestFullRefinement(const Permutation& sigma,
                                  const BucketOrder& tau);

/// min over full refinements t of tau of F(sigma, t). O(n log n).
std::int64_t MinFootruleToRefinements(const Permutation& sigma,
                                      const BucketOrder& tau);

/// min over full refinements t of tau of K(sigma, t). O(n log n).
std::int64_t MinKendallToRefinements(const Permutation& sigma,
                                     const BucketOrder& tau);

/// Lemma 4 + Lemma 3 composed (the inner construction of Theorem 5): the
/// refinement of `sigma` maximizing its distance to the closest refinement
/// of `tau` — i.e. the witness of the one-sided Hausdorff distance
/// max_{s} min_{t} d(s, t). Returns the witness pair (s, t); both the
/// footrule and the Kendall maxima are attained on the same pair.
struct RefinementWitness {
  Permutation farthest_sigma;  ///< rho * tauR * sigma
  Permutation nearest_tau;     ///< its closest refinement of tau
};
RefinementWitness OneSidedHausdorffWitness(const BucketOrder& sigma,
                                           const BucketOrder& tau);

/// max over refinements s of sigma of (min over refinements t of tau of
/// F(s,t)) — the one-sided Hausdorff value under footrule. O(n log n).
std::int64_t OneSidedFHausdorff(const BucketOrder& sigma,
                                const BucketOrder& tau);

/// Same under Kendall. O(n log n).
std::int64_t OneSidedKHausdorff(const BucketOrder& sigma,
                                const BucketOrder& tau);

}  // namespace rankties

#endif  // RANKTIES_CORE_REFINEMENT_EXTREMES_H_
