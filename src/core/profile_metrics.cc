#include "core/profile_metrics.h"

#include <cstdlib>

#include "core/kendall.h"
#include "rank/refinement.h"
#include "util/checked_math.h"
#include "util/contracts.h"

namespace rankties {

double KendallPFromCounts(const PairCounts& counts, double p) {
  return static_cast<double>(counts.discordant) +
         p * static_cast<double>(counts.tied_sigma_only +
                                 counts.tied_tau_only);
}

double KendallP(const BucketOrder& sigma, const BucketOrder& tau, double p) {
  RANKTIES_DCHECK(p >= 0.0 && p <= 1.0);
  if (sigma.n() < 2) return 0.0;  // no pairs on a degenerate universe
  return KendallPFromCounts(ComputePairCounts(sigma, tau), p);
}

std::int64_t TwiceKprof(const BucketOrder& sigma, const BucketOrder& tau) {
  if (sigma.n() < 2) return 0;  // no pairs on a degenerate universe
  return TwiceKprofFromCounts(ComputePairCounts(sigma, tau));
}

std::int64_t TwiceKprofFromCounts(const PairCounts& counts) {
  return 2 * counts.discordant + counts.tied_sigma_only +
         counts.tied_tau_only;
}

double Kprof(const BucketOrder& sigma, const BucketOrder& tau) {
  return static_cast<double>(TwiceKprof(sigma, tau)) / 2.0;
}

std::vector<std::int8_t> KProfileQuarters(const BucketOrder& sigma) {
  const std::size_t n = sigma.n();
  std::vector<std::int8_t> profile;
  if (n < 2) return profile;
  // Exactly n(n-1) ordered pairs, no regrowth; checked so a domain past
  // 2^32 aborts instead of silently reserving a wrapped size.
  profile.reserve(static_cast<std::size_t>(
      CheckedMul(CheckedInt64(n), CheckedInt64(n - 1))));
  for (std::size_t i = 0; i < n; ++i) {
    // One bucket lookup per row and one per column; the two Ahead()
    // directions collapse to a single three-way bucket-index comparison.
    const BucketIndex bi = sigma.BucketOf(static_cast<ElementId>(i));
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const BucketIndex bj = sigma.BucketOf(static_cast<ElementId>(j));
      profile.push_back(bi < bj ? std::int8_t{1}
                                : (bj < bi ? std::int8_t{-1} : std::int8_t{0}));
    }
  }
  return profile;
}

std::int64_t TwiceKprofFromProfiles(const std::vector<std::int8_t>& a,
                                    const std::vector<std::int8_t>& b) {
  RANKTIES_DCHECK(a.size() == b.size());
  // Profile entries are quarters (+-1/4 stored as +-1); the L1 distance in
  // quarter units, halved, equals 2*Kprof.
  std::int64_t quarters = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    quarters += std::abs(static_cast<int>(a[i]) - static_cast<int>(b[i]));
  }
  RANKTIES_DCHECK(quarters % 2 == 0);
  return quarters / 2;
}

std::vector<std::int64_t> FProfileTwice(const BucketOrder& sigma) {
  std::vector<std::int64_t> profile(sigma.n());
  for (std::size_t e = 0; e < sigma.n(); ++e) {
    profile[e] = sigma.TwicePosition(static_cast<ElementId>(e));
  }
  return profile;
}

double Kavg(const BucketOrder& sigma, const BucketOrder& tau) {
  if (sigma.n() < 2) return 0.0;
  const PairCounts c = ComputePairCounts(sigma, tau);
  return static_cast<double>(c.discordant) +
         static_cast<double>(c.tied_sigma_only + c.tied_tau_only +
                             c.tied_both) /
             2.0;
}

double KavgSampled(const BucketOrder& sigma, const BucketOrder& tau,
                   int samples, Rng& rng) {
  RANKTIES_DCHECK(samples > 0);
  if (sigma.n() < 2) return 0.0;  // skip sampling: every refinement pair
                                  // has distance zero
  std::int64_t total = 0;
  for (int s = 0; s < samples; ++s) {
    total += KendallTau(RandomFullRefinement(sigma, rng),
                        RandomFullRefinement(tau, rng));
  }
  return static_cast<double>(total) / static_cast<double>(samples);
}

double KavgBrute(const BucketOrder& sigma, const BucketOrder& tau) {
  if (sigma.n() < 2) return 0.0;  // skip enumeration on degenerate inputs
  std::int64_t total = 0;
  std::int64_t pairs = 0;
  ForEachFullRefinement(sigma, [&](const Permutation& s) {
    ForEachFullRefinement(tau, [&](const Permutation& t) {
      total += KendallTau(s, t);
      ++pairs;
      return true;
    });
    return true;
  });
  RANKTIES_DCHECK(pairs > 0);
  return static_cast<double>(total) / static_cast<double>(pairs);
}

}  // namespace rankties
