#include "core/metric_registry.h"

#include "core/footrule.h"
#include "core/hausdorff.h"
#include "core/profile_metrics.h"

namespace rankties {

const std::vector<MetricKind>& AllMetricKinds() {
  static const std::vector<MetricKind> kKinds = {
      MetricKind::kKprof, MetricKind::kFprof, MetricKind::kKHaus,
      MetricKind::kFHaus};
  return kKinds;
}

const char* MetricName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kKprof:
      return "Kprof";
    case MetricKind::kFprof:
      return "Fprof";
    case MetricKind::kKHaus:
      return "KHaus";
    case MetricKind::kFHaus:
      return "FHaus";
  }
  return "unknown";
}

double ComputeMetric(MetricKind kind, const BucketOrder& sigma,
                     const BucketOrder& tau) {
  switch (kind) {
    case MetricKind::kKprof:
      return Kprof(sigma, tau);
    case MetricKind::kFprof:
      return Fprof(sigma, tau);
    case MetricKind::kKHaus:
      return static_cast<double>(KHausdorff(sigma, tau));
    case MetricKind::kFHaus:
      return FHausdorff(sigma, tau);
  }
  return 0.0;
}

MetricFn MetricFunction(MetricKind kind) {
  return [kind](const BucketOrder& sigma, const BucketOrder& tau) {
    return ComputeMetric(kind, sigma, tau);
  };
}

}  // namespace rankties
