#include "core/optimal_bucketing.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "util/combinatorics.h"
#include "util/contracts.h"

namespace rankties {

namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

// Sorted view of the scores: ids[r] = element at sorted position r (0-based),
// f[r+1] = its quad score (f is 1-based to match the paper's indexing).
struct SortedScores {
  std::vector<ElementId> ids;
  std::vector<std::int64_t> f;  // f[1..n], ascending
};

SortedScores SortScores(const std::vector<std::int64_t>& quad_scores) {
  SortedScores s;
  const std::size_t n = quad_scores.size();
  s.ids.resize(n);
  std::iota(s.ids.begin(), s.ids.end(), 0);
  std::stable_sort(s.ids.begin(), s.ids.end(), [&](ElementId a, ElementId b) {
    return quad_scores[static_cast<std::size_t>(a)] <
           quad_scores[static_cast<std::size_t>(b)];
  });
  s.f.resize(n + 1);
  s.f[0] = std::numeric_limits<std::int64_t>::min();
  for (std::size_t r = 0; r < n; ++r) {
    s.f[r + 1] = quad_scores[static_cast<std::size_t>(s.ids[r])];
  }
  return s;
}

// Builds the BucketOrder from DP backpointers: boundaries[j] = the i such
// that the final bucket covering sorted positions (i, j] is optimal.
BucketingResult BuildResult(const SortedScores& sorted,
                            const std::vector<std::size_t>& best_i,
                            std::int64_t cost_quad) {
  const std::size_t n = sorted.ids.size();
  std::vector<std::size_t> cuts;  // descending interval ends
  std::size_t j = n;
  while (j > 0) {
    cuts.push_back(j);
    j = best_i[j];
  }
  std::vector<BucketIndex> bucket_of(n);
  BucketIndex b = 0;
  std::size_t start = 0;
  for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
    for (std::size_t r = start; r < *it; ++r) {
      bucket_of[static_cast<std::size_t>(sorted.ids[r])] = b;
    }
    start = *it;
    ++b;
  }
  StatusOr<BucketOrder> order = BucketOrder::FromBucketIndex(bucket_of);
  RANKTIES_DCHECK_OK(order);
  return BucketingResult{std::move(order).value(), cost_quad};
}

// c(i,j) = sum_{l=i+1..j} |f[l] - 2(i+j+1)|, evaluated with prefix sums and
// a binary search for the midpoint split. O(log n).
struct PrefixCost {
  explicit PrefixCost(const std::vector<std::int64_t>& f) : f_(f) {
    prefix_.resize(f.size());
    prefix_[0] = 0;
    for (std::size_t l = 1; l < f.size(); ++l) {
      prefix_[l] = prefix_[l - 1] + f_[l];
    }
  }

  std::int64_t Cost(std::size_t i, std::size_t j) const {
    const std::int64_t m = 2 * static_cast<std::int64_t>(i + j + 1);
    // First index in (i, j] with f >= m.
    const auto begin = f_.begin() + static_cast<std::ptrdiff_t>(i + 1);
    const auto end = f_.begin() + static_cast<std::ptrdiff_t>(j + 1);
    const std::size_t split = static_cast<std::size_t>(
        std::lower_bound(begin, end, m) - f_.begin());
    const std::int64_t low_count = static_cast<std::int64_t>(split - i - 1);
    const std::int64_t high_count = static_cast<std::int64_t>(j - split + 1);
    const std::int64_t low_sum = prefix_[split - 1] - prefix_[i];
    const std::int64_t high_sum = prefix_[j] - prefix_[split - 1];
    return (low_count * m - low_sum) + (high_sum - high_count * m);
  }

 private:
  const std::vector<std::int64_t>& f_;
  std::vector<std::int64_t> prefix_;
};

BucketingResult SolvePrefixSum(const SortedScores& sorted) {
  const std::size_t n = sorted.ids.size();
  PrefixCost cost(sorted.f);
  std::vector<std::int64_t> dp(n + 1, kInf);
  std::vector<std::size_t> best_i(n + 1, 0);
  dp[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const std::int64_t candidate = dp[i] + cost.Cost(i, j);
      if (candidate < dp[j]) {
        dp[j] = candidate;
        best_i[j] = i;
      }
    }
  }
  return BuildResult(sorted, best_i, dp[n]);
}

BucketingResult SolveQuadraticSpace(const SortedScores& sorted) {
  const std::size_t n = sorted.ids.size();
  // c[i * (n+1) + j] for 0 <= i < j <= n, filled along anti-diagonals
  // s = i + j; every interval on a diagonal shares the midpoint 2(s+1).
  const std::size_t stride = n + 1;
  std::vector<std::int64_t> c(stride * stride, 0);
  auto at = [&](std::size_t i, std::size_t j) -> std::int64_t& {
    return c[i * stride + j];
  };
  for (std::size_t s = 0; s <= 2 * n - 1; ++s) {
    const std::int64_t m = 2 * static_cast<std::int64_t>(s + 1);
    std::size_t i, j;
    std::int64_t value;
    if (s % 2 == 0) {
      i = s / 2;
      j = s / 2;
      value = 0;  // empty interval; expanded before first store
    } else {
      i = (s - 1) / 2;
      j = (s + 1) / 2;
      if (j > n) continue;
      value = std::abs(sorted.f[j] - m);
      at(i, j) = value;
    }
    while (i > 0 && j < n) {
      value += std::abs(sorted.f[i] - m) + std::abs(sorted.f[j + 1] - m);
      --i;
      ++j;
      at(i, j) = value;
    }
  }
  std::vector<std::int64_t> dp(n + 1, kInf);
  std::vector<std::size_t> best_i(n + 1, 0);
  dp[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const std::int64_t candidate = dp[i] + at(i, j);
      if (candidate < dp[j]) {
        dp[j] = candidate;
        best_i[j] = i;
      }
    }
  }
  return BuildResult(sorted, best_i, dp[n]);
}

// Figure 1 of the paper: incremental cost via the Lemma 37 recurrence with a
// monotone cursor k. Requires every f[l] even (2f integral).
BucketingResult SolveLinearSpace(const SortedScores& sorted) {
  const std::size_t n = sorted.ids.size();
  std::vector<std::int64_t> dp(n + 1, kInf);
  std::vector<std::size_t> best_i(n + 1, 0);
  dp[0] = 0;
  for (std::size_t j = 1; j <= n; ++j) {
    // c(0, j) computed directly.
    std::int64_t cost = 0;
    {
      const std::int64_t m = 2 * static_cast<std::int64_t>(j + 1);
      for (std::size_t l = 1; l <= j; ++l) {
        cost += std::abs(sorted.f[l] - m);
      }
    }
    dp[j] = dp[0] + cost;
    best_i[j] = 0;
    std::size_t k = 1;  // first index with f[k] >= 2(i+j+1); monotone in i
    for (std::size_t i = 1; i < j; ++i) {
      const std::int64_t m_prev = 2 * static_cast<std::int64_t>(i + j);
      const std::int64_t m_new = m_prev + 2;
      while (k <= j && sorted.f[k] < m_new) ++k;
      // Lemma 37 (re-derived for quad units): moving from c(i-1,j) to
      // c(i,j) drops element i and shifts the midpoint up by 1/2; elements
      // below the new midpoint gain 2, the rest lose 2.
      const std::int64_t low =
          std::max<std::int64_t>(0, static_cast<std::int64_t>(k) - 1 -
                                        static_cast<std::int64_t>(i));
      cost = cost - std::abs(sorted.f[i] - m_prev) +
             2 * (2 * low - static_cast<std::int64_t>(j - i));
      const std::int64_t candidate = dp[i] + cost;
      if (candidate < dp[j]) {
        dp[j] = candidate;
        best_i[j] = i;
      }
    }
  }
  return BuildResult(sorted, best_i, dp[n]);
}

bool AllEven(const std::vector<std::int64_t>& values) {
  for (std::int64_t v : values) {
    if (v % 2 != 0) return false;
  }
  return true;
}

}  // namespace

StatusOr<BucketingResult> OptimalBucketing(
    const std::vector<std::int64_t>& quad_scores,
    BucketingAlgorithm algorithm) {
  if (quad_scores.empty()) {
    return Status::InvalidArgument("no scores");
  }
  const SortedScores sorted = SortScores(quad_scores);
  switch (algorithm) {
    case BucketingAlgorithm::kPrefixSum:
      return SolvePrefixSum(sorted);
    case BucketingAlgorithm::kQuadraticSpace:
      return SolveQuadraticSpace(sorted);
    case BucketingAlgorithm::kLinearSpace:
      if (!AllEven(sorted.f)) {
        return Status::FailedPrecondition(
            "linear-space DP requires 2f integral (even quad scores); "
            "use kQuadraticSpace or kPrefixSum");
      }
      return SolveLinearSpace(sorted);
    case BucketingAlgorithm::kAuto:
      return AllEven(sorted.f) ? SolveLinearSpace(sorted)
                               : SolveQuadraticSpace(sorted);
  }
  return Status::Internal("unknown algorithm");
}

StatusOr<std::int64_t> BucketingCostQuad(
    const std::vector<std::int64_t>& quad_scores,
    const std::vector<std::size_t>& sizes) {
  std::size_t total = 0;
  for (std::size_t s : sizes) {
    if (s == 0) return Status::InvalidArgument("zero bucket size");
    total += s;
  }
  if (total != quad_scores.size()) {
    return Status::InvalidArgument("sizes do not sum to n");
  }
  const SortedScores sorted = SortScores(quad_scores);
  std::int64_t cost = 0;
  std::size_t i = 0;
  for (std::size_t s : sizes) {
    const std::size_t j = i + s;
    const std::int64_t m = 2 * static_cast<std::int64_t>(i + j + 1);
    for (std::size_t l = i + 1; l <= j; ++l) {
      cost += std::abs(sorted.f[l] - m);
    }
    i = j;
  }
  return cost;
}

StatusOr<BucketingResult> OptimalBucketingBrute(
    const std::vector<std::int64_t>& quad_scores) {
  const std::size_t n = quad_scores.size();
  if (n == 0) return Status::InvalidArgument("no scores");
  if (n > 20) {
    return Status::InvalidArgument("brute force limited to n <= 20");
  }
  const SortedScores sorted = SortScores(quad_scores);
  std::int64_t best_cost = kInf;
  std::vector<std::size_t> best_sizes;
  ForEachComposition(n, [&](const std::vector<std::size_t>& sizes) {
    StatusOr<std::int64_t> cost = BucketingCostQuad(quad_scores, sizes);
    RANKTIES_DCHECK_OK(cost);
    if (*cost < best_cost) {
      best_cost = *cost;
      best_sizes = sizes;
    }
    return true;
  });
  // Rebuild the bucket order for the best composition.
  std::vector<BucketIndex> bucket_of(n);
  std::size_t r = 0;
  BucketIndex b = 0;
  for (std::size_t s : best_sizes) {
    for (std::size_t l = 0; l < s; ++l, ++r) {
      bucket_of[static_cast<std::size_t>(sorted.ids[r])] = b;
    }
    ++b;
  }
  StatusOr<BucketOrder> order = BucketOrder::FromBucketIndex(bucket_of);
  RANKTIES_DCHECK_OK(order);
  return BucketingResult{std::move(order).value(), best_cost};
}

}  // namespace rankties
