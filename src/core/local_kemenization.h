#ifndef RANKTIES_CORE_LOCAL_KEMENIZATION_H_
#define RANKTIES_CORE_LOCAL_KEMENIZATION_H_

#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"

namespace rankties {

/// Local Kemenization (Dwork et al. [8], generalized to the K^(p)
/// objective): repeatedly swaps adjacent elements of `candidate` whenever
/// the swap strictly lowers sum_i K^(p)(pi, sigma_i), until no adjacent swap
/// helps (a locally Kemeny-optimal ranking). Each pass is O(n^2) pair
/// lookups; the loop terminates because the integral doubled objective
/// strictly decreases.
///
/// Returns the improved ranking. Typically used to polish Borda / MC4 /
/// median outputs.
Permutation LocalKemenization(const Permutation& candidate,
                              const std::vector<BucketOrder>& inputs,
                              double p = 0.5);

}  // namespace rankties

#endif  // RANKTIES_CORE_LOCAL_KEMENIZATION_H_
