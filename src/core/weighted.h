#ifndef RANKTIES_CORE_WEIGHTED_H_
#define RANKTIES_CORE_WEIGHTED_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Weighted aggregation: voter i carries a positive integer weight w_i
/// (e.g. source reliability, or multiplicity of identical criteria). All
/// of Section 6 goes through verbatim — Lemma 8 holds for the *weighted*
/// median (the point minimizing the weighted L1), so the approximation
/// factors of Theorems 9-11 hold for the weighted objective
///     sum_i w_i * L1(sigma, sigma_i).
/// Integer weights keep every quantity exact; scale rational weights to a
/// common denominator first.

/// The weighted-median scores in quadrupled units: for each element, the
/// weighted median of its doubled positions (lower weighted median — the
/// smallest value whose cumulative weight reaches half the total; the
/// kLower analogue). Fails on empty inputs, mismatched sizes/lengths, or
/// non-positive weights.
StatusOr<std::vector<std::int64_t>> WeightedMedianScoresQuad(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights);

/// Weighted median aggregation to a full ranking (ties by element id).
StatusOr<Permutation> WeightedMedianAggregateFull(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights);

/// Weighted median aggregation to a top-k list.
StatusOr<BucketOrder> WeightedMedianAggregateTopK(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights, std::size_t k);

/// The weighted objective: sum_i w_i * 2*Fprof(candidate, sigma_i).
StatusOr<std::int64_t> WeightedTwiceTotalFprof(
    const BucketOrder& candidate, const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights);

}  // namespace rankties

#endif  // RANKTIES_CORE_WEIGHTED_H_
