#include "core/prepared.h"

#include <algorithm>
#include <cstdlib>

#include "core/hausdorff.h"
#include "core/profile_metrics.h"
#include "obs/obs.h"
#include "util/checked_math.h"
#include "util/contracts.h"
#include "util/simd.h"

namespace rankties {

namespace {

// Fenwick primitives on a raw scratch vector (slot 0 unused) so the hot
// loop never constructs a tree object. `tree` must have at least size+1
// zeroed slots; indices are 0-based bucket indices.
inline void FenwickAdd(std::vector<std::int64_t>& tree, std::size_t size,
                       std::size_t index, std::int64_t delta) {
  for (std::size_t i = index + 1; i <= size; i += i & (~i + 1)) {
    tree[i] += delta;
  }
}

inline std::int64_t FenwickPrefix(const std::vector<std::int64_t>& tree,
                                  std::size_t index) {
  std::int64_t sum = 0;
  for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) sum += tree[i];
  return sum;
}

// The flat joint histogram pays one pass over all t_sigma * t_tau cells, so
// it is worth it while the key space stays a small multiple of n (the cell
// scan is sequential — far cheaper per op than the fallback's sort) and its
// memory stays bounded; beyond the cap the sort-and-run-count fallback wins
// and keeps scratch memory O(n) instead of O(t_sigma * t_tau).
inline bool UseFlatJoint(std::size_t n, std::size_t product) {
  constexpr std::size_t kMaxFlatCells = std::size_t{1} << 20;  // 8 MiB
  return product <= std::max<std::size_t>(
                        64, std::min(32 * n, kMaxFlatCells));
}

// The flat-histogram mode relies on every consumed cell being re-zeroed by
// the row scan, so a reused scratch needs no bulk clear. Debug builds
// re-prove that invariant at entry (the contract is only referenced from a
// RANKTIES_DCHECK, so release builds never evaluate it).
bool JointCountsAllZero(const std::vector<std::int64_t>& cells,
                        std::size_t limit) {
  const std::size_t checked = std::min(cells.size(), limit);
  for (std::size_t i = 0; i < checked; ++i) {
    if (cells[i] != 0) return false;
  }
  return true;
}

}  // namespace

PreparedRanking::PreparedRanking(const BucketOrder& order) {
  // Freeze boundary: every kernel below assumes a well-formed bucket order
  // (Theorem 5 / Proposition 6 preconditions), so re-prove it here in
  // debug builds rather than inside each hot kernel.
  RANKTIES_DCHECK_OK(order.Validate());
  const std::size_t n = order.n();
  const std::size_t t = order.num_buckets();
  bucket_of_.resize(n);
  by_bucket_.resize(n);
  bucket_offset_.resize(t + 1);
  twice_pos_.resize(n);
  // One pass over the partition: the by-bucket concatenation *is* the
  // counting-sorted element order the legacy engine re-derives per pair.
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < t; ++b) {
    bucket_offset_[b] = cursor;
    const std::vector<ElementId>& bucket = order.bucket(b);
    const std::int64_t twice_pos = order.TwicePositionOfBucket(b);
    tied_pairs_ = CheckedAdd(
        tied_pairs_, CheckedChoose2(static_cast<std::int64_t>(bucket.size())));
    for (const ElementId e : bucket) {
      bucket_of_[static_cast<std::size_t>(e)] = static_cast<BucketIndex>(b);
      twice_pos_[static_cast<std::size_t>(e)] = twice_pos;
      by_bucket_[cursor++] = e;
    }
  }
  bucket_offset_[t] = cursor;
  RANKTIES_DCHECK(cursor == n);  // the partition covered the whole domain
}

void PreparedRanking::RecomputePositions(std::size_t lo, std::size_t hi) {
  // 2*pos(B_b) = 2*sum_{j<b}|B_j| + |B_b| + 1 = off[b] + off[b+1] + 1.
  for (std::size_t b = lo; b <= hi && b < num_buckets(); ++b) {
    const std::int64_t twice_pos =
        static_cast<std::int64_t>(bucket_offset_[b]) +
        static_cast<std::int64_t>(bucket_offset_[b + 1]) + 1;
    for (std::size_t k = bucket_offset_[b]; k < bucket_offset_[b + 1]; ++k) {
      twice_pos_[static_cast<std::size_t>(by_bucket_[k])] = twice_pos;
    }
  }
}

void PreparedRanking::CollapseEmptyBucket(std::size_t b) {
  RANKTIES_DCHECK(bucket_offset_[b] == bucket_offset_[b + 1]);
  bucket_offset_.erase(bucket_offset_.begin() +
                       static_cast<std::ptrdiff_t>(b));
  for (std::size_t k = bucket_offset_[b]; k < n(); ++k) {
    --bucket_of_[static_cast<std::size_t>(by_bucket_[k])];
  }
}

std::size_t PreparedRanking::SlotOf(ElementId e) const {
  const std::size_t b =
      static_cast<std::size_t>(bucket_of_[static_cast<std::size_t>(e)]);
  const auto lo = by_bucket_.begin() +
                  static_cast<std::ptrdiff_t>(bucket_offset_[b]);
  const auto hi = by_bucket_.begin() +
                  static_cast<std::ptrdiff_t>(bucket_offset_[b + 1]);
  const auto slot = std::lower_bound(lo, hi, e);
  RANKTIES_DCHECK(slot != hi && *slot == e);
  return static_cast<std::size_t>(slot - by_bucket_.begin());
}

Status PreparedRanking::MoveToBucket(ElementId e, std::size_t target_bucket) {
  if (static_cast<std::size_t>(e) >= n()) {
    return Status::InvalidArgument("element out of range");
  }
  if (target_bucket >= num_buckets()) {
    return Status::InvalidArgument("target bucket out of range");
  }
  const std::size_t s =
      static_cast<std::size_t>(bucket_of_[static_cast<std::size_t>(e)]);
  const std::size_t d = target_bucket;
  if (s == d) return Status::Ok();

  const std::int64_t source_size = static_cast<std::int64_t>(
      bucket_offset_[s + 1] - bucket_offset_[s]);
  const std::int64_t target_size = static_cast<std::int64_t>(
      bucket_offset_[d + 1] - bucket_offset_[d]);
  // choose2(a) - choose2(a-1) = a-1 leaving the source; +b joining the
  // target — exact integer maintenance of the frozen tied-pair count.
  tied_pairs_ = CheckedAdd(tied_pairs_, target_size - (source_size - 1));

  const std::size_t slot = SlotOf(e);
  if (s < d) {
    // Insertion point inside the target's range keeps ids ascending; the
    // range shifts one left once e's old slot is vacated, so rotate to
    // insert_at - 1.
    const auto insert_at = std::lower_bound(
        by_bucket_.begin() + static_cast<std::ptrdiff_t>(bucket_offset_[d]),
        by_bucket_.begin() +
            static_cast<std::ptrdiff_t>(bucket_offset_[d + 1]),
        e);
    std::rotate(by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot),
                by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot) + 1,
                insert_at);
    for (std::size_t b = s + 1; b <= d; ++b) --bucket_offset_[b];
  } else {
    const auto insert_at = std::lower_bound(
        by_bucket_.begin() + static_cast<std::ptrdiff_t>(bucket_offset_[d]),
        by_bucket_.begin() +
            static_cast<std::ptrdiff_t>(bucket_offset_[d + 1]),
        e);
    std::rotate(insert_at,
                by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot),
                by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot) + 1);
    for (std::size_t b = d + 1; b <= s; ++b) ++bucket_offset_[b];
  }
  bucket_of_[static_cast<std::size_t>(e)] = static_cast<BucketIndex>(d);

  std::size_t lo = std::min(s, d);
  std::size_t hi = std::max(s, d);
  if (source_size == 1) {
    // The source bucket emptied: remove it, shifting later buckets down.
    CollapseEmptyBucket(s);
    hi = hi == 0 ? 0 : hi - 1;
  }
  RecomputePositions(lo, hi);
  return Status::Ok();
}

Status PreparedRanking::MoveToNewBucket(ElementId e,
                                        std::size_t before_bucket) {
  if (static_cast<std::size_t>(e) >= n()) {
    return Status::InvalidArgument("element out of range");
  }
  if (before_bucket > num_buckets()) {
    return Status::InvalidArgument("insertion position out of range");
  }
  const std::size_t s =
      static_cast<std::size_t>(bucket_of_[static_cast<std::size_t>(e)]);
  const std::size_t p = before_bucket;
  const std::int64_t source_size = static_cast<std::int64_t>(
      bucket_offset_[s + 1] - bucket_offset_[s]);
  if (source_size == 1 && (p == s || p == s + 1)) {
    return Status::Ok();  // already a singleton bucket at this position
  }
  tied_pairs_ = CheckedAdd(tied_pairs_, -(source_size - 1));

  const std::size_t slot = SlotOf(e);
  if (p > s) {
    // e travels right: it lands just before the old bucket p, i.e. at the
    // end of the old bucket p-1's range.
    const std::size_t q = bucket_offset_[p];
    std::rotate(by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot),
                by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot) + 1,
                by_bucket_.begin() + static_cast<std::ptrdiff_t>(q));
    // Buckets strictly between the source and the insertion point lose the
    // slot e vacated; then the new singleton bucket [q-1, q) is spliced in
    // before old bucket p.
    for (std::size_t b = s + 1; b < p; ++b) --bucket_offset_[b];
    bucket_offset_.insert(
        bucket_offset_.begin() + static_cast<std::ptrdiff_t>(p), q - 1);
  } else {
    const std::size_t q = bucket_offset_[p];
    std::rotate(by_bucket_.begin() + static_cast<std::ptrdiff_t>(q),
                by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot),
                by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot) + 1);
    // The new singleton bucket [q, q+1) displaces buckets p..s one slot to
    // the right; the spliced entry keeps the old off[p] as the new bucket's
    // start.
    bucket_offset_.insert(
        bucket_offset_.begin() + static_cast<std::ptrdiff_t>(p), q);
    for (std::size_t b = p + 1; b <= s + 1; ++b) ++bucket_offset_[b];
  }

  // Reindex bucket_of_ and positions. The source bucket now sits at index
  // s + 1 when the new bucket landed before it.
  const std::size_t source_now = p <= s ? s + 1 : s;
  std::size_t reindex_end;
  if (source_size == 1) {
    // Net bucket count unchanged (one bucket emptied, one inserted):
    // buckets outside [min(p, s), max(p, s)] keep their indices, so only
    // the offset entry is spliced out here — the reindex loop below
    // rewrites bucket_of_ for the affected range, and the suffix was never
    // touched. (CollapseEmptyBucket would wrongly decrement that suffix.)
    RANKTIES_DCHECK(bucket_offset_[source_now] ==
                    bucket_offset_[source_now + 1]);
    bucket_offset_.erase(bucket_offset_.begin() +
                         static_cast<std::ptrdiff_t>(source_now));
    reindex_end = std::max(p, source_now);
    reindex_end = reindex_end == 0 ? 0 : reindex_end - 1;
  } else {
    // Net +1 bucket: every bucket from the insertion point on shifted.
    reindex_end = num_buckets() - 1;
  }
  const std::size_t lo = std::min(p, s);
  for (std::size_t b = lo; b <= reindex_end; ++b) {
    for (std::size_t k = bucket_offset_[b]; k < bucket_offset_[b + 1]; ++k) {
      bucket_of_[static_cast<std::size_t>(by_bucket_[k])] =
          static_cast<BucketIndex>(b);
    }
  }
  RecomputePositions(lo, reindex_end);
  return Status::Ok();
}

Status PreparedRanking::InsertItem(std::size_t bucket) {
  if (bucket >= num_buckets() && !(bucket == 0 && n() == 0)) {
    return Status::InvalidArgument("bucket out of range");
  }
  if (n() == 0) {
    // Growing an empty domain: element 0 forms the first bucket.
    bucket_of_.assign(1, 0);
    by_bucket_.assign(1, 0);
    bucket_offset_ = {0, 1};
    twice_pos_.assign(1, 2);  // 2 * pos 1
    return Status::Ok();
  }
  const ElementId fresh = static_cast<ElementId>(n());
  const std::int64_t bucket_size = static_cast<std::int64_t>(
      bucket_offset_[bucket + 1] - bucket_offset_[bucket]);
  tied_pairs_ = CheckedAdd(tied_pairs_, bucket_size);
  // The fresh id is the largest, so it slots at the end of its bucket.
  by_bucket_.insert(by_bucket_.begin() + static_cast<std::ptrdiff_t>(
                                             bucket_offset_[bucket + 1]),
                    fresh);
  for (std::size_t b = bucket + 1; b < bucket_offset_.size(); ++b) {
    ++bucket_offset_[b];
  }
  bucket_of_.push_back(static_cast<BucketIndex>(bucket));
  twice_pos_.push_back(0);  // filled by the position sweep below
  RecomputePositions(bucket, num_buckets() - 1);
  return Status::Ok();
}

Status PreparedRanking::EraseItem(ElementId e) {
  if (static_cast<std::size_t>(e) >= n()) {
    return Status::InvalidArgument("element out of range");
  }
  const std::size_t s =
      static_cast<std::size_t>(bucket_of_[static_cast<std::size_t>(e)]);
  const std::int64_t source_size = static_cast<std::int64_t>(
      bucket_offset_[s + 1] - bucket_offset_[s]);
  tied_pairs_ = CheckedAdd(tied_pairs_, -(source_size - 1));

  const std::size_t slot = SlotOf(e);
  by_bucket_.erase(by_bucket_.begin() + static_cast<std::ptrdiff_t>(slot));
  // Renumber: ids above e shift down one; subtracting one from every
  // larger id preserves the ascending order within each bucket.
  for (ElementId& id : by_bucket_) {
    if (id > e) --id;
  }
  for (std::size_t b = s + 1; b < bucket_offset_.size(); ++b) {
    --bucket_offset_[b];
  }
  bucket_of_.erase(bucket_of_.begin() + static_cast<std::ptrdiff_t>(e));
  twice_pos_.erase(twice_pos_.begin() + static_cast<std::ptrdiff_t>(e));
  if (source_size == 1) CollapseEmptyBucket(s);
  if (n() > 0) {
    const std::size_t last = num_buckets() - 1;
    RecomputePositions(std::min(s, last), last);
  }
  return Status::Ok();
}

BucketOrder PreparedRanking::ToBucketOrder() const {
  if (n() == 0) return BucketOrder();
  StatusOr<BucketOrder> thawed = BucketOrder::FromBucketIndex(bucket_of_);
  // The delta ops maintain the freeze invariants, so the thaw cannot fail.
  RANKTIES_DCHECK(thawed.ok());
  return *std::move(thawed);
}

void PairScratch::Reserve(std::size_t n, std::size_t buckets) {
  if (fenwick_.size() < buckets + 1) fenwick_.resize(buckets + 1, 0);
  const std::size_t product = buckets * buckets;
  if (UseFlatJoint(n, product) && joint_counts_.size() < product) {
    joint_counts_.resize(product, 0);
  }
  if (joint_keys_.capacity() < n) joint_keys_.reserve(n);
  if (keys32_.capacity() < n) keys32_.reserve(n);
}

PairCounts ComputePairCounts(const PreparedRanking& sigma,
                             const PreparedRanking& tau,
                             PairScratch& scratch) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  PairCounts counts;
  if (n < 2) return counts;

  const std::size_t t_sigma = sigma.num_buckets();
  const std::size_t t_tau = tau.num_buckets();
  const std::vector<BucketIndex>& sigma_of = sigma.bucket_of();
  const std::vector<BucketIndex>& tau_of = tau.bucket_of();

  // --- tied_both and discordant in one joint-histogram pass (flat mode). ---
  bool scratch_grew = false;
  const std::size_t product = t_sigma * t_tau;
  if (UseFlatJoint(n, product)) {
    // Build the flat (sigma bucket, tau bucket) histogram, then walk its
    // rows in sigma-bucket order keeping P[t] = elements of earlier sigma
    // buckets with tau bucket <= t. A cell (s, t) with count c contributes
    // choose2(c) tied-both pairs and c * (inserted - P[t]) discordant pairs
    // — the same per-element sums the legacy Fenwick accumulates, batched
    // per cell, with no per-element tree walks and no sort. Cells are
    // re-zeroed as they are consumed, so the buffer never needs a bulk
    // clear (entries are zero outside a call, by invariant).
    RANKTIES_DCHECK(JointCountsAllZero(scratch.joint_counts_, product));
    if (scratch.joint_counts_.size() < product) {
      scratch.joint_counts_.resize(product, 0);
      scratch_grew = true;
    }
    if (scratch.fenwick_.size() < t_tau + 1) {
      scratch.fenwick_.resize(t_tau + 1);
      scratch_grew = true;
    }
    // Key computation is SIMD-dispatched (util/simd.h): stage the int32 keys
    // (the flat key space is capped at 2^20, so they fit), then scatter the
    // increments serially — the histogram write is the inherently scalar
    // half of the fused scan.
    if (scratch.keys32_.capacity() < n) {
      scratch.keys32_.reserve(n);
      scratch_grew = true;
    }
    scratch.keys32_.resize(n);
    simd::JointKeys32(sigma_of.data(), tau_of.data(), n,
                      static_cast<std::int32_t>(t_tau),
                      scratch.keys32_.data());
    for (std::size_t e = 0; e < n; ++e) {
      ++scratch.joint_counts_[static_cast<std::size_t>(scratch.keys32_[e])];
    }
    std::int64_t* const prefix = scratch.fenwick_.data();  // plain array here
    std::fill(prefix, prefix + t_tau, 0);
    std::int64_t inserted = 0;
    for (std::size_t s = 0; s < t_sigma; ++s) {
      std::int64_t* const row = scratch.joint_counts_.data() + s * t_tau;
      std::int64_t running = 0;
      for (std::size_t t = 0; t < t_tau; ++t) {
        const std::int64_t c = row[t];
        if (c != 0) {
          counts.tied_both += CheckedChoose2(c);
          counts.discordant += c * (inserted - prefix[t]);
          row[t] = 0;
        }
        running += c;
        prefix[t] += running;
      }
      inserted += running;
    }
    counts.tied_sigma_only = sigma.tied_pairs() - counts.tied_both;
    counts.tied_tau_only = tau.tied_pairs() - counts.tied_both;
    counts.concordant = CheckedChoose2(static_cast<std::int64_t>(n)) -
                        counts.discordant - counts.tied_sigma_only -
                        counts.tied_tau_only - counts.tied_both;
    if (scratch_grew) {
      RANKTIES_OBS_COUNT("prepared.scratch_grows", 1);
    } else {
      RANKTIES_OBS_COUNT("prepared.scratch_reuse_hits", 1);
    }
    return counts;
  }
  {
    // Key space too large for a flat buffer: sort the n joint keys in place
    // (reused capacity, no heap traffic) and count runs. The key build is
    // SIMD-dispatched (util/simd.h) like the flat-histogram path; the sort
    // and run walk stay scalar (Fenwick-free but data-dependent).
    if (scratch.joint_keys_.capacity() < n) {
      scratch.joint_keys_.reserve(n);
      scratch_grew = true;
    }
    scratch.joint_keys_.resize(n);
    simd::JointKeys64(sigma_of.data(), tau_of.data(), n,
                      static_cast<std::int64_t>(t_tau),
                      scratch.joint_keys_.data());
    std::sort(scratch.joint_keys_.begin(), scratch.joint_keys_.end());
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && scratch.joint_keys_[j] == scratch.joint_keys_[i]) ++j;
      counts.tied_both += CheckedChoose2(static_cast<std::int64_t>(j - i));
      i = j;
    }
  }
  counts.tied_sigma_only = sigma.tied_pairs() - counts.tied_both;
  counts.tied_tau_only = tau.tied_pairs() - counts.tied_both;

  // --- Discordant pairs: Fenwick inversion count over tau buckets, walking
  // sigma's frozen by-bucket order (same visit order as the legacy sort, so
  // the arithmetic is identical). Same-sigma-bucket elements are all queried
  // before any is inserted, so sigma-ties never count.
  if (scratch.fenwick_.size() < t_tau + 1) {
    scratch.fenwick_.resize(t_tau + 1);
    scratch_grew = true;
  }
  // Clear the active prefix unconditionally: resize() zero-fills only the
  // slots it appends, and slots below that still hold the previous call's
  // tree.
  std::fill(scratch.fenwick_.begin(),
            scratch.fenwick_.begin() + static_cast<std::ptrdiff_t>(t_tau + 1),
            0);
  const std::vector<ElementId>& by_bucket = sigma.by_bucket();
  const std::vector<std::size_t>& offset = sigma.bucket_offset();
  std::int64_t inserted = 0;
  for (std::size_t b = 0; b < t_sigma; ++b) {
    const std::size_t lo = offset[b];
    const std::size_t hi = offset[b + 1];
    for (std::size_t k = lo; k < hi; ++k) {
      const std::size_t tb =
          static_cast<std::size_t>(tau_of[static_cast<std::size_t>(
              by_bucket[k])]);
      counts.discordant += inserted - FenwickPrefix(scratch.fenwick_, tb);
    }
    for (std::size_t k = lo; k < hi; ++k) {
      const std::size_t tb =
          static_cast<std::size_t>(tau_of[static_cast<std::size_t>(
              by_bucket[k])]);
      FenwickAdd(scratch.fenwick_, t_tau, tb, 1);
      ++inserted;
    }
  }

  counts.concordant = CheckedChoose2(static_cast<std::int64_t>(n)) -
                      counts.discordant - counts.tied_sigma_only -
                      counts.tied_tau_only - counts.tied_both;
  if (scratch_grew) {
    RANKTIES_OBS_COUNT("prepared.scratch_grows", 1);
  } else {
    RANKTIES_OBS_COUNT("prepared.scratch_reuse_hits", 1);
  }
  return counts;
}

std::int64_t TwiceKprof(const PreparedRanking& sigma,
                        const PreparedRanking& tau, PairScratch& scratch) {
  if (sigma.n() < 2) return 0;  // no pairs on a degenerate universe
  return TwiceKprofFromCounts(ComputePairCounts(sigma, tau, scratch));
}

double Kprof(const PreparedRanking& sigma, const PreparedRanking& tau,
             PairScratch& scratch) {
  return static_cast<double>(TwiceKprof(sigma, tau, scratch)) / 2.0;
}

double KendallP(const PreparedRanking& sigma, const PreparedRanking& tau,
                double p, PairScratch& scratch) {
  RANKTIES_DCHECK(p >= 0.0 && p <= 1.0);
  if (sigma.n() < 2) return 0.0;  // no pairs on a degenerate universe
  return KendallPFromCounts(ComputePairCounts(sigma, tau, scratch), p);
}

std::int64_t KHausdorff(const PreparedRanking& sigma,
                        const PreparedRanking& tau, PairScratch& scratch) {
  if (sigma.n() < 2) return 0;  // no pairs on a degenerate universe
  return KHausdorffFromCounts(ComputePairCounts(sigma, tau, scratch));
}

std::int64_t TwiceFprof(const PreparedRanking& sigma,
                        const PreparedRanking& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::vector<std::int64_t>& a = sigma.twice_position();
  const std::vector<std::int64_t>& b = tau.twice_position();
  return simd::AbsDiffSumI64(a.data(), b.data(), a.size());
}

double Fprof(const PreparedRanking& sigma, const PreparedRanking& tau) {
  return static_cast<double>(TwiceFprof(sigma, tau)) / 2.0;
}

std::int64_t TwiceFHausdorff(const PreparedRanking& sigma,
                             const PreparedRanking& tau,
                             PairScratch& scratch) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  if (n < 2) return 0;  // no displacement on a degenerate universe

  // Theorem 5's two candidate refinement pairs, without materializing them.
  // With rho = identity, the four permutations rank elements by
  //   sigma1: (sigma bucket asc, tau bucket desc, id asc)
  //   tau1:   (tau bucket asc, sigma bucket asc, id asc)
  //   sigma2: (sigma bucket asc, tau bucket asc, id asc)
  //   tau2:   (tau bucket asc, sigma bucket desc, id asc)
  // (rank/refinement.cc's TauRefine/TauRefineFull sort exactly these keys).
  // Within any joint bucket cell (s, t) each order lists the cell's
  // elements in ascending id, so the rank displacement |rank_sigma_k(e) -
  // rank_tau_k(e)| is one constant per cell and each candidate footrule is
  // a sum of cnt(s, t) * |displacement(s, t)| over occupied cells. The
  // displacements need only the cell count, the frozen bucket offsets of
  // both sides, and two running prefixes maintained by a row-major sweep:
  // row_before (elements of row s in earlier columns) and col_before[t]
  // (elements of column t in earlier rows).
  const std::size_t t_sigma = sigma.num_buckets();
  const std::size_t t_tau = tau.num_buckets();
  const std::vector<std::size_t>& sigma_off = sigma.bucket_offset();
  const std::vector<std::size_t>& tau_off = tau.bucket_offset();
  const std::vector<BucketIndex>& sigma_of = sigma.bucket_of();
  const std::vector<BucketIndex>& tau_of = tau.bucket_of();

  bool scratch_grew = false;
  if (scratch.fenwick_.size() < t_tau + 1) {
    scratch.fenwick_.resize(t_tau + 1);
    scratch_grew = true;
  }
  std::int64_t* const col_before = scratch.fenwick_.data();  // plain array
  std::fill(col_before, col_before + t_tau, 0);

  std::int64_t f1 = 0;
  std::int64_t f2 = 0;
  const auto add_cell = [&](std::size_t s, std::size_t t, std::int64_t c,
                            std::int64_t row_before) {
    const std::int64_t before_s = static_cast<std::int64_t>(sigma_off[s]);
    const std::int64_t row_total =
        static_cast<std::int64_t>(sigma_off[s + 1]) - before_s;
    const std::int64_t before_t = static_cast<std::int64_t>(tau_off[t]);
    const std::int64_t col_total =
        static_cast<std::int64_t>(tau_off[t + 1]) - before_t;
    const std::int64_t d1 = (before_s + row_total - row_before - c) -
                            (before_t + col_before[t]);
    const std::int64_t d2 = (before_s + row_before) -
                            (before_t + col_total - col_before[t] - c);
    f1 += c * (d1 < 0 ? -d1 : d1);
    f2 += c * (d2 < 0 ? -d2 : d2);
    col_before[t] += c;
  };

  const std::size_t product = t_sigma * t_tau;
  if (UseFlatJoint(n, product)) {
    // Same flat joint histogram as ComputePairCounts (SIMD-staged keys,
    // cells re-zeroed as the sweep consumes them).
    RANKTIES_DCHECK(JointCountsAllZero(scratch.joint_counts_, product));
    if (scratch.joint_counts_.size() < product) {
      scratch.joint_counts_.resize(product, 0);
      scratch_grew = true;
    }
    if (scratch.keys32_.capacity() < n) {
      scratch.keys32_.reserve(n);
      scratch_grew = true;
    }
    scratch.keys32_.resize(n);
    simd::JointKeys32(sigma_of.data(), tau_of.data(), n,
                      static_cast<std::int32_t>(t_tau),
                      scratch.keys32_.data());
    for (std::size_t e = 0; e < n; ++e) {
      ++scratch.joint_counts_[static_cast<std::size_t>(scratch.keys32_[e])];
    }
    for (std::size_t s = 0; s < t_sigma; ++s) {
      std::int64_t* const row = scratch.joint_counts_.data() + s * t_tau;
      std::int64_t row_before = 0;
      for (std::size_t t = 0; t < t_tau; ++t) {
        const std::int64_t c = row[t];
        if (c != 0) {
          add_cell(s, t, c, row_before);
          row_before += c;
          row[t] = 0;
        }
      }
    }
  } else {
    // Key space too large for a flat buffer: sort the n joint keys and walk
    // the runs — sorted order is exactly the row-major cell sweep.
    if (scratch.joint_keys_.capacity() < n) {
      scratch.joint_keys_.reserve(n);
      scratch_grew = true;
    }
    scratch.joint_keys_.resize(n);
    simd::JointKeys64(sigma_of.data(), tau_of.data(), n,
                      static_cast<std::int64_t>(t_tau),
                      scratch.joint_keys_.data());
    std::sort(scratch.joint_keys_.begin(), scratch.joint_keys_.end());
    std::size_t prev_s = t_sigma;  // sentinel: no row processed yet
    std::int64_t row_before = 0;
    std::size_t i = 0;
    while (i < n) {
      std::size_t j = i + 1;
      while (j < n && scratch.joint_keys_[j] == scratch.joint_keys_[i]) ++j;
      const std::int64_t key = scratch.joint_keys_[i];
      const std::size_t s =
          static_cast<std::size_t>(key) / t_tau;
      const std::size_t t =
          static_cast<std::size_t>(key) % t_tau;
      if (s != prev_s) {
        row_before = 0;
        prev_s = s;
      }
      const std::int64_t c = static_cast<std::int64_t>(j - i);
      add_cell(s, t, c, row_before);
      row_before += c;
      i = j;
    }
  }
  if (scratch_grew) {
    RANKTIES_OBS_COUNT("prepared.scratch_grows", 1);
  } else {
    RANKTIES_OBS_COUNT("prepared.scratch_reuse_hits", 1);
  }
  return 2 * std::max(f1, f2);
}

double FHausdorff(const PreparedRanking& sigma, const PreparedRanking& tau,
                  PairScratch& scratch) {
  return static_cast<double>(TwiceFHausdorff(sigma, tau, scratch)) / 2.0;
}

}  // namespace rankties
