#include "core/median_rank.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <numeric>

namespace rankties {

std::int64_t MedianQuad(std::vector<std::int64_t> values, MedianPolicy policy) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  const std::size_t m = values.size();
  if (m % 2 == 1) return 2 * values[m / 2];
  const std::int64_t lo = values[m / 2 - 1];
  const std::int64_t hi = values[m / 2];
  switch (policy) {
    case MedianPolicy::kLower:
      return 2 * lo;
    case MedianPolicy::kUpper:
      return 2 * hi;
    case MedianPolicy::kAverage:
      return lo + hi;
  }
  return 2 * lo;
}

namespace {

Status ValidateInputs(const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("no input rankings");
  }
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<std::int64_t>> MedianRankScoresQuad(
    const std::vector<BucketOrder>& inputs, MedianPolicy policy) {
  Status s = ValidateInputs(inputs);
  if (!s.ok()) return s;
  const std::size_t n = inputs.front().n();
  std::vector<std::int64_t> scores(n);
  std::vector<std::int64_t> column(inputs.size());
  for (std::size_t e = 0; e < n; ++e) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      column[i] = inputs[i].TwicePosition(static_cast<ElementId>(e));
    }
    scores[e] = MedianQuad(column, policy);
  }
  return scores;
}

StatusOr<BucketOrder> MedianInducedOrder(const std::vector<BucketOrder>& inputs,
                                         MedianPolicy policy) {
  StatusOr<std::vector<std::int64_t>> scores =
      MedianRankScoresQuad(inputs, policy);
  if (!scores.ok()) return scores.status();
  return BucketOrder::FromIntKeys(*scores);
}

StatusOr<Permutation> MedianAggregateFull(const std::vector<BucketOrder>& inputs,
                                          MedianPolicy policy) {
  StatusOr<std::vector<std::int64_t>> scores =
      MedianRankScoresQuad(inputs, policy);
  if (!scores.ok()) return scores.status();
  const std::size_t n = scores->size();
  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return (*scores)[static_cast<std::size_t>(a)] <
           (*scores)[static_cast<std::size_t>(b)];
  });
  return Permutation::FromOrder(order);
}

StatusOr<BucketOrder> MedianAggregateTopK(const std::vector<BucketOrder>& inputs,
                                          std::size_t k, MedianPolicy policy) {
  StatusOr<Permutation> full = MedianAggregateFull(inputs, policy);
  if (!full.ok()) return full.status();
  if (k > full->n()) {
    return Status::InvalidArgument("k exceeds domain size");
  }
  return BucketOrder::TopKOf(*full, k);
}

std::int64_t TotalL1ToInputsQuad(const std::vector<std::int64_t>& f_quad,
                                 const std::vector<BucketOrder>& inputs) {
  std::int64_t total = 0;
  for (const BucketOrder& input : inputs) {
    assert(input.n() == f_quad.size());
    for (std::size_t e = 0; e < f_quad.size(); ++e) {
      total += std::abs(f_quad[e] -
                        2 * input.TwicePosition(static_cast<ElementId>(e)));
    }
  }
  return total;
}

}  // namespace rankties
