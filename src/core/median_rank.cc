#include "core/median_rank.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "util/contracts.h"
#include "util/thread_pool.h"

namespace rankties {

std::int64_t MedianQuad(std::vector<std::int64_t> values, MedianPolicy policy) {
  RANKTIES_DCHECK(!values.empty());
  std::sort(values.begin(), values.end());
  const std::size_t m = values.size();
  if (m % 2 == 1) return 2 * values[m / 2];
  const std::int64_t lo = values[m / 2 - 1];
  const std::int64_t hi = values[m / 2];
  switch (policy) {
    case MedianPolicy::kLower:
      return 2 * lo;
    case MedianPolicy::kUpper:
      return 2 * hi;
    case MedianPolicy::kAverage:
      return lo + hi;
  }
  return 2 * lo;
}

namespace {

Status ValidateInputs(const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) {
    return Status::InvalidArgument("no input rankings");
  }
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<std::int64_t>> MedianRankScoresQuad(
    const std::vector<BucketOrder>& inputs, MedianPolicy policy) {
  Status s = ValidateInputs(inputs);
  if (!s.ok()) return s;
  const std::size_t n = inputs.front().n();
  const std::size_t m = inputs.size();
  std::vector<std::int64_t> scores(n);
  // Per-element medians are independent: parallel over elements, one scratch
  // column per chunk. Each slot is written exactly once — deterministic.
  ParallelFor(0, n, std::max<std::size_t>(1, 2048 / (m + 1)),
              [&](std::size_t lo, std::size_t hi) {
                std::vector<std::int64_t> column(m);
                for (std::size_t e = lo; e < hi; ++e) {
                  for (std::size_t i = 0; i < m; ++i) {
                    column[i] =
                        inputs[i].TwicePosition(static_cast<ElementId>(e));
                  }
                  scores[e] = MedianQuad(column, policy);
                }
              });
  return scores;
}

StatusOr<BucketOrder> MedianInducedOrder(const std::vector<BucketOrder>& inputs,
                                         MedianPolicy policy) {
  StatusOr<std::vector<std::int64_t>> scores =
      MedianRankScoresQuad(inputs, policy);
  if (!scores.ok()) return scores.status();
  return BucketOrder::FromIntKeys(*scores);
}

StatusOr<Permutation> MedianAggregateFull(
    const std::vector<BucketOrder>& inputs, MedianPolicy policy) {
  StatusOr<std::vector<std::int64_t>> scores =
      MedianRankScoresQuad(inputs, policy);
  if (!scores.ok()) return scores.status();
  const std::size_t n = scores->size();
  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return (*scores)[static_cast<std::size_t>(a)] <
           (*scores)[static_cast<std::size_t>(b)];
  });
  return Permutation::FromOrder(order);
}

StatusOr<BucketOrder> MedianAggregateTopK(
    const std::vector<BucketOrder>& inputs, std::size_t k,
    MedianPolicy policy) {
  StatusOr<Permutation> full = MedianAggregateFull(inputs, policy);
  if (!full.ok()) return full.status();
  if (k > full->n()) {
    return Status::InvalidArgument("k exceeds domain size");
  }
  return BucketOrder::TopKOf(*full, k);
}

std::int64_t TotalL1ToInputsQuad(const std::vector<std::int64_t>& f_quad,
                                 const std::vector<BucketOrder>& inputs) {
  // Parallel over inputs into per-input partial sums, reduced serially —
  // integer addition, so the total is exact and thread-count independent.
  std::vector<std::int64_t> partial(inputs.size(), 0);
  ParallelFor(0, inputs.size(),
              std::max<std::size_t>(1, 4096 / (f_quad.size() + 1)),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  const BucketOrder& input = inputs[i];
                  RANKTIES_DCHECK(input.n() == f_quad.size());
                  std::int64_t sum = 0;
                  for (std::size_t e = 0; e < f_quad.size(); ++e) {
                    sum += std::abs(
                        f_quad[e] -
                        2 * input.TwicePosition(static_cast<ElementId>(e)));
                  }
                  partial[i] = sum;
                }
              });
  std::int64_t total = 0;
  for (const std::int64_t sum : partial) total += sum;
  return total;
}

}  // namespace rankties
