#include "core/best_input.h"

#include "core/cost.h"

namespace rankties {

StatusOr<BestInputResult> BestInputAggregate(
    const std::vector<BucketOrder>& inputs, MetricKind kind) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  BestInputResult best;
  bool first = true;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const double cost = TotalDistance(kind, inputs[i], inputs);
    if (first || cost < best.total_cost) {
      best.index = i;
      best.total_cost = cost;
      first = false;
    }
  }
  return best;
}

}  // namespace rankties
