#include "core/best_input.h"

#include "core/batch_engine.h"

namespace rankties {

StatusOr<BestInputResult> BestInputAggregate(
    const std::vector<BucketOrder>& inputs, MetricKind kind) {
  // Candidates and lists coincide: the m^2 metric evaluations run on the
  // global thread pool; the argmin (first index on ties, matching the old
  // serial scan) stays serial.
  StatusOr<BestCandidateResult> best = BestOfCandidates(kind, inputs, inputs);
  if (!best.ok()) return best.status();
  return BestInputResult{best->index, best->total_cost};
}

}  // namespace rankties
