#ifndef RANKTIES_CORE_HAUSDORFF_H_
#define RANKTIES_CORE_HAUSDORFF_H_

#include <cstdint>

#include "core/pair_counts.h"
#include "rank/bucket_order.h"

namespace rankties {

/// KHaus (paper §3.2): the Hausdorff distance, under Kendall tau, between
/// the sets of full refinements of sigma and tau. Computed in O(n log n)
/// through Proposition 6: KHaus = |U| + max(|S|, |T|) where U is the set of
/// discordant untied pairs and S/T the pairs tied in exactly one input.
/// All Hausdorff entry points return 0 on degenerate universes (n < 2)
/// without touching the construction or counting machinery.
std::int64_t KHausdorff(const BucketOrder& sigma, const BucketOrder& tau);

/// Proposition 6 on precomputed pair counts; O(1). Shared by the legacy
/// BucketOrder path above and the prepared kernels (core/prepared.h), so
/// the two paths are bit-identical by construction.
std::int64_t KHausdorffFromCounts(const PairCounts& counts);

/// KHaus via the Theorem 5 characterization: constructs the two candidate
/// refinement pairs (rho*tauR*sigma, rho*sigma*tau) and
/// (rho*tau*sigma, rho*sigmaR*tau) with rho the identity full ranking, and
/// takes the max Kendall distance. Agrees with KHausdorff; kept as an
/// independently-testable path. O(n log n).
std::int64_t KHausdorffTheorem5(const BucketOrder& sigma,
                                const BucketOrder& tau);

/// FHaus (paper §3.2) through Theorem 5. There is no direct count formula
/// for FHaus in the paper; the construction is the algorithm. Exact doubled
/// value (full-ranking footrule is integral, so this is just 2*F). O(n log n)
/// with eight sorts and per-pair allocations: the batch engine instead uses
/// the allocation-free joint-bucket-run kernel on prepared rankings
/// (core/prepared.h), and this explicit construction stays in-tree as the
/// independently-derived oracle the kernel is fuzzed against.
std::int64_t TwiceFHausdorff(const BucketOrder& sigma, const BucketOrder& tau);

/// FHaus as a double.
double FHausdorff(const BucketOrder& sigma, const BucketOrder& tau);

/// Brute-force Hausdorff oracles that enumerate every full refinement on
/// both sides (exponential; small domains only, used to validate Theorem 5).
std::int64_t KHausdorffBrute(const BucketOrder& sigma, const BucketOrder& tau);
std::int64_t FHausdorffBrute(const BucketOrder& sigma, const BucketOrder& tau);

}  // namespace rankties

#endif  // RANKTIES_CORE_HAUSDORFF_H_
