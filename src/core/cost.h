#ifndef RANKTIES_CORE_COST_H_
#define RANKTIES_CORE_COST_H_

#include <cstdint>
#include <vector>

#include "core/metric_registry.h"
#include "rank/bucket_order.h"

namespace rankties {

/// The paper's aggregation objective (§6): sum over the inputs of the L1
/// distance between position vectors, i.e. sum_i Fprof(candidate, sigma_i).
/// Exact doubled value. O(m n).
std::int64_t TwiceTotalFprof(const BucketOrder& candidate,
                             const std::vector<BucketOrder>& inputs);

/// Sum over inputs of an arbitrary metric.
double TotalDistance(MetricKind kind, const BucketOrder& candidate,
                     const std::vector<BucketOrder>& inputs);

/// Sum over inputs of K^(p) (used by Kemeny-style objectives).
double TotalKendallP(const BucketOrder& candidate,
                     const std::vector<BucketOrder>& inputs, double p);

/// candidate_cost / optimal_cost, with 0/0 treated as ratio 1 (both optimal)
/// and x/0 for x > 0 as +infinity.
double ApproxRatio(double candidate_cost, double optimal_cost);

}  // namespace rankties

#endif  // RANKTIES_CORE_COST_H_
