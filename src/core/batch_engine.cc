#include "core/batch_engine.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace rankties {

namespace {

// Chunk size that keeps scheduling overhead below ~1/32 of each lane's
// share while still load-balancing metric evaluations of uneven cost.
std::size_t AutoGrain(std::size_t items) {
  const std::size_t lanes = ThreadPool::GlobalThreads();
  return std::max<std::size_t>(1, items / (32 * lanes));
}

// Per-shard wall time of the batch loops; together with the `items`
// attribute on the enclosing span this yields items/sec per stage.
obs::Histogram* ShardTimeHistogram() {
  static obs::Histogram* const histogram =
      obs::GetHistogram("batch.shard_ns");
  return histogram;
}

}  // namespace

std::vector<std::vector<double>> DistanceMatrix(
    MetricKind kind, const std::vector<BucketOrder>& lists) {
  const std::size_t m = lists.size();
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 0.0));
  if (m < 2) return matrix;

  // Upper-triangle pairs (i, j), i < j, flattened row-major: row i starts at
  // offset[i] and holds m-1-i pairs.
  std::vector<std::size_t> offset(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    offset[i + 1] = offset[i] + (m - 1 - i);
  }
  const std::size_t pairs = offset[m];
  obs::TraceSpan span("batch.distance_matrix");
  span.SetItems(static_cast<std::int64_t>(pairs));
  RANKTIES_OBS_COUNT("batch.metric_evals",
                     static_cast<std::int64_t>(pairs));
  ParallelFor(0, pairs, AutoGrain(pairs), [&](std::size_t lo, std::size_t hi) {
    obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
    // Locate the row of the first pair in the chunk, then walk forward.
    std::size_t i = static_cast<std::size_t>(
                        std::upper_bound(offset.begin(), offset.end(), lo) -
                        offset.begin()) -
                    1;
    for (std::size_t t = lo; t < hi; ++t) {
      while (t >= offset[i + 1]) ++i;
      const std::size_t j = i + 1 + (t - offset[i]);
      const double d = ComputeMetric(kind, lists[i], lists[j]);
      matrix[i][j] = d;
      matrix[j][i] = d;
    }
  });
  return matrix;
}

std::vector<double> DistancesToAll(MetricKind kind,
                                   const BucketOrder& candidate,
                                   const std::vector<BucketOrder>& lists) {
  std::vector<double> distances(lists.size(), 0.0);
  obs::TraceSpan span("batch.distances_to_all");
  span.SetItems(static_cast<std::int64_t>(lists.size()));
  RANKTIES_OBS_COUNT("batch.metric_evals",
                     static_cast<std::int64_t>(lists.size()));
  ParallelFor(0, lists.size(), AutoGrain(lists.size()),
              [&](std::size_t lo, std::size_t hi) {
                obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
                for (std::size_t j = lo; j < hi; ++j) {
                  distances[j] = ComputeMetric(kind, candidate, lists[j]);
                }
              });
  return distances;
}

double TotalDistanceParallel(MetricKind kind, const BucketOrder& candidate,
                             const std::vector<BucketOrder>& lists) {
  const std::vector<double> distances =
      DistancesToAll(kind, candidate, lists);
  double total = 0.0;
  for (const double d : distances) total += d;  // serial, index order
  return total;
}

StatusOr<BestCandidateResult> BestOfCandidates(
    MetricKind kind, const std::vector<BucketOrder>& candidates,
    const std::vector<BucketOrder>& lists) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate rankings");
  }
  if (lists.empty()) return Status::InvalidArgument("no input rankings");

  const std::size_t c = candidates.size();
  const std::size_t l = lists.size();
  // Flat candidate x list grid so parallelism scales with c*l even when one
  // side is small (one candidate, many lists — or the reverse).
  std::vector<double> grid(c * l, 0.0);
  obs::TraceSpan span("batch.best_of_candidates");
  span.SetItems(static_cast<std::int64_t>(c * l));
  RANKTIES_OBS_COUNT("batch.metric_evals", static_cast<std::int64_t>(c * l));
  ParallelFor(0, c * l, AutoGrain(c * l),
              [&](std::size_t lo, std::size_t hi) {
                obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
                for (std::size_t t = lo; t < hi; ++t) {
                  grid[t] = ComputeMetric(kind, candidates[t / l],
                                          lists[t % l]);
                }
              });

  BestCandidateResult best;
  best.totals.resize(c, 0.0);
  for (std::size_t ci = 0; ci < c; ++ci) {
    double total = 0.0;
    for (std::size_t j = 0; j < l; ++j) total += grid[ci * l + j];
    best.totals[ci] = total;
  }
  best.index = 0;
  best.total_cost = best.totals[0];
  for (std::size_t ci = 1; ci < c; ++ci) {
    if (best.totals[ci] < best.total_cost) {
      best.index = ci;
      best.total_cost = best.totals[ci];
    }
  }
  return best;
}

}  // namespace rankties
