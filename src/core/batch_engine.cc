#include "core/batch_engine.h"

#include <algorithm>

#include "core/prepared.h"
#include "obs/obs.h"
#include "util/checked_math.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace rankties {

namespace {

// Chunk size that keeps scheduling overhead below ~1/32 of each lane's
// share while still load-balancing metric evaluations of uneven cost.
std::size_t AutoGrain(std::size_t items) {
  const std::size_t lanes = ThreadPool::GlobalThreads();
  return std::max<std::size_t>(1, items / (32 * lanes));
}

// Per-shard wall time of the batch loops; together with the `items`
// attribute on the enclosing span this yields items/sec per stage.
obs::Histogram* ShardTimeHistogram() {
  static obs::Histogram* const histogram =
      obs::GetHistogram("batch.shard_ns");
  return histogram;
}

// Wall time of the prepare-once pass (all inputs of one batch call).
obs::Histogram* PrepareTimeHistogram() {
  static obs::Histogram* const histogram =
      obs::GetHistogram("batch.prepare_ns");
  return histogram;
}

// One scratch per pool thread, reused across tiles, batch calls, and metric
// kinds: after the first few evaluations grow it to the workload's
// high-water mark, every later kernel call is allocation-free.
PairScratch& ThreadScratch() {
  static thread_local PairScratch scratch;
  return scratch;
}

// Freezes every input once (O(m*n) total, parallel over inputs).
std::vector<PreparedRanking> PrepareAll(
    const std::vector<BucketOrder>& lists) {
  obs::ScopedHistogramTimer prepare_timer(PrepareTimeHistogram());
  std::vector<PreparedRanking> prepared(lists.size());
  ParallelFor(0, lists.size(), AutoGrain(lists.size()),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  prepared[i] = PreparedRanking(lists[i]);
                }
              });
  return prepared;
}

// One metric evaluation on prepared inputs; every kind — FHaus included,
// via the joint-bucket-run decomposition of Theorem 5 — runs on the frozen
// arrays and never touches the heap on a warm scratch. Argument order
// matches the legacy ComputeMetric call sites exactly, keeping results
// bit-identical by construction.
double EvalPrepared(MetricKind kind, const PreparedRanking& prepared_sigma,
                    const PreparedRanking& prepared_tau,
                    PairScratch& scratch) {
  switch (kind) {
    case MetricKind::kKprof:
      return Kprof(prepared_sigma, prepared_tau, scratch);
    case MetricKind::kFprof:
      return Fprof(prepared_sigma, prepared_tau);
    case MetricKind::kKHaus:
      return static_cast<double>(
          KHausdorff(prepared_sigma, prepared_tau, scratch));
    case MetricKind::kFHaus:
      return FHausdorff(prepared_sigma, prepared_tau, scratch);
  }
  return 0.0;  // unreachable; keeps -Wreturn-type quiet
}

// Tile edge for the triangular tiling of DistanceMatrix. A TxT tile reads
// at most 2T preparations, so T = 32 keeps the per-lane working set a few
// hundred KiB even at n ~ 10^4; shrink T while the tile count undercuts
// ~4 tiles per lane so small matrices still spread across the pool. Tile
// shape never affects values (each slot is computed independently), only
// locality and load balance.
std::size_t TileSizeFor(std::size_t m) {
  const std::size_t lanes = ThreadPool::GlobalThreads();
  std::size_t tile = 32;
  while (tile > 4) {
    const std::size_t rows = (m + tile - 1) / tile;
    // Tile count = (rows+1 choose 2), checked like every pair-count shape.
    if (CheckedChoose2(CheckedAdd(CheckedInt64(rows), 1)) >=
        CheckedInt64(4 * lanes)) {
      break;
    }
    tile /= 2;
  }
  return tile;
}

}  // namespace

std::vector<std::vector<double>> DistanceMatrix(
    MetricKind kind, const std::vector<BucketOrder>& lists) {
  const std::size_t m = lists.size();
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 0.0));
  if (m < 2) return matrix;

  const std::int64_t pairs = CheckedChoose2(CheckedInt64(m));
  obs::TraceSpan span("batch.distance_matrix");
  span.SetItems(pairs);
  RANKTIES_OBS_COUNT("batch.metric_evals", pairs);

  const std::vector<PreparedRanking> prepared = PrepareAll(lists);

  // Triangular tiles (a, b), a <= b, over tile rows of edge `tile`; tile
  // (a, a) covers its within-block upper triangle. Every upper-triangle
  // slot belongs to exactly one tile, so parallel writes never collide.
  const std::size_t tile = TileSizeFor(m);
  const std::size_t rows = (m + tile - 1) / tile;
  // Row-major offsets into the flattened tile list: row a holds rows - a
  // tiles (b = a .. rows-1).
  std::vector<std::size_t> tile_offset(rows + 1, 0);
  for (std::size_t a = 0; a < rows; ++a) {
    tile_offset[a + 1] = tile_offset[a] + (rows - a);
  }
  const std::size_t tiles = tile_offset[rows];
  RANKTIES_OBS_COUNT("batch.tiles", static_cast<std::int64_t>(tiles));

  ParallelFor(0, tiles, 1, [&](std::size_t lo, std::size_t hi) {
    obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
    PairScratch& scratch = ThreadScratch();
    // Locate the tile row of the first tile in the chunk, then walk.
    std::size_t a =
        static_cast<std::size_t>(std::upper_bound(tile_offset.begin(),
                                                  tile_offset.end(), lo) -
                                 tile_offset.begin()) -
        1;
    for (std::size_t t = lo; t < hi; ++t) {
      while (t >= tile_offset[a + 1]) ++a;
      // Tile-walk contracts: the offset table must land every flat tile id
      // inside tile row a, and the derived tile column must stay in range —
      // otherwise two lanes could write the same matrix slot.
      RANKTIES_DCHECK(a < rows && t >= tile_offset[a]);
      const std::size_t b = a + (t - tile_offset[a]);
      RANKTIES_DCHECK(b >= a && b < rows);
      const std::size_t i_end = std::min(a * tile + tile, m);
      const std::size_t j_begin = b * tile;
      const std::size_t j_end = std::min(j_begin + tile, m);
      RANKTIES_DCHECK(j_begin < m);
      for (std::size_t i = a * tile; i < i_end; ++i) {
        for (std::size_t j = std::max(j_begin, i + 1); j < j_end; ++j) {
          const double d =
              EvalPrepared(kind, prepared[i], prepared[j], scratch);
          matrix[i][j] = d;
          matrix[j][i] = d;
        }
      }
    }
  });
  return matrix;
}

std::vector<std::vector<double>> DistanceMatrixUnprepared(
    MetricKind kind, const std::vector<BucketOrder>& lists) {
  const std::size_t m = lists.size();
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 0.0));
  if (m < 2) return matrix;

  // Upper-triangle pairs (i, j), i < j, flattened row-major: row i starts at
  // offset[i] and holds m-1-i pairs.
  std::vector<std::size_t> offset(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    offset[i + 1] = offset[i] + (m - 1 - i);
  }
  const std::size_t pairs = offset[m];
  obs::TraceSpan span("batch.distance_matrix_unprepared");
  span.SetItems(static_cast<std::int64_t>(pairs));
  RANKTIES_OBS_COUNT("batch.metric_evals",
                     static_cast<std::int64_t>(pairs));
  ParallelFor(0, pairs, AutoGrain(pairs), [&](std::size_t lo, std::size_t hi) {
    obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
    // Locate the row of the first pair in the chunk, then walk forward.
    std::size_t i = static_cast<std::size_t>(
                        std::upper_bound(offset.begin(), offset.end(), lo) -
                        offset.begin()) -
                    1;
    for (std::size_t t = lo; t < hi; ++t) {
      while (t >= offset[i + 1]) ++i;
      const std::size_t j = i + 1 + (t - offset[i]);
      RANKTIES_DCHECK(i < j && j < m);
      const double d = ComputeMetric(kind, lists[i], lists[j]);
      matrix[i][j] = d;
      matrix[j][i] = d;
    }
  });
  return matrix;
}

std::vector<double> DistancesToAll(MetricKind kind,
                                   const BucketOrder& candidate,
                                   const std::vector<BucketOrder>& lists) {
  std::vector<double> distances(lists.size(), 0.0);
  if (lists.empty()) return distances;
  obs::TraceSpan span("batch.distances_to_all");
  span.SetItems(static_cast<std::int64_t>(lists.size()));
  RANKTIES_OBS_COUNT("batch.metric_evals",
                     static_cast<std::int64_t>(lists.size()));
  const PreparedRanking prepared_candidate(candidate);
  const std::vector<PreparedRanking> prepared = PrepareAll(lists);
  ParallelFor(0, lists.size(), AutoGrain(lists.size()),
              [&](std::size_t lo, std::size_t hi) {
                obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
                PairScratch& scratch = ThreadScratch();
                for (std::size_t j = lo; j < hi; ++j) {
                  distances[j] = EvalPrepared(kind, prepared_candidate,
                                              prepared[j], scratch);
                }
              });
  return distances;
}

double TotalDistanceParallel(MetricKind kind, const BucketOrder& candidate,
                             const std::vector<BucketOrder>& lists) {
  const std::vector<double> distances =
      DistancesToAll(kind, candidate, lists);
  double total = 0.0;
  for (const double d : distances) total += d;  // serial, index order
  return total;
}

StatusOr<BestCandidateResult> BestOfCandidates(
    MetricKind kind, const std::vector<BucketOrder>& candidates,
    const std::vector<BucketOrder>& lists) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate rankings");
  }
  if (lists.empty()) return Status::InvalidArgument("no input rankings");

  const std::size_t c = candidates.size();
  const std::size_t l = lists.size();
  // Flat candidate x list grid so parallelism scales with c*l even when one
  // side is small (one candidate, many lists — or the reverse).
  std::vector<double> grid(c * l, 0.0);
  obs::TraceSpan span("batch.best_of_candidates");
  span.SetItems(static_cast<std::int64_t>(c * l));
  RANKTIES_OBS_COUNT("batch.metric_evals", static_cast<std::int64_t>(c * l));
  const std::vector<PreparedRanking> prepared_candidates =
      PrepareAll(candidates);
  const std::vector<PreparedRanking> prepared_lists = PrepareAll(lists);
  ParallelFor(0, c * l, AutoGrain(c * l),
              [&](std::size_t lo, std::size_t hi) {
                obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
                PairScratch& scratch = ThreadScratch();
                for (std::size_t t = lo; t < hi; ++t) {
                  const std::size_t ci = t / l;
                  const std::size_t j = t % l;
                  grid[t] = EvalPrepared(kind, prepared_candidates[ci],
                                         prepared_lists[j], scratch);
                }
              });

  BestCandidateResult best;
  best.totals.resize(c, 0.0);
  for (std::size_t ci = 0; ci < c; ++ci) {
    double total = 0.0;
    for (std::size_t j = 0; j < l; ++j) total += grid[ci * l + j];
    best.totals[ci] = total;
  }
  best.index = 0;
  best.total_cost = best.totals[0];
  for (std::size_t ci = 1; ci < c; ++ci) {
    if (best.totals[ci] < best.total_cost) {
      best.index = ci;
      best.total_cost = best.totals[ci];
    }
  }
  return best;
}

}  // namespace rankties
