#include "core/batch_engine.h"

#include <algorithm>
#include <utility>

#include "core/hausdorff.h"
#include "core/prepared.h"
#include "core/profile_metrics.h"
#include "obs/obs.h"
#include "util/checked_math.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace rankties {

namespace {

// Chunk size that keeps scheduling overhead below ~1/32 of each lane's
// share while still load-balancing metric evaluations of uneven cost.
std::size_t AutoGrain(std::size_t items) {
  const std::size_t lanes = ThreadPool::GlobalThreads();
  return std::max<std::size_t>(1, items / (32 * lanes));
}

// Per-shard wall time of the batch loops; together with the `items`
// attribute on the enclosing span this yields items/sec per stage.
obs::Histogram* ShardTimeHistogram() {
  static obs::Histogram* const histogram =
      obs::GetHistogram("batch.shard_ns");
  return histogram;
}

// Wall time of the prepare-once pass (all inputs of one batch call).
obs::Histogram* PrepareTimeHistogram() {
  static obs::Histogram* const histogram =
      obs::GetHistogram("batch.prepare_ns");
  return histogram;
}

// One scratch per pool thread, reused across tiles, batch calls, and metric
// kinds: after the first few evaluations grow it to the workload's
// high-water mark, every later kernel call is allocation-free.
PairScratch& ThreadScratch() {
  static thread_local PairScratch scratch;
  return scratch;
}

// Freezes every input once (O(m*n) total, parallel over inputs).
std::vector<PreparedRanking> PrepareAll(
    const std::vector<BucketOrder>& lists) {
  obs::ScopedHistogramTimer prepare_timer(PrepareTimeHistogram());
  std::vector<PreparedRanking> prepared(lists.size());
  ParallelFor(0, lists.size(), AutoGrain(lists.size()),
              [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i) {
                  prepared[i] = PreparedRanking(lists[i]);
                }
              });
  return prepared;
}

// One metric evaluation on prepared inputs; every kind — FHaus included,
// via the joint-bucket-run decomposition of Theorem 5 — runs on the frozen
// arrays and never touches the heap on a warm scratch. Argument order
// matches the legacy ComputeMetric call sites exactly, keeping results
// bit-identical by construction.
double EvalPrepared(MetricKind kind, const PreparedRanking& prepared_sigma,
                    const PreparedRanking& prepared_tau,
                    PairScratch& scratch) {
  switch (kind) {
    case MetricKind::kKprof:
      return Kprof(prepared_sigma, prepared_tau, scratch);
    case MetricKind::kFprof:
      return Fprof(prepared_sigma, prepared_tau);
    case MetricKind::kKHaus:
      return static_cast<double>(
          KHausdorff(prepared_sigma, prepared_tau, scratch));
    case MetricKind::kFHaus:
      return FHausdorff(prepared_sigma, prepared_tau, scratch);
  }
  return 0.0;  // unreachable; keeps -Wreturn-type quiet
}

// Tile edge for the triangular tiling of DistanceMatrix. A TxT tile reads
// at most 2T preparations, so T = 32 keeps the per-lane working set a few
// hundred KiB even at n ~ 10^4; shrink T while the tile count undercuts
// ~4 tiles per lane so small matrices still spread across the pool. Tile
// shape never affects values (each slot is computed independently), only
// locality and load balance.
std::size_t TileSizeFor(std::size_t m) {
  const std::size_t lanes = ThreadPool::GlobalThreads();
  std::size_t tile = 32;
  while (tile > 4) {
    const std::size_t rows = (m + tile - 1) / tile;
    // Tile count = (rows+1 choose 2), checked like every pair-count shape.
    if (CheckedChoose2(CheckedAdd(CheckedInt64(rows), 1)) >=
        CheckedInt64(4 * lanes)) {
      break;
    }
    tile /= 2;
  }
  return tile;
}

}  // namespace

std::vector<std::vector<double>> DistanceMatrix(
    MetricKind kind, const std::vector<BucketOrder>& lists) {
  const std::size_t m = lists.size();
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 0.0));
  if (m < 2) return matrix;

  const std::int64_t pairs = CheckedChoose2(CheckedInt64(m));
  obs::TraceSpan span("batch.distance_matrix");
  span.SetItems(pairs);
  RANKTIES_OBS_COUNT("batch.metric_evals", pairs);

  const std::vector<PreparedRanking> prepared = PrepareAll(lists);

  // Triangular tiles (a, b), a <= b, over tile rows of edge `tile`; tile
  // (a, a) covers its within-block upper triangle. Every upper-triangle
  // slot belongs to exactly one tile, so parallel writes never collide.
  const std::size_t tile = TileSizeFor(m);
  const std::size_t rows = (m + tile - 1) / tile;
  // Row-major offsets into the flattened tile list: row a holds rows - a
  // tiles (b = a .. rows-1).
  std::vector<std::size_t> tile_offset(rows + 1, 0);
  for (std::size_t a = 0; a < rows; ++a) {
    tile_offset[a + 1] = tile_offset[a] + (rows - a);
  }
  const std::size_t tiles = tile_offset[rows];
  RANKTIES_OBS_COUNT("batch.tiles", static_cast<std::int64_t>(tiles));
  RANKTIES_FLIGHT(obs::FlightEventId::kBatchMatrix,
                  static_cast<std::int64_t>(m), pairs,
                  static_cast<std::int64_t>(tiles));

  ParallelFor(0, tiles, 1, [&](std::size_t lo, std::size_t hi) {
    obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
    PairScratch& scratch = ThreadScratch();
    // Locate the tile row of the first tile in the chunk, then walk.
    std::size_t a =
        static_cast<std::size_t>(std::upper_bound(tile_offset.begin(),
                                                  tile_offset.end(), lo) -
                                 tile_offset.begin()) -
        1;
    for (std::size_t t = lo; t < hi; ++t) {
      while (t >= tile_offset[a + 1]) ++a;
      // Tile-walk contracts: the offset table must land every flat tile id
      // inside tile row a, and the derived tile column must stay in range —
      // otherwise two lanes could write the same matrix slot.
      RANKTIES_DCHECK(a < rows && t >= tile_offset[a]);
      const std::size_t b = a + (t - tile_offset[a]);
      RANKTIES_DCHECK(b >= a && b < rows);
      const std::size_t i_end = std::min(a * tile + tile, m);
      const std::size_t j_begin = b * tile;
      const std::size_t j_end = std::min(j_begin + tile, m);
      RANKTIES_DCHECK(j_begin < m);
      for (std::size_t i = a * tile; i < i_end; ++i) {
        for (std::size_t j = std::max(j_begin, i + 1); j < j_end; ++j) {
          const double d =
              EvalPrepared(kind, prepared[i], prepared[j], scratch);
          matrix[i][j] = d;
          matrix[j][i] = d;
        }
      }
    }
  });
  return matrix;
}

std::vector<std::vector<double>> DistanceMatrixUnprepared(
    MetricKind kind, const std::vector<BucketOrder>& lists) {
  const std::size_t m = lists.size();
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 0.0));
  if (m < 2) return matrix;

  // Upper-triangle pairs (i, j), i < j, flattened row-major: row i starts at
  // offset[i] and holds m-1-i pairs.
  std::vector<std::size_t> offset(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    offset[i + 1] = offset[i] + (m - 1 - i);
  }
  const std::size_t pairs = offset[m];
  obs::TraceSpan span("batch.distance_matrix_unprepared");
  span.SetItems(static_cast<std::int64_t>(pairs));
  RANKTIES_OBS_COUNT("batch.metric_evals",
                     static_cast<std::int64_t>(pairs));
  ParallelFor(0, pairs, AutoGrain(pairs), [&](std::size_t lo, std::size_t hi) {
    obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
    // Locate the row of the first pair in the chunk, then walk forward.
    std::size_t i = static_cast<std::size_t>(
                        std::upper_bound(offset.begin(), offset.end(), lo) -
                        offset.begin()) -
                    1;
    for (std::size_t t = lo; t < hi; ++t) {
      while (t >= offset[i + 1]) ++i;
      const std::size_t j = i + 1 + (t - offset[i]);
      RANKTIES_DCHECK(i < j && j < m);
      const double d = ComputeMetric(kind, lists[i], lists[j]);
      matrix[i][j] = d;
      matrix[j][i] = d;
    }
  });
  return matrix;
}

std::vector<double> DistancesToAll(MetricKind kind,
                                   const BucketOrder& candidate,
                                   const std::vector<BucketOrder>& lists) {
  std::vector<double> distances(lists.size(), 0.0);
  if (lists.empty()) return distances;
  obs::TraceSpan span("batch.distances_to_all");
  span.SetItems(static_cast<std::int64_t>(lists.size()));
  RANKTIES_OBS_COUNT("batch.metric_evals",
                     static_cast<std::int64_t>(lists.size()));
  RANKTIES_FLIGHT(obs::FlightEventId::kBatchDistancesToAll,
                  static_cast<std::int64_t>(lists.size()));
  const PreparedRanking prepared_candidate(candidate);
  const std::vector<PreparedRanking> prepared = PrepareAll(lists);
  ParallelFor(0, lists.size(), AutoGrain(lists.size()),
              [&](std::size_t lo, std::size_t hi) {
                obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
                PairScratch& scratch = ThreadScratch();
                for (std::size_t j = lo; j < hi; ++j) {
                  distances[j] = EvalPrepared(kind, prepared_candidate,
                                              prepared[j], scratch);
                }
              });
  return distances;
}

double TotalDistanceParallel(MetricKind kind, const BucketOrder& candidate,
                             const std::vector<BucketOrder>& lists) {
  const std::vector<double> distances =
      DistancesToAll(kind, candidate, lists);
  double total = 0.0;
  for (const double d : distances) total += d;  // serial, index order
  return total;
}

StatusOr<BestCandidateResult> BestOfCandidates(
    MetricKind kind, const std::vector<BucketOrder>& candidates,
    const std::vector<BucketOrder>& lists) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidate rankings");
  }
  if (lists.empty()) return Status::InvalidArgument("no input rankings");

  const std::size_t c = candidates.size();
  const std::size_t l = lists.size();
  // Flat candidate x list grid so parallelism scales with c*l even when one
  // side is small (one candidate, many lists — or the reverse).
  std::vector<double> grid(c * l, 0.0);
  obs::TraceSpan span("batch.best_of_candidates");
  span.SetItems(static_cast<std::int64_t>(c * l));
  RANKTIES_OBS_COUNT("batch.metric_evals", static_cast<std::int64_t>(c * l));
  RANKTIES_FLIGHT(obs::FlightEventId::kBatchBestOf,
                  static_cast<std::int64_t>(c),
                  static_cast<std::int64_t>(l));
  const std::vector<PreparedRanking> prepared_candidates =
      PrepareAll(candidates);
  const std::vector<PreparedRanking> prepared_lists = PrepareAll(lists);
  ParallelFor(0, c * l, AutoGrain(c * l),
              [&](std::size_t lo, std::size_t hi) {
                obs::ScopedHistogramTimer shard_timer(ShardTimeHistogram());
                PairScratch& scratch = ThreadScratch();
                for (std::size_t t = lo; t < hi; ++t) {
                  const std::size_t ci = t / l;
                  const std::size_t j = t % l;
                  grid[t] = EvalPrepared(kind, prepared_candidates[ci],
                                         prepared_lists[j], scratch);
                }
              });

  BestCandidateResult best;
  best.totals.resize(c, 0.0);
  for (std::size_t ci = 0; ci < c; ++ci) {
    double total = 0.0;
    for (std::size_t j = 0; j < l; ++j) total += grid[ci * l + j];
    best.totals[ci] = total;
  }
  best.index = 0;
  best.total_cost = best.totals[0];
  for (std::size_t ci = 1; ci < c; ++ci) {
    if (best.totals[ci] < best.total_cost) {
      best.index = ci;
      best.total_cost = best.totals[ci];
    }
  }
  return best;
}

namespace {

// Relation of the moved element e to a fixed element x in one ranking:
// -1 when e's bucket precedes x's, 0 when tied, +1 when e's bucket follows.
// Pair classes are a pure function of (sigma_rel, tau_rel), so a move only
// re-classifies the pairs whose sigma_rel changed.
int RelOf(const std::vector<BucketIndex>& bucket_of, ElementId e,
          ElementId x) {
  const BucketIndex be = bucket_of[static_cast<std::size_t>(e)];
  const BucketIndex bx = bucket_of[static_cast<std::size_t>(x)];
  if (be < bx) return -1;
  if (be > bx) return 1;
  return 0;
}

// The PairCounts slot that a pair with relations (sigma_rel, tau_rel)
// belongs to, for the orientation where sigma is the first-listed ranking.
std::int64_t& ClassSlot(PairCounts& counts, int sigma_rel, int tau_rel) {
  if (sigma_rel == 0 && tau_rel == 0) return counts.tied_both;
  if (sigma_rel == 0) return counts.tied_sigma_only;
  if (tau_rel == 0) return counts.tied_tau_only;
  return sigma_rel == tau_rel ? counts.concordant : counts.discordant;
}

// Mirror of a stored classification: counts_[j][i] sees the same pairs with
// the roles of sigma and tau swapped, so only the one-sided tie classes
// trade places.
PairCounts Mirrored(const PairCounts& counts) {
  PairCounts mirror = counts;
  std::swap(mirror.tied_sigma_only, mirror.tied_tau_only);
  return mirror;
}

}  // namespace

StatusOr<IncrementalDistanceMatrix> IncrementalDistanceMatrix::Create(
    MetricKind kind, const std::vector<BucketOrder>& lists) {
  if (lists.empty()) {
    return Status::InvalidArgument(
        "IncrementalDistanceMatrix needs at least one list");
  }
  const std::size_t n = lists.front().n();
  for (const BucketOrder& order : lists) {
    if (order.n() != n) {
      return Status::InvalidArgument(
          "IncrementalDistanceMatrix needs equal universe sizes");
    }
  }
  std::vector<PreparedRanking> prepared;
  prepared.reserve(lists.size());
  for (const BucketOrder& order : lists) {
    prepared.emplace_back(order);
  }
  return IncrementalDistanceMatrix(kind, std::move(prepared));
}

IncrementalDistanceMatrix::IncrementalDistanceMatrix(
    MetricKind kind, std::vector<PreparedRanking> prepared)
    : kind_(kind), prepared_(std::move(prepared)) {
  const std::size_t m = prepared_.size();
  matrix_.assign(m, std::vector<double>(m, 0.0));
  if (UsesPairCounts()) {
    counts_.assign(m, std::vector<PairCounts>(m));
  }
  // Initial fill is serial: the engine's contract is serialized updates, so
  // construction follows the same single-writer discipline (and the upper
  // triangle is computed once and mirrored, like DistanceMatrix).
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      double value;
      if (UsesPairCounts()) {
        const PairCounts counts =
            ComputePairCounts(prepared_[i], prepared_[j], scratch_);
        counts_[i][j] = counts;
        counts_[j][i] = Mirrored(counts);
        value = ValueFromCounts(counts);
      } else {
        value = EvalPrepared(kind_, prepared_[i], prepared_[j], scratch_);
      }
      matrix_[i][j] = value;
      matrix_[j][i] = value;
    }
  }
}

bool IncrementalDistanceMatrix::UsesPairCounts() const {
  return kind_ == MetricKind::kKprof || kind_ == MetricKind::kKHaus;
}

double IncrementalDistanceMatrix::ValueFromCounts(
    const PairCounts& counts) const {
  // Same post-processing expressions as the legacy metrics (Kprof and
  // KHausdorff both reduce their exact integer counts this way), so the
  // delta-maintained values are bit-identical to a full recompute.
  if (kind_ == MetricKind::kKprof) {
    return static_cast<double>(TwiceKprofFromCounts(counts)) / 2.0;
  }
  RANKTIES_DCHECK(kind_ == MetricKind::kKHaus);
  return static_cast<double>(KHausdorffFromCounts(counts));
}

void IncrementalDistanceMatrix::RefreshRow(std::size_t list) {
  const std::size_t m = prepared_.size();
  for (std::size_t j = 0; j < m; ++j) {
    if (j == list) continue;
    double value;
    if (UsesPairCounts()) {
      const PairCounts counts =
          ComputePairCounts(prepared_[list], prepared_[j], scratch_);
      counts_[list][j] = counts;
      counts_[j][list] = Mirrored(counts);
      value = ValueFromCounts(counts);
    } else {
      value = EvalPrepared(kind_, prepared_[list], prepared_[j], scratch_);
    }
    matrix_[list][j] = value;
    matrix_[j][list] = value;
  }
  pairs_reevaluated_ += static_cast<std::int64_t>(m) - 1;
  RANKTIES_OBS_COUNT("incremental.rows_refreshed", 1);
  RANKTIES_OBS_COUNT("incremental.pairs_reevaluated",
                     static_cast<std::int64_t>(m) - 1);
}

void IncrementalDistanceMatrix::ApplyCountDeltas(
    std::size_t list, const std::vector<RelChange>& affected) {
  const std::size_t m = prepared_.size();
  std::int64_t cells_touched = 0;
  for (std::size_t j = 0; j < m; ++j) {
    if (j == list) continue;
    const std::vector<BucketIndex>& tau_of = prepared_[j].bucket_of();
    PairCounts& row_counts = counts_[list][j];
    PairCounts& mirror_counts = counts_[j][list];
    for (const RelChange& change : affected) {
      if (change.old_rel == change.new_rel) continue;
      const BucketIndex te = tau_of[static_cast<std::size_t>(change.e)];
      const BucketIndex tx = tau_of[static_cast<std::size_t>(change.x)];
      const int tau_rel = te < tx ? -1 : (te > tx ? 1 : 0);
      ClassSlot(row_counts, change.old_rel, tau_rel) -= 1;
      ClassSlot(row_counts, change.new_rel, tau_rel) += 1;
      // counts_[j][list] classifies with sigma = list j, whose relations
      // did not change — only the tau side (the mutated list) did.
      ClassSlot(mirror_counts, tau_rel, change.old_rel) -= 1;
      ClassSlot(mirror_counts, tau_rel, change.new_rel) += 1;
      ++cells_touched;
    }
    const double value = ValueFromCounts(row_counts);
    matrix_[list][j] = value;
    matrix_[j][list] = value;
  }
  pairs_reevaluated_ += static_cast<std::int64_t>(m) - 1;
  RANKTIES_OBS_COUNT("incremental.count_delta_cells", cells_touched);
  RANKTIES_OBS_COUNT("incremental.pairs_reevaluated",
                     static_cast<std::int64_t>(m) - 1);
}

Status IncrementalDistanceMatrix::MoveToBucket(std::size_t list, ElementId e,
                                               std::size_t target_bucket) {
  if (list >= prepared_.size()) {
    return Status::InvalidArgument("list index out of range");
  }
  PreparedRanking& ranking = prepared_[list];
  if (e < 0 || static_cast<std::size_t>(e) >= ranking.n()) {
    return Status::InvalidArgument("element out of range");
  }
  if (target_bucket >= ranking.num_buckets()) {
    return Status::InvalidArgument("target bucket out of range");
  }
  const std::size_t source = static_cast<std::size_t>(
      ranking.bucket_of()[static_cast<std::size_t>(e)]);
  // A no-op edit costs nothing on either maintenance path (the
  // pairs-reevaluated accounting would otherwise depend on the metric).
  if (source == target_bucket) return Status::Ok();
  if (!UsesPairCounts()) {
    Status moved = ranking.MoveToBucket(e, target_bucket);
    if (!moved.ok()) return moved;
    RefreshRow(list);
    RANKTIES_FLIGHT(obs::FlightEventId::kIncrementalMove,
                    static_cast<std::int64_t>(list),
                    static_cast<std::int64_t>(e),
                    static_cast<std::int64_t>(prepared_.size()) - 1);
    return Status::Ok();
  }
  // Snapshot the relations that can change — pairs (e, x) with x in the
  // bucket span [min(src, dst), max(src, dst)] — before the edit.
  const std::size_t lo = std::min(source, target_bucket);
  const std::size_t hi = std::max(source, target_bucket);
  CaptureAffected(ranking, e, lo, hi);
  Status moved = ranking.MoveToBucket(e, target_bucket);
  if (!moved.ok()) return moved;
  FinishAffected(ranking, e);
  ApplyCountDeltas(list, affected_scratch_);
  RANKTIES_FLIGHT(obs::FlightEventId::kIncrementalMove,
                  static_cast<std::int64_t>(list),
                  static_cast<std::int64_t>(e),
                  static_cast<std::int64_t>(prepared_.size()) - 1);
  return Status::Ok();
}

Status IncrementalDistanceMatrix::MoveToNewBucket(std::size_t list,
                                                  ElementId e,
                                                  std::size_t before_bucket) {
  if (list >= prepared_.size()) {
    return Status::InvalidArgument("list index out of range");
  }
  PreparedRanking& ranking = prepared_[list];
  if (e < 0 || static_cast<std::size_t>(e) >= ranking.n()) {
    return Status::InvalidArgument("element out of range");
  }
  if (before_bucket > ranking.num_buckets()) {
    return Status::InvalidArgument("insertion position out of range");
  }
  const std::size_t source = static_cast<std::size_t>(
      ranking.bucket_of()[static_cast<std::size_t>(e)]);
  const std::size_t source_size =
      ranking.bucket_offset()[source + 1] - ranking.bucket_offset()[source];
  // Already a singleton at this spot: no-op on either maintenance path.
  if (source_size == 1 &&
      (before_bucket == source || before_bucket == source + 1)) {
    return Status::Ok();
  }
  if (!UsesPairCounts()) {
    Status moved = ranking.MoveToNewBucket(e, before_bucket);
    if (!moved.ok()) return moved;
    RefreshRow(list);
    RANKTIES_FLIGHT(obs::FlightEventId::kIncrementalMove,
                    static_cast<std::int64_t>(list),
                    static_cast<std::int64_t>(e),
                    static_cast<std::int64_t>(prepared_.size()) - 1);
    return Status::Ok();
  }
  // Relations change only against elements e crosses: buckets [pos, src]
  // when moving ahead, (src, pos) when moving behind.
  const std::size_t lo = std::min(source, before_bucket);
  const std::size_t hi = before_bucket > source ? before_bucket - 1 : source;
  CaptureAffected(ranking, e, lo, hi);
  Status moved = ranking.MoveToNewBucket(e, before_bucket);
  if (!moved.ok()) return moved;
  FinishAffected(ranking, e);
  ApplyCountDeltas(list, affected_scratch_);
  RANKTIES_FLIGHT(obs::FlightEventId::kIncrementalMove,
                  static_cast<std::int64_t>(list),
                  static_cast<std::int64_t>(e),
                  static_cast<std::int64_t>(prepared_.size()) - 1);
  return Status::Ok();
}

void IncrementalDistanceMatrix::CaptureAffected(const PreparedRanking& ranking,
                                                ElementId e, std::size_t lo,
                                                std::size_t hi) {
  affected_scratch_.clear();
  const std::vector<ElementId>& by_bucket = ranking.by_bucket();
  const std::vector<std::size_t>& offset = ranking.bucket_offset();
  const std::vector<BucketIndex>& bucket_of = ranking.bucket_of();
  for (std::size_t slot = offset[lo]; slot < offset[hi + 1]; ++slot) {
    const ElementId x = by_bucket[slot];
    if (x == e) continue;
    affected_scratch_.push_back(
        RelChange{e, x, RelOf(bucket_of, e, x), 0});
  }
}

void IncrementalDistanceMatrix::FinishAffected(
    const PreparedRanking& ranking, ElementId e) {
  // Bucket indices may have shifted (a collapsed source bucket renumbers
  // the suffix) but shifts apply to both sides of every comparison, so the
  // post-edit bucket_of still yields the correct relation signs.
  const std::vector<BucketIndex>& bucket_of = ranking.bucket_of();
  for (RelChange& change : affected_scratch_) {
    change.new_rel = RelOf(bucket_of, e, change.x);
  }
}

Status IncrementalDistanceMatrix::ReplaceList(std::size_t list,
                                              const BucketOrder& order) {
  if (list >= prepared_.size()) {
    return Status::InvalidArgument("list index out of range");
  }
  if (order.n() != n()) {
    return Status::InvalidArgument(
        "ReplaceList needs the corpus universe size");
  }
  prepared_[list] = PreparedRanking(order);
  RefreshRow(list);
  RANKTIES_FLIGHT(obs::FlightEventId::kIncrementalReplace,
                  static_cast<std::int64_t>(list),
                  static_cast<std::int64_t>(prepared_.size()) - 1);
  return Status::Ok();
}

}  // namespace rankties
