#ifndef RANKTIES_CORE_BATCH_ENGINE_H_
#define RANKTIES_CORE_BATCH_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/metric_registry.h"
#include "core/pair_counts.h"
#include "core/prepared.h"
#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Batch metric evaluation over many rankings at once, parallelized on the
/// global ThreadPool (util/thread_pool.h).
///
/// Prepared engine: every batch entry point freezes its inputs once into
/// PreparedRankings (core/prepared.h) — O(m*n) total — and then runs the
/// zero-allocation prepared kernels with one reusable PairScratch per pool
/// thread, instead of paying the legacy per-pair hash-map/sort/Fenwick heap
/// traffic O(m^2) times. FHaus has no prepared form (its Theorem 5
/// refinement construction is inherently allocating) and falls back to the
/// legacy kernel per pair.
///
/// Determinism guarantee: every function here returns results bit-identical
/// to the corresponding serial ComputeMetric loop, for every thread count.
/// The prepared kernels are integer-exact and share their post-processing
/// with the legacy path, parallel tasks only compute independent
/// matrix/vector slots, and every floating-point reduction (totals, argmin)
/// runs serially in index order on the calling thread. Thread count and
/// tile shape therefore never change an answer — only how fast it arrives.

/// The m x m matrix D with D[i][j] = ComputeMetric(kind, lists[i],
/// lists[j]). Symmetric with a zero diagonal; each upper-triangle entry is
/// computed once and mirrored. Work is scheduled as cache-sized triangular
/// tiles over the prepared inputs, so a pool lane keeps a small working set
/// of preparations hot while the tile count still load-balances the pool.
std::vector<std::vector<double>> DistanceMatrix(
    MetricKind kind, const std::vector<BucketOrder>& lists);

/// The same matrix via the legacy per-pair ComputeMetric path (no
/// preparation, per-pair allocations). Kept callable as the differential
/// oracle for the prepared engine (tests/fuzz) and as the bench_pairwise
/// baseline. Same determinism guarantee.
std::vector<std::vector<double>> DistanceMatrixUnprepared(
    MetricKind kind, const std::vector<BucketOrder>& lists);

/// distances[j] = ComputeMetric(kind, candidate, lists[j]) — the inner loop
/// of Kemeny-score evaluation and median-rank validation, parallel over the
/// lists.
std::vector<double> DistancesToAll(MetricKind kind,
                                   const BucketOrder& candidate,
                                   const std::vector<BucketOrder>& lists);

/// Sum of DistancesToAll(kind, candidate, lists) accumulated serially in
/// index order — bit-identical to the serial TotalDistance loop.
double TotalDistanceParallel(MetricKind kind, const BucketOrder& candidate,
                             const std::vector<BucketOrder>& lists);

struct BestCandidateResult {
  std::size_t index = 0;        ///< argmin candidate (lowest index on ties)
  double total_cost = 0.0;      ///< its summed distance to all lists
  std::vector<double> totals;  ///< totals[c] = sum_j d(candidates[c], ...)
};

/// Evaluates every candidate's total distance to `lists` (parallel over the
/// candidate x list grid) and picks the minimizer, first index on ties.
/// Fails when either side is empty.
StatusOr<BestCandidateResult> BestOfCandidates(
    MetricKind kind, const std::vector<BucketOrder>& candidates,
    const std::vector<BucketOrder>& lists);

/// A live all-pairs distance matrix under continuous mutation (ROADMAP
/// item 4). Where DistanceMatrix answers one-shot batch queries, this
/// engine keeps the m x m matrix current while individual rankings mutate:
/// a single-item edit to list i re-evaluates only row/column i — and for
/// the pair-count metrics (Kprof, KHaus) not even that: the engine stores
/// the PairCounts of every pair and applies O(affected-range) count deltas
/// (only the joint-histogram cells involving the moved element change), so
/// a move costs O(sum of affected bucket sizes * m) instead of the full
/// O(m^2 * n log n) rebuild. Fprof/FHaus re-run their prepared kernels
/// over the mutated row (O(m * n)).
///
/// Determinism: every maintained value is bit-identical to a full
/// recompute of the mutated corpus — the count deltas are exact integer
/// updates funneled through the same FromCounts post-processing, and the
/// row refreshes run the same prepared kernels as DistanceMatrix. The
/// mutation-trace fuzz family asserts this after every edit step.
///
/// Not thread-safe: one engine per writer (updates are serial by design so
/// results cannot depend on interleaving).
class IncrementalDistanceMatrix {
 public:
  /// Builds the initial matrix (prepared kernels, serial). Fails when
  /// `lists` is empty or the universe sizes disagree.
  static StatusOr<IncrementalDistanceMatrix> Create(
      MetricKind kind, const std::vector<BucketOrder>& lists);

  IncrementalDistanceMatrix(IncrementalDistanceMatrix&&) noexcept = default;
  IncrementalDistanceMatrix& operator=(IncrementalDistanceMatrix&&) noexcept =
      default;

  [[nodiscard]] std::size_t num_lists() const { return prepared_.size(); }
  [[nodiscard]] std::size_t n() const {
    return prepared_.empty() ? 0 : prepared_.front().n();
  }
  [[nodiscard]] MetricKind kind() const { return kind_; }

  /// The current matrix; symmetric with a zero diagonal, always consistent
  /// with the current state of the lists.
  [[nodiscard]] const std::vector<std::vector<double>>& Matrix() const {
    return matrix_;
  }

  /// The live prepared form of list `i` (delta-maintained).
  [[nodiscard]] const PreparedRanking& List(std::size_t i) const {
    return prepared_[i];
  }

  /// Moves element `e` of list `list` into that list's existing bucket
  /// `target_bucket` and patches row/column `list`. Pair-count metrics pay
  /// O(affected * m); others O(m) kernel evaluations.
  [[nodiscard]] Status MoveToBucket(std::size_t list, ElementId e,
                                    std::size_t target_bucket);

  /// Moves element `e` of list `list` into a new singleton bucket before
  /// bucket `before_bucket` (see PreparedRanking::MoveToNewBucket).
  [[nodiscard]] Status MoveToNewBucket(std::size_t list, ElementId e,
                                       std::size_t before_bucket);

  /// Replaces list `list` wholesale (same universe size) and re-evaluates
  /// its row — the escape hatch for edits bigger than a single move.
  /// Domain-size changes (insert/erase) touch every list of the corpus and
  /// therefore every pair; rebuild via Create for those.
  [[nodiscard]] Status ReplaceList(std::size_t list,
                                   const BucketOrder& order);

  /// Pairs whose value was re-derived since construction — by count delta
  /// or kernel re-evaluation. The closed-loop bench reports this next to
  /// update throughput; full recompute would pay m*(m-1)/2 per edit.
  [[nodiscard]] std::int64_t pairs_reevaluated() const {
    return pairs_reevaluated_;
  }

 private:
  IncrementalDistanceMatrix(MetricKind kind,
                            std::vector<PreparedRanking> prepared);

  /// True when `kind_` derives from PairCounts and count-delta maintenance
  /// applies (Kprof, KHaus).
  [[nodiscard]] bool UsesPairCounts() const;

  /// Metric value of pair (i, j) from the stored counts (sigma = i side).
  [[nodiscard]] double ValueFromCounts(const PairCounts& counts) const;

  /// Re-evaluates row `list` with the prepared kernels (and refreshes the
  /// stored counts for the pair-count kinds).
  void RefreshRow(std::size_t list);

  /// Applies the relation changes of pairs (e, x) to row `list`'s stored
  /// counts and values. `affected` holds (e, x, old_rel, new_rel) with rel
  /// in {-1: e ahead of x, 0: tied, +1: e behind x}.
  struct RelChange {
    ElementId e;
    ElementId x;
    int old_rel;
    int new_rel;
  };
  void ApplyCountDeltas(std::size_t list,
                        const std::vector<RelChange>& affected);

  /// Records old_rel for every pair (e, x) with x in buckets [lo, hi] of
  /// `ranking` into affected_scratch_ (called before the edit)...
  void CaptureAffected(const PreparedRanking& ranking, ElementId e,
                       std::size_t lo, std::size_t hi);
  /// ...and fills in new_rel from the post-edit bucket assignment.
  void FinishAffected(const PreparedRanking& ranking, ElementId e);

  MetricKind kind_ = MetricKind::kKprof;
  std::vector<PreparedRanking> prepared_;
  std::vector<std::vector<double>> matrix_;
  /// counts_[i][j] classifies pairs with sigma = list i, tau = list j
  /// (mirror entries swap the one-sided tie counts). Only populated for
  /// the pair-count kinds.
  std::vector<std::vector<PairCounts>> counts_;
  PairScratch scratch_;
  std::vector<RelChange> affected_scratch_;
  std::int64_t pairs_reevaluated_ = 0;
};

}  // namespace rankties

#endif  // RANKTIES_CORE_BATCH_ENGINE_H_
