#ifndef RANKTIES_CORE_BATCH_ENGINE_H_
#define RANKTIES_CORE_BATCH_ENGINE_H_

#include <cstddef>
#include <vector>

#include "core/metric_registry.h"
#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Batch metric evaluation over many rankings at once, parallelized on the
/// global ThreadPool (util/thread_pool.h).
///
/// Prepared engine: every batch entry point freezes its inputs once into
/// PreparedRankings (core/prepared.h) — O(m*n) total — and then runs the
/// zero-allocation prepared kernels with one reusable PairScratch per pool
/// thread, instead of paying the legacy per-pair hash-map/sort/Fenwick heap
/// traffic O(m^2) times. FHaus has no prepared form (its Theorem 5
/// refinement construction is inherently allocating) and falls back to the
/// legacy kernel per pair.
///
/// Determinism guarantee: every function here returns results bit-identical
/// to the corresponding serial ComputeMetric loop, for every thread count.
/// The prepared kernels are integer-exact and share their post-processing
/// with the legacy path, parallel tasks only compute independent
/// matrix/vector slots, and every floating-point reduction (totals, argmin)
/// runs serially in index order on the calling thread. Thread count and
/// tile shape therefore never change an answer — only how fast it arrives.

/// The m x m matrix D with D[i][j] = ComputeMetric(kind, lists[i],
/// lists[j]). Symmetric with a zero diagonal; each upper-triangle entry is
/// computed once and mirrored. Work is scheduled as cache-sized triangular
/// tiles over the prepared inputs, so a pool lane keeps a small working set
/// of preparations hot while the tile count still load-balances the pool.
std::vector<std::vector<double>> DistanceMatrix(
    MetricKind kind, const std::vector<BucketOrder>& lists);

/// The same matrix via the legacy per-pair ComputeMetric path (no
/// preparation, per-pair allocations). Kept callable as the differential
/// oracle for the prepared engine (tests/fuzz) and as the bench_pairwise
/// baseline. Same determinism guarantee.
std::vector<std::vector<double>> DistanceMatrixUnprepared(
    MetricKind kind, const std::vector<BucketOrder>& lists);

/// distances[j] = ComputeMetric(kind, candidate, lists[j]) — the inner loop
/// of Kemeny-score evaluation and median-rank validation, parallel over the
/// lists.
std::vector<double> DistancesToAll(MetricKind kind,
                                   const BucketOrder& candidate,
                                   const std::vector<BucketOrder>& lists);

/// Sum of DistancesToAll(kind, candidate, lists) accumulated serially in
/// index order — bit-identical to the serial TotalDistance loop.
double TotalDistanceParallel(MetricKind kind, const BucketOrder& candidate,
                             const std::vector<BucketOrder>& lists);

struct BestCandidateResult {
  std::size_t index = 0;        ///< argmin candidate (lowest index on ties)
  double total_cost = 0.0;      ///< its summed distance to all lists
  std::vector<double> totals;  ///< totals[c] = sum_j d(candidates[c], ...)
};

/// Evaluates every candidate's total distance to `lists` (parallel over the
/// candidate x list grid) and picks the minimizer, first index on ties.
/// Fails when either side is empty.
StatusOr<BestCandidateResult> BestOfCandidates(
    MetricKind kind, const std::vector<BucketOrder>& candidates,
    const std::vector<BucketOrder>& lists);

}  // namespace rankties

#endif  // RANKTIES_CORE_BATCH_ENGINE_H_
