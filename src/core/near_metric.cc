#include "core/near_metric.h"

#include <algorithm>
#include <cmath>

namespace rankties {

namespace {
constexpr double kInfinitySentinel = 1e18;
}  // namespace

TriangleProbe ProbeTriangleInequality(const MetricFn& dist,
                                      const OrderSampler& sampler,
                                      std::int64_t trials, Rng& rng) {
  TriangleProbe probe;
  probe.trials = trials;
  for (std::int64_t t = 0; t < trials; ++t) {
    const BucketOrder x = sampler(rng);
    const BucketOrder y = sampler(rng);
    const BucketOrder z = sampler(rng);
    const double direct = dist(x, z);
    const double via = dist(x, y) + dist(y, z);
    double ratio;
    if (via > 0) {
      ratio = direct / via;
    } else {
      ratio = direct > 0 ? kInfinitySentinel : 0.0;
    }
    probe.worst_ratio = std::max(probe.worst_ratio, ratio);
    // Small epsilon guards float round-off in double-valued metrics.
    if (direct > via * (1.0 + 1e-12) + 1e-12) ++probe.violations;
  }
  return probe;
}

EquivalenceBand EstimateEquivalenceBand(const MetricFn& d1, const MetricFn& d2,
                                        const OrderSampler& sampler,
                                        std::int64_t trials, Rng& rng) {
  EquivalenceBand band;
  bool first = true;
  for (std::int64_t t = 0; t < trials; ++t) {
    const BucketOrder x = sampler(rng);
    const BucketOrder y = sampler(rng);
    const double a = d1(x, y);
    const double b = d2(x, y);
    if (a == 0 && b == 0) continue;
    if (a == 0 || b == 0) {
      ++band.zero_mismatches;
      continue;
    }
    const double ratio = a / b;
    if (first) {
      band.min_ratio = band.max_ratio = ratio;
      first = false;
    } else {
      band.min_ratio = std::min(band.min_ratio, ratio);
      band.max_ratio = std::max(band.max_ratio, ratio);
    }
    ++band.samples;
  }
  return band;
}

std::int64_t ProbeDistanceMeasureAxioms(const MetricFn& dist,
                                        const OrderSampler& sampler,
                                        std::int64_t trials, Rng& rng) {
  std::int64_t violations = 0;
  for (std::int64_t t = 0; t < trials; ++t) {
    const BucketOrder x = sampler(rng);
    const BucketOrder y = sampler(rng);
    if (dist(x, x) != 0) ++violations;                    // regularity (self)
    if (dist(x, y) != dist(y, x)) ++violations;           // symmetry
    if (!(x == y) && dist(x, y) == 0 && dist(y, x) == 0)  // regularity
      ++violations;
    if (dist(x, y) < 0) ++violations;  // nonnegativity
  }
  return violations;
}

}  // namespace rankties
