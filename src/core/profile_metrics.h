#ifndef RANKTIES_CORE_PROFILE_METRICS_H_
#define RANKTIES_CORE_PROFILE_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/pair_counts.h"
#include "rank/bucket_order.h"
#include "util/rng.h"

namespace rankties {

/// K^(p), the Kendall distance with penalty parameter p in [0,1] (paper
/// §3.1): discordant pairs cost 1, pairs tied in exactly one ranking cost p,
/// pairs tied in both cost 0. K^(p) is a metric for p in [1/2, 1], a near
/// metric for p in (0, 1/2), and not a distance measure at p = 0
/// (Proposition 13). O(n log n). Every metric entry point in this header
/// returns 0 on degenerate universes (n < 2): there are no pairs to count.
double KendallP(const BucketOrder& sigma, const BucketOrder& tau, double p);

/// K^(p) from precomputed pair counts; O(1).
double KendallPFromCounts(const PairCounts& counts, double p);

/// Kprof = K^(1/2) (paper §3.1). The exact doubled value
/// 2*Kprof = 2*discordant + tied_sigma_only + tied_tau_only is integral.
std::int64_t TwiceKprof(const BucketOrder& sigma, const BucketOrder& tau);

/// 2*Kprof from precomputed pair counts; O(1). Shared by the legacy path
/// above and the prepared kernels (core/prepared.h), so both paths are
/// bit-identical by construction.
std::int64_t TwiceKprofFromCounts(const PairCounts& counts);

/// Kprof as a double.
double Kprof(const BucketOrder& sigma, const BucketOrder& tau);

/// The explicit K-profile of a partial ranking (paper §3.1): the vector over
/// ordered pairs (i,j), i != j, with entry +1/4 if sigma(i) < sigma(j), 0 if
/// tied, -1/4 if sigma(i) > sigma(j). Returned as quartered integers (+1, 0,
/// -1) in row-major order over (i,j), skipping i == j.
///
/// WARNING — O(n^2) memory cliff: the dense profile holds n(n-1) bytes, so
/// n = 2^15 already materializes ~1 GiB and n = 2^16 over 4 GiB. Intended
/// for illustration and tests on small domains only; Kprof itself never
/// materializes this (it is O(1) post-processing on PairCounts).
std::vector<std::int8_t> KProfileQuarters(const BucketOrder& sigma);

/// L1 distance between two K-profiles, divided by 4 to match Kprof; exact
/// doubled value returned (2 * L1/4). Cross-check for TwiceKprof.
std::int64_t TwiceKprofFromProfiles(const std::vector<std::int8_t>& a,
                                    const std::vector<std::int8_t>& b);

/// The F-profile: the vector of doubled positions <2*sigma(i)> (paper §3.1).
std::vector<std::int64_t> FProfileTwice(const BucketOrder& sigma);

/// Kavg for top-k lists (paper A.3, from [10]): the average of K(s, t) over
/// all full refinements s of sigma and t of tau. Exponential-time reference
/// (enumeration); small domains only. The paper notes Kprof == Kavg for
/// top-k lists; tests verify this.
double KavgBrute(const BucketOrder& sigma, const BucketOrder& tau);

/// Kavg in closed form, O(n log n): a discordant pair contributes 1, a
/// pair tied in at least one input contributes 1/2 (independent uniform
/// tie-breaks agree half the time), concordant pairs 0. So
///     Kavg = D + (S + T + B) / 2,
/// which equals Kprof exactly when no pair is tied in *both* inputs —
/// explaining A.3's observation that Kavg is a distance measure on top-k
/// lists over active domains but not on general partial rankings.
double Kavg(const BucketOrder& sigma, const BucketOrder& tau);

/// Monte Carlo estimate of Kavg by sampling `samples` pairs of uniform
/// full refinements — usable when callers want the refinement-averaged
/// distance semantics on domains where enumeration is impossible; the
/// closed form above should be preferred whenever applicable (tests verify
/// the estimator converges to it).
double KavgSampled(const BucketOrder& sigma, const BucketOrder& tau,
                   int samples, Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_CORE_PROFILE_METRICS_H_
