#include "core/markov_chain.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rankties {

StatusOr<Permutation> Mc4Aggregate(const std::vector<BucketOrder>& inputs,
                                   const Mc4Options& options) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }

  // majority[a][b] = true if a strict majority of inputs rank b strictly
  // ahead of a (so the chain moves a -> b).
  const std::size_t m = inputs.size();
  std::vector<std::vector<bool>> moves(n, std::vector<bool>(n, false));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      std::size_t ahead = 0;
      for (const BucketOrder& input : inputs) {
        if (input.Ahead(static_cast<ElementId>(b), static_cast<ElementId>(a)))
          ++ahead;
      }
      moves[a][b] = 2 * ahead > m;
    }
  }

  // Power iteration on the row-stochastic transition matrix
  // P(a -> b) = 1/n if moves[a][b], P(a -> a) = 1 - outdeg/n, mixed with a
  // uniform teleport for ergodicity.
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  const double alpha = 1.0 - options.teleport;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(),
              options.teleport / static_cast<double>(n));
    for (std::size_t a = 0; a < n; ++a) {
      double stay = pi[a];
      const double share = pi[a] / static_cast<double>(n);
      for (std::size_t b = 0; b < n; ++b) {
        if (moves[a][b]) {
          next[b] += alpha * share;
          stay -= share;
        }
      }
      next[a] += alpha * stay;
    }
    double delta = 0.0;
    for (std::size_t a = 0; a < n; ++a) delta += std::abs(next[a] - pi[a]);
    pi.swap(next);
    if (delta < options.tolerance) break;
  }

  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return pi[static_cast<std::size_t>(a)] > pi[static_cast<std::size_t>(b)];
  });
  return Permutation::FromOrder(order);
}

}  // namespace rankties
