#ifndef RANKTIES_CORE_CORRELATION_H_
#define RANKTIES_CORE_CORRELATION_H_

#include "core/pair_counts.h"
#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Kendall's tau-b correlation coefficient (Kendall 1945 [16], the classical
/// tie-corrected variant):
///   tau_b = (C - D) / sqrt((C + D + S)(C + D + T))
/// in [-1, 1]. Fails (kUndefined) when either input is a single bucket
/// (denominator zero).
StatusOr<double> KendallTauB(const BucketOrder& sigma, const BucketOrder& tau);

/// Goodman & Kruskal's gamma [13]: (C - D) / (C + D). The paper's "related
/// work" notes its serious disadvantage: it is *not always defined* — when
/// every pair is tied in at least one ranking, C + D = 0 and gamma has no
/// value. That case is surfaced as StatusCode::kUndefined.
StatusOr<double> GoodmanKruskalGamma(const BucketOrder& sigma,
                                     const BucketOrder& tau);

/// A two-sided significance test for Kendall correlation under the null
/// hypothesis of independent rankings, using the normal approximation
///   z = 3 (C - D) / sqrt(n (n-1) (2n+5) / 2).
/// Ties are handled by using the observed C - D (they shrink |z|, making
/// the test conservative); exact tie-corrected variances exist but need
/// the full tie spectra. Fails (kUndefined) for n < 3.
struct SignificanceResult {
  double z = 0.0;        ///< standard-normal test statistic
  double p_value = 1.0;  ///< two-sided
};
StatusOr<SignificanceResult> KendallSignificance(const BucketOrder& sigma,
                                                 const BucketOrder& tau);

/// Spearman rank correlation (Pearson correlation of the position vectors,
/// using average positions for ties — the standard tie-corrected rho).
/// Fails (kUndefined) when either ranking has zero variance (single bucket).
StatusOr<double> SpearmanRho(const BucketOrder& sigma, const BucketOrder& tau);

}  // namespace rankties

#endif  // RANKTIES_CORE_CORRELATION_H_
