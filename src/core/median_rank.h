#ifndef RANKTIES_CORE_MEDIAN_RANK_H_
#define RANKTIES_CORE_MEDIAN_RANK_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// How to resolve the median of an even-length list (paper §6 defines
/// median(a_1..a_m) as the *set* {a_{m/2}, a_{m/2+1}, (a_{m/2}+a_{m/2+1})/2}
/// for even m; any choice is a valid median function and Lemma 8 holds for
/// each).
enum class MedianPolicy {
  kLower,    ///< a_{m/2}
  kUpper,    ///< a_{m/2+1}
  kAverage,  ///< (a_{m/2} + a_{m/2+1}) / 2
};

/// Exact median of `values` under `policy`, in quadrupled units: the inputs
/// are doubled positions (integers), the result is 4x the median position so
/// that the kAverage case stays integral. `values` is consumed (sorted).
std::int64_t MedianQuad(std::vector<std::int64_t> values, MedianPolicy policy);

/// The median rank scores f(e) for every element, in quadrupled-position
/// units (paper §6: f in median(sigma_1..sigma_m), per-element medians).
/// Fails unless all inputs share the same non-zero domain size.
StatusOr<std::vector<std::int64_t>> MedianRankScoresQuad(
    const std::vector<BucketOrder>& inputs, MedianPolicy policy);

/// The partial ranking f-bar induced by the median scores (elements with
/// equal medians tied) — the paper's "partial ranking associated with f".
StatusOr<BucketOrder> MedianInducedOrder(const std::vector<BucketOrder>& inputs,
                                         MedianPolicy policy);

/// Full-ranking median aggregation (Theorem 11): a refinement of the induced
/// partial ranking with remaining ties broken by ascending element id.
StatusOr<Permutation> MedianAggregateFull(
    const std::vector<BucketOrder>& inputs, MedianPolicy policy);

/// Top-k median aggregation (Theorem 9): the top-k list whose first k
/// objects are the k best elements of the median score, ordered by it, ties
/// broken by ascending element id. Guaranteed within factor 3 of the optimal
/// top-k list w.r.t. the sum-of-Fprof objective. Requires k <= n.
StatusOr<BucketOrder> MedianAggregateTopK(
    const std::vector<BucketOrder>& inputs, std::size_t k,
    MedianPolicy policy);

/// Sum of L1 distances from the quadrupled score vector `f_quad` to the
/// (quadrupled) position vectors of the inputs: 4 * sum_i L1(f, sigma_i).
/// This is the quantity Lemma 8 proves minimal for the median.
std::int64_t TotalL1ToInputsQuad(const std::vector<std::int64_t>& f_quad,
                                 const std::vector<BucketOrder>& inputs);

}  // namespace rankties

#endif  // RANKTIES_CORE_MEDIAN_RANK_H_
