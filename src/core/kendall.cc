#include "core/kendall.h"

#include <vector>

#include "util/checked_math.h"
#include "util/contracts.h"

namespace rankties {

namespace {

// Counts inversions in `values` by bottom-up merge sort; O(n log n).
std::int64_t CountInversions(std::vector<ElementId>& values) {
  const std::size_t n = values.size();
  std::vector<ElementId> buffer(n);
  std::int64_t inversions = 0;
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (values[i] <= values[j]) {
          buffer[k++] = values[i++];
        } else {
          inversions += static_cast<std::int64_t>(mid - i);
          buffer[k++] = values[j++];
        }
      }
      while (i < mid) buffer[k++] = values[i++];
      while (j < hi) buffer[k++] = values[j++];
      std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(lo),
                buffer.begin() + static_cast<std::ptrdiff_t>(hi),
                values.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  return inversions;
}

}  // namespace

std::int64_t KendallTau(const Permutation& sigma, const Permutation& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  // Walk sigma's order and collect tau ranks; inversions in that sequence
  // are exactly the discordant pairs.
  std::vector<ElementId> tau_ranks(n);
  for (std::size_t r = 0; r < n; ++r) {
    tau_ranks[r] = tau.Rank(sigma.At(static_cast<ElementId>(r)));
  }
  return CountInversions(tau_ranks);
}

std::int64_t KendallTauNaive(const Permutation& sigma, const Permutation& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  std::int64_t distance = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const ElementId a = static_cast<ElementId>(i);
      const ElementId b = static_cast<ElementId>(j);
      if (sigma.Ahead(a, b) != tau.Ahead(a, b)) ++distance;
    }
  }
  return distance;
}

std::int64_t MaxKendall(std::size_t n) {
  if (n < 2) return 0;
  // n(n-1)/2 silently wraps for n a little past 2^32; divide the even factor
  // by 2 first so the checked product only overflows when the result would.
  const std::int64_t v = CheckedInt64(n);
  return n % 2 == 0 ? CheckedMul(v / 2, v - 1) : CheckedMul(v, (v - 1) / 2);
}

double KendallTauNormalized(const Permutation& sigma, const Permutation& tau) {
  if (sigma.n() < 2) return 0.0;
  return static_cast<double>(KendallTau(sigma, tau)) /
         static_cast<double>(MaxKendall(sigma.n()));
}

}  // namespace rankties
