#include "core/refinement_extremes.h"

#include "core/footrule.h"
#include "core/kendall.h"
#include "rank/refinement.h"

namespace rankties {

Permutation NearestFullRefinement(const Permutation& sigma,
                                  const BucketOrder& tau) {
  return TauRefineFull(sigma, tau);
}

std::int64_t MinFootruleToRefinements(const Permutation& sigma,
                                      const BucketOrder& tau) {
  return Footrule(sigma, NearestFullRefinement(sigma, tau));
}

std::int64_t MinKendallToRefinements(const Permutation& sigma,
                                     const BucketOrder& tau) {
  return KendallTau(sigma, NearestFullRefinement(sigma, tau));
}

RefinementWitness OneSidedHausdorffWitness(const BucketOrder& sigma,
                                           const BucketOrder& tau) {
  // Lemma 4: the maximizing refinement of sigma is rho * tauR * sigma for
  // any full rho (identity here); Lemma 3: its closest tau-refinement is
  // then (rho * tauR * sigma) * tau = rho * sigma * tau (as in Theorem 5).
  const Permutation rho(sigma.n());
  const Permutation farthest =
      TauRefineFull(rho, TauRefine(tau.Reverse(), sigma));
  const Permutation nearest = NearestFullRefinement(farthest, tau);
  return RefinementWitness{farthest, nearest};
}

std::int64_t OneSidedFHausdorff(const BucketOrder& sigma,
                                const BucketOrder& tau) {
  const RefinementWitness witness = OneSidedHausdorffWitness(sigma, tau);
  return Footrule(witness.farthest_sigma, witness.nearest_tau);
}

std::int64_t OneSidedKHausdorff(const BucketOrder& sigma,
                                const BucketOrder& tau) {
  const RefinementWitness witness = OneSidedHausdorffWitness(sigma, tau);
  return KendallTau(witness.farthest_sigma, witness.nearest_tau);
}

}  // namespace rankties
