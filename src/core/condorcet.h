#ifndef RANKTIES_CORE_CONDORCET_H_
#define RANKTIES_CORE_CONDORCET_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"

namespace rankties {

/// Pairwise-majority machinery for partial-ranking electorates. The MC4
/// heuristic [8] and local Kemenization both act through this structure;
/// exposing it lets users inspect *why* an aggregate ordered a pair.

/// majority[a][b] = (#inputs with a strictly ahead of b)
///                - (#inputs with b strictly ahead of a).
/// Ties contribute to neither side. O(m n^2).
std::vector<std::vector<std::int32_t>> MajorityMargins(
    const std::vector<BucketOrder>& inputs);

/// A Condorcet winner: an element with positive majority margin against
/// every other element. Does not always exist (Condorcet paradox).
std::optional<ElementId> CondorcetWinner(
    const std::vector<BucketOrder>& inputs);

/// Counts the pairs (a, b) with a strictly positive margin for a where
/// `candidate` nevertheless ranks b strictly ahead of a — the candidate's
/// pairwise-majority violations. A locally Kemeny-optimal ranking has no
/// *adjacent* violations; zero total violations means the full majority
/// tournament is acyclic and the candidate extends it.
std::int64_t MajorityViolations(const Permutation& candidate,
                                const std::vector<BucketOrder>& inputs);

/// True if the majority tournament restricted to strict margins is acyclic
/// (a total "majority order" exists). O(n^2) after the margins.
bool MajorityTournamentAcyclic(const std::vector<BucketOrder>& inputs);

}  // namespace rankties

#endif  // RANKTIES_CORE_CONDORCET_H_
