#include "core/cost.h"

#include <limits>

#include "core/batch_engine.h"
#include "core/footrule.h"
#include "core/profile_metrics.h"

namespace rankties {

std::int64_t TwiceTotalFprof(const BucketOrder& candidate,
                             const std::vector<BucketOrder>& inputs) {
  std::int64_t total = 0;
  for (const BucketOrder& input : inputs) {
    total += TwiceFprof(candidate, input);
  }
  return total;
}

double TotalDistance(MetricKind kind, const BucketOrder& candidate,
                     const std::vector<BucketOrder>& inputs) {
  // Parallel over the inputs; the sum runs serially in index order, so the
  // result is bit-identical to the old serial accumulation.
  return TotalDistanceParallel(kind, candidate, inputs);
}

double TotalKendallP(const BucketOrder& candidate,
                     const std::vector<BucketOrder>& inputs, double p) {
  double total = 0.0;
  for (const BucketOrder& input : inputs) {
    total += KendallP(candidate, input, p);
  }
  return total;
}

double ApproxRatio(double candidate_cost, double optimal_cost) {
  if (optimal_cost == 0.0) {
    return candidate_cost == 0.0 ? 1.0
                                 : std::numeric_limits<double>::infinity();
  }
  return candidate_cost / optimal_cost;
}

}  // namespace rankties
