#include "core/footrule_matching.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "util/combinatorics.h"

namespace rankties {

StatusOr<AssignmentResult> MinCostAssignment(
    const std::vector<std::vector<std::int64_t>>& cost) {
  const std::size_t n = cost.size();
  if (n == 0) return Status::InvalidArgument("empty cost matrix");
  for (const auto& row : cost) {
    if (row.size() != n) {
      return Status::InvalidArgument("cost matrix must be square");
    }
  }
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // Jonker–Volgenant shortest augmenting path with potentials; 1-based
  // internal arrays, row 0 / column 0 are sentinels.
  std::vector<std::int64_t> u(n + 1, 0), v(n + 1, 0);
  std::vector<std::size_t> row_of_col(n + 1, 0);  // p[j]: row matched to col j
  std::vector<std::size_t> way(n + 1, 0);
  for (std::size_t r = 1; r <= n; ++r) {
    row_of_col[0] = r;
    std::size_t j0 = 0;
    std::vector<std::int64_t> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = row_of_col[j0];
      std::int64_t delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const std::int64_t cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[row_of_col[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (row_of_col[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      row_of_col[j0] = row_of_col[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.column_of_row.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    result.column_of_row[row_of_col[j] - 1] = j - 1;
  }
  for (std::size_t r = 0; r < n; ++r) {
    result.total_cost += cost[r][result.column_of_row[r]];
  }
  return result;
}

StatusOr<AssignmentResult> StructuredSlotAssignment(
    const std::vector<std::int64_t>& element_pos,
    const std::vector<std::int64_t>& slot_pos) {
  const std::size_t n = element_pos.size();
  if (n == 0) return Status::InvalidArgument("empty instance");
  if (slot_pos.size() != n) {
    return Status::InvalidArgument("element/slot counts differ");
  }
  for (std::size_t c = 1; c < n; ++c) {
    if (slot_pos[c] < slot_pos[c - 1]) {
      return Status::InvalidArgument(
          "slot positions not non-decreasing; use MinCostAssignment");
    }
  }
  // Exchange argument: crossing pairs (a <= a' matched to b' >= b matched
  // to a') never beat the uncrossed matching under |.|, so sorting elements
  // by position and pairing them with the already-sorted slots in order is
  // optimal. Ties broken by element id so the result is deterministic.
  std::vector<std::size_t> by_pos(n);
  std::iota(by_pos.begin(), by_pos.end(), 0);
  std::sort(by_pos.begin(), by_pos.end(),
            [&](std::size_t a, std::size_t b) {
              if (element_pos[a] != element_pos[b]) {
                return element_pos[a] < element_pos[b];
              }
              return a < b;
            });
  AssignmentResult result;
  result.column_of_row.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t e = by_pos[k];
    result.column_of_row[e] = k;
    result.total_cost += std::abs(element_pos[e] - slot_pos[k]);
  }
  return result;
}

namespace {

// The m == 1 fast path shared by FootruleOptimalOfType and
// FootruleOptimalFull: a single input makes every row cost
// |2 sigma(e) - slot position|, exactly the structured shape.
StatusOr<AssignmentResult> SingleInputAssignment(
    const BucketOrder& input, const std::vector<std::int64_t>& slot_pos) {
  const std::size_t n = input.n();
  std::vector<std::int64_t> element_pos(n);
  for (std::size_t e = 0; e < n; ++e) {
    element_pos[e] = input.TwicePosition(static_cast<ElementId>(e));
  }
  return StructuredSlotAssignment(element_pos, slot_pos);
}

}  // namespace

StatusOr<FootruleOptimalTypedResult> FootruleOptimalOfType(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::size_t>& alpha) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  std::size_t total = 0;
  for (std::size_t s : alpha) {
    if (s == 0) return Status::InvalidArgument("zero bucket size in type");
    total += s;
  }
  if (total != n) {
    return Status::InvalidArgument("type sizes do not sum to n");
  }

  // Column c is a slot of bucket slot_bucket[c] with doubled position
  // slot_twice_pos[c].
  std::vector<BucketIndex> slot_bucket(n);
  std::vector<std::int64_t> slot_twice_pos(n);
  {
    std::size_t c = 0;
    std::int64_t before = 0;
    for (std::size_t b = 0; b < alpha.size(); ++b) {
      const std::int64_t size = static_cast<std::int64_t>(alpha[b]);
      const std::int64_t twice_pos = 2 * before + size + 1;
      for (std::size_t i = 0; i < alpha[b]; ++i, ++c) {
        slot_bucket[c] = static_cast<BucketIndex>(b);
        slot_twice_pos[c] = twice_pos;
      }
      before += size;
    }
  }
  // Single input: the slot positions are non-decreasing by construction, so
  // the structured monotone solver replaces the O(n^3) Hungarian run. With
  // several inputs the row costs are sums of absolute deviations (not a
  // single |a - b|), so the general matcher remains the solver.
  StatusOr<AssignmentResult> assignment =
      inputs.size() == 1
          ? SingleInputAssignment(inputs.front(), slot_twice_pos)
          : Status::InvalidArgument("multi-input instance is unstructured");
  if (!assignment.ok()) {
    std::vector<std::vector<std::int64_t>> cost(
        n, std::vector<std::int64_t>(n, 0));
    for (const BucketOrder& input : inputs) {
      for (std::size_t e = 0; e < n; ++e) {
        const std::int64_t twice_pos =
            input.TwicePosition(static_cast<ElementId>(e));
        for (std::size_t c = 0; c < n; ++c) {
          cost[e][c] += std::abs(twice_pos - slot_twice_pos[c]);
        }
      }
    }
    assignment = MinCostAssignment(cost);
  }
  if (!assignment.ok()) return assignment.status();
  std::vector<BucketIndex> bucket_of(n);
  for (std::size_t e = 0; e < n; ++e) {
    bucket_of[e] = slot_bucket[assignment->column_of_row[e]];
  }
  StatusOr<BucketOrder> order = BucketOrder::FromBucketIndex(bucket_of);
  if (!order.ok()) return order.status();
  return FootruleOptimalTypedResult{std::move(order).value(),
                                    assignment->total_cost};
}

StatusOr<FootruleOptimalTypedResult> FootruleOptimalTopK(
    const std::vector<BucketOrder>& inputs, std::size_t k) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (k > n) return Status::InvalidArgument("k exceeds domain size");
  std::vector<std::size_t> alpha;
  if (k == n) {
    alpha.assign(n, 1);
  } else {
    alpha.assign(k, 1);
    alpha.push_back(n - k);
  }
  return FootruleOptimalOfType(inputs, alpha);
}

StatusOr<FootruleOptimalTypedResult> FprofOptimalPartial(
    const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (n > 16) {
    return Status::InvalidArgument(
        "type enumeration limited to n <= 16 (2^(n-1) assignment solves)");
  }
  StatusOr<FootruleOptimalTypedResult> best =
      Status::Internal("no type evaluated");
  Status failure = Status::Ok();
  ForEachComposition(n, [&](const std::vector<std::size_t>& alpha) {
    StatusOr<FootruleOptimalTypedResult> candidate =
        FootruleOptimalOfType(inputs, alpha);
    if (!candidate.ok()) {
      failure = candidate.status();
      return false;
    }
    if (!best.ok() ||
        candidate->twice_total_cost < best->twice_total_cost) {
      best = std::move(candidate);
    }
    return true;
  });
  if (!failure.ok()) return failure;
  return best;
}

StatusOr<FootruleOptimalResult> FootruleOptimalFull(
    const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  // Slot r (0-based) is rank r+1 with doubled position 2(r+1) — strictly
  // increasing, so single-input instances are structured.
  StatusOr<AssignmentResult> assignment =
      Status::InvalidArgument("multi-input instance is unstructured");
  if (inputs.size() == 1) {
    std::vector<std::int64_t> slot_pos(n);
    for (std::size_t r = 0; r < n; ++r) {
      slot_pos[r] = 2 * static_cast<std::int64_t>(r + 1);
    }
    assignment = SingleInputAssignment(inputs.front(), slot_pos);
  }
  if (!assignment.ok()) {
    // cost[e][r] = sum_i |2 sigma_i(e) - 2(r+1)|.
    std::vector<std::vector<std::int64_t>> cost(
        n, std::vector<std::int64_t>(n, 0));
    for (const BucketOrder& input : inputs) {
      for (std::size_t e = 0; e < n; ++e) {
        const std::int64_t twice_pos =
            input.TwicePosition(static_cast<ElementId>(e));
        for (std::size_t r = 0; r < n; ++r) {
          cost[e][r] +=
              std::abs(twice_pos - 2 * static_cast<std::int64_t>(r + 1));
        }
      }
    }
    assignment = MinCostAssignment(cost);
  }
  if (!assignment.ok()) return assignment.status();
  std::vector<ElementId> ranks(n);
  for (std::size_t e = 0; e < n; ++e) {
    ranks[e] = static_cast<ElementId>(assignment->column_of_row[e]);
  }
  StatusOr<Permutation> perm = Permutation::FromRanks(std::move(ranks));
  if (!perm.ok()) return perm.status();
  return FootruleOptimalResult{std::move(perm).value(),
                               assignment->total_cost};
}

}  // namespace rankties
