#include "core/footrule_matching.h"

#include <cstdlib>
#include <limits>

#include "util/combinatorics.h"

namespace rankties {

StatusOr<AssignmentResult> MinCostAssignment(
    const std::vector<std::vector<std::int64_t>>& cost) {
  const std::size_t n = cost.size();
  if (n == 0) return Status::InvalidArgument("empty cost matrix");
  for (const auto& row : cost) {
    if (row.size() != n) {
      return Status::InvalidArgument("cost matrix must be square");
    }
  }
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // Jonker–Volgenant shortest augmenting path with potentials; 1-based
  // internal arrays, row 0 / column 0 are sentinels.
  std::vector<std::int64_t> u(n + 1, 0), v(n + 1, 0);
  std::vector<std::size_t> row_of_col(n + 1, 0);  // p[j]: row matched to col j
  std::vector<std::size_t> way(n + 1, 0);
  for (std::size_t r = 1; r <= n; ++r) {
    row_of_col[0] = r;
    std::size_t j0 = 0;
    std::vector<std::int64_t> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = row_of_col[j0];
      std::int64_t delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const std::int64_t cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[row_of_col[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (row_of_col[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      row_of_col[j0] = row_of_col[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.column_of_row.assign(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    result.column_of_row[row_of_col[j] - 1] = j - 1;
  }
  for (std::size_t r = 0; r < n; ++r) {
    result.total_cost += cost[r][result.column_of_row[r]];
  }
  return result;
}

StatusOr<FootruleOptimalTypedResult> FootruleOptimalOfType(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::size_t>& alpha) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  std::size_t total = 0;
  for (std::size_t s : alpha) {
    if (s == 0) return Status::InvalidArgument("zero bucket size in type");
    total += s;
  }
  if (total != n) {
    return Status::InvalidArgument("type sizes do not sum to n");
  }

  // Column c is a slot of bucket slot_bucket[c] with doubled position
  // slot_twice_pos[c].
  std::vector<BucketIndex> slot_bucket(n);
  std::vector<std::int64_t> slot_twice_pos(n);
  {
    std::size_t c = 0;
    std::int64_t before = 0;
    for (std::size_t b = 0; b < alpha.size(); ++b) {
      const std::int64_t size = static_cast<std::int64_t>(alpha[b]);
      const std::int64_t twice_pos = 2 * before + size + 1;
      for (std::size_t i = 0; i < alpha[b]; ++i, ++c) {
        slot_bucket[c] = static_cast<BucketIndex>(b);
        slot_twice_pos[c] = twice_pos;
      }
      before += size;
    }
  }
  std::vector<std::vector<std::int64_t>> cost(n,
                                              std::vector<std::int64_t>(n, 0));
  for (const BucketOrder& input : inputs) {
    for (std::size_t e = 0; e < n; ++e) {
      const std::int64_t twice_pos =
          input.TwicePosition(static_cast<ElementId>(e));
      for (std::size_t c = 0; c < n; ++c) {
        cost[e][c] += std::abs(twice_pos - slot_twice_pos[c]);
      }
    }
  }
  StatusOr<AssignmentResult> assignment = MinCostAssignment(cost);
  if (!assignment.ok()) return assignment.status();
  std::vector<BucketIndex> bucket_of(n);
  for (std::size_t e = 0; e < n; ++e) {
    bucket_of[e] = slot_bucket[assignment->column_of_row[e]];
  }
  StatusOr<BucketOrder> order = BucketOrder::FromBucketIndex(bucket_of);
  if (!order.ok()) return order.status();
  return FootruleOptimalTypedResult{std::move(order).value(),
                                    assignment->total_cost};
}

StatusOr<FootruleOptimalTypedResult> FootruleOptimalTopK(
    const std::vector<BucketOrder>& inputs, std::size_t k) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (k > n) return Status::InvalidArgument("k exceeds domain size");
  std::vector<std::size_t> alpha;
  if (k == n) {
    alpha.assign(n, 1);
  } else {
    alpha.assign(k, 1);
    alpha.push_back(n - k);
  }
  return FootruleOptimalOfType(inputs, alpha);
}

StatusOr<FootruleOptimalTypedResult> FprofOptimalPartial(
    const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (n > 16) {
    return Status::InvalidArgument(
        "type enumeration limited to n <= 16 (2^(n-1) assignment solves)");
  }
  StatusOr<FootruleOptimalTypedResult> best =
      Status::Internal("no type evaluated");
  Status failure = Status::Ok();
  ForEachComposition(n, [&](const std::vector<std::size_t>& alpha) {
    StatusOr<FootruleOptimalTypedResult> candidate =
        FootruleOptimalOfType(inputs, alpha);
    if (!candidate.ok()) {
      failure = candidate.status();
      return false;
    }
    if (!best.ok() ||
        candidate->twice_total_cost < best->twice_total_cost) {
      best = std::move(candidate);
    }
    return true;
  });
  if (!failure.ok()) return failure;
  return best;
}

StatusOr<FootruleOptimalResult> FootruleOptimalFull(
    const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  // cost[e][r] = sum_i |2 sigma_i(e) - 2(r+1)|.
  std::vector<std::vector<std::int64_t>> cost(
      n, std::vector<std::int64_t>(n, 0));
  for (const BucketOrder& input : inputs) {
    for (std::size_t e = 0; e < n; ++e) {
      const std::int64_t twice_pos =
          input.TwicePosition(static_cast<ElementId>(e));
      for (std::size_t r = 0; r < n; ++r) {
        cost[e][r] +=
            std::abs(twice_pos - 2 * static_cast<std::int64_t>(r + 1));
      }
    }
  }
  StatusOr<AssignmentResult> assignment = MinCostAssignment(cost);
  if (!assignment.ok()) return assignment.status();
  std::vector<ElementId> ranks(n);
  for (std::size_t e = 0; e < n; ++e) {
    ranks[e] = static_cast<ElementId>(assignment->column_of_row[e]);
  }
  StatusOr<Permutation> perm = Permutation::FromRanks(std::move(ranks));
  if (!perm.ok()) return perm.status();
  return FootruleOptimalResult{std::move(perm).value(),
                               assignment->total_cost};
}

}  // namespace rankties
