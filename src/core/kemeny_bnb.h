#ifndef RANKTIES_CORE_KEMENY_BNB_H_
#define RANKTIES_CORE_KEMENY_BNB_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/rng.h"
#include "util/status.h"

namespace rankties {

/// Branch-and-bound exact Kemeny (full-ranking output, sum of K^(p)): fills
/// the ranking position by position, pruning a prefix when
///     cost(prefix) + sum over unplaced pairs of min(w[a][b], w[b][a])
/// cannot beat the incumbent (initialized from locally-Kemenized median).
/// No subset memoization, so memory is O(n^2); with the pairwise-min lower
/// bound, instances in the n = 20-35 range are routinely closed — beyond
/// the O(2^n) Held-Karp's reach. A node budget keeps worst cases bounded:
/// when it runs out the incumbent is returned with proven_optimal = false
/// (still a valid ranking, usually optimal in practice).
struct KemenyBnbResult {
  Permutation ranking;
  std::int64_t twice_cost = 0;   ///< doubled objective of `ranking`
  bool proven_optimal = false;
  std::int64_t nodes = 0;        ///< search nodes expanded
};

/// Fails on malformed inputs or p not a multiple of 1/2.
StatusOr<KemenyBnbResult> KemenyBranchAndBound(
    const std::vector<BucketOrder>& inputs, double p = 0.5,
    std::int64_t node_budget = 5'000'000);

/// The KwikSort pivot heuristic (Ailon–Charikar–Newman style, adapted to
/// the K^(p) pairwise costs): pick a random pivot, split the rest by which
/// side of the pivot is cheaper, recurse. Expected constant-factor quality
/// on majority tournaments; used here as a fast seed/baseline.
Permutation PivotAggregate(const std::vector<BucketOrder>& inputs, double p,
                           Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_CORE_KEMENY_BNB_H_
