#include "core/pair_counts.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "util/checked_math.h"
#include "util/contracts.h"
#include "util/fenwick.h"

namespace rankties {

PairCounts ComputePairCounts(const BucketOrder& sigma, const BucketOrder& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  PairCounts counts;
  if (n < 2) return counts;

  // --- Tie classes via bucket histograms. ---
  // tied_both: pairs sharing both a sigma bucket and a tau bucket. Group by
  // the joint key (sigma bucket, tau bucket).
  std::unordered_map<std::int64_t, std::int64_t> joint;
  joint.reserve(n);
  const std::int64_t tau_buckets = static_cast<std::int64_t>(tau.num_buckets());
  for (std::size_t e = 0; e < n; ++e) {
    const std::int64_t key =
        static_cast<std::int64_t>(sigma.BucketOf(static_cast<ElementId>(e))) *
            tau_buckets +
        tau.BucketOf(static_cast<ElementId>(e));
    ++joint[key];
  }
  for (const auto& [key, size] : joint) counts.tied_both += CheckedChoose2(size);

  std::int64_t tied_sigma_pairs = 0;  // pairs tied in sigma (incl. tied_both)
  for (std::size_t b = 0; b < sigma.num_buckets(); ++b) {
    tied_sigma_pairs +=
        CheckedChoose2(static_cast<std::int64_t>(sigma.bucket(b).size()));
  }
  std::int64_t tied_tau_pairs = 0;
  for (std::size_t b = 0; b < tau.num_buckets(); ++b) {
    tied_tau_pairs +=
        CheckedChoose2(static_cast<std::int64_t>(tau.bucket(b).size()));
  }
  counts.tied_sigma_only = tied_sigma_pairs - counts.tied_both;
  counts.tied_tau_only = tied_tau_pairs - counts.tied_both;

  // --- Discordant pairs via Fenwick inversion counting. ---
  // Process elements sigma-bucket by sigma-bucket (ascending). For each new
  // element with tau-bucket t, elements already inserted come from strictly
  // earlier sigma buckets; those with tau-bucket > t form discordant pairs.
  // Elements of the same sigma bucket are queried before any of them is
  // inserted, so sigma-ties never count.
  std::vector<ElementId> elems(n);
  std::iota(elems.begin(), elems.end(), 0);
  std::sort(elems.begin(), elems.end(), [&](ElementId a, ElementId b) {
    return sigma.BucketOf(a) < sigma.BucketOf(b);
  });
  Fenwick<std::int64_t> seen(tau.num_buckets());
  std::size_t i = 0;
  std::int64_t inserted = 0;
  while (i < n) {
    std::size_t j = i;
    const BucketIndex sb = sigma.BucketOf(elems[i]);
    while (j < n && sigma.BucketOf(elems[j]) == sb) ++j;
    for (std::size_t k = i; k < j; ++k) {
      const std::size_t tb = static_cast<std::size_t>(tau.BucketOf(elems[k]));
      // inserted elements with tau bucket strictly greater than tb:
      counts.discordant += inserted - seen.PrefixSum(tb);
    }
    for (std::size_t k = i; k < j; ++k) {
      seen.Add(static_cast<std::size_t>(tau.BucketOf(elems[k])), 1);
      ++inserted;
    }
    i = j;
  }

  counts.concordant = CheckedChoose2(static_cast<std::int64_t>(n)) -
                      counts.discordant - counts.tied_sigma_only -
                      counts.tied_tau_only - counts.tied_both;
  return counts;
}

PairCounts ComputePairCountsNaive(const BucketOrder& sigma,
                                  const BucketOrder& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  PairCounts counts;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const ElementId a = static_cast<ElementId>(i);
      const ElementId b = static_cast<ElementId>(j);
      const bool tied_s = sigma.Tied(a, b);
      const bool tied_t = tau.Tied(a, b);
      if (tied_s && tied_t) {
        ++counts.tied_both;
      } else if (tied_s) {
        ++counts.tied_sigma_only;
      } else if (tied_t) {
        ++counts.tied_tau_only;
      } else if (sigma.Ahead(a, b) == tau.Ahead(a, b)) {
        ++counts.concordant;
      } else {
        ++counts.discordant;
      }
    }
  }
  return counts;
}

}  // namespace rankties
