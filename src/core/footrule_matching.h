#ifndef RANKTIES_CORE_FOOTRULE_MATCHING_H_
#define RANKTIES_CORE_FOOTRULE_MATCHING_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Solves the square min-cost assignment problem with the Hungarian
/// algorithm (Jonker–Volgenant style, O(n^3)). `cost[r][c]` is the cost of
/// assigning row r to column c. Returns for each row its assigned column.
/// Fails if the matrix is empty or not square.
struct AssignmentResult {
  std::vector<std::size_t> column_of_row;
  std::int64_t total_cost = 0;
};
StatusOr<AssignmentResult> MinCostAssignment(
    const std::vector<std::vector<std::int64_t>>& cost);

/// Structured solver for the footrule slot-assignment instances that arise
/// from refinement extremes and typed aggregation over a *single* input:
/// cost(e, c) = |element_pos[e] - slot_pos[c]| with slot_pos non-decreasing
/// (slots are bucket runs listed front bucket first, so each bucket
/// contributes a run of identical positions). By the L1 exchange argument
/// — for a <= a' and b <= b', |a-b| + |a'-b'| <= |a-b'| + |a'-b| — some
/// optimal assignment is monotone, so sorting the elements by position and
/// matching them to the slots in order is exact. O(n log n), versus the
/// O(n^3) general matcher; total cost equal to MinCostAssignment on the
/// induced matrix (the assignment itself may differ among equal-cost
/// optima; ties are broken by element id for determinism).
///
/// Fails (so callers can fall back to the general matcher) when the
/// instance is not structured: empty, size-mismatched, or slot positions
/// not non-decreasing.
StatusOr<AssignmentResult> StructuredSlotAssignment(
    const std::vector<std::int64_t>& element_pos,
    const std::vector<std::int64_t>& slot_pos);

/// The *exact* optimal full-ranking aggregation under the footrule objective
/// sum_i F(pi, sigma_i) (paper footnote 4): place element e at 1-based
/// position r with cost sum_i |2 sigma_i(e) - 2r| and solve the assignment
/// problem. This is the expensive exact baseline the median-rank algorithm
/// is compared against (Theorem 11 proves median is within factor 2 of it
/// for full-ranking inputs). O(n^3 + m n^2); single-input instances take
/// the StructuredSlotAssignment path in O(n log n).
struct FootruleOptimalResult {
  Permutation ranking;
  std::int64_t twice_total_cost = 0;  ///< 2 * sum_i Fprof(pi, sigma_i)
};
StatusOr<FootruleOptimalResult> FootruleOptimalFull(
    const std::vector<BucketOrder>& inputs);

/// The exact optimal aggregation *of a given type* under sum-of-Fprof: a
/// type-alpha bucket order has fixed bucket positions, so assigning
/// elements to position slots (bucket b contributing |b| identical slots)
/// is again a min-cost assignment. This is the exact yardstick behind
/// Corollary 30's factor-3 claim. O(n^3 + m n^2); single-input instances
/// take the StructuredSlotAssignment path in O(n log n).
struct FootruleOptimalTypedResult {
  BucketOrder order;
  std::int64_t twice_total_cost = 0;
};
StatusOr<FootruleOptimalTypedResult> FootruleOptimalOfType(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::size_t>& alpha);

/// The exact optimal top-k list under sum-of-Fprof (type 1,...,1,n-k) —
/// the true optimum Theorem 9's factor 3 is measured against, tractable
/// far beyond the exhaustive n <= 8 regime.
StatusOr<FootruleOptimalTypedResult> FootruleOptimalTopK(
    const std::vector<BucketOrder>& inputs, std::size_t k);

/// The exact optimal *partial ranking* (any type) under sum-of-Fprof, by
/// solving the assignment problem for every one of the 2^(n-1) types.
/// Exponential in n; guarded to n <= 16. The strongest possible yardstick
/// for Theorem 10's factor 2.
StatusOr<FootruleOptimalTypedResult> FprofOptimalPartial(
    const std::vector<BucketOrder>& inputs);

}  // namespace rankties

#endif  // RANKTIES_CORE_FOOTRULE_MATCHING_H_
