#ifndef RANKTIES_CORE_BORDA_H_
#define RANKTIES_CORE_BORDA_H_

#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Borda / average-rank aggregation: elements ordered by the mean of their
/// positions across the inputs (ties by ascending element id). The natural
/// baseline the paper contrasts with median rank — average rank is *not*
/// instance optimal in the sorted-access model and is sensitive to outliers
/// (§1). Exact integer arithmetic (sum of doubled positions).
/// Fails unless the inputs share a non-empty domain.
StatusOr<Permutation> BordaAggregateFull(
    const std::vector<BucketOrder>& inputs);

/// The induced partial ranking: elements with equal mean position tied.
StatusOr<BucketOrder> BordaInducedOrder(const std::vector<BucketOrder>& inputs);

}  // namespace rankties

#endif  // RANKTIES_CORE_BORDA_H_
