#ifndef RANKTIES_CORE_KENDALL_H_
#define RANKTIES_CORE_KENDALL_H_

#include <cstdint>

#include "rank/permutation.h"

namespace rankties {

/// Kendall tau distance between two full rankings (paper §2.2): the number
/// of pairs {i,j} ordered oppositely — equivalently the number of bubble-
/// sort exchanges turning one into the other. O(n log n) via merge-sort
/// inversion counting.
std::int64_t KendallTau(const Permutation& sigma, const Permutation& tau);

/// Reference O(n^2) implementation for cross-checks.
std::int64_t KendallTauNaive(const Permutation& sigma, const Permutation& tau);

/// Maximum possible Kendall distance on n elements: n(n-1)/2.
std::int64_t MaxKendall(std::size_t n);

/// Normalized Kendall distance in [0,1] (0 for n < 2).
double KendallTauNormalized(const Permutation& sigma, const Permutation& tau);

}  // namespace rankties

#endif  // RANKTIES_CORE_KENDALL_H_
