#ifndef RANKTIES_CORE_FOOTRULE_H_
#define RANKTIES_CORE_FOOTRULE_H_

#include <cstdint>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Spearman footrule distance between two full rankings (paper §2.2):
/// F(sigma, tau) = sum_i |sigma(i) - tau(i)| over 1-based ranks. Exact
/// integer. O(n).
std::int64_t Footrule(const Permutation& sigma, const Permutation& tau);

/// Maximum possible footrule distance on n elements: floor(n^2 / 2).
std::int64_t MaxFootrule(std::size_t n);

/// Fprof (paper §3.1): the L1 distance between the position vectors of two
/// partial rankings. Positions are half-integral, so the exact value is
/// returned doubled: TwiceFprof = sum_i |2 sigma(i) - 2 tau(i)|. O(n).
std::int64_t TwiceFprof(const BucketOrder& sigma, const BucketOrder& tau);

/// Fprof as a double (= TwiceFprof / 2).
double Fprof(const BucketOrder& sigma, const BucketOrder& tau);

/// The footrule distance with location parameter ell (paper A.3, from
/// Fagin–Kumar–Sivakumar [10]): both inputs must be top-k lists over the
/// same domain; every element below the top k is treated as if at position
/// ell, then L1 is taken. `twice_ell` passes 2*ell so that the half-integral
/// canonical choice ell = (|D|+k+1)/2 stays exact. Result is doubled.
/// Fails unless both inputs are top-k lists for the given k.
StatusOr<std::int64_t> TwiceFootruleLocation(const BucketOrder& sigma,
                                             const BucketOrder& tau,
                                             std::size_t k,
                                             std::int64_t twice_ell);

}  // namespace rankties

#endif  // RANKTIES_CORE_FOOTRULE_H_
