#include "core/local_kemenization.h"

#include "core/kemeny.h"

namespace rankties {

Permutation LocalKemenization(const Permutation& candidate,
                              const std::vector<BucketOrder>& inputs,
                              double p) {
  const std::size_t n = candidate.n();
  if (n < 2 || inputs.empty()) return candidate;
  const std::vector<std::vector<std::int64_t>> w =
      PairwisePreferenceCostsTwice(inputs, p);
  std::vector<ElementId> order = candidate.order();
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t r = 0; r + 1 < n; ++r) {
      const std::size_t a = static_cast<std::size_t>(order[r]);
      const std::size_t b = static_cast<std::size_t>(order[r + 1]);
      // Current cost of the adjacent pair is w[a][b] (a ahead); swapping
      // makes it w[b][a]; no other pair's relative order changes.
      if (w[b][a] < w[a][b]) {
        std::swap(order[r], order[r + 1]);
        improved = true;
      }
    }
  }
  StatusOr<Permutation> result = Permutation::FromOrder(order);
  return result.ok() ? std::move(result).value() : candidate;
}

}  // namespace rankties
