#ifndef RANKTIES_CORE_METRIC_REGISTRY_H_
#define RANKTIES_CORE_METRIC_REGISTRY_H_

#include <functional>
#include <string>
#include <vector>

#include "rank/bucket_order.h"

namespace rankties {

/// The four partial-ranking metrics of the paper (§3).
enum class MetricKind {
  kKprof,  ///< Kendall profile metric K^(1/2)          (§3.1)
  kFprof,  ///< Footrule profile metric (L1 positions)  (§3.1)
  kKHaus,  ///< Hausdorff-Kendall                       (§3.2)
  kFHaus,  ///< Hausdorff-footrule                      (§3.2)
};

/// All four kinds, in declaration order (handy for sweeps).
const std::vector<MetricKind>& AllMetricKinds();

/// Stable display name: "Kprof", "Fprof", "KHaus", "FHaus".
const char* MetricName(MetricKind kind);

/// Evaluates the metric. All four are exact; Kprof/Fprof may be
/// half-integral, so the result is a double.
double ComputeMetric(MetricKind kind, const BucketOrder& sigma,
                     const BucketOrder& tau);

/// A type-erased distance on partial rankings, for generic analyses.
using MetricFn =
    std::function<double(const BucketOrder&, const BucketOrder&)>;

/// The MetricFn computing `kind`.
MetricFn MetricFunction(MetricKind kind);

}  // namespace rankties

#endif  // RANKTIES_CORE_METRIC_REGISTRY_H_
