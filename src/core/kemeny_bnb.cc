#include "core/kemeny_bnb.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "core/kemeny.h"
#include "core/local_kemenization.h"
#include "core/median_rank.h"

namespace rankties {

namespace {

// Doubled objective of a full ranking under the pairwise costs.
std::int64_t FullCostTwice(const Permutation& ranking,
                           const std::vector<std::vector<std::int64_t>>& w2) {
  const std::size_t n = ranking.n();
  std::int64_t cost = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t a =
        static_cast<std::size_t>(ranking.At(static_cast<ElementId>(r)));
    for (std::size_t s = r + 1; s < n; ++s) {
      const std::size_t b =
          static_cast<std::size_t>(ranking.At(static_cast<ElementId>(s)));
      cost += w2[a][b];
    }
  }
  return cost;
}

struct BnbState {
  const std::vector<std::vector<std::int64_t>>* w2 = nullptr;
  std::size_t n = 0;
  std::int64_t best_cost = 0;
  std::vector<ElementId> best_order;
  std::vector<ElementId> prefix;
  std::vector<bool> placed;
  std::int64_t nodes = 0;
  std::int64_t node_budget = 0;
  bool budget_exhausted = false;

  // Places the next position. Invariants:
  //  * prefix_cost    = exact cost of pairs with both members placed;
  //  * cross          = exact (already decided) cost of placed x unplaced
  //                     pairs = sum over unplaced f of placed_cost_to[f];
  //  * remaining_lb   = sum over unplaced pairs of min(w2, w2^T), a lower
  //                     bound on their eventual cost.
  void Search(std::int64_t prefix_cost, std::int64_t cross,
              std::int64_t remaining_lb,
              // placed_cost_to[e]: sum over placed a of w2[a][e]
              std::vector<std::int64_t>& placed_cost_to) {
    if (budget_exhausted) return;
    if (++nodes > node_budget) {
      budget_exhausted = true;
      return;
    }
    if (prefix.size() == n) {
      if (prefix_cost < best_cost) {
        best_cost = prefix_cost;
        best_order = prefix;
      }
      return;
    }
    if (prefix_cost + cross + remaining_lb >= best_cost) return;  // prune

    // Candidate order: cheapest immediate contribution first (greedy
    // ordering tightens the incumbent early).
    std::vector<std::pair<std::int64_t, ElementId>> candidates;
    for (std::size_t e = 0; e < n; ++e) {
      if (!placed[e]) {
        candidates.emplace_back(placed_cost_to[e],
                                static_cast<ElementId>(e));
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (const auto& [cost_to_e, e] : candidates) {
      const std::size_t eu = static_cast<std::size_t>(e);
      // Removing e from the unplaced set: drop its min-pair terms from the
      // lower bound; e's decided edges to the remaining unplaced join the
      // cross term.
      std::int64_t lb_delta = 0;
      std::int64_t new_edges = 0;
      for (std::size_t f = 0; f < n; ++f) {
        if (!placed[f] && f != eu) {
          lb_delta += std::min((*w2)[eu][f], (*w2)[f][eu]);
          new_edges += (*w2)[eu][f];
        }
      }
      placed[eu] = true;
      prefix.push_back(e);
      for (std::size_t f = 0; f < n; ++f) {
        if (!placed[f]) placed_cost_to[f] += (*w2)[eu][f];
      }
      Search(prefix_cost + cost_to_e, cross - cost_to_e + new_edges,
             remaining_lb - lb_delta, placed_cost_to);
      for (std::size_t f = 0; f < n; ++f) {
        if (!placed[f]) placed_cost_to[f] -= (*w2)[eu][f];
      }
      prefix.pop_back();
      placed[eu] = false;
      if (budget_exhausted) return;
    }
  }
};

}  // namespace

StatusOr<KemenyBnbResult> KemenyBranchAndBound(
    const std::vector<BucketOrder>& inputs, double p,
    std::int64_t node_budget) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (std::abs(2.0 * p - std::llround(2.0 * p)) > 1e-12) {
    return Status::InvalidArgument("p must be a multiple of 1/2");
  }
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  const std::vector<std::vector<std::int64_t>> w2 =
      PairwisePreferenceCostsTwice(inputs, p);

  // Incumbent: locally Kemenized median (strong in practice).
  StatusOr<Permutation> seed =
      MedianAggregateFull(inputs, MedianPolicy::kLower);
  if (!seed.ok()) return seed.status();
  const Permutation incumbent = LocalKemenization(*seed, inputs, p);

  BnbState state;
  state.w2 = &w2;
  state.n = n;
  state.best_cost = FullCostTwice(incumbent, w2);
  state.best_order = incumbent.order();
  state.placed.assign(n, false);
  state.node_budget = node_budget;

  std::int64_t lb = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      lb += std::min(w2[a][b], w2[b][a]);
    }
  }
  std::vector<std::int64_t> placed_cost_to(n, 0);
  state.Search(0, 0, lb, placed_cost_to);

  StatusOr<Permutation> ranking = Permutation::FromOrder(state.best_order);
  if (!ranking.ok()) return ranking.status();
  return KemenyBnbResult{std::move(ranking).value(), state.best_cost,
                         !state.budget_exhausted, state.nodes};
}

Permutation PivotAggregate(const std::vector<BucketOrder>& inputs, double p,
                           Rng& rng) {
  const std::size_t n = inputs.empty() ? 0 : inputs.front().n();
  const std::vector<std::vector<std::int64_t>> w2 =
      PairwisePreferenceCostsTwice(inputs, p);
  std::vector<ElementId> elems(n);
  std::iota(elems.begin(), elems.end(), 0);
  std::vector<ElementId> out;
  out.reserve(n);
  // Explicit stack of ranges to sort (recursion without recursion).
  std::function<void(std::vector<ElementId>&)> quick =
      [&](std::vector<ElementId>& range) {
        if (range.empty()) return;
        const std::size_t pick = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(range.size()) - 1));
        const ElementId pivot = range[pick];
        std::vector<ElementId> before, after;
        for (ElementId e : range) {
          if (e == pivot) continue;
          const std::size_t eu = static_cast<std::size_t>(e);
          const std::size_t pu = static_cast<std::size_t>(pivot);
          if (w2[eu][pu] <= w2[pu][eu]) {
            before.push_back(e);  // cheaper to rank e ahead of the pivot
          } else {
            after.push_back(e);
          }
        }
        quick(before);
        out.push_back(pivot);
        quick(after);
      };
  // quick() appends `before` results before the pivot by recursing first.
  std::vector<ElementId> all = elems;
  quick(all);
  StatusOr<Permutation> result = Permutation::FromOrder(out);
  return result.ok() ? std::move(result).value() : Permutation(n);
}

}  // namespace rankties
