#include "core/borda.h"

#include <algorithm>
#include <numeric>

namespace rankties {

namespace {

StatusOr<std::vector<std::int64_t>> SumTwicePositions(
    const std::vector<BucketOrder>& inputs) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  std::vector<std::int64_t> sums(n, 0);
  for (const BucketOrder& input : inputs) {
    for (std::size_t e = 0; e < n; ++e) {
      sums[e] += input.TwicePosition(static_cast<ElementId>(e));
    }
  }
  return sums;
}

}  // namespace

StatusOr<Permutation> BordaAggregateFull(
    const std::vector<BucketOrder>& inputs) {
  StatusOr<std::vector<std::int64_t>> sums = SumTwicePositions(inputs);
  if (!sums.ok()) return sums.status();
  const std::size_t n = sums->size();
  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return (*sums)[static_cast<std::size_t>(a)] <
           (*sums)[static_cast<std::size_t>(b)];
  });
  return Permutation::FromOrder(order);
}

StatusOr<BucketOrder> BordaInducedOrder(
    const std::vector<BucketOrder>& inputs) {
  StatusOr<std::vector<std::int64_t>> sums = SumTwicePositions(inputs);
  if (!sums.ok()) return sums.status();
  return BucketOrder::FromIntKeys(*sums);
}

}  // namespace rankties
