#include "core/footrule.h"
#include "util/contracts.h"

#include <cstdlib>

namespace rankties {

std::int64_t Footrule(const Permutation& sigma, const Permutation& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  std::int64_t total = 0;
  for (std::size_t e = 0; e < sigma.n(); ++e) {
    total += std::abs(
        static_cast<std::int64_t>(sigma.Rank(static_cast<ElementId>(e))) -
        static_cast<std::int64_t>(tau.Rank(static_cast<ElementId>(e))));
  }
  return total;
}

std::int64_t MaxFootrule(std::size_t n) {
  return static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n) / 2;
}

std::int64_t TwiceFprof(const BucketOrder& sigma, const BucketOrder& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  std::int64_t total = 0;
  for (std::size_t e = 0; e < sigma.n(); ++e) {
    total += std::abs(sigma.TwicePosition(static_cast<ElementId>(e)) -
                      tau.TwicePosition(static_cast<ElementId>(e)));
  }
  return total;
}

double Fprof(const BucketOrder& sigma, const BucketOrder& tau) {
  return static_cast<double>(TwiceFprof(sigma, tau)) / 2.0;
}

StatusOr<std::int64_t> TwiceFootruleLocation(const BucketOrder& sigma,
                                             const BucketOrder& tau,
                                             std::size_t k,
                                             std::int64_t twice_ell) {
  if (sigma.n() != tau.n()) {
    return Status::InvalidArgument("domain size mismatch");
  }
  if (!sigma.IsTopK(k) || !tau.IsTopK(k)) {
    return Status::FailedPrecondition("inputs must be top-k lists");
  }
  if (twice_ell <= static_cast<std::int64_t>(2 * k)) {
    return Status::InvalidArgument("location parameter must exceed k");
  }
  std::int64_t total = 0;
  const std::int64_t threshold = static_cast<std::int64_t>(2 * k);
  for (std::size_t e = 0; e < sigma.n(); ++e) {
    const ElementId id = static_cast<ElementId>(e);
    const std::int64_t s = sigma.TwicePosition(id) <= threshold
                               ? sigma.TwicePosition(id)
                               : twice_ell;
    const std::int64_t t =
        tau.TwicePosition(id) <= threshold ? tau.TwicePosition(id) : twice_ell;
    total += std::abs(s - t);
  }
  return total;
}

}  // namespace rankties
