#include "core/kemeny.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/thread_pool.h"

namespace rankties {

namespace {

// Rows per ParallelFor chunk for the m*n-cost row loops below; aims for a
// few thousand pair evaluations per chunk so tiny instances stay inline.
std::size_t RowGrain(std::size_t n, std::size_t m) {
  return std::max<std::size_t>(1, 4096 / (n * m + 1));
}

}  // namespace

std::vector<std::vector<std::int64_t>> PairwisePreferenceCostsTwice(
    const std::vector<BucketOrder>& inputs, double p) {
  const std::size_t n = inputs.empty() ? 0 : inputs.front().n();
  std::vector<std::vector<std::int64_t>> w(n,
                                           std::vector<std::int64_t>(n, 0));
  // Parallel over rows a: each task owns w[a][*], so writes never collide,
  // and integer accumulation makes the result order-independent.
  ParallelFor(0, n, RowGrain(n, inputs.size()),
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t a = lo; a < hi; ++a) {
      const ElementId ea = static_cast<ElementId>(a);
      for (const BucketOrder& input : inputs) {
        // Hoist a's bucket out of the inner loop: the Ahead/Tied pair
        // collapses to one lookup and one three-way comparison per b.
        const BucketIndex ba = input.BucketOf(ea);
        for (std::size_t b = 0; b < n; ++b) {
          if (a == b) continue;
          const BucketIndex bb = input.BucketOf(static_cast<ElementId>(b));
          if (bb < ba) {
            w[a][b] += 2;  // ranking a ahead of b contradicts this input
          } else if (bb == ba) {
            w[a][b] += static_cast<std::int64_t>(std::llround(2.0 * p));
          }
        }
      }
    }
  });
  return w;
}

StatusOr<KemenyPartialResult> ExactKemenyPartial(
    const std::vector<BucketOrder>& inputs, double p) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (n > 13) {
    return Status::InvalidArgument(
        "exact partial Kemeny limited to n <= 13 (3^n subset pairs)");
  }
  if (std::abs(2.0 * p - std::llround(2.0 * p)) > 1e-12) {
    return Status::InvalidArgument(
        "exact Kemeny requires p to be a multiple of 1/2");
  }
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  const std::int64_t two_p = std::llround(2.0 * p);
  // w2[a][b]: doubled cost of ranking a strictly ahead of b.
  const std::vector<std::vector<std::int64_t>> w2 =
      PairwisePreferenceCostsTwice(inputs, p);
  // t2[a][b]: doubled cost of tying a and b = 2p per input strict on them.
  std::vector<std::vector<std::int64_t>> t2(n,
                                            std::vector<std::int64_t>(n, 0));
  ParallelFor(0, n, RowGrain(n, inputs.size()),
              [&](std::size_t lo, std::size_t hi) {
    for (std::size_t a = lo; a < hi; ++a) {
      const ElementId ea = static_cast<ElementId>(a);
      for (const BucketOrder& input : inputs) {
        const BucketIndex ba = input.BucketOf(ea);  // hoisted from inner loop
        for (std::size_t b = 0; b < n; ++b) {
          if (a != b && input.BucketOf(static_cast<ElementId>(b)) != ba) {
            t2[a][b] += two_p;
          }
        }
      }
    }
  });

  const std::size_t full = static_cast<std::size_t>(1) << n;
  // colsum[M * n + b] = sum over a in M of w2[a][b].
  std::vector<std::int64_t> colsum(full * n, 0);
  for (std::size_t mask = 1; mask < full; ++mask) {
    const std::size_t low = static_cast<std::size_t>(
        std::countr_zero(mask));
    const std::size_t prev = mask & (mask - 1);
    for (std::size_t b = 0; b < n; ++b) {
      colsum[mask * n + b] = colsum[prev * n + b] + w2[low][b];
    }
  }
  // tie_cost[B] = sum over unordered pairs within B of t2.
  std::vector<std::int64_t> tie_cost(full, 0);
  for (std::size_t mask = 1; mask < full; ++mask) {
    const std::size_t low = static_cast<std::size_t>(std::countr_zero(mask));
    const std::size_t prev = mask & (mask - 1);
    std::int64_t extra = 0;
    for (std::size_t a = 0; a < n; ++a) {
      if ((prev >> a) & 1) extra += t2[low][a];
    }
    tie_cost[mask] = tie_cost[prev] + extra;
  }

  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> dp(full, kInf);
  std::vector<std::uint32_t> parent(full, 0);
  dp[0] = 0;
  for (std::size_t mask = 1; mask < full; ++mask) {
    // Iterate nonempty submasks B of mask as the LAST bucket of `mask`.
    for (std::size_t b_mask = mask;; b_mask = (b_mask - 1) & mask) {
      if (b_mask == 0) break;
      const std::size_t rest = mask ^ b_mask;
      if (dp[rest] < kInf) {
        // Cross cost: every element of `rest` is ahead of every element of
        // B: sum over b in B of colsum[rest][b].
        std::int64_t cross = 0;
        std::size_t bits = b_mask;
        while (bits) {
          const std::size_t b = static_cast<std::size_t>(
              std::countr_zero(bits));
          cross += colsum[rest * n + b];
          bits &= bits - 1;
        }
        const std::int64_t candidate = dp[rest] + cross + tie_cost[b_mask];
        if (candidate < dp[mask]) {
          dp[mask] = candidate;
          parent[mask] = static_cast<std::uint32_t>(b_mask);
        }
      }
    }
  }

  // Reconstruct buckets back-to-front.
  std::vector<std::vector<ElementId>> buckets_reversed;
  std::size_t mask = full - 1;
  while (mask != 0) {
    const std::size_t b_mask = parent[mask];
    std::vector<ElementId> bucket;
    for (std::size_t e = 0; e < n; ++e) {
      if ((b_mask >> e) & 1) bucket.push_back(static_cast<ElementId>(e));
    }
    buckets_reversed.push_back(std::move(bucket));
    mask ^= b_mask;
  }
  std::vector<std::vector<ElementId>> buckets(buckets_reversed.rbegin(),
                                              buckets_reversed.rend());
  StatusOr<BucketOrder> order =
      BucketOrder::FromBuckets(n, std::move(buckets));
  if (!order.ok()) return order.status();
  KemenyPartialResult result{std::move(order).value(), 0.0, dp[full - 1]};
  result.total_cost = static_cast<double>(result.twice_cost) / 2.0;
  return result;
}

StatusOr<KemenyResult> ExactKemeny(const std::vector<BucketOrder>& inputs,
                                   double p) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  if (n > 18) {
    return Status::InvalidArgument("exact Kemeny limited to n <= 18");
  }
  if (std::abs(2.0 * p - std::llround(2.0 * p)) > 1e-12) {
    return Status::InvalidArgument(
        "exact Kemeny requires p to be a multiple of 1/2 for integral costs");
  }
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  const std::vector<std::vector<std::int64_t>> w =
      PairwisePreferenceCostsTwice(inputs, p);

  const std::size_t full = static_cast<std::size_t>(1) << n;
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
  std::vector<std::int64_t> dp(full, kInf);
  std::vector<std::int8_t> parent(full, -1);
  dp[0] = 0;
  for (std::size_t mask = 1; mask < full; ++mask) {
    for (std::size_t e = 0; e < n; ++e) {
      const std::size_t bit = static_cast<std::size_t>(1) << e;
      if (!(mask & bit)) continue;
      const std::size_t prev = mask ^ bit;
      if (dp[prev] >= kInf) continue;
      // e is placed last among `mask`: all other members of mask are ahead.
      std::int64_t extra = 0;
      for (std::size_t a = 0; a < n; ++a) {
        if ((prev >> a) & 1) extra += w[a][e];
      }
      const std::int64_t candidate = dp[prev] + extra;
      if (candidate < dp[mask]) {
        dp[mask] = candidate;
        parent[mask] = static_cast<std::int8_t>(e);
      }
    }
  }

  std::vector<ElementId> order(n);
  std::size_t mask = full - 1;
  for (std::size_t r = n; r > 0; --r) {
    const std::size_t e = static_cast<std::size_t>(parent[mask]);
    order[r - 1] = static_cast<ElementId>(e);
    mask ^= static_cast<std::size_t>(1) << e;
  }
  StatusOr<Permutation> perm = Permutation::FromOrder(order);
  if (!perm.ok()) return perm.status();

  KemenyResult result{std::move(perm).value(), 0.0, dp[full - 1]};
  result.total_cost = static_cast<double>(result.twice_cost) / 2.0;
  return result;
}

}  // namespace rankties
