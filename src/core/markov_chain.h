#ifndef RANKTIES_CORE_MARKOV_CHAIN_H_
#define RANKTIES_CORE_MARKOV_CHAIN_H_

#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Options for the MC4 Markov-chain aggregation heuristic of Dwork et al.
/// [8], extended to partial-ranking inputs: from state a, pick a uniformly
/// random element b; move to b if a strict majority of the inputs rank b
/// strictly ahead of a, else stay. Elements are ordered by descending
/// stationary probability (power iteration with uniform teleport).
///
/// This is one of the "more sophisticated heuristics" the paper notes is
/// *not* database-friendly (it needs the full pairwise majority matrix).
struct Mc4Options {
  double teleport = 0.05;   ///< uniform restart probability (ergodicity)
  int max_iterations = 200;
  double tolerance = 1e-10; ///< L1 convergence threshold
};

/// Runs MC4 and returns the aggregated full ranking (ties in stationary
/// probability broken by ascending element id).
/// Fails unless inputs share a non-empty domain.
StatusOr<Permutation> Mc4Aggregate(const std::vector<BucketOrder>& inputs,
                                   const Mc4Options& options = Mc4Options());

}  // namespace rankties

#endif  // RANKTIES_CORE_MARKOV_CHAIN_H_
