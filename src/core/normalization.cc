#include "core/normalization.h"

namespace rankties {

double MaxMetricValue(MetricKind kind, std::size_t n) {
  const double nn = static_cast<double>(n);
  switch (kind) {
    case MetricKind::kKprof:
    case MetricKind::kKHaus:
      return nn * (nn - 1) / 2.0;
    case MetricKind::kFprof:
    case MetricKind::kFHaus:
      return static_cast<double>((n * n) / 2);
  }
  return 0.0;
}

double NormalizedMetric(MetricKind kind, const BucketOrder& sigma,
                        const BucketOrder& tau) {
  if (sigma.n() < 2) return 0.0;
  return ComputeMetric(kind, sigma, tau) / MaxMetricValue(kind, sigma.n());
}

double MetricSimilarity(MetricKind kind, const BucketOrder& sigma,
                        const BucketOrder& tau) {
  return 1.0 - 2.0 * NormalizedMetric(kind, sigma, tau);
}

}  // namespace rankties
