#include "core/normalization.h"

#include "util/checked_math.h"

namespace rankties {

double MaxMetricValue(MetricKind kind, std::size_t n) {
  const std::int64_t n64 = CheckedInt64(n);
  switch (kind) {
    case MetricKind::kKprof:
    case MetricKind::kKHaus:
      return static_cast<double>(CheckedChoose2(n64));
    case MetricKind::kFprof:
    case MetricKind::kFHaus:
      return static_cast<double>(CheckedMul(n64, n64) / 2);
  }
  return 0.0;
}

double NormalizedMetric(MetricKind kind, const BucketOrder& sigma,
                        const BucketOrder& tau) {
  if (sigma.n() < 2) return 0.0;
  return ComputeMetric(kind, sigma, tau) / MaxMetricValue(kind, sigma.n());
}

double MetricSimilarity(MetricKind kind, const BucketOrder& sigma,
                        const BucketOrder& tau) {
  return 1.0 - 2.0 * NormalizedMetric(kind, sigma, tau);
}

}  // namespace rankties
