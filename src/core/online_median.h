#ifndef RANKTIES_CORE_ONLINE_MEDIAN_H_
#define RANKTIES_CORE_ONLINE_MEDIAN_H_

#include <cstdint>
#include <set>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Incremental median-rank aggregation: voters arrive one at a time (a
/// meta-search engine answering as upstream engines respond; a poll
/// updating as ballots arrive) and the aggregate is queryable at any
/// point. Voters can also *change their mind* (ROADMAP item 4): a live
/// corpus replaces or withdraws a ballot and the aggregate follows without
/// a batch recompute. Per element the doubled positions of the current
/// voters are kept in a two-multiset median structure (`low` = the
/// (m+1)/2 smallest values, so the lower median is `low`'s maximum), which
/// supports arbitrary erase — not just arrival-order insert — in
/// O(log m). Costs:
///   AddVoter      O(n log m),
///   UpdateVoter   O(changed elements * log m),
///   RemoveVoter   O(n log m),
///   CurrentTopK   O(n log n),
/// and every query agrees exactly with the batch MedianRankScoresQuad
/// (kLower) over the current voter set (fuzzed by the mutation-trace
/// family, tests/fuzz).
class OnlineMedianAggregator {
 public:
  /// Fixes the domain size up front.
  explicit OnlineMedianAggregator(std::size_t n);

  std::size_t n() const { return positions_.size(); }
  std::size_t num_voters() const { return num_voters_; }

  /// Adds one voter; its index is num_voters() before the call. Fails on
  /// domain-size mismatch.
  Status AddVoter(const BucketOrder& voter);

  /// Replaces voter `index`'s ballot. Only elements whose doubled position
  /// actually changed touch their median structure. Fails on a bad index
  /// or domain-size mismatch.
  Status UpdateVoter(std::size_t index, const BucketOrder& voter);

  /// Withdraws voter `index`'s ballot. The last voter takes over the
  /// vacated index (swap-with-last, like vector erase by swap), so caller
  /// bookkeeping must remap that one index. Fails on a bad index.
  Status RemoveVoter(std::size_t index);

  /// Quadrupled lower-median scores over the voters so far.
  /// Fails before the first voter.
  StatusOr<std::vector<std::int64_t>> ScoresQuad() const;

  /// Current best-first full ranking (median scores, ties by id).
  StatusOr<Permutation> CurrentFull() const;

  /// Current top-k list.
  StatusOr<BucketOrder> CurrentTopK(std::size_t k) const;

 private:
  // Per element: the multiset of current voters' doubled positions, split
  // so that `low` holds exactly the (m+1)/2 smallest values (lower-median
  // index, 1-based) and `high` the rest. The lower median is then
  // *low.rbegin(), and insert/erase of an arbitrary value plus a
  // rebalancing step are all O(log m) — the iterator-tracked single
  // multiset this replaces could only follow arrival-order inserts.
  struct ElementState {
    std::multiset<std::int64_t> low;
    std::multiset<std::int64_t> high;

    void Insert(std::int64_t value);
    void Erase(std::int64_t value);
    /// Restores |low| == target by shuttling boundary values.
    void Rebalance(std::size_t target);
    std::int64_t Median() const { return *low.rbegin(); }
  };
  std::vector<ElementState> positions_;
  /// voter_positions_[v][e] = doubled position of e in voter v's current
  /// ballot — the old values UpdateVoter/RemoveVoter must erase.
  std::vector<std::vector<std::int64_t>> voter_positions_;
  std::size_t num_voters_ = 0;
};

}  // namespace rankties

#endif  // RANKTIES_CORE_ONLINE_MEDIAN_H_
