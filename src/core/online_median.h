#ifndef RANKTIES_CORE_ONLINE_MEDIAN_H_
#define RANKTIES_CORE_ONLINE_MEDIAN_H_

#include <cstdint>
#include <set>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Incremental median-rank aggregation: voters arrive one at a time (a
/// meta-search engine answering as upstream engines respond; a poll
/// updating as ballots arrive) and the aggregate is queryable at any
/// point. Per element, the doubled positions seen so far are kept in an
/// order-statistics-friendly multiset, so
///   AddVoter      is O(n log m),
///   CurrentTopK   is O(n log n),
/// and both agree exactly with the batch MedianRankScoresQuad (kLower)
/// over the voters added so far (tested).
class OnlineMedianAggregator {
 public:
  /// Fixes the domain size up front.
  explicit OnlineMedianAggregator(std::size_t n);

  std::size_t n() const { return positions_.size(); }
  std::size_t num_voters() const { return num_voters_; }

  /// Adds one voter. Fails on domain-size mismatch.
  Status AddVoter(const BucketOrder& voter);

  /// Quadrupled lower-median scores over the voters so far.
  /// Fails before the first voter.
  StatusOr<std::vector<std::int64_t>> ScoresQuad() const;

  /// Current best-first full ranking (median scores, ties by id).
  StatusOr<Permutation> CurrentFull() const;

  /// Current top-k list.
  StatusOr<BucketOrder> CurrentTopK(std::size_t k) const;

 private:
  // Per element: multiset of doubled positions. The lower median is the
  // ((m+1)/2)-th smallest; tracked with an iterator that moves at most one
  // step per insertion.
  struct ElementState {
    std::multiset<std::int64_t> values;
    std::multiset<std::int64_t>::iterator median;  // valid once non-empty
  };
  std::vector<ElementState> positions_;
  std::size_t num_voters_ = 0;
};

}  // namespace rankties

#endif  // RANKTIES_CORE_ONLINE_MEDIAN_H_
