#ifndef RANKTIES_CORE_NEAR_METRIC_H_
#define RANKTIES_CORE_NEAR_METRIC_H_

#include <functional>
#include <vector>

#include "core/metric_registry.h"
#include "rank/bucket_order.h"
#include "util/rng.h"

namespace rankties {

/// Result of probing a distance measure for metric axioms over sampled
/// partial rankings (paper §2.1 and Proposition 13).
struct TriangleProbe {
  std::int64_t trials = 0;
  std::int64_t violations = 0;  ///< d(x,z) > d(x,y) + d(y,z) cases
  double worst_ratio = 0.0;  ///< max d(x,z) / (d(x,y)+d(y,z)) observed; a
                             ///< value <= 1 everywhere means no violation.
};

/// A sampler that produces a fresh random partial ranking each call.
using OrderSampler = std::function<BucketOrder(Rng&)>;

/// Probes the triangle inequality of `dist` on `trials` random triples drawn
/// from `sampler`. Degenerate triples (both summands zero with positive
/// direct distance) count as violations with worst_ratio infinity guarded to
/// a large finite sentinel.
TriangleProbe ProbeTriangleInequality(const MetricFn& dist,
                                      const OrderSampler& sampler,
                                      std::int64_t trials, Rng& rng);

/// Observed equivalence band between two distance measures (paper Def. 2):
/// the extreme ratios d1/d2 over sampled pairs with d2 > 0. For equivalent
/// measures the band stays inside [c1, c2] for constants independent of n.
struct EquivalenceBand {
  std::int64_t samples = 0;  ///< pairs with both distances positive
  double min_ratio = 0.0;
  double max_ratio = 0.0;
  std::int64_t zero_mismatches = 0;  ///< pairs where exactly one of d1,d2 is 0
};

/// Estimates the equivalence band of d1 vs d2 over `trials` sampled pairs.
EquivalenceBand EstimateEquivalenceBand(const MetricFn& d1, const MetricFn& d2,
                                        const OrderSampler& sampler,
                                        std::int64_t trials, Rng& rng);

/// Checks symmetry and regularity (d(x,y)=0 iff x==y) on sampled pairs;
/// returns the number of violations found.
std::int64_t ProbeDistanceMeasureAxioms(const MetricFn& dist,
                                        const OrderSampler& sampler,
                                        std::int64_t trials, Rng& rng);

}  // namespace rankties

#endif  // RANKTIES_CORE_NEAR_METRIC_H_
