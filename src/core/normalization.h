#ifndef RANKTIES_CORE_NORMALIZATION_H_
#define RANKTIES_CORE_NORMALIZATION_H_

#include <cstddef>

#include "core/metric_registry.h"
#include "rank/bucket_order.h"

namespace rankties {

/// The maximum value each metric attains over pairs of partial rankings on
/// an n-element domain. For every metric the maximum is achieved by a full
/// ranking and its reverse:
///  * Kprof / KHaus: n(n-1)/2 (every pair discordant; no tie pattern can
///    charge more than 1 per pair);
///  * Fprof / FHaus: floor(n^2/2) (the footrule maximum; ties only shrink
///    position spread).
double MaxMetricValue(MetricKind kind, std::size_t n);

/// ComputeMetric scaled into [0, 1]; 0 on domains of size < 2.
double NormalizedMetric(MetricKind kind, const BucketOrder& sigma,
                        const BucketOrder& tau);

/// A similarity coefficient in [-1, 1] analogous to a correlation:
/// 1 - 2 * normalized distance (1 = identical, -1 = maximally far).
double MetricSimilarity(MetricKind kind, const BucketOrder& sigma,
                        const BucketOrder& tau);

}  // namespace rankties

#endif  // RANKTIES_CORE_NORMALIZATION_H_
