#ifndef RANKTIES_CORE_OPTIMAL_BUCKETING_H_
#define RANKTIES_CORE_OPTIMAL_BUCKETING_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Algorithm choices for the optimal-bucketing dynamic program
/// (paper Appendix A.6.4).
enum class BucketingAlgorithm {
  /// Figure 1 of the paper: O(n^2) time, O(n) space, via the Lemma 37
  /// incremental cost recurrence with a monotone cursor. Requires 2f(i)
  /// integral for all i (quad scores even), which holds for kLower/kUpper
  /// medians and for kAverage with even parity.
  kLinearSpace,
  /// The paper's unrestricted variant: precomputes the full c(i,j) table by
  /// the diagonal recurrence c(i-1,j+1) = c(i,j) + |f(i)-M| + |f(j+1)-M|.
  /// O(n^2) time and space; works for any scores.
  kQuadraticSpace,
  /// Prefix-sum + binary-search evaluation of c(i,j): O(n^2 log n) time,
  /// O(n) space; works for any scores. Reference implementation.
  kPrefixSum,
  /// Picks kLinearSpace when the precondition holds, else kQuadraticSpace.
  kAuto,
};

/// Result of consolidating a score function into a partial ranking.
struct BucketingResult {
  /// f-dagger: the partial ranking minimizing L1(f-dagger, f) over all
  /// partial rankings (Theorem 10), as a bucket order on the original ids.
  BucketOrder order;
  /// The optimal cost in quadrupled units: 4 * L1(f-dagger, f).
  std::int64_t cost_quad = 0;
};

/// Computes f-dagger for the score function given by `quad_scores` (element
/// e has f(e) = quad_scores[e] / 4; use MedianRankScoresQuad to produce
/// them). Fails on empty input or, for kLinearSpace, when some quad score is
/// odd (2f not integral; the paper's Figure-1 precondition).
StatusOr<BucketingResult> OptimalBucketing(
    const std::vector<std::int64_t>& quad_scores,
    BucketingAlgorithm algorithm = BucketingAlgorithm::kAuto);

/// Exhaustive reference: tries every composition of n as the type of a
/// bucket order consistent with the sorted scores (optimal by the paper's
/// Lemma 27) and returns the best. O(2^(n-1)); small n only.
StatusOr<BucketingResult> OptimalBucketingBrute(
    const std::vector<std::int64_t>& quad_scores);

/// Cost (in quad units) of bucketing the elements, sorted ascending by
/// `quad_scores`, into consecutive blocks of the given sizes:
/// 4 * L1(order, f). Helper shared with tests/benches. Fails if sizes do
/// not sum to n.
StatusOr<std::int64_t> BucketingCostQuad(
    const std::vector<std::int64_t>& quad_scores,
    const std::vector<std::size_t>& sizes);

}  // namespace rankties

#endif  // RANKTIES_CORE_OPTIMAL_BUCKETING_H_
