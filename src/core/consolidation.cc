#include "core/consolidation.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "core/optimal_bucketing.h"

namespace rankties {

namespace {

Status ValidateType(const std::vector<std::size_t>& type, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t t : type) {
    if (t == 0) return Status::InvalidArgument("zero bucket size in type");
    total += t;
  }
  if (total != n) {
    return Status::InvalidArgument("type sizes do not sum to domain size");
  }
  return Status::Ok();
}

// Buckets `elems` (already in the desired order) into consecutive blocks of
// the given sizes.
BucketOrder BlocksOf(const std::vector<ElementId>& elems,
                     const std::vector<std::size_t>& type) {
  std::vector<BucketIndex> bucket_of(elems.size());
  std::size_t at = 0;
  for (std::size_t b = 0; b < type.size(); ++b) {
    for (std::size_t i = 0; i < type[b]; ++i, ++at) {
      bucket_of[static_cast<std::size_t>(elems[at])] =
          static_cast<BucketIndex>(b);
    }
  }
  StatusOr<BucketOrder> order = BucketOrder::FromBucketIndex(bucket_of);
  return std::move(order).value();
}

}  // namespace

StatusOr<ConsolidationResult> ConsolidateToType(
    const std::vector<std::int64_t>& quad_scores,
    const std::vector<std::size_t>& alpha) {
  const std::size_t n = quad_scores.size();
  if (n == 0) return Status::InvalidArgument("no scores");
  Status s = ValidateType(alpha, n);
  if (!s.ok()) return s;
  std::vector<ElementId> elems(n);
  std::iota(elems.begin(), elems.end(), 0);
  std::stable_sort(elems.begin(), elems.end(), [&](ElementId a, ElementId b) {
    return quad_scores[static_cast<std::size_t>(a)] <
           quad_scores[static_cast<std::size_t>(b)];
  });
  ConsolidationResult result{BlocksOf(elems, alpha), 0};
  for (ElementId e = 0; e < static_cast<ElementId>(n); ++e) {
    result.cost_quad +=
        std::abs(quad_scores[static_cast<std::size_t>(e)] -
                 2 * result.order.TwicePosition(e));
  }
  return result;
}

StatusOr<BucketOrder> ProjectConsistent(
    const std::vector<std::int64_t>& quad_scores, const BucketOrder& sigma,
    const std::vector<std::size_t>& beta) {
  const std::size_t n = quad_scores.size();
  if (sigma.n() != n) {
    return Status::InvalidArgument("domain size mismatch");
  }
  Status s = ValidateType(beta, n);
  if (!s.ok()) return s;
  std::vector<ElementId> elems(n);
  std::iota(elems.begin(), elems.end(), 0);
  // Lemma 34's rho: refine sigma's ties by the scores, remaining ties by
  // id; order-preserving beta blocks over rho are consistent with both.
  std::stable_sort(elems.begin(), elems.end(), [&](ElementId a, ElementId b) {
    if (sigma.BucketOf(a) != sigma.BucketOf(b)) {
      return sigma.BucketOf(a) < sigma.BucketOf(b);
    }
    return quad_scores[static_cast<std::size_t>(a)] <
           quad_scores[static_cast<std::size_t>(b)];
  });
  return BlocksOf(elems, beta);
}

StatusOr<StrongTopKResult> StrongMedianTopK(
    const std::vector<BucketOrder>& inputs, std::size_t k,
    MedianPolicy policy) {
  StatusOr<std::vector<std::int64_t>> scores =
      MedianRankScoresQuad(inputs, policy);
  if (!scores.ok()) return scores.status();
  const std::size_t n = scores->size();
  if (k > n) return Status::InvalidArgument("k exceeds domain size");
  StatusOr<BucketingResult> fdagger = OptimalBucketing(*scores);
  if (!fdagger.ok()) return fdagger.status();
  // sigma' = f-dagger itself: it lies in <f>_beta for beta = its own type
  // and is L1-optimal over all partial rankings (Theorem 10).
  const BucketOrder& certificate = fdagger->order;
  // The top-k projection: order by (certificate bucket, score, id), then
  // cut into the top-k type.
  std::vector<std::size_t> alpha;
  if (k == n) {
    alpha.assign(n, 1);
  } else {
    alpha.assign(k, 1);
    alpha.push_back(n - k);
  }
  StatusOr<BucketOrder> projected =
      ProjectConsistent(*scores, certificate, alpha);
  if (!projected.ok()) return projected.status();
  return StrongTopKResult{std::move(projected).value(), certificate};
}

}  // namespace rankties
