#include "core/outofcore.h"

#include <algorithm>
#include <utility>

#include "core/prepared.h"
#include "obs/obs.h"
#include "util/contracts.h"
#include "util/thread_pool.h"

namespace rankties {

namespace {

// One scratch per pool thread, mirroring batch_engine's ThreadScratch: the
// prepared kernels are zero-allocation on a warm scratch, and per-thread
// reuse keeps them warm across chunk pairs.
PairScratch& ThreadScratch() {
  static thread_local PairScratch scratch;
  return scratch;
}

// Same kind dispatch and argument order as batch_engine's EvalPrepared:
// sigma = global list i, tau = global list j with i < j. Matching the
// in-RAM call sites exactly is what makes the blocked matrix bit-identical.
double EvalPreparedPair(MetricKind kind, const PreparedRanking& sigma,
                        const PreparedRanking& tau, PairScratch& scratch) {
  switch (kind) {
    case MetricKind::kKprof:
      return Kprof(sigma, tau, scratch);
    case MetricKind::kFprof:
      return Fprof(sigma, tau);
    case MetricKind::kKHaus:
      return static_cast<double>(KHausdorff(sigma, tau, scratch));
    case MetricKind::kFHaus:
      return FHausdorff(sigma, tau, scratch);
  }
  return 0.0;  // unreachable; keeps -Wreturn-type quiet
}

std::vector<PreparedRanking> PrepareChunk(
    const std::vector<BucketOrder>& lists) {
  std::vector<PreparedRanking> prepared(lists.size());
  ParallelFor(0, lists.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      prepared[i] = PreparedRanking(lists[i]);
    }
  });
  return prepared;
}

}  // namespace

StatusOr<std::vector<std::int64_t>> StreamingMedianRankScoresQuad(
    store::CorpusReader& reader, MedianPolicy policy,
    const OutOfCoreOptions& options) {
  const std::size_t n = reader.n();
  const std::size_t m = static_cast<std::size_t>(reader.num_lists());
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("empty corpus");
  }
  obs::TraceSpan span("outofcore.median_scores");
  span.SetItems(static_cast<std::int64_t>(m) * static_cast<std::int64_t>(n));

  // Element-block size: the accumulation buffer holds one m-entry rank
  // column per active element, so a block of E elements costs E*m*8 bytes.
  const std::size_t block_elems = std::clamp<std::size_t>(
      options.memory_budget_bytes / (m * sizeof(std::int64_t)), 1, n);

  std::vector<std::int64_t> scores(n);
  std::vector<std::int64_t> ranks(block_elems * m);
  std::vector<BucketOrder> chunk;
  for (std::size_t e0 = 0; e0 < n; e0 += block_elems) {
    const std::size_t e1 = std::min(e0 + block_elems, n);
    RANKTIES_OBS_COUNT("outofcore.element_passes", 1);
    // One pass over the corpus: every chunk contributes its lists' doubled
    // positions for the active element block.
    for (std::size_t c = 0; c < reader.num_chunks(); ++c) {
      Status s = reader.ReadChunk(c, &chunk);
      if (!s.ok()) return s;
      RANKTIES_OBS_COUNT("outofcore.chunk_loads", 1);
      const std::size_t first =
          static_cast<std::size_t>(reader.chunk(c).first_list);
      for (std::size_t i = 0; i < chunk.size(); ++i) {
        const BucketOrder& order = chunk[i];
        for (std::size_t e = e0; e < e1; ++e) {
          ranks[(e - e0) * m + (first + i)] =
              order.TwicePosition(static_cast<ElementId>(e));
        }
      }
    }
    // The median of a multiset is accumulation-order-independent
    // (MedianQuad sorts), so chunk-at-a-time filling is bit-identical to
    // the in-RAM list-order loop.
    ParallelFor(e0, e1, 256, [&](std::size_t lo, std::size_t hi) {
      std::vector<std::int64_t> column(m);
      for (std::size_t e = lo; e < hi; ++e) {
        std::copy(ranks.begin() + static_cast<std::ptrdiff_t>((e - e0) * m),
                  ranks.begin() + static_cast<std::ptrdiff_t>((e - e0 + 1) * m),
                  column.begin());
        scores[e] = MedianQuad(column, policy);
      }
    });
  }
  return scores;
}

StatusOr<BucketOrder> StreamingMedianInducedOrder(
    store::CorpusReader& reader, MedianPolicy policy,
    const OutOfCoreOptions& options) {
  StatusOr<std::vector<std::int64_t>> scores =
      StreamingMedianRankScoresQuad(reader, policy, options);
  if (!scores.ok()) return scores.status();
  return BucketOrder::FromIntKeys(*scores);
}

StatusOr<std::vector<std::vector<double>>> OutOfCoreDistanceMatrix(
    MetricKind kind, store::CorpusReader& reader) {
  const std::size_t m = static_cast<std::size_t>(reader.num_lists());
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 0.0));
  if (m < 2) return matrix;
  obs::TraceSpan span("outofcore.distance_matrix");
  span.SetItems(static_cast<std::int64_t>(m) *
                static_cast<std::int64_t>(m - 1) / 2);

  const std::size_t chunks = reader.num_chunks();
  std::vector<BucketOrder> lists_a;
  std::vector<BucketOrder> lists_b;
  for (std::size_t a = 0; a < chunks; ++a) {
    Status s = reader.ReadChunk(a, &lists_a);
    if (!s.ok()) return s;
    RANKTIES_OBS_COUNT("outofcore.chunk_loads", 1);
    const std::size_t first_a =
        static_cast<std::size_t>(reader.chunk(a).first_list);
    const std::vector<PreparedRanking> prepared_a = PrepareChunk(lists_a);

    // Diagonal block: within-chunk upper triangle.
    ParallelFor(0, prepared_a.size(), 1, [&](std::size_t lo, std::size_t hi) {
      PairScratch& scratch = ThreadScratch();
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = i + 1; j < prepared_a.size(); ++j) {
          const double d =
              EvalPreparedPair(kind, prepared_a[i], prepared_a[j], scratch);
          matrix[first_a + i][first_a + j] = d;
          matrix[first_a + j][first_a + i] = d;
        }
      }
    });
    RANKTIES_OBS_COUNT(
        "outofcore.metric_evals",
        static_cast<std::int64_t>(prepared_a.size() *
                                  (prepared_a.size() - 1) / 2));

    // Cross blocks: chunk a stays prepared while b sweeps the tail.
    for (std::size_t b = a + 1; b < chunks; ++b) {
      s = reader.ReadChunk(b, &lists_b);
      if (!s.ok()) return s;
      RANKTIES_OBS_COUNT("outofcore.chunk_loads", 1);
      const std::size_t first_b =
          static_cast<std::size_t>(reader.chunk(b).first_list);
      const std::vector<PreparedRanking> prepared_b = PrepareChunk(lists_b);
      ParallelFor(
          0, prepared_a.size(), 1, [&](std::size_t lo, std::size_t hi) {
            PairScratch& scratch = ThreadScratch();
            for (std::size_t i = lo; i < hi; ++i) {
              for (std::size_t j = 0; j < prepared_b.size(); ++j) {
                // Global i < global j always holds across chunks a < b, so
                // sigma/tau order matches the in-RAM upper triangle.
                const double d = EvalPreparedPair(kind, prepared_a[i],
                                                  prepared_b[j], scratch);
                matrix[first_a + i][first_b + j] = d;
                matrix[first_b + j][first_a + i] = d;
              }
            }
          });
      RANKTIES_OBS_COUNT(
          "outofcore.metric_evals",
          static_cast<std::int64_t>(prepared_a.size() * prepared_b.size()));
    }
  }
  return matrix;
}

}  // namespace rankties
