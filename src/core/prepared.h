#ifndef RANKTIES_CORE_PREPARED_H_
#define RANKTIES_CORE_PREPARED_H_

#include <cstdint>
#include <vector>

#include "core/pair_counts.h"
#include "rank/bucket_order.h"
#include "rank/element.h"
#include "util/status.h"

namespace rankties {

/// The prepared-ranking layer: allocation-free Kendall-family kernels.
///
/// Every legacy ComputePairCounts call pays per-call heap traffic — an
/// unordered_map joint histogram, a freshly allocated element vector sorted
/// with a comparison lambda, and a new Fenwick tree — even though each
/// ranking's bucket structure never changes. All-pairs workloads
/// (DistanceMatrix, Kemeny score grids, MEDRANK validation) repeat that
/// cost O(m^2) times.
///
/// `PreparedRanking` freezes a BucketOrder once, in O(n), into dense flat
/// arrays; the kernels below then classify the pairs of two prepared
/// rankings using only a caller-owned `PairScratch`, performing **zero heap
/// allocations** once the scratch has grown to the workload's high-water
/// mark (asserted by tests/prepared_test.cc with an operator-new counting
/// hook). The kernels are bit-identical to the legacy BucketOrder paths:
/// both funnel through the same FromCounts post-processing
/// (TwiceKprofFromCounts, KHausdorffFromCounts, KendallPFromCounts) on
/// exact integer counts, and the fuzz harness cross-checks them
/// pair-for-pair across every adversarial family.

/// An O(n) freeze of a BucketOrder with O(affected-range) delta operations.
/// Snapshot semantics: the prepared form owns its arrays and stays valid
/// after the source BucketOrder is destroyed. A serving workload mutates a
/// frozen ranking in place (MoveToBucket / MoveToNewBucket / InsertItem /
/// EraseItem) instead of re-freezing from scratch; the delta paths maintain
/// every invariant of the freeze bit-exactly (DESIGN.md §8 spells out which
/// prefix of the flat arrays survives each edit), and the mutation-trace
/// fuzz family asserts array-level equality against a fresh freeze after
/// every step.
class PreparedRanking {
 public:
  /// An empty-domain prepared ranking (n = 0).
  PreparedRanking() = default;

  /// Freezes `order`: one pass over its buckets, no comparison sort.
  explicit PreparedRanking(const BucketOrder& order);

  /// Movable and copyable; moves are noexcept so containers of prepared
  /// rankings relocate instead of copying when they grow
  /// (clang-tidy performance-noexcept-move-constructor).
  PreparedRanking(const PreparedRanking&) = default;
  PreparedRanking& operator=(const PreparedRanking&) = default;
  PreparedRanking(PreparedRanking&&) noexcept = default;
  PreparedRanking& operator=(PreparedRanking&&) noexcept = default;
  ~PreparedRanking() = default;

  [[nodiscard]] std::size_t n() const { return bucket_of_.size(); }
  [[nodiscard]] std::size_t num_buckets() const {
    return bucket_offset_.size() - 1;
  }

  /// Number of unordered pairs tied in this ranking
  /// (sum over buckets of |B| choose 2), precomputed at freeze time.
  [[nodiscard]] std::int64_t tied_pairs() const { return tied_pairs_; }

  /// bucket_of()[e] = index of e's bucket (dense, element-indexed).
  const std::vector<BucketIndex>& bucket_of() const { return bucket_of_; }

  /// Elements counting-sorted by bucket, front bucket first — replaces the
  /// per-pair std::sort of the legacy engine.
  const std::vector<ElementId>& by_bucket() const { return by_bucket_; }

  /// bucket_offset()[b] .. bucket_offset()[b+1] delimit bucket b inside
  /// by_bucket(); size num_buckets()+1.
  const std::vector<std::size_t>& bucket_offset() const {
    return bucket_offset_;
  }

  /// twice_position()[e] = 2*sigma(e) (exact doubled position, paper §2) —
  /// the Fprof fast path reads the two flat vectors directly.
  const std::vector<std::int64_t>& twice_position() const {
    return twice_pos_;
  }

  /// --- Delta operations (ROADMAP item 4) -------------------------------
  ///
  /// Each edit re-freezes only the affected range of the flat arrays and
  /// leaves the result indistinguishable from `PreparedRanking(edited
  /// order)` — array-for-array, bit-for-bit (fuzzed by the mutation-trace
  /// family). Costs below are in touched array slots; `t` is the bucket
  /// count. Failed calls leave the ranking unchanged.

  /// Moves element `e` into the existing bucket `target_bucket` (current
  /// 0-based index). A no-op when `e` already lives there. If the source
  /// bucket empties it is removed and later buckets shift down one index
  /// (an O(suffix) reindex — the only case where a move touches slots
  /// outside [min(src, dst), max(src, dst)]). Cost: O(affected bucket
  /// range) otherwise.
  [[nodiscard]] Status MoveToBucket(ElementId e, std::size_t target_bucket);

  /// Moves element `e` into a new singleton bucket inserted immediately
  /// before the current bucket `before_bucket` (`before_bucket ==
  /// num_buckets()` appends a last bucket). A no-op when `e` is already a
  /// singleton at that spot. When the net bucket count changes (the source
  /// bucket survives), every later bucket shifts index: O(suffix) reindex;
  /// relocating a singleton bucket stays O(affected range).
  [[nodiscard]] Status MoveToNewBucket(ElementId e,
                                       std::size_t before_bucket);

  /// Grows the domain by one: the new element gets id n() and joins the
  /// existing bucket `bucket`. Positions of buckets >= `bucket` shift, so
  /// the cost is O(suffix after the bucket); the prefix survives intact.
  [[nodiscard]] Status InsertItem(std::size_t bucket);

  /// Shrinks the domain by one: removes element `e`; every element with id
  /// > e is renumbered down by one (the domain stays dense {0..n-2}).
  /// Renumbering forces a full O(n) pass — the one edit where no suffix of
  /// the element-indexed arrays survives — but still avoids the
  /// O(lists * n log n) downstream recompute the delta engines exist to
  /// kill. An emptied bucket is removed as in MoveToBucket.
  [[nodiscard]] Status EraseItem(ElementId e);

  /// Thaws the frozen arrays back into a BucketOrder (O(n)). Used by the
  /// differential harness to compare a delta-edited ranking against a
  /// from-scratch rebuild, and by callers that need to hand an edited
  /// ranking to a legacy BucketOrder API.
  [[nodiscard]] BucketOrder ToBucketOrder() const;

 private:
  /// Rewrites twice_pos_ for every element of buckets [lo, hi] from the
  /// identity 2*pos(B_b) = bucket_offset_[b] + bucket_offset_[b+1] + 1.
  void RecomputePositions(std::size_t lo, std::size_t hi);

  /// Removes the (empty) bucket `b`: erases its offset entry and shifts
  /// bucket_of_ down for every element of later buckets. O(suffix).
  void CollapseEmptyBucket(std::size_t b);

  /// Slot of `e` inside its bucket's by_bucket_ range (elements ascend by
  /// id within a bucket, so this is a binary search).
  std::size_t SlotOf(ElementId e) const;
  std::vector<BucketIndex> bucket_of_;      // element -> bucket
  std::vector<ElementId> by_bucket_;        // elements grouped by bucket
  std::vector<std::size_t> bucket_offset_{0};  // bucket -> by_bucket_ range
  std::vector<std::int64_t> twice_pos_;     // element -> 2*pos
  std::int64_t tied_pairs_ = 0;
};

/// Reusable per-thread workspace for the prepared kernels. Buffers only
/// ever grow (to the largest n / bucket count seen), so a warm scratch
/// makes every subsequent kernel call allocation-free regardless of how
/// the inputs' sizes vary call to call. Not thread-safe: one scratch per
/// thread (core/batch_engine keeps one per pool lane).
class PairScratch {
 public:
  PairScratch() = default;

  PairScratch(const PairScratch&) = delete;
  PairScratch& operator=(const PairScratch&) = delete;
  /// Move-only: a warm scratch can be handed between owners (e.g. pool
  /// lane storage) without re-paying the grow-to-high-water cost.
  PairScratch(PairScratch&&) noexcept = default;
  PairScratch& operator=(PairScratch&&) noexcept = default;
  ~PairScratch() = default;

  /// Grows all buffers to the high-water mark for rankings with up to `n`
  /// elements and `buckets` buckets per side, so that subsequent kernel
  /// calls within those bounds allocate nothing. Optional — the kernels
  /// grow the scratch on demand.
  void Reserve(std::size_t n, std::size_t buckets);

 private:
  friend PairCounts ComputePairCounts(const PreparedRanking& sigma,
                                      const PreparedRanking& tau,
                                      PairScratch& scratch);
  friend std::int64_t TwiceFHausdorff(const PreparedRanking& sigma,
                                      const PreparedRanking& tau,
                                      PairScratch& scratch);

  // Per-tau-bucket accumulator: a plain prefix array in flat-histogram
  // mode, a Fenwick tree (slot 0 unused) in the sorted fallback; the FHaus
  // kernel reuses it as the per-tau-bucket column-prefix array.
  std::vector<std::int64_t> fenwick_;
  // Flat joint histogram, indexed sigma_bucket * t_tau + tau_bucket; cells
  // are re-zeroed as the row scan consumes them, so all entries are zero
  // outside a call.
  std::vector<std::int64_t> joint_counts_;
  // Fallback buffer for the sort-and-run-count joint histogram used when
  // t_sigma * t_tau is large relative to n.
  std::vector<std::int64_t> joint_keys_;
  // Staging buffer for the SIMD joint-key computation in flat-histogram
  // mode (keys fit in int32 there: the key space is capped at 2^20).
  std::vector<std::int32_t> keys32_;
};

/// Pair classification on two prepared rankings — the same five counts as
/// ComputePairCounts(BucketOrder, BucketOrder), bit-for-bit, with zero heap
/// allocations on a warm scratch. t_sigma*t_tau-aware: when the joint key
/// space is a small multiple of n, one flat-histogram row scan yields
/// tied_both and discordant together in O(n + t_sigma*t_tau) — no sort, no
/// Fenwick; otherwise it falls back to sort-and-run-count on the scratch
/// key buffer plus a Fenwick sweep, O(n log n). Requires
/// sigma.n() == tau.n().
[[nodiscard]] PairCounts ComputePairCounts(
    const PreparedRanking& sigma, const PreparedRanking& tau,
    PairScratch& scratch);

/// 2*Kprof on prepared rankings (paper §3.1); zero-allocation on a warm
/// scratch, bit-identical to TwiceKprof(BucketOrder, BucketOrder).
[[nodiscard]] std::int64_t TwiceKprof(const PreparedRanking& sigma,
                                      const PreparedRanking& tau,
                                      PairScratch& scratch);

/// Kprof as a double, matching Kprof(BucketOrder, BucketOrder) exactly.
[[nodiscard]] double Kprof(const PreparedRanking& sigma,
                           const PreparedRanking& tau, PairScratch& scratch);

/// K^(p) on prepared rankings, bit-identical to the legacy KendallP.
[[nodiscard]] double KendallP(const PreparedRanking& sigma,
                              const PreparedRanking& tau, double p,
                              PairScratch& scratch);

/// KHaus via Proposition 6 on prepared rankings; zero-allocation on a warm
/// scratch, bit-identical to KHausdorff(BucketOrder, BucketOrder).
[[nodiscard]] std::int64_t KHausdorff(const PreparedRanking& sigma,
                                      const PreparedRanking& tau,
                                      PairScratch& scratch);

/// 2*Fprof as a straight L1 walk over the two frozen doubled-position
/// vectors (SIMD-dispatched, util/simd.h); allocation-free (needs no
/// scratch), bit-identical to TwiceFprof(BucketOrder, BucketOrder).
[[nodiscard]] std::int64_t TwiceFprof(const PreparedRanking& sigma,
                                      const PreparedRanking& tau);

/// Fprof as a double, matching Fprof(BucketOrder, BucketOrder) exactly.
[[nodiscard]] double Fprof(const PreparedRanking& sigma,
                           const PreparedRanking& tau);

/// 2*FHaus via the joint-bucket-run decomposition of the Theorem 5
/// construction — the structured replacement for materializing the four
/// refinement permutations per pair. In each of Theorem 5's two candidate
/// pairs, every element of a joint bucket cell (s, t) appears in ascending
/// id order on *both* sides, so the per-element rank displacement is
/// constant across the cell and each candidate footrule collapses to a sum
/// of cnt(s, t) * |cell displacement| over the occupied cells (derivation
/// in DESIGN.md §7). O(n + t_sigma*t_tau) in flat-histogram mode,
/// O(n log n) in the sorted fallback; zero allocations on a warm scratch;
/// bit-identical to TwiceFHausdorff(BucketOrder, BucketOrder), which stays
/// in-tree as the independently-constructed oracle.
[[nodiscard]] std::int64_t TwiceFHausdorff(const PreparedRanking& sigma,
                                           const PreparedRanking& tau,
                                           PairScratch& scratch);

/// FHaus as a double, matching FHausdorff(BucketOrder, BucketOrder)
/// exactly.
[[nodiscard]] double FHausdorff(const PreparedRanking& sigma,
                                const PreparedRanking& tau,
                                PairScratch& scratch);

}  // namespace rankties

#endif  // RANKTIES_CORE_PREPARED_H_
