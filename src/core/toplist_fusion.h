#ifndef RANKTIES_CORE_TOPLIST_FUSION_H_
#define RANKTIES_CORE_TOPLIST_FUSION_H_

#include <cstdint>
#include <vector>

#include "core/median_rank.h"
#include "util/status.h"

namespace rankties {

/// End-to-end meta-search fusion: engines return top lists of item ids
/// drawn from an unbounded universe (different engines, different items);
/// the lists are aligned onto their active domain (paper A.3), aggregated
/// by median rank (§6), and mapped back to item ids.
struct TopListFusionResult {
  /// Fused ranking of items, best first, original ids.
  std::vector<std::int64_t> items;
  /// Quadrupled median scores aligned with `items`.
  std::vector<std::int64_t> scores_quad;
};

/// Fuses the lists; `k` truncates the output (0 = everything). Fails when
/// all lists are empty or a list contains duplicates.
StatusOr<TopListFusionResult> FuseTopLists(
    const std::vector<std::vector<std::int64_t>>& tops, std::size_t k = 0,
    MedianPolicy policy = MedianPolicy::kLower);

}  // namespace rankties

#endif  // RANKTIES_CORE_TOPLIST_FUSION_H_
