#include "core/hausdorff.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "core/footrule.h"
#include "core/kendall.h"
#include "core/pair_counts.h"
#include "rank/refinement.h"

namespace rankties {

namespace {

/// The two candidate refinement pairs of Theorem 5, with rho = identity.
struct Theorem5Pairs {
  Permutation sigma1, tau1;  // (rho*tauR*sigma, rho*sigma*tau)
  Permutation sigma2, tau2;  // (rho*tau*sigma,  rho*sigmaR*tau)
};

Theorem5Pairs BuildTheorem5Pairs(const BucketOrder& sigma,
                                 const BucketOrder& tau) {
  const Permutation rho(sigma.n());  // arbitrary full ranking: identity
  const BucketOrder sigma_rev = sigma.Reverse();
  const BucketOrder tau_rev = tau.Reverse();
  return Theorem5Pairs{
      TauRefineFull(rho, TauRefine(tau_rev, sigma)),
      TauRefineFull(rho, TauRefine(sigma, tau)),
      TauRefineFull(rho, TauRefine(tau, sigma)),
      TauRefineFull(rho, TauRefine(sigma_rev, tau)),
  };
}

}  // namespace

std::int64_t KHausdorff(const BucketOrder& sigma, const BucketOrder& tau) {
  if (sigma.n() < 2) return 0;  // no pairs on a degenerate universe
  return KHausdorffFromCounts(ComputePairCounts(sigma, tau));
}

std::int64_t KHausdorffFromCounts(const PairCounts& counts) {
  return counts.discordant +
         std::max(counts.tied_sigma_only, counts.tied_tau_only);
}

std::int64_t KHausdorffTheorem5(const BucketOrder& sigma,
                                const BucketOrder& tau) {
  if (sigma.n() < 2) return 0;  // skip the construction entirely
  const Theorem5Pairs pairs = BuildTheorem5Pairs(sigma, tau);
  return std::max(KendallTau(pairs.sigma1, pairs.tau1),
                  KendallTau(pairs.sigma2, pairs.tau2));
}

std::int64_t TwiceFHausdorff(const BucketOrder& sigma, const BucketOrder& tau) {
  if (sigma.n() < 2) return 0;  // skip the construction entirely
  const Theorem5Pairs pairs = BuildTheorem5Pairs(sigma, tau);
  return 2 * std::max(Footrule(pairs.sigma1, pairs.tau1),
                      Footrule(pairs.sigma2, pairs.tau2));
}

double FHausdorff(const BucketOrder& sigma, const BucketOrder& tau) {
  return static_cast<double>(TwiceFHausdorff(sigma, tau)) / 2.0;
}

namespace {

/// Generic brute-force Hausdorff: max over refinements on one side of the
/// min distance to refinements of the other, then the max of both
/// directions. `Dist` maps two Permutations to int64.
template <typename Dist>
std::int64_t HausdorffBrute(const BucketOrder& sigma, const BucketOrder& tau,
                            Dist dist) {
  auto one_sided = [&](const BucketOrder& a, const BucketOrder& b) {
    std::int64_t max_min = 0;
    ForEachFullRefinement(a, [&](const Permutation& pa) {
      std::int64_t best = std::numeric_limits<std::int64_t>::max();
      ForEachFullRefinement(b, [&](const Permutation& pb) {
        best = std::min(best, dist(pa, pb));
        return true;
      });
      max_min = std::max(max_min, best);
      return true;
    });
    return max_min;
  };
  return std::max(one_sided(sigma, tau), one_sided(tau, sigma));
}

}  // namespace

std::int64_t KHausdorffBrute(const BucketOrder& sigma, const BucketOrder& tau) {
  return HausdorffBrute(sigma, tau, [](const Permutation& a,
                                       const Permutation& b) {
    return KendallTauNaive(a, b);
  });
}

std::int64_t FHausdorffBrute(const BucketOrder& sigma, const BucketOrder& tau) {
  return HausdorffBrute(sigma, tau,
                        [](const Permutation& a, const Permutation& b) {
                          return Footrule(a, b);
                        });
}

}  // namespace rankties
