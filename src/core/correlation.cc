#include "core/correlation.h"
#include "util/contracts.h"

#include <cmath>

namespace rankties {

StatusOr<double> KendallTauB(const BucketOrder& sigma, const BucketOrder& tau) {
  const PairCounts c = ComputePairCounts(sigma, tau);
  const double untied = static_cast<double>(c.concordant + c.discordant);
  const double denom_sigma =
      untied + static_cast<double>(c.tied_tau_only);  // pairs untied in sigma
  const double denom_tau =
      untied + static_cast<double>(c.tied_sigma_only);  // pairs untied in tau
  if (denom_sigma <= 0 || denom_tau <= 0) {
    return Status::Undefined("tau-b undefined: an input has no untied pairs");
  }
  return static_cast<double>(c.concordant - c.discordant) /
         std::sqrt(denom_sigma * denom_tau);
}

StatusOr<double> GoodmanKruskalGamma(const BucketOrder& sigma,
                                     const BucketOrder& tau) {
  const PairCounts c = ComputePairCounts(sigma, tau);
  const std::int64_t untied = c.concordant + c.discordant;
  if (untied == 0) {
    return Status::Undefined(
        "gamma undefined: every pair is tied in at least one ranking");
  }
  return static_cast<double>(c.concordant - c.discordant) /
         static_cast<double>(untied);
}

StatusOr<SignificanceResult> KendallSignificance(const BucketOrder& sigma,
                                                 const BucketOrder& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const double n = static_cast<double>(sigma.n());
  if (sigma.n() < 3) {
    return Status::Undefined("significance needs n >= 3");
  }
  const PairCounts c = ComputePairCounts(sigma, tau);
  const double s = static_cast<double>(c.concordant - c.discordant);
  const double variance = n * (n - 1.0) * (2.0 * n + 5.0) / 18.0;
  SignificanceResult result;
  result.z = s / std::sqrt(variance);
  result.p_value = std::erfc(std::abs(result.z) / std::sqrt(2.0));
  return result;
}

StatusOr<double> SpearmanRho(const BucketOrder& sigma, const BucketOrder& tau) {
  RANKTIES_DCHECK(sigma.n() == tau.n());
  const std::size_t n = sigma.n();
  if (n == 0) return Status::Undefined("rho undefined on empty domain");
  double mean_s = 0, mean_t = 0;
  for (std::size_t e = 0; e < n; ++e) {
    mean_s += sigma.Position(static_cast<ElementId>(e));
    mean_t += tau.Position(static_cast<ElementId>(e));
  }
  mean_s /= static_cast<double>(n);
  mean_t /= static_cast<double>(n);
  double cov = 0, var_s = 0, var_t = 0;
  for (std::size_t e = 0; e < n; ++e) {
    const double ds = sigma.Position(static_cast<ElementId>(e)) - mean_s;
    const double dt = tau.Position(static_cast<ElementId>(e)) - mean_t;
    cov += ds * dt;
    var_s += ds * ds;
    var_t += dt * dt;
  }
  if (var_s <= 0 || var_t <= 0) {
    return Status::Undefined("rho undefined: an input has a single bucket");
  }
  return cov / std::sqrt(var_s * var_t);
}

}  // namespace rankties
