#ifndef RANKTIES_CORE_PAIR_COUNTS_H_
#define RANKTIES_CORE_PAIR_COUNTS_H_

#include <cstdint>

#include "rank/bucket_order.h"
#include "util/checked_math.h"

namespace rankties {

/// Classification of all n(n-1)/2 unordered pairs {i,j} of distinct domain
/// elements with respect to two partial rankings sigma, tau.
///
/// Each pair falls in exactly one class:
///  * concordant        — strictly ordered the same way in both;
///  * discordant        — strictly ordered, opposite ways (the set U of
///                        Proposition 6);
///  * tied_sigma_only   — same bucket in sigma, different buckets in tau
///                        (the set S of Proposition 6);
///  * tied_tau_only     — same bucket in tau, different buckets in sigma
///                        (the set T of Proposition 6);
///  * tied_both         — same bucket in both.
///
/// Every Kendall-family quantity in the paper is O(1) arithmetic on these
/// counts:
///   K^(p)  = discordant + p * (tied_sigma_only + tied_tau_only)   (§3.1)
///   Kprof  = K^(1/2)                                              (§3.1)
///   KHaus  = discordant + max(tied_sigma_only, tied_tau_only)     (Prop. 6)
///   tau-b, gamma                                                  (related)
struct PairCounts {
  std::int64_t concordant = 0;
  std::int64_t discordant = 0;
  std::int64_t tied_sigma_only = 0;
  std::int64_t tied_tau_only = 0;
  std::int64_t tied_both = 0;

  /// Total number of unordered pairs = n(n-1)/2. Quadratic in n, so the sum
  /// is overflow-checked: aborts rather than silently wrapping past 2^63.
  std::int64_t Total() const {
    return CheckedAdd(
        CheckedAdd(CheckedAdd(concordant, discordant),
                   CheckedAdd(tied_sigma_only, tied_tau_only)),
        tied_both);
  }

  friend bool operator==(const PairCounts& a, const PairCounts& b) = default;
};

/// Computes the pair classification in O(n log n) via a lexicographic sort,
/// Fenwick-tree inversion counting, and a joint bucket histogram.
/// Requires sigma.n() == tau.n().
PairCounts ComputePairCounts(const BucketOrder& sigma, const BucketOrder& tau);

/// Reference O(n^2) implementation used to cross-check the fast path.
PairCounts ComputePairCountsNaive(const BucketOrder& sigma,
                                  const BucketOrder& tau);

}  // namespace rankties

#endif  // RANKTIES_CORE_PAIR_COUNTS_H_
