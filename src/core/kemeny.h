#ifndef RANKTIES_CORE_KEMENY_H_
#define RANKTIES_CORE_KEMENY_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "rank/permutation.h"
#include "util/status.h"

namespace rankties {

/// Exact Kemeny-style aggregation: the full ranking pi minimizing
/// sum_i K^(p)(pi, sigma_i) over all n! full rankings, computed by the
/// Held–Karp dynamic program over subsets in O(2^n n^2) time and O(2^n)
/// space. The pairwise decomposability of K^(p) makes the DP exact.
///
/// With p = 1/2 this is the optimal full ranking under the sum-of-Kprof
/// objective — the generalization of Kemeny-optimal aggregation ([8]) that
/// the paper's constant-factor algorithms approximate.
///
/// Fails when n > 18 (time/memory) or inputs are malformed, or when p is
/// not a multiple of 1/2 (doubled costs must stay integral).
struct KemenyResult {
  Permutation ranking;
  double total_cost = 0.0;      ///< sum_i K^(p)(pi, sigma_i)
  std::int64_t twice_cost = 0;  ///< exact doubled cost (p must be k/2)
};
StatusOr<KemenyResult> ExactKemeny(const std::vector<BucketOrder>& inputs,
                                   double p = 0.5);

/// Exact *partial-ranking* Kemeny aggregation: the bucket order (of any
/// type) minimizing sum_i K^(p)(sigma, sigma_i), computed by a dynamic
/// program over subsets that appends whole buckets: dp[S] = min over
/// nonempty B subset of S of dp[S \ B] + cost(B as the last bucket). Under
/// K^(p), a pair tied in the output costs p per input that strictly orders
/// it and 0 per input that ties it, so bucket costs decompose. O(3^n)
/// subset pairs; guarded to n <= 13.
///
/// This is the strongest exact yardstick for the paper's Theorem 10
/// pipeline (median + f-dagger), which approximates exactly this objective
/// (through the metric equivalences of Theorem 7).
struct KemenyPartialResult {
  BucketOrder order;
  double total_cost = 0.0;
  std::int64_t twice_cost = 0;
};
StatusOr<KemenyPartialResult> ExactKemenyPartial(
    const std::vector<BucketOrder>& inputs, double p = 0.5);

/// The pairwise preference costs: w[a][b] (doubled) = cost contributed by
/// the unordered pair {a,b} when the output ranks a ahead of b:
/// per input, 2 if the input ranks b strictly ahead of a, 2p if it ties
/// them, 0 otherwise. Exposed for tests and for LocalKemenization.
std::vector<std::vector<std::int64_t>> PairwisePreferenceCostsTwice(
    const std::vector<BucketOrder>& inputs, double p);

}  // namespace rankties

#endif  // RANKTIES_CORE_KEMENY_H_
