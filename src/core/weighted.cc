#include "core/weighted.h"

#include <algorithm>
#include <numeric>

#include "core/footrule.h"

namespace rankties {

namespace {

Status Validate(const std::vector<BucketOrder>& inputs,
                const std::vector<std::int64_t>& weights) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  if (weights.size() != inputs.size()) {
    return Status::InvalidArgument("one weight per input required");
  }
  for (std::int64_t w : weights) {
    if (w <= 0) return Status::InvalidArgument("weights must be positive");
  }
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<std::int64_t>> WeightedMedianScoresQuad(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights) {
  Status s = Validate(inputs, weights);
  if (!s.ok()) return s;
  const std::size_t n = inputs.front().n();
  std::int64_t total_weight = 0;
  for (std::int64_t w : weights) total_weight += w;

  std::vector<std::int64_t> scores(n);
  std::vector<std::pair<std::int64_t, std::int64_t>> column(inputs.size());
  for (std::size_t e = 0; e < n; ++e) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      column[i] = {inputs[i].TwicePosition(static_cast<ElementId>(e)),
                   weights[i]};
    }
    std::sort(column.begin(), column.end());
    // Lower weighted median: first value with 2 * cumulative >= total.
    std::int64_t cumulative = 0;
    std::int64_t median = column.back().first;
    for (const auto& [value, weight] : column) {
      cumulative += weight;
      if (2 * cumulative >= total_weight) {
        median = value;
        break;
      }
    }
    scores[e] = 2 * median;
  }
  return scores;
}

StatusOr<Permutation> WeightedMedianAggregateFull(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights) {
  StatusOr<std::vector<std::int64_t>> scores =
      WeightedMedianScoresQuad(inputs, weights);
  if (!scores.ok()) return scores.status();
  const std::size_t n = scores->size();
  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return (*scores)[static_cast<std::size_t>(a)] <
           (*scores)[static_cast<std::size_t>(b)];
  });
  return Permutation::FromOrder(order);
}

StatusOr<BucketOrder> WeightedMedianAggregateTopK(
    const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights, std::size_t k) {
  StatusOr<Permutation> full = WeightedMedianAggregateFull(inputs, weights);
  if (!full.ok()) return full.status();
  if (k > full->n()) return Status::InvalidArgument("k exceeds domain size");
  return BucketOrder::TopKOf(*full, k);
}

StatusOr<std::int64_t> WeightedTwiceTotalFprof(
    const BucketOrder& candidate, const std::vector<BucketOrder>& inputs,
    const std::vector<std::int64_t>& weights) {
  Status s = Validate(inputs, weights);
  if (!s.ok()) return s;
  if (candidate.n() != inputs.front().n()) {
    return Status::InvalidArgument("candidate domain size differs");
  }
  std::int64_t total = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    total += weights[i] * TwiceFprof(candidate, inputs[i]);
  }
  return total;
}

}  // namespace rankties
