#ifndef RANKTIES_CORE_CONSOLIDATION_H_
#define RANKTIES_CORE_CONSOLIDATION_H_

#include <cstdint>
#include <vector>

#include "core/median_rank.h"
#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// Type-constrained consolidation (paper Lemma 27 / Corollary 30): given a
/// score function f (quadrupled integers) and a target type alpha, builds
/// a partial ranking in <f>_alpha — consistent with f and of type alpha —
/// which Lemma 27 proves minimizes L1(., f) among ALL partial rankings of
/// type alpha (the order-preserving assignment is optimal, Lemma 26).
///
/// By Corollary 30, when f is a median of the inputs the result is a
/// factor-3 approximation among type-alpha partial rankings (factor 2 when
/// the inputs all have type alpha).
///
/// Fails unless alpha's sizes are positive and sum to the domain size.
struct ConsolidationResult {
  BucketOrder order;            ///< an element of <f>_alpha
  std::int64_t cost_quad = 0;   ///< 4 * L1(order, f)
};
StatusOr<ConsolidationResult> ConsolidateToType(
    const std::vector<std::int64_t>& quad_scores,
    const std::vector<std::size_t>& alpha);

/// Strong-sense near-optimal top-k (paper A.6.3, Theorem 35): computes
/// f-dagger's type beta, a sigma' in <f>_beta (which is near optimal over
/// ALL partial rankings, Theorem 10), and the top-k projection sigma in
/// <sigma'>_alpha — so the returned top-k list represents the k most
/// highly-ranked objects *of a nearly optimal partial ranking*, a strictly
/// stronger guarantee than Theorem 9's.
struct StrongTopKResult {
  BucketOrder top_k;        ///< the type-(1,...,1,n-k) projection
  BucketOrder certificate;  ///< the nearly optimal sigma' behind it
};
StatusOr<StrongTopKResult> StrongMedianTopK(
    const std::vector<BucketOrder>& inputs, std::size_t k,
    MedianPolicy policy = MedianPolicy::kLower);

/// Lemma 34 construction: given a partial ranking sigma consistent with f
/// and a type beta, produces sigma' in <f>_beta with sigma in <sigma'>_alpha
/// — concretely, re-bucket f's order by beta while breaking f-ties in
/// sigma's order. Exposed for tests; StrongMedianTopK uses it internally.
StatusOr<BucketOrder> ProjectConsistent(
    const std::vector<std::int64_t>& quad_scores, const BucketOrder& sigma,
    const std::vector<std::size_t>& beta);

}  // namespace rankties

#endif  // RANKTIES_CORE_CONSOLIDATION_H_
