#include "core/toplist_fusion.h"

#include <algorithm>
#include <numeric>

#include "rank/active_domain.h"

namespace rankties {

StatusOr<TopListFusionResult> FuseTopLists(
    const std::vector<std::vector<std::int64_t>>& tops, std::size_t k,
    MedianPolicy policy) {
  StatusOr<AlignedTopKMany> aligned = AlignManyTopKLists(tops);
  if (!aligned.ok()) return aligned.status();
  StatusOr<std::vector<std::int64_t>> scores =
      MedianRankScoresQuad(aligned->orders, policy);
  if (!scores.ok()) return scores.status();

  const std::size_t n = aligned->items.size();
  std::vector<ElementId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    return (*scores)[static_cast<std::size_t>(a)] <
           (*scores)[static_cast<std::size_t>(b)];
  });

  TopListFusionResult result;
  const std::size_t take = k == 0 ? n : std::min(k, n);
  result.items.reserve(take);
  result.scores_quad.reserve(take);
  for (std::size_t r = 0; r < take; ++r) {
    const std::size_t e = static_cast<std::size_t>(order[r]);
    result.items.push_back(aligned->items[e]);
    result.scores_quad.push_back((*scores)[e]);
  }
  return result;
}

}  // namespace rankties
