#ifndef RANKTIES_CORE_BEST_INPUT_H_
#define RANKTIES_CORE_BEST_INPUT_H_

#include <cstddef>
#include <vector>

#include "core/metric_registry.h"
#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// The "trivial" factor-2 aggregation baseline the paper mentions in
/// footnote 4: one of the input rankings always achieves a factor-2
/// approximation of the optimal aggregation under any metric (by the
/// triangle inequality), so returning the input with the smallest total
/// distance to the others is a cheap but non-trivial-to-beat baseline.
struct BestInputResult {
  std::size_t index = 0;   ///< index of the winning input
  double total_cost = 0.0; ///< its summed distance to all inputs
};

/// Picks the input minimizing sum_j d(sigma_i, sigma_j) under `kind`.
/// O(m^2) metric evaluations. Fails on an empty input list.
StatusOr<BestInputResult> BestInputAggregate(
    const std::vector<BucketOrder>& inputs, MetricKind kind);

}  // namespace rankties

#endif  // RANKTIES_CORE_BEST_INPUT_H_
