#ifndef RANKTIES_RANKTIES_H_
#define RANKTIES_RANKTIES_H_

/// \file
/// Umbrella header for rankties — a C++20 library reproducing
/// "Comparing and Aggregating Rankings with Ties" (Fagin, Kumar, Mahdian,
/// Sivakumar, Vee; PODS 2004).
///
/// Quick map:
///  * rank/bucket_order.h      — the partial-ranking type
///  * core/profile_metrics.h   — K^(p) / Kprof               (paper §3.1)
///  * core/footrule.h          — Fprof, footrule, F^(l)      (paper §3.1)
///  * core/hausdorff.h         — KHaus / FHaus              (paper §3.2/§4)
///  * core/median_rank.h       — median aggregation          (paper §6)
///  * core/optimal_bucketing.h — the f-dagger DP             (paper A.6.4)
///  * access/medrank_engine.h  — database-friendly top-k     (paper §6)
///  * db/query.h               — preference queries over tables

#include "access/access_model.h"
#include "access/bidirectional.h"
#include "access/lower_bound.h"
#include "access/medrank_engine.h"
#include "access/medrank_stream.h"
#include "access/nra_median.h"
#include "access/ta_median.h"
#include "core/batch_engine.h"
#include "core/best_input.h"
#include "core/borda.h"
#include "core/condorcet.h"
#include "core/consolidation.h"
#include "core/correlation.h"
#include "core/cost.h"
#include "core/footrule.h"
#include "core/footrule_matching.h"
#include "core/hausdorff.h"
#include "core/kemeny.h"
#include "core/kemeny_bnb.h"
#include "core/kendall.h"
#include "core/local_kemenization.h"
#include "core/markov_chain.h"
#include "core/median_rank.h"
#include "core/metric_registry.h"
#include "core/near_metric.h"
#include "core/normalization.h"
#include "core/online_median.h"
#include "core/optimal_bucketing.h"
#include "core/pair_counts.h"
#include "core/weighted.h"
#include "core/profile_metrics.h"
#include "core/refinement_extremes.h"
#include "core/toplist_fusion.h"
#include "db/column_index.h"
#include "db/indexed_catalog.h"
#include "db/query.h"
#include "db/query_parser.h"
#include "db/schema.h"
#include "db/similarity.h"
#include "db/table.h"
#include "db/value.h"
#include "gen/datasets.h"
#include "gen/evaluation.h"
#include "gen/mallows.h"
#include "gen/random_orders.h"
#include "gen/zipf.h"
#include "obs/obs.h"
#include "rank/active_domain.h"
#include "rank/bucket_order.h"
#include "rank/conversions.h"
#include "rank/io.h"
#include "rank/lattice.h"
#include "rank/permutation.h"
#include "rank/refinement.h"
#include "ref/ref_metrics.h"
#include "util/checked_math.h"
#include "util/combinatorics.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

#endif  // RANKTIES_RANKTIES_H_
