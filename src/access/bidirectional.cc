#include "access/bidirectional.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/obs.h"

namespace rankties {

BidirectionalCursor::BidirectionalCursor(const std::vector<double>& values,
                                         double query) {
  BuildSchedule(values, query);
}

void BidirectionalCursor::BuildSchedule(const std::vector<double>& values,
                                        double query) {
  n_ = values.size();
  std::vector<ElementId> by_value(n_);
  std::iota(by_value.begin(), by_value.end(), 0);
  std::sort(by_value.begin(), by_value.end(), [&](ElementId a, ElementId b) {
    return values[static_cast<std::size_t>(a)] <
           values[static_cast<std::size_t>(b)];
  });

  // Two cursors walk outward from the query's insertion point; each step
  // takes the closer side, so elements appear in non-decreasing |v - q|.
  std::ptrdiff_t right =
      std::lower_bound(by_value.begin(), by_value.end(), query,
                       [&](ElementId e, double q) {
                         return values[static_cast<std::size_t>(e)] < q;
                       }) -
      by_value.begin();
  std::ptrdiff_t left = right - 1;
  std::vector<ElementId> merged;
  std::vector<double> distances;
  merged.reserve(n_);
  distances.reserve(n_);
  while (left >= 0 || right < static_cast<std::ptrdiff_t>(n_)) {
    const double dl =
        left >= 0
            ? query - values[static_cast<std::size_t>(
                          by_value[static_cast<std::size_t>(left)])]
            : std::numeric_limits<double>::infinity();
    const double dr =
        right < static_cast<std::ptrdiff_t>(n_)
            ? values[static_cast<std::size_t>(
                  by_value[static_cast<std::size_t>(right)])] -
                  query
            : std::numeric_limits<double>::infinity();
    if (dl <= dr) {
      merged.push_back(by_value[static_cast<std::size_t>(left)]);
      distances.push_back(dl);
      --left;
    } else {
      merged.push_back(by_value[static_cast<std::size_t>(right)]);
      distances.push_back(dr);
      ++right;
    }
  }

  // Group equal distances into tie buckets and assign doubled positions.
  schedule_.resize(n_);
  std::size_t i = 0;
  std::int64_t before = 0;
  while (i < n_) {
    std::size_t j = i;
    while (j < n_ && distances[j] == distances[i]) ++j;
    const std::int64_t size = static_cast<std::int64_t>(j - i);
    const std::int64_t twice_pos = 2 * before + size + 1;
    for (std::size_t l = i; l < j; ++l) {
      schedule_[l] = SortedAccess{merged[l], twice_pos};
    }
    before += size;
    i = j;
  }
}

std::optional<SortedAccess> BidirectionalCursor::Next() {
  if (cursor_ >= schedule_.size()) return std::nullopt;
  ++accesses_;
  RANKTIES_OBS_COUNT("access.bidirectional.sorted_accesses", 1);
  return schedule_[cursor_++];
}

void BidirectionalCursor::Reset() {
  cursor_ = 0;
  accesses_ = 0;
}

}  // namespace rankties
