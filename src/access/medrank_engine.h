#ifndef RANKTIES_ACCESS_MEDRANK_ENGINE_H_
#define RANKTIES_ACCESS_MEDRANK_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "access/access_model.h"
#include "util/status.h"

namespace rankties {

/// Result of a MEDRANK top-k run, with full access accounting.
struct MedrankResult {
  /// The k winners in the order they were certified (best first).
  std::vector<ElementId> winners;
  /// Accesses performed on each input list.
  std::vector<std::int64_t> accesses_per_list;
  /// Sum of accesses_per_list.
  std::int64_t total_accesses = 0;
  /// Depth (number of rounds of round-robin access) reached.
  std::int64_t depth = 0;
};

/// The instance-optimal median-rank engine of Fagin–Kumar–Sivakumar [11]
/// as used in §6 of the paper: perform sorted access on the m input lists
/// in round-robin order; an element *wins* as soon as it has been seen on
/// more than m/2 lists; stop when k elements have won. Under sorted access
/// this reads "essentially as few elements of each partial ranking as are
/// necessary to determine the winner(s)".
///
/// Sources are consumed (read and advanced); Reset() them to reuse.
/// Fails if sources are empty, disagree on n, or k > n.
StatusOr<MedrankResult> MedrankTopK(
    const std::vector<std::unique_ptr<SortedAccessSource>>& sources,
    std::size_t k);

/// Convenience: builds BucketOrderSources over `inputs` and runs MedrankTopK.
StatusOr<MedrankResult> MedrankTopK(const std::vector<BucketOrder>& inputs,
                                    std::size_t k);

}  // namespace rankties

#endif  // RANKTIES_ACCESS_MEDRANK_ENGINE_H_
