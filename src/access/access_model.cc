#include "access/access_model.h"

#include "obs/obs.h"
#include "util/contracts.h"

namespace rankties {

BucketOrderSource::BucketOrderSource(const BucketOrder& order)
    : order_(order) {}

std::optional<SortedAccess> BucketOrderSource::Next() {
  if (bucket_ >= order_.num_buckets()) return std::nullopt;
  const std::vector<ElementId>& bucket = order_.bucket(bucket_);
  RANKTIES_BOUNDS(offset_, bucket.size());
  SortedAccess access{bucket[offset_], order_.TwicePositionOfBucket(bucket_)};
  ++offset_;
  if (offset_ >= bucket.size()) {
    offset_ = 0;
    ++bucket_;
  }
  ++accesses_;
  RANKTIES_OBS_COUNT("access.sorted_accesses", 1);
  return access;
}

void BucketOrderSource::Reset() {
  bucket_ = 0;
  offset_ = 0;
  accesses_ = 0;
}

std::vector<std::unique_ptr<SortedAccessSource>> MakeSources(
    const std::vector<BucketOrder>& orders) {
  std::vector<std::unique_ptr<SortedAccessSource>> sources;
  sources.reserve(orders.size());
  for (const BucketOrder& order : orders) {
    sources.push_back(std::make_unique<BucketOrderSource>(order));
  }
  return sources;
}

}  // namespace rankties
