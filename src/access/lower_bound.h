#ifndef RANKTIES_ACCESS_LOWER_BOUND_H_
#define RANKTIES_ACCESS_LOWER_BOUND_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"

namespace rankties {

/// An offline *certificate lower bound* on sorted accesses: any algorithm
/// that certifies `winners` as majority winners must, at minimum, have seen
/// each winner on more than m/2 lists; per list, seeing an element requires
/// reading down to its depth (its 1-based arrival index in that list's
/// deterministic access sequence).
///
/// For each winner we pick its floor(m/2)+1 shallowest lists (the cheapest
/// certificate for that winner alone); the per-list requirement is the max
/// over winners that chose the list; the bound is the sum over lists. This
/// is a valid lower bound for any algorithm certifying the same winner set
/// under sorted access, and the yardstick the instance-optimality bench
/// (E8) reports the MEDRANK ratio against.
std::int64_t CertificateLowerBound(const std::vector<BucketOrder>& inputs,
                                   const std::vector<ElementId>& winners);

/// Depth of element `e` in `order`'s deterministic access sequence
/// (1-based): elements of earlier buckets first, ascending id within a
/// bucket — exactly BucketOrderSource's order.
std::int64_t AccessDepth(const BucketOrder& order, ElementId e);

}  // namespace rankties

#endif  // RANKTIES_ACCESS_LOWER_BOUND_H_
