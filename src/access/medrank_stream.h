#ifndef RANKTIES_ACCESS_MEDRANK_STREAM_H_
#define RANKTIES_ACCESS_MEDRANK_STREAM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "access/access_model.h"
#include "util/status.h"

namespace rankties {

/// Incremental MEDRANK: the paper's instantiation "access each of the
/// partial rankings, one element at a time, until some object is seen more
/// than m/2 times; output it" — as a pull-based stream, so callers pay only
/// for the winners they actually consume (pagination: 'show 10 more
/// results').
///
/// Construct with sources, call NextWinner() repeatedly; each call resumes
/// the round-robin exactly where the last certification stopped.
class MedrankStream {
 public:
  /// Takes ownership of the sources. They must all share a domain size; a
  /// violated precondition surfaces on the first NextWinner() call.
  explicit MedrankStream(
      std::vector<std::unique_ptr<SortedAccessSource>> sources);

  /// The next certified winner, or nullopt when no further element can
  /// reach a majority (all sources exhausted).
  std::optional<ElementId> NextWinner();

  /// Total sorted accesses so far.
  std::int64_t total_accesses() const { return total_accesses_; }
  /// Per-list accesses so far.
  const std::vector<std::int64_t>& accesses_per_list() const {
    return accesses_per_list_;
  }
  /// Winners certified so far, in order.
  const std::vector<ElementId>& winners() const { return winners_; }

 private:
  std::vector<std::unique_ptr<SortedAccessSource>> sources_;
  std::vector<std::int64_t> accesses_per_list_;
  std::vector<std::int32_t> seen_count_;
  std::vector<bool> won_;
  std::vector<ElementId> winners_;
  std::size_t next_list_ = 0;  // round-robin resume position
  std::int64_t total_accesses_ = 0;
  std::size_t majority_ = 0;
  bool initialized_ = false;
  bool exhausted_ = false;
};

}  // namespace rankties

#endif  // RANKTIES_ACCESS_MEDRANK_STREAM_H_
