#include "access/medrank_engine.h"

#include "obs/obs.h"

namespace rankties {

StatusOr<MedrankResult> MedrankTopK(
    const std::vector<std::unique_ptr<SortedAccessSource>>& sources,
    std::size_t k) {
  if (sources.empty()) return Status::InvalidArgument("no sources");
  const std::size_t m = sources.size();
  const std::size_t n = sources.front()->n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const auto& source : sources) {
    if (source->n() != n) {
      return Status::InvalidArgument("source domain sizes differ");
    }
  }
  if (k > n) return Status::InvalidArgument("k exceeds domain size");

  MedrankResult result;
  result.accesses_per_list.assign(m, 0);
  if (k == 0) return result;

  obs::TraceSpan span("access.medrank_topk");
  RANKTIES_OBS_COUNT("access.medrank.runs", 1);

  std::vector<std::int32_t> seen_count(n, 0);
  std::vector<bool> won(n, false);
  const std::size_t majority = m / 2 + 1;  // "> m/2" (paper §6)

  bool any_alive = true;
  while (result.winners.size() < k && any_alive) {
    ++result.depth;
    any_alive = false;
    for (std::size_t i = 0; i < m && result.winners.size() < k; ++i) {
      std::optional<SortedAccess> access = sources[i]->Next();
      if (!access.has_value()) continue;
      any_alive = true;
      ++result.accesses_per_list[i];
      const std::size_t e = static_cast<std::size_t>(access->element);
      if (won[e]) continue;
      if (static_cast<std::size_t>(++seen_count[e]) >= majority) {
        won[e] = true;
        result.winners.push_back(access->element);
      }
    }
  }
  for (std::int64_t a : result.accesses_per_list) result.total_accesses += a;
  span.SetItems(result.total_accesses);
  RANKTIES_OBS_COUNT("access.medrank.sorted_accesses", result.total_accesses);
  RANKTIES_OBS_RECORD("access.medrank.depth", result.depth);
  RANKTIES_FLIGHT(obs::FlightEventId::kMedrankRun,
                  static_cast<std::int64_t>(k), result.total_accesses,
                  result.depth);
  return result;
}

StatusOr<MedrankResult> MedrankTopK(const std::vector<BucketOrder>& inputs,
                                    std::size_t k) {
  std::vector<std::unique_ptr<SortedAccessSource>> sources =
      MakeSources(inputs);
  return MedrankTopK(sources, k);
}

}  // namespace rankties
