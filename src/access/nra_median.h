#ifndef RANKTIES_ACCESS_NRA_MEDIAN_H_
#define RANKTIES_ACCESS_NRA_MEDIAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "access/access_model.h"
#include "util/status.h"

namespace rankties {

/// Exact top-k by *median score* under sorted access, in the
/// no-random-access (NRA) style of Fagin–Lotem–Naor [12].
///
/// The majority-count MEDRANK engine certifies winners by *depth* — which
/// coincides with median order on full rankings but only approximates it
/// under heavy ties. This engine instead maintains, for every element,
/// lower and upper bounds on its (lower-)median doubled position:
///  * a list where the element was seen contributes its exact position;
///  * an unseen list contributes at least the position at the list's
///    current access frontier, and at most the maximum position 2n.
/// It stops as soon as k elements' upper bounds dominate every other
/// element's lower bound — returning the true median-score top-k set with
/// as few accesses as the bounds allow.
struct NraMedianResult {
  /// The k elements with smallest lower-median positions. Within the
  /// result, ordered by (proved upper bound, id) — NOT necessarily exact
  /// score order; the *set* is exact (ties in the k-th score broken toward
  /// smaller element id, matching the offline tie-break).
  std::vector<ElementId> top;
  std::vector<std::int64_t> accesses_per_list;
  std::int64_t total_accesses = 0;
};

/// Runs the NRA median engine over the sources. Fails on empty/mismatched
/// sources or k > n.
StatusOr<NraMedianResult> NraMedianTopK(
    const std::vector<std::unique_ptr<SortedAccessSource>>& sources,
    std::size_t k);

/// Convenience over in-memory bucket orders.
StatusOr<NraMedianResult> NraMedianTopK(const std::vector<BucketOrder>& inputs,
                                        std::size_t k);

}  // namespace rankties

#endif  // RANKTIES_ACCESS_NRA_MEDIAN_H_
