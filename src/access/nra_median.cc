#include "access/nra_median.h"

#include <algorithm>
#include <numeric>

#include "obs/obs.h"
#include "util/contracts.h"

namespace rankties {

namespace {

// 1-based index of the lower median among m values: (m+1)/2.
std::size_t LowerMedianIndex(std::size_t m) { return (m + 1) / 2; }

}  // namespace

StatusOr<NraMedianResult> NraMedianTopK(
    const std::vector<std::unique_ptr<SortedAccessSource>>& sources,
    std::size_t k) {
  if (sources.empty()) return Status::InvalidArgument("no sources");
  const std::size_t m = sources.size();
  const std::size_t n = sources.front()->n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const auto& source : sources) {
    if (source->n() != n) {
      return Status::InvalidArgument("source domain sizes differ");
    }
  }
  if (k > n) return Status::InvalidArgument("k exceeds domain size");

  NraMedianResult result;
  result.accesses_per_list.assign(m, 0);
  if (k == 0) return result;

  obs::TraceSpan span("access.nra_median");
  RANKTIES_OBS_COUNT("access.nra.runs", 1);

  // seen[e * m + i] = e's doubled position in list i, or -1 if unseen.
  std::vector<std::int64_t> seen(n * m, -1);
  std::vector<std::int64_t> frontier(m, 0);  // last accessed twice-position
  std::vector<bool> alive(m, true);
  const std::int64_t max_twice_pos = 2 * static_cast<std::int64_t>(n);
  const std::size_t median_index = LowerMedianIndex(m);

  std::vector<std::int64_t> lower(n), upper(n);
  std::vector<std::int64_t> scratch(m);
  auto recompute_bounds = [&] {
    for (std::size_t e = 0; e < n; ++e) {
      // Lower bound: unseen lists contribute their frontier.
      for (std::size_t i = 0; i < m; ++i) {
        const std::int64_t pos = seen[e * m + i];
        scratch[i] = pos >= 0 ? pos : frontier[i];
      }
      std::nth_element(scratch.begin(),
                       scratch.begin() +
                           static_cast<std::ptrdiff_t>(median_index - 1),
                       scratch.end());
      lower[e] = scratch[median_index - 1];
      // Upper bound: unseen lists contribute the maximum position.
      for (std::size_t i = 0; i < m; ++i) {
        const std::int64_t pos = seen[e * m + i];
        scratch[i] = pos >= 0 ? pos : max_twice_pos;
      }
      std::nth_element(scratch.begin(),
                       scratch.begin() +
                           static_cast<std::ptrdiff_t>(median_index - 1),
                       scratch.end());
      upper[e] = scratch[median_index - 1];
    }
  };

  // Returns true (and fills result.top) when the k smallest upper bounds
  // dominate every other element's lower bound.
  std::vector<ElementId> by_upper(n);
  std::iota(by_upper.begin(), by_upper.end(), 0);
  auto certified = [&] {
    recompute_bounds();
    std::partial_sort(by_upper.begin(),
                      by_upper.begin() + static_cast<std::ptrdiff_t>(k),
                      by_upper.end(), [&](ElementId a, ElementId b) {
                        const std::int64_t ua =
                            upper[static_cast<std::size_t>(a)];
                        const std::int64_t ub =
                            upper[static_cast<std::size_t>(b)];
                        return ua != ub ? ua < ub : a < b;
                      });
    const std::int64_t kth_upper =
        upper[static_cast<std::size_t>(by_upper[k - 1])];
    std::vector<bool> in_top(n, false);
    for (std::size_t r = 0; r < k; ++r) {
      in_top[static_cast<std::size_t>(by_upper[r])] = true;
    }
    for (std::size_t e = 0; e < n; ++e) {
      if (!in_top[e] && lower[e] < kth_upper) return false;
    }
    result.top.assign(by_upper.begin(),
                      by_upper.begin() + static_cast<std::ptrdiff_t>(k));
    return true;
  };

  std::int64_t round = 0;
  bool done = false;
  while (!done) {
    bool any_alive = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      std::optional<SortedAccess> access = sources[i]->Next();
      if (!access.has_value()) {
        alive[i] = false;
        // An exhausted list has revealed everything; its frontier no
        // longer lower-bounds anything unseen (there is nothing unseen).
        frontier[i] = max_twice_pos;
        continue;
      }
      any_alive = true;
      ++result.accesses_per_list[i];
      // The lower-bound argument substitutes frontier[i] for unseen
      // entries; that is only a lower bound if accesses never regress.
      RANKTIES_DCHECK(access->twice_position >= frontier[i]);
      seen[static_cast<std::size_t>(access->element) * m + i] =
          access->twice_position;
      frontier[i] = access->twice_position;
    }
    ++round;
    // Bound checks are O(n m); amortize them on large domains.
    const bool check = round <= 8 || round % 64 == 0 || !any_alive;
    if (check && certified()) {
      done = true;
    } else if (!any_alive) {
      // Exhausted: bounds are exact, certification must succeed.
      done = certified();
      break;
    }
  }
  for (std::int64_t a : result.accesses_per_list) result.total_accesses += a;
  // Access-cost accounting (docs/OBSERVABILITY.md): NRA performs sorted
  // accesses only; candidates counts elements partially seen at stop time.
  span.SetItems(result.total_accesses);
  if (obs::Enabled()) {
    RANKTIES_OBS_COUNT("access.nra.sorted_accesses", result.total_accesses);
    std::int64_t candidates = 0;
    for (std::size_t e = 0; e < n; ++e) {
      for (std::size_t i = 0; i < m; ++i) {
        if (seen[e * m + i] >= 0) {
          ++candidates;
          break;
        }
      }
    }
    RANKTIES_OBS_RECORD("access.nra.candidates", candidates);
  }
  RANKTIES_FLIGHT(obs::FlightEventId::kNraRun,
                  static_cast<std::int64_t>(k), result.total_accesses);
  if (result.top.empty()) {
    return Status::Internal("NRA failed to certify after exhaustion");
  }
  return result;
}

StatusOr<NraMedianResult> NraMedianTopK(const std::vector<BucketOrder>& inputs,
                                        std::size_t k) {
  std::vector<std::unique_ptr<SortedAccessSource>> sources =
      MakeSources(inputs);
  return NraMedianTopK(sources, k);
}

}  // namespace rankties
