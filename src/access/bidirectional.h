#ifndef RANKTIES_ACCESS_BIDIRECTIONAL_H_
#define RANKTIES_ACCESS_BIDIRECTIONAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "access/access_model.h"
#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// The two-cursor sorted access of [11] (§6 of the paper): an attribute's
/// values are kept sorted once; a preference query "closest to q" is served
/// by seeding two cursors at q's position and walking them outward, yielding
/// elements in non-decreasing |value - q| — the database never re-sorts per
/// query and the access pattern stays localized and sequential.
///
/// Elements with equal distance form a tie; they share the same doubled
/// position, exactly as in the bucket order RankByDistance would build.
class BidirectionalCursor : public SortedAccessSource {
 public:
  /// `values[e]` is element e's attribute value; `query` the target.
  BidirectionalCursor(const std::vector<double>& values, double query);

  std::size_t n() const override { return n_; }
  std::optional<SortedAccess> Next() override;
  std::int64_t accesses() const override { return accesses_; }
  void Reset() override;

 private:
  void BuildSchedule(const std::vector<double>& values, double query);

  std::size_t n_ = 0;
  // Precomputed access schedule: elements in non-decreasing distance with
  // their doubled tie-aware positions.
  std::vector<SortedAccess> schedule_;
  std::size_t cursor_ = 0;
  std::int64_t accesses_ = 0;
};

}  // namespace rankties

#endif  // RANKTIES_ACCESS_BIDIRECTIONAL_H_
