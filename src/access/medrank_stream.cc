#include "access/medrank_stream.h"

#include "obs/obs.h"

namespace rankties {

MedrankStream::MedrankStream(
    std::vector<std::unique_ptr<SortedAccessSource>> sources)
    : sources_(std::move(sources)) {}

std::optional<ElementId> MedrankStream::NextWinner() {
  // Counter delta = accesses performed by this call alone; the running
  // total stays in total_accesses_ for callers that want the cumulative.
  const std::int64_t accesses_before = total_accesses_;
  obs::TraceSpan span("access.medrank_stream.next_winner");
  if (!initialized_) {
    initialized_ = true;
    if (sources_.empty()) {
      exhausted_ = true;
      return std::nullopt;
    }
    const std::size_t n = sources_.front()->n();
    for (const auto& source : sources_) {
      if (source->n() != n) {
        exhausted_ = true;  // malformed; surface as an empty stream
        return std::nullopt;
      }
    }
    accesses_per_list_.assign(sources_.size(), 0);
    seen_count_.assign(n, 0);
    won_.assign(n, false);
    majority_ = sources_.size() / 2 + 1;
  }

  while (!exhausted_) {
    bool any_alive = false;
    // One full round of round-robin sorted access starting at next_list_.
    for (std::size_t step = 0; step < sources_.size(); ++step) {
      const std::size_t i = (next_list_ + step) % sources_.size();
      std::optional<SortedAccess> access = sources_[i]->Next();
      if (!access.has_value()) continue;
      any_alive = true;
      ++accesses_per_list_[i];
      ++total_accesses_;
      const std::size_t e = static_cast<std::size_t>(access->element);
      if (won_[e]) continue;
      if (static_cast<std::size_t>(++seen_count_[e]) >= majority_) {
        won_[e] = true;
        // Resume after this list next time so the interrupted round
        // continues where it stopped.
        next_list_ = (i + 1) % sources_.size();
        winners_.push_back(access->element);
        span.SetItems(total_accesses_ - accesses_before);
        RANKTIES_OBS_COUNT("access.medrank_stream.sorted_accesses",
                           total_accesses_ - accesses_before);
        RANKTIES_FLIGHT(obs::FlightEventId::kMedrankStreamWinner,
                        static_cast<std::int64_t>(access->element),
                        total_accesses_);
        return access->element;
      }
    }
    if (!any_alive) exhausted_ = true;
  }
  span.SetItems(total_accesses_ - accesses_before);
  RANKTIES_OBS_COUNT("access.medrank_stream.sorted_accesses",
                     total_accesses_ - accesses_before);
  return std::nullopt;
}

}  // namespace rankties
