#ifndef RANKTIES_ACCESS_TA_MEDIAN_H_
#define RANKTIES_ACCESS_TA_MEDIAN_H_

#include <cstdint>
#include <vector>

#include "rank/bucket_order.h"
#include "util/status.h"

namespace rankties {

/// The Threshold Algorithm (TA) of Fagin–Lotem–Naor [12], instantiated for
/// the median scoring function: sorted access in round robin; every newly
/// seen element is *randomly accessed* in all other lists, so its exact
/// (lower-)median position is known immediately; stop when the k-th best
/// exact score is at most the threshold — the median of the lists' current
/// frontier positions, a floor on every unseen element's score.
///
/// Versus the NRA engine: TA needs random access (cheap for in-memory
/// bucket orders, a per-row lookup for a real database) but terminates
/// earlier and returns *exact scores*, not just the exact set.
struct TaMedianResult {
  /// Top-k elements by exact lower-median doubled position, best first
  /// (score ties broken by smaller element id).
  std::vector<ElementId> top;
  /// Their quadrupled median scores (aligned with `top`).
  std::vector<std::int64_t> scores_quad;
  std::int64_t sorted_accesses = 0;
  std::int64_t random_accesses = 0;
};

/// Runs TA over in-memory bucket orders (which provide O(1) random access
/// via TwicePosition). Fails on empty/mismatched inputs or k > n.
StatusOr<TaMedianResult> TaMedianTopK(const std::vector<BucketOrder>& inputs,
                                      std::size_t k);

}  // namespace rankties

#endif  // RANKTIES_ACCESS_TA_MEDIAN_H_
