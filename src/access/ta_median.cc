#include "access/ta_median.h"

#include <algorithm>
#include <queue>

#include "access/access_model.h"
#include "obs/obs.h"
#include "util/contracts.h"

namespace rankties {

StatusOr<TaMedianResult> TaMedianTopK(const std::vector<BucketOrder>& inputs,
                                      std::size_t k) {
  if (inputs.empty()) return Status::InvalidArgument("no input rankings");
  const std::size_t m = inputs.size();
  const std::size_t n = inputs.front().n();
  if (n == 0) return Status::InvalidArgument("empty domain");
  for (const BucketOrder& input : inputs) {
    if (input.n() != n) {
      return Status::InvalidArgument("input domain sizes differ");
    }
  }
  if (k > n) return Status::InvalidArgument("k exceeds domain size");

  TaMedianResult result;
  if (k == 0) return result;

  obs::TraceSpan span("access.ta_median");
  RANKTIES_OBS_COUNT("access.ta.runs", 1);

  std::vector<BucketOrderSource> sources;
  sources.reserve(m);
  for (const BucketOrder& input : inputs) sources.emplace_back(input);

  const std::size_t median_index = (m + 1) / 2;  // 1-based lower median
  std::vector<std::int64_t> column(m);
  auto exact_score = [&](ElementId e) {
    for (std::size_t i = 0; i < m; ++i) {
      column[i] = inputs[i].TwicePosition(e);
    }
    std::nth_element(column.begin(),
                     column.begin() +
                         static_cast<std::ptrdiff_t>(median_index - 1),
                     column.end());
    return 2 * column[median_index - 1];  // quadrupled units
  };

  // Max-heap of the best k (score, id) pairs seen so far.
  using Entry = std::pair<std::int64_t, ElementId>;
  std::priority_queue<Entry> best;
  std::vector<bool> scored(n, false);
  std::vector<std::int64_t> frontier(m, 0);
  std::vector<bool> alive(m, true);
  const std::int64_t max_twice = 2 * static_cast<std::int64_t>(n);

  bool done = false;
  while (!done) {
    bool any_alive = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (!alive[i]) continue;
      std::optional<SortedAccess> access = sources[i].Next();
      if (!access.has_value()) {
        alive[i] = false;
        frontier[i] = max_twice;
        continue;
      }
      any_alive = true;
      ++result.sorted_accesses;
      // Threshold soundness rests on sorted accesses being monotone: a
      // regressing position would let the frontier median overstate the
      // bound and certify a wrong top-k.
      RANKTIES_DCHECK(access->twice_position >= frontier[i]);
      frontier[i] = access->twice_position;
      const std::size_t e = static_cast<std::size_t>(access->element);
      if (!scored[e]) {
        scored[e] = true;
        result.random_accesses += static_cast<std::int64_t>(m - 1);
        const std::int64_t score = exact_score(access->element);
        if (best.size() < k) {
          best.emplace(score, access->element);
        } else if (Entry(score, access->element) < best.top()) {
          best.pop();
          best.emplace(score, access->element);
        }
      }
    }
    // Threshold: the median of the frontier positions lower-bounds every
    // unseen element's median score.
    for (std::size_t i = 0; i < m; ++i) column[i] = frontier[i];
    std::nth_element(column.begin(),
                     column.begin() +
                         static_cast<std::ptrdiff_t>(median_index - 1),
                     column.end());
    const std::int64_t threshold_quad = 2 * column[median_index - 1];
    // Strict inequality: an unseen element could still tie the k-th score
    // at equality and deserve the slot under the by-id tie-break.
    if (best.size() == k && best.top().first < threshold_quad) {
      done = true;
    } else if (!any_alive) {
      done = true;  // everything seen; heap holds the exact top-k
    }
  }

  // Access-cost accounting (docs/OBSERVABILITY.md): the counters mirror
  // the result fields so instrumented runs expose Section 6's cost measure
  // without threading the result through the caller.
  span.SetItems(result.sorted_accesses + result.random_accesses);
  if (obs::Enabled()) {
    RANKTIES_OBS_COUNT("access.ta.sorted_accesses", result.sorted_accesses);
    RANKTIES_OBS_COUNT("access.ta.random_accesses", result.random_accesses);
    std::int64_t candidates = 0;
    for (std::size_t e = 0; e < n; ++e) candidates += scored[e] ? 1 : 0;
    RANKTIES_OBS_RECORD("access.ta.candidates", candidates);
  }
  RANKTIES_FLIGHT(obs::FlightEventId::kTaRun,
                  static_cast<std::int64_t>(k), result.sorted_accesses,
                  result.random_accesses);

  // Drain the heap, best last -> reverse.
  std::vector<Entry> entries;
  while (!best.empty()) {
    entries.push_back(best.top());
    best.pop();
  }
  std::reverse(entries.begin(), entries.end());
  for (const auto& [score, e] : entries) {
    result.top.push_back(e);
    result.scores_quad.push_back(score);
  }
  return result;
}

}  // namespace rankties
