#ifndef RANKTIES_ACCESS_ACCESS_MODEL_H_
#define RANKTIES_ACCESS_ACCESS_MODEL_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "rank/bucket_order.h"

namespace rankties {

/// One sorted access: the next element of a ranked list together with its
/// exact (doubled) position in that list.
struct SortedAccess {
  ElementId element = -1;
  std::int64_t twice_position = 0;
};

/// The sequential (sorted) access model of Fagin–Lotem–Naor [12] used by
/// the paper's database-friendly aggregation (§6): a ranked list can only
/// be read front-to-back, one element per access; no random access. Access
/// counts are the cost measure.
class SortedAccessSource {
 public:
  virtual ~SortedAccessSource() = default;

  /// Domain size of the underlying ranking.
  virtual std::size_t n() const = 0;

  /// Returns the next element in ranked order, or nullopt when exhausted.
  /// Elements within a tied bucket are surfaced in ascending element id
  /// (deterministic; any order is legal in the model).
  virtual std::optional<SortedAccess> Next() = 0;

  /// Number of Next() calls that returned an element so far.
  virtual std::int64_t accesses() const = 0;

  /// Rewinds to the front and resets the access counter.
  virtual void Reset() = 0;
};

/// A SortedAccessSource over an in-memory BucketOrder.
class BucketOrderSource : public SortedAccessSource {
 public:
  /// Keeps a reference; `order` must outlive the source.
  explicit BucketOrderSource(const BucketOrder& order);

  std::size_t n() const override { return order_.n(); }
  std::optional<SortedAccess> Next() override;
  std::int64_t accesses() const override { return accesses_; }
  void Reset() override;

 private:
  const BucketOrder& order_;
  std::size_t bucket_ = 0;
  std::size_t offset_ = 0;
  std::int64_t accesses_ = 0;
};

/// Convenience: wraps each bucket order in a BucketOrderSource.
/// The orders must outlive the returned sources.
std::vector<std::unique_ptr<SortedAccessSource>> MakeSources(
    const std::vector<BucketOrder>& orders);

}  // namespace rankties

#endif  // RANKTIES_ACCESS_ACCESS_MODEL_H_
