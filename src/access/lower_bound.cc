#include "access/lower_bound.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/contracts.h"

namespace rankties {

std::int64_t AccessDepth(const BucketOrder& order, ElementId e) {
  const std::size_t b = static_cast<std::size_t>(order.BucketOf(e));
  std::int64_t before = 0;
  for (std::size_t i = 0; i < b; ++i) {
    before += static_cast<std::int64_t>(order.bucket(i).size());
  }
  const std::vector<ElementId>& bucket = order.bucket(b);
  const auto it = std::lower_bound(bucket.begin(), bucket.end(), e);
  RANKTIES_DCHECK(it != bucket.end() && *it == e);
  return before + (it - bucket.begin()) + 1;
}

std::int64_t CertificateLowerBound(const std::vector<BucketOrder>& inputs,
                                   const std::vector<ElementId>& winners) {
  RANKTIES_OBS_COUNT("access.lower_bound.evaluations", 1);
  const std::size_t m = inputs.size();
  if (m == 0 || winners.empty()) return 0;
  const std::size_t majority = m / 2 + 1;
  std::vector<std::int64_t> required(m, 0);
  std::vector<std::pair<std::int64_t, std::size_t>> depths(m);
  for (ElementId w : winners) {
    for (std::size_t i = 0; i < m; ++i) {
      depths[i] = {AccessDepth(inputs[i], w), i};
    }
    std::sort(depths.begin(), depths.end());
    for (std::size_t r = 0; r < majority; ++r) {
      required[depths[r].second] =
          std::max(required[depths[r].second], depths[r].first);
    }
  }
  std::int64_t bound = 0;
  for (std::int64_t d : required) bound += d;
  return bound;
}

}  // namespace rankties
