#ifndef RANKTIES_OBS_EXPORT_H_
#define RANKTIES_OBS_EXPORT_H_

/// \file
/// Export formats for the obs subsystem. Four documents, one source of
/// truth (the Registry / recorders), no external dependencies:
///
///  * `rankties-trace-v1` JSON — spans + a metrics snapshot, the native
///    format (shape below).
///  * Bare metrics JSON — the `{"counters": ..., "histograms": ...}`
///    object on its own, embedded by the bench harnesses and written by
///    `rank_tool --metrics-out`.
///  * OpenMetrics text exposition — counters, histograms, query-unit
///    stats and SLO check results for Prometheus-family scrapers. Metric
///    names here are fixed families (`rankties_counter_total`, ...) with
///    the rankties-side name carried in a `name`/`unit` label, so
///    arbitrary registry names (dots, quotes, UTF-8) survive via label
///    escaping instead of being mangled into the metric identifier.
///    Terminated by `# EOF` per the OpenMetrics spec;
///    tools/check_openmetrics.py validates the output in CI.
///  * Chrome trace-event / Perfetto JSON — the span recorder as "X"
///    (complete) events with microsecond timestamps; loads directly in
///    ui.perfetto.dev and chrome://tracing.
///
/// Plus `rankties-flight-v1` JSON for the flight recorder (timestamped
/// structured events, newest-last).
///
/// rankties-trace-v1 shape:
///   {"schema": "rankties-trace-v1",
///    "clock": "steady_ns",
///    "dropped_spans": 0,
///    "spans": [{"id": 1, "parent": 0, "name": "...", "thread": 0,
///               "start_ns": ..., "dur_ns": ..., "items": ...}, ...],
///    "metrics": {"counters": {"name": value, ...},
///                "histograms": {"name": {"count": c, "sum": s,
///                                        "mean": m,
///                                        "buckets": [[upper, count],
///                                                    ...]}, ...}}}
/// `items` is omitted when unset; histogram `buckets` lists only non-empty
/// buckets as [inclusive upper edge, count] pairs. Consumers must ignore
/// unknown keys (the v1 contract), so fields can be added without a bump.
///
/// With RANKTIES_OBS_DISABLED every export stays a valid (empty) document,
/// keeping the rank_tool flags functional in every build.

#include <string>

namespace rankties {
namespace obs {

/// The `{"counters": ..., "histograms": ...}` object for the current
/// Registry contents.
std::string MetricsJsonObject();

/// The full rankties-trace-v1 document for the recorder + Registry.
std::string TraceJsonDocument();

/// OpenMetrics text exposition of counters, histograms, query units and
/// SLO checks (see file comment for the naming scheme).
std::string OpenMetricsText();

/// Chrome trace-event JSON of the span recorder ("X" complete events,
/// microsecond timestamps); loads in Perfetto and chrome://tracing.
std::string PerfettoJsonDocument();

/// rankties-flight-v1 JSON of the flight recorder's drained events.
std::string FlightJsonDocument();

/// Write helpers: each renders its document and writes it to `path`,
/// returning false on I/O failure (callers must propagate — rank_tool
/// exits nonzero on a failed write).
bool WriteTraceJson(const std::string& path);
bool WriteMetricsJson(const std::string& path);
bool WriteOpenMetrics(const std::string& path);
bool WritePerfettoJson(const std::string& path);
bool WriteFlightJson(const std::string& path);

}  // namespace obs
}  // namespace rankties

#endif  // RANKTIES_OBS_EXPORT_H_
