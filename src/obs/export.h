#ifndef RANKTIES_OBS_EXPORT_H_
#define RANKTIES_OBS_EXPORT_H_

/// \file
/// Structured JSON export of the obs subsystem: the `rankties-trace-v1`
/// document (spans + a metrics snapshot) and the bare metrics object the
/// bench harnesses embed in their rankties-bench-v2 output.
///
/// rankties-trace-v1 shape:
///   {"schema": "rankties-trace-v1",
///    "clock": "steady_ns",
///    "dropped_spans": 0,
///    "spans": [{"id": 1, "parent": 0, "name": "...", "thread": 0,
///               "start_ns": ..., "dur_ns": ..., "items": ...}, ...],
///    "metrics": {"counters": {"name": value, ...},
///                "histograms": {"name": {"count": c, "sum": s,
///                                        "mean": m,
///                                        "buckets": [[upper, count],
///                                                    ...]}, ...}}}
/// `items` is omitted when unset; histogram `buckets` lists only non-empty
/// buckets as [inclusive upper edge, count] pairs. Consumers must ignore
/// unknown keys (the v1 contract), so fields can be added without a bump.
///
/// With RANKTIES_OBS_DISABLED both exports stay valid JSON with empty
/// spans/metrics, keeping `rank_tool --trace` functional in every build.

#include <string>

namespace rankties {
namespace obs {

/// The `{"counters": ..., "histograms": ...}` object for the current
/// Registry contents.
std::string MetricsJsonObject();

/// The full rankties-trace-v1 document for the recorder + Registry.
std::string TraceJsonDocument();

/// Writes TraceJsonDocument() to `path`. Returns false on I/O failure.
bool WriteTraceJson(const std::string& path);

}  // namespace obs
}  // namespace rankties

#endif  // RANKTIES_OBS_EXPORT_H_
