#ifndef RANKTIES_OBS_OBS_H_
#define RANKTIES_OBS_OBS_H_

/// \file
/// Umbrella header for the observability subsystem plus the hot-path
/// helpers the instrumented layers use:
///
///   RANKTIES_OBS_COUNT("access.ta.sorted_accesses", n);
///   RANKTIES_OBS_RECORD("threadpool.queue_depth", depth);
///   obs::TraceSpan span("batch.distance_matrix");
///   span.SetItems(pairs);
///
/// The macros cache the registry handle in a function-local static, so the
/// name lookup happens once per call site; afterwards the cost is one
/// relaxed load + branch (disabled) or one sharded relaxed fetch_add
/// (enabled). With RANKTIES_OBS_DISABLED everything collapses to empty
/// inline functions the optimizer deletes.

#include "obs/export.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/slo.h"
#include "obs/trace.h"

#ifndef RANKTIES_OBS_DISABLED

#define RANKTIES_OBS_COUNT(name, delta)                           \
  do {                                                            \
    static ::rankties::obs::Counter* const rankties_obs_handle =  \
        ::rankties::obs::GetCounter(name);                        \
    rankties_obs_handle->Add(delta);                              \
  } while (0)

#define RANKTIES_OBS_RECORD(name, value)                           \
  do {                                                             \
    static ::rankties::obs::Histogram* const rankties_obs_handle = \
        ::rankties::obs::GetHistogram(name);                       \
    rankties_obs_handle->Record(value);                            \
  } while (0)

#else  // RANKTIES_OBS_DISABLED

namespace rankties {
namespace obs {
namespace internal {
// Arguments are evaluated (cheap locals at every call site) and then dead.
inline void NoopCount(const char*, std::int64_t) {}
}  // namespace internal
}  // namespace obs
}  // namespace rankties

#define RANKTIES_OBS_COUNT(name, delta) \
  ::rankties::obs::internal::NoopCount(name, delta)
#define RANKTIES_OBS_RECORD(name, value) \
  ::rankties::obs::internal::NoopCount(name, value)

#endif  // RANKTIES_OBS_DISABLED

namespace rankties {
namespace obs {

#ifndef RANKTIES_OBS_DISABLED

/// Times a scope into a histogram (nanoseconds), e.g. one batch-engine
/// shard. Inert — no clock reads — unless metrics are enabled at
/// construction time.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram* histogram)
      : histogram_(Enabled() ? histogram : nullptr) {
    if (histogram_ != nullptr) start_ns_ = MonotonicNanos();
  }

  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

  ~ScopedHistogramTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(MonotonicNanos() - start_ns_);
    }
  }

 private:
  Histogram* histogram_;
  std::int64_t start_ns_ = 0;
};

#else  // RANKTIES_OBS_DISABLED

class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram*) {}
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;
};

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties

#endif  // RANKTIES_OBS_OBS_H_
