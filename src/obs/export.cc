#include "obs/export.h"

#include <cstdio>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace rankties {
namespace obs {

namespace {

void AppendEscaped(std::string& out, const std::string& raw) {
  for (const char c : raw) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

void AppendInt(std::string& out, std::int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  out += buffer;
}

void AppendNum(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out += buffer;
}

void AppendMetricsObject(std::string& out) {
  const std::vector<CounterSnapshot> counters =
      Registry::Global().CounterSnapshots();
  const std::vector<HistogramSnapshot> histograms =
      Registry::Global().HistogramSnapshots();
  out += "{\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    AppendEscaped(out, counters[i].name);
    out += "\": ";
    AppendInt(out, counters[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i) out += ", ";
    out += "\"";
    AppendEscaped(out, h.name);
    out += "\": {\"count\": ";
    AppendInt(out, h.count);
    out += ", \"sum\": ";
    AppendInt(out, h.sum);
    out += ", \"mean\": ";
    AppendNum(out, h.Mean());
    out += ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "[";
      AppendInt(out, Histogram::BucketUpperEdge(b));
      out += ", ";
      AppendInt(out, h.buckets[b]);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
}

}  // namespace

std::string MetricsJsonObject() {
  std::string out;
  AppendMetricsObject(out);
  return out;
}

std::string TraceJsonDocument() {
  const TraceRecorder& recorder = TraceRecorder::Global();
  const std::vector<SpanRecord> spans = recorder.Snapshot();
  std::string out;
  out.reserve(128 + spans.size() * 96);
  out += "{\"schema\": \"rankties-trace-v1\", \"clock\": \"steady_ns\", ";
  out += "\"dropped_spans\": ";
  AppendInt(out, recorder.dropped());
  out += ", \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i) out += ", ";
    out += "\n  {\"id\": ";
    AppendInt(out, static_cast<std::int64_t>(span.id));
    out += ", \"parent\": ";
    AppendInt(out, static_cast<std::int64_t>(span.parent));
    out += ", \"name\": \"";
    AppendEscaped(out, span.name);
    out += "\", \"thread\": ";
    AppendInt(out, static_cast<std::int64_t>(span.thread));
    out += ", \"start_ns\": ";
    AppendInt(out, span.start_ns);
    out += ", \"dur_ns\": ";
    AppendInt(out, span.duration_ns);
    if (span.items >= 0) {
      out += ", \"items\": ";
      AppendInt(out, span.items);
    }
    out += "}";
  }
  out += "],\n \"metrics\": ";
  AppendMetricsObject(out);
  out += "}\n";
  return out;
}

bool WriteTraceJson(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::string document = TraceJsonDocument();
  const std::size_t written =
      std::fwrite(document.data(), 1, document.size(), out);
  const bool ok = written == document.size() && std::fclose(out) == 0;
  if (!ok && written != document.size()) std::fclose(out);
  return ok;
}

}  // namespace obs
}  // namespace rankties
