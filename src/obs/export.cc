#include "obs/export.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace rankties {
namespace obs {

namespace {

/// JSON string-body escaping: the two mandatory escapes, the common
/// whitespace shorthands, and \u00XX for the remaining control bytes.
/// Everything else (including multi-byte UTF-8) passes through verbatim.
void AppendEscaped(std::string& out, const std::string& raw) {
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
}

void AppendInt(std::string& out, std::int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld",
                static_cast<long long>(value));
  out += buffer;
}

void AppendNum(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  out += buffer;
}

void AppendMetricsObject(std::string& out) {
  const std::vector<CounterSnapshot> counters =
      Registry::Global().CounterSnapshots();
  const std::vector<HistogramSnapshot> histograms =
      Registry::Global().HistogramSnapshots();
  out += "{\"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out += ", ";
    out += "\"";
    AppendEscaped(out, counters[i].name);
    out += "\": ";
    AppendInt(out, counters[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i];
    if (i) out += ", ";
    out += "\"";
    AppendEscaped(out, h.name);
    out += "\": {\"count\": ";
    AppendInt(out, h.count);
    out += ", \"sum\": ";
    AppendInt(out, h.sum);
    out += ", \"mean\": ";
    AppendNum(out, h.Mean());
    out += ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      out += "[";
      AppendInt(out, Histogram::BucketUpperEdge(b));
      out += ", ";
      AppendInt(out, h.buckets[b]);
      out += "]";
    }
    out += "]}";
  }
  out += "}}";
}

/// OpenMetrics label-value escaping: backslash, double quote, newline.
void AppendOmLabelValue(std::string& out, const std::string& raw) {
  for (const char c : raw) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
}

/// One `family{label="value", ...} number` exposition line.
void AppendOmSample(
    std::string& out, const char* family,
    const std::vector<std::pair<const char*, std::string>>& labels,
    std::int64_t value) {
  out += family;
  out += "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i) out += ",";
    out += labels[i].first;
    out += "=\"";
    AppendOmLabelValue(out, labels[i].second);
    out += "\"";
  }
  out += "} ";
  AppendInt(out, value);
  out += "\n";
}

/// Cumulative histogram exposition under `family` with an extra
/// identifying label (name= or unit=): _bucket lines ending at le="+Inf",
/// then _sum and _count.
void AppendOmHistogram(
    std::string& out, const char* family, const char* id_label,
    const std::string& id_value,
    const std::array<std::int64_t, kHistogramBuckets>& buckets,
    std::int64_t count, std::int64_t sum) {
  std::int64_t cumulative = 0;
  std::string bucket_family = std::string(family) + "_bucket";
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;  // sparse: only buckets that moved
    cumulative += buckets[b];
    char le[32];
    std::snprintf(le, sizeof(le), "%lld",
                  static_cast<long long>(Histogram::BucketUpperEdge(b)));
    AppendOmSample(out, bucket_family.c_str(),
                   {{id_label, id_value}, {"le", le}}, cumulative);
  }
  AppendOmSample(out, bucket_family.c_str(),
                 {{id_label, id_value}, {"le", "+Inf"}}, count);
  AppendOmSample(out, (std::string(family) + "_sum").c_str(),
                 {{id_label, id_value}}, sum);
  AppendOmSample(out, (std::string(family) + "_count").c_str(),
                 {{id_label, id_value}}, count);
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), out);
  if (written != content.size()) {
    std::fclose(out);
    return false;
  }
  return std::fclose(out) == 0;
}

}  // namespace

std::string MetricsJsonObject() {
  std::string out;
  AppendMetricsObject(out);
  return out;
}

std::string TraceJsonDocument() {
  const TraceRecorder& recorder = TraceRecorder::Global();
  const std::vector<SpanRecord> spans = recorder.Snapshot();
  std::string out;
  out.reserve(128 + spans.size() * 96);
  out += "{\"schema\": \"rankties-trace-v1\", \"clock\": \"steady_ns\", ";
  out += "\"dropped_spans\": ";
  AppendInt(out, recorder.dropped());
  out += ", \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i) out += ", ";
    out += "\n  {\"id\": ";
    AppendInt(out, static_cast<std::int64_t>(span.id));
    out += ", \"parent\": ";
    AppendInt(out, static_cast<std::int64_t>(span.parent));
    out += ", \"name\": \"";
    AppendEscaped(out, span.name);
    out += "\", \"thread\": ";
    AppendInt(out, static_cast<std::int64_t>(span.thread));
    out += ", \"start_ns\": ";
    AppendInt(out, span.start_ns);
    out += ", \"dur_ns\": ";
    AppendInt(out, span.duration_ns);
    if (span.items >= 0) {
      out += ", \"items\": ";
      AppendInt(out, span.items);
    }
    out += "}";
  }
  out += "],\n \"metrics\": ";
  AppendMetricsObject(out);
  out += "}\n";
  return out;
}

std::string OpenMetricsText() {
  std::string out;
  out += "# TYPE rankties_counter counter\n";
  out += "# HELP rankties_counter Registry counters; the rankties name is "
         "the name label.\n";
  for (const CounterSnapshot& counter :
       Registry::Global().CounterSnapshots()) {
    AppendOmSample(out, "rankties_counter_total", {{"name", counter.name}},
                   counter.value);
  }
  out += "# TYPE rankties_histogram histogram\n";
  out += "# HELP rankties_histogram Registry histograms (log2 buckets, "
         "inclusive integer upper edges).\n";
  for (const HistogramSnapshot& histogram :
       Registry::Global().HistogramSnapshots()) {
    AppendOmHistogram(out, "rankties_histogram", "name", histogram.name,
                      histogram.buckets, histogram.count, histogram.sum);
  }
  const std::vector<QueryUnitSnapshot> units =
      SloRegistry::Global().UnitSnapshots();
  out += "# TYPE rankties_query_unit_queries counter\n";
  for (const QueryUnitSnapshot& unit : units) {
    AppendOmSample(out, "rankties_query_unit_queries_total",
                   {{"unit", unit.unit}}, unit.queries);
  }
  out += "# TYPE rankties_query_unit_latency_ns histogram\n";
  for (const QueryUnitSnapshot& unit : units) {
    AppendOmHistogram(out, "rankties_query_unit_latency_ns", "unit",
                      unit.unit, unit.latency_buckets, unit.queries,
                      unit.latency_sum_ns);
  }
  out += "# TYPE rankties_query_unit_cost counter\n";
  out += "# HELP rankties_query_unit_cost Counter increments attributed to "
         "the unit (Section 6 access costs and friends).\n";
  out += "# TYPE rankties_query_unit_cost_max gauge\n";
  for (const QueryUnitSnapshot& unit : units) {
    for (const QueryUnitCounterCost& cost : unit.costs) {
      AppendOmSample(out, "rankties_query_unit_cost_total",
                     {{"unit", unit.unit}, {"counter", cost.counter}},
                     cost.total);
      AppendOmSample(out, "rankties_query_unit_cost_max",
                     {{"unit", unit.unit}, {"counter", cost.counter}},
                     cost.max_per_query);
    }
  }
  out += "# TYPE rankties_slo_ok gauge\n";
  out += "# HELP rankties_slo_ok 1 when the declared SLO holds, 0 when "
         "violated.\n";
  out += "# TYPE rankties_slo_observed gauge\n";
  out += "# TYPE rankties_slo_limit gauge\n";
  for (const SloCheckResult& result : SloRegistry::Global().Evaluate()) {
    const std::vector<std::pair<const char*, std::string>> labels = {
        {"unit", result.unit}, {"check", result.check}};
    AppendOmSample(out, "rankties_slo_ok", labels, result.ok ? 1 : 0);
    AppendOmSample(out, "rankties_slo_observed", labels,
                   static_cast<std::int64_t>(result.observed));
    AppendOmSample(out, "rankties_slo_limit", labels,
                   static_cast<std::int64_t>(result.limit));
  }
  out += "# EOF\n";
  return out;
}

std::string PerfettoJsonDocument() {
  const std::vector<SpanRecord> spans = TraceRecorder::Global().Snapshot();
  std::string out;
  out.reserve(192 + spans.size() * 128);
  out += "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n";
  out += "  {\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
         "\"args\": {\"name\": \"rankties\"}}";
  for (const SpanRecord& span : spans) {
    out += ",\n  {\"ph\": \"X\", \"cat\": \"rankties\", \"pid\": 1, ";
    out += "\"tid\": ";
    AppendInt(out, static_cast<std::int64_t>(span.thread));
    out += ", \"name\": \"";
    AppendEscaped(out, span.name);
    // Trace-event timestamps are microseconds; doubles keep sub-us
    // resolution (53 bits cover any realistic steady-clock reading).
    out += "\", \"ts\": ";
    AppendNum(out, static_cast<double>(span.start_ns) * 1e-3);
    out += ", \"dur\": ";
    AppendNum(out, static_cast<double>(span.duration_ns) * 1e-3);
    out += ", \"args\": {\"id\": ";
    AppendInt(out, static_cast<std::int64_t>(span.id));
    out += ", \"parent\": ";
    AppendInt(out, static_cast<std::int64_t>(span.parent));
    if (span.items >= 0) {
      out += ", \"items\": ";
      AppendInt(out, span.items);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

std::string FlightJsonDocument() {
  const FlightRecorder& recorder = FlightRecorder::Global();
  const std::vector<FlightEvent> events = recorder.Drain();
  std::string out;
  out.reserve(160 + events.size() * 80);
  out += "{\"schema\": \"rankties-flight-v1\", \"clock\": \"steady_ns\", ";
  out += "\"dropped\": ";
  AppendInt(out, recorder.dropped());
  out += ", \"overwritten\": ";
  AppendInt(out, recorder.overwritten());
  out += ", \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& event = events[i];
    if (i) out += ",";
    out += "\n  {\"ts_ns\": ";
    AppendInt(out, event.ts_ns);
    out += ", \"thread\": ";
    AppendInt(out, static_cast<std::int64_t>(event.thread));
    out += ", \"event\": \"";
    AppendEscaped(out,
                  FlightEventName(static_cast<FlightEventId>(event.event)));
    out += "\", \"args\": [";
    AppendInt(out, event.args[0]);
    out += ", ";
    AppendInt(out, event.args[1]);
    out += ", ";
    AppendInt(out, event.args[2]);
    out += "]}";
  }
  out += "\n]}\n";
  return out;
}

bool WriteTraceJson(const std::string& path) {
  return WriteTextFile(path, TraceJsonDocument());
}

bool WriteMetricsJson(const std::string& path) {
  return WriteTextFile(path, MetricsJsonObject() + "\n");
}

bool WriteOpenMetrics(const std::string& path) {
  return WriteTextFile(path, OpenMetricsText());
}

bool WritePerfettoJson(const std::string& path) {
  return WriteTextFile(path, PerfettoJsonDocument());
}

bool WriteFlightJson(const std::string& path) {
  return WriteTextFile(path, FlightJsonDocument());
}

}  // namespace obs
}  // namespace rankties
