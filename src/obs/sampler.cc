#include "obs/sampler.h"

#include <algorithm>
#include <utility>

#include "util/stopwatch.h"

namespace rankties {
namespace obs {

#ifndef RANKTIES_OBS_DISABLED

namespace {

RegistrySample TakeSample() {
  RegistrySample sample;
  sample.ts_ns = MonotonicNanos();
  sample.counters = Registry::Global().CounterSnapshots();
  sample.histograms = Registry::Global().HistogramSnapshots();
  return sample;
}

}  // namespace

Sampler& Sampler::Global() {
  // Leaked on purpose: see the class comment. Stop() must still be called
  // before exit when Start() was — ~thread on a joinable worker terminates.
  static Sampler* const sampler = new Sampler();
  return *sampler;
}

void Sampler::Start(std::chrono::milliseconds period, std::size_t capacity) {
  MutexLock lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  capacity_ = std::max<std::size_t>(capacity, 2);
  // Spawned with mu_ held so the handle hand-off to Stop() is
  // synchronized; RunLoop's first action is to take mu_ itself, so the
  // new thread just blocks until this Start returns.
  worker_ = std::thread([this, period] { RunLoop(period); });
}

void Sampler::Stop() {
  std::thread worker;
  {
    MutexLock lock(mu_);
    // stop_requested_ also covers a second Stop racing the first: the
    // loser returns instead of joining a moved-from handle.
    if (!running_ || stop_requested_) return;
    stop_requested_ = true;
    worker = std::move(worker_);
  }
  stop_cv_.NotifyAll();
  worker.join();
  MutexLock lock(mu_);
  running_ = false;
}

bool Sampler::running() const {
  MutexLock lock(mu_);
  return running_;
}

void Sampler::SampleNow() { Append(TakeSample()); }

void Sampler::RunLoop(std::chrono::milliseconds period) {
  for (;;) {
    {
      MutexLock lock(mu_);
      // A timeout means take the next periodic sample; a notification
      // means Stop() set stop_requested_ (re-checked against spurious
      // wakeups).
      while (!stop_requested_) {
        if (stop_cv_.WaitFor(lock, period)) break;
      }
      if (stop_requested_) break;
    }
    Append(TakeSample());
  }
  // Final sample: a Start/Stop window always captures its end state.
  Append(TakeSample());
}

void Sampler::Append(RegistrySample sample) {
  MutexLock lock(mu_);
  samples_.push_back(std::move(sample));
  while (samples_.size() > capacity_) samples_.pop_front();
}

std::vector<RegistrySample> Sampler::Series() const {
  MutexLock lock(mu_);
  return std::vector<RegistrySample>(samples_.begin(), samples_.end());
}

std::vector<IntervalDeltas> Sampler::Deltas() const {
  const std::vector<RegistrySample> series = Series();
  std::vector<IntervalDeltas> intervals;
  if (series.size() < 2) return intervals;
  intervals.reserve(series.size() - 1);
  for (std::size_t i = 1; i < series.size(); ++i) {
    const RegistrySample& prev = series[i - 1];
    const RegistrySample& next = series[i];
    IntervalDeltas interval;
    interval.start_ns = prev.ts_ns;
    interval.end_ns = next.ts_ns;
    const double seconds =
        static_cast<double>(next.ts_ns - prev.ts_ns) * 1e-9;
    // Both snapshot vectors are name-sorted; merge-walk them. A counter
    // absent from `prev` (registered mid-series) deltas against 0.
    std::size_t p = 0;
    for (const CounterSnapshot& counter : next.counters) {
      while (p < prev.counters.size() &&
             prev.counters[p].name < counter.name) {
        ++p;
      }
      const std::int64_t before =
          (p < prev.counters.size() && prev.counters[p].name == counter.name)
              ? prev.counters[p].value
              : 0;
      CounterDelta delta;
      delta.name = counter.name;
      delta.delta = counter.value - before;
      delta.rate_per_sec =
          seconds > 0.0 ? static_cast<double>(delta.delta) / seconds : 0.0;
      interval.counters.push_back(std::move(delta));
    }
    intervals.push_back(std::move(interval));
  }
  return intervals;
}

void Sampler::Clear() {
  MutexLock lock(mu_);
  samples_.clear();
}

#else  // RANKTIES_OBS_DISABLED

Sampler& Sampler::Global() {
  static Sampler* const sampler = new Sampler();
  return *sampler;
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties
