#ifndef RANKTIES_OBS_SAMPLER_H_
#define RANKTIES_OBS_SAMPLER_H_

/// \file
/// Background time-series sampler over the metric Registry.
///
/// Counters and histograms are process-lifetime aggregates; the Sampler
/// turns them into a bounded in-memory time series by snapshotting the
/// Registry on a fixed period from one background thread:
///
///   obs::Sampler::Global().Start(std::chrono::milliseconds(100));
///   ... workload ...
///   obs::Sampler::Global().Stop();          // takes one final sample
///   for (const auto& d : obs::Sampler::Global().Deltas()) { ... }
///
/// The series is a ring of at most `capacity` samples (oldest evicted), so
/// memory stays bounded no matter how long sampling runs. Deltas() derives
/// per-interval counter increments and rates (per second) from consecutive
/// samples on read; histograms are carried as cumulative snapshots.
/// SampleNow() takes a deterministic sample without the background thread,
/// which is what tests use.
///
/// With RANKTIES_OBS_DISABLED everything collapses to empty inline stubs.

#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace rankties {
namespace obs {

/// One point of the time series: a full Registry snapshot.
struct RegistrySample {
  std::int64_t ts_ns = 0;  ///< MonotonicNanos() at snapshot time
  std::vector<CounterSnapshot> counters;      ///< sorted by name
  std::vector<HistogramSnapshot> histograms;  ///< sorted by name
};

/// Per-counter increment over one sampling interval.
struct CounterDelta {
  std::string name;
  std::int64_t delta = 0;
  double rate_per_sec = 0.0;  ///< delta / interval (0 on a zero interval)
};

/// One interval between two consecutive samples.
struct IntervalDeltas {
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::vector<CounterDelta> counters;  ///< sorted by name
};

#ifndef RANKTIES_OBS_DISABLED

class Sampler {
 public:
  /// Default ring capacity; at ~100 metrics a full ring stays in the
  /// low megabytes.
  static constexpr std::size_t kDefaultCapacity = 256;

  /// The singleton. Leaked on purpose, like the metric Registry.
  static Sampler& Global();

  /// Starts the background thread sampling every `period`. No-op when
  /// already running. `capacity` bounds the ring (minimum 2, so Deltas()
  /// always has an interval to report).
  void Start(std::chrono::milliseconds period,
             std::size_t capacity = kDefaultCapacity) RANKTIES_EXCLUDES(mu_);

  /// Stops and joins the background thread, taking one final sample so a
  /// Start/Stop window always captures its end state. No-op when stopped.
  void Stop() RANKTIES_EXCLUDES(mu_);

  bool running() const RANKTIES_EXCLUDES(mu_);

  /// Takes one sample synchronously on the calling thread (tests; safe
  /// with or without the background thread).
  void SampleNow() RANKTIES_EXCLUDES(mu_);

  /// The current series, oldest first.
  std::vector<RegistrySample> Series() const RANKTIES_EXCLUDES(mu_);

  /// Per-interval counter deltas and rates between consecutive samples
  /// (size = max(0, samples - 1)). Counters that first appear mid-series
  /// delta against 0.
  std::vector<IntervalDeltas> Deltas() const RANKTIES_EXCLUDES(mu_);

  /// Drops every sample (tests; the background thread keeps running).
  void Clear() RANKTIES_EXCLUDES(mu_);

 private:
  Sampler() = default;

  void Append(RegistrySample sample) RANKTIES_EXCLUDES(mu_);
  void RunLoop(std::chrono::milliseconds period) RANKTIES_EXCLUDES(mu_);

  mutable Mutex mu_{"obs.sampler"};
  CondVar stop_cv_;
  bool stop_requested_ RANKTIES_GUARDED_BY(mu_) = false;
  bool running_ RANKTIES_GUARDED_BY(mu_) = false;
  std::size_t capacity_ RANKTIES_GUARDED_BY(mu_) = kDefaultCapacity;
  std::deque<RegistrySample> samples_ RANKTIES_GUARDED_BY(mu_);
  // Joinable exactly while the loop runs; spawned by Start and moved out
  // by Stop under mu_ — the handle itself is guarded state (an earlier
  // revision assigned it with mu_ released, racing Start against Stop).
  std::thread worker_ RANKTIES_GUARDED_BY(mu_);
};

#else  // RANKTIES_OBS_DISABLED

class Sampler {
 public:
  static constexpr std::size_t kDefaultCapacity = 0;
  static Sampler& Global();
  void Start(std::chrono::milliseconds, std::size_t = 0) {}
  void Stop() {}
  bool running() const { return false; }
  void SampleNow() {}
  std::vector<RegistrySample> Series() const { return {}; }
  std::vector<IntervalDeltas> Deltas() const { return {}; }
  void Clear() {}
};

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties

#endif  // RANKTIES_OBS_SAMPLER_H_
