#include "obs/flight.h"

#include <algorithm>
#include <cstdio>

#include "util/contracts.h"

namespace rankties {
namespace obs {

const char* FlightEventName(FlightEventId id) {
  switch (id) {
    case FlightEventId::kNone:
      return "none";
    case FlightEventId::kParallelFor:
      return "threadpool.parallel_for";
    case FlightEventId::kBatchMatrix:
      return "batch.distance_matrix";
    case FlightEventId::kBatchDistancesToAll:
      return "batch.distances_to_all";
    case FlightEventId::kBatchBestOf:
      return "batch.best_of_candidates";
    case FlightEventId::kIncrementalMove:
      return "incremental.move";
    case FlightEventId::kIncrementalReplace:
      return "incremental.replace_list";
    case FlightEventId::kOnlineMedianAdd:
      return "online_median.add_voter";
    case FlightEventId::kOnlineMedianUpdate:
      return "online_median.update_voter";
    case FlightEventId::kOnlineMedianRemove:
      return "online_median.remove_voter";
    case FlightEventId::kTaRun:
      return "access.ta.run";
    case FlightEventId::kNraRun:
      return "access.nra.run";
    case FlightEventId::kMedrankRun:
      return "access.medrank.run";
    case FlightEventId::kMedrankStreamWinner:
      return "access.medrank_stream.winner";
    case FlightEventId::kQueryUnitBegin:
      return "slo.query_unit_begin";
    case FlightEventId::kQueryUnitEnd:
      return "slo.query_unit_end";
    case FlightEventId::kCount:
      break;
  }
  return "unknown";
}

#ifndef RANKTIES_OBS_DISABLED

namespace {

// Dump hook for the contracts layer: bounded, stderr-only, installed on
// the first SetEnabled(true).
void FlightFailureHook() {
  FlightRecorder::Global().DumpToStderr();
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  // Leaked on purpose: see the class comment.
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

void FlightRecorder::SetEnabled(bool enabled) {
  if (enabled) {
    // Install-once: racing enables both store the same hook, and a user
    // hook installed later deliberately wins (SetFailureHook replaces).
    static const bool hook_installed = [] {
      contracts_internal::SetFailureHook(&FlightFailureHook);
      return true;
    }();
    (void)hook_installed;
  }
  enabled_.store(enabled, std::memory_order_relaxed);
}

FlightRecorder::ThreadRing* FlightRecorder::RingForThisThread() {
  thread_local ThreadRing* t_ring = [this]() -> ThreadRing* {
    MutexLock lock(rings_mu_);
    if (rings_.size() >= kMaxThreads) return nullptr;
    auto* ring = new ThreadRing(static_cast<std::uint32_t>(rings_.size()));
    rings_.push_back(ring);
    return ring;
  }();
  return t_ring;
}

void FlightRecorder::Record(FlightEventId id, std::int64_t a0,
                            std::int64_t a1, std::int64_t a2) {
  if (!enabled()) return;
  ThreadRing* ring = RingForThisThread();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[head % kEventsPerThread];
  slot.ts_ns.store(MonotonicNanos(), std::memory_order_relaxed);
  slot.event.store(static_cast<std::uint32_t>(id),
                   std::memory_order_relaxed);
  slot.a0.store(a0, std::memory_order_relaxed);
  slot.a1.store(a1, std::memory_order_relaxed);
  slot.a2.store(a2, std::memory_order_relaxed);
  // Publish after the payload so a drain at head h sees complete events
  // below h (only a wrap-around overwrite can tear).
  ring->head.store(head + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Drain() const {
  std::vector<FlightEvent> events;
  MutexLock lock(rings_mu_);
  for (const ThreadRing* ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t live =
        std::min<std::uint64_t>(head, kEventsPerThread);
    for (std::uint64_t i = head - live; i < head; ++i) {
      const Slot& slot = ring->slots[i % kEventsPerThread];
      FlightEvent event;
      event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      event.event = slot.event.load(std::memory_order_relaxed);
      event.thread = ring->thread_index;
      event.args = {slot.a0.load(std::memory_order_relaxed),
                    slot.a1.load(std::memory_order_relaxed),
                    slot.a2.load(std::memory_order_relaxed)};
      events.push_back(event);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const FlightEvent& a, const FlightEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

std::int64_t FlightRecorder::overwritten() const {
  std::int64_t total = 0;
  MutexLock lock(rings_mu_);
  for (const ThreadRing* ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    if (head > kEventsPerThread) {
      total += static_cast<std::int64_t>(head - kEventsPerThread);
    }
  }
  return total;
}

void FlightRecorder::Clear() {
  MutexLock lock(rings_mu_);
  for (ThreadRing* ring : rings_) {
    ring->head.store(0, std::memory_order_release);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void FlightRecorder::DumpToStderr(std::size_t max_events) const {
  if (max_events == 0) max_events = 64;
  const std::vector<FlightEvent> events = Drain();
  const std::size_t shown = std::min(events.size(), max_events);
  std::fprintf(stderr,
               "rankties: flight recorder post-mortem: %zu event(s), "
               "showing newest %zu (dropped %lld, overwritten %lld)\n",
               events.size(), shown, static_cast<long long>(dropped()),
               static_cast<long long>(overwritten()));
  for (std::size_t i = events.size() - shown; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    std::fprintf(stderr, "  [%lld ns] t%u %s (%lld, %lld, %lld)\n",
                 static_cast<long long>(e.ts_ns), e.thread,
                 FlightEventName(static_cast<FlightEventId>(e.event)),
                 static_cast<long long>(e.args[0]),
                 static_cast<long long>(e.args[1]),
                 static_cast<long long>(e.args[2]));
  }
}

#else  // RANKTIES_OBS_DISABLED

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const recorder = new FlightRecorder();
  return *recorder;
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties
