#include "obs/metrics.h"

#include <limits>

namespace rankties {
namespace obs {

#ifndef RANKTIES_OBS_DISABLED

namespace internal {

std::atomic<bool> g_enabled{false};

std::uint32_t AssignShardSlot() {
  static std::atomic<std::uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) %
         static_cast<std::uint32_t>(kMetricShards);
}

thread_local CounterSink* t_counter_sink = nullptr;

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

std::int64_t Histogram::BucketUpperEdge(std::size_t b) {
  if (b == 0) return 0;
  if (b >= kHistogramBuckets - 1) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return (std::int64_t{1} << b) - 1;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.name = name_;
  for (const Shard& shard : shards_) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      const std::int64_t c = shard.count[b].load(std::memory_order_relaxed);
      snapshot.buckets[b] += c;
      snapshot.count += c;
    }
    snapshot.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snapshot;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      shard.count[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::Global() {
  // Leaked on purpose: see the class comment.
  static Registry* const registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

std::vector<CounterSnapshot> Registry::CounterSnapshots() const {
  MutexLock lock(mu_);
  std::vector<CounterSnapshot> snapshots;
  snapshots.reserve(counters_.size());
  for (const auto& entry : counters_) {
    snapshots.push_back(CounterSnapshot{entry.first, entry.second->Value()});
  }
  return snapshots;
}

std::vector<HistogramSnapshot> Registry::HistogramSnapshots() const {
  MutexLock lock(mu_);
  std::vector<HistogramSnapshot> snapshots;
  snapshots.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    snapshots.push_back(entry.second->Snapshot());
  }
  return snapshots;
}

void Registry::ResetAll() {
  MutexLock lock(mu_);
  for (const auto& entry : counters_) entry.second->Reset();
  for (const auto& entry : histograms_) entry.second->Reset();
}

#else  // RANKTIES_OBS_DISABLED

Registry& Registry::Global() {
  static Registry* const registry = new Registry();
  return *registry;
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties
