#ifndef RANKTIES_OBS_METRICS_H_
#define RANKTIES_OBS_METRICS_H_

/// \file
/// Runtime metrics for the rankties engines: lock-free sharded counters and
/// fixed log-bucket latency histograms, owned by a process-wide Registry of
/// named handles (src/obs/README: docs/OBSERVABILITY.md has the catalog).
///
/// Cost model:
///  * compiled out — building with -DRANKTIES_OBS_DISABLED reduces every
///    operation to an empty inline function; call sites keep compiling and
///    the optimizer erases them entirely (exactly zero overhead);
///  * runtime-disabled (the default) — Counter::Add / Histogram::Record are
///    one relaxed atomic load and a predicted-not-taken branch;
///  * enabled — a relaxed fetch_add on a per-thread cache-line-padded
///    shard; shards are merged only on read, so concurrent writers never
///    contend on a line and totals are exact.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"

namespace rankties {
namespace obs {

/// Number of power-of-two histogram buckets; bucket b counts values v with
/// BucketIndex(v) == b, i.e. 2^(b-1) <= v < 2^b (bucket 0 takes v <= 0).
inline constexpr std::size_t kHistogramBuckets = 64;

/// Writer shards per metric. Threads hash onto shards round-robin; 16
/// cache lines keep same-shard collisions rare at sane thread counts.
inline constexpr std::size_t kMetricShards = 16;

/// Point-in-time view of one counter.
struct CounterSnapshot {
  std::string name;
  std::int64_t value = 0;
};

/// Point-in-time view of one histogram (merged across shards).
struct HistogramSnapshot {
  std::string name;
  std::int64_t count = 0;  ///< total recorded values
  std::int64_t sum = 0;    ///< sum of recorded values
  std::array<std::int64_t, kHistogramBuckets> buckets{};

  /// Mean of the recorded values (0 when empty).
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

#ifndef RANKTIES_OBS_DISABLED

class Counter;

namespace internal {

extern std::atomic<bool> g_enabled;

/// Stable per-thread shard slot in [0, kMetricShards).
std::uint32_t AssignShardSlot();

inline std::uint32_t ShardSlot() {
  thread_local const std::uint32_t slot = AssignShardSlot();
  return slot;
}

/// Thread-local observer of counter increments, the seam the SLO layer's
/// query units hang off (src/obs/slo.h). When a sink is installed on a
/// thread, every Counter::Add on that thread also reports (counter, delta)
/// to the sink — attribution is exact for work recorded on the calling
/// thread, which covers every headline Section-6 / batch-engine counter.
/// Only the innermost installed sink sees an increment; nesting semantics
/// live in QueryUnitScope.
class CounterSink {
 public:
  virtual ~CounterSink() = default;
  virtual void OnCounterAdd(Counter* counter, std::int64_t delta) = 0;
};

extern thread_local CounterSink* t_counter_sink;

}  // namespace internal

/// True when metric collection is on (off by default; see SetEnabled).
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns metric collection on or off process-wide.
void SetEnabled(bool enabled);

/// Monotonically increasing (well, Add can be negative for accumulated
/// deltas, but the engines only add) sharded counter. Exact under
/// concurrent writers: Value() is the sum of all shards.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(std::int64_t delta) {
    if (!Enabled()) return;
    shards_[internal::ShardSlot()].value.fetch_add(delta,
                                                   std::memory_order_relaxed);
    if (internal::CounterSink* sink = internal::t_counter_sink) {
      sink->OnCounterAdd(this, delta);
    }
  }
  void Increment() { Add(1); }

  /// Merged total across shards.
  std::int64_t Value() const {
    std::int64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  /// Zeroes every shard (tests and bench baselines only; racing writers
  /// may land increments on either side of the reset).
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> value{0};
  };
  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

/// Fixed log2-bucket histogram with lock-free per-thread shards merged on
/// read. Bucket boundaries are powers of two, so Record is a bit_width plus
/// two relaxed fetch_adds; count and sum are exact, quantiles are resolved
/// to bucket granularity.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(std::int64_t value) {
    if (!Enabled()) return;
    Shard& shard = shards_[internal::ShardSlot()];
    shard.count[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket for `value`: 0 for value <= 0, otherwise bit_width(value)
  /// clamped to the last bucket — i.e. bucket b covers [2^(b-1), 2^b).
  static std::size_t BucketIndex(std::int64_t value) {
    if (value <= 0) return 0;
    const int width = 64 - __builtin_clzll(static_cast<std::uint64_t>(value));
    return width >= static_cast<int>(kHistogramBuckets)
               ? kHistogramBuckets - 1
               : static_cast<std::size_t>(width);
  }

  /// Inclusive upper edge of bucket `b` (the largest value it can hold;
  /// the last bucket is unbounded and reports int64 max).
  static std::int64_t BucketUpperEdge(std::size_t b);

  HistogramSnapshot Snapshot() const;

  /// Zeroes every shard (tests and bench baselines only).
  void Reset();

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<std::int64_t>, kHistogramBuckets> count{};
    std::atomic<std::int64_t> sum{0};
  };
  std::string name_;
  std::array<Shard, kMetricShards> shards_;
};

/// Process-wide registry of named metrics. Get-or-create returns stable
/// pointers: call sites cache the handle in a function-local static and
/// touch the registry lock exactly once.
class Registry {
 public:
  /// The singleton. Intentionally leaked so worker threads may record into
  /// metrics during static destruction (e.g. the global thread pool joining
  /// its workers at exit).
  static Registry& Global();

  Counter* GetCounter(std::string_view name) RANKTIES_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name) RANKTIES_EXCLUDES(mu_);

  /// All counters, sorted by name.
  std::vector<CounterSnapshot> CounterSnapshots() const
      RANKTIES_EXCLUDES(mu_);
  /// All histograms, sorted by name.
  std::vector<HistogramSnapshot> HistogramSnapshots() const
      RANKTIES_EXCLUDES(mu_);

  /// Zeroes every metric (tests and bench baselines only).
  void ResetAll() RANKTIES_EXCLUDES(mu_);

 private:
  Registry() = default;

  // "obs.registry" is a leaf in the lock hierarchy (DESIGN.md §11): handle
  // registration happens under callers' locks on first use, so nothing may
  // be acquired while it is held.
  mutable Mutex mu_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      RANKTIES_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      RANKTIES_GUARDED_BY(mu_);
};

/// Shorthands for Registry::Global().
inline Counter* GetCounter(std::string_view name) {
  return Registry::Global().GetCounter(name);
}
inline Histogram* GetHistogram(std::string_view name) {
  return Registry::Global().GetHistogram(name);
}

#else  // RANKTIES_OBS_DISABLED

// Compiled-out mode: the full API with empty inline bodies. Arguments are
// still evaluated (they are cheap locals at every call site) and then dead;
// the optimizer removes the calls entirely.

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}

class Counter {
 public:
  void Add(std::int64_t) {}
  void Increment() {}
  std::int64_t Value() const { return 0; }
  void Reset() {}
  const std::string& name() const { return empty_; }

 private:
  friend class Registry;
  std::string empty_;
};

class Histogram {
 public:
  void Record(std::int64_t) {}
  static std::size_t BucketIndex(std::int64_t) { return 0; }
  static std::int64_t BucketUpperEdge(std::size_t) { return 0; }
  HistogramSnapshot Snapshot() const { return {}; }
  void Reset() {}
  const std::string& name() const { return empty_; }

 private:
  friend class Registry;
  std::string empty_;
};

class Registry {
 public:
  static Registry& Global();
  Counter* GetCounter(std::string_view) { return &counter_; }
  Histogram* GetHistogram(std::string_view) { return &histogram_; }
  std::vector<CounterSnapshot> CounterSnapshots() const { return {}; }
  std::vector<HistogramSnapshot> HistogramSnapshots() const { return {}; }
  void ResetAll() {}

 private:
  Counter counter_;
  Histogram histogram_;
};

inline Counter* GetCounter(std::string_view name) {
  return Registry::Global().GetCounter(name);
}
inline Histogram* GetHistogram(std::string_view name) {
  return Registry::Global().GetHistogram(name);
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties

#endif  // RANKTIES_OBS_METRICS_H_
