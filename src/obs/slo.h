#ifndef RANKTIES_OBS_SLO_H_
#define RANKTIES_OBS_SLO_H_

/// \file
/// Per-query cost attribution and SLO checking.
///
/// The paper's Section 6 evaluates TA/NRA/MEDRANK through a middleware cost
/// model — sorted and random access counts — but aggregate counters cannot
/// say which *query* paid which cost once workloads interleave. A
/// QueryUnitScope fixes that: it is an RAII "query unit" that, for its
/// lifetime, attributes every counter increment made on the constructing
/// thread to itself (via the internal::CounterSink seam in Counter::Add)
/// and, on destruction, folds the unit's wall latency and per-counter costs
/// into the process-wide SloRegistry under the unit's name:
///
///   {
///     obs::QueryUnitScope unit("medrank.topk");
///     engine.Run(...);   // access.* counters land on this unit
///   }                    // latency + costs reported to SloRegistry
///
/// Attribution is exact for work recorded on the calling thread, which
/// covers every Section-6 access counter and the batch-engine headline
/// counters (recorded on the caller after joins). Worker-thread increments
/// (e.g. threadpool.tasks_executed from inside ParallelFor) stay in the
/// aggregate registry but are not attributed to any unit. Nested scopes on
/// one thread attribute to the innermost scope only; the outer scope
/// resumes when the inner one ends. Counter attribution requires
/// obs::SetEnabled(true) (Counter::Add is a no-op otherwise); latency and
/// query counts are recorded regardless.
///
/// SLO thresholds are declarative: SloRegistry::Declare registers a bound
/// on a unit's p99 latency and/or its worst per-query cost on one counter,
/// and Evaluate() replays every declared bound against the observed stats.
/// Results surface in tests and in the OpenMetrics export (src/obs/export.h).
///
/// With RANKTIES_OBS_DISABLED everything collapses to empty inline stubs.

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/mutex.h"

namespace rankties {
namespace obs {

/// Total and worst-single-query cost of one counter within one unit.
struct QueryUnitCounterCost {
  std::string counter;
  std::int64_t total = 0;          ///< summed over all queries of the unit
  std::int64_t max_per_query = 0;  ///< largest single-query attribution
};

/// Accumulated view of one query unit (all queries reported so far).
struct QueryUnitSnapshot {
  std::string unit;
  std::int64_t queries = 0;
  std::int64_t latency_sum_ns = 0;
  /// log2 latency buckets, same geometry as obs::Histogram.
  std::array<std::int64_t, kHistogramBuckets> latency_buckets{};
  /// Per-counter costs, sorted by counter name.
  std::vector<QueryUnitCounterCost> costs;

  /// Mean wall latency in ns (0 when no queries).
  double MeanLatencyNs() const {
    return queries == 0 ? 0.0
                        : static_cast<double>(latency_sum_ns) /
                              static_cast<double>(queries);
  }

  /// Inclusive upper edge of the bucket holding the 99th-percentile
  /// latency (bucket granularity; 0 when no queries).
  std::int64_t LatencyP99UpperNs() const;

  /// Attributed total for `counter` (0 if the unit never touched it).
  std::int64_t CostTotal(std::string_view counter) const;
  /// Worst single-query attribution for `counter` (0 if never touched).
  std::int64_t CostMaxPerQuery(std::string_view counter) const;
};

/// One declarative bound. Zero / empty fields are unchecked, so a
/// threshold can bound latency, cost, or both.
struct SloThreshold {
  std::string unit;
  /// Bound on LatencyP99UpperNs (0 = not checked).
  std::int64_t max_p99_latency_ns = 0;
  /// Counter whose worst per-query cost is bounded (empty = not checked).
  std::string counter;
  std::int64_t max_cost_per_query = 0;
};

/// Outcome of one check of one threshold.
struct SloCheckResult {
  std::string unit;
  std::string check;  ///< "p99_latency_ns" or "max_cost:<counter>"
  double observed = 0.0;
  double limit = 0.0;
  bool ok = true;
};

#ifndef RANKTIES_OBS_DISABLED

/// Process-wide accumulator of per-unit stats and declared thresholds.
class SloRegistry {
 public:
  /// The singleton. Leaked on purpose, like the metric Registry.
  static SloRegistry& Global();

  /// Registers one declarative bound; duplicates simply add more checks.
  void Declare(SloThreshold threshold) RANKTIES_EXCLUDES(mu_);
  std::vector<SloThreshold> Thresholds() const RANKTIES_EXCLUDES(mu_);

  /// All units seen so far, sorted by name.
  std::vector<QueryUnitSnapshot> UnitSnapshots() const
      RANKTIES_EXCLUDES(mu_);
  /// Stats for one unit; an empty snapshot (queries == 0) when unseen.
  QueryUnitSnapshot UnitSnapshot(std::string_view unit) const
      RANKTIES_EXCLUDES(mu_);

  /// Replays every declared threshold against the observed stats. A unit
  /// with no queries passes vacuously (observed 0).
  std::vector<SloCheckResult> Evaluate() const RANKTIES_EXCLUDES(mu_);

  /// Drops all unit stats and thresholds (tests and bench baselines only).
  void ResetAll() RANKTIES_EXCLUDES(mu_);

 private:
  friend class QueryUnitScope;

  SloRegistry() = default;

  /// Stable dense ordinal for `unit` (flight-event correlation + export).
  std::uint32_t OrdinalFor(std::string_view unit) RANKTIES_EXCLUDES(mu_);
  void Report(std::string_view unit, std::int64_t latency_ns,
              const std::vector<std::pair<Counter*, std::int64_t>>& costs)
      RANKTIES_EXCLUDES(mu_);

  struct CostAccum {
    std::int64_t total = 0;
    std::int64_t max_per_query = 0;
  };
  struct UnitAccum {
    std::int64_t queries = 0;
    std::int64_t latency_sum_ns = 0;
    std::array<std::int64_t, kHistogramBuckets> latency_buckets{};
    std::map<std::string, CostAccum, std::less<>> costs;
  };

  mutable Mutex mu_{"obs.slo"};
  std::map<std::string, std::uint32_t, std::less<>> ordinals_
      RANKTIES_GUARDED_BY(mu_);
  std::map<std::string, UnitAccum, std::less<>> units_
      RANKTIES_GUARDED_BY(mu_);
  std::vector<SloThreshold> thresholds_ RANKTIES_GUARDED_BY(mu_);
};

/// RAII query unit: installs itself as the calling thread's CounterSink
/// for its lifetime and reports to SloRegistry::Global() on destruction.
/// Must be destroyed on the constructing thread (RAII scoping guarantees
/// this; it is DCHECKed). Unit names follow the lowercase.dotted metric
/// convention and should be string literals (lint rule RT007 territory).
class QueryUnitScope : private internal::CounterSink {
 public:
  explicit QueryUnitScope(std::string_view unit);
  ~QueryUnitScope() override;

  QueryUnitScope(const QueryUnitScope&) = delete;
  QueryUnitScope& operator=(const QueryUnitScope&) = delete;

  /// Increments attributed to this scope so far for `counter` (tests use
  /// this for bit-exact cost assertions before the scope closes).
  std::int64_t Attributed(const Counter* counter) const;
  /// Every attributed (counter name, delta) pair, sorted by name.
  std::vector<CounterSnapshot> AttributedSnapshots() const;

  const std::string& unit() const { return unit_; }

 private:
  void OnCounterAdd(Counter* counter, std::int64_t delta) override;

  std::string unit_;
  std::uint32_t ordinal_ = 0;
  std::int64_t start_ns_ = 0;
  internal::CounterSink* previous_ = nullptr;
  /// Linear-scan accumulation: a unit touches a handful of counters, so
  /// a flat vector beats a map on the Add hot path.
  std::vector<std::pair<Counter*, std::int64_t>> attributed_;
};

#else  // RANKTIES_OBS_DISABLED

class SloRegistry {
 public:
  static SloRegistry& Global();
  void Declare(SloThreshold) {}
  std::vector<SloThreshold> Thresholds() const { return {}; }
  std::vector<QueryUnitSnapshot> UnitSnapshots() const { return {}; }
  QueryUnitSnapshot UnitSnapshot(std::string_view unit) const {
    QueryUnitSnapshot snapshot;
    snapshot.unit = std::string(unit);
    return snapshot;
  }
  std::vector<SloCheckResult> Evaluate() const { return {}; }
  void ResetAll() {}
};

class QueryUnitScope {
 public:
  explicit QueryUnitScope(std::string_view unit) : unit_(unit) {}

  QueryUnitScope(const QueryUnitScope&) = delete;
  QueryUnitScope& operator=(const QueryUnitScope&) = delete;

  std::int64_t Attributed(const Counter*) const { return 0; }
  std::vector<CounterSnapshot> AttributedSnapshots() const { return {}; }
  const std::string& unit() const { return unit_; }

 private:
  std::string unit_;
};

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties

#endif  // RANKTIES_OBS_SLO_H_
