#ifndef RANKTIES_OBS_TRACE_H_
#define RANKTIES_OBS_TRACE_H_

/// \file
/// Scoped RAII trace spans feeding a thread-safe in-process recorder.
///
/// A span brackets one logical stage (a ParallelFor, a batch-matrix build,
/// one access-engine run). Spans nest per thread — the recorder keeps the
/// parent link so the exported trace reconstructs the call tree — and carry
/// an optional `items` payload (pairs computed, accesses performed) so
/// items/sec falls out of the trace directly.
///
/// Recording is off by default. TraceSpan's constructor checks one relaxed
/// atomic and becomes inert when recording is off; when on, the span reads
/// the monotonic clock twice (via util/stopwatch.h's SplitTimer) and takes
/// the recorder mutex once, at destruction, to append its record. Spans are
/// therefore meant for stage granularity, not per-element loops.

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/stopwatch.h"

namespace rankties {
namespace obs {

/// One completed span.
struct SpanRecord {
  std::uint64_t id = 0;      ///< unique, process-wide, 1-based
  std::uint64_t parent = 0;  ///< enclosing span on the same thread; 0 = root
  const char* name = "";     ///< static string supplied at the span site
  std::uint32_t thread = 0;  ///< recorder-assigned dense thread index
  std::int64_t start_ns = 0;  ///< MonotonicNanos() at entry
  std::int64_t duration_ns = 0;
  std::int64_t items = -1;  ///< optional payload size; -1 = unset
};

#ifndef RANKTIES_OBS_DISABLED

/// Thread-safe in-process recorder; spans from every thread land in one
/// buffer (bounded — see kMaxSpans — so a tracing run can never exhaust
/// memory; overflow is counted and reported in the export).
class TraceRecorder {
 public:
  static constexpr std::size_t kMaxSpans = 1u << 20;

  /// The singleton. Leaked on purpose, like the metric Registry, so spans
  /// closing during static destruction stay safe.
  static TraceRecorder& Global();

  /// Clears the buffer and starts recording.
  void Start() RANKTIES_EXCLUDES(mu_);
  /// Stops recording; the buffer stays readable until the next Start().
  void Stop();
  bool recording() const {
    return recording_.load(std::memory_order_relaxed);
  }

  /// Copy of the recorded spans, in completion order.
  std::vector<SpanRecord> Snapshot() const RANKTIES_EXCLUDES(mu_);
  /// Spans recorded so far.
  std::size_t size() const RANKTIES_EXCLUDES(mu_);
  /// Spans dropped after the buffer filled.
  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  void Clear() RANKTIES_EXCLUDES(mu_);

  /// Process-wide unique span id.
  std::uint64_t NextId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Dense index for the calling thread (stable across its lifetime).
  std::uint32_t ThreadIndex();

  void Append(const SpanRecord& record) RANKTIES_EXCLUDES(mu_);

 private:
  TraceRecorder() = default;

  std::atomic<bool> recording_{false};
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint32_t> next_thread_{0};
  std::atomic<std::int64_t> dropped_{0};
  mutable Mutex mu_{"obs.trace"};
  std::vector<SpanRecord> spans_ RANKTIES_GUARDED_BY(mu_);
};

/// RAII span: records [construction, destruction) under `name`, which must
/// be a string with static storage duration (a literal).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a payload size (pairs computed, accesses performed, ...).
  void SetItems(std::int64_t items) { record_.items = items; }

 private:
  SpanRecord record_;
  SplitTimer timer_;
  std::uint64_t saved_parent_ = 0;
  bool active_ = false;
};

#else  // RANKTIES_OBS_DISABLED

class TraceRecorder {
 public:
  static constexpr std::size_t kMaxSpans = 0;
  static TraceRecorder& Global();
  void Start() {}
  void Stop() {}
  bool recording() const { return false; }
  std::vector<SpanRecord> Snapshot() const { return {}; }
  std::size_t size() const { return 0; }
  std::int64_t dropped() const { return 0; }
  void Clear() {}
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  void SetItems(std::int64_t) {}
};

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties

#endif  // RANKTIES_OBS_TRACE_H_
