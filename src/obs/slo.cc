#include "obs/slo.h"

#include <algorithm>

#include "obs/flight.h"
#include "util/contracts.h"
#include "util/stopwatch.h"

namespace rankties {
namespace obs {

std::int64_t QueryUnitSnapshot::LatencyP99UpperNs() const {
  if (queries == 0) return 0;
  // Smallest bucket edge with cumulative count >= 99% of queries
  // (ceiling, so e.g. 99 of 100 is not enough when the 100th is larger).
  const std::int64_t needed = (queries * 99 + 99) / 100;
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    cumulative += latency_buckets[b];
    if (cumulative >= needed) return Histogram::BucketUpperEdge(b);
  }
  return Histogram::BucketUpperEdge(kHistogramBuckets - 1);
}

std::int64_t QueryUnitSnapshot::CostTotal(std::string_view counter) const {
  for (const QueryUnitCounterCost& cost : costs) {
    if (cost.counter == counter) return cost.total;
  }
  return 0;
}

std::int64_t QueryUnitSnapshot::CostMaxPerQuery(
    std::string_view counter) const {
  for (const QueryUnitCounterCost& cost : costs) {
    if (cost.counter == counter) return cost.max_per_query;
  }
  return 0;
}

#ifndef RANKTIES_OBS_DISABLED

SloRegistry& SloRegistry::Global() {
  // Leaked on purpose: see the class comment.
  static SloRegistry* const registry = new SloRegistry();
  return *registry;
}

void SloRegistry::Declare(SloThreshold threshold) {
  MutexLock lock(mu_);
  thresholds_.push_back(std::move(threshold));
}

std::vector<SloThreshold> SloRegistry::Thresholds() const {
  MutexLock lock(mu_);
  return thresholds_;
}

std::vector<QueryUnitSnapshot> SloRegistry::UnitSnapshots() const {
  MutexLock lock(mu_);
  std::vector<QueryUnitSnapshot> snapshots;
  snapshots.reserve(units_.size());
  for (const auto& entry : units_) {
    QueryUnitSnapshot snapshot;
    snapshot.unit = entry.first;
    snapshot.queries = entry.second.queries;
    snapshot.latency_sum_ns = entry.second.latency_sum_ns;
    snapshot.latency_buckets = entry.second.latency_buckets;
    snapshot.costs.reserve(entry.second.costs.size());
    for (const auto& cost : entry.second.costs) {
      snapshot.costs.push_back(QueryUnitCounterCost{
          cost.first, cost.second.total, cost.second.max_per_query});
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

QueryUnitSnapshot SloRegistry::UnitSnapshot(std::string_view unit) const {
  for (QueryUnitSnapshot& snapshot : UnitSnapshots()) {
    if (snapshot.unit == unit) return std::move(snapshot);
  }
  QueryUnitSnapshot empty;
  empty.unit = std::string(unit);
  return empty;
}

std::vector<SloCheckResult> SloRegistry::Evaluate() const {
  const std::vector<SloThreshold> thresholds = Thresholds();
  const std::vector<QueryUnitSnapshot> units = UnitSnapshots();
  auto find_unit = [&units](const std::string& name) {
    return std::find_if(
        units.begin(), units.end(),
        [&name](const QueryUnitSnapshot& u) { return u.unit == name; });
  };
  std::vector<SloCheckResult> results;
  for (const SloThreshold& threshold : thresholds) {
    const auto it = find_unit(threshold.unit);
    if (threshold.max_p99_latency_ns > 0) {
      SloCheckResult result;
      result.unit = threshold.unit;
      result.check = "p99_latency_ns";
      result.observed = it == units.end()
                            ? 0.0
                            : static_cast<double>(it->LatencyP99UpperNs());
      result.limit = static_cast<double>(threshold.max_p99_latency_ns);
      result.ok = result.observed <= result.limit;
      results.push_back(std::move(result));
    }
    if (!threshold.counter.empty() && threshold.max_cost_per_query > 0) {
      SloCheckResult result;
      result.unit = threshold.unit;
      result.check = "max_cost:" + threshold.counter;
      result.observed =
          it == units.end()
              ? 0.0
              : static_cast<double>(it->CostMaxPerQuery(threshold.counter));
      result.limit = static_cast<double>(threshold.max_cost_per_query);
      result.ok = result.observed <= result.limit;
      results.push_back(std::move(result));
    }
  }
  return results;
}

void SloRegistry::ResetAll() {
  MutexLock lock(mu_);
  units_.clear();
  thresholds_.clear();
  // Ordinals survive a reset so flight events keep a stable mapping.
}

std::uint32_t SloRegistry::OrdinalFor(std::string_view unit) {
  MutexLock lock(mu_);
  auto it = ordinals_.find(unit);
  if (it == ordinals_.end()) {
    it = ordinals_
             .emplace(std::string(unit),
                      static_cast<std::uint32_t>(ordinals_.size()))
             .first;
  }
  return it->second;
}

void SloRegistry::Report(
    std::string_view unit, std::int64_t latency_ns,
    const std::vector<std::pair<Counter*, std::int64_t>>& costs) {
  MutexLock lock(mu_);
  auto it = units_.find(unit);
  if (it == units_.end()) {
    it = units_.emplace(std::string(unit), UnitAccum{}).first;
  }
  UnitAccum& accum = it->second;
  accum.queries += 1;
  accum.latency_sum_ns += latency_ns;
  accum.latency_buckets[Histogram::BucketIndex(latency_ns)] += 1;
  for (const auto& cost : costs) {
    CostAccum& entry = accum.costs[cost.first->name()];
    entry.total += cost.second;
    entry.max_per_query = std::max(entry.max_per_query, cost.second);
  }
}

QueryUnitScope::QueryUnitScope(std::string_view unit)
    : unit_(unit),
      ordinal_(SloRegistry::Global().OrdinalFor(unit)),
      start_ns_(MonotonicNanos()),
      previous_(internal::t_counter_sink) {
  internal::t_counter_sink = this;
  RANKTIES_FLIGHT(FlightEventId::kQueryUnitBegin, ordinal_);
}

QueryUnitScope::~QueryUnitScope() {
  // RAII scoping means the destructor runs on the constructing thread and
  // scopes unwind innermost-first; the sink chain depends on both.
  RANKTIES_DCHECK(internal::t_counter_sink == this);
  internal::t_counter_sink = previous_;
  const std::int64_t latency_ns = MonotonicNanos() - start_ns_;
  RANKTIES_FLIGHT(FlightEventId::kQueryUnitEnd, ordinal_, latency_ns);
  SloRegistry::Global().Report(unit_, latency_ns, attributed_);
}

std::int64_t QueryUnitScope::Attributed(const Counter* counter) const {
  for (const auto& entry : attributed_) {
    if (entry.first == counter) return entry.second;
  }
  return 0;
}

std::vector<CounterSnapshot> QueryUnitScope::AttributedSnapshots() const {
  std::vector<CounterSnapshot> snapshots;
  snapshots.reserve(attributed_.size());
  for (const auto& entry : attributed_) {
    snapshots.push_back(CounterSnapshot{entry.first->name(), entry.second});
  }
  std::sort(snapshots.begin(), snapshots.end(),
            [](const CounterSnapshot& a, const CounterSnapshot& b) {
              return a.name < b.name;
            });
  return snapshots;
}

void QueryUnitScope::OnCounterAdd(Counter* counter, std::int64_t delta) {
  for (auto& entry : attributed_) {
    if (entry.first == counter) {
      entry.second += delta;
      return;
    }
  }
  attributed_.emplace_back(counter, delta);
}

#else  // RANKTIES_OBS_DISABLED

SloRegistry& SloRegistry::Global() {
  static SloRegistry* const registry = new SloRegistry();
  return *registry;
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties
