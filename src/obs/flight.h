#ifndef RANKTIES_OBS_FLIGHT_H_
#define RANKTIES_OBS_FLIGHT_H_

/// \file
/// Flight recorder: a lock-free per-thread ring buffer of fixed-size
/// structured events — the observability layer's black box. Where trace
/// spans are opt-in and bounded by an explicit Start/Stop window, the
/// flight recorder is designed to run continuously: each thread owns a
/// fixed ring of the last kEventsPerThread events (overwrite-oldest, so
/// memory is bounded forever) and recording one event is a handful of
/// relaxed atomic stores — no locks, no allocation, no clock seam beyond
/// one MonotonicNanos() read.
///
///   RANKTIES_FLIGHT(FlightEventId::kBatchMatrix, m, pairs, tiles);
///
/// The payload is deliberately spartan: a timestamp, a small event id from
/// the closed enum below, and three int64 arguments whose meaning is
/// documented per id. No strings on the hot path — names are resolved at
/// dump time through FlightEventName().
///
/// Draining happens on demand (Drain() merges every thread's ring into
/// one timestamp-sorted vector) or on failure: enabling the recorder
/// installs a contracts-layer failure hook
/// (contracts_internal::SetFailureHook) that prints the most recent
/// events to stderr before a violated RANKTIES_DCHECK aborts, and the
/// fuzz harness dumps the same post-mortem when a differential check
/// fails. Concurrent writers never block a drain; an event overwritten
/// mid-read can be torn (mixed fields), which post-mortem consumers must
/// tolerate — quiesce writers first when exact replay matters.
///
/// With RANKTIES_OBS_DISABLED everything collapses to empty inline
/// functions and the macro evaluates its arguments into dead locals.

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "util/mutex.h"
#include "util/stopwatch.h"

namespace rankties {
namespace obs {

/// Closed event-id space. Argument meaning per id is noted inline;
/// unused arguments are recorded as 0.
enum class FlightEventId : std::uint32_t {
  kNone = 0,
  kParallelFor,          ///< a0 items, a1 grain, a2 helper lanes
  kBatchMatrix,          ///< a0 lists, a1 pairs, a2 tiles
  kBatchDistancesToAll,  ///< a0 lists
  kBatchBestOf,          ///< a0 candidates, a1 lists
  kIncrementalMove,      ///< a0 list, a1 element, a2 pairs reevaluated
  kIncrementalReplace,   ///< a0 list, a1 pairs reevaluated
  kOnlineMedianAdd,      ///< a0 voter index, a1 n
  kOnlineMedianUpdate,   ///< a0 voter index, a1 elements touched
  kOnlineMedianRemove,   ///< a0 voter index, a1 voters left
  kTaRun,                ///< a0 k, a1 sorted accesses, a2 random accesses
  kNraRun,               ///< a0 k, a1 sorted accesses
  kMedrankRun,           ///< a0 k, a1 sorted accesses, a2 depth
  kMedrankStreamWinner,  ///< a0 winner, a1 total accesses so far
  kQueryUnitBegin,       ///< a0 unit ordinal
  kQueryUnitEnd,         ///< a0 unit ordinal, a1 active ns this scope
  kCount,                ///< sentinel, not a real event
};

/// Static name for `id` ("parallel_for", "ta.run", ...); "unknown" for
/// out-of-range values (e.g. a torn event).
const char* FlightEventName(FlightEventId id);

/// One drained event.
struct FlightEvent {
  std::int64_t ts_ns = 0;  ///< MonotonicNanos() at record time
  std::uint32_t event = 0;  ///< FlightEventId
  std::uint32_t thread = 0;  ///< recorder-assigned dense thread index
  std::array<std::int64_t, 3> args{};
};

#ifndef RANKTIES_OBS_DISABLED

class FlightRecorder {
 public:
  /// Ring capacity per thread. 4096 events * 48 bytes keeps each thread
  /// under 200 KiB no matter how long the process runs.
  static constexpr std::size_t kEventsPerThread = 1u << 12;
  /// Hard cap on registered rings; threads beyond it only bump dropped().
  static constexpr std::size_t kMaxThreads = 256;

  /// The singleton. Leaked on purpose, like the metric Registry, so
  /// events recorded during static destruction stay safe.
  static FlightRecorder& Global();

  /// Turns recording on or off process-wide. The first enable installs
  /// the contracts-layer failure hook that dumps the recorder to stderr
  /// before a violated contract aborts (see DumpToStderr).
  void SetEnabled(bool enabled);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one event on the calling thread's ring (lock-free).
  void Record(FlightEventId id, std::int64_t a0 = 0, std::int64_t a1 = 0,
              std::int64_t a2 = 0);

  /// Every live event from every ring, merged and sorted by timestamp.
  std::vector<FlightEvent> Drain() const RANKTIES_EXCLUDES(rings_mu_);

  /// Events lost because the kMaxThreads ring cap was reached.
  std::int64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wrap-around, summed over threads.
  std::int64_t overwritten() const RANKTIES_EXCLUDES(rings_mu_);

  /// Empties every ring and zeroes dropped() (tests; racing writers may
  /// land events on either side of the reset).
  void Clear() RANKTIES_EXCLUDES(rings_mu_);

  /// Writes the newest `max_events` events (0 = a small default) to
  /// stderr, newest last — the post-mortem path, also reachable through
  /// the contract failure hook.
  void DumpToStderr(std::size_t max_events = 0) const
      RANKTIES_EXCLUDES(rings_mu_);

 private:
  // Stored form of one event: every field is a relaxed atomic so a drain
  // racing a wrap-around overwrite reads torn values, never UB (and stays
  // clean under TSan). Relaxed int64 stores cost the same as plain moves.
  struct Slot {
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<std::uint32_t> event{0};
    std::atomic<std::int64_t> a0{0};
    std::atomic<std::int64_t> a1{0};
    std::atomic<std::int64_t> a2{0};
  };

  struct ThreadRing {
    explicit ThreadRing(std::uint32_t index) : thread_index(index) {}
    std::uint32_t thread_index;
    /// Total events ever recorded; head % kEventsPerThread is the next
    /// slot. Published with release so drains see completed payloads.
    std::atomic<std::uint64_t> head{0};
    std::array<Slot, kEventsPerThread> slots;
  };

  FlightRecorder() = default;

  /// The calling thread's ring, registering it on first use; nullptr once
  /// kMaxThreads rings exist.
  ThreadRing* RingForThisThread() RANKTIES_EXCLUDES(rings_mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<std::int64_t> dropped_{0};
  mutable Mutex rings_mu_{"obs.flight.rings"};
  /// Owned rings, never freed (post-mortem dumps outlive their threads;
  /// each ring's slots are lock-free atomics — only the vector of ring
  /// pointers is guarded).
  std::vector<ThreadRing*> rings_ RANKTIES_GUARDED_BY(rings_mu_);
};

/// Shorthand for FlightRecorder::Global().Record(...) with the enabled
/// check inlined at the call site.
inline void FlightRecord(FlightEventId id, std::int64_t a0 = 0,
                         std::int64_t a1 = 0, std::int64_t a2 = 0) {
  FlightRecorder& recorder = FlightRecorder::Global();
  if (!recorder.enabled()) return;
  recorder.Record(id, a0, a1, a2);
}

#else  // RANKTIES_OBS_DISABLED

class FlightRecorder {
 public:
  static constexpr std::size_t kEventsPerThread = 0;
  static constexpr std::size_t kMaxThreads = 0;
  static FlightRecorder& Global();
  void SetEnabled(bool) {}
  bool enabled() const { return false; }
  void Record(FlightEventId, std::int64_t = 0, std::int64_t = 0,
              std::int64_t = 0) {}
  std::vector<FlightEvent> Drain() const { return {}; }
  std::int64_t dropped() const { return 0; }
  std::int64_t overwritten() const { return 0; }
  void Clear() {}
  void DumpToStderr(std::size_t = 0) const {}
};

inline void FlightRecord(FlightEventId, std::int64_t = 0, std::int64_t = 0,
                         std::int64_t = 0) {}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties

/// Hot-path event macro; arguments are evaluated (cheap locals) and the
/// optimizer deletes the call entirely under RANKTIES_OBS_DISABLED.
#define RANKTIES_FLIGHT(id, ...) \
  ::rankties::obs::FlightRecord((id), __VA_ARGS__)

#endif  // RANKTIES_OBS_FLIGHT_H_
