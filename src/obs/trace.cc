#include "obs/trace.h"

namespace rankties {
namespace obs {

#ifndef RANKTIES_OBS_DISABLED

namespace {

// Innermost open span on this thread; parent link for new spans.
thread_local std::uint64_t t_current_span = 0;

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  // Leaked on purpose: see the class comment.
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Start() {
  {
    MutexLock lock(mu_);
    spans_.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
  recording_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  recording_.store(false, std::memory_order_relaxed);
}

std::vector<SpanRecord> TraceRecorder::Snapshot() const {
  MutexLock lock(mu_);
  return spans_;
}

std::size_t TraceRecorder::size() const {
  MutexLock lock(mu_);
  return spans_.size();
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  spans_.clear();
}

std::uint32_t TraceRecorder::ThreadIndex() {
  thread_local const std::uint32_t index =
      next_thread_.fetch_add(1, std::memory_order_relaxed);
  return index;
}

void TraceRecorder::Append(const SpanRecord& record) {
  MutexLock lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(record);
}

TraceSpan::TraceSpan(const char* name) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (!recorder.recording()) return;
  active_ = true;
  record_.id = recorder.NextId();
  record_.parent = t_current_span;
  record_.name = name;
  record_.thread = recorder.ThreadIndex();
  record_.start_ns = timer_.mark_nanos();
  saved_parent_ = t_current_span;
  t_current_span = record_.id;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  record_.duration_ns = timer_.SplitNanos();
  t_current_span = saved_parent_;
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.recording()) recorder.Append(record_);
}

#else  // RANKTIES_OBS_DISABLED

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* const recorder = new TraceRecorder();
  return *recorder;
}

#endif  // RANKTIES_OBS_DISABLED

}  // namespace obs
}  // namespace rankties
