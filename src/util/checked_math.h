#ifndef RANKTIES_UTIL_CHECKED_MATH_H_
#define RANKTIES_UTIL_CHECKED_MATH_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace rankties {

/// Overflow-checked 64-bit arithmetic for the pair-count identities.
/// Quantities like n(n-1)/2 are quadratic in the domain size, so a domain a
/// little past 2^32 silently wraps 64-bit math (undefined behaviour for
/// signed types). These helpers abort with a diagnostic instead — a wrong
/// count is worse than a crash for every caller in this library.

[[noreturn]] inline void DieOfIntegerOverflow(const char* operation) {
  std::fprintf(stderr, "rankties: integer overflow in %s\n", operation);
  std::abort();
}

inline std::int64_t CheckedAdd(std::int64_t a, std::int64_t b) {
#if defined(__GNUC__) || defined(__clang__)
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) DieOfIntegerOverflow("CheckedAdd");
  return out;
#else
  if ((b > 0 && a > std::numeric_limits<std::int64_t>::max() - b) ||
      (b < 0 && a < std::numeric_limits<std::int64_t>::min() - b)) {
    DieOfIntegerOverflow("CheckedAdd");
  }
  return a + b;
#endif
}

inline std::int64_t CheckedMul(std::int64_t a, std::int64_t b) {
#if defined(__GNUC__) || defined(__clang__)
  std::int64_t out;
  if (__builtin_mul_overflow(a, b, &out)) DieOfIntegerOverflow("CheckedMul");
  return out;
#else
  if (a != 0 && b != 0) {
    if (a > 0 ? (b > 0 ? a > std::numeric_limits<std::int64_t>::max() / b
                       : b < std::numeric_limits<std::int64_t>::min() / a)
              : (b > 0 ? a < std::numeric_limits<std::int64_t>::min() / b
                       : b < std::numeric_limits<std::int64_t>::max() / a)) {
      DieOfIntegerOverflow("CheckedMul");
    }
  }
  return a * b;
#endif
}

/// k-choose-2 = k(k-1)/2 with the even factor divided *before* the
/// multiplication (the overflow guard MaxKendall in core/kendall.cc
/// documents): the checked product then only aborts when the result itself
/// would not fit, instead of at k slightly past 2^32. Negative k counts no
/// pairs.
inline std::int64_t CheckedChoose2(std::int64_t k) {
  if (k < 2) return 0;
  return k % 2 == 0 ? CheckedMul(k / 2, k - 1) : CheckedMul(k, (k - 1) / 2);
}

/// Converts an unsigned size to int64, aborting when it does not fit.
inline std::int64_t CheckedInt64(std::size_t value) {
  if (value > static_cast<std::uint64_t>(
                  std::numeric_limits<std::int64_t>::max())) {
    DieOfIntegerOverflow("CheckedInt64");
  }
  return static_cast<std::int64_t>(value);
}

}  // namespace rankties

#endif  // RANKTIES_UTIL_CHECKED_MATH_H_
