#ifndef RANKTIES_UTIL_THREAD_POOL_H_
#define RANKTIES_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace rankties {

/// A fixed-size worker pool driving the library's data-parallel loops
/// (core/batch_engine.h and the aggregation hot paths).
///
/// Design constraints, in order:
///  * determinism — ParallelFor only hands out index ranges; callers write
///    to disjoint slots and perform any floating-point reduction serially,
///    so results are bit-identical for every thread count;
///  * simplicity — no work stealing: one shared chunk cursor per loop,
///    claimed with a single fetch_add;
///  * safety — the first exception thrown by the body cancels the remaining
///    chunks and is rethrown on the calling thread.
///
/// A pool of `threads` provides `threads` lanes of parallelism: it spawns
/// `threads - 1` workers and the calling thread itself executes chunks, so a
/// 1-thread pool runs everything inline on the caller (the serial path,
/// exactly). Calls from inside a pool worker also run inline — nested
/// ParallelFor never deadlocks, it just degrades to serial.
class ThreadPool {
 public:
  /// Creates a pool with `threads` total lanes (clamped to at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: spawned workers plus the calling thread.
  std::size_t threads() const { return workers_.size() + 1; }

  /// Runs body(chunk_begin, chunk_end) over [begin, end) split into chunks
  /// of at most `grain` indices (grain 0 is treated as 1). Blocks until the
  /// whole range is done. Rethrows the first exception thrown by `body`
  /// after the loop has drained. The body must only write to slots derived
  /// from its own indices.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& body)
      RANKTIES_EXCLUDES(mu_);

  /// The process-wide pool used by the free ParallelFor and the batch
  /// engine. Created on first use with DefaultThreads() lanes.
  static ThreadPool& Global();

  /// Replaces the global pool with one of `threads` lanes (0 means
  /// DefaultThreads()). Must not race with in-flight work on the global
  /// pool; intended for start-up flags (--threads) and benchmarks.
  static void SetGlobalThreads(std::size_t threads);

  /// Lane count of the global pool (creating it if needed).
  static std::size_t GlobalThreads();

  /// The RANKTIES_THREADS environment override if set and valid, otherwise
  /// std::thread::hardware_concurrency() (at least 1).
  static std::size_t DefaultThreads();

  /// Parses a RANKTIES_THREADS-style spec: a positive decimal integer.
  /// Returns 0 for null/empty/invalid input; clamps to 1024.
  static std::size_t ParseThreadsSpec(const char* spec);

 private:
  struct LoopState {
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> canceled{false};
    Mutex mu{"threadpool.loop"};
    CondVar done;
    // Helper tasks not yet finished.
    std::size_t pending RANKTIES_GUARDED_BY(mu) = 0;
    // First exception thrown by the body.
    std::exception_ptr error RANKTIES_GUARDED_BY(mu);
  };

  static void RunChunks(LoopState& state) RANKTIES_EXCLUDES(state.mu);
  void WorkerMain() RANKTIES_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_{"threadpool.queue"};
  CondVar cv_;
  std::deque<std::shared_ptr<LoopState>> queue_ RANKTIES_GUARDED_BY(mu_);
  bool stop_ RANKTIES_GUARDED_BY(mu_) = false;
};

/// ParallelFor on the global pool — the entry point the library uses.
void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace rankties

#endif  // RANKTIES_UTIL_THREAD_POOL_H_
