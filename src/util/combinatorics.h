#ifndef RANKTIES_UTIL_COMBINATORICS_H_
#define RANKTIES_UTIL_COMBINATORICS_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rankties {

/// Small combinatorial helpers shared by the brute-force oracles (optimal
/// bucketing, typed optima, tests): a composition of n — an ordered list
/// of positive parts summing to n — is exactly a bucket-order *type*
/// (paper A.1), and there are 2^(n-1) of them.

/// The composition encoded by `mask` over n elements: bit r set means a
/// part boundary after position r+1. mask must be < 2^(n-1); n >= 1.
std::vector<std::size_t> CompositionFromMask(std::size_t n,
                                             std::uint64_t mask);

/// Invokes `visit` for every composition of n (all 2^(n-1)); stops early
/// if `visit` returns false. Intended for n <= ~24.
void ForEachComposition(
    std::size_t n,
    const std::function<bool(const std::vector<std::size_t>&)>& visit);

/// Number of compositions of n: 2^(n-1) (1 for n = 0 by convention).
std::uint64_t NumCompositions(std::size_t n);

/// n! as int64; saturates at INT64_MAX for n > 20.
std::int64_t Factorial(std::size_t n);

/// Binomial coefficient C(n, k) as int64 (exact for the small arguments
/// the library uses; no overflow guard beyond 64-bit arithmetic order).
std::int64_t Binomial(std::size_t n, std::size_t k);

/// The number of bucket orders on n elements (ordered set partitions /
/// Fubini numbers): 1, 1, 3, 13, 75, 541, ... Saturates at INT64_MAX.
std::int64_t FubiniNumber(std::size_t n);

}  // namespace rankties

#endif  // RANKTIES_UTIL_COMBINATORICS_H_
