#include "util/status.h"

namespace rankties {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUndefined:
      return "UNDEFINED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace rankties
