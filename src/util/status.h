#ifndef RANKTIES_UTIL_STATUS_H_
#define RANKTIES_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/contracts.h"

namespace rankties {

/// Error categories used across the library. Modeled after the RocksDB /
/// Abseil status idiom: total algorithms never produce a Status, fallible
/// operations (parsing, undefined statistics, malformed inputs) do.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kFailedPrecondition = 4,
  kUndefined = 5,  ///< A mathematically undefined result (e.g. gamma with no
                   ///< untied pairs, Goodman & Kruskal [13]).
  kInternal = 6,
  kDataLoss = 7,  ///< On-disk bytes failed validation (truncation, CRC
                  ///< mismatch): the data is unrecoverable, not merely
                  ///< malformed input.
};

/// Returns a stable human-readable name for `code` ("OK",
/// "INVALID_ARGUMENT"...).
const char* StatusCodeName(StatusCode code);

/// A cheap value-type carrying success or an error code plus message.
///
/// The library never throws; every fallible public entry point returns
/// `Status` or `StatusOr<T>`. Both carriers are [[nodiscard]]: silently
/// dropping an error defeats the whole idiom, so ignoring one is a
/// compile-time warning (an error under -Werror).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Undefined(std::string msg) {
    return Status(StatusCode::kUndefined, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Holds either a value of type `T` or an error `Status`.
///
/// Accessing `value()` on an error StatusOr is a programming error and
/// asserts in debug builds.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    RANKTIES_DCHECK(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RANKTIES_DCHECK(ok() && "value() called on error StatusOr");
    return *value_;
  }
  T& value() & {
    RANKTIES_DCHECK(ok() && "value() called on error StatusOr");
    return *value_;
  }
  T&& value() && {
    RANKTIES_DCHECK(ok() && "value() called on error StatusOr");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace rankties

#endif  // RANKTIES_UTIL_STATUS_H_
