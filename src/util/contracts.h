#ifndef RANKTIES_UTIL_CONTRACTS_H_
#define RANKTIES_UTIL_CONTRACTS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// \file
/// The contract layer: debug-only invariant checks for the paper's
/// well-formedness preconditions (docs/STATIC_ANALYSIS.md).
///
///   RANKTIES_DCHECK(sigma.n() == tau.n());
///   RANKTIES_DCHECK_OK(order.Validate());
///   RANKTIES_BOUNDS(index, values.size());
///
/// Semantics:
///  * Debug builds (no NDEBUG): a failed contract prints the expression,
///    file and line to stderr and aborts. `RANKTIES_DCHECK_OK` additionally
///    prints the Status / StatusOr error it observed.
///  * Release builds (NDEBUG): the condition is parsed and type-checked but
///    sits in a provably-dead branch, so it is never evaluated — contracts
///    cost zero cycles and the bench gate sees identical code. Never put a
///    side effect inside a contract argument.
///
/// Override the default with -DRANKTIES_DCHECK_ENABLED=0/1 to force
/// contracts off in debug or on in release (e.g. a checked production
/// canary). Raw `assert(` is banned in src/ by tools/rankties_lint.py;
/// these macros are the replacement.

#ifndef RANKTIES_DCHECK_ENABLED
#ifdef NDEBUG
#define RANKTIES_DCHECK_ENABLED 0
#else
#define RANKTIES_DCHECK_ENABLED 1
#endif
#endif

namespace rankties {
namespace contracts_internal {

/// Optional last-breath callback run right before a failed contract
/// aborts. The observability layer installs the flight-recorder
/// post-mortem dump here (src/obs/flight.h) so a contract violation
/// carries the last structured events that led up to it. Hooks must be
/// re-entrancy safe: a contract failing inside the hook must not recurse.
using FailureHook = void (*)();

inline std::atomic<FailureHook>& FailureHookSlot() {
  static std::atomic<FailureHook> hook{nullptr};
  return hook;
}

/// Installs `hook` (nullptr clears). Returns the previous hook.
inline FailureHook SetFailureHook(FailureHook hook) {
  return FailureHookSlot().exchange(hook, std::memory_order_acq_rel);
}

inline void RunFailureHook() {
  static thread_local bool t_in_hook = false;
  if (t_in_hook) return;  // a contract failed inside the hook itself
  const FailureHook hook =
      FailureHookSlot().load(std::memory_order_acquire);
  if (hook == nullptr) return;
  t_in_hook = true;
  hook();
  t_in_hook = false;
}

[[noreturn]] inline void ContractFailure(const char* macro, const char* expr,
                                         const char* file, int line) {
  std::fprintf(stderr, "rankties: contract violation: %s(%s) at %s:%d\n",
               macro, expr, file, line);
  RunFailureHook();
  std::abort();
}

[[noreturn]] inline void BoundsFailure(const char* index_expr,
                                       std::int64_t index,
                                       const char* size_expr,
                                       std::int64_t size, const char* file,
                                       int line) {
  std::fprintf(stderr,
               "rankties: contract violation: RANKTIES_BOUNDS(%s, %s): "
               "index %lld outside [0, %lld) at %s:%d\n",
               index_expr, size_expr, static_cast<long long>(index),
               static_cast<long long>(size), file, line);
  RunFailureHook();
  std::abort();
}

/// Accepts both Status (has ToString) and StatusOr<T> (has status()); the
/// header stays dependency-free of util/status.h by duck-typing the two.
template <typename StatusLike>
void DcheckOk(const StatusLike& status, const char* expr, const char* file,
              int line) {
  if (status.ok()) return;
  if constexpr (requires { status.ToString(); }) {
    std::fprintf(stderr,
                 "rankties: contract violation: RANKTIES_DCHECK_OK(%s): %s "
                 "at %s:%d\n",
                 expr, status.ToString().c_str(), file, line);
  } else {
    std::fprintf(stderr,
                 "rankties: contract violation: RANKTIES_DCHECK_OK(%s): %s "
                 "at %s:%d\n",
                 expr, status.status().ToString().c_str(), file, line);
  }
  RunFailureHook();
  std::abort();
}

template <typename Index, typename Size>
void CheckBounds(Index index, Size size, const char* index_expr,
                 const char* size_expr, const char* file, int line) {
  const auto i = static_cast<std::int64_t>(index);
  const auto s = static_cast<std::int64_t>(size);
  if (i < 0 || i >= s) {
    BoundsFailure(index_expr, i, size_expr, s, file, line);
  }
}

}  // namespace contracts_internal
}  // namespace rankties

#if RANKTIES_DCHECK_ENABLED

#define RANKTIES_DCHECK(condition)                          \
  (static_cast<bool>(condition)                             \
       ? static_cast<void>(0)                               \
       : ::rankties::contracts_internal::ContractFailure(   \
             "RANKTIES_DCHECK", #condition, __FILE__, __LINE__))

#define RANKTIES_DCHECK_OK(expr)                                         \
  ::rankties::contracts_internal::DcheckOk((expr), #expr, __FILE__,      \
                                           __LINE__)

#define RANKTIES_BOUNDS(index, size)                                      \
  ::rankties::contracts_internal::CheckBounds((index), (size), #index,    \
                                              #size, __FILE__, __LINE__)

#else  // !RANKTIES_DCHECK_ENABLED

// `false ? X : 0` keeps X parsed, type-checked and odr-used — contract
// expressions cannot bit-rot in release-only code paths — while the dead
// branch guarantees X is never evaluated at run time.
#define RANKTIES_DCHECK(condition) \
  (false ? static_cast<void>(static_cast<bool>(condition)) \
         : static_cast<void>(0))

#define RANKTIES_DCHECK_OK(expr) \
  (false ? static_cast<void>((expr).ok()) : static_cast<void>(0))

#define RANKTIES_BOUNDS(index, size)                          \
  (false ? static_cast<void>(::rankties::contracts_internal:: \
                                 CheckBounds((index), (size), "", "", "", 0)) \
         : static_cast<void>(0))

#endif  // RANKTIES_DCHECK_ENABLED

#endif  // RANKTIES_UTIL_CONTRACTS_H_
