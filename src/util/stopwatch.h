#ifndef RANKTIES_UTIL_STOPWATCH_H_
#define RANKTIES_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace rankties {

/// Monotonic timestamp in nanoseconds on std::chrono::steady_clock. All
/// timing in the library (stopwatches, obs trace spans, bench harnesses)
/// reads this one clock so timestamps are comparable across subsystems and
/// never jump with wall-clock adjustments.
inline std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock stopwatch for the custom bench harnesses (the google-benchmark
/// binaries do their own timing).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Split (lap) timer on the monotonic clock: every SplitNanos() call
/// returns the time since the previous split and advances the mark. Used by
/// obs trace spans for durations, by the thread pool for worker idle
/// accounting, and available to bench harnesses for per-stage laps.
class SplitTimer {
 public:
  SplitTimer() : last_(MonotonicNanos()) {}

  /// Nanoseconds since construction or the previous split; advances.
  std::int64_t SplitNanos() {
    const std::int64_t now = MonotonicNanos();
    const std::int64_t elapsed = now - last_;
    last_ = now;
    return elapsed;
  }

  /// Seconds since construction or the previous split; advances.
  double SplitSeconds() {
    return static_cast<double>(SplitNanos()) * 1e-9;
  }

  /// The current mark (when the running split began).
  std::int64_t mark_nanos() const { return last_; }

 private:
  std::int64_t last_;
};

}  // namespace rankties

#endif  // RANKTIES_UTIL_STOPWATCH_H_
