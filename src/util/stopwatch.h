#ifndef RANKTIES_UTIL_STOPWATCH_H_
#define RANKTIES_UTIL_STOPWATCH_H_

#include <chrono>

namespace rankties {

/// Wall-clock stopwatch for the custom bench harnesses (the google-benchmark
/// binaries do their own timing).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rankties

#endif  // RANKTIES_UTIL_STOPWATCH_H_
