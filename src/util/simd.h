#ifndef RANKTIES_UTIL_SIMD_H_
#define RANKTIES_UTIL_SIMD_H_

/// Runtime SIMD dispatch shim for the prepared-kernel hot loops.
///
/// Contract (DESIGN.md §7):
///  * This header is the only translation-unit-visible home of raw vector
///    intrinsics in the repo — enforced by rankties-lint rule RT006. Callers
///    use the dispatching entry points (AbsDiffSumI64, JointKeys32) and never
///    see an intrinsic.
///  * Every vector kernel has a scalar twin, and the dispatcher guarantees
///    bit-identical results between the two: all kernels here are exact
///    integer computations with order-independent accumulation, so lane
///    count never changes the answer. The fuzz/oracle suites run under both
///    paths in CI (simd-dispatch matrix job).
///  * On non-x86 targets (or non-GCC/Clang toolchains) the scalar path is
///    the only path: the intrinsics and the detection code are compiled out
///    entirely, not stubbed.
///  * The AVX2 path is selected at runtime iff the CPU supports AVX2 and the
///    environment variable RANKTIES_NO_AVX2 is unset. The decision is made
///    once, on first use, before any worker thread exists (the thread pool
///    is lazily constructed by the first parallel batch call, which already
///    sits above any kernel call).
///
/// The AVX2 functions use per-function `__attribute__((target("avx2")))`
/// so the translation units that include this header keep their portable
/// baseline flags; only these bodies are compiled for AVX2, and they are
/// never reached unless the runtime check passed.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RANKTIES_SIMD_X86 1
#include <immintrin.h>
#else
#define RANKTIES_SIMD_X86 0
#endif

#if RANKTIES_SIMD_X86
// The read-only environment scan below walks the POSIX environment block
// directly instead of calling std::getenv, which the clang-tidy profile
// bans as mt-unsafe; a pure scan of the block keeps this header free of
// suppressions. The scan happens once, before any worker thread exists.
extern "C" char** environ;
#endif

namespace rankties::simd {

/// The dispatch levels, lowest first. kScalar is always available and is
/// the reference semantics; kAvx2 is an implementation detail that must be
/// observationally identical.
enum class Level : std::uint8_t { kScalar = 0, kAvx2 = 1 };

inline const char* LevelName(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

/// True when the RANKTIES_NO_AVX2 environment variable is set (to anything,
/// including the empty string) — the CI dispatch matrix uses it to force the
/// scalar path on AVX2-capable runners. Always false on non-x86 builds,
/// where scalar is the only path regardless.
inline bool ScalarForcedByEnv() {
#if RANKTIES_SIMD_X86
  constexpr const char kName[] = "RANKTIES_NO_AVX2";
  constexpr std::size_t kLen = sizeof(kName) - 1;
  for (char** env = environ; env != nullptr && *env != nullptr; ++env) {
    if (std::strncmp(*env, kName, kLen) == 0 && (*env)[kLen] == '=') {
      return true;
    }
  }
#endif
  return false;
}

/// What the hardware supports, independent of any override.
inline bool CpuHasAvx2() {
#if RANKTIES_SIMD_X86
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

/// Re-derives the dispatch decision from the CPU and the environment; pure,
/// no caching. ActiveLevel() below caches the first result.
inline Level DetectLevel() {
  return (CpuHasAvx2() && !ScalarForcedByEnv()) ? Level::kAvx2
                                                : Level::kScalar;
}

namespace internal {
inline std::atomic<Level>& ActiveLevelSlot() {
  static std::atomic<Level> slot{DetectLevel()};
  return slot;
}
}  // namespace internal

/// The level the dispatching kernels actually use. Detected once on first
/// call; stable for the life of the process unless a test overrides it.
inline Level ActiveLevel() {
  return internal::ActiveLevelSlot().load(std::memory_order_relaxed);
}

/// Test hook: force a level (clamped to what the CPU supports, so asking
/// for kAvx2 on scalar-only hardware degrades to kScalar instead of
/// faulting). Tests use this to run both paths in one process and assert
/// bit-identity.
inline void SetLevelForTesting(Level level) {
  if (level == Level::kAvx2 && !CpuHasAvx2()) level = Level::kScalar;
  internal::ActiveLevelSlot().store(level, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Kernel: sum of |a[i] - b[i]| over int64 arrays (the Fprof / footrule L1
// accumulation on doubled positions). Exact integer result; the inputs are
// doubled positions bounded by 2n, so the sum is bounded by 2n^2 and the
// accumulator cannot overflow for any domain that fits in memory.

inline std::int64_t AbsDiffSumI64Scalar(const std::int64_t* a,
                                        const std::int64_t* b,
                                        std::size_t n) {
  std::int64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t d = a[i] - b[i];
    total += d < 0 ? -d : d;
  }
  return total;
}

#if RANKTIES_SIMD_X86
__attribute__((target("avx2"))) inline std::int64_t AbsDiffSumI64Avx2(
    const std::int64_t* a, const std::int64_t* b, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i d = _mm256_sub_epi64(va, vb);
    // |d| without a native epi64 abs: (d ^ sign) - sign, sign = d < 0.
    const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), d);
    acc = _mm256_add_epi64(acc,
                           _mm256_sub_epi64(_mm256_xor_si256(d, sign), sign));
  }
  alignas(32) std::int64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::int64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < n; ++i) {
    const std::int64_t d = a[i] - b[i];
    total += d < 0 ? -d : d;
  }
  return total;
}
#endif  // RANKTIES_SIMD_X86

/// Dispatching entry point.
inline std::int64_t AbsDiffSumI64(const std::int64_t* a, const std::int64_t* b,
                                  std::size_t n) {
#if RANKTIES_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) return AbsDiffSumI64Avx2(a, b, n);
#endif
  return AbsDiffSumI64Scalar(a, b, n);
}

// ---------------------------------------------------------------------------
// Kernel: joint-histogram keys keys[i] = sigma_of[i] * t_tau + tau_of[i]
// (the fused-row-scan histogram build of core/prepared.cc). Only used in
// flat-histogram mode, where the key space t_sigma * t_tau is capped at
// 2^20, so the int32 product cannot overflow.

inline void JointKeys32Scalar(const std::int32_t* sigma_of,
                              const std::int32_t* tau_of, std::size_t n,
                              std::int32_t t_tau, std::int32_t* keys) {
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = sigma_of[i] * t_tau + tau_of[i];
  }
}

#if RANKTIES_SIMD_X86
__attribute__((target("avx2"))) inline void JointKeys32Avx2(
    const std::int32_t* sigma_of, const std::int32_t* tau_of, std::size_t n,
    std::int32_t t_tau, std::int32_t* keys) {
  const __m256i vt = _mm256_set1_epi32(t_tau);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vs =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sigma_of + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tau_of + i));
    const __m256i key = _mm256_add_epi32(_mm256_mullo_epi32(vs, vt), vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), key);
  }
  for (; i < n; ++i) {
    keys[i] = sigma_of[i] * t_tau + tau_of[i];
  }
}
#endif  // RANKTIES_SIMD_X86

/// Dispatching entry point.
inline void JointKeys32(const std::int32_t* sigma_of,
                        const std::int32_t* tau_of, std::size_t n,
                        std::int32_t t_tau, std::int32_t* keys) {
#if RANKTIES_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    JointKeys32Avx2(sigma_of, tau_of, n, t_tau, keys);
    return;
  }
#endif
  JointKeys32Scalar(sigma_of, tau_of, n, t_tau, keys);
}

// ---------------------------------------------------------------------------
// Kernel: 64-bit joint keys keys[i] = sigma_of[i] * t_tau + tau_of[i] (the
// sorted-fallback key build of core/prepared.cc, used when the key space
// t_sigma * t_tau overflows the flat histogram cap). Bucket indices and
// bucket counts are int32 (rank/element.h), so the widened product is
// bounded by 2^62 and exact in int64.

inline void JointKeys64Scalar(const std::int32_t* sigma_of,
                              const std::int32_t* tau_of, std::size_t n,
                              std::int64_t t_tau, std::int64_t* keys) {
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<std::int64_t>(sigma_of[i]) * t_tau + tau_of[i];
  }
}

#if RANKTIES_SIMD_X86
__attribute__((target("avx2"))) inline void JointKeys64Avx2(
    const std::int32_t* sigma_of, const std::int32_t* tau_of, std::size_t n,
    std::int64_t t_tau, std::int64_t* keys) {
  // t_tau is a bucket count, so it fits in 32 bits and mul_epi32 (signed
  // 32x32 -> 64 on the low dwords of each lane) computes the full product.
  const __m256i vt = _mm256_set1_epi64x(t_tau);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vs = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(sigma_of + i)));
    const __m256i vb = _mm256_cvtepi32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(tau_of + i)));
    const __m256i key = _mm256_add_epi64(_mm256_mul_epi32(vs, vt), vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i), key);
  }
  for (; i < n; ++i) {
    keys[i] = static_cast<std::int64_t>(sigma_of[i]) * t_tau + tau_of[i];
  }
}
#endif  // RANKTIES_SIMD_X86

/// Dispatching entry point.
inline void JointKeys64(const std::int32_t* sigma_of,
                        const std::int32_t* tau_of, std::size_t n,
                        std::int64_t t_tau, std::int64_t* keys) {
#if RANKTIES_SIMD_X86
  if (ActiveLevel() == Level::kAvx2) {
    JointKeys64Avx2(sigma_of, tau_of, n, t_tau, keys);
    return;
  }
#endif
  JointKeys64Scalar(sigma_of, tau_of, n, t_tau, keys);
}

}  // namespace rankties::simd

#endif  // RANKTIES_UTIL_SIMD_H_
