#ifndef RANKTIES_UTIL_STATS_H_
#define RANKTIES_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rankties {

/// Aggregate descriptive statistics over a sample of doubles.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< Population standard deviation.
  double median = 0.0;
  double p90 = 0.0;  ///< 90th percentile (nearest-rank).

  /// One-line rendering, e.g. "n=100 min=0.1 med=0.5 mean=0.52 p90=0.9 max=1".
  std::string ToString() const;
};

/// Computes the summary of `values`; all-zero summary for an empty sample.
Summary Summarize(const std::vector<double>& values);

/// Nearest-rank percentile of `values` (q in [0,1]); `values` need not be
/// sorted. Returns 0 for an empty sample.
double Percentile(std::vector<double> values, double q);

/// Streaming mean/min/max accumulator for cheap online aggregation.
class OnlineStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rankties

#endif  // RANKTIES_UTIL_STATS_H_
