#include "util/combinatorics.h"
#include "util/contracts.h"

#include <algorithm>
#include <limits>

namespace rankties {

std::vector<std::size_t> CompositionFromMask(std::size_t n,
                                             std::uint64_t mask) {
  RANKTIES_DCHECK(n >= 1);
  RANKTIES_DCHECK(n == 1 || mask < (1ULL << (n - 1)));
  std::vector<std::size_t> parts;
  std::size_t run = 1;
  for (std::size_t r = 0; r + 1 < n; ++r) {
    if (mask & (1ULL << r)) {
      parts.push_back(run);
      run = 1;
    } else {
      ++run;
    }
  }
  parts.push_back(run);
  return parts;
}

void ForEachComposition(
    std::size_t n,
    const std::function<bool(const std::vector<std::size_t>&)>& visit) {
  if (n == 0) return;
  const std::uint64_t masks = n == 1 ? 1 : (1ULL << (n - 1));
  for (std::uint64_t mask = 0; mask < masks; ++mask) {
    if (!visit(CompositionFromMask(n, mask))) return;
  }
}

std::uint64_t NumCompositions(std::size_t n) {
  return n == 0 ? 1 : (1ULL << (n - 1));
}

std::int64_t Factorial(std::size_t n) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  std::int64_t result = 1;
  for (std::size_t f = 2; f <= n; ++f) {
    if (result > kMax / static_cast<std::int64_t>(f)) return kMax;
    result *= static_cast<std::int64_t>(f);
  }
  return result;
}

std::int64_t Binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  std::int64_t result = 1;
  for (std::size_t i = 1; i <= k; ++i) {
    result = result * static_cast<std::int64_t>(n - k + i) /
             static_cast<std::int64_t>(i);
  }
  return result;
}

std::int64_t FubiniNumber(std::size_t n) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  // a(n) = sum_{k=1..n} C(n,k) a(n-k); a(0) = 1.
  std::vector<std::int64_t> a(n + 1, 0);
  a[0] = 1;
  for (std::size_t i = 1; i <= n; ++i) {
    long double accumulator = 0;
    for (std::size_t k = 1; k <= i; ++k) {
      accumulator += static_cast<long double>(Binomial(i, k)) *
                     static_cast<long double>(a[i - k]);
    }
    if (accumulator >= static_cast<long double>(kMax)) {
      a[i] = kMax;
    } else {
      std::int64_t sum = 0;
      for (std::size_t k = 1; k <= i; ++k) sum += Binomial(i, k) * a[i - k];
      a[i] = sum;
    }
  }
  return a[n];
}

}  // namespace rankties
