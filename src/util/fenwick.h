#ifndef RANKTIES_UTIL_FENWICK_H_
#define RANKTIES_UTIL_FENWICK_H_

#include <cstddef>
#include <vector>

#include "util/contracts.h"

namespace rankties {

/// A Fenwick (binary indexed) tree over `size` slots supporting point update
/// and prefix-sum query in O(log n). Used by the pair-classification engine
/// to count discordant pairs (inversions) between partial rankings.
template <typename T>
class Fenwick {
 public:
  /// Creates a tree with `size` zero-initialized slots (indices 0..size-1).
  explicit Fenwick(std::size_t size) : tree_(size + 1, T{}) {}

  std::size_t size() const { return tree_.size() - 1; }

  /// Adds `delta` to slot `index`.
  void Add(std::size_t index, T delta) {
    RANKTIES_BOUNDS(index, size());
    for (std::size_t i = index + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Returns the sum of slots [0, index] inclusive.
  T PrefixSum(std::size_t index) const {
    RANKTIES_BOUNDS(index, size());
    T sum{};
    for (std::size_t i = index + 1; i > 0; i -= i & (~i + 1)) {
      sum += tree_[i];
    }
    return sum;
  }

  /// Returns the sum of all slots.
  T Total() const { return size() == 0 ? T{} : PrefixSum(size() - 1); }

  /// Returns the sum of slots [lo, hi] inclusive; zero when lo > hi.
  T RangeSum(std::size_t lo, std::size_t hi) const {
    if (lo > hi) return T{};
    T sum = PrefixSum(hi);
    if (lo > 0) sum -= PrefixSum(lo - 1);
    return sum;
  }

  /// Resets all slots to zero without reallocating.
  void Clear() { std::fill(tree_.begin(), tree_.end(), T{}); }

 private:
  std::vector<T> tree_;
};

}  // namespace rankties

#endif  // RANKTIES_UTIL_FENWICK_H_
