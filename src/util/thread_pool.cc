#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/obs.h"
#include "util/stopwatch.h"

namespace rankties {

namespace {

// True on threads spawned by a ThreadPool; nested ParallelFor calls from a
// worker run inline instead of re-entering the queue (no deadlock).
thread_local bool t_in_pool_worker = false;

Mutex g_global_mu("threadpool.global");
std::unique_ptr<ThreadPool> g_global_pool RANKTIES_GUARDED_BY(g_global_mu);

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t lanes = std::max<std::size_t>(1, threads);
  workers_.reserve(lanes - 1);
  for (std::size_t i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks(LoopState& state) {
  for (;;) {
    if (state.canceled.load(std::memory_order_relaxed)) return;
    const std::size_t lo =
        state.cursor.fetch_add(state.grain, std::memory_order_relaxed);
    if (lo >= state.end) return;
    RANKTIES_OBS_COUNT("threadpool.chunks_run", 1);
    const std::size_t hi = std::min(lo + state.grain, state.end);
    try {
      (*state.body)(lo, hi);
    } catch (...) {
      MutexLock lock(state.mu);
      if (!state.error) state.error = std::current_exception();
      state.canceled.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerMain() {
  t_in_pool_worker = true;
  for (;;) {
    std::shared_ptr<LoopState> state;
    {
      // Idle accounting: the wait below is the worker's only blocking
      // point, so its duration is exactly the lane's idle time.
      const std::int64_t idle_from = obs::Enabled() ? MonotonicNanos() : 0;
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (idle_from != 0) {
        RANKTIES_OBS_COUNT("threadpool.worker_idle_ns",
                           MonotonicNanos() - idle_from);
      }
      if (queue_.empty()) return;  // stop_ with a drained queue
      state = std::move(queue_.front());
      queue_.pop_front();
    }
    RunChunks(*state);
    {
      MutexLock lock(state->mu);
      if (--state->pending == 0) state->done.NotifyOne();
    }
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t g = std::max<std::size_t>(1, grain);
  const std::size_t chunks = (end - begin + g - 1) / g;
  if (workers_.empty() || chunks <= 1 || t_in_pool_worker) {
    RANKTIES_OBS_COUNT("threadpool.inline_runs", 1);
    body(begin, end);
    return;
  }

  obs::TraceSpan span("threadpool.parallel_for");
  span.SetItems(static_cast<std::int64_t>(end - begin));
  RANKTIES_OBS_COUNT("threadpool.parallel_for_calls", 1);

  auto state = std::make_shared<LoopState>();
  state->end = end;
  state->grain = g;
  state->body = &body;
  state->cursor.store(begin, std::memory_order_relaxed);
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  RANKTIES_FLIGHT(obs::FlightEventId::kParallelFor,
                  static_cast<std::int64_t>(end - begin),
                  static_cast<std::int64_t>(g),
                  static_cast<std::int64_t>(helpers));
  {
    // No helper can see `state` before the queue push below, but `pending`
    // is mu-guarded state: take the (uncontended) lock rather than carve
    // out an unlocked-initialization exception.
    MutexLock lock(state->mu);
    state->pending = helpers;
  }
  {
    MutexLock lock(mu_);
    for (std::size_t i = 0; i < helpers; ++i) queue_.push_back(state);
    RANKTIES_OBS_RECORD("threadpool.queue_depth",
                        static_cast<std::int64_t>(queue_.size()));
  }
  if (helpers == 1) {
    cv_.NotifyOne();
  } else {
    cv_.NotifyAll();
  }

  RunChunks(*state);  // the calling thread is a lane too

  std::exception_ptr error;
  {
    MutexLock lock(state->mu);
    while (state->pending != 0) state->done.Wait(lock);
    error = state->error;
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::Global() {
  MutexLock lock(g_global_mu);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(DefaultThreads());
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalThreads(std::size_t threads) {
  const std::size_t lanes = threads == 0 ? DefaultThreads() : threads;
  MutexLock lock(g_global_mu);
  g_global_pool = std::make_unique<ThreadPool>(lanes);
}

std::size_t ThreadPool::GlobalThreads() { return Global().threads(); }

std::size_t ThreadPool::DefaultThreads() {
  // Read once, before any worker thread exists; no concurrent setenv here.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* spec = std::getenv("RANKTIES_THREADS");
  const std::size_t from_env = ParseThreadsSpec(spec);
  if (from_env > 0) return from_env;
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max<std::size_t>(1, hardware);
}

std::size_t ThreadPool::ParseThreadsSpec(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 0;
  char* tail = nullptr;
  const long value = std::strtol(spec, &tail, 10);
  if (tail == spec || *tail != '\0' || value <= 0) return 0;
  return std::min<long>(value, 1024);
}

void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body) {
  ThreadPool::Global().ParallelFor(begin, end, grain, body);
}

}  // namespace rankties
