#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rankties {

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  double ss = 0.0;
  for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(sorted.size()));
  auto at = [&](double q) {
    std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
  };
  s.median = at(0.5);
  s.p90 = at(0.9);
  return s;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " min=" << min << " med=" << median
     << " mean=" << mean << " p90=" << p90 << " max=" << max;
  return os.str();
}

void OnlineStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++count_;
}

}  // namespace rankties
