#ifndef RANKTIES_UTIL_RNG_H_
#define RANKTIES_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/contracts.h"

namespace rankties {

/// Deterministic pseudo-random source used by all generators, tests and
/// benches. Wraps a fixed engine so that results are reproducible across
/// platforms for a given seed.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    RANKTIES_DCHECK(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// True with probability `p`.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential variate with rate `lambda`.
  double Exponential(double lambda) {
    return std::exponential_distribution<double>(lambda)(engine_);
  }

  /// Normal variate.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Direct access to the underlying engine for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rankties

#endif  // RANKTIES_UTIL_RNG_H_
