#ifndef RANKTIES_UTIL_MUTEX_H_
#define RANKTIES_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "util/contracts.h"

/// \file
/// The annotated synchronization layer (docs/STATIC_ANALYSIS.md,
/// "Thread-safety analysis"). Every mutex in src/ is a `rankties::Mutex`;
/// raw `std::mutex` / `std::condition_variable` outside this header are
/// banned by rankties-lint RT009. The layer gives two guarantees:
///
///  1. **Compile-time discipline.** The types carry Clang thread-safety
///     capability annotations, so a clang build with
///     `-Wthread-safety -Wthread-safety-beta -Werror` (the `thread-safety`
///     CI job) proves every `RANKTIES_GUARDED_BY` field is only touched
///     with its mutex held, every `RANKTIES_REQUIRES` helper is only
///     called under the lock, and every `RANKTIES_EXCLUDES` entry point is
///     never re-entered with the lock held. On non-Clang compilers the
///     macros expand to nothing.
///
///  2. **Debug lock-order deadlock detection.** When contracts are active
///     (`RANKTIES_DCHECK_ENABLED`, the debug default), every `Mutex` joins
///     a process-global DAG over lock *classes* — the name passed to the
///     constructor, e.g. "threadpool.queue". Each blocking acquisition
///     records held-class -> acquired-class edges; an edge that would
///     close a cycle aborts immediately with the established order, the
///     thread's held stack, and the flight-recorder post-mortem (via the
///     contracts failure hook) — *before* blocking, so an inversion is
///     caught deterministically on first occurrence, with or without
///     contention. In release builds the tracking is fully compiled out:
///     `sizeof(Mutex) == sizeof(std::mutex)` and Lock/Unlock are plain
///     lock/unlock calls (tests/mutex_test.cc proves both halves).
///
/// Annotation catalog (all no-ops outside clang):
///   RANKTIES_CAPABILITY(name)      — on a type that is a lockable thing.
///   RANKTIES_SCOPED_CAPABILITY     — on an RAII type that acquires in its
///                                    constructor and releases in its
///                                    destructor.
///   RANKTIES_GUARDED_BY(mu)        — on a field: reads and writes require
///                                    `mu` held.
///   RANKTIES_PT_GUARDED_BY(mu)     — on a pointer field: the *pointee*
///                                    requires `mu` held.
///   RANKTIES_REQUIRES(mu)          — on a function: caller must hold `mu`.
///   RANKTIES_ACQUIRE(mu...)        — function acquires and does not
///                                    release.
///   RANKTIES_RELEASE(mu...)        — function releases a held capability.
///   RANKTIES_TRY_ACQUIRE(ok, mu)   — acquires iff the return equals `ok`.
///   RANKTIES_EXCLUDES(mu...)       — caller must NOT hold `mu` (the
///                                    public-entry-point annotation).
///   RANKTIES_ASSERT_CAPABILITY(mu) — runtime assertion that `mu` is held;
///                                    teaches the analysis it is.
///   RANKTIES_NO_THREAD_SAFETY_ANALYSIS — last resort, see the policy in
///                                    docs/STATIC_ANALYSIS.md: every use
///                                    must carry a comment naming why the
///                                    analysis cannot express the pattern.

// Internal: attach a clang attribute, or nothing elsewhere.
#if defined(__clang__)
#define RANKTIES_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RANKTIES_THREAD_ANNOTATION_(x)
#endif

#define RANKTIES_CAPABILITY(x) RANKTIES_THREAD_ANNOTATION_(capability(x))
#define RANKTIES_SCOPED_CAPABILITY RANKTIES_THREAD_ANNOTATION_(scoped_lockable)
#define RANKTIES_GUARDED_BY(x) RANKTIES_THREAD_ANNOTATION_(guarded_by(x))
#define RANKTIES_PT_GUARDED_BY(x) RANKTIES_THREAD_ANNOTATION_(pt_guarded_by(x))
#define RANKTIES_REQUIRES(...) \
  RANKTIES_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RANKTIES_ACQUIRE(...) \
  RANKTIES_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RANKTIES_RELEASE(...) \
  RANKTIES_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RANKTIES_TRY_ACQUIRE(...) \
  RANKTIES_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define RANKTIES_EXCLUDES(...) \
  RANKTIES_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define RANKTIES_ASSERT_CAPABILITY(x) \
  RANKTIES_THREAD_ANNOTATION_(assert_capability(x))
#define RANKTIES_NO_THREAD_SAFETY_ANALYSIS \
  RANKTIES_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rankties {

class Mutex;

namespace sync_internal {

#if RANKTIES_DCHECK_ENABLED

/// The process-global lock-order DAG, keyed by lock class (the name passed
/// to the Mutex constructor). Lockdep-style: once any thread has ever held
/// class A while acquiring class B, the order A -> B is law for the whole
/// process, and a later B-held-acquiring-A aborts even if the two threads
/// never actually contend. Internals are protected by a raw std::mutex
/// (deliberately un-annotated: libstdc++ types carry no capability
/// attributes, and the graph lock is never held across a user acquisition,
/// so it cannot participate in a cycle).
class LockGraph {
 public:
  /// Interns `name` (by string value) and returns its stable class id.
  std::uint32_t ClassIdFor(const char* name) {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::uint32_t id = 0; id < names_.size(); ++id) {
      if (names_[id] == name) return id;
    }
    names_.emplace_back(name);
    out_.emplace_back();
    return static_cast<std::uint32_t>(names_.size() - 1);
  }

  [[nodiscard]] std::string ClassName(std::uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return id < names_.size() ? names_[id] : std::string("<unknown>");
  }

  /// Records the order `from` -> `to`. Returns false — and records
  /// nothing — when the edge would close a cycle, including `from == to`
  /// (two locks of one class never nest; same-class acquisition order is
  /// not observable by the class-level graph, so it is banned outright).
  bool AddEdge(std::uint32_t from, std::uint32_t to) {
    std::lock_guard<std::mutex> lock(mu_);
    if (from == to) return false;
    std::vector<std::uint32_t>& edges = out_[from];
    for (std::uint32_t next : edges) {
      if (next == to) return true;  // already recorded; dedup
    }
    if (ReachesLocked(to, from)) return false;
    edges.push_back(to);
    return true;
  }

  [[nodiscard]] bool HasEdge(std::uint32_t from, std::uint32_t to) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (from >= out_.size()) return false;
    for (std::uint32_t next : out_[from]) {
      if (next == to) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t EdgeCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const std::vector<std::uint32_t>& edges : out_) {
      total += edges.size();
    }
    return total;
  }

  /// The recorded chain `from` -> ... -> `to` (both endpoints included),
  /// or empty if `to` is not reachable. Diagnostics only.
  [[nodiscard]] std::vector<std::uint32_t> PathBetween(
      std::uint32_t from, std::uint32_t to) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (from >= out_.size() || to >= out_.size()) return {};
    const std::uint32_t kUnvisited = 0xffffffffu;
    std::vector<std::uint32_t> parent(out_.size(), kUnvisited);
    std::vector<std::uint32_t> frontier{from};
    parent[from] = from;
    while (!frontier.empty()) {
      std::vector<std::uint32_t> next_frontier;
      for (std::uint32_t node : frontier) {
        for (std::uint32_t next : out_[node]) {
          if (parent[next] != kUnvisited) continue;
          parent[next] = node;
          if (next == to) {
            std::vector<std::uint32_t> path;
            for (std::uint32_t walk = to; walk != from;
                 walk = parent[walk]) {
              path.push_back(walk);
            }
            path.push_back(from);
            for (std::size_t i = 0, j = path.size() - 1; i < j; ++i, --j) {
              const std::uint32_t swap = path[i];
              path[i] = path[j];
              path[j] = swap;
            }
            return path;
          }
          next_frontier.push_back(next);
        }
      }
      frontier = std::move(next_frontier);
    }
    return {};
  }

  /// Clears every recorded edge but keeps interned class ids — live Mutex
  /// instances hold ids by value. Tests only: lets each test seed its own
  /// ordering without inheriting edges from earlier tests (or from library
  /// code that ran during fixture setup).
  void ResetForTest() {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::vector<std::uint32_t>& edges : out_) edges.clear();
  }

 private:
  // Caller holds mu_. True when `to` is reachable from `from` along
  // recorded edges (iterative DFS; the graph is acyclic by construction).
  bool ReachesLocked(std::uint32_t from, std::uint32_t to) const {
    if (from == to) return true;
    std::vector<bool> visited(out_.size(), false);
    std::vector<std::uint32_t> stack{from};
    visited[from] = true;
    while (!stack.empty()) {
      const std::uint32_t node = stack.back();
      stack.pop_back();
      for (std::uint32_t next : out_[node]) {
        if (next == to) return true;
        if (!visited[next]) {
          visited[next] = true;
          stack.push_back(next);
        }
      }
    }
    return false;
  }

  mutable std::mutex mu_;
  std::vector<std::string> names_;                // class id -> name
  std::vector<std::vector<std::uint32_t>> out_;  // class id -> successors
};

inline LockGraph& Graph() {
  // Deliberately leaked: Mutex instances with static storage duration may
  // still lock and unlock during static destruction, after a non-leaked
  // graph would already be gone.
  static LockGraph* const graph = new LockGraph();
  return *graph;
}

struct HeldEntry {
  const Mutex* instance = nullptr;
  std::uint32_t class_id = 0;
};

/// Per-thread stack of currently-held Mutex instances, oldest first. Fixed
/// capacity so acquisition never allocates; 64 simultaneous locks on one
/// thread is far beyond anything legitimate here.
struct HeldStack {
  static constexpr std::size_t kMaxHeld = 64;
  HeldEntry entries[kMaxHeld] = {};
  std::size_t size = 0;
};

inline HeldStack& ThisThreadHeld() {
  thread_local HeldStack held;
  return held;
}

[[noreturn]] inline void SelfDeadlockFailure(std::uint32_t class_id) {
  std::fprintf(stderr,
               "rankties: lock-order inversion: re-acquiring lock class "
               "\"%s\" this thread already holds (self-deadlock)\n",
               Graph().ClassName(class_id).c_str());
  contracts_internal::RunFailureHook();
  std::abort();
}

[[noreturn]] inline void LockOrderFailure(std::uint32_t acquiring,
                                          std::uint32_t held) {
  LockGraph& graph = Graph();
  std::fprintf(stderr,
               "rankties: lock-order inversion: acquiring lock class "
               "\"%s\" while holding \"%s\"\n",
               graph.ClassName(acquiring).c_str(),
               graph.ClassName(held).c_str());
  if (acquiring == held) {
    std::fprintf(stderr,
                 "rankties:   two locks of one class never nest; release "
                 "the first before taking the second\n");
  } else {
    const std::vector<std::uint32_t> chain =
        graph.PathBetween(acquiring, held);
    if (!chain.empty()) {
      std::fprintf(stderr, "rankties:   previously recorded order:");
      for (std::size_t i = 0; i < chain.size(); ++i) {
        std::fprintf(stderr, "%s \"%s\"", i == 0 ? "" : " ->",
                     graph.ClassName(chain[i]).c_str());
      }
      std::fprintf(stderr, "\n");
    }
  }
  const HeldStack& stack = ThisThreadHeld();
  std::fprintf(stderr, "rankties:   held by this thread (oldest first):");
  for (std::size_t i = 0; i < stack.size; ++i) {
    std::fprintf(stderr, " \"%s\"",
                 graph.ClassName(stack.entries[i].class_id).c_str());
  }
  std::fprintf(stderr, "\n");
  contracts_internal::RunFailureHook();
  std::abort();
}

/// Runs before a blocking acquisition, while nothing is blocked yet: a
/// would-be inversion aborts with full context instead of deadlocking.
inline void CheckAcquireOrder(const Mutex* instance, std::uint32_t class_id) {
  HeldStack& held = ThisThreadHeld();
  for (std::size_t i = 0; i < held.size; ++i) {
    if (held.entries[i].instance == instance) {
      SelfDeadlockFailure(class_id);
    }
  }
  for (std::size_t i = 0; i < held.size; ++i) {
    if (!Graph().AddEdge(held.entries[i].class_id, class_id)) {
      LockOrderFailure(class_id, held.entries[i].class_id);
    }
  }
}

inline void NoteAcquired(const Mutex* instance, std::uint32_t class_id) {
  HeldStack& held = ThisThreadHeld();
  RANKTIES_DCHECK(held.size < HeldStack::kMaxHeld);
  held.entries[held.size] = HeldEntry{instance, class_id};
  ++held.size;
}

inline void NoteReleased(const Mutex* instance) {
  HeldStack& held = ThisThreadHeld();
  for (std::size_t i = held.size; i > 0; --i) {
    if (held.entries[i - 1].instance != instance) continue;
    for (std::size_t j = i - 1; j + 1 < held.size; ++j) {
      held.entries[j] = held.entries[j + 1];
    }
    --held.size;
    return;
  }
  RANKTIES_DCHECK(!"unlocking a mutex this thread does not hold");
}

[[nodiscard]] inline bool IsHeldByThisThread(const Mutex* instance) {
  const HeldStack& held = ThisThreadHeld();
  for (std::size_t i = 0; i < held.size; ++i) {
    if (held.entries[i].instance == instance) return true;
  }
  return false;
}

#endif  // RANKTIES_DCHECK_ENABLED

}  // namespace sync_internal

/// A standard mutex carrying a Clang capability annotation and, in debug
/// builds, membership in the lock-order DAG. `name` is the lock *class*
/// (one per role, e.g. "store.pager.shard" for all 16 shard locks, in
/// `lowercase.dotted` form like obs metric names); instances of one class
/// share ordering constraints and must never nest with each other. In
/// release builds the name is discarded and the object is exactly a
/// std::mutex.
class RANKTIES_CAPABILITY("mutex") Mutex {
 public:
#if RANKTIES_DCHECK_ENABLED
  explicit Mutex(const char* name)
      : class_id_(sync_internal::Graph().ClassIdFor(name)) {}
#else
  explicit Mutex(const char* /*name*/) {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RANKTIES_ACQUIRE() {
#if RANKTIES_DCHECK_ENABLED
    sync_internal::CheckAcquireOrder(this, class_id_);
#endif
    mu_.lock();
#if RANKTIES_DCHECK_ENABLED
    sync_internal::NoteAcquired(this, class_id_);
#endif
  }

  void Unlock() RANKTIES_RELEASE() {
#if RANKTIES_DCHECK_ENABLED
    sync_internal::NoteReleased(this);
#endif
    mu_.unlock();
  }

  /// Non-blocking acquire. Cannot deadlock, so no order edges are
  /// recorded; a successful TryLock still joins the held stack, so later
  /// blocking acquisitions on this thread order against it.
  bool TryLock() RANKTIES_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if RANKTIES_DCHECK_ENABLED
    sync_internal::NoteAcquired(this, class_id_);
#endif
    return true;
  }

  /// Debug-checks this thread holds the mutex and tells the analysis so —
  /// for code reached only under the lock through a path the analysis
  /// cannot follow.
  void AssertHeld() const RANKTIES_ASSERT_CAPABILITY(this) {
#if RANKTIES_DCHECK_ENABLED
    RANKTIES_DCHECK(sync_internal::IsHeldByThisThread(this));
#endif
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#if RANKTIES_DCHECK_ENABLED
  std::uint32_t class_id_;
#endif
};

#if !RANKTIES_DCHECK_ENABLED
// The release half of guarantee 2: with contracts off, the lock-order
// machinery leaves no trace in the object layout.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release Mutex must carry zero debug state");
#endif

/// RAII scoped acquisition — the way code takes a Mutex. Deliberately no
/// deferred/adoptable variants: every acquisition site is a constructor,
/// which is what makes the scoped-capability analysis airtight.
class RANKTIES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RANKTIES_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RANKTIES_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;

  Mutex& mu_;
};

/// Condition variable paired with Mutex. Callers wait in an explicit
/// predicate loop —
///
///   MutexLock lock(mu_);
///   while (!wake_condition) cv_.Wait(lock);
///
/// — never with a predicate lambda: thread-safety analysis cannot see that
/// a lambda body runs under the caller's lock, so the std-style
/// `wait(lock, pred)` shape would warn on every guarded read inside the
/// predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; the mutex is
  /// reacquired before returning. No TSA annotation: the capability is
  /// held at entry and at return, which is all callers observe — the
  /// analysis cannot model the release-reacquire window in between. The
  /// debug held stack likewise keeps the mutex listed across the wait
  /// (this thread is blocked, so its order checks are idle).
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(NativeMutex(lock), std::adopt_lock);
    cv_.wait(native);
    static_cast<void>(native.release());
  }

  /// Wait with a deadline. Returns true if the deadline passed without a
  /// notification; the mutex is reacquired either way.
  template <typename Clock, typename Duration>
  bool WaitUntil(MutexLock& lock,
                 const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> native(NativeMutex(lock), std::adopt_lock);
    const bool timed_out =
        cv_.wait_until(native, deadline) == std::cv_status::timeout;
    static_cast<void>(native.release());
    return timed_out;
  }

  /// Wait with a timeout measured from now on the steady clock. Returns
  /// true if it timed out without a notification.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return WaitUntil(lock, std::chrono::steady_clock::now() + timeout);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  static std::mutex& NativeMutex(MutexLock& lock) { return lock.mu_.mu_; }

  std::condition_variable cv_;
};

}  // namespace rankties

#endif  // RANKTIES_UTIL_MUTEX_H_
