#include "util/rng.h"

// Rng is header-only today; this translation unit anchors the library and
// keeps a stable home for future out-of-line additions.
namespace rankties {}
