#ifndef RANKTIES_STORE_PAGER_H_
#define RANKTIES_STORE_PAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "store/file.h"
#include "util/mutex.h"
#include "util/status.h"

namespace rankties::store {

/// A sharded LRU block cache over one corpus file. `Pin` returns a
/// CRC-validated block payload and holds it resident until the matching
/// unpin; unpinned blocks stay cached in LRU order until capacity evicts
/// them.
///
/// Invariants:
///   - A pinned block (pin_count > 0) is never evicted. Pinning more bytes
///     than `capacity_bytes` is allowed (the engines pin a handful of
///     blocks at a time, but correctness must not depend on tuning); the
///     overcommit is observable via `store.cache.pinned_overflow` and the
///     cache shrinks back to capacity as pins release.
///   - Payload pointers handed out by `Pin` stay valid until the matching
///     unpin, across any number of concurrent pins of other blocks.
///   - Capacity is split evenly across shards with a floor of one frame
///     per shard, so the effective capacity is at least `shards` blocks.
///
/// Thread-safe: shards lock independently; all counters are atomic.
class Pager {
 public:
  struct Options {
    /// Cache budget in bytes; rounded down to whole blocks per shard.
    std::size_t capacity_bytes = std::size_t{8} << 20;
    /// Number of independent LRU shards. Tests use 1 shard to make the
    /// global eviction order deterministic.
    int shards = 8;
  };

  /// RAII pin on one block. Move-only; releases the pin on destruction.
  class PinnedBlock {
   public:
    PinnedBlock() = default;
    PinnedBlock(PinnedBlock&& other) noexcept
        : pager_(other.pager_), block_(other.block_), data_(other.data_) {
      other.pager_ = nullptr;
      other.data_ = nullptr;
    }
    PinnedBlock& operator=(PinnedBlock&& other) noexcept;
    PinnedBlock(const PinnedBlock&) = delete;
    PinnedBlock& operator=(const PinnedBlock&) = delete;
    ~PinnedBlock() { Release(); }

    /// CRC-validated payload bytes (`payload_bytes()` of them).
    const unsigned char* payload() const { return data_; }
    std::size_t payload_bytes() const;
    std::uint64_t block() const { return block_; }

    void Release();

   private:
    friend class Pager;
    PinnedBlock(Pager* pager, std::uint64_t block, const unsigned char* data)
        : pager_(pager), block_(block), data_(data) {}

    Pager* pager_ = nullptr;
    std::uint64_t block_ = 0;
    const unsigned char* data_ = nullptr;
  };

  /// `file` must outlive the pager and stay open. `block_size` and
  /// `num_blocks` come from a validated corpus header.
  Pager(const File* file, std::uint32_t block_size, std::uint64_t num_blocks,
        const Options& options);

  /// Pins `block`, reading and CRC-validating it on a miss. Fails with
  /// DataLoss on CRC mismatch or short read, OutOfRange past the end.
  StatusOr<PinnedBlock> Pin(std::uint64_t block);

  /// Releases one pin on `block`. Prefer the RAII `PinnedBlock`; exposed
  /// for tests of the refcount contract. Unpinning a block that is not
  /// pinned is a contract violation (RANKTIES_DCHECK).
  void UnpinBlock(std::uint64_t block);

  std::uint32_t block_size() const { return block_size_; }
  std::uint64_t num_blocks() const { return num_blocks_; }
  std::size_t capacity_blocks() const { return capacity_blocks_; }

  /// True when `block` is cached (pinned or not). Test hook.
  bool IsResident(std::uint64_t block) const;

  /// Process-lifetime-independent counters (work with obs disabled).
  std::int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::int64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  std::int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  std::int64_t resident_blocks() const {
    return resident_blocks_.load(std::memory_order_relaxed);
  }
  std::int64_t peak_resident_blocks() const {
    return peak_resident_blocks_.load(std::memory_order_relaxed);
  }
  std::int64_t peak_resident_bytes() const {
    return peak_resident_blocks() * block_size_;
  }

 private:
  struct Frame {
    std::uint64_t block = 0;
    int pin_count = 0;
    /// Position in the shard's LRU list while unpinned.
    std::list<std::uint64_t>::iterator lru_pos;
    bool in_lru = false;
    std::vector<unsigned char> payload;
  };

  struct Shard {
    /// Every shard lock shares one class: the pager takes exactly one
    /// shard lock at a time, so same-class nesting is (correctly) an
    /// inversion the debug lock-order DAG would abort on.
    mutable Mutex mu{"store.pager.shard"};
    std::unordered_map<std::uint64_t, std::unique_ptr<Frame>> frames
        RANKTIES_GUARDED_BY(mu);
    /// Unpinned resident blocks, least recently used first.
    std::list<std::uint64_t> lru RANKTIES_GUARDED_BY(mu);
  };

  Shard& ShardFor(std::uint64_t block) {
    return shards_[block % shards_.size()];
  }
  const Shard& ShardFor(std::uint64_t block) const {
    return shards_[block % shards_.size()];
  }

  /// Evicts LRU unpinned frames while the shard is over its share of the
  /// capacity.
  void EvictOver(Shard& shard, std::size_t shard_capacity)
      RANKTIES_REQUIRES(shard.mu);

  void NoteResident(std::int64_t delta);

  const File* file_;
  std::uint32_t block_size_;
  std::uint64_t num_blocks_;
  std::size_t capacity_blocks_;
  std::size_t shard_capacity_blocks_;
  std::vector<Shard> shards_;

  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> bytes_read_{0};
  std::atomic<std::int64_t> resident_blocks_{0};
  std::atomic<std::int64_t> peak_resident_blocks_{0};
};

}  // namespace rankties::store

#endif  // RANKTIES_STORE_PAGER_H_
