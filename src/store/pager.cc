#include "store/pager.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/obs.h"
#include "store/crc32.h"
#include "store/format.h"
#include "util/contracts.h"

namespace rankties::store {

Pager::PinnedBlock& Pager::PinnedBlock::operator=(
    PinnedBlock&& other) noexcept {
  if (this != &other) {
    Release();
    pager_ = other.pager_;
    block_ = other.block_;
    data_ = other.data_;
    other.pager_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

std::size_t Pager::PinnedBlock::payload_bytes() const {
  return pager_ == nullptr ? 0 : BlockPayloadBytes(pager_->block_size());
}

void Pager::PinnedBlock::Release() {
  if (pager_ != nullptr) {
    pager_->UnpinBlock(block_);
    pager_ = nullptr;
    data_ = nullptr;
  }
}

Pager::Pager(const File* file, std::uint32_t block_size,
             std::uint64_t num_blocks, const Options& options)
    : file_(file), block_size_(block_size), num_blocks_(num_blocks) {
  RANKTIES_DCHECK(file != nullptr);
  RANKTIES_DCHECK(block_size >= kMinBlockSize);
  const int shard_count = std::max(1, options.shards);
  // Every shard gets at least one frame: a zero-frame shard would deadlock
  // the first pin routed to it, and correctness must not depend on the
  // capacity/shard ratio.
  shard_capacity_blocks_ = std::max<std::size_t>(
      1, options.capacity_bytes / block_size /
             static_cast<std::size_t>(shard_count));
  capacity_blocks_ =
      shard_capacity_blocks_ * static_cast<std::size_t>(shard_count);
  shards_ = std::vector<Shard>(static_cast<std::size_t>(shard_count));
}

void Pager::NoteResident(std::int64_t delta) {
  const std::int64_t now =
      resident_blocks_.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t peak = peak_resident_blocks_.load(std::memory_order_relaxed);
  while (now > peak && !peak_resident_blocks_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void Pager::EvictOver(Shard& shard, std::size_t shard_capacity) {
  while (shard.frames.size() > shard_capacity && !shard.lru.empty()) {
    const std::uint64_t victim = shard.lru.front();
    shard.lru.pop_front();
    auto it = shard.frames.find(victim);
    RANKTIES_DCHECK(it != shard.frames.end());
    RANKTIES_DCHECK(it->second->pin_count == 0);
    shard.frames.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    RANKTIES_OBS_COUNT("store.cache.evictions", 1);
    NoteResident(-1);
  }
  if (shard.frames.size() > shard_capacity) {
    // All frames pinned: over budget until pins release.
    RANKTIES_OBS_COUNT("store.cache.pinned_overflow", 1);
  }
}

StatusOr<Pager::PinnedBlock> Pager::Pin(std::uint64_t block) {
  if (block >= num_blocks_) {
    return Status::OutOfRange("block " + std::to_string(block) +
                              " out of range (corpus has " +
                              std::to_string(num_blocks_) + " blocks)");
  }
  Shard& shard = ShardFor(block);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(block);
  if (it != shard.frames.end()) {
    Frame& frame = *it->second;
    if (frame.in_lru) {
      shard.lru.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    ++frame.pin_count;
    hits_.fetch_add(1, std::memory_order_relaxed);
    RANKTIES_OBS_COUNT("store.cache.hits", 1);
    return PinnedBlock(this, block, frame.payload.data());
  }

  misses_.fetch_add(1, std::memory_order_relaxed);
  RANKTIES_OBS_COUNT("store.cache.misses", 1);
  std::vector<unsigned char> raw(block_size_);
  Status read = file_->ReadAt(BlockFileOffset(block_size_, block), raw.data(),
                              raw.size());
  if (!read.ok()) return read;
  bytes_read_.fetch_add(static_cast<std::int64_t>(raw.size()),
                        std::memory_order_relaxed);
  const std::size_t payload_bytes = BlockPayloadBytes(block_size_);
  const std::uint32_t want = LoadU32(raw.data() + payload_bytes);
  const std::uint32_t got = Crc32(raw.data(), payload_bytes);
  if (want != got) {
    return Status::DataLoss("CRC mismatch on block " + std::to_string(block));
  }

  auto frame = std::make_unique<Frame>();
  frame->block = block;
  frame->pin_count = 1;
  raw.resize(payload_bytes);
  frame->payload = std::move(raw);
  const unsigned char* data = frame->payload.data();
  shard.frames.emplace(block, std::move(frame));
  NoteResident(1);
  EvictOver(shard, shard_capacity_blocks_);
  return PinnedBlock(this, block, data);
}

void Pager::UnpinBlock(std::uint64_t block) {
  Shard& shard = ShardFor(block);
  MutexLock lock(shard.mu);
  auto it = shard.frames.find(block);
  RANKTIES_DCHECK(it != shard.frames.end() &&
                  "UnpinBlock on a block that is not resident");
  if (it == shard.frames.end()) return;
  Frame& frame = *it->second;
  RANKTIES_DCHECK(frame.pin_count > 0 &&
                  "UnpinBlock on a block with no outstanding pins");
  if (frame.pin_count <= 0) return;
  if (--frame.pin_count == 0) {
    frame.lru_pos = shard.lru.insert(shard.lru.end(), block);
    frame.in_lru = true;
    EvictOver(shard, shard_capacity_blocks_);
  }
}

bool Pager::IsResident(std::uint64_t block) const {
  const Shard& shard = ShardFor(block);
  MutexLock lock(shard.mu);
  return shard.frames.find(block) != shard.frames.end();
}

}  // namespace rankties::store
