#ifndef RANKTIES_STORE_CORPUS_WRITER_H_
#define RANKTIES_STORE_CORPUS_WRITER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "rank/bucket_order.h"
#include "store/file.h"
#include "store/format.h"
#include "util/status.h"

namespace rankties::store {

/// Serializes a corpus of `BucketOrder`s over one shared domain into a
/// `rankties-corpus-v1` file (see format.h for the layout). Lists are
/// buffered into chunks of `lists_per_chunk` and streamed out through
/// fixed-size CRC'd blocks; the chunk directory and final header are
/// written by `Finish`, so a crash mid-write leaves a file the reader
/// rejects (the placeholder header fails its CRC) instead of a silently
/// short corpus.
///
/// Usage:
///   auto writer = CorpusWriter::Create(path, n, options);
///   for (const BucketOrder& order : corpus) writer->Append(order);
///   writer->Finish();
class CorpusWriter {
 public:
  struct Options {
    std::uint32_t block_size = kDefaultBlockSize;
    /// Lists grouped per chunk == the shard granularity readers see.
    std::uint64_t lists_per_chunk = 8;
  };

  /// Creates `path` and reserves the header. `n` is the shared domain size
  /// every appended order must match.
  static StatusOr<CorpusWriter> Create(const std::string& path, std::size_t n,
                                       const Options& options);

  CorpusWriter(CorpusWriter&&) noexcept = default;
  CorpusWriter& operator=(CorpusWriter&&) noexcept = default;

  /// Appends one list. Orders are stored in append order; list i of the
  /// file is the i-th Append.
  Status Append(const BucketOrder& order);

  /// Flushes the tail chunk, writes the directory, and rewrites the header
  /// with the final counts + CRC. No Append after Finish.
  Status Finish();

  std::uint64_t num_lists() const { return num_lists_; }

 private:
  CorpusWriter(File file, std::size_t n, const Options& options);

  /// Serializes the buffered lists as one chunk into the block stream.
  Status FlushChunk();
  /// Appends `size` bytes to the logical payload stream, emitting full
  /// blocks (payload + CRC32) as they fill.
  Status AppendPayload(const unsigned char* data, std::size_t size);
  /// Pads and emits the final partial block, if any.
  Status FlushBlock();

  File file_;
  std::uint64_t n_ = 0;
  Options options_;
  bool finished_ = false;

  std::vector<BucketOrder> pending_;       ///< Lists of the open chunk.
  std::vector<ChunkEntry> directory_;
  std::vector<unsigned char> block_;       ///< Payload of the open block.
  std::uint64_t logical_offset_ = 0;       ///< Payload bytes emitted.
  std::uint64_t num_blocks_ = 0;
  std::uint64_t num_lists_ = 0;
};

}  // namespace rankties::store

#endif  // RANKTIES_STORE_CORPUS_WRITER_H_
