#include "store/corpus_writer.h"

#include <algorithm>
#include <utility>

#include "obs/obs.h"
#include "store/crc32.h"
#include "util/contracts.h"

namespace rankties::store {

StatusOr<CorpusWriter> CorpusWriter::Create(const std::string& path,
                                            std::size_t n,
                                            const Options& options) {
  if (n == 0) return Status::InvalidArgument("corpus domain must be nonempty");
  if (options.block_size < kMinBlockSize) {
    return Status::InvalidArgument("block_size below minimum " +
                                   std::to_string(kMinBlockSize));
  }
  if (options.lists_per_chunk == 0) {
    return Status::InvalidArgument("lists_per_chunk must be positive");
  }
  StatusOr<File> file = File::Create(path);
  if (!file.ok()) return file.status();
  CorpusWriter writer(std::move(*file), n, options);
  // Reserve the header slot with zeros; Finish rewrites it. A reader that
  // opens a file whose writer never Finished sees a zero magic and rejects
  // it cleanly.
  unsigned char zero[kHeaderBytes] = {};
  Status s = writer.file_.Append(zero, sizeof(zero));
  if (!s.ok()) return s;
  return writer;
}

CorpusWriter::CorpusWriter(File file, std::size_t n, const Options& options)
    : file_(std::move(file)), n_(n), options_(options) {
  block_.reserve(BlockPayloadBytes(options_.block_size));
}

Status CorpusWriter::Append(const BucketOrder& order) {
  if (finished_) return Status::FailedPrecondition("Append after Finish");
  if (order.n() != n_) {
    return Status::InvalidArgument(
        "appended order has n=" + std::to_string(order.n()) +
        ", corpus domain is n=" + std::to_string(n_));
  }
  pending_.push_back(order);
  ++num_lists_;
  if (pending_.size() >= options_.lists_per_chunk) return FlushChunk();
  return Status::Ok();
}

Status CorpusWriter::FlushChunk() {
  if (pending_.empty()) return Status::Ok();
  const std::uint64_t list_count = pending_.size();
  std::uint64_t bucket_total = 0;
  // Columnar chunk payload: bucket-count column, then one bucket_of column
  // per list.
  std::vector<unsigned char> payload;
  payload.reserve((list_count + list_count * n_) * 4);
  unsigned char word[4];
  for (const BucketOrder& order : pending_) {
    bucket_total += order.num_buckets();
    StoreU32(word, static_cast<std::uint32_t>(order.num_buckets()));
    payload.insert(payload.end(), word, word + 4);
  }
  for (const BucketOrder& order : pending_) {
    for (std::size_t e = 0; e < n_; ++e) {
      StoreU32(word, static_cast<std::uint32_t>(
                         order.BucketOf(static_cast<ElementId>(e))));
      payload.insert(payload.end(), word, word + 4);
    }
  }

  ChunkEntry entry;
  entry.first_list = num_lists_ - list_count;
  entry.list_count = list_count;
  entry.payload_offset = logical_offset_;
  entry.payload_bytes = payload.size();
  entry.item_count = n_;
  entry.bucket_count = bucket_total;
  directory_.push_back(entry);

  pending_.clear();
  RANKTIES_OBS_COUNT("store.io.chunks_written", 1);
  return AppendPayload(payload.data(), payload.size());
}

Status CorpusWriter::AppendPayload(const unsigned char* data,
                                   std::size_t size) {
  const std::size_t capacity = BlockPayloadBytes(options_.block_size);
  std::size_t done = 0;
  while (done < size) {
    const std::size_t take = std::min(size - done, capacity - block_.size());
    block_.insert(block_.end(), data + done, data + done + take);
    done += take;
    logical_offset_ += take;
    if (block_.size() == capacity) {
      Status s = FlushBlock();
      if (!s.ok()) return s;
    }
  }
  return Status::Ok();
}

Status CorpusWriter::FlushBlock() {
  if (block_.empty()) return Status::Ok();
  const std::size_t capacity = BlockPayloadBytes(options_.block_size);
  RANKTIES_DCHECK(block_.size() <= capacity);
  block_.resize(capacity, 0);  // Zero padding, covered by the CRC.
  unsigned char crc[4];
  StoreU32(crc, Crc32(block_.data(), block_.size()));
  Status s = file_.Append(block_.data(), block_.size());
  if (!s.ok()) return s;
  s = file_.Append(crc, sizeof(crc));
  if (!s.ok()) return s;
  ++num_blocks_;
  block_.clear();
  RANKTIES_OBS_COUNT("store.io.blocks_written", 1);
  return Status::Ok();
}

Status CorpusWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("Finish called twice");
  Status s = FlushChunk();
  if (!s.ok()) return s;
  s = FlushBlock();
  if (!s.ok()) return s;
  finished_ = true;

  // Directory: num_chunks entries + trailing CRC over the entries.
  const std::uint64_t dir_offset = file_.append_offset();
  std::vector<unsigned char> dir(directory_.size() * kChunkEntryBytes + 4);
  for (std::size_t c = 0; c < directory_.size(); ++c) {
    EncodeChunkEntry(directory_[c], dir.data() + c * kChunkEntryBytes);
  }
  StoreU32(dir.data() + directory_.size() * kChunkEntryBytes,
           Crc32(dir.data(), directory_.size() * kChunkEntryBytes));
  s = file_.Append(dir.data(), dir.size());
  if (!s.ok()) return s;

  FileHeader header;
  header.version = kFormatVersion;
  header.block_size = options_.block_size;
  header.n = n_;
  header.num_lists = num_lists_;
  header.num_chunks = directory_.size();
  header.num_blocks = num_blocks_;
  header.dir_offset = dir_offset;
  header.dir_bytes = dir.size();
  unsigned char encoded[kHeaderBytes];
  EncodeHeader(header, encoded);
  StoreU32(encoded + kHeaderCrcOffset, Crc32(encoded, kHeaderCrcOffset));
  s = file_.WriteAt(0, encoded, sizeof(encoded));
  if (!s.ok()) return s;
  return file_.Sync();
}

}  // namespace rankties::store
