#ifndef RANKTIES_STORE_CRC32_H_
#define RANKTIES_STORE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace rankties::store {

/// Reflected CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used
/// by zlib/gzip/PNG. Every block and directory in the rankties-corpus-v1
/// format carries one so truncation and bit-rot surface as a clean
/// Status::DataLoss instead of silently corrupt rankings.
///
/// `Crc32` computes the checksum of a whole buffer; `Crc32Extend` continues
/// a running checksum so callers can checksum scattered buffers without
/// concatenating them. `Crc32Extend(Crc32(a), b) == Crc32(a ++ b)`.
std::uint32_t Crc32(const void* data, std::size_t size);
std::uint32_t Crc32Extend(std::uint32_t crc, const void* data,
                          std::size_t size);

}  // namespace rankties::store

#endif  // RANKTIES_STORE_CRC32_H_
