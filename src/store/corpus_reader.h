#ifndef RANKTIES_STORE_CORPUS_READER_H_
#define RANKTIES_STORE_CORPUS_READER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rank/bucket_order.h"
#include "store/file.h"
#include "store/format.h"
#include "store/pager.h"
#include "util/status.h"

namespace rankties::store {

/// Reads a `rankties-corpus-v1` file through a `Pager`. `Open` validates
/// the header and chunk directory exhaustively (magic, version, CRCs,
/// size/offset consistency) so every later failure mode is a corrupt data
/// block, reported by `ReadChunk` as Status::DataLoss.
///
/// A chunk is the shard unit of the out-of-core engines: `ReadChunk`
/// materializes one chunk's lists as `BucketOrder`s, paging its blocks
/// through the shared LRU cache.
///
/// `ReadChunk` reuses an internal scratch buffer, so one `CorpusReader` is
/// single-threaded; the underlying `Pager` (shared via `pager()`) is
/// thread-safe, and several readers may share one open file.
class CorpusReader {
 public:
  /// Opens and validates `path`. `cache` configures the block cache.
  static StatusOr<CorpusReader> Open(const std::string& path,
                                     const Pager::Options& cache);

  CorpusReader(CorpusReader&&) noexcept = default;
  CorpusReader& operator=(CorpusReader&&) noexcept = default;

  std::size_t n() const { return static_cast<std::size_t>(header_.n); }
  std::uint64_t num_lists() const { return header_.num_lists; }
  std::size_t num_chunks() const { return directory_.size(); }
  const FileHeader& header() const { return header_; }
  const ChunkEntry& chunk(std::size_t c) const { return directory_[c]; }

  /// Decodes chunk `c` into `out` (cleared first). The lists are the
  /// corpus lists `[chunk(c).first_list, chunk(c).first_list +
  /// chunk(c).list_count)` in order.
  Status ReadChunk(std::size_t c, std::vector<BucketOrder>* out);

  Pager& pager() { return *pager_; }
  const Pager& pager() const { return *pager_; }

 private:
  CorpusReader() = default;

  /// Heap-held so the Pager's back-pointer survives moves of the reader.
  std::unique_ptr<File> file_;
  FileHeader header_;
  std::vector<ChunkEntry> directory_;
  std::unique_ptr<Pager> pager_;
  std::vector<unsigned char> scratch_;
};

}  // namespace rankties::store

#endif  // RANKTIES_STORE_CORPUS_READER_H_
